#!/usr/bin/env bash
# CLI-level snapshot round-trip gate: for each backend, a run restored from
# a mid-run -snapshot must finish with a final snapshot byte-identical to
# the uninterrupted run's. This is the end-to-end version of the
# internal/pop restore tests — it additionally crosses the flag plumbing
# (sweep.Flags -> expt.ConfigureTrajectory -> core.Run) and the snapshot
# file codec, and it also checks that a -history run emits a readable
# trajectory stream.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/popsim" ./cmd/popsim

N=20000
SEED=7
base=(-protocol main -n "$N" -trials 1 -seed "$SEED")

for backend in seq batch dense; do
  echo "== backend=$backend =="
  # Uninterrupted run, snapshot at the end.
  "$workdir/popsim" "${base[@]}" -backend "$backend" \
    -snapshot "$workdir/final_a.json" >/dev/null
  # Same run, snapshot mid-flight...
  "$workdir/popsim" "${base[@]}" -backend "$backend" \
    -snapshot "$workdir/mid.json" -snapshot-at 20 >/dev/null
  # ...then restore and finish.
  "$workdir/popsim" -protocol main -trials 1 \
    -restore "$workdir/mid.json" -snapshot "$workdir/final_b.json" >/dev/null
  cmp "$workdir/final_a.json" "$workdir/final_b.json"
  echo "restore-then-run byte-identical"
done

# Table-compiled protocol: the same gate through the registry's generic
# table harness (internal/protocol) instead of the core pipeline's
# trajectory plumbing — the declared-table bypass must not perturb the
# schedule across a snapshot/restore boundary on any backend.
for backend in seq batch dense; do
  echo "== protocol=approxmajority backend=$backend =="
  "$workdir/popsim" -protocol approxmajority -n "$N" -trials 1 -seed "$SEED" \
    -backend "$backend" -snapshot "$workdir/am_final_a.json" >/dev/null
  "$workdir/popsim" -protocol approxmajority -n "$N" -trials 1 -seed "$SEED" \
    -backend "$backend" -snapshot "$workdir/am_mid.json" -snapshot-at 4 >/dev/null
  "$workdir/popsim" -protocol approxmajority -trials 1 \
    -restore "$workdir/am_mid.json" -snapshot "$workdir/am_final_b.json" >/dev/null
  cmp "$workdir/am_final_a.json" "$workdir/am_final_b.json"
  echo "restore-then-run byte-identical"
done

# The bypass actually carries the run: the batched backends must resolve
# every interaction from the compiled table, never the rule closure.
if ! "$workdir/popsim" -protocol approxmajority -n "$N" -trials 1 -seed "$SEED" \
    -backend batch -stats | grep -q 'rule=0'; then
  echo "table bypass incomplete: expected rule=0 in -stats output" >&2
  exit 1
fi
echo "table bypass covers the full run (rule=0)"

# History stream: valid JSONL (every line parses), sampled on the Δ grid.
"$workdir/popsim" "${base[@]}" -backend batch \
  -history "$workdir/hist.jsonl" -history-dt 5 >/dev/null
lines=$(wc -l <"$workdir/hist.jsonl")
if [ "$lines" -lt 3 ]; then
  echo "history stream has only $lines lines" >&2
  exit 1
fi
while IFS= read -r line; do
  case "$line" in
    '{"t":'*'"config":{'*'}'*) ;;
    *) echo "malformed history line: $line" >&2; exit 1 ;;
  esac
done <"$workdir/hist.jsonl"
echo "history stream: $lines valid JSONL records"
