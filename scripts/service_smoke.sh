#!/usr/bin/env bash
# Service-level crash-recovery gate for popsimd: a daemon SIGKILLed mid-job
# and restarted on the same state directory must finish the job with a
# record set canonically byte-identical to an uninterrupted run of the same
# submission. This is the end-to-end version of the internal/jobs restart
# tests — it crosses the real HTTP surface, the process-kill path (torn
# JSONL tails included), and the -canon comparator, using nothing but curl.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
daemon_pid=""
trap '[ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null; rm -rf "$workdir"' EXIT

go build -o "$workdir/popsimd" ./cmd/popsimd

PORT=$((20000 + RANDOM % 20000))
ADDR="127.0.0.1:$PORT"
BASE="http://$ADDR"
# One slot serializes the units, so the kill lands squarely mid-queue.
BODY='{"experiments":["F2"],"ns":[1024,2048,4096],"trials":4,"seed":5,"backend":"seq"}'

start_daemon() { # $1 = state dir, $2 = slots (default 1)
  "$workdir/popsimd" -addr "$ADDR" -dir "$1" -slots "${2:-1}" 2>>"$workdir/daemon.log" &
  daemon_pid=$!
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return; fi
    sleep 0.1
  done
  echo "daemon never became healthy" >&2
  cat "$workdir/daemon.log" >&2
  exit 1
}

submit() { # $1 = request body (default $BODY); prints the job id
  curl -fsS -X POST "$BASE/v1/jobs" -H 'Content-Type: application/json' -d "${1:-$BODY}" \
    | sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -n 1
}

state_of() { # $1 = job id; prints the job's state
  curl -fsS "$BASE/v1/jobs/$1" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p' | head -n 1
}

wait_done() { # $1 = job id; blocks until the job is terminal, requires "done"
  # The records stream follows the job until it reaches a terminal state.
  curl -fsS "$BASE/v1/jobs/$1/records" >/dev/null
  state=$(state_of "$1")
  if [ "$state" != "done" ]; then
    echo "job $1 ended in state $state, want done" >&2
    cat "$workdir/daemon.log" >&2
    exit 1
  fi
}

echo "== reference: uninterrupted run =="
start_daemon "$workdir/ref-state"
ref_id=$(submit)
[ -n "$ref_id" ] || { echo "submission returned no job id" >&2; exit 1; }
wait_done "$ref_id"
kill "$daemon_pid" && wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
"$workdir/popsimd" -canon "$workdir/ref-state/$ref_id.jsonl" >"$workdir/ref.canon"
ref_lines=$(wc -l <"$workdir/ref.canon")
echo "reference run: $ref_lines records"

echo "== interrupted run: SIGKILL mid-job, restart, resume =="
start_daemon "$workdir/state"
job_id=$(submit)
[ -n "$job_id" ] || { echo "submission returned no job id" >&2; exit 1; }
# Wait for partial progress, then kill the daemon without ceremony — no
# graceful shutdown, so the checkpoint may end in a torn line.
for _ in $(seq 1 300); do
  got=$(curl -fsS "$BASE/v1/jobs/$job_id/records?follow=0" | wc -l)
  if [ "$got" -ge 3 ]; then break; fi
  sleep 0.1
done
if [ "$got" -lt 3 ] || [ "$got" -ge "$ref_lines" ]; then
  echo "kill window missed: $got of $ref_lines records done" >&2
  exit 1
fi
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
echo "killed daemon after $got records"

start_daemon "$workdir/state"
wait_done "$job_id"
kill "$daemon_pid" && wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
"$workdir/popsimd" -canon "$workdir/state/$job_id.jsonl" >"$workdir/resumed.canon"

cmp "$workdir/ref.canon" "$workdir/resumed.canon"
echo "kill/restart record set byte-identical to the uninterrupted run ($ref_lines records)"

# Concurrent heterogeneous jobs: with per-job engine environments there is
# no env-generation barrier, so a seq job and a dense job must run side by
# side — and each must still produce the same canonical bytes as a solo
# run of the same submission.
DENSE_BODY='{"experiments":["F2"],"ns":[1024,2048],"trials":4,"seed":9,"backend":"dense"}'

echo "== dense reference: solo run =="
start_daemon "$workdir/dense-ref-state"
dense_ref_id=$(submit "$DENSE_BODY")
[ -n "$dense_ref_id" ] || { echo "dense submission returned no job id" >&2; exit 1; }
wait_done "$dense_ref_id"
kill "$daemon_pid" && wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
"$workdir/popsimd" -canon "$workdir/dense-ref-state/$dense_ref_id.jsonl" >"$workdir/dense-ref.canon"
echo "dense reference run: $(wc -l <"$workdir/dense-ref.canon") records"

echo "== concurrent run: seq + dense jobs side by side =="
start_daemon "$workdir/conc-state" 2
seq_id=$(submit)
dense_id=$(submit "$DENSE_BODY")
[ -n "$seq_id" ] && [ -n "$dense_id" ] || { echo "concurrent submission returned no job id" >&2; exit 1; }
# Both jobs must be observably running at the same moment — the old
# env-generation admission would have parked the dense job as pending
# until the seq job finished.
overlap=""
for _ in $(seq 1 300); do
  if [ "$(state_of "$seq_id")" = running ] && [ "$(state_of "$dense_id")" = running ]; then
    overlap=1
    break
  fi
  sleep 0.05
done
if [ -z "$overlap" ]; then
  echo "seq ($(state_of "$seq_id")) and dense ($(state_of "$dense_id")) jobs never ran concurrently" >&2
  cat "$workdir/daemon.log" >&2
  exit 1
fi
# The status surfaces each job's resolved engine environment.
curl -fsS "$BASE/v1/jobs/$dense_id" | grep -q '"backend": "dense"' \
  || { echo "dense job status does not surface its backend" >&2; exit 1; }
curl -fsS "$BASE/v1/jobs/$seq_id" | grep -q '"backend": "seq"' \
  || { echo "seq job status does not surface its backend" >&2; exit 1; }
echo "both jobs running concurrently"
wait_done "$seq_id"
wait_done "$dense_id"
kill "$daemon_pid" && wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
"$workdir/popsimd" -canon "$workdir/conc-state/$seq_id.jsonl" >"$workdir/conc-seq.canon"
"$workdir/popsimd" -canon "$workdir/conc-state/$dense_id.jsonl" >"$workdir/conc-dense.canon"
cmp "$workdir/ref.canon" "$workdir/conc-seq.canon"
cmp "$workdir/dense-ref.canon" "$workdir/conc-dense.canon"
echo "concurrent heterogeneous jobs byte-identical to their solo runs"
