#!/usr/bin/env bash
# Service-level crash-recovery gate for popsimd: a daemon SIGKILLed mid-job
# and restarted on the same state directory must finish the job with a
# record set canonically byte-identical to an uninterrupted run of the same
# submission. This is the end-to-end version of the internal/jobs restart
# tests — it crosses the real HTTP surface, the process-kill path (torn
# JSONL tails included), and the -canon comparator, using nothing but curl.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
daemon_pid=""
trap '[ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null; rm -rf "$workdir"' EXIT

go build -o "$workdir/popsimd" ./cmd/popsimd

PORT=$((20000 + RANDOM % 20000))
ADDR="127.0.0.1:$PORT"
BASE="http://$ADDR"
# One slot serializes the units, so the kill lands squarely mid-queue.
BODY='{"experiments":["F2"],"ns":[1024,2048,4096],"trials":4,"seed":5,"backend":"seq"}'

start_daemon() { # $1 = state dir
  "$workdir/popsimd" -addr "$ADDR" -dir "$1" -slots 1 2>>"$workdir/daemon.log" &
  daemon_pid=$!
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return; fi
    sleep 0.1
  done
  echo "daemon never became healthy" >&2
  cat "$workdir/daemon.log" >&2
  exit 1
}

submit() { # prints the job id
  curl -fsS -X POST "$BASE/v1/jobs" -H 'Content-Type: application/json' -d "$BODY" \
    | sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -n 1
}

wait_done() { # $1 = job id; blocks until the job is terminal, requires "done"
  # The records stream follows the job until it reaches a terminal state.
  curl -fsS "$BASE/v1/jobs/$1/records" >/dev/null
  state=$(curl -fsS "$BASE/v1/jobs/$1" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p' | head -n 1)
  if [ "$state" != "done" ]; then
    echo "job $1 ended in state $state, want done" >&2
    cat "$workdir/daemon.log" >&2
    exit 1
  fi
}

echo "== reference: uninterrupted run =="
start_daemon "$workdir/ref-state"
ref_id=$(submit)
[ -n "$ref_id" ] || { echo "submission returned no job id" >&2; exit 1; }
wait_done "$ref_id"
kill "$daemon_pid" && wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
"$workdir/popsimd" -canon "$workdir/ref-state/$ref_id.jsonl" >"$workdir/ref.canon"
ref_lines=$(wc -l <"$workdir/ref.canon")
echo "reference run: $ref_lines records"

echo "== interrupted run: SIGKILL mid-job, restart, resume =="
start_daemon "$workdir/state"
job_id=$(submit)
[ -n "$job_id" ] || { echo "submission returned no job id" >&2; exit 1; }
# Wait for partial progress, then kill the daemon without ceremony — no
# graceful shutdown, so the checkpoint may end in a torn line.
for _ in $(seq 1 300); do
  got=$(curl -fsS "$BASE/v1/jobs/$job_id/records?follow=0" | wc -l)
  if [ "$got" -ge 3 ]; then break; fi
  sleep 0.1
done
if [ "$got" -lt 3 ] || [ "$got" -ge "$ref_lines" ]; then
  echo "kill window missed: $got of $ref_lines records done" >&2
  exit 1
fi
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
echo "killed daemon after $got records"

start_daemon "$workdir/state"
wait_done "$job_id"
kill "$daemon_pid" && wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
"$workdir/popsimd" -canon "$workdir/state/$job_id.jsonl" >"$workdir/resumed.canon"

cmp "$workdir/ref.canon" "$workdir/resumed.canon"
echo "kill/restart record set byte-identical to the uninterrupted run ($ref_lines records)"
