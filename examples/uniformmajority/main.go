// Uniform majority: Theorem 4.1 forbids composing a terminating size
// estimate with a nonuniform majority protocol, so the paper composes via
// restarts instead (Section 1.1). This example wires the nonuniform
// cancel/split majority protocol into the composition framework and runs
// it with NO knowledge of n: the weak size estimate, the stage clock, and
// the restart scheme uniformize it.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/popsim/popsize/internal/compose"
	"github.com/popsim/popsize/internal/majority"
	"github.com/popsim/popsize/internal/pop"
)

func main() {
	const n = 1000
	for _, plusFrac := range []float64{0.65, 0.45, 0.52} {
		plus := int(plusFrac * n)
		opinions := make([]int8, n)
		for i := range opinions {
			if i < plus {
				opinions[i] = 1
			} else {
				opinions[i] = -1
			}
		}
		truth := "+1"
		if plus < n-plus {
			truth = "-1"
		}

		p := compose.MustNew(compose.Config{F: 16}, majority.Downstream(opinions))
		sim := p.NewSim(n, pop.WithSeed(7))
		ok, at := sim.RunUntil(p.Converged, 10, 5e5)
		if !ok {
			log.Fatalf("composition did not converge")
		}
		sim.RunTime(20 * math.Log2(n)) // let outputs circulate

		pl, mi, und := majority.Outputs(sim)
		fmt.Printf("split %+d/%-4d → outputs +%d/−%d (undecided %d) after %.0f time units; truth %s\n",
			plus, n-plus, pl, mi, und, at, truth)
	}
}
