// Termination impossibility, empirically (Theorem 4.1): a uniform protocol
// whose initial configuration is dense cannot delay its termination signal
// beyond O(1) time — while a single initial leader (a non-dense
// configuration, the theorem's escape hatch) can delay it to Θ(log² n),
// long enough for size estimation to converge first (Theorem 3.13).
package main

import (
	"fmt"
	"log"

	"github.com/popsim/popsize"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/term"
)

func main() {
	fmt.Println("uniform + dense (counter-to-40 terminator): first termination time is FLAT in n")
	ct := term.CounterTerminator{Threshold: 40}
	for _, n := range []int{100, 1000, 10000, 100000} {
		s := pop.New(n, ct.Initial, ct.Rule, pop.WithSeed(1))
		at, ok := term.FirstTermination(s, term.Terminated, 0.5, 1e5)
		if !ok {
			log.Fatalf("n=%d: never terminated", n)
		}
		fmt.Printf("  n = %6d: first terminated agent at t = %5.1f\n", n, at)
	}

	fmt.Println("\nwith an initial leader (Theorem 3.13): termination GROWS as Θ(log² n), after convergence")
	for _, n := range []int{128, 512, 2048} {
		r, err := popsize.EstimateTerminating(n, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  n = %6d: terminated at t = %7.1f, estimate converged first: %v\n",
			n, r.TerminatedAt, r.ConvergedFirst)
	}
}
