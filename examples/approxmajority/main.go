// Approximate majority at a billion agents: the 3-state
// Angluin–Aspnes–Eisenstat dynamics written as a 4-line declarative
// transition table (pop.Table), compiled once, and run on the dense
// count-vector backend with the declared-table bypass — every interaction
// resolves from the compiled table, the rule closure is never called, and
// the engine's memory is the 3-entry count vector rather than a 10⁹-agent
// array. A sampled history digests the trajectory: the blank state rises
// as opposed opinions annihilate, then the initial 54% majority sweeps the
// population in Θ(log n) parallel time.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/protocol"
	"github.com/popsim/popsize/internal/stats"
	"github.com/popsim/popsize/internal/sweep"
)

func main() {
	const n = 1_000_000_000
	c := protocol.AMCompiled() // the registry's shared compiled table

	// A 54/46 split over opinions {1: A, -1: B}; state 0 is blank.
	a := (int64(n)*27 + 49) / 50
	e := pop.NewEngineFromCounts(
		[]int{1, -1}, []int64{a, int64(n) - a}, c.Rule(),
		pop.WithSeed(1), pop.WithBackend(pop.Dense), c.Option())

	consensus := func(e pop.Engine[int]) bool {
		first := true
		opinion := 0
		return e.All(func(s int) bool {
			if first {
				first, opinion = false, s
			}
			return s != 0 && s == opinion
		})
	}

	hist := pop.NewHistory[int](2)
	ok, at := hist.RunUntil(e, consensus, 0.5, 32*math.Log2(n)+64)
	if !ok {
		log.Fatalf("no consensus within the time bound (t=%.1f)", at)
	}

	winner := "B (−1)"
	if e.Count(func(s int) bool { return s == 1 }) == e.N() {
		winner = "A (+1)"
	}
	fmt.Printf("n=%d (dense backend): consensus on %s at parallel time %.2f = %.2f·log2(n)\n",
		n, winner, at, at/math.Log2(n))
	if cs, have := pop.EngineCacheStats(e); have {
		fmt.Printf("transition resolution: table=%d cache=%d rule=%d (declared table covers every interaction)\n",
			cs.TableHits, cs.CacheHits, cs.RuleCalls)
	}

	pts := make([]stats.TrajPoint, 0, 32)
	for _, rec := range sweep.HistoryRecords(hist.Samples()) {
		live, top := stats.TrajDigest(rec.Config, rec.N)
		pts = append(pts, stats.TrajPoint{
			Time: rec.Time, N: rec.N, Interactions: rec.Interactions,
			Live: live, TopShare: top,
		})
	}
	fmt.Println()
	table := stats.TrajectoryTable("Trajectory (sampled every 2 time units)", pts)
	fmt.Print(table.Markdown())
}
