// Churn walkthrough: size estimation on a population that grows and
// shrinks underneath the protocol.
//
// The paper's protocols assume a fixed n; the dynamic-size-counting
// literature (Kaaser & Lohmann, arXiv:2405.05137) asks how well an
// estimate can *track* a changing population. This example drives the
// detect-and-restart tracker (internal/churn) through three scenarios —
// a doubling, a halving with periodic refresh, and continuous membership
// turnover — and prints how the held estimate follows log2 n(t).
package main

import (
	"fmt"
	"math"

	"github.com/popsim/popsize/internal/churn"
	"github.com/popsim/popsize/internal/core"
)

func main() {
	const n = 400
	cfg := core.Config{ClockFactor: 8, EpochFactor: 1, GeomBonus: 2}
	p := core.MustNew(cfg)
	budget := p.DefaultMaxTime(n)

	fmt.Println("== doubling: join wave detected by the undecided-fraction signal ==")
	t0 := budget / 2
	res := churn.Track(churn.TrackerConfig{Protocol: cfg},
		n, churn.Doubling(n, t0), 1, t0+budget)
	report(res, 8)
	detect, settle := res.DetectionLatency(t0, 4)
	fmt.Printf("doubling at t=%.0f: detected +%.1f, fresh estimate settled +%.0f (parallel time)\n\n",
		t0, detect, settle)

	fmt.Println("== halving: leaves are invisible to joiner detection; periodic refresh re-counts ==")
	res = churn.Track(churn.TrackerConfig{Protocol: cfg, RefreshEvery: budget / 2},
		n, churn.Halving(n, t0), 2, t0+2*budget)
	report(res, 8)
	fmt.Printf("restarts: %d (refresh-driven), final |err| %.2f\n\n",
		res.Restarts, res.Samples[len(res.Samples)-1].Err)

	fmt.Println("== continuous turnover: 0.05% of membership replaced per unit time ==")
	sched := churn.Step(n, 5e-4, 5, 1.5*budget)
	res = churn.Track(churn.TrackerConfig{Protocol: cfg}, n, sched, 3, 1.5*budget)
	report(res, 8)
	mean, maxv, _ := res.ErrStats(budget / 2)
	fmt.Printf("turnover of %d agents total: settled tracking error mean %.2f, max %.2f\n",
		sched.Turnover(), mean, maxv)
}

// report prints k evenly spaced samples of a tracked run.
func report(res churn.Result, k int) {
	step := len(res.Samples) / k
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(res.Samples); i += step {
		s := res.Samples[i]
		est := "   (none yet)"
		if !math.IsNaN(s.Estimate) {
			est = fmt.Sprintf("%6.2f (err %4.2f)", s.Estimate, s.Err)
		}
		fmt.Printf("  t=%8.1f  n=%5d  log2 n=%5.2f  estimate %s  restarts=%d\n",
			s.At, s.N, math.Log2(float64(s.N)), est, s.Restarts)
	}
}
