// Quickstart: estimate the size of a population none of whose members know
// n — the headline capability of Doty & Eftekhari (PODC 2019) — using the
// public popsize API.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/popsim/popsize"
)

func main() {
	for _, n := range []int{100, 1000, 10000} {
		est, truth, err := popsize.Estimate(n, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("n = %6d: protocol says log2(n) ≈ %6.2f, truth %6.2f, error %.2f (bound %.1f w.p. >= 1−9/n)\n",
			n, est, truth, math.Abs(est-truth), popsize.ErrorBound)
	}

	// The weak baseline estimate ([2]): one geometric sample per agent,
	// maximum by epidemic — faster but only multiplicatively accurate.
	k, err := popsize.WeakEstimate(10000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nweak baseline on n = 10000: k = %d (k/log2(n) = %.2f; guaranteed in [0.7, 2.0] w.h.p.)\n",
		k, float64(k)/math.Log2(10000))
}
