// Phase clocks as standalone primitives: the uniform leaderless clock the
// paper builds from interaction counters (Section 3.1), and the classic
// leader-driven clock of Angluin et al. [9] used by Theorem 3.13. The
// leaderless clock's rounds last Θ(threshold) time with the population
// spread across at most two adjacent rounds; the leader clock's phases
// last Θ(log n) each.
package main

import (
	"fmt"
	"math"

	"github.com/popsim/popsize/internal/clock"
	"github.com/popsim/popsize/internal/pop"
)

func main() {
	const n = 2000
	threshold := uint32(16 * math.Log2(n))
	lc := clock.Leaderless{Threshold: threshold}
	s := pop.New(n, lc.Initial, lc.Rule, pop.WithSeed(3))
	fmt.Printf("leaderless clock, n = %d, threshold = %d own interactions per round\n", n, threshold)
	for i := 0; i < 5; i++ {
		s.RunTime(float64(threshold) / 2)
		fmt.Printf("  t = %6.0f: rounds span [%d, %d]\n", s.Time(), clock.MinRound(s), clock.MaxRound(s))
	}

	fmt.Printf("\nleader-driven clock ([9]): per-phase time grows with log n\n")
	var ld clock.LeaderDriven
	for _, m := range []int{500, 4000, 32000} {
		sim := pop.New(m, ld.Initial, ld.Rule, pop.WithSeed(4))
		const phases = 40
		sim.RunUntil(func(s pop.Engine[clock.LeaderState]) bool {
			return clock.LeaderPhase(s) >= phases
		}, 1, 1e7)
		fmt.Printf("  n = %6d: %d phases in %6.0f time units (%.2f per phase; ln n = %.1f)\n",
			m, phases, sim.Time(), sim.Time()/phases, math.Log(float64(m)))
	}
}
