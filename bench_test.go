// Benchmarks: one per experiment row of DESIGN.md's index (F2, E1–E18,
// A1–A3, E-churn), each exercising the same generator the experiment harness uses,
// at benchmark-friendly scale. Domain metrics (parallel time units,
// estimate error, states) are attached via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates a miniature of every table and
// figure in the paper's evaluation.
package popsize

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"github.com/popsim/popsize/internal/approxsize"
	"github.com/popsim/popsize/internal/arith"
	"github.com/popsim/popsize/internal/churn"
	"github.com/popsim/popsize/internal/clock"
	"github.com/popsim/popsize/internal/compose"
	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/epidemic"
	"github.com/popsim/popsize/internal/exactcount"
	"github.com/popsim/popsize/internal/leaderelect"
	"github.com/popsim/popsize/internal/leaderterm"
	"github.com/popsim/popsize/internal/majority"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/prob"
	"github.com/popsim/popsize/internal/producible"
	"github.com/popsim/popsize/internal/synthcoin"
	"github.com/popsim/popsize/internal/term"
	"github.com/popsim/popsize/internal/upperbound"
)

// BenchmarkEngineStep measures raw scheduler+rule throughput (interactions
// per second) on the main protocol — the cost driver of every experiment.
func BenchmarkEngineStep(b *testing.B) {
	p := core.MustNew(core.FastConfig())
	s := p.NewSim(10000, pop.WithSeed(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// warmedConfigs caches steady-state core-protocol configurations per
// population size for the backend benchmarks: the interesting regime is
// mid-run (epochs ticking, states churning), not the cold start, and
// warming once per process keeps the benchmark setup affordable. The
// configuration is kept as a state-count multiset so the cache works at
// populations far beyond an agent array (warming runs on the dense
// engine, the fastest at scale); warmedMu guards it because benchmark
// iterations may run on fresh goroutines, so an unguarded lazy map would
// trip `go test -race -bench`.
var (
	warmedMu      sync.Mutex
	warmedConfigs = map[int]warmedMultiset{}
)

type warmedMultiset struct {
	states []core.State
	counts []int64
}

func warmedConfig(b *testing.B, n int) warmedMultiset {
	warmedMu.Lock()
	defer warmedMu.Unlock()
	return warmedConfigLocked(n)
}

func warmedConfigLocked(n int) warmedMultiset {
	if cfg, ok := warmedConfigs[n]; ok {
		return cfg
	}
	p := core.MustNew(core.FastConfig())
	// Every agent starts in the same state (core.Initial is agent-
	// independent), so the initial multiset is a single entry and warming
	// involves no agent-sized work at any n. Reaching steady state from
	// cold costs Θ(t·n) interactions through the protocol's mid-run state
	// churn, which no engine simulates cheaply — affordable up to 10⁸
	// (minutes, once per process). At 10⁹ the churn alone would be
	// ~10¹⁰ interactions, so that configuration is derived instead: the
	// 10⁸ steady multiset scaled ×10 and settled for one time unit, a
	// representative dense configuration at 10⁹ for engine comparison.
	var e *pop.DenseSim[core.State]
	if n >= 1_000_000_000 {
		base := warmedConfigLocked(n / 10)
		counts := make([]int64, len(base.counts))
		for i, c := range base.counts {
			counts[i] = c * 10
		}
		e = pop.NewDenseFromCounts(base.states, counts, p.Rule, pop.WithSeed(7))
		e.RunTime(1)
	} else {
		e = pop.NewDenseFromCounts([]core.State{core.Initial()}, []int64{int64(n)},
			p.Rule, pop.WithSeed(7))
		if n >= 100_000_000 {
			e.RunTime(45)
		} else {
			e.RunTime(60)
		}
	}
	var cfg warmedMultiset
	for st, cnt := range e.Counts() {
		cfg.states = append(cfg.states, st)
		cfg.counts = append(cfg.counts, int64(cnt))
	}
	warmedConfigs[n] = cfg
	return cfg
}

// BenchmarkEngineInteractions is the core-protocol backend comparison:
// ns/interaction for each engine on identical steady-state configurations
// at n >= 10⁵. The batched engine's advantage over sequential grows with
// n as the agent array falls out of cache (~1.3× at n = 10⁵, ~3× at 10⁶,
// ~6× at 10⁷); the dense engine's pair-matrix batches pull ahead of
// batch's per-slot sampling as batches lengthen relative to the live-
// state count — measured ~5% at 10⁷, ~15% at 10⁸ and ~1.8× at 10⁹
// (23 vs 43 ns/interaction) on an otherwise idle 2.1 GHz Xeon. The
// sequential rows stop at 10⁷: at 10⁸ its agent array is 2 GB of
// random-access memory traffic, and at 10⁹ it cannot reasonably be
// constructed at all, while the multiset engines carry the same
// configuration in a few kilobytes. Run with a large fixed -benchtime
// (e.g. -benchtime=20000000x) for stable numbers; -short skips every
// population size above 10⁶ (the 10⁸⁺ rows warm for minutes, see
// warmedConfig).
// Sub-benchmark rows carry a parallelism dimension on the multiset
// backends: the bare row (no /par segment) is the default configuration
// (legacy serial samplers below pop's auto threshold of ~1.7·10⁷ agents,
// the splitter path with a GOMAXPROCS worker target above), /par=1 is the
// node-seeded splitter path executed serially, and /par=8 the same path
// with an 8-worker target — byte-identical trajectories by construction,
// so their ns/interaction ratio is pure execution speedup. The sequential
// backend ignores parallelism and benches only bare.
func BenchmarkEngineInteractions(b *testing.B) {
	p := core.MustNew(core.FastConfig())
	all := []pop.Backend{pop.Sequential, pop.Batched, pop.Dense}
	for _, row := range []struct {
		n        int
		backends []pop.Backend
	}{
		{100000, all},
		{1000000, all},
		{10000000, all},
		{100000000, []pop.Backend{pop.Batched, pop.Dense}},
		{1000000000, []pop.Backend{pop.Batched, pop.Dense}},
	} {
		if testing.Short() && row.n > 1000000 {
			continue
		}
		for _, backend := range row.backends {
			pars := []int{0, 1, 8}
			if backend == pop.Sequential {
				pars = []int{0}
			}
			for _, par := range pars {
				name := fmt.Sprintf("%v/n=%d", backend, row.n)
				if par > 0 {
					name += fmt.Sprintf("/par=%d", par)
				}
				b.Run(name, func(b *testing.B) {
					// Warming inside the sub-benchmark (excluded from the
					// timing below) so -bench filters only pay for the sizes
					// they select.
					cfg := warmedConfig(b, row.n)
					e := pop.NewEngineFromCounts(cfg.states, cfg.counts, p.Rule,
						pop.WithSeed(9), pop.WithBackend(backend), pop.WithParallelism(par))
					b.ResetTimer()
					e.Run(int64(b.N))
				})
			}
		}
	}
}

// BenchmarkCoreConvergence runs the protocol to convergence at n = 10⁵ on
// each backend — the end-to-end wall-clock comparison behind the
// experiment harness's -backend flag. Skipped in -short mode (a
// sequential convergence run at this size takes on the order of a
// minute).
func BenchmarkCoreConvergence(b *testing.B) {
	if testing.Short() {
		b.Skip("full convergence runs are not short")
	}
	p := core.MustNew(core.FastConfig())
	const n = 100000
	for _, backend := range []pop.Backend{pop.Sequential, pop.Batched, pop.Dense} {
		b.Run(backend.String(), func(b *testing.B) {
			var t float64
			start := time.Now()
			for i := 0; i < b.N; i++ {
				r := p.Run(n, core.RunOptions{Seed: uint64(i) + 1, Backend: backend})
				if !r.Converged {
					b.Fatal("did not converge")
				}
				t += r.Time
			}
			// Convergence time varies a lot across seeds (and backends
			// take different random trajectories), so wall-clock per
			// iteration is noisy at small b.N; ns/interaction is the
			// stable backend comparison.
			b.ReportMetric(t/float64(b.N), "paralleltime")
			b.ReportMetric(float64(time.Since(start).Nanoseconds())/(t*n), "ns/interaction")
		})
	}
}

// BenchmarkFig2Convergence is F2/E2 at n = 1000: one full protocol run per
// iteration; reports parallel-time units and time/log²n.
func BenchmarkFig2Convergence(b *testing.B) {
	p := core.MustNew(core.FastConfig())
	const n = 1000
	var t, errSum float64
	for i := 0; i < b.N; i++ {
		r := p.Run(n, core.RunOptions{Seed: uint64(i)})
		t += r.Time
		errSum += r.MaxErr
	}
	logN := math.Log2(n)
	b.ReportMetric(t/float64(b.N), "paralleltime")
	b.ReportMetric(t/float64(b.N)/(logN*logN), "time/log²n")
	b.ReportMetric(errSum/float64(b.N), "abs_err")
}

// BenchmarkErrorDistribution is E1 at n = 500.
func BenchmarkErrorDistribution(b *testing.B) {
	p := core.MustNew(core.FastConfig())
	var worst float64
	for i := 0; i < b.N; i++ {
		r := p.Run(500, core.RunOptions{Seed: uint64(i) * 7919})
		worst = math.Max(worst, r.MaxErr)
	}
	b.ReportMetric(worst, "max_abs_err")
}

// BenchmarkStateCount is E3: distinct states per run at n = 1000.
func BenchmarkStateCount(b *testing.B) {
	p := core.MustNew(core.FastConfig())
	var states float64
	for i := 0; i < b.N; i++ {
		r := p.Run(1000, core.RunOptions{Seed: uint64(i), TrackStates: true})
		states += float64(r.DistinctStates)
	}
	l4 := math.Pow(math.Log2(1000), 4)
	b.ReportMetric(states/float64(b.N), "states")
	b.ReportMetric(states/float64(b.N)/l4, "states/log⁴n")
}

// BenchmarkPartition is E4: |A| deviation from n/2 at n = 10000.
func BenchmarkPartition(b *testing.B) {
	p := core.MustNew(core.FastConfig())
	const n = 10000
	var dev float64
	for i := 0; i < b.N; i++ {
		s := p.NewSim(n, pop.WithSeed(uint64(i)))
		s.RunTime(8 * math.Log2(n))
		a := s.Count(func(st core.State) bool { return st.Role == core.RoleA })
		dev += math.Abs(float64(a) - n/2)
	}
	b.ReportMetric(dev/float64(b.N), "abs_dev")
}

// BenchmarkLogSize2Range is E5 at n = 10000.
func BenchmarkLogSize2Range(b *testing.B) {
	p := core.MustNew(core.FastConfig())
	const n = 10000
	var v float64
	for i := 0; i < b.N; i++ {
		s := p.NewSim(n, pop.WithSeed(uint64(i)))
		s.RunTime(10 * math.Log2(n))
		v += float64(s.Agent(0).LogSize2) + 2
	}
	b.ReportMetric(v/float64(b.N), "logSize2_eff")
}

// BenchmarkEpidemic is E6: full-population epidemic completion at n = 10000.
func BenchmarkEpidemic(b *testing.B) {
	const n = 10000
	var t float64
	for i := 0; i < b.N; i++ {
		s := epidemic.New(n, 1, pop.WithSeed(uint64(i)))
		at, _ := epidemic.CompletionTime(s, 1e6)
		t += at
	}
	b.ReportMetric(t/float64(b.N), "paralleltime")
	b.ReportMetric(t/float64(b.N)/prob.ExpectedEpidemicTime(n), "time/E[T]")
}

// BenchmarkInteractionConcentration is E7 at n = 10000.
func BenchmarkInteractionConcentration(b *testing.B) {
	const n = 10000
	var worst float64
	for i := 0; i < b.N; i++ {
		s := pop.New(n, func(int, *rand.Rand) struct{} { return struct{}{} },
			func(x, y struct{}, _ *rand.Rand) (struct{}, struct{}) { return x, y },
			pop.WithSeed(uint64(i)), pop.WithInteractionCounts())
		s.RunTime(3 * math.Log(n))
		worst = math.Max(worst, float64(s.MaxInteractionCount()))
	}
	b.ReportMetric(worst/math.Log(n), "max_count/ln_n")
}

// BenchmarkMaxGeometric is E8: sampling the maximum of 10⁴ geometrics.
func BenchmarkMaxGeometric(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 2))
	var sum float64
	for i := 0; i < b.N; i++ {
		sum += float64(prob.MaxGeometric(r, 10000))
	}
	b.ReportMetric(sum/float64(b.N), "mean_max")
}

// BenchmarkSumOfMaxima is E9: one Corollary D.10 sample (K = 4 log N).
func BenchmarkSumOfMaxima(b *testing.B) {
	r := rand.New(rand.NewPCG(3, 4))
	const n = 10000
	k := prob.CorD10MinK(n)
	var dev float64
	for i := 0; i < b.N; i++ {
		s := prob.SumOfMaxima(r, k, n)
		dev += math.Abs(float64(s)/float64(k) - math.Log2(n))
	}
	b.ReportMetric(dev/float64(b.N), "abs_dev")
}

// BenchmarkDepletion is E10: worst-case state consumption over one time
// unit at n = 10000.
func BenchmarkDepletion(b *testing.B) {
	const n = 10000
	consume := func(x, y bool, _ *rand.Rand) (bool, bool) { return false, false }
	var minFrac float64 = 1
	for i := 0; i < b.N; i++ {
		s := pop.New(n, func(j int, _ *rand.Rand) bool { return j < n/2 }, consume,
			pop.WithSeed(uint64(i)))
		s.RunTime(1)
		f := float64(s.Count(func(x bool) bool { return x })) / float64(n/2)
		minFrac = math.Min(minFrac, f)
	}
	b.ReportMetric(minFrac, "min_fraction")
	b.ReportMetric(1.0/81, "cor_e3_floor")
}

// BenchmarkProducibility is E11: one Lemma 4.2 check on the counter chain.
func BenchmarkProducibility(b *testing.B) {
	p := producible.CounterChain(4)
	cfg := producible.DenseConfig([]int{0}, 1, 10000)
	var frac float64
	for i := 0; i < b.N; i++ {
		rep := p.CheckLemma42(cfg, 1, 4, uint64(i))
		frac += rep.MinFraction
	}
	b.ReportMetric(frac/float64(b.N), "min_density")
}

// BenchmarkTerminationDense is E12: first termination of the uniform dense
// counter terminator at n = 10000 (flat in n — compare
// BenchmarkLeaderTermination).
func BenchmarkTerminationDense(b *testing.B) {
	ct := term.CounterTerminator{Threshold: 40}
	var t float64
	for i := 0; i < b.N; i++ {
		s := pop.New(10000, ct.Initial, ct.Rule, pop.WithSeed(uint64(i)))
		at, _ := term.FirstTermination(s, term.Terminated, 0.5, 1e5)
		t += at
	}
	b.ReportMetric(t/float64(b.N), "first_term_time")
}

// BenchmarkLeaderTermination is E13 at n = 512.
func BenchmarkLeaderTermination(b *testing.B) {
	p := leaderterm.MustNew(core.FastConfig(), 0)
	const n = 512
	var t float64
	early := 0
	for i := 0; i < b.N; i++ {
		s := p.NewSim(n, pop.WithSeed(uint64(i)))
		at, _ := term.FirstTermination(s, leaderterm.Terminated, 2, 100*p.Main().DefaultMaxTime(n))
		if !p.MainConverged(s) {
			early++
		}
		t += at
	}
	b.ReportMetric(t/float64(b.N), "term_time")
	b.ReportMetric(float64(early), "early_terms")
}

// BenchmarkUpperBound is E14 at n = 128.
func BenchmarkUpperBound(b *testing.B) {
	p := upperbound.MustNew(core.FastConfig())
	const n = 128
	below := 0
	for i := 0; i < b.N; i++ {
		s := p.NewSim(n, pop.WithSeed(uint64(i)))
		s.RunUntil(upperbound.TournamentDone, 5, float64(500*n))
		s.RunTime(60 * math.Log2(n))
		v, _ := upperbound.Report(s.Agent(0))
		if v < math.Log2(n) {
			below++
		}
	}
	b.ReportMetric(float64(below), "bound_violations")
}

// BenchmarkSyntheticCoin is E15 at n = 512.
func BenchmarkSyntheticCoin(b *testing.B) {
	p := synthcoin.MustNew(synthcoin.FastConfig())
	const n = 512
	logN := math.Log2(n)
	var errSum float64
	for i := 0; i < b.N; i++ {
		s := p.NewSim(n, pop.WithSeed(uint64(i)))
		s.RunUntil(p.Converged, logN, 40*32*logN*logN)
		for _, a := range s.Agents() {
			if est, ok := a.Estimate(); ok {
				errSum += math.Abs(est - logN)
				break
			}
		}
	}
	b.ReportMetric(errSum/float64(b.N), "abs_err")
}

// BenchmarkBaselines is E16: one run of each of the three protocols at
// n = 400, reporting their times side by side.
func BenchmarkBaselines(b *testing.B) {
	const n = 400
	mp := core.MustNew(core.FastConfig())
	ep := exactcount.New(0)
	var tWeak, tMain, tExact float64
	for i := 0; i < b.N; i++ {
		ws := approxsize.NewSim(n, pop.WithSeed(uint64(i)))
		_, at := ws.RunUntil(approxsize.Converged, 1, 1e4)
		tWeak += at
		r := mp.Run(n, core.RunOptions{Seed: uint64(i)})
		tMain += r.Time
		es := ep.NewSim(n, pop.WithSeed(uint64(i)))
		_, at = es.RunUntil(exactcount.Terminated, 5, float64(5000*n))
		tExact += at
	}
	inv := 1 / float64(b.N)
	b.ReportMetric(tWeak*inv, "weak_time")
	b.ReportMetric(tMain*inv, "main_time")
	b.ReportMetric(tExact*inv, "exact_time")
}

// BenchmarkComposition is E17: one uniformized majority run at n = 400
// with a 60/40 split.
func BenchmarkComposition(b *testing.B) {
	const n = 400
	opinions := make([]int8, n)
	for i := range opinions {
		if i < 6*n/10 {
			opinions[i] = 1
		} else {
			opinions[i] = -1
		}
	}
	wrong := 0
	for i := 0; i < b.N; i++ {
		p := compose.MustNew(compose.Config{F: 16}, majority.Downstream(opinions))
		s := p.NewSim(n, pop.WithSeed(uint64(i)))
		ok, _ := s.RunUntil(p.Converged, 10, 5e5)
		s.RunTime(20 * math.Log2(n))
		pl, mi, und := majority.Outputs(s)
		if !ok || mi > 0 || und > 0 || pl != n {
			wrong++
		}
	}
	b.ReportMetric(float64(wrong), "wrong_runs")
}

// BenchmarkLeaderElection complements E17 with the second downstream
// protocol at n = 400.
func BenchmarkLeaderElection(b *testing.B) {
	const n = 400
	nonUnique := 0
	for i := 0; i < b.N; i++ {
		p := compose.MustNew(compose.Config{F: 16}, leaderelect.Downstream())
		s := p.NewSim(n, pop.WithSeed(uint64(i)))
		s.RunUntil(p.Converged, 10, 5e5)
		s.RunUntil(func(s pop.Engine[compose.State[leaderelect.State]]) bool {
			return leaderelect.Candidates(s) == 1
		}, 10, 1e5)
		if leaderelect.Candidates(s) != 1 {
			nonUnique++
		}
	}
	b.ReportMetric(float64(nonUnique), "non_unique")
}

// BenchmarkAblationClockFactor is A1 at n = 1000 with the smallest factor,
// where the error inflation shows.
func BenchmarkAblationClockFactor(b *testing.B) {
	cfg := core.FastConfig()
	cfg.ClockFactor = 4
	p := core.MustNew(cfg)
	var errSum float64
	for i := 0; i < b.N; i++ {
		r := p.Run(1000, core.RunOptions{Seed: uint64(i)})
		errSum += r.MaxErr
	}
	b.ReportMetric(errSum/float64(b.N), "abs_err_cf4")
}

// BenchmarkAblationEpochFactor is A2 at n = 1000 with a single epoch
// multiple (K too small for Corollary D.10).
func BenchmarkAblationEpochFactor(b *testing.B) {
	cfg := core.FastConfig()
	cfg.EpochFactor = 1
	p := core.MustNew(cfg)
	var errSum float64
	for i := 0; i < b.N; i++ {
		r := p.Run(1000, core.RunOptions{Seed: uint64(i)})
		errSum += r.MaxErr
	}
	b.ReportMetric(errSum/float64(b.N), "abs_err_ef1")
}

// BenchmarkAblationNoRestart is A3 at n = 1000.
func BenchmarkAblationNoRestart(b *testing.B) {
	cfg := core.FastConfig()
	cfg.DisableRestart = true
	p := core.MustNew(cfg)
	var errSum float64
	for i := 0; i < b.N; i++ {
		r := p.Run(1000, core.RunOptions{Seed: uint64(i)})
		errSum += r.MaxErr
	}
	b.ReportMetric(errSum/float64(b.N), "abs_err_norestart")
}

// BenchmarkLeaderDrivenClock measures the [9] phase clock's per-phase cost
// at n = 10000 (Θ(log n) per phase).
func BenchmarkLeaderDrivenClock(b *testing.B) {
	var ld clock.LeaderDriven
	const n, phases = 10000, 20
	var t float64
	for i := 0; i < b.N; i++ {
		s := pop.New(n, ld.Initial, ld.Rule, pop.WithSeed(uint64(i)))
		s.RunUntil(func(s pop.Engine[clock.LeaderState]) bool {
			return clock.LeaderPhase(s) >= phases
		}, 1, 1e7)
		t += s.Time() / phases
	}
	b.ReportMetric(t/float64(b.N), "time_per_phase")
}

// BenchmarkArithmetic is E18: the intro's doubling protocol at n = 10000
// (its halving counterpart is Θ(n) and benchmarked implicitly by the ratio
// metric in cmd/experiments).
func BenchmarkArithmetic(b *testing.B) {
	const n = 10000
	var t float64
	for i := 0; i < b.N; i++ {
		s := arith.NewDouble(n, n/4, pop.WithSeed(uint64(i)))
		at, _ := arith.CompletionTime(s, false, 1e6)
		t += at
	}
	b.ReportMetric(t/float64(b.N)/math.Log(n), "time/ln_n")
}

// BenchmarkChurnTracking is E-churn at benchmark scale: the detect-and-
// restart dynamic estimator tracking a population under lockstep
// membership turnover, reporting the settled tracking error.
func BenchmarkChurnTracking(b *testing.B) {
	const n = 400
	cfg := core.Config{ClockFactor: 8, EpochFactor: 1, GeomBonus: 2}
	until := 1.5 * core.MustNew(cfg).DefaultMaxTime(n) / 3
	var errSum float64
	for i := 0; i < b.N; i++ {
		sched := churn.Step(n, 1e-4, math.Log2(n), until)
		res := churn.Track(churn.TrackerConfig{Protocol: cfg}, n, sched, uint64(i)+1, until)
		mean, _, _ := res.ErrStats(until / 2)
		if !math.IsNaN(mean) {
			errSum += mean
		}
	}
	b.ReportMetric(errSum/float64(b.N), "tracking_err")
}
