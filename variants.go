package popsize

import (
	"fmt"
	"math"

	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/leaderterm"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/synthcoin"
	"github.com/popsim/popsize/internal/term"
	"github.com/popsim/popsize/internal/upperbound"
)

// EstimateDeterministic runs the Appendix B synthetic-coin variant: the
// transition function consumes no random bits (the scheduler's
// sender/receiver choice is the only coin). Returns the common estimate of
// the A-role agents.
func EstimateDeterministic(n int, seed uint64) (estimate, truth float64, err error) {
	p := synthcoin.MustNew(synthcoin.FastConfig())
	s := p.NewSim(n, pop.WithSeed(seed))
	logN := math.Log2(float64(n))
	budget := 40 * float64(16*2) * logN * logN
	ok, _ := s.RunUntil(p.Converged, logN, budget)
	if !ok {
		return 0, 0, fmt.Errorf("popsize: synthetic-coin protocol did not converge on n=%d", n)
	}
	sum, count := 0.0, 0
	for _, a := range s.Agents() {
		if est, has := a.Estimate(); has {
			sum += est
			count++
		}
	}
	return sum / float64(count), logN, nil
}

// EstimateUpperBound runs the §3.3 probability-1 variant until its exact
// backup tournament stabilizes and returns the guaranteed upper bound on
// log₂ n (>= log₂ n with probability 1; <= log₂ n + 9.4 w.h.p.).
func EstimateUpperBound(n int, seed uint64) (bound, truth float64, err error) {
	p := upperbound.MustNew(FastConfig())
	s := p.NewSim(n, pop.WithSeed(seed))
	ok, _ := s.RunUntil(upperbound.TournamentDone, 5, float64(1000*n))
	if !ok {
		return 0, 0, fmt.Errorf("popsize: backup tournament did not stabilize on n=%d", n)
	}
	s.RunTime(60 * math.Log2(float64(n)))
	lo := math.Inf(1)
	for _, a := range s.Agents() {
		v, _ := upperbound.Report(a)
		lo = math.Min(lo, v)
	}
	return lo, math.Log2(float64(n)), nil
}

// TerminatingResult reports a run of the §3.4 leader-driven terminating
// protocol.
type TerminatingResult struct {
	// TerminatedAt is the parallel time of the first termination signal.
	TerminatedAt float64
	// ConvergedFirst reports whether the size estimate had converged when
	// the signal fired (Theorem 3.13 promises this w.h.p.).
	ConvergedFirst bool
	// Estimate is the mean per-agent estimate at termination.
	Estimate float64
}

// EstimateTerminating runs the terminating-with-a-leader protocol of
// Theorem 3.13: one distinguished initial agent drives a timer that fires
// at Θ(log² n) time, after the estimate has converged w.h.p. (Theorem 4.1
// proves the leader is necessary: no uniform protocol from dense initial
// configurations can delay such a signal beyond O(1) time.)
func EstimateTerminating(n int, seed uint64) (TerminatingResult, error) {
	p := leaderterm.MustNew(FastConfig(), 0)
	s := p.NewSim(n, pop.WithSeed(seed))
	at, ok := term.FirstTermination(s, leaderterm.Terminated, 2, 200*p.Main().DefaultMaxTime(n))
	if !ok {
		return TerminatingResult{}, fmt.Errorf("popsize: leader timer never fired on n=%d", n)
	}
	res := TerminatingResult{TerminatedAt: at, ConvergedFirst: p.MainConverged(s)}
	sum, count := 0.0, 0
	for _, a := range s.Agents() {
		if est, has := a.Main.Estimate(); has {
			sum += est
			count++
		}
	}
	if count > 0 {
		res.Estimate = sum / float64(count)
	}
	return res, nil
}

// ErrorBound is Theorem 3.1's additive error bound on |estimate − log₂ n|.
const ErrorBound = 5.7

// FailureProbability returns Theorem 3.1's bound 9/n on the probability
// that a run's estimate misses log₂ n by more than ErrorBound.
func FailureProbability(n int) float64 { return 9 / float64(n) }

var _ = core.Initial // anchor: the facade intentionally re-exports core types
