// Package popsize is a Go implementation of the population-size estimation
// protocols of Doty & Eftekhari, "Efficient size estimation and
// impossibility of termination in uniform dense population protocols"
// (PODC 2019).
//
// The headline protocol, Log-Size-Estimation, is uniform (agents know
// nothing about n, not even an estimate) and leaderless (all agents start
// identical); it computes log₂ n ± 5.7 with probability >= 1 − 9/n in
// O(log² n) parallel time using O(log⁴ n) states:
//
//	est, err := popsize.New(popsize.FastConfig())
//	if err != nil { ... }
//	res := est.Run(100000, popsize.RunOptions{Seed: 1})
//	fmt.Printf("log2(n) ≈ %.2f (true %.2f)\n", res.Estimate, math.Log2(100000))
//
// The package also exposes the paper's variants — the deterministic
// synthetic-coin protocol of Appendix B, the probability-1 upper-bound
// protocol of §3.3, and the terminating-with-a-leader protocol of §3.4 —
// plus the [2]-style weak estimator the main protocol bootstraps from.
// Deeper machinery (the simulation engines, composition framework,
// termination/impossibility experiments) lives in the internal packages
// and is exercised by cmd/experiments and the examples.
//
// # Simulation backends
//
// Three interchangeable engines implement the paper's uniformly random
// pairwise scheduler, unified behind the internal pop.Engine interface
// and selected per run via RunOptions.Backend:
//
//   - The sequential engine (pop.Sequential) keeps an explicit agent
//     array and simulates one interaction at a time. It is the reference
//     implementation: simple, allocation-free per step, and the only
//     engine with per-agent instrumentation (interaction counts).
//
//   - The batched engine (pop.Batched) keeps only the configuration
//     multiset — state counts — and simulates collision-free batches of
//     ~√n interactions at a time with hypergeometric sampling and a
//     deterministic-transition cache, following Berenbrink et al.
//     (arXiv:2005.03584). Its per-interaction cost depends on the number
//     of live states (O(log⁴ n) here, per Lemma 3.9) rather than on n,
//     so it overtakes the sequential engine as populations grow: ~3× at
//     n = 10⁶ and >5× at n = 10⁷ on this protocol. Trajectories are
//     identically distributed to the sequential engine's — validated by
//     the cross-backend equivalence suite — but not bit-identical for a
//     given seed, and the engine falls back to exact sequential stepping
//     while a configuration holds more distinct states than its
//     threshold.
//
//   - The dense engine (pop.Dense) also keeps only state counts, but
//     advances each batch through the matrix of ordered state-pair
//     interaction counts (multivariate hypergeometric draws), applying
//     every deterministic transition once per state pair with its
//     multiplicity. Per-batch work depends on the live-state count, not
//     the batch length: every hypergeometric draw runs in constant
//     expected time (an HRUA rejection sampler above the light-state
//     crossover, overflow-safe to N = 10¹²), and no agent-sized
//     allocation exists anywhere — populations of 10⁹–10¹⁰ agents are
//     routine. It delegates to the
//     batched engine while a configuration holds more live states than
//     its √n-scaled threshold.
//
// The default (pop.Auto) picks the batched engine for populations of at
// least 4096 agents and the dense engine beyond ~8 million (2²³).
// Multi-trial experiments parallelize across goroutines with
// pop.RunTrials.
//
// A single trial also parallelizes: RunOptions.Parallelism (the
// commands' -par flag) switches the multiset engines' hot sampling
// paths to a divide-and-conquer splitter that fans out across cores
// while deriving all randomness from (seed, tree-node path) rather than
// worker identity — any Parallelism >= 1 produces the byte-identical
// trajectory, so parallel runs remain exactly reproducible. The default
// (0) enables it with a GOMAXPROCS worker target above n = 2²⁴ and
// keeps the legacy serial samplers below; trial-level and intra-trial
// workers are jointly capped at GOMAXPROCS.
//
// # Dynamic populations
//
// All three engines support join/leave churn between interactions —
// AddAgents inserts agents in a given state, RemoveAgents removes a
// uniform-random subset (drawn as a multivariate hypergeometric sample
// of the configuration on the multiset backends) — and parallel time is
// accumulated per population-size segment so it stays meaningful as n
// changes. The internal churn package layers declarative schedules
// (step and Poisson turnover, doubling/halving, bursts) and a
// detect-and-restart size tracker in the spirit of Kaaser & Lohmann
// (arXiv:2405.05137) on top; see DESIGN.md §1.2, examples/churn, and
// the E-churn experiments.
//
// # Snapshots and trajectory histories
//
// Every engine serializes its complete resumable state — configuration,
// interaction count, per-segment time accounting, rng stream, and mode
// (mid-fallback, mid-delegation) — as a versioned snapshot, and restoring
// one resumes the run byte-identically to an uninterrupted execution on
// every backend (RunOptions.Restore / RunOptions.SnapshotSink at the
// library level; -snapshot/-snapshot-at/-restore on the commands). A
// sampled trajectory history records the full configuration every Δ units
// of parallel time without perturbing the run statistically
// (RunOptions.History; -history/-history-dt streams it as JSONL). The
// churn tracker checkpoints its own state alongside the engine and
// resumes exactly. See DESIGN.md §1.3.
//
// # Declarative protocol tables and the protocol zoo
//
// Beyond the paper's pipeline, protocols small enough to write as data
// are declared as transition tables: the internal pop.Table maps
// ordered (receiver, sender) state pairs to outcomes — deterministic, or
// weighted randomized branches — and compiles into an executable rule
// plus metadata (declared state set, per-pair determinism, a dense
// transition matrix) that the multiset engines exploit to resolve
// interactions by table lookup, byte-identically to the rule-closure
// path. The internal protocol registry maps names to runnable
// protocols; cmd/popsim's -protocol flag dispatches on it, covering the
// estimation pipeline and its baselines plus a table-compiled zoo
// (epidemic, 3-state approximate majority, undecided-state majority,
// phase-clock junta election, Berenbrink–Kaaser–Radzik counting), all
// of which support the snapshot/history instrumentation above. See
// DESIGN.md §1.4 and examples/approxmajority (the 4-line
// approximate-majority table at n = 10⁹).
package popsize

import (
	"fmt"
	"math"

	"github.com/popsim/popsize/internal/approxsize"
	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/pop"
)

// Config holds the protocol constants (threshold and epoch multipliers and
// the logSize2 bonus). See DESIGN.md for the paper-vs-fast presets.
type Config = core.Config

// PaperConfig returns Protocol 1's constants (95, 5, +2).
func PaperConfig() Config { return core.PaperConfig() }

// FastConfig returns reduced constants that preserve the protocol's shape
// at ~30× less simulation cost; the default for tests and quick runs.
func FastConfig() Config { return core.FastConfig() }

// RunOptions configures a single protocol run.
type RunOptions = core.RunOptions

// Result is the outcome of a run: convergence, parallel time, the mean
// per-agent estimate of log₂ n, and the worst per-agent error.
type Result = core.Result

// Estimator runs the uniform leaderless Log-Size-Estimation protocol.
type Estimator struct {
	p *core.Protocol
}

// New returns an Estimator with the given configuration.
func New(cfg Config) (*Estimator, error) {
	p, err := core.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("popsize: %w", err)
	}
	return &Estimator{p: p}, nil
}

// Run simulates the protocol on a population of n agents until convergence
// (or the time budget) and returns the Result.
func (e *Estimator) Run(n int, o RunOptions) Result {
	return e.p.Run(n, o)
}

// Estimate is the one-call convenience form: it runs the fast-preset
// protocol on n agents with the given seed and returns the estimate of
// log₂ n together with the true value. If the protocol does not fully
// converge within the default budget, the best-effort estimate from the
// final configuration is still returned alongside a non-nil error, so
// callers can distinguish "didn't fully converge" (estimate usable with
// caution) from "no data" (configuration error, zero estimate).
func Estimate(n int, seed uint64) (estimate, truth float64, err error) {
	return estimateWith(n, RunOptions{Seed: seed})
}

// estimateWith is Estimate with explicit run options (tests use a small
// MaxTime to exercise the non-convergence path deterministically).
func estimateWith(n int, o RunOptions) (estimate, truth float64, err error) {
	e, err := New(FastConfig())
	if err != nil {
		return 0, 0, err
	}
	res := e.Run(n, o)
	truth = math.Log2(float64(n))
	if !res.Converged {
		return res.Estimate, truth, fmt.Errorf(
			"popsize: protocol did not converge on n=%d within the default budget (best-effort estimate %.3f)",
			n, res.Estimate)
	}
	return res.Estimate, truth, nil
}

// WeakEstimate runs the [2]-style baseline (one geometric random variable
// per agent, maximum by epidemic): a constant-multiplicative-factor
// estimate k of log₂ n (√n <= 2^k <= poly(n)) in O(log n) time. It is the
// first step of the main protocol and the weak estimate of the §1.1
// composition scheme.
func WeakEstimate(n int, seed uint64) (k int, err error) {
	return WeakEstimateBackend(n, seed, pop.Auto)
}

// WeakEstimateBackend is WeakEstimate on an explicitly chosen simulation
// backend; extra engine options (e.g. pop.WithParallelism) append.
func WeakEstimateBackend(n int, seed uint64, backend pop.Backend, opts ...pop.Option) (k int, err error) {
	s := approxsize.NewEngine(n, append([]pop.Option{pop.WithSeed(seed), pop.WithBackend(backend)}, opts...)...)
	logN := math.Log2(float64(n))
	ok, _ := s.RunUntil(approxsize.Converged, 1, 200*logN+100)
	if !ok {
		return 0, fmt.Errorf("popsize: weak estimate did not propagate on n=%d", n)
	}
	ck, _ := approxsize.CommonK(s)
	return int(ck), nil
}
