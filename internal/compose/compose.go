// Package compose implements the paper's general composition method
// (Section 1.1): making a nonuniform downstream protocol — one that needs
// an estimate of log n — uniform, despite Theorem 4.1 forbidding a
// terminating size-estimation preprocessor.
//
// Every agent samples a geometric random variable and max-propagates it,
// yielding the weak estimate s with log n − log ln n <= s <= 2·log n
// w.h.p. (Corollary D.7; in the randomized-bits model all agents sample, so
// no A/S split is needed — DESIGN.md deviation 7). Each agent counts its
// own interactions against the stage length f(s) = F·s; the first agent to
// reach it starts the next stage, which spreads by max-epidemic. The
// downstream protocol receives s and the current stage index. Whenever s
// grows, the entire downstream computation restarts.
package compose

import (
	"fmt"
	"math/rand/v2"

	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/prob"
)

// Downstream describes a (possibly nonuniform) staged protocol to be
// uniformized. D is the downstream per-agent state.
type Downstream[D comparable] struct {
	// Init returns agent i's initial downstream state; it may encode the
	// agent's input (e.g. a majority opinion).
	Init func(i int, r *rand.Rand) D
	// Transition runs one downstream interaction. It receives the current
	// stage index and the weak size estimate s, the two quantities a
	// nonuniform protocol would have hard-coded.
	Transition func(rec, sen D, stage, sEst int, r *rand.Rand) (D, D)
	// OnStage is invoked once per stage increment on each agent (in
	// order, when an agent skips stages via epidemic catch-up).
	OnStage func(d D, newStage, sEst int, r *rand.Rand) D
	// Reset restores an agent's downstream state for a full restart
	// (called when the weak estimate grows).
	Reset func(d D, r *rand.Rand) D
	// Stages returns the number K of stages to run given s (the paper's
	// K = Θ(log n), computed as a multiple of s so it needs no storage).
	Stages func(sEst int) int
}

func (d Downstream[D]) validate() error {
	if d.Init == nil || d.Transition == nil || d.OnStage == nil || d.Reset == nil || d.Stages == nil {
		return fmt.Errorf("compose: all Downstream hooks must be non-nil")
	}
	return nil
}

// Config holds the wrapper's constants.
type Config struct {
	// F is the stage-length multiplier: agents advance a stage after F·s
	// of their own interactions. It plays the role of the main protocol's
	// ClockFactor (the paper's 95; 16 is the fast preset).
	F int
}

// State is the wrapper's per-agent state around the downstream state D.
type State[D comparable] struct {
	// S is the weak size estimate (own geometric sample, then the
	// propagated maximum).
	S uint8
	// C counts own interactions within the current stage.
	C uint32
	// Stage is the current stage index (0-based).
	Stage uint16
	// Done marks completion of all K stages.
	Done bool
	// D is the downstream state.
	D D
}

// Protocol is the uniformizing wrapper.
type Protocol[D comparable] struct {
	cfg  Config
	down Downstream[D]
}

// New returns a wrapper for the downstream protocol.
func New[D comparable](cfg Config, down Downstream[D]) (*Protocol[D], error) {
	if cfg.F < 1 {
		return nil, fmt.Errorf("compose: F %d < 1", cfg.F)
	}
	if err := down.validate(); err != nil {
		return nil, err
	}
	return &Protocol[D]{cfg: cfg, down: down}, nil
}

// MustNew is New, panicking on error.
func MustNew[D comparable](cfg Config, down Downstream[D]) *Protocol[D] {
	p, err := New(cfg, down)
	if err != nil {
		panic(err)
	}
	return p
}

// Initial samples the agent's geometric contribution to the weak estimate
// and initializes the downstream state.
func (p *Protocol[D]) Initial(i int, r *rand.Rand) State[D] {
	g := prob.Geometric(r)
	if g > 255 {
		g = 255
	}
	return State[D]{S: uint8(g), D: p.down.Init(i, r)}
}

func (p *Protocol[D]) stageLen(s uint8) uint32 { return uint32(p.cfg.F) * uint32(s) }

// Rule is the wrapper's transition: weak-estimate epidemic with restart,
// per-agent stage clocks, stage epidemic, then the downstream transition
// (which runs only between agents in the same stage, the synchronized
// regime the phase clock guarantees w.h.p.).
func (p *Protocol[D]) Rule(rec, sen State[D], r *rand.Rand) (State[D], State[D]) {
	// Weak-estimate epidemic; growth restarts everything downstream.
	switch {
	case rec.S < sen.S:
		rec = p.restart(rec, sen.S, r)
	case sen.S < rec.S:
		sen = p.restart(sen, rec.S, r)
	}

	rec = p.tick(rec, r)
	sen = p.tick(sen, r)

	// Stage epidemic: the straggler catches up, applying OnStage once per
	// skipped stage.
	switch {
	case rec.Stage < sen.Stage:
		rec = p.catchUp(rec, sen.Stage, r)
	case sen.Stage < rec.Stage:
		sen = p.catchUp(sen, rec.Stage, r)
	}

	if rec.Stage == sen.Stage {
		rec.D, sen.D = p.down.Transition(rec.D, sen.D, int(rec.Stage), int(rec.S), r)
	}
	return rec, sen
}

func (p *Protocol[D]) restart(a State[D], newS uint8, r *rand.Rand) State[D] {
	a.S = newS
	a.C = 0
	a.Stage = 0
	a.Done = false
	a.D = p.down.Reset(a.D, r)
	return a
}

func (p *Protocol[D]) tick(a State[D], r *rand.Rand) State[D] {
	if a.Done {
		return a
	}
	a.C++
	if a.C >= p.stageLen(a.S) {
		a = p.enterStage(a, a.Stage+1, r)
	}
	return a
}

func (p *Protocol[D]) catchUp(a State[D], to uint16, r *rand.Rand) State[D] {
	for a.Stage < to {
		a = p.enterStage(a, a.Stage+1, r)
	}
	return a
}

func (p *Protocol[D]) enterStage(a State[D], stage uint16, r *rand.Rand) State[D] {
	a.Stage = stage
	a.C = 0
	a.D = p.down.OnStage(a.D, int(stage), int(a.S), r)
	if int(a.Stage) >= p.down.Stages(int(a.S)) {
		a.Done = true
	}
	return a
}

// Converged reports that all agents share the weak estimate and have
// completed all stages.
func (p *Protocol[D]) Converged(s pop.Engine[State[D]]) bool {
	first := true
	var est uint8
	return s.All(func(a State[D]) bool {
		if !a.Done {
			return false
		}
		if first {
			est, first = a.S, false
			return true
		}
		return a.S == est
	})
}

// NewSim constructs a simulator for the wrapped protocol.
func (p *Protocol[D]) NewSim(n int, opts ...pop.Option) *pop.Sim[State[D]] {
	return pop.New(n, p.Initial, p.Rule, opts...)
}
