package compose

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/popsim/popsize/internal/pop"
)

// tracker is a downstream state that records its lifecycle for testing.
type tracker struct {
	Inited   bool
	Stages   uint16 // number of OnStage calls received
	Resets   uint16
	LastS    uint8
	Interact uint32
}

func trackerDownstream() Downstream[tracker] {
	return Downstream[tracker]{
		Init: func(_ int, _ *rand.Rand) tracker { return tracker{Inited: true} },
		Transition: func(rec, sen tracker, _, sEst int, _ *rand.Rand) (tracker, tracker) {
			rec.Interact++
			sen.Interact++
			rec.LastS = uint8(sEst)
			sen.LastS = uint8(sEst)
			return rec, sen
		},
		OnStage: func(d tracker, _, _ int, _ *rand.Rand) tracker { d.Stages++; return d },
		Reset:   func(d tracker, _ *rand.Rand) tracker { return tracker{Inited: true, Resets: d.Resets + 1} },
		Stages:  func(sEst int) int { return 3 },
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{F: 0}, trackerDownstream()); err == nil {
		t.Error("F=0 accepted")
	}
	d := trackerDownstream()
	d.Reset = nil
	if _, err := New(Config{F: 4}, d); err == nil {
		t.Error("nil hook accepted")
	}
}

// TestEstimateRestart: an agent that learns a larger weak estimate resets
// stage, counter, and downstream state via Reset.
func TestEstimateRestart(t *testing.T) {
	p := MustNew(Config{F: 8}, trackerDownstream())
	r := rand.New(rand.NewPCG(1, 2))
	low := State[tracker]{S: 2, C: 9, Stage: 2, Done: true, D: tracker{Inited: true, Stages: 2}}
	high := State[tracker]{S: 9, D: tracker{Inited: true}}
	gotLow, _ := p.Rule(low, high, r)
	if gotLow.S != 9 {
		t.Fatalf("did not adopt larger estimate: %+v", gotLow)
	}
	if gotLow.Done || gotLow.D.Resets != 1 || gotLow.D.Stages != 0 {
		t.Errorf("restart incomplete: %+v", gotLow)
	}
}

// TestStageAdvanceByCounter: an agent reaching F·s own interactions enters
// the next stage and OnStage fires exactly once.
func TestStageAdvanceByCounter(t *testing.T) {
	p := MustNew(Config{F: 4}, trackerDownstream())
	r := rand.New(rand.NewPCG(3, 4))
	a := State[tracker]{S: 2, C: 6, D: tracker{Inited: true}} // threshold 8; this tick is #7
	b := State[tracker]{S: 2, D: tracker{Inited: true}}
	a, b = p.Rule(a, b, r) // C=7
	if a.Stage != 0 {
		t.Fatalf("advanced early: %+v", a)
	}
	a, _ = p.Rule(a, b, r) // C=8 → stage 1
	if a.Stage != 1 || a.C != 0 || a.D.Stages != 1 {
		t.Errorf("stage advance wrong: %+v", a)
	}
}

// TestStageCatchUpAppliesOnStagePerSkip: epidemic catch-up over multiple
// stages invokes OnStage once per stage, in order.
func TestStageCatchUpAppliesOnStagePerSkip(t *testing.T) {
	p := MustNew(Config{F: 100}, trackerDownstream())
	r := rand.New(rand.NewPCG(5, 6))
	behind := State[tracker]{S: 3, D: tracker{Inited: true}}
	ahead := State[tracker]{S: 3, Stage: 2, D: tracker{Inited: true, Stages: 2}}
	gotBehind, _ := p.Rule(behind, ahead, r)
	if gotBehind.Stage != 2 || gotBehind.D.Stages != 2 {
		t.Errorf("catch-up = %+v, want stage 2 with 2 OnStage calls", gotBehind)
	}
}

// TestDoneAtStageTarget: agents complete after Stages(s) stages.
func TestDoneAtStageTarget(t *testing.T) {
	p := MustNew(Config{F: 1}, trackerDownstream())
	r := rand.New(rand.NewPCG(7, 8))
	a := State[tracker]{S: 1, Stage: 2, C: 0, D: tracker{Inited: true}}
	b := State[tracker]{S: 1, Stage: 2, D: tracker{Inited: true}}
	a, _ = p.Rule(a, b, r) // threshold F·s = 1 → advance to stage 3 = Stages()
	if !a.Done {
		t.Errorf("not done after final stage: %+v", a)
	}
}

// TestEndToEndConvergence: the wrapper converges on a real population and
// hands the downstream the same weak estimate everywhere.
func TestEndToEndConvergence(t *testing.T) {
	p := MustNew(Config{F: 16}, trackerDownstream())
	const n = 500
	s := p.NewSim(n, pop.WithSeed(6))
	ok, _ := s.RunUntil(p.Converged, 5, 1e6)
	if !ok {
		t.Fatal("composition did not converge")
	}
	logN := math.Log2(n)
	est := float64(s.Agent(0).S)
	if est < logN-math.Log2(math.Log(n))-1 || est > 2*logN+1 {
		t.Errorf("weak estimate %v outside Corollary D.7 interval around log n = %.1f", est, logN)
	}
	for i, a := range s.Agents() {
		if !a.D.Inited {
			t.Fatalf("agent %d lost downstream init", i)
		}
	}
}
