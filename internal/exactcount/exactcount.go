// Package exactcount implements a simplified form of Michail's [32]
// uniform terminating exact-size-counting protocol with a pre-elected
// leader, used as the "slow but exact" baseline of experiment E16.
//
// The leader marks each agent it meets as counted and increments a counter.
// It terminates — signals that its count equals n w.h.p. — once it has gone
// TermFactor·count·ln(count+2) of its own interactions without finding an
// uncounted agent (a coupon-collector tail bound: when c agents are counted
// out of n > c, the leader finds an uncounted one within c·ln c tries
// w.h.p., so a longer drought means no uncounted agents remain). Expected
// completion is Θ(n log n) parallel time — slower than the paper's
// estimation protocol by a factor ≈ n/log n, the crossover E16 exhibits.
package exactcount

import (
	"math"
	"math/rand/v2"

	"github.com/popsim/popsize/internal/pop"
)

// DefaultTermFactor is the drought multiplier; 6 keeps the miscount
// probability negligible at the experiment's population sizes.
const DefaultTermFactor = 6

// State is one agent of the counting protocol.
type State struct {
	// Leader marks the unique counting agent.
	Leader bool
	// Counted marks a follower the leader has already seen.
	Counted bool
	// Count is the leader's tally (leader counts itself at start).
	Count uint32
	// Drought is the leader's own-interaction count since the last new
	// agent was counted.
	Drought uint32
	// Terminated is the leader's termination signal, spread by epidemic.
	Terminated bool
}

// Protocol is the counting protocol with a fixed termination factor.
type Protocol struct {
	termFactor float64
}

// New returns a Protocol; termFactor <= 0 selects DefaultTermFactor.
func New(termFactor float64) *Protocol {
	if termFactor <= 0 {
		termFactor = DefaultTermFactor
	}
	return &Protocol{termFactor: termFactor}
}

// Initial places the leader (already counted, count 1) at index 0.
func (p *Protocol) Initial(i int, _ *rand.Rand) State {
	if i == 0 {
		return State{Leader: true, Counted: true, Count: 1}
	}
	return State{}
}

// Rule implements the leader's counting walk and termination timer.
func (p *Protocol) Rule(rec, sen State, _ *rand.Rand) (State, State) {
	rec, sen = p.meet(rec, sen)
	sen, rec = p.meet(sen, rec)
	if rec.Terminated != sen.Terminated {
		rec.Terminated = true
		sen.Terminated = true
	}
	return rec, sen
}

func (p *Protocol) meet(a, b State) (State, State) {
	if !a.Leader {
		return a, b
	}
	if !b.Counted {
		b.Counted = true
		a.Count++
		a.Drought = 0
		return a, b
	}
	a.Drought++
	limit := p.termFactor * float64(a.Count) * math.Log(float64(a.Count)+2)
	if float64(a.Drought) >= limit {
		a.Terminated = true
	}
	return a, b
}

// LeaderCount returns the leader's current tally (the maximum over leader
// states, so mid-run results are deterministic for a seed even while the
// leader's old state lingers in a snapshot).
func LeaderCount(s pop.Engine[State]) int {
	m := 0
	for a := range s.Counts() {
		if a.Leader && int(a.Count) > m {
			m = int(a.Count)
		}
	}
	return m
}

// Terminated reports whether any agent carries the termination signal.
func Terminated(s pop.Engine[State]) bool {
	return s.Any(func(a State) bool { return a.Terminated })
}

// NewSim constructs a sequential simulator for the protocol.
func (p *Protocol) NewSim(n int, opts ...pop.Option) *pop.Sim[State] {
	return pop.New(n, p.Initial, p.Rule, opts...)
}

// NewEngine constructs a simulation engine for the protocol; the backend
// is chosen with pop.WithBackend. The protocol cycles through Θ(n log n)
// leader states over a run, but only a handful are live at a time, so the
// batched engine applies (its interning tables compact dead states).
func (p *Protocol) NewEngine(n int, opts ...pop.Option) pop.Engine[State] {
	return pop.NewEngine(n, p.Initial, p.Rule, opts...)
}
