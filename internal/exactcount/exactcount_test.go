package exactcount

import (
	"testing"

	"github.com/popsim/popsize/internal/pop"
)

// TestExactCount: the leader terminates with exactly n counted, across
// sizes and seeds.
func TestExactCount(t *testing.T) {
	p := New(0)
	for _, n := range []int{2, 5, 17, 64, 200} {
		for seed := uint64(0); seed < 3; seed++ {
			s := p.NewSim(n, pop.WithSeed(seed))
			ok, _ := s.RunUntil(Terminated, 5, float64(2000*n))
			if !ok {
				t.Fatalf("n=%d seed=%d: never terminated", n, seed)
			}
			if got := LeaderCount(s); got != n {
				t.Errorf("n=%d seed=%d: terminated with count %d", n, seed, got)
			}
		}
	}
}

// TestCountNeverExceedsN: the tally is bounded by the population size in
// every reachable configuration.
func TestCountNeverExceedsN(t *testing.T) {
	p := New(0)
	const n = 50
	s := p.NewSim(n, pop.WithSeed(1))
	for i := 0; i < 100; i++ {
		s.RunTime(2)
		if c := LeaderCount(s); c > n {
			t.Fatalf("count %d > n at time %.0f", c, s.Time())
		}
	}
}

// TestTimeGrowsSuperlogarithmically: counting takes Θ(n log n) time, vastly
// more than the estimation protocol's polylog — the E16 crossover.
func TestTimeGrowsSuperlogarithmically(t *testing.T) {
	p := New(0)
	timeFor := func(n int) float64 {
		var total float64
		const trials = 3
		for seed := uint64(0); seed < trials; seed++ {
			s := p.NewSim(n, pop.WithSeed(seed))
			ok, at := s.RunUntil(Terminated, 5, float64(5000*n))
			if !ok {
				t.Fatalf("n=%d: never terminated", n)
			}
			total += at
		}
		return total / trials
	}
	t64, t512 := timeFor(64), timeFor(512)
	// Θ(n log n) predicts a factor ≈ 8·(9/6) = 12; anything clearly
	// superlinear in n/„log-ish“ terms passes.
	if ratio := t512 / t64; ratio < 5 {
		t.Errorf("time ratio (512 vs 64) = %.1f, want >= 5 (Θ(n log n) growth)", ratio)
	}
}
