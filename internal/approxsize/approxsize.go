// Package approxsize implements the baseline size-estimation protocol of
// Alistarh, Aspnes, Eisenstat, Gelashvili & Rivest [2], which the main
// protocol uses as its first step: every agent generates one geometric
// random variable and the population propagates the maximum by epidemic.
//
// The result k satisfies log n − log ln n <= k <= 2·log n w.h.p.
// (Corollary A.2's randomized-model analysis) — a constant multiplicative
// approximation of log n, i.e. a polynomial approximation of n, computed in
// O(log n) time and states. The main protocol improves this to a constant
// additive approximation of log n at the price of O(log² n) time
// (experiment E16 measures both sides of the trade).
package approxsize

import (
	"math/rand/v2"

	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/prob"
)

// State is a single propagating value.
type State struct {
	// K is the largest geometric random variable seen.
	K uint8
}

// Initial draws the agent's geometric random variable.
func Initial(_ int, r *rand.Rand) State {
	g := prob.Geometric(r)
	if g > 255 {
		g = 255
	}
	return State{K: uint8(g)}
}

// Rule propagates the maximum.
func Rule(rec, sen State, _ *rand.Rand) (State, State) {
	if rec.K < sen.K {
		rec.K = sen.K
	} else if sen.K < rec.K {
		sen.K = rec.K
	}
	return rec, sen
}

// Converged reports whether all agents agree (the maximum has reached
// everyone). Note the protocol itself cannot detect this — Theorem 4.1 —
// so this predicate exists only for external measurement.
func Converged(s pop.Engine[State]) bool {
	_, ok := CommonK(s)
	return ok
}

// CommonK returns the population-wide value k once the maximum has reached
// every agent, or false while agents still disagree.
func CommonK(s pop.Engine[State]) (uint8, bool) {
	c := s.Counts()
	if len(c) != 1 {
		return 0, false
	}
	for a := range c {
		return a.K, true
	}
	return 0, false
}

// NewSim constructs a sequential simulator for the baseline.
func NewSim(n int, opts ...pop.Option) *pop.Sim[State] {
	return pop.New(n, Initial, Rule, opts...)
}

// NewEngine constructs a simulation engine for the baseline; the backend
// is chosen with pop.WithBackend.
func NewEngine(n int, opts ...pop.Option) pop.Engine[State] {
	return pop.NewEngine(n, Initial, Rule, opts...)
}
