package approxsize

import (
	"math"
	"testing"

	"github.com/popsim/popsize/internal/pop"
)

// TestConvergesToMultiplicativeEstimate checks the [2]-style guarantee in
// the randomized model: k ∈ [log n − log ln n, 2 log n] w.h.p., reached in
// O(log n) time.
func TestConvergesToMultiplicativeEstimate(t *testing.T) {
	const n = 4096
	logN := math.Log2(n)
	lo := logN - math.Log2(math.Log(n))
	hi := 2 * logN
	bad := 0
	const trials = 20
	for seed := uint64(0); seed < trials; seed++ {
		s := NewSim(n, pop.WithSeed(seed))
		ok, at := s.RunUntil(Converged, 1, 100*logN)
		if !ok {
			t.Fatalf("seed %d: max did not propagate", seed)
		}
		if at > 10*logN {
			t.Errorf("seed %d: propagation took %.1f > 10 log n", seed, at)
		}
		k := float64(s.Agent(0).K)
		if k < lo || k > hi {
			bad++
		}
	}
	// The two one-sided failure probabilities are each < 1/n; with 20
	// trials at n=4096 even one failure would be surprising, but allow it.
	if bad > 1 {
		t.Errorf("%d/%d trials outside [log n − log ln n, 2 log n]", bad, trials)
	}
}

// TestMonotone: the propagated value never decreases at any agent.
func TestMonotone(t *testing.T) {
	rec, sen := State{K: 3}, State{K: 8}
	gr, gs := Rule(rec, sen, nil)
	if gr.K != 8 || gs.K != 8 {
		t.Errorf("Rule() = %d,%d; want 8,8", gr.K, gs.K)
	}
}
