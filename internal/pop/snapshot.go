// Versioned engine snapshot/restore.
//
// A Snapshot captures everything an engine needs to resume a run exactly
// where it left off: the configuration (agent array or interned state
// counts), the interaction count, the per-segment parallel-time
// accounting, the rng stream state (rand.PCG's binary form — one PCG
// underlies both the engine's own draws and the rule stream, so a single
// blob covers both), the parallelism class, and the engine's mode
// (BatchSim's sequential fallback, DenseSim's delegation, each with its
// re-check budget). Restore rebuilds an engine from a snapshot such that
// restore-then-run is byte-identical to the uninterrupted run, for every
// backend and parallelism class, including snapshots taken mid-fallback
// and mid-delegation.
//
// # What is deliberately NOT captured
//
// The deterministic-transition cache, its generation counter, and the
// execution statistics (BatchStats/DenseStats) are excluded. The cache
// holds only zero-randomness transitions, so a post-restore cold-cache
// miss re-derives exactly the outputs a hit would have returned without
// consuming the rule stream — cache state can never influence the
// trajectory, only the hit/call statistics. Excluding it keeps snapshots
// small (a 4 MiB table would dwarf a polylog(n)-state configuration) and
// makes the byte-identity guarantee independent of cache history. The
// interning table, by contrast, IS captured in full — including entries
// whose count has dropped to zero — because the compaction trigger reads
// the table length, so dropping dead entries would change when future
// compactions fire.
//
// # Versioning and compatibility
//
// Snapshots are JSON (stable field order; the state type S must be
// JSON-marshalable, which every protocol state in this repository is) and
// carry a format version. UnmarshalSnapshot and Restore reject unknown
// versions and malformed shapes; within a version, a snapshot is portable
// across machines but pins the backend, the parallelism class, and —
// implicitly, through the rng stream — the exact rule. Restoring with a
// different rule is undetectable and yields a well-formed but meaningless
// run, so callers must pair snapshots with the protocol that produced
// them.
package pop

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"sort"
)

// SnapshotVersion is the current snapshot format version. Restore accepts
// only snapshots carrying it; the version bumps whenever a field changes
// meaning or a new field stops being optional.
const SnapshotVersion = 1

// Snapshot is the versioned, serializable full state of a simulation
// engine. Fields beyond the common header apply only to the backends
// noted; Marshal renders the whole value as JSON with a stable field
// order, so equal engine states produce byte-identical snapshots.
type Snapshot[S comparable] struct {
	// Version is the snapshot format version (SnapshotVersion).
	Version int `json:"version"`
	// Backend is the engine kind ("seq", "batch" or "dense").
	Backend string `json:"backend"`
	// N is the population size.
	N int `json:"n"`
	// Interactions is the engine's own interaction count. For a delegated
	// DenseSim this excludes the inner engine's share, which lives in
	// Inner (Engine.Interactions reports their sum).
	Interactions int64 `json:"interactions"`
	// TimeBase and SegStart carry the per-segment parallel-time
	// accounting (see Engine.Time): time accumulated over completed churn
	// segments, and the interaction count at the current segment's start.
	TimeBase float64 `json:"time_base"`
	SegStart int64   `json:"seg_start"`
	// RNG is the rand.PCG stream state (MarshalBinary form). The multiset
	// engines' rule stream shares the same PCG, so one blob restores both.
	RNG []byte `json:"rng"`
	// Par is the resolved parallelism class: 0 = legacy serial samplers,
	// >= 1 = node-seeded splitter path. It is restored verbatim — the two
	// classes consume the random stream differently, so the class is part
	// of the trajectory, not a tuning knob.
	Par int `json:"par,omitempty"`

	// Agents is the explicit agent array: the sequential engine's
	// configuration, and the batched engine's while in its sequential
	// fallback (where the counts vector is stale and therefore omitted).
	Agents []S `json:"agents,omitempty"`
	// TrackStates and Seen carry the sequential engine's distinct-state
	// tracking: Seen holds every state observed so far, sorted by its
	// JSON encoding so equal sets serialize identically.
	TrackStates bool `json:"track_states,omitempty"`
	Seen        []S  `json:"seen,omitempty"`
	// ICounts carries the sequential engine's per-agent interaction
	// counts (WithInteractionCounts), parallel to Agents.
	ICounts []int64 `json:"icounts,omitempty"`

	// States and Counts are the multiset engines' parallel interning
	// tables, in id order and complete — including dead (zero-count)
	// entries, which the compaction trigger depends on. Counts is omitted
	// while the batched engine is in its sequential fallback (stale) and
	// while the dense engine is delegated (the configuration lives in
	// Inner).
	States []S     `json:"states,omitempty"`
	Counts []int64 `json:"counts,omitempty"`
	// Distinct is the number of distinct states ever observed (for a
	// delegated DenseSim, excluding the inner engine's share beyond
	// InnerBaseDistinct).
	Distinct int `json:"distinct,omitempty"`
	// QMax is the live-state threshold: BatchSim's fallback cutoff or
	// DenseSim's delegation cutoff.
	QMax int `json:"qmax,omitempty"`

	// SeqMode and SeqRecheck capture BatchSim's sequential fallback: mode
	// flag and interactions remaining until the next re-entry check.
	SeqMode    bool  `json:"seq_mode,omitempty"`
	SeqRecheck int64 `json:"seq_recheck,omitempty"`

	// DenseSim extras: the WithDenseThreshold override (0 = rescale with
	// n on churn), the batch threshold forwarded to delegated engines,
	// and the raw WithParallelism value future delegations will resolve.
	QMaxOverride   int `json:"qmax_override,omitempty"`
	BatchThreshold int `json:"batch_threshold,omitempty"`
	ParOption      int `json:"par_option,omitempty"`
	// Inner is the delegated BatchSim's own snapshot; InnerRecheck and
	// InnerBaseDistinct are the delegation bookkeeping around it.
	Inner             *Snapshot[S] `json:"inner,omitempty"`
	InnerRecheck      int64        `json:"inner_recheck,omitempty"`
	InnerBaseDistinct int          `json:"inner_base_distinct,omitempty"`
}

// Marshal renders the snapshot as JSON. Field order is the struct order
// and Seen is pre-sorted, so equal engine states marshal to identical
// bytes — the property the round-trip tests and the CI byte-compare rely
// on.
func (s *Snapshot[S]) Marshal() ([]byte, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("pop: marshaling snapshot: %w", err)
	}
	return b, nil
}

// UnmarshalSnapshot parses and validates a snapshot produced by Marshal.
func UnmarshalSnapshot[S comparable](data []byte) (*Snapshot[S], error) {
	var s Snapshot[S]
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("pop: unmarshaling snapshot: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// WriteSnapshotFile marshals the snapshot to path (0644).
func WriteSnapshotFile[S comparable](path string, s *Snapshot[S]) error {
	b, err := s.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadSnapshotFile reads and validates a snapshot written by
// WriteSnapshotFile.
func ReadSnapshotFile[S comparable](path string) (*Snapshot[S], error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalSnapshot[S](b)
}

// validate checks the version and per-backend shape invariants shared by
// UnmarshalSnapshot and Restore.
func (s *Snapshot[S]) validate() error {
	if s.Version != SnapshotVersion {
		return fmt.Errorf("pop: snapshot version %d is not supported (this build reads version %d)",
			s.Version, SnapshotVersion)
	}
	if s.N < 2 {
		return fmt.Errorf("pop: snapshot population size %d < 2", s.N)
	}
	if len(s.RNG) == 0 {
		return fmt.Errorf("pop: snapshot has no rng state")
	}
	switch s.Backend {
	case Sequential.String():
		if len(s.Agents) != s.N {
			return fmt.Errorf("pop: sequential snapshot has %d agents for n=%d", len(s.Agents), s.N)
		}
		if s.ICounts != nil && len(s.ICounts) != s.N {
			return fmt.Errorf("pop: sequential snapshot has %d interaction counts for n=%d", len(s.ICounts), s.N)
		}
		if s.TrackStates && len(s.Seen) == 0 {
			return fmt.Errorf("pop: sequential snapshot tracks states but carries none")
		}
	case Batched.String():
		if s.SeqMode {
			if len(s.Agents) != s.N {
				return fmt.Errorf("pop: batch snapshot in sequential fallback has %d agents for n=%d",
					len(s.Agents), s.N)
			}
		} else {
			if len(s.Counts) != len(s.States) {
				return fmt.Errorf("pop: batch snapshot has %d counts for %d states", len(s.Counts), len(s.States))
			}
			var total int64
			for i, c := range s.Counts {
				if c < 0 {
					return fmt.Errorf("pop: batch snapshot count %d of state %v is negative", c, s.States[i])
				}
				total += c
			}
			if total != int64(s.N) {
				return fmt.Errorf("pop: batch snapshot counts total %d for n=%d", total, s.N)
			}
		}
		if s.QMax <= 0 {
			return fmt.Errorf("pop: batch snapshot has no live-state threshold")
		}
	case Dense.String():
		if s.Inner != nil {
			if s.Inner.Backend != Batched.String() {
				return fmt.Errorf("pop: dense snapshot delegates to backend %q, want %q",
					s.Inner.Backend, Batched)
			}
			if err := s.Inner.validate(); err != nil {
				return fmt.Errorf("pop: dense snapshot's inner engine: %w", err)
			}
			if s.Inner.N != s.N {
				return fmt.Errorf("pop: dense snapshot has n=%d but its inner engine n=%d", s.N, s.Inner.N)
			}
		} else {
			if len(s.Counts) != len(s.States) {
				return fmt.Errorf("pop: dense snapshot has %d counts for %d states", len(s.Counts), len(s.States))
			}
			var total int64
			for i, c := range s.Counts {
				if c < 0 {
					return fmt.Errorf("pop: dense snapshot count %d of state %v is negative", c, s.States[i])
				}
				total += c
			}
			if total != int64(s.N) {
				return fmt.Errorf("pop: dense snapshot counts total %d for n=%d", total, s.N)
			}
		}
		if s.QMax <= 0 {
			return fmt.Errorf("pop: dense snapshot has no live-state threshold")
		}
	default:
		return fmt.Errorf("pop: snapshot backend %q is unknown (want %q, %q or %q)",
			s.Backend, Sequential, Batched, Dense)
	}
	return nil
}

// restorePCG rebuilds a PCG from its marshaled stream state.
func restorePCG(state []byte) (*rand.PCG, error) {
	pcg := rand.NewPCG(0, 0)
	if err := pcg.UnmarshalBinary(state); err != nil {
		return nil, fmt.Errorf("pop: restoring snapshot rng state: %w", err)
	}
	return pcg, nil
}

// sortedStates renders a state set as a slice sorted by each state's JSON
// encoding — comparable types have no order of their own, and map
// iteration must not leak into the snapshot bytes.
func sortedStates[S comparable](set map[S]struct{}) ([]S, error) {
	type enc struct {
		s S
		b []byte
	}
	es := make([]enc, 0, len(set))
	for s := range set {
		b, err := json.Marshal(s)
		if err != nil {
			return nil, fmt.Errorf("pop: marshaling tracked state %v: %w", s, err)
		}
		es = append(es, enc{s, b})
	}
	sort.Slice(es, func(i, j int) bool { return bytes.Compare(es[i].b, es[j].b) < 0 })
	out := make([]S, len(es))
	for i, e := range es {
		out[i] = e.s
	}
	return out, nil
}

// Snapshot captures the sequential engine's full state.
func (s *Sim[S]) Snapshot() (*Snapshot[S], error) {
	rng, err := s.pcg.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("pop: marshaling rng state: %w", err)
	}
	snap := &Snapshot[S]{
		Version:      SnapshotVersion,
		Backend:      Sequential.String(),
		N:            len(s.agents),
		Interactions: s.interactions,
		TimeBase:     s.timeBase,
		SegStart:     s.segStart,
		RNG:          rng,
		Agents:       append([]S(nil), s.agents...),
	}
	if s.seen != nil {
		snap.TrackStates = true
		if snap.Seen, err = sortedStates(s.seen); err != nil {
			return nil, err
		}
	}
	if s.icounts != nil {
		snap.ICounts = append([]int64(nil), s.icounts...)
	}
	return snap, nil
}

// Snapshot captures the batched engine's full state. In multiset mode the
// interning tables are serialized verbatim (dead entries included); in the
// sequential fallback the agent array is authoritative and the stale
// counts vector is omitted.
func (b *BatchSim[S]) Snapshot() (*Snapshot[S], error) {
	rng, err := b.pcg.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("pop: marshaling rng state: %w", err)
	}
	snap := &Snapshot[S]{
		Version:      SnapshotVersion,
		Backend:      Batched.String(),
		N:            b.n,
		Interactions: b.interacts,
		TimeBase:     b.timeBase,
		SegStart:     b.segStart,
		RNG:          rng,
		Par:          b.par,
		States:       append([]S(nil), b.states...),
		Distinct:     b.distinct,
		QMax:         b.qMax,
	}
	if b.seqMode {
		snap.SeqMode = true
		snap.SeqRecheck = b.seqRecheck
		snap.Agents = append([]S(nil), b.agents...)
	} else {
		snap.Counts = append([]int64(nil), b.counts...)
	}
	return snap, nil
}

// Snapshot captures the dense engine's full state. While delegated, the
// configuration lives in the inner BatchSim's nested snapshot and the
// outer tables (stale — re-entry rebuilds them wholesale from the inner
// engine) are omitted.
func (d *DenseSim[S]) Snapshot() (*Snapshot[S], error) {
	rng, err := d.pcg.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("pop: marshaling rng state: %w", err)
	}
	snap := &Snapshot[S]{
		Version:        SnapshotVersion,
		Backend:        Dense.String(),
		N:              d.n,
		Interactions:   d.interactsBase,
		TimeBase:       d.timeBase,
		SegStart:       d.segStart,
		RNG:            rng,
		Par:            d.par,
		Distinct:       d.distinct,
		QMax:           d.qMax,
		QMaxOverride:   d.qMaxOverride,
		BatchThreshold: d.batchThreshold,
		ParOption:      d.parOption,
	}
	if d.inner != nil {
		inner, err := d.inner.Snapshot()
		if err != nil {
			return nil, err
		}
		snap.Inner = inner
		snap.InnerRecheck = d.innerRecheck
		snap.InnerBaseDistinct = d.innerBaseDistinct
	} else {
		snap.States = append([]S(nil), d.states...)
		snap.Counts = append([]int64(nil), d.counts...)
	}
	return snap, nil
}

// Restore rebuilds an engine from a snapshot, resuming the exact
// execution: running the restored engine produces the byte-identical
// trajectory (and byte-identical future snapshots) the snapshotted engine
// would have produced. The rule must be the one the original engine ran;
// backend, parallelism class and thresholds come from the snapshot, not
// from options — of the options only WithTable is honored (reattaching a
// compiled table is trajectory-neutral, see table.go, so a run may gain
// or lose the bypass across a snapshot boundary without diverging).
func Restore[S comparable](snap *Snapshot[S], rule Rule[S], opts ...Option) (Engine[S], error) {
	if rule == nil {
		panic("pop: nil rule")
	}
	if err := snap.validate(); err != nil {
		return nil, err
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	switch snap.Backend {
	case Sequential.String():
		return restoreSim(snap, rule)
	case Batched.String():
		return restoreBatch(snap, rule, o)
	default:
		return restoreDense(snap, rule, o)
	}
}

// restoreSim rebuilds a sequential engine.
func restoreSim[S comparable](snap *Snapshot[S], rule Rule[S]) (*Sim[S], error) {
	pcg, err := restorePCG(snap.RNG)
	if err != nil {
		return nil, err
	}
	s := &Sim[S]{
		pcg:          pcg,
		rng:          rand.New(pcg),
		agents:       append([]S(nil), snap.Agents...),
		rule:         rule,
		interactions: snap.Interactions,
		timeBase:     snap.TimeBase,
		segStart:     snap.SegStart,
	}
	if snap.TrackStates {
		s.seen = make(map[S]struct{}, 2*len(snap.Seen))
		for _, st := range snap.Seen {
			s.seen[st] = struct{}{}
		}
	}
	if snap.ICounts != nil {
		s.icounts = append([]int64(nil), snap.ICounts...)
	}
	return s, nil
}

// restoreTables rebuilds an interning position map from a serialized
// states table (which must be duplicate-free — intern assigns each state
// one id).
func restoreTables[S comparable](states []S) (map[S]int32, error) {
	pos := make(map[S]int32, 2*len(states))
	for id, st := range states {
		if _, dup := pos[st]; dup {
			return nil, fmt.Errorf("pop: snapshot interning table repeats state %v", st)
		}
		pos[st] = int32(id)
	}
	return pos, nil
}

// restoreBatch rebuilds a batched engine. The transition cache starts
// cold (generation 1, empty) by design — see the file comment.
func restoreBatch[S comparable](snap *Snapshot[S], rule Rule[S], o options) (*BatchSim[S], error) {
	pcg, err := restorePCG(snap.RNG)
	if err != nil {
		return nil, err
	}
	pos, err := restoreTables(snap.States)
	if err != nil {
		return nil, err
	}
	cs := &countingSource{src: pcg}
	b := &BatchSim[S]{
		pcg:       pcg,
		rng:       rand.New(pcg),
		ruleRand:  cs,
		ruleRng:   rand.New(cs),
		rule:      rule,
		n:         snap.N,
		interacts: snap.Interactions,
		timeBase:  snap.TimeBase,
		segStart:  snap.SegStart,
		states:    append([]S(nil), snap.States...),
		pos:       pos,
		counts:    make([]int64, len(snap.States)),
		distinct:  snap.Distinct,
		qMax:      snap.QMax,
		par:       snap.Par,
		tbl:       attachTable[S](o),
	}
	if b.tbl != nil {
		b.tbl.rebuild(b.states)
	}
	b.cache = make([]cacheSlot, 1<<cacheBits)
	b.cacheGen = 1
	if snap.SeqMode {
		// The fallback's counts vector is stale by invariant (nothing
		// reads it before recountFromAgents) and was omitted; the agent
		// array is the configuration.
		b.seqMode = true
		b.seqRecheck = snap.SeqRecheck
		b.agents = append([]S(nil), snap.Agents...)
	} else {
		copy(b.counts, snap.Counts)
		for _, c := range b.counts {
			b.total += c
			if c > 0 {
				b.live++
			}
		}
	}
	return b, nil
}

// restoreDense rebuilds a dense engine, recursing into the delegated
// BatchSim's nested snapshot when one is present.
func restoreDense[S comparable](snap *Snapshot[S], rule Rule[S], o options) (*DenseSim[S], error) {
	pcg, err := restorePCG(snap.RNG)
	if err != nil {
		return nil, err
	}
	cs := &countingSource{src: pcg}
	d := &DenseSim[S]{
		pcg:            pcg,
		rng:            rand.New(pcg),
		ruleRand:       cs,
		ruleRng:        rand.New(cs),
		rule:           rule,
		n:              snap.N,
		interactsBase:  snap.Interactions,
		timeBase:       snap.TimeBase,
		segStart:       snap.SegStart,
		pos:            map[S]int32{},
		distinct:       snap.Distinct,
		qMax:           snap.QMax,
		qMaxOverride:   snap.QMaxOverride,
		batchThreshold: snap.BatchThreshold,
		par:            snap.Par,
		parOption:      snap.ParOption,
		tbl:            attachTable[S](o),
	}
	d.cache = make([]cacheSlot, 1<<denseCacheBits)
	d.cacheGen = 1
	if snap.Inner != nil {
		inner, err := restoreBatch(snap.Inner, rule, o)
		if err != nil {
			return nil, err
		}
		d.inner = inner
		d.innerRecheck = snap.InnerRecheck
		d.innerBaseDistinct = snap.InnerBaseDistinct
		return d, nil
	}
	pos, err := restoreTables(snap.States)
	if err != nil {
		return nil, err
	}
	d.states = append([]S(nil), snap.States...)
	d.counts = append([]int64(nil), snap.Counts...)
	d.pos = pos
	if d.tbl != nil {
		d.tbl.rebuild(d.states)
	}
	for _, c := range d.counts {
		d.total += c
		if c > 0 {
			d.live++
		}
	}
	return d, nil
}
