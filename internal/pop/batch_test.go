package pop

import (
	"fmt"
	"math"
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"
)

// Toy protocols used by the white-box batch tests. (Tests inside package
// pop cannot import the real protocol packages — they would form an import
// cycle — so the cross-protocol equivalence suite lives in equiv_test.go,
// package pop_test.)

// maxRule is a deterministic two-way epidemic: both agents adopt the max.
func maxRule(a, b int, _ *rand.Rand) (int, int) {
	m := max(a, b)
	return m, m
}

// coinRule consumes randomness on every invocation.
func coinRule(a, b int, r *rand.Rand) (int, int) {
	if r.IntN(2) == 0 {
		return a, b
	}
	return b, a
}

// amRule is the 3-state approximate-majority protocol on {-1: B, 0: U, 1: A}.
func amRule(rec, sen int, _ *rand.Rand) (int, int) {
	switch {
	case rec == 1 && sen == -1:
		return 0, -1
	case rec == -1 && sen == 1:
		return 0, 1
	case rec == 0 && sen != 0:
		return sen, sen
	}
	return rec, sen
}

// explodeRule mints a fresh state per interaction: the receiver adopts
// 1 + the largest value either agent has seen, so the number of live
// states grows without bound until the fallback threshold trips.
func explodeRule(a, b int, _ *rand.Rand) (int, int) {
	return max(a, b) + 1, b
}

func countsSum[S comparable](e Engine[S]) int {
	n := 0
	for _, c := range e.Counts() {
		n += c
	}
	return n
}

// TestBatchConservationEveryBatch asserts exact agent-count conservation
// after every single batch, via the test hook that fires at batch commit.
func TestBatchConservationEveryBatch(t *testing.T) {
	const n = 2000
	b := NewBatch(n, func(i int, _ *rand.Rand) int { return i % 7 }, amRule, WithSeed(11))
	batches := 0
	b.batchEvents = func(ell int, collided bool) {
		batches++
		if got := countsSum[int](b); got != n {
			t.Fatalf("after batch %d (ell=%d, collided=%v): %d agents, want %d",
				batches, ell, collided, got, n)
		}
		if b.total != int64(n) {
			t.Fatalf("running total %d, want %d", b.total, n)
		}
	}
	b.RunTime(30)
	if batches == 0 {
		t.Fatal("no batches executed")
	}
}

// TestBatchRunExactInteractionCount verifies Run(k) executes exactly k
// interactions for awkward k, including collision steps at batch ends.
func TestBatchRunExactInteractionCount(t *testing.T) {
	b := NewBatch(997, func(i int, _ *rand.Rand) int { return i % 3 }, amRule, WithSeed(5))
	total := int64(0)
	for _, k := range []int64{1, 2, 3, 17, 997, 12345, 7} {
		b.Run(k)
		total += k
		if b.Interactions() != total {
			t.Fatalf("after Run(%d): %d interactions, want %d", k, b.Interactions(), total)
		}
	}
}

// TestBatchRunLengths sanity-checks the collision-free run-length sampler:
// the mean batch length for the birthday process is Θ(√n).
func TestBatchRunLengths(t *testing.T) {
	const n = 10000
	b := NewBatch(n, func(int, *rand.Rand) int { return 0 }, amRule, WithSeed(2))
	var sum, count float64
	b.batchEvents = func(ell int, collided bool) {
		if collided {
			sum += float64(ell)
			count++
		}
	}
	b.RunTime(100)
	if count < 100 {
		t.Fatalf("only %v collision-terminated batches", count)
	}
	mean := sum / count
	root := math.Sqrt(n)
	if mean < 0.3*root || mean > 3*root {
		t.Errorf("mean collision-free run %.1f, want Θ(√n) ≈ %.1f", mean, root)
	}
}

// TestBatchFallbackTriggers: a state-exploding protocol must trip the
// live-state threshold and switch to the materialized sequential mode.
func TestBatchFallbackTriggers(t *testing.T) {
	b := NewBatch(500, func(int, *rand.Rand) int { return 0 }, explodeRule,
		WithSeed(3), WithBatchThreshold(32))
	b.RunTime(40)
	st := b.Stats()
	if st.Fallbacks == 0 {
		t.Fatalf("no fallback despite exploding states (live=%d)", b.LiveStates())
	}
	if st.SeqInteractions == 0 {
		t.Error("fallback mode executed no interactions")
	}
	if got := countsSum[int](b); got != 500 {
		t.Errorf("conservation after fallback: %d agents, want 500", got)
	}
}

// TestBatchFallbackReentry: a population seeded with n distinct values
// exceeds the threshold immediately, but the max-epidemic collapses it to
// one live state, after which the engine must return to batch mode.
func TestBatchFallbackReentry(t *testing.T) {
	const n = 500
	b := NewBatch(n, func(i int, _ *rand.Rand) int { return i }, maxRule,
		WithSeed(7), WithBatchThreshold(64))
	b.RunTime(80)
	st := b.Stats()
	if st.Fallbacks == 0 {
		t.Fatal("expected an immediate fallback with n distinct initial states")
	}
	if st.Reentries == 0 {
		t.Fatalf("no re-entry after collapse (live=%d)", b.LiveStates())
	}
	if !b.All(func(v int) bool { return v == n-1 }) {
		t.Error("epidemic did not converge to the maximum")
	}
	if st.Batches == 0 {
		t.Error("no batches ran after re-entry")
	}
}

// TestBatchDeterminism: the same seed must reproduce the identical
// configuration trajectory, checkpoint by checkpoint.
func TestBatchDeterminism(t *testing.T) {
	mk := func() *BatchSim[int] {
		return NewBatch(5000, func(i int, _ *rand.Rand) int { return i % 5 }, amRule, WithSeed(9))
	}
	b1, b2 := mk(), mk()
	for i := 0; i < 10; i++ {
		b1.RunTime(2)
		b2.RunTime(2)
		if b1.Interactions() != b2.Interactions() {
			t.Fatalf("interaction counts diverged: %d vs %d", b1.Interactions(), b2.Interactions())
		}
		if !reflect.DeepEqual(b1.Counts(), b2.Counts()) {
			t.Fatalf("checkpoint %d: configurations diverged", i)
		}
	}
}

// TestBatchMatchesSequentialDistribution is a direct distributional check
// of the batching machinery (including collision steps, which dominate at
// tiny n): the full end-configuration distribution of approximate majority
// at n=8 must agree across the sequential engine, batch Run, and the
// multiset Step path.
func TestBatchMatchesSequentialDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("distribution comparison is not short")
	}
	const n, T, trials = 8, 4, 12000
	initial := func(i int, _ *rand.Rand) int {
		if i < 5 {
			return 1
		}
		return -1
	}
	signature := func(e Engine[int]) string {
		c := e.Counts()
		keys := make([]int, 0, len(c))
		for k := range c {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		s := ""
		for _, k := range keys {
			s += fmt.Sprintf("%d:%d;", k, c[k])
		}
		return s
	}
	run := func(mk func(tr int) Engine[int]) map[string]float64 {
		sigs := RunTrials(trials, 0, func(tr int) string {
			e := mk(tr)
			e.RunTime(T)
			return signature(e)
		})
		freq := make(map[string]float64)
		for _, s := range sigs {
			freq[s] += 1.0 / trials
		}
		return freq
	}
	seq := run(func(tr int) Engine[int] {
		return New(n, initial, amRule, WithSeed(uint64(tr)*2+1))
	})
	bat := run(func(tr int) Engine[int] {
		return NewBatch(n, initial, amRule, WithSeed(uint64(tr)*2+2))
	})
	step := run(func(tr int) Engine[int] {
		b := NewBatch(n, initial, amRule, WithSeed(uint64(tr)*2+3))
		return stepOnly[int]{b}
	})
	compare := func(name string, a, b map[string]float64) {
		seen := map[string]bool{}
		for k := range a {
			seen[k] = true
		}
		for k := range b {
			seen[k] = true
		}
		for k := range seen {
			d := math.Abs(a[k] - b[k])
			// ~5 standard errors for a Bernoulli frequency at this trial count.
			tol := 5*math.Sqrt(math.Max(a[k], b[k])/trials) + 1e-3
			if d > tol {
				t.Errorf("%s: signature %q: %.4f vs %.4f (tol %.4f)", name, k, a[k], b[k], tol)
			}
		}
	}
	compare("seq vs batch", seq, bat)
	compare("seq vs multiset-step", seq, step)
}

// stepOnly forces the single-interaction multiset path of a BatchSim.
type stepOnly[S comparable] struct{ *BatchSim[S] }

func (s stepOnly[S]) Run(k int64) {
	for ; k > 0; k-- {
		s.BatchSim.Step()
	}
}
func (s stepOnly[S]) RunTime(t float64) {
	s.Run(int64(t * float64(s.N())))
}

// TestBatchCachePolicy: transitions that consume randomness must never be
// served from the deterministic-transition cache; deterministic ones must.
func TestBatchCachePolicy(t *testing.T) {
	rnd := NewBatch(3000, func(i int, _ *rand.Rand) int { return i % 3 }, coinRule, WithSeed(4))
	rnd.RunTime(10)
	if hits := rnd.Stats().CacheHits; hits != 0 {
		t.Errorf("randomized rule served %d cached transitions", hits)
	}
	det := NewBatch(3000, func(i int, _ *rand.Rand) int { return i % 3 }, amRule, WithSeed(4))
	det.RunTime(10)
	st := det.Stats()
	if st.CacheHits == 0 {
		t.Error("deterministic rule never hit the cache")
	}
	if st.CacheHits < st.RuleCalls {
		t.Errorf("expected cache hits (%d) to dominate rule calls (%d)", st.CacheHits, st.RuleCalls)
	}
}

// TestBatchDistinctStates: on a protocol that can only shuffle its initial
// values (max-epidemic), both engines must report exactly the initial
// distinct-state count.
func TestBatchDistinctStates(t *testing.T) {
	const k = 37
	initial := func(i int, _ *rand.Rand) int { return i % k }
	b := NewBatch(2000, initial, maxRule, WithSeed(6))
	b.RunTime(30)
	if got := b.DistinctStates(); got != k {
		t.Errorf("batch DistinctStates = %d, want %d", got, k)
	}
	s := New(2000, initial, maxRule, WithSeed(6), WithStateTracking())
	s.RunTime(30)
	if got := s.DistinctStates(); got != k {
		t.Errorf("sequential DistinctStates = %d, want %d", got, k)
	}
}

// TestRunUntilBoundaryParity: both engines share RunUntil's check-boundary
// semantics — the predicate is evaluated at the same parallel-time
// checkpoints and the reported detection time is the same boundary.
func TestRunUntilBoundaryParity(t *testing.T) {
	const n = 1000
	mk := map[string]Engine[int]{
		"seq":   New(n, func(int, *rand.Rand) int { return 0 }, amRule, WithSeed(1)),
		"batch": NewBatch(n, func(int, *rand.Rand) int { return 0 }, amRule, WithSeed(1)),
	}
	for name, e := range mk {
		var checks []float64
		pred := func(e Engine[int]) bool {
			checks = append(checks, e.Time())
			return e.Time() >= 3.5
		}
		ok, at := e.RunUntil(pred, 1.0, 100)
		if !ok {
			t.Fatalf("%s: predicate never held", name)
		}
		want := []float64{0, 1, 2, 3, 4}
		if !reflect.DeepEqual(checks, want) {
			t.Errorf("%s: predicate evaluated at %v, want %v", name, checks, want)
		}
		if at != 4 {
			t.Errorf("%s: detection time %v, want 4", name, at)
		}
	}
}

// TestBatchRejectsInteractionCounts pins the documented panic.
func TestBatchRejectsInteractionCounts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBatch with WithInteractionCounts did not panic")
		}
	}()
	NewBatch(10, func(int, *rand.Rand) int { return 0 }, amRule, WithInteractionCounts())
}

// TestBatchCompaction: an exactcount-style protocol that cycles through
// many short-lived states must keep its interning tables near the live
// count via compaction, and stay correct while doing so.
func TestBatchCompaction(t *testing.T) {
	b := NewBatch(4000, func(i int, _ *rand.Rand) int { return i % 2 },
		func(a, c int, _ *rand.Rand) (int, int) {
			// The receiver walks a long cycle: states keep dying behind
			// the walk front, so the interning tables fill with dead ids.
			return (a + 2) % 100000, c
		}, WithSeed(8))
	b.RunTime(1000)
	if st := b.Stats(); st.Compactions <= 1 { // construction itself compacts once
		t.Error("no compactions despite state churn")
	}
	if got := countsSum[int](b); got != 4000 {
		t.Errorf("conservation after compactions: %d agents, want 4000", got)
	}
	if b.DistinctStates() < 1000 {
		t.Errorf("DistinctStates = %d, expected a long state cycle", b.DistinctStates())
	}
}
