package pop

import (
	"math"
	"math/big"
	"math/rand/v2"
	"testing"
	"time"
)

// within runs fn under a wall-clock bound and fails the test if it does
// not return in time. The distribution tests below draw at population
// sizes where the pre-HRUA mode walk degraded to O(stddev) — or, with
// the wrapped int64 anchor, to O(support) — so without a bound a
// regression reads as a hung test run rather than a failure.
func within(t *testing.T, d time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("sampler exceeded %v time bound — O(stddev) walk regression?", d)
	}
}

// TestHypergeometricModeAnchor checks the float64 mode anchor against
// exact integer arithmetic across a sweep that includes the overflow
// regime, and pins the N = 10¹² case where the old int64 product
// (m+1)(K+1) wrapped: it yielded −8722429 (clamped to 0, turning the
// mode walk into an O(support) scan), where the true anchor is
// 2.5·10¹¹.
func TestHypergeometricModeAnchor(t *testing.T) {
	cases := []struct{ n, k, m int64 }{
		{40, 12, 15},
		{1000, 400, 500},
		{1e6, 4e5, 5e5},
		{6e9, 3e9, 3e9},    // first wrap: (3e9+1)² > 2⁶³−1
		{1e10, 5e9, 5e9},   // fuzz-corpus overflow case
		{1e12, 5e11, 5e11}, // issue regression case
		{1e12, 1, 5e11},
		{1e12, 5e11, 1},
	}
	for _, c := range cases {
		exact := new(big.Int).Mul(big.NewInt(c.m+1), big.NewInt(c.k+1))
		exact.Quo(exact, big.NewInt(c.n+2))
		lo := max(int64(0), c.m-(c.n-c.k))
		hi := min(c.m, c.k)
		want := min(max(exact.Int64(), lo), hi)
		if got := hypergeometricMode(c.n, c.k, c.m); got != want {
			t.Errorf("hypergeometricMode(%d,%d,%d) = %d, want %d", c.n, c.k, c.m, got, want)
		}
	}
	// Pin the exact regression values: the true anchor, and the value the
	// wrapped int64 arithmetic produced (kept as a tripwire so the test
	// reads as documentation of the bug).
	N, K, m := int64(1e12), int64(5e11), int64(5e11)
	if got := hypergeometricMode(N, K, m); got != 250000000000 {
		t.Errorf("mode anchor at N=1e12: got %d, want 250000000000", got)
	}
	if wrapped := (m + 1) * (K + 1) / (N + 2); wrapped != -8722429 {
		t.Errorf("int64 wrap tripwire moved: (m+1)(K+1)/(N+2) = %d, expected -8722429", wrapped)
	}
}

// TestLightDrawWrapBoundary exercises the heavy/light predicate where the
// raw int64 products wrap. At c = k = 4·10⁹ the product c·k = 1.6·10¹⁹
// wraps to −2.4·10¹⁸, so the pre-fix comparison c·k < thresh·remPop
// reported light for a state that expects half the sample — silently
// flipping every composition chain onto the per-item path.
func TestLightDrawWrapBoundary(t *testing.T) {
	c, k, thresh, remPop := int64(4e9), int64(4e9), int64(8), int64(8e9)
	if c*k >= thresh*remPop {
		t.Fatalf("wrap tripwire moved: raw c*k = %d no longer wraps below %d", c*k, thresh*remPop)
	}
	if lightDraw(c, k, thresh, remPop) {
		t.Errorf("lightDraw(%d,%d,%d,%d) = true; 1.6e19 draws expected is not light", c, k, thresh, remPop)
	}
	cases := []struct {
		c, k, thresh, remPop int64
		want                 bool
	}{
		{3, 5, 5, 3, false},                           // exactly equal: strict <
		{3, 4, 5, 3, true},                            // one below
		{4, 4, 5, 3, false},                           // one above
		{1 << 32, 1 << 32, 1 << 32, 1<<32 + 1, true},  // high words equal, low decides
		{1 << 32, 1<<32 + 1, 1 << 32, 1 << 32, false}, // ... and the reverse
		{0, 5, 8, 10, true},                           // zero count is always light
		{5e11, 5e11, 8, 1e12, false},                  // N = 1e12 regression regime
	}
	for _, tc := range cases {
		if got := lightDraw(tc.c, tc.k, tc.thresh, tc.remPop); got != tc.want {
			t.Errorf("lightDraw(%d,%d,%d,%d) = %v, want %v",
				tc.c, tc.k, tc.thresh, tc.remPop, got, tc.want)
		}
	}
}

// TestHypergeometricChiSquare runs a chi-square goodness-of-fit test of
// the sampler against the exact pmf in every regime: the small-K product
// loop, the from-zero inverse transform, and the HRUA rejection sampler
// at small, moderate, and large populations (including past the int64
// wrap at N = 10¹⁰). Cells with exact expectation below 5 are lumped
// into the neighboring tail so the chi-square approximation holds.
func TestHypergeometricChiSquare(t *testing.T) {
	cases := []struct {
		name    string
		n, k, m int64
	}{
		{"small-K", 500, 12, 200},
		{"from-zero", 100000, 40, 10000}, // mean 4: light path
		{"hrua-small", 500, 200, 100},    // mean 40
		{"hrua-moderate", 1000000, 400000, 1000},
		{"hrua-large", 10000000000, 5000000000, 300}, // past the int64 wrap
	}
	const samples = 200000
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := rand.New(rand.NewPCG(11, uint64(c.n)))
			// Support after hypergeometric's own reductions; the test
			// parameters all keep lo = 0 and hi small enough to tabulate.
			hi := min(c.m, c.k)
			counts := make([]int64, hi+1)
			within(t, 60*time.Second, func() {
				for i := 0; i < samples; i++ {
					counts[hypergeometric(r, c.n, c.k, c.m)]++
				}
			})
			// Exact pmf via lnChoose; then lump cells with expectation < 5.
			pmf := make([]float64, hi+1)
			lnAll := lnChoose(c.n, c.m)
			for x := int64(0); x <= hi; x++ {
				if c.m-x > c.n-c.k {
					continue // outside support
				}
				pmf[x] = math.Exp(lnChoose(c.k, x) + lnChoose(c.n-c.k, c.m-x) - lnAll)
			}
			type cell struct {
				obs float64
				exp float64
			}
			var cells []cell
			var acc cell
			for x := range pmf {
				acc.obs += float64(counts[x])
				acc.exp += pmf[x] * samples
				if acc.exp >= 5 {
					cells = append(cells, acc)
					acc = cell{}
				}
			}
			if acc.exp > 0 && len(cells) > 0 {
				cells[len(cells)-1].obs += acc.obs
				cells[len(cells)-1].exp += acc.exp
			}
			if len(cells) < 3 {
				t.Fatalf("degenerate binning: %d cells", len(cells))
			}
			var chi2 float64
			for _, cl := range cells {
				d := cl.obs - cl.exp
				chi2 += d * d / cl.exp
			}
			// Wilson–Hilferty 99.99% quantile of χ²(df): with fixed seeds
			// the test is deterministic, so this bounds the one-time risk
			// of pinning an unlucky seed, not a per-run flake rate.
			df := float64(len(cells) - 1)
			z := 3.719
			q := df * math.Pow(1-2/(9*df)+z*math.Sqrt(2/(9*df)), 3)
			if chi2 > q {
				t.Errorf("chi-square %.1f > %.1f (df %d) for Hyp(%d,%d,%d)",
					chi2, q, len(cells)-1, c.n, c.k, c.m)
			}
		})
	}
}

// TestHypergeometricLargeNMoments pins the overflow regression end to
// end: at N = 10¹⁰ and N = 10¹² with K = m = N/2 the old sampler either
// walked O(stddev) ≈ √N/4 steps per draw or — once the anchor wrapped —
// O(support) ≈ N/2 steps (an effective hang), so drawing here at all
// within the time bound is the regression test. The draws are also
// checked against the exact mean and variance, accumulating x − E[X] in
// int64 so no precision is lost to the 2.5·10¹¹ offset.
func TestHypergeometricLargeNMoments(t *testing.T) {
	cases := []struct{ n int64 }{{1e10}, {1e12}}
	const samples = 20000
	for _, c := range cases {
		K, m := c.n/2, c.n/2
		p := 0.5
		mean := float64(m) * p // exactly mK/N = N/4, integral
		variance := mean * (1 - p) * float64(c.n-m) / float64(c.n-1)
		sd := math.Sqrt(variance)
		offset := int64(mean)
		var sum int64
		var sq float64
		r := rand.New(rand.NewPCG(13, uint64(c.n)))
		within(t, 60*time.Second, func() {
			for i := 0; i < samples; i++ {
				d := hypergeometric(r, c.n, K, m) - offset
				sum += d
				sq += float64(d) * float64(d)
			}
		})
		gotMean := float64(sum) / samples
		gotVar := sq/samples - gotMean*gotMean
		if tol := 4 * sd / math.Sqrt(samples); math.Abs(gotMean) > tol {
			t.Errorf("N=%d: mean offset %.1f, want 0 ± %.1f", c.n, gotMean, tol)
		}
		if math.Abs(gotVar-variance) > 0.1*variance {
			t.Errorf("N=%d: var %.4g, want %.4g ± 10%%", c.n, gotVar, variance)
		}
	}
}

// TestHypergeometricGolden pins the sampler's exact output sequence for a
// fixed PCG seed on both paths. Any change to the sampler's uniform
// consumption — light-path recurrence or HRUA acceptance — shifts these
// values; that is intentional: the engines' byte-identity contracts are
// within one binary, and a deliberate sampler change must regenerate the
// pins alongside the engine goldens.
func TestHypergeometricGolden(t *testing.T) {
	r := rand.New(rand.NewPCG(42, 43))
	cases := []struct {
		n, k, m int64
		want    []int64
	}{
		{1000, 30, 100, goldenLight},
		{1000000, 400000, 1000, goldenHRUA},
		{1e12, 5e11, 5e11, goldenHRUALarge},
	}
	for _, c := range cases {
		got := make([]int64, len(c.want))
		for i := range got {
			got[i] = hypergeometric(r, c.n, c.k, c.m)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Hyp(%d,%d,%d) draw %d: got %d, want %d (full: %v)",
					c.n, c.k, c.m, i, got[i], c.want[i], got)
			}
		}
	}
}

var (
	goldenLight     = []int64{2, 3, 3, 5, 1, 5, 3, 6}
	goldenHRUA      = []int64{388, 377, 403, 405, 378, 417, 387, 369}
	goldenHRUALarge = []int64{
		249999810877, 250000057412, 250000176822, 250000092110,
		250000132544, 250000374156, 250000004821, 249999636083,
	}
)

// BenchmarkHypergeometric measures ns/draw at fixed K = m = N/2 across
// three decades of standard deviation (σ ≈ √N/4). The HRUA sampler's
// cost must stay flat; the pre-fix mode walk scaled linearly in σ.
func BenchmarkHypergeometric(b *testing.B) {
	cases := []struct {
		name string
		n    int64
	}{
		{"std1e2", 160000},         // σ = 10²
		{"std1e4", 1600000000},     // σ = 10⁴
		{"std1e6", 16000000000000}, // σ = 10⁶
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			r := rand.New(rand.NewPCG(1, uint64(c.n)))
			var sink int64
			for i := 0; i < b.N; i++ {
				sink += hypergeometric(r, c.n, c.n/2, c.n/2)
			}
			benchSink = sink
		})
	}
}

var benchSink int64
