// Native fuzz targets for the sampling substrate: the univariate and
// multivariate hypergeometric samplers, the Fenwick tree, and the churn
// removal chains. Each asserts structural invariants (support bounds, sum
// conservation, no panics, draws confined to the permitted range) rather
// than distributions — the statistical properties are covered by the
// moment and equivalence suites; fuzzing hunts the inputs those suites
// never reach (degenerate classes, forced draws, extreme skew). The seed
// corpus doubles as a unit test under plain `go test`; CI additionally
// runs each target with -fuzztime=15s.
package pop

import (
	"math/rand/v2"
	"testing"
	"time"
)

// fuzzCounts decodes a byte string into a class-count vector: one class
// per byte, each holding 0..255 agents scaled by a few orders of
// magnitude depending on position, so small inputs already cover empty
// classes, heavy heads and long light tails. The ×10⁹ tier pushes
// pairwise count products past int64 (c·k wraps at c, k ≈ 3·10⁹), the
// regime where the heavy/light predicate must compare in 128 bits.
func fuzzCounts(raw []byte) ([]int64, int64) {
	if len(raw) > 64 {
		raw = raw[:64]
	}
	counts := make([]int64, len(raw))
	var total int64
	for i, b := range raw {
		c := int64(b)
		switch i % 4 {
		case 1:
			c *= 1000
		case 2:
			c *= 1000000
		case 3:
			c *= 1000000000
		}
		counts[i] = c
		total += c
	}
	return counts, total
}

func FuzzHypergeometric(f *testing.F) {
	f.Add(uint64(1), int64(100), int64(30), int64(40))
	f.Add(uint64(2), int64(10), int64(10), int64(7))
	f.Add(uint64(3), int64(1e12), int64(5e11), int64(4096))
	f.Add(uint64(4), int64(2), int64(1), int64(1))
	f.Add(uint64(5), int64(1000), int64(999), int64(998))
	// Overflow regressions: K = m = N/2 wraps the int64 mode-anchor
	// product (m+1)(K+1) past N ≈ 6·10⁹, and at N = 10¹² the stddev is
	// 2.5·10⁵ — parameters where the pre-HRUA walk took O(stddev) or,
	// with the wrapped anchor, O(support) per draw.
	f.Add(uint64(6), int64(1e10), int64(5e9), int64(5e9))
	f.Add(uint64(7), int64(1e12), int64(5e11), int64(5e11))
	f.Fuzz(func(t *testing.T, seed uint64, N, K, m int64) {
		// Normalize into the sampler's contract: 0 <= K, m <= N, N >= 1.
		if N < 0 {
			N = -(N + 1)
		}
		N = N%1_000_000_000_000 + 1
		if K < 0 {
			K = -(K + 1)
		}
		if m < 0 {
			m = -(m + 1)
		}
		K %= N + 1
		m %= N + 1
		r := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
		var x int64
		draw := func() { x = hypergeometric(r, N, K, m) }
		if N > 1<<32 {
			// A constant-time draw at any N finishes in microseconds; a
			// regression to the O(stddev) walk (or the wrapped-anchor
			// O(support) scan) would otherwise hang the fuzz worker
			// instead of failing it.
			within(t, 10*time.Second, draw)
		} else {
			draw()
		}
		lo := max(int64(0), m-(N-K))
		hi := min(m, K)
		if x < lo || x > hi {
			t.Fatalf("hypergeometric(N=%d, K=%d, m=%d) = %d outside support [%d, %d]", N, K, m, x, lo, hi)
		}
	})
}

func FuzzMultivariateHypergeometric(f *testing.F) {
	f.Add(uint64(1), []byte{10, 0, 3, 2}, uint64(4))
	f.Add(uint64(2), []byte{255, 255, 255}, uint64(400))
	f.Add(uint64(3), []byte{0, 0, 1}, uint64(1))
	f.Add(uint64(4), []byte{7}, uint64(7))
	// Two ×10⁹ classes (position i%4 == 3) with a sample size in the
	// billions: the per-class products c·m wrap int64, exercising the
	// 128-bit heavy/light predicate, and every univariate draw runs the
	// rejection sampler at large stddev.
	f.Add(uint64(5), []byte{1, 200, 3, 255, 0, 9, 2, 200}, uint64(3e9))
	f.Fuzz(func(t *testing.T, seed uint64, raw []byte, mRaw uint64) {
		counts, total := fuzzCounts(raw)
		if total == 0 {
			return
		}
		m := int64(mRaw % uint64(total+1))
		check := func(what string, dst []int64) {
			t.Helper()
			var sum int64
			for i, k := range dst {
				if k < 0 || k > counts[i] {
					t.Fatalf("%s: class %d drew %d of %d (counts=%v m=%d)", what, i, k, counts[i], counts, m)
				}
				sum += k
			}
			if sum != m {
				t.Fatalf("%s: allocated %d of m=%d (counts=%v)", what, sum, m, counts)
			}
		}
		r := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
		dst := make([]int64, len(counts))
		multivariateHypergeometric(r, counts, total, m, dst)
		check("chain", dst)
		// The splitter must satisfy the identical invariants for the same
		// shapes — and be a pure function of its seed.
		split := make([]int64, len(counts))
		cum := prefixSums(nil, counts)
		mvhSplitComp(nil, seed, 1, counts, cum, 0, len(counts), total, m, split)
		check("splitter", split)
		again := make([]int64, len(counts))
		mvhSplitComp(nil, seed, 1, counts, cum, 0, len(counts), total, m, again)
		for i := range split {
			if split[i] != again[i] {
				t.Fatalf("splitter not deterministic at class %d: %d vs %d", i, split[i], again[i])
			}
		}
	})
}

func FuzzFenwick(f *testing.F) {
	f.Add(uint64(1), []byte{5, 0, 3, 9, 1}, uint8(20))
	f.Add(uint64(2), []byte{1}, uint8(1))
	f.Add(uint64(3), []byte{0, 0, 255, 0}, uint8(50))
	f.Fuzz(func(t *testing.T, seed uint64, raw []byte, ops uint8) {
		if len(raw) == 0 {
			return
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		// Shadow oracle: a plain weight array updated in lock step. Every
		// findAndDec must land exactly where a linear cumulative scan
		// lands, and decrement exactly that weight.
		shadow := make([]int64, len(raw))
		var total int64
		for i, b := range raw {
			shadow[i] = int64(b)
			total += shadow[i]
		}
		var tree fenwick
		tree.reset(shadow)
		r := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
		for op := 0; op < int(ops); op++ {
			if total == 0 {
				break
			}
			if op%5 == 4 {
				// Occasionally add weight back, as the engines do.
				i := r.IntN(len(shadow))
				delta := int64(r.IntN(7))
				tree.add(i, delta)
				shadow[i] += delta
				total += delta
				continue
			}
			u := r.Int64N(total)
			got := tree.findAndDec(u)
			// Oracle: the index whose cumulative weight interval holds u.
			want := 0
			acc := int64(0)
			for ; want < len(shadow); want++ {
				if u < acc+shadow[want] {
					break
				}
				acc += shadow[want]
			}
			if got != want {
				t.Fatalf("findAndDec(%d) = %d, oracle %d (weights %v)", u, got, want, shadow)
			}
			if shadow[got] <= 0 {
				t.Fatalf("findAndDec(%d) landed on zero-weight index %d (weights %v)", u, got, shadow)
			}
			shadow[got]--
			total--
		}
		// The tree must agree with the shadow for every remaining index:
		// drain it completely and count hits per index.
		remaining := make([]int64, len(shadow))
		for ; total > 0; total-- {
			remaining[tree.findAndDec(0)]++
			// u = 0 always lands on the first positive-weight index; the
			// oracle property was already checked above, so here we only
			// need the multiset to drain consistently.
		}
		for i := range shadow {
			if remaining[i] > shadow[i] {
				t.Fatalf("index %d drained %d times but had weight %d", i, remaining[i], shadow[i])
			}
		}
	})
}

func FuzzRemoveCountsChain(f *testing.F) {
	f.Add(uint64(1), []byte{10, 0, 3, 2}, uint64(5))
	f.Add(uint64(2), []byte{255, 1, 1, 1, 1, 1, 1, 1, 1}, uint64(200))
	f.Add(uint64(3), []byte{0, 7}, uint64(7))
	// Billions-scale removal across ×10⁹ classes: wraps the raw c·k
	// products in the heavy/light split and forces rejection-sampler
	// draws at large stddev in both the chain and the splitter.
	f.Add(uint64(4), []byte{0, 100, 5, 200, 1, 0, 0, 255}, uint64(2e9))
	f.Fuzz(func(t *testing.T, seed uint64, raw []byte, kRaw uint64) {
		counts, total := fuzzCounts(raw)
		if total == 0 {
			return
		}
		k := int64(kRaw % uint64(total+1))
		run := func(what string, remove func(cs []int64, debit func(id int32, d int64))) {
			t.Helper()
			cs := append([]int64(nil), counts...)
			left := total
			var removed int64
			debit := func(id int32, d int64) {
				if int(id) < 0 || int(id) >= len(cs) {
					t.Fatalf("%s: debit of out-of-range id %d", what, id)
				}
				if d >= 0 {
					t.Fatalf("%s: non-negative debit %d", what, d)
				}
				cs[id] += d
				if cs[id] < 0 {
					t.Fatalf("%s: class %d went negative (counts=%v k=%d)", what, id, counts, k)
				}
				left += d
				removed -= d
			}
			remove(cs, debit)
			if removed != k || left != total-k {
				t.Fatalf("%s: removed %d of k=%d (left %d of %d)", what, removed, k, left, total)
			}
		}
		run("chain", func(cs []int64, debit func(id int32, d int64)) {
			rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
			var tree fenwick
			removeCountsChain(rng, &tree, cs, total, k, debit)
		})
		run("splitter", func(cs []int64, debit func(id int32, d int64)) {
			removeCountsSplit(1, seed, cs, total, k, debit, nil, nil)
		})
	})
}
