// Tests of the deterministic intra-trial parallelism layer: worker-count
// invariance (the headline guarantee — `-par 1` and `-par 16` are
// byte-identical), splitter distribution checks against the sequential
// chains, the oversubscription cap, and the fork-join budget.
package pop

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"github.com/popsim/popsize/internal/stats"
)

// shrinkSplitter makes the splitter recurse and fork at test-scale
// populations: tiny leaves, tiny fork threshold, and enough GOMAXPROCS
// that effectiveWorkers does not collapse to 1 on a small CI machine.
// The leaf knobs change where node streams are consumed, so every run
// compared within one test must execute under the same shrink.
func shrinkSplitter(t *testing.T) {
	t.Helper()
	oldLeaf, oldFork, oldChunk, oldClasses, oldMass := seqLeafSlots, parMinForkItems, pairChunkSlots, mvhLeafClasses, splitLeafMass
	oldProcs := runtime.GOMAXPROCS(4)
	seqLeafSlots, parMinForkItems, pairChunkSlots, mvhLeafClasses, splitLeafMass = 8, 4, 8, 2, 16
	t.Cleanup(func() {
		seqLeafSlots, parMinForkItems, pairChunkSlots, mvhLeafClasses, splitLeafMass = oldLeaf, oldFork, oldChunk, oldClasses, oldMass
		runtime.GOMAXPROCS(oldProcs)
	})
}

func TestResolveParallelism(t *testing.T) {
	if got := resolveParallelism(0, parAutoMinN-1); got != 0 {
		t.Errorf("auto below threshold: %d, want 0 (legacy)", got)
	}
	if got := resolveParallelism(0, parAutoMinN); got != runtime.GOMAXPROCS(0) {
		t.Errorf("auto above threshold: %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, p := range []int{1, 2, 7} {
		if got := resolveParallelism(p, 100); got != p {
			t.Errorf("explicit par %d at tiny n: %d, want %d", p, got, p)
		}
	}
}

func TestEffectiveWorkersFor(t *testing.T) {
	cases := []struct {
		par, maxprocs, trialWorkers, want int
	}{
		{1, 8, 1, 1},   // serial target stays serial
		{8, 8, 1, 8},   // sole trial gets the machine
		{8, 8, 4, 2},   // 4 trial workers × 2 intra = GOMAXPROCS
		{8, 8, 8, 1},   // fully subscribed sweep: no intra fan-out
		{8, 8, 100, 1}, // oversubscribed sweep still floors at 1
		{16, 8, 0, 8},  // unregistered (no sweep) caps at GOMAXPROCS
		{2, 8, 2, 2},   // target below budget is honored
		{0, 8, 1, 1},   // non-positive target is serial
	}
	for _, c := range cases {
		if got := effectiveWorkersFor(c.par, c.maxprocs, c.trialWorkers); got != c.want {
			t.Errorf("effectiveWorkersFor(%d, %d, %d) = %d, want %d",
				c.par, c.maxprocs, c.trialWorkers, got, c.want)
		}
	}
}

// TestMVHSplitCompInvariants: for arbitrary shapes the splitter's
// composition must conserve the sample size and respect per-class bounds,
// and must be a pure function of the seed (worker-count independent).
func TestMVHSplitCompInvariants(t *testing.T) {
	shrinkSplitter(t)
	r := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 300; trial++ {
		q := 1 + r.IntN(40)
		counts := make([]int64, q)
		var total int64
		for i := range counts {
			if r.IntN(4) == 0 {
				continue // zero classes must be handled
			}
			counts[i] = int64(r.IntN(1000))
			total += counts[i]
		}
		if total == 0 {
			continue
		}
		m := int64(r.IntN(int(total + 1)))
		seed := r.Uint64()
		draw := func(workers int) []int64 {
			dst := make([]int64, q)
			cum := prefixSums(nil, counts)
			g := newParGroup(workers)
			mvhSplitComp(g, seed, 1, counts, cum, 0, q, total, m, dst)
			g.wait()
			return dst
		}
		serial := draw(1)
		parallel := draw(4)
		var sum int64
		for i, k := range serial {
			if k < 0 || k > counts[i] {
				t.Fatalf("trial %d: class %d drew %d of %d", trial, i, k, counts[i])
			}
			sum += k
			if parallel[i] != k {
				t.Fatalf("trial %d: worker count changed the draw: class %d %d vs %d",
					trial, i, k, parallel[i])
			}
		}
		if sum != m {
			t.Fatalf("trial %d: drew %d of m=%d", trial, sum, m)
		}
	}
}

// TestMVHSplitCompMoments: the splitter's per-class marginals must match
// the multivariate hypergeometric expectation m·c_i/N, like the
// sequential chain's (hypergeom_test.go).
func TestMVHSplitCompMoments(t *testing.T) {
	shrinkSplitter(t)
	counts := []int64{60, 25, 10, 5}
	const total, m, trials = int64(100), int64(20), 20000
	r := rand.New(rand.NewPCG(7, 8))
	cum := prefixSums(nil, counts)
	sums := make([]float64, len(counts))
	dst := make([]int64, len(counts))
	for trial := 0; trial < trials; trial++ {
		for i := range dst {
			dst[i] = 0
		}
		mvhSplitComp(nil, r.Uint64(), 1, counts, cum, 0, len(counts), total, m, dst)
		for i, k := range dst {
			sums[i] += float64(k)
		}
	}
	for i, c := range counts {
		want := float64(m) * float64(c) / float64(total)
		se := math.Sqrt(want * float64(total-c) / float64(total) / trials)
		if err := stats.MeanNear(sums[i]/trials, want, 5*se, 0.05); err != nil {
			t.Errorf("class %d: %v", i, err)
		}
	}
}

// TestMultisetSeqSplitArrangement: the recursive arrangement must contain
// exactly the input multiset, be worker-count independent, and pair slots
// (2i, 2i+1) with the uniform-pairing law — the AB-ordered-pair rate of a
// two-class multiset must match 2·ka·kb/(m(m−1))·(m/2) in expectation.
func TestMultisetSeqSplitArrangement(t *testing.T) {
	shrinkSplitter(t)
	const ka, kb = int64(70), int64(58)
	m := ka + kb
	out := make([]int32, m)
	r := rand.New(rand.NewPCG(5, 6))
	var abPairs, trials float64
	for trial := 0; trial < 4000; trial++ {
		seed := r.Uint64()
		comp := []int64{ka, kb}
		g := newParGroup(3)
		multisetSeqSplit(g, seed, 1, comp, out, nil)
		g.wait()
		// Worker-count independence: rerun serially on a fresh comp.
		comp2 := []int64{ka, kb}
		out2 := make([]int32, m)
		multisetSeqSplit(nil, seed, 1, comp2, out2, nil)
		var na, nb int64
		for i, id := range out {
			if out2[i] != id {
				t.Fatalf("trial %d: worker count changed the arrangement at slot %d", trial, i)
			}
			if id == 0 {
				na++
			} else {
				nb++
			}
		}
		if na != ka || nb != kb {
			t.Fatalf("trial %d: arrangement lost the multiset: %d/%d, want %d/%d", trial, na, nb, ka, kb)
		}
		for i := int64(0); i < m; i += 2 {
			if out[i] == 0 && out[i+1] == 1 {
				abPairs++
			}
		}
		trials++
	}
	fm := float64(m)
	wantPerTrial := (fm / 2) * 2 * float64(ka) * float64(kb) / (fm * (fm - 1)) / 2
	// Var per trial is below m/4; 5 SE with a small absolute slack.
	se := math.Sqrt(fm / 4 / trials)
	if err := stats.MeanNear(abPairs/trials, wantPerTrial, 5*se, 0.05); err != nil {
		t.Errorf("AB-ordered-pair rate: %v", err)
	}
}

// parSignature summarizes everything observable about an engine run that
// the worker-count invariance suite compares: the exact end configuration,
// the interaction count, segmented parallel time, and state accounting.
func parSignature[S comparable](e Engine[S]) string {
	counts := e.Counts()
	keys := make([]string, 0, len(counts))
	for s, c := range counts {
		keys = append(keys, fmt.Sprintf("%v=%d", s, c))
	}
	sort.Strings(keys)
	return fmt.Sprintf("counts=%v n=%d i=%d t=%.12f d=%d",
		keys, e.N(), e.Interactions(), e.Time(), e.DistinctStates())
}

// TestWorkerCountInvariance is the headline determinism guarantee: a
// pinned-seed run at -par 1 and -par 8 (and 2, and 7) produces identical
// end configurations and segment times on both multiset backends, for a
// deterministic rule, a randomness-consuming rule, and a mid-run churn
// schedule.
func TestWorkerCountInvariance(t *testing.T) {
	shrinkSplitter(t)
	rules := map[string]Rule[int]{"am": amRule, "coin": coinRule, "max": maxRule}
	backends := map[string]func(n int, rule Rule[int], par int) Engine[int]{
		"batch": func(n int, rule Rule[int], par int) Engine[int] {
			return NewBatch(n, func(i int, _ *rand.Rand) int { return i % 5 }, rule,
				WithSeed(42), WithParallelism(par))
		},
		"dense": func(n int, rule Rule[int], par int) Engine[int] {
			return NewDense(n, func(i int, _ *rand.Rand) int { return i % 5 }, rule,
				WithSeed(42), WithParallelism(par))
		},
	}
	const n = 3000
	pars := []int{1, 2, 7, 8, runtime.GOMAXPROCS(0)}
	for bname, mk := range backends {
		for rname, rule := range rules {
			t.Run(bname+"/"+rname, func(t *testing.T) {
				var want string
				for _, par := range pars {
					e := mk(n, rule, par)
					e.Run(6 * n)
					e.AddAgents(1, n/2) // churn: join wave
					e.Run(2 * n)
					e.RemoveAgents(n) // churn: heavy leave
					e.Run(4 * n)
					got := parSignature[int](e)
					if want == "" {
						want = got
					} else if got != want {
						t.Fatalf("par=%d diverged:\n got %s\nwant %s", par, got, want)
					}
				}
			})
		}
	}
}

// TestWorkerCountInvarianceDelegation runs the dense engine across its
// delegation boundary (n distinct initial states force an immediate
// hand-off to the inner BatchSim; the epidemic re-concentrates and
// re-enters dense mode) with churn landing mid-delegation. Every par
// value must take the identical trajectory, including the inner engine's.
func TestWorkerCountInvarianceDelegation(t *testing.T) {
	shrinkSplitter(t)
	const n = 1200
	var want string
	for _, par := range []int{1, 2, 7} {
		d := NewDense(n, func(i int, _ *rand.Rand) int { return i }, maxRule,
			WithSeed(9), WithDenseThreshold(48), WithParallelism(par))
		d.Run(int64(n)) // delegates immediately: n distinct states
		if !d.Delegated() {
			t.Fatal("engine did not delegate with n distinct initial states")
		}
		d.AddAgents(7, 300)
		d.RemoveAgents(200)
		d.Run(20 * int64(n)) // max-epidemic concentrates; re-enters dense mode
		if d.Delegated() {
			t.Fatal("engine never re-entered dense mode")
		}
		got := parSignature[int](d)
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("par=%d diverged across delegation:\n got %s\nwant %s", par, got, want)
		}
	}
}

// TestSplitPairTypeExpectation is TestDensePairTypeExpectation on the
// splitter path, for both multiset backends: within one batch every
// interaction is marginally a uniform ordered pair, so the one-way
// epidemic's per-interaction infection rate must equal (S/n)·(I/(n−1)).
// This is the observable that catches receiver/sender conditioning bugs
// in the pre-drawn sender block and its row distribution.
func TestSplitPairTypeExpectation(t *testing.T) {
	if testing.Short() {
		t.Skip("pair-type expectation estimation is not short")
	}
	shrinkSplitter(t)
	// Inline execution: the pairing law cannot depend on scheduling, and
	// forking every tiny batch of 10⁴ trials would cost minutes of pure
	// goroutine overhead (the fork path is covered by the invariance
	// suites). The shrunken leaf knobs stay — they are what make the
	// splitter recurse at this scale.
	parMinForkItems = 1 << 11
	const n, inf, trials = 2000, 40, 6000
	initial := func(i int, _ *rand.Rand) int {
		if i < inf {
			return 1
		}
		return 0
	}
	for _, backend := range []string{"batch", "dense"} {
		t.Run(backend, func(t *testing.T) {
			var newInf, done float64
			for tr := 0; tr < trials; tr++ {
				seed := uint64(tr)*13 + 5
				var e Engine[int]
				var ran int64
				if backend == "dense" {
					d := NewDense(n, initial, oneWayEpidemic, WithSeed(seed), WithParallelism(2))
					ran = d.runBatch(1 << 20)
					e = d
				} else {
					b := NewBatch(n, initial, oneWayEpidemic, WithSeed(seed), WithParallelism(2))
					ran = b.runBatch(1 << 20)
					e = b
				}
				done += float64(ran)
				newInf += float64(e.Count(func(s int) bool { return s == 1 }) - inf)
			}
			got := newInf / done
			want := (float64(n-inf) / n) * (float64(inf) / float64(n-1))
			// ~5 SE of the per-batch estimator is well under 10% relative at
			// this trial count; the historical suffix bug sat at −51%.
			if math.Abs(got-want) > 0.1*want {
				t.Errorf("infections per interaction = %.6f, want %.6f ± 10%%", got, want)
			}
		})
	}
}

// TestRemoveCountsSplitMarginals: the splitter-path removal must keep the
// multivariate hypergeometric per-state marginals k·c_i/N, like the chain
// it replaces.
func TestRemoveCountsSplitMarginals(t *testing.T) {
	shrinkSplitter(t)
	// Inline execution: forking a 200-item removal 3000 times costs more
	// in scheduling than it tests (the fork path is exercised by the
	// invariance suites); what matters here is the splitter's law.
	parMinForkItems = 1 << 11
	states := []int{0, 1, 2, 3}
	counts := []int64{600, 250, 100, 50}
	const total, k, trials = 1000, 200, 3000
	for _, be := range []Backend{Batched, Dense} {
		t.Run(be.String(), func(t *testing.T) {
			removed := make([]float64, len(states))
			for tr := 0; tr < trials; tr++ {
				e := NewEngineFromCounts(states, counts, amRule,
					WithSeed(uint64(tr)*31+uint64(be)), WithBackend(be), WithParallelism(2))
				before := e.Counts()
				e.RemoveAgents(k)
				after := e.Counts()
				for i, s := range states {
					removed[i] += float64(before[s] - after[s])
				}
			}
			for i, c := range counts {
				want := float64(k) * float64(c) / float64(total)
				se := math.Sqrt(want * float64(total-c) / total * float64(total-k) / (total - 1) / trials)
				if err := stats.MeanNear(removed[i]/trials, want, 5*se, 0.05); err != nil {
					t.Errorf("state %d: %v", states[i], err)
				}
			}
		})
	}
}

// TestNestedTrialsNoOversubscription: a sweep of RunTrials workers whose
// trials each run a -par GOMAXPROCS engine must not multiply the two
// levels into W·P goroutines — the intra-trial budget divides by the
// registered trial workers, keeping the process near GOMAXPROCS total.
func TestNestedTrialsNoOversubscription(t *testing.T) {
	shrinkSplitter(t)
	maxprocs := runtime.GOMAXPROCS(0)
	const trialWorkers = 4
	base := runtime.NumGoroutine()
	var peak atomic.Int64
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				close(done)
				return
			default:
				if g := int64(runtime.NumGoroutine()); g > peak.Load() {
					peak.Store(g)
				}
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	pop := func(tr int) int {
		e := NewBatch(4000, func(i int, _ *rand.Rand) int { return i % 3 }, amRule,
			WithSeed(uint64(tr)), WithParallelism(maxprocs))
		e.Run(40000)
		return e.Count(func(s int) bool { return s == 1 })
	}
	RunTrials(16, trialWorkers, pop)
	done <- struct{}{}
	// Budget: trial workers + their capped intra-trial forks (≤ GOMAXPROCS
	// extra in total) + the sampler and test harness overhead. Quadratic
	// spawning (trialWorkers × GOMAXPROCS each) would blow far past this.
	bound := int64(base + trialWorkers + maxprocs + 8)
	if p := peak.Load(); p > bound {
		t.Errorf("peak goroutines %d exceeds composed-parallelism bound %d", p, bound)
	}
	// And the cap itself, as the pure rule states it:
	if got := effectiveWorkersFor(maxprocs, maxprocs, trialWorkers); got > max(1, maxprocs/trialWorkers) {
		t.Errorf("effectiveWorkersFor leaked %d workers per trial", got)
	}
}

// TestParGroupBudget: the fork-join helper never runs more than the
// region's worker count concurrently, and a nil group runs inline.
func TestParGroupBudget(t *testing.T) {
	const workers = 3
	g := newParGroup(workers)
	var cur, peak atomic.Int64
	var ran atomic.Int64
	body := func() {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		cur.Add(-1)
		ran.Add(1)
	}
	for i := 0; i < 50; i++ {
		g.fork(body)
	}
	g.wait()
	if ran.Load() != 50 {
		t.Fatalf("ran %d of 50 forks", ran.Load())
	}
	// The forking goroutine itself plus workers-1 extras.
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds worker budget %d", p, workers)
	}
	var inline int64
	(*parGroup)(nil).fork(func() { inline = 1 })
	(*parGroup)(nil).wait()
	if inline != 1 {
		t.Error("nil parGroup did not run the body inline")
	}
}
