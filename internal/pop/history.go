package pop

import "math"

// HistorySample is one point of a sampled trajectory: the full
// configuration (state → count) at a moment of a run, stamped with the
// engine's parallel time, population size and interaction count. Under
// churn the time axis honors the per-segment accounting of Engine.Time
// and N records the population the sample was taken against.
type HistorySample[S comparable] struct {
	Time         float64
	N            int
	Interactions int64
	Counts       map[S]int
}

// History records a run's configuration trajectory at a fixed parallel-
// time cadence: one HistorySample every Δ time units, plus the initial
// configuration and (when the run does not end exactly on the grid) the
// final one. Observing draws no randomness; attaching a History only
// changes how a run is sliced into Run calls (the multiset engines cap
// batches at each call's remaining budget), which is statistically
// irrelevant — the sampled process is the same.
type History[S comparable] struct {
	every   float64
	next    float64
	samples []HistorySample[S]
}

// historyEps absorbs float64 drift when comparing engine time against the
// sampling grid (mirroring the tolerance churn.drive uses for its ticks).
const historyEps = 1e-9

// NewHistory returns a History sampling every Δ=every time units. It
// panics if every is not positive.
func NewHistory[S comparable](every float64) *History[S] {
	if every <= 0 || math.IsNaN(every) {
		panic("pop: History requires a positive sampling interval")
	}
	return &History[S]{every: every}
}

// Every returns the sampling interval Δ.
func (h *History[S]) Every() float64 { return h.every }

// Samples returns the recorded trajectory (not a copy; callers must not
// mutate it while the run continues).
func (h *History[S]) Samples() []HistorySample[S] { return h.samples }

// Observe records the engine's current configuration as a sample and
// advances the sampling grid past the engine's time. The first call
// (typically at time 0) anchors the grid; RunUntil calls it on every grid
// point it reaches. Duplicate observations of the same instant — e.g. a
// final sample landing exactly on a grid point — are coalesced.
func (h *History[S]) Observe(e Engine[S]) {
	t := e.Time()
	if n := len(h.samples); n > 0 && h.samples[n-1].Interactions == e.Interactions() &&
		h.samples[n-1].Time == t {
		return
	}
	h.samples = append(h.samples, HistorySample[S]{
		Time:         t,
		N:            e.N(),
		Interactions: e.Interactions(),
		Counts:       e.Counts(),
	})
	// Advance the grid by repeated addition (not multiplication), so the
	// boundary sequence is independent of when observations happen.
	for h.next <= t+historyEps {
		h.next += h.every
	}
}

// RunUntil runs the engine with RunUntil semantics (see Engine.RunUntil)
// while recording a sample on every Δ grid point: it advances the engine
// to whichever of the next sample boundary or the next checkEvery
// boundary comes first, so pred still fires on exactly the usual check
// grid and the history on exactly the sampling grid. The initial and
// final configurations are always recorded.
func (h *History[S]) RunUntil(e Engine[S], pred func(Engine[S]) bool, checkEvery, maxTime float64) (ok bool, at float64) {
	if checkEvery <= 0 {
		panic("pop: RunUntil requires checkEvery > 0")
	}
	start := e.Time()
	h.Observe(e)
	if pred(e) {
		return true, start
	}
	nextCheck := start + checkEvery
	for e.Time()-start < maxTime {
		t := e.Time()
		target := math.Min(h.next, nextCheck)
		// Advance by whole interactions, rounding up so the engine
		// actually crosses the boundary (RunTime rounds down and would
		// spin on sub-interaction gaps).
		k := int64(math.Ceil((target - t) * float64(e.N())))
		if k < 1 {
			k = 1
		}
		e.Run(k)
		if e.Time() >= h.next-historyEps {
			h.Observe(e)
		}
		if e.Time() >= nextCheck-historyEps {
			for nextCheck <= e.Time()+historyEps {
				nextCheck += checkEvery
			}
			if pred(e) {
				h.Observe(e)
				return true, e.Time()
			}
		}
	}
	h.Observe(e)
	return false, e.Time()
}
