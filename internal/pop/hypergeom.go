package pop

import (
	"math"
	"math/bits"
	"math/rand/v2"
)

// hypergeometric samples from the hypergeometric distribution: the number
// of "successes" among m draws without replacement from a population of N
// items of which K are successes. It is exact up to float64 rounding (the
// same caveat as any floating-point sampler).
//
// BatchSim calls it once per live state per batch to sample the
// multivariate hypergeometric allocation of batch slots to states, so the
// constant factor matters: light states (small expected draw) use an
// inverse-transform walk from zero whose only transcendental work is one
// log1p/exp pair, and heavy states use the HRUA rejection sampler
// (constant expected time at any standard deviation).
func hypergeometric(r *rand.Rand, N, K, m int64) int64 {
	switch {
	case N < 0 || K < 0 || m < 0 || K > N || m > N:
		panic("pop: invalid hypergeometric parameters")
	case m == 0 || K == 0:
		return 0
	case m == N:
		return K
	case K == N:
		return m
	}
	// Symmetries: successes among the m drawn = K − successes among the
	// N−m undrawn; and the roles of K and m are exchangeable. Use them to
	// shrink the work.
	if m > N/2 {
		return K - hypergeometric(r, N, K, N-m)
	}
	if K > N/2 {
		return m - hypergeometric(r, N, N-K, m)
	}
	if K > m {
		K, m = m, K // Hyp(N, K, m) == Hyp(N, m, K)
	}
	// After the reductions K <= m <= N/2, so the support starts at 0 and
	// p(0) = C(N−K, m)/C(N, m) = Π (N−m−i)/(N−i) over i < K is positive.
	if mean := float64(K) * float64(m) / float64(N); mean <= 16 {
		// Light state: walk up from zero. p(0) via exp/log1p; then the
		// ratio recurrence. Expected steps ≈ mean.
		// p(0) by direct product while the factor count stays below the
		// cost of the lnChoose route (6 log-gammas plus an exp).
		var p float64
		if K <= 64 {
			p = 1
			for i := int64(0); i < K; i++ {
				p *= float64(N-m-i) / float64(N-i)
			}
		} else {
			p = math.Exp(lnChoose(N-K, m) - lnChoose(N, m))
		}
		u := r.Float64()
		acc := p
		x := int64(0)
		// After the reductions the support is [0, K]; stopping at K also
		// covers the float64-rounding sliver where acc never reaches u.
		for acc <= u && x < K {
			// p(x+1)/p(x) = (K−x)(m−x) / ((x+1)(N−K−m+x+1))
			p *= float64(K-x) * float64(m-x) / (float64(x+1) * float64(N-K-m+x+1))
			x++
			acc += p
			if p == 0 {
				break
			}
		}
		return x
	}
	return hypergeometricHRUA(r, N, K, m)
}

// lightDraw reports c·k < thresh·remPop — the heavy/light split every
// composition chain uses to decide between one hypergeometric draw per
// state (heavy: the state expects at least thresh of the k remaining
// draws) and per-item Fenwick descents over the suffix (light). The
// products wrap int64 for large populations (c·k ≈ 2.5·10²³ at N = 10¹²
// with c, k ≈ N/2), which silently flipped path selection, so the
// comparison runs on 128-bit intermediates. Arguments must be
// non-negative.
func lightDraw(c, k, thresh, remPop int64) bool {
	chi, clo := bits.Mul64(uint64(c), uint64(k))
	thi, tlo := bits.Mul64(uint64(thresh), uint64(remPop))
	return chi < thi || (chi == thi && clo < tlo)
}

// multivariateHypergeometric draws the per-class composition of a uniform
// without-replacement sample of size m from a population whose class i
// has counts[i] members (Σ counts = total): dst[i] (same length as
// counts) receives the number of sampled class-i members. The draw
// factorizes into a chain of univariate hypergeometrics — class i's
// allocation is hypergeometric in the population and sample remaining
// after classes < i — which is exact for any class order. DenseSim
// advances whole interaction batches on draws of this form: once for the
// batch's receiver states, once for its sender states, and once per
// receiver state to realize the uniformly random pairing as a matrix of
// ordered state-pair counts (it inlines the chain against its live-state
// bookkeeping; see sampleParticipants and pairAndApply in dense.go).
func multivariateHypergeometric(r *rand.Rand, counts []int64, total, m int64, dst []int64) {
	if len(dst) != len(counts) {
		panic("pop: multivariate hypergeometric dst/counts length mismatch")
	}
	if m < 0 || m > total {
		panic("pop: invalid multivariate hypergeometric sample size")
	}
	remPop := total
	for i, c := range counts {
		if c == 0 || m == 0 {
			dst[i] = 0
			continue
		}
		var k int64
		if remPop == m {
			k = c // forced: every remaining member is sampled
		} else {
			k = hypergeometric(r, remPop, c, m)
		}
		remPop -= c
		m -= k
		dst[i] = k
	}
	if m != 0 {
		panic("pop: multivariate hypergeometric under-filled (Σcounts < total?)")
	}
}

// removeCountsChain debits a uniform without-replacement sample of k
// agents from the counts vector through debit — the multivariate
// hypergeometric chain with the batch samplers' heavy/light split: one
// hypergeometric draw per state while a state expects a material share
// of the sample, one Fenwick descent over the remaining suffix per agent
// for the light tail. It is the single removal sampler behind
// BatchSim.RemoveAgents and DenseSim.RemoveAgents, so the two multiset
// backends cannot drift apart. debit must keep counts in sync (both
// engines pass their addCount).
func removeCountsChain(rng *rand.Rand, tree *fenwick, counts []int64, total, k int64, debit func(id int32, d int64)) {
	remPop := total
	for id := 0; id < len(counts) && k > 0; id++ {
		c := counts[id]
		if c == 0 {
			continue
		}
		if lightDraw(c, k, batchHeavyMean, remPop) && k < 2*int64(len(counts)-id) {
			tree.reset(counts[id:])
			for ; k > 0; k-- {
				sid := int32(id + tree.findAndDec(rng.Int64N(remPop)))
				remPop--
				debit(sid, -1)
			}
			return
		}
		var d int64
		if remPop == k {
			d = c // forced: every remaining agent leaves
		} else {
			d = hypergeometric(rng, remPop, c, k)
		}
		remPop -= c
		k -= d
		if d > 0 {
			debit(int32(id), -d)
		}
	}
	if k != 0 {
		panic("pop: churn removal under-filled")
	}
}

// hypergeometricMode returns the mode anchor floor((m+1)(K+1)/(N+2)) of
// Hyp(N, K, m), clamped to the support. The int64 product (m+1)(K+1)
// wraps once N ≳ 6·10⁹ with K, m ≈ N/2 (the wrapped anchor was clamped
// to the support's low end, silently degrading the old mode walk from
// O(stddev) to O(support) — an effective hang at N = 10¹²), so the
// anchor is computed in float64: exact except when the quotient falls
// within a few hundred ULP of an integer, where it may be off by one —
// either value anchors the rejection sampler equally well (the envelope
// scaling shifts by O(1/stddev²), far below the sampler's float64
// noise floor).
func hypergeometricMode(N, K, m int64) int64 {
	mode := int64(math.Floor(float64(m+1) * float64(K+1) / float64(N+2)))
	lo := max(int64(0), m-(N-K))
	hi := min(m, K)
	return min(max(mode, lo), hi)
}

// Stadlober's ratio-of-uniforms constants: hruaD1 = 2·√(2/e) (the
// enclosing rectangle's width factor) and hruaD2 = 3 − 2·√(3/e) (its
// additive continuity correction).
const (
	hruaD1 = 1.7155277699214135
	hruaD2 = 0.8989161620588988
)

// hruaLnF is −ln of the non-constant pmf factor of Hyp(·, K, m) at x:
// ln(x!·(K−x)!·(m−x)!·(N−K−m+x)!) with nkm = N−K−m. Differences of
// hruaLnF are exact log pmf ratios (the K!, (N−K)!, m!, (N−m)!, C(N,m)
// terms cancel), which is all the acceptance test needs.
func hruaLnF(K, m, nkm, x int64) float64 {
	return lnGamma(float64(x+1)) + lnGamma(float64(K-x+1)) +
		lnGamma(float64(m-x+1)) + lnGamma(float64(nkm+x+1))
}

// hypergeometricHRUA samples Hyp(N, K, m) by Stadlober's HRUA
// ratio-of-uniforms rejection (the H2PE-family sampler NumPy uses):
// a candidate w = center + width·(v−½)/u from one uniform pair (u, v)
// is accepted against the pmf ratio p(⌊w⌋)/p(mode), with a quadratic
// squeeze deciding most candidates before the exact log test. Expected
// cost is constant — measured ~1.37 uniform pairs and ~1.35 pmf-ratio
// evaluations per draw, flat from σ = 10² to 10⁶, with ~94% of accepted
// draws resolved by the squeeze alone — which is what makes the batched
// engines' per-batch work independent of n (the old mode walk's
// O(stddev) inverse transform grew as √n).
//
// Callers must have applied hypergeometric's reductions first:
// 0 < K <= m <= N/2, so the support is [0, K] and no post-hoc symmetry
// correction is needed.
func hypergeometricHRUA(r *rand.Rand, N, K, m int64) int64 {
	p := float64(K) / float64(N)
	nkm := N - K - m
	center := float64(m)*p + 0.5
	sd := math.Sqrt(float64(N-m)*float64(m)*p*(1-p)/float64(N-1) + 0.5)
	width := hruaD1*sd + hruaD2
	mode := hypergeometricMode(N, K, m)
	lnFMode := hruaLnF(K, m, nkm, mode)
	// Right cutoff of the enclosing region: the support's end, or 16
	// stddevs past the mean — where the envelope's tail mass is below
	// the 16-digit precision of hruaD1/hruaD2.
	cut := math.Min(float64(K+1), math.Floor(center+16*sd))
	for {
		u := r.Float64()
		v := r.Float64()
		w := center + width*(v-0.5)/u
		// The negated form also rejects the u = 0 edge (w = ±Inf or NaN).
		if !(w >= 0 && w < cut) {
			continue
		}
		z := int64(w)
		t := lnFMode - hruaLnF(K, m, nkm, z)
		// Squeeze tests: u(4−u)−3 <= 2·ln u <= u(u−t)... rearranged so
		// most candidates resolve without the log.
		if u*(4-u)-3 <= t {
			return z // squeeze acceptance (implies 2·ln u <= t)
		}
		if u*(u-t) >= 1 {
			continue // squeeze rejection (implies 2·ln u > t)
		}
		if 2*math.Log(u) <= t {
			return z // exact pmf-ratio test
		}
	}
}

// lnChoose returns ln C(n, k) via log-gamma.
func lnChoose(n, k int64) float64 {
	return lnGamma(float64(n+1)) - lnGamma(float64(k+1)) - lnGamma(float64(n-k+1))
}

const halfLn2Pi = 0.91893853320467274178032973640562

// lnGamma is a fast ln Γ(x) for the sampler's hot path: a two-term
// Stirling series for large arguments (absolute error < 1e-11 for
// x >= 64, far below the sampler's float64 noise floor), deferring to
// math.Lgamma below that.
func lnGamma(x float64) float64 {
	if x < 64 {
		v, _ := math.Lgamma(x)
		return v
	}
	return (x-0.5)*math.Log(x) - x + halfLn2Pi + 1/(12*x) - 1/(360*x*x*x)
}
