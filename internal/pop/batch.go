// BatchSim: the batched multiset simulation backend.
//
// # Representation
//
// Agents are anonymous, so an execution is fully described by its
// configuration trajectory — the multiset of states over time. BatchSim
// stores only that multiset: states are interned to dense int32 ids and a
// counts vector holds how many agents occupy each. All per-interaction
// work then scales with q, the number of currently-live distinct states
// (O(log⁴ n) for this paper's protocols), instead of touching an n-sized
// agent array whose random accesses dominate the sequential engine's cost
// at large n. Compaction keeps ids dense and ordered by decreasing count,
// so the hottest states occupy the smallest ids.
//
// # Batching
//
// Following Berenbrink et al. (arXiv:2005.03584), interactions are
// processed in collision-free batches. Whether the scheduler's t-th pair
// since the batch began reuses an already-seen agent depends only on n,
// not on states: the next interaction is collision-free with probability
// (n−2t)(n−2t−1)/(n(n−1)) after t collision-free interactions. BatchSim
// inverse-transform samples the run length ℓ until the first collision
// (or a cap), giving a run of ℓ interactions among 2ℓ distinct agents — a
// uniform sample without replacement from the population. The 2ℓ
// participant states are therefore a multivariate hypergeometric draw
// from the counts vector, taken either state-by-state (when batches are
// long relative to q, with a Fisher–Yates shuffle realizing the uniformly
// random pairing) or slot-by-slot through a Fenwick tree (when q is large
// relative to the batch). The collision interaction itself, when one was
// sampled, is resolved exactly: the colliding pair is drawn from the
// correct conditional distribution over batch participants (whose
// post-interaction states are known) and outsiders. The configuration
// trajectory is consequently distributed identically to the sequential
// engine's, up to float64 rounding in two inverse-transform samplers (the
// same caveat as any floating-point sampler) — batching is a change of
// simulation algorithm, not of model.
//
// # Transition caching
//
// Rules are opaque randomized functions, but most protocol transitions are
// deterministic. BatchSim feeds rules a rand.Rand whose Source counts how
// many random words the rule consumes: a (receiver, sender) state pair
// whose transition consumed none is a pure function of its inputs and is
// cached in a fixed-size direct-mapped table keyed by the id pair, so
// subsequent interactions of that pair skip the rule entirely (conflicting
// pairs simply evict each other). This relies on rules being pure
// functions of (rec, sen, randomness) — true of every protocol in this
// repository and required by the Rule contract. Compaction remaps ids, so
// it advances a generation stamp embedded in the keys and carries the
// surviving hot entries across.
//
// # Fallback
//
// Protocols (or phases) whose live state count exceeds WithBatchThreshold
// get no benefit from multiset bookkeeping, so BatchSim materializes an
// explicit agent array and steps it sequentially — the exact reference
// semantics — re-entering batch mode if the configuration re-concentrates.
// The batched engine cannot provide per-agent interaction counts
// (WithInteractionCounts); use the sequential engine for those
// experiments.
package pop

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
)

// countingSource wraps a rand.Source and counts the words drawn through
// it, letting BatchSim detect whether a rule consumed randomness.
type countingSource struct {
	src   rand.Source
	words uint64
}

func (c *countingSource) Uint64() uint64 {
	c.words++
	return c.src.Uint64()
}

// BatchStats reports how a BatchSim run was executed; it is diagnostic
// only (exposed for tests, benchmarks and tuning).
type BatchStats struct {
	// Batches is the number of collision-free batches processed.
	Batches int64
	// BatchedInteractions counts interactions simulated inside batches
	// (including their collision steps).
	BatchedInteractions int64
	// SeqInteractions counts interactions executed in the materialized
	// sequential fallback mode.
	SeqInteractions int64
	// Fallbacks is the number of batch→sequential mode switches.
	Fallbacks int64
	// Reentries is the number of sequential→batch mode switches.
	Reentries int64
	// CacheHits / RuleCalls split pair transitions between the
	// deterministic-transition cache and actual rule invocations;
	// UncachedPairs counts rule invocations made while the dense cache
	// was disabled or did not cover the pair's ids. TableHits counts
	// transitions resolved by the declared-table bypass (WithTable),
	// which skips both the cache probe and the rule.
	CacheHits     int64
	RuleCalls     int64
	UncachedPairs int64
	TableHits     int64
	// Compactions counts interning-table rebuilds.
	Compactions int64
}

const (
	// defaultBatchThreshold is the live-state cutoff beyond which the
	// multiset representation stops paying for itself.
	defaultBatchThreshold = 8192
	// maxBatchPairs caps a single batch's length (slots memory and
	// scratch sizes scale with it).
	maxBatchPairs = 1 << 16
	// cacheBits sizes the direct-mapped transition cache: 1<<cacheBits
	// slots of 16 bytes (4 MiB). Conflicting pairs simply evict each
	// other; the hot working set of real protocols is far smaller.
	cacheBits = 18
	// stateSampleFactor: batches with at least stateSampleFactor slots
	// per live state sample slot counts state-by-state (hypergeometric
	// chain + shuffle); shorter ones sample slot-by-slot (Fenwick).
	stateSampleFactor = 2
	// batchHeavyMean: within the state-by-state path, a state is sampled
	// with its own hypergeometric draw only while it expects at least
	// this many slots; lighter states switch to per-slot suffix draws.
	batchHeavyMean = 8
	// seqRecheckFactor: in fallback mode, live states are recounted every
	// seqRecheckFactor·n interactions to decide on re-entering batch
	// mode.
	seqRecheckFactor = 2
	// cacheMaxID bounds the ids packable into a cache key (22 bits each,
	// with the remaining 20 bits holding the compaction generation).
	cacheMaxID = 1 << 22
)

// BatchSim is the batched multiset engine. See the file comment for the
// algorithm. It is not safe for concurrent use; run independent trials on
// independent values (e.g. via RunTrials).
type BatchSim[S comparable] struct {
	pcg       *rand.PCG // rng's source, retained for snapshotting
	rng       *rand.Rand
	ruleRand  *countingSource
	ruleRng   *rand.Rand
	rule      Rule[S]
	n         int
	interacts int64

	// Per-segment parallel-time accounting (see Engine.Time).
	timeBase float64
	segStart int64

	// Interning. states/counts are parallel: counts[id] agents currently
	// hold states[id]. live counts the ids with counts > 0; distinct
	// counts every state ever interned (the DistinctStates measure).
	states   []S
	pos      map[S]int32
	counts   []int64
	total    int64 // running Σcounts; must equal n (conservation invariant)
	live     int
	distinct int

	qMax int // live-state fallback threshold
	par  int // 0 = legacy serial samplers; >= 1 = node-seeded splitter path with this worker target

	// Direct-mapped transition cache. A slot holds the generation-stamped
	// id pair and its packed deterministic outputs; compaction remaps ids,
	// so it bumps cacheGen, implicitly invalidating every older entry.
	cache    []cacheSlot
	cacheGen uint64

	// Declared-table bypass (WithTable): the compiled table plus the
	// engine-id ↔ table-id translation, rebuilt on compaction. nil when
	// no table is attached.
	tbl *tableView[S]

	// Sequential fallback mode.
	seqMode    bool
	agents     []S
	seqRecheck int64 // interactions until the next re-entry check

	tree  fenwick
	slots []int32 // batch scratch: pre states, then post states

	// Splitter-path scratch (par >= 1): participant composition, prefix
	// sums, and the batch's post multiset (the split path never rewrites
	// slots in place — outputs accumulate as counts, as in DenseSim).
	comp []int64
	cum  []int64
	post []int64

	// test hooks (nil/false in production)
	forceNoSeq  bool
	batchEvents func(ell int, collided bool)

	stats BatchStats
}

// newBatchShell builds a BatchSim with everything but its initial
// configuration, shared by the constructors below.
func newBatchShell[S comparable](rule Rule[S], o options) *BatchSim[S] {
	if rule == nil {
		panic("pop: nil rule")
	}
	if o.trackInteractions {
		panic("pop: the batched backend cannot track per-agent interaction counts; use WithBackend(Sequential)")
	}
	pcg := rand.NewPCG(o.seed, o.seed^0x9e3779b97f4a7c15)
	cs := &countingSource{src: pcg}
	tbl := attachTable[S](o)
	b := &BatchSim[S]{
		pcg:      pcg,
		rng:      rand.New(pcg),
		ruleRand: cs,
		ruleRng:  rand.New(cs),
		rule:     rule,
		pos:      make(map[S]int32, posSizeFor(tbl)),
		tbl:      tbl,
		qMax:     defaultBatchThreshold,
	}
	if o.batchThreshold > 0 {
		b.qMax = o.batchThreshold
	}
	b.cache = make([]cacheSlot, 1<<cacheBits)
	b.cacheGen = 1
	return b
}

// NewBatch constructs a batched multiset simulator; the arguments mirror
// New. It panics if WithInteractionCounts was requested (the multiset
// representation has no agent identities).
func NewBatch[S comparable](n int, initial func(i int, r *rand.Rand) S, rule Rule[S], opts ...Option) *BatchSim[S] {
	validatePopSize(int64(n))
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	b := newBatchShell[S](rule, o)
	b.n = n
	b.par = resolveParallelism(o.parallelism, n)
	for i := 0; i < n; i++ {
		b.addCount(b.intern(initial(i, b.rng)), 1)
	}
	b.compact()
	return b
}

// NewBatchFromConfig is NewBatch for an explicit initial configuration
// (copied), mirroring NewFromConfig.
func NewBatchFromConfig[S comparable](agents []S, rule Rule[S], opts ...Option) *BatchSim[S] {
	cp := make([]S, len(agents))
	copy(cp, agents)
	return NewBatch(len(cp), func(i int, _ *rand.Rand) S { return cp[i] }, rule, opts...)
}

// NewBatchFromCounts constructs a batched multiset simulator directly from
// a configuration multiset given as parallel slices: states[i] is held by
// counts[i] agents (zero-count entries are skipped, duplicate states
// accumulate). Unlike NewBatchFromConfig it never materializes an agent
// slice, so it works at population sizes where an agent array would not
// fit in memory; DenseSim uses it to delegate mid-run.
func NewBatchFromCounts[S comparable](states []S, counts []int64, rule Rule[S], opts ...Option) *BatchSim[S] {
	n := int(validateCounts(states, counts))
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	b := newBatchShell[S](rule, o)
	for i, c := range counts {
		if c > 0 {
			b.addCount(b.intern(states[i]), c)
		}
	}
	b.n = n
	b.par = resolveParallelism(o.parallelism, n)
	b.compact()
	return b
}

// intern returns the dense id of state s, assigning one if new.
func (b *BatchSim[S]) intern(s S) int32 {
	if id, ok := b.pos[s]; ok {
		return id
	}
	id := int32(len(b.states))
	b.states = append(b.states, s)
	b.counts = append(b.counts, 0)
	b.pos[s] = id
	b.distinct++
	if b.tbl != nil {
		b.tbl.noteIntern(s, id)
	}
	return id
}

// addCount adjusts counts[id] by d, maintaining the live-state count and
// the conservation total.
func (b *BatchSim[S]) addCount(id int32, d int64) {
	c := b.counts[id]
	nc := c + d
	if nc < 0 {
		panic("pop: BatchSim state count went negative")
	}
	b.counts[id] = nc
	b.total += d
	if c == 0 && nc > 0 {
		b.live++
	} else if c > 0 && nc == 0 {
		b.live--
	}
}

// N returns the population size.
func (b *BatchSim[S]) N() int { return b.n }

// Interactions returns the number of interactions executed so far.
func (b *BatchSim[S]) Interactions() int64 { return b.interacts }

// Time returns the parallel time elapsed, accumulated per churn segment
// (see Engine.Time); on a fixed population it equals interactions / n.
func (b *BatchSim[S]) Time() float64 {
	return b.timeBase + float64(b.interacts-b.segStart)/float64(b.n)
}

// beginSegment folds the current churn segment into timeBase before a
// population-size change.
func (b *BatchSim[S]) beginSegment() {
	b.timeBase += float64(b.interacts-b.segStart) / float64(b.n)
	b.segStart = b.interacts
}

// AddAgents adds k agents in state st (a join event): one count edit in
// multiset mode, k appended slots in the sequential fallback.
func (b *BatchSim[S]) AddAgents(st S, k int) {
	checkJoin(b.n, k)
	if k == 0 {
		return
	}
	b.beginSegment()
	if b.seqMode {
		b.intern(st) // keep DistinctStates exact, as seqStep does
		for i := 0; i < k; i++ {
			b.agents = append(b.agents, st)
		}
	} else {
		b.addCount(b.intern(st), int64(k))
	}
	b.n += k
}

// RemoveAgents removes k agents chosen uniformly at random without
// replacement (a leave event), refusing to shrink the population below 2.
// In multiset mode the removed agents' states are a multivariate
// hypergeometric sample of the counts vector, drawn with the same
// heavy/light chain the batch sampler uses.
func (b *BatchSim[S]) RemoveAgents(k int) {
	checkRemoval(b.n, k)
	if k == 0 {
		return
	}
	b.beginSegment()
	if b.seqMode {
		for r := k; r > 0; r-- {
			n := len(b.agents)
			j := b.rng.IntN(n)
			b.agents[j] = b.agents[n-1]
			b.agents = b.agents[:n-1]
		}
	} else if b.par >= 1 {
		b.comp, b.cum = removeCountsSplit(effectiveWorkers(b.par), b.rng.Uint64(),
			b.counts, b.total, int64(k), b.addCount, b.comp, b.cum)
	} else {
		removeCountsChain(b.rng, &b.tree, b.counts, b.total, int64(k), b.addCount)
	}
	b.n -= k
}

// DistinctStates returns the number of distinct states observed since the
// initial configuration. Unlike the sequential engine, the batched engine
// tracks this as a side effect of interning and needs no option.
func (b *BatchSim[S]) DistinctStates() int { return b.distinct }

// Stats returns execution diagnostics.
func (b *BatchSim[S]) Stats() BatchStats { return b.stats }

// LiveStates returns the number of distinct states currently present.
func (b *BatchSim[S]) LiveStates() int {
	if b.seqMode {
		b.recountFromAgents()
	}
	return b.live
}

// Counts returns the configuration vector.
func (b *BatchSim[S]) Counts() map[S]int {
	if b.seqMode {
		c := make(map[S]int, 64)
		for _, a := range b.agents {
			c[a]++
		}
		return c
	}
	c := make(map[S]int, b.live)
	for id, cnt := range b.counts {
		if cnt > 0 {
			c[b.states[id]] = int(cnt)
		}
	}
	return c
}

// Count returns the number of agents satisfying pred.
func (b *BatchSim[S]) Count(pred func(S) bool) int {
	if b.seqMode {
		k := 0
		for _, a := range b.agents {
			if pred(a) {
				k++
			}
		}
		return k
	}
	var k int64
	for id, cnt := range b.counts {
		if cnt > 0 && pred(b.states[id]) {
			k += cnt
		}
	}
	return int(k)
}

// All reports whether every agent satisfies pred.
func (b *BatchSim[S]) All(pred func(S) bool) bool {
	if b.seqMode {
		for _, a := range b.agents {
			if !pred(a) {
				return false
			}
		}
		return true
	}
	for id, cnt := range b.counts {
		if cnt > 0 && !pred(b.states[id]) {
			return false
		}
	}
	return true
}

// Any reports whether at least one agent satisfies pred.
func (b *BatchSim[S]) Any(pred func(S) bool) bool {
	return !b.All(func(s S) bool { return !pred(s) })
}

// RunTime executes t units of parallel time (t·n interactions, rounded
// down).
func (b *BatchSim[S]) RunTime(t float64) {
	b.Run(int64(t * float64(b.n)))
}

// RunUntil has the semantics documented on Engine.RunUntil, shared with
// the sequential engine.
func (b *BatchSim[S]) RunUntil(pred func(Engine[S]) bool, checkEvery, maxTime float64) (ok bool, at float64) {
	return runUntil[S](b, pred, checkEvery, maxTime)
}

// Step executes one interaction. In batch mode this is an exact
// single-interaction multiset step (the pair of states is drawn from the
// same distribution the agent-level scheduler induces); it costs O(q) and
// exists for API completeness — Run amortizes far better.
func (b *BatchSim[S]) Step() {
	if b.seqMode {
		b.seqStep()
		return
	}
	ra := b.drawLinear(b.rng.Int64N(int64(b.n)))
	b.addCount(ra, -1)
	rb := b.drawLinear(b.rng.Int64N(int64(b.n) - 1))
	b.addCount(rb, -1)
	oa, ob := b.applyPair(ra, rb)
	b.addCount(oa, 1)
	b.addCount(ob, 1)
	b.interacts++
}

// drawLinear maps u ∈ [0, Σcounts) to a state id by linear scan.
func (b *BatchSim[S]) drawLinear(u int64) int32 {
	for id, c := range b.counts {
		if u < c {
			return int32(id)
		}
		u -= c
	}
	panic("pop: BatchSim draw out of range")
}

// Run executes k interactions.
func (b *BatchSim[S]) Run(k int64) {
	for k > 0 {
		if b.seqMode {
			k -= b.seqRun(k)
			continue
		}
		if b.live > b.qMax {
			b.materialize()
			continue
		}
		if k < 8 || b.n < 8 {
			b.Step()
			k--
			continue
		}
		if len(b.states) >= 4*b.live && len(b.states) >= 256 {
			b.compact()
		}
		k -= b.runBatch(k)
	}
}

// runBatch simulates one collision-free batch (plus its collision
// interaction, if one was sampled) of at most kmax interactions, and
// returns how many interactions it executed.
func (b *BatchSim[S]) runBatch(kmax int64) int64 {
	if b.par >= 1 {
		return b.runBatchSplit(kmax)
	}
	n := int64(b.n)
	// Sample the collision-free run length ℓ (see collisionFreeRun): a
	// cap from kmax, scratch limits or population size just ends the
	// batch early with no collision interaction, which composes exactly —
	// each batch draws its participants from the fully committed
	// configuration.
	maxPairs := min(int64(maxBatchPairs), kmax, n/3+1)
	ell, collided := collisionFreeRun(b.rng, n, maxPairs)
	if ell == 0 {
		// Only possible when a cap degenerated; fall back to one exact step.
		b.Step()
		return 1
	}
	m := 2 * ell

	// Draw the 2ℓ participant states without replacement and pair them.
	if cap(b.slots) < int(m)+2 {
		b.slots = make([]int32, m+2)
	}
	slots := b.slots[:m]
	if m >= int64(stateSampleFactor*b.live) {
		b.sampleSlotsByState(slots)
	} else {
		b.sampleSlotsByFenwick(slots)
	}

	// Apply the rule to each ordered pair, rewriting the slot array in
	// place with the post-interaction states.
	for i := int64(0); i < m; i += 2 {
		slots[i], slots[i+1] = b.applyPair(slots[i], slots[i+1])
	}

	done := ell
	if collided {
		slots = b.collisionStep(slots)
		done++
	}

	// Commit participants' post states.
	for _, id := range slots {
		b.addCount(id, 1)
	}
	b.interacts += done
	b.stats.Batches++
	b.stats.BatchedInteractions += done
	if b.total != n {
		panic(fmt.Sprintf("pop: BatchSim conservation violated: %d agents after batch, want %d", b.total, n))
	}
	if b.batchEvents != nil {
		b.batchEvents(int(ell), collided)
	}
	return done
}

// runBatchSplit is runBatch on the node-seeded splitter path (par >= 1):
// the same collision-free batch law, with every draw below the batch's
// one seed word derived from (seed, node path) so the trajectory is
// byte-identical for any worker count. The batch proceeds in phases —
// participant composition (mvhSplitComp), uniform arrangement
// (multisetSeqSplit), a read-only cache-hit pair pass over independent
// chunks, a serial pass over the cache misses (rule calls consume the
// shared rule stream in slot order), collision resolution over the post
// multiset, and an O(q) commit. Only the composition, arrangement and
// cache-hit phases fan out; everything touching the engine's own rng or
// the rule stream stays serial and ordered.
func (b *BatchSim[S]) runBatchSplit(kmax int64) int64 {
	n := int64(b.n)
	maxPairs := min(int64(maxBatchPairs), kmax, n/3+1)
	ell, collided := collisionFreeRun(b.rng, n, maxPairs)
	if ell == 0 {
		// Only possible when a cap degenerated; fall back to one exact step.
		b.Step()
		return 1
	}
	m := 2 * ell
	batchSeed := b.rng.Uint64()
	workers := effectiveWorkers(b.par)
	fanOut := workers > 1 && m >= 2*parMinForkItems

	if cap(b.slots) < int(m)+2 {
		b.slots = make([]int32, m+2)
	}
	slots := b.slots[:m]
	q := len(b.counts)
	if m >= int64(stateSampleFactor*b.live) {
		// Long batch: draw the participants' composition, debit it, then
		// realize a uniformly random arrangement (the pairing).
		b.comp = resizeZero(b.comp, q)
		b.cum = prefixSums(b.cum, b.counts)
		var g *parGroup
		if fanOut {
			g = newParGroup(workers)
		}
		mvhSplitComp(g, deriveSeed(batchSeed, 1), 1, b.counts, b.cum, 0, q, b.total, m, b.comp)
		g.wait()
		for id, k := range b.comp {
			if k > 0 {
				b.addCount(int32(id), -k)
			}
		}
		if fanOut {
			g = newParGroup(workers)
		}
		multisetSeqSplit(g, deriveSeed(batchSeed, 2), 1, b.comp, slots, nil)
		g.wait()
	} else {
		// Short batch relative to the live-state count: per-slot Fenwick
		// draws chain through one node stream (no fan-out — each draw
		// conditions on the previous ones).
		r := nodeRand(deriveSeed(batchSeed, 1), 1)
		b.tree.reset(b.counts)
		rem := b.total
		for i := range slots {
			id := int32(b.tree.findAndDec(r.Int64N(rem)))
			rem--
			b.addCount(id, -1)
			slots[i] = id
		}
	}

	// Cache-hit pair pass: chunks are independent and read-only on engine
	// state (concurrent cache and table reads are safe — nothing writes
	// until the serial miss pass). The declared-table bypass resolves
	// pairs whose outputs are already interned (probeRO); remaining
	// pairs consult the cache. Hits accumulate into per-chunk post
	// vectors; misses defer.
	b.post = resizeZero(b.post, len(b.states))
	nChunks := int((m + pairChunkSlots - 1) / pairChunkSlots)
	missByChunk := make([][]int64, nChunks)
	var hits, tblHits int64
	lookup := func(ida, idb int32) (int32, int32, bool, bool) {
		if t := b.tbl; t != nil {
			if oa, ob, ok := t.probeRO(ida, idb); ok {
				return oa, ob, true, true
			}
		}
		oa, ob, ok := b.cacheLookup(ida, idb)
		return oa, ob, ok, false
	}
	if fanOut && nChunks > 1 {
		var mu sync.Mutex
		g := newParGroup(workers)
		for ci := 0; ci < nChunks; ci++ {
			lo := int64(ci) * pairChunkSlots
			hi := min(lo+pairChunkSlots, m)
			chunk := ci
			g.fork(func() {
				localPost := make([]int64, len(b.post))
				var localMiss []int64
				var localHits, localTblHits int64
				for i := lo; i < hi; i += 2 {
					if oa, ob, ok, fromTable := lookup(slots[i], slots[i+1]); ok {
						localPost[oa]++
						localPost[ob]++
						if fromTable {
							localTblHits++
						} else {
							localHits++
						}
					} else {
						localMiss = append(localMiss, i)
					}
				}
				missByChunk[chunk] = localMiss // distinct index per chunk
				mu.Lock()
				for id, c := range localPost {
					if c > 0 {
						b.post[id] += c
					}
				}
				hits += localHits
				tblHits += localTblHits
				mu.Unlock()
			})
		}
		g.wait()
	} else {
		var localMiss []int64
		for i := int64(0); i < m; i += 2 {
			if oa, ob, ok, fromTable := lookup(slots[i], slots[i+1]); ok {
				b.post[oa]++
				b.post[ob]++
				if fromTable {
					tblHits++
				} else {
					hits++
				}
			} else {
				localMiss = append(localMiss, i)
			}
		}
		missByChunk[0] = localMiss
	}
	b.stats.CacheHits += hits
	b.stats.TableHits += tblHits

	// Serial miss pass, in slot order: rule calls (and their randomness)
	// happen here and only here, so the rule stream's consumption order
	// is a pure function of the trajectory.
	for _, chunk := range missByChunk {
		for _, i := range chunk {
			oa, ob := b.applyPair(slots[i], slots[i+1])
			b.addPost(oa, 1)
			b.addPost(ob, 1)
		}
	}

	done := ell
	if collided {
		b.collisionStepPost(m)
		done++
	}

	// Commit participants' post states.
	for id, c := range b.post {
		if c > 0 {
			b.addCount(int32(id), c)
		}
	}
	b.interacts += done
	b.stats.Batches++
	b.stats.BatchedInteractions += done
	if b.total != n {
		panic(fmt.Sprintf("pop: BatchSim conservation violated: %d agents after batch, want %d", b.total, n))
	}
	if b.batchEvents != nil {
		b.batchEvents(int(ell), collided)
	}
	return done
}

// cacheLookup is the read-only half of applyPair: it reports the cached
// deterministic outputs of the ordered pair, if present. Safe for
// concurrent use while no writer runs (the split path's parallel phase).
func (b *BatchSim[S]) cacheLookup(ida, idb int32) (oa, ob int32, ok bool) {
	return cacheProbe(b.cache, cacheBits, b.cacheGen, ida, idb)
}

// cacheProbe is the read-only transition-cache lookup shared by both
// multiset engines (their tables differ only in size): it reports the
// cached deterministic outputs of the ordered id pair under the given
// generation. Safe for concurrent use while no writer runs.
func cacheProbe(cache []cacheSlot, bits uint, gen uint64, ida, idb int32) (oa, ob int32, ok bool) {
	if ida >= cacheMaxID || idb >= cacheMaxID {
		return 0, 0, false
	}
	key := gen<<44 | uint64(ida)<<22 | uint64(idb)
	s := cache[(key*0x9e3779b97f4a7c15)>>(64-bits)]
	if s.key != key {
		return 0, 0, false
	}
	return int32(s.out >> 32), int32(s.out & math.MaxUint32), true
}

// addPost adds c to the split path's post multiset, growing it when a
// rule output interned a new state mid-batch.
func (b *BatchSim[S]) addPost(id int32, c int64) {
	b.post = growPost(b.post, id, c)
}

// growPost adds c to post[id], growing the slice when a rule output
// interned a new state mid-batch; shared by both multiset engines.
func growPost(post []int64, id int32, c int64) []int64 {
	for int(id) >= len(post) {
		post = append(post, 0)
	}
	post[id] += c
	return post
}

// collisionStepPost resolves the interaction that ends a split-path
// batch. It is collisionStep with the slot array replaced by the post
// multiset (a uniform pick among the batch's participants is a
// post-count-weighted pick among states, as in DenseSim).
func (b *BatchSim[S]) collisionStepPost(m int64) {
	n := int64(b.n)
	o := n - m
	postLeft := m
	pickPost := func() int32 {
		u := b.rng.Int64N(postLeft)
		for id, c := range b.post {
			if u < c {
				b.post[id]--
				postLeft--
				return int32(id)
			}
			u -= c
		}
		panic("pop: BatchSim collision draw out of range")
	}
	drawOut := func() int32 {
		id := b.drawLinear(b.rng.Int64N(o))
		b.addCount(id, -1)
		return id
	}
	// Ordered distinct pairs with >=1 participant, by membership pattern.
	bothIn := m * (m - 1)
	recIn := m * o
	r := b.rng.Int64N(bothIn + 2*recIn)
	var ra, rb int32
	switch {
	case r < bothIn:
		ra = pickPost()
		rb = pickPost()
	case r < bothIn+recIn:
		ra = pickPost()
		rb = drawOut()
	default:
		rb = pickPost()
		ra = drawOut()
	}
	oa, ob := b.applyPair(ra, rb)
	b.addPost(oa, 1)
	b.addPost(ob, 1)
}

// sampleSlotsByState fills slots with a uniform without-replacement sample
// of participant states in O(q·H + |slots|): one hypergeometric draw per
// live state (compaction keeps ids roughly count-descending, so the slots
// usually run out after the first few states), then a Fisher–Yates shuffle
// to realize the uniformly random pairing. Counts are debited as part of
// sampling.
func (b *BatchSim[S]) sampleSlotsByState(slots []int32) {
	remainingPop := b.total
	remainingSlots := int64(len(slots))
	w := 0
	for id := 0; id < len(b.counts) && remainingSlots > 0; id++ {
		c := b.counts[id]
		if c == 0 {
			continue
		}
		// Per-state hypergeometric sampling only pays off for heavy
		// states; once the remaining states each expect only a few slots,
		// per-slot draws over the suffix cost remainingSlots·log q and
		// skip the untouched tail entirely. The suffix tree conditions
		// correctly: slots already allocated went to earlier states, and
		// the chain factorizes in id order.
		if lightDraw(c, remainingSlots, batchHeavyMean, remainingPop) && remainingSlots < 2*int64(len(b.counts)-id) {
			b.tree.reset(b.counts[id:])
			for ; remainingSlots > 0; remainingSlots-- {
				sid := int32(id + b.tree.findAndDec(b.rng.Int64N(remainingPop)))
				remainingPop--
				b.addCount(sid, -1)
				slots[w] = sid
				w++
			}
			break
		}
		var k int64
		if remainingPop == remainingSlots {
			k = c // forced: every remaining agent participates
		} else {
			k = hypergeometric(b.rng, remainingPop, c, remainingSlots)
		}
		remainingPop -= c
		remainingSlots -= k
		if k > 0 {
			b.addCount(int32(id), -k)
			for ; k > 0; k-- {
				slots[w] = int32(id)
				w++
			}
		}
	}
	if remainingSlots != 0 {
		panic("pop: BatchSim slot sampling under-filled")
	}
	// Fisher–Yates: a uniform permutation makes consecutive slot pairs a
	// uniformly random ordered pairing of the sampled multiset.
	for i := len(slots) - 1; i > 0; i-- {
		j := b.rng.IntN(i + 1)
		slots[i], slots[j] = slots[j], slots[i]
	}
}

// sampleSlotsByFenwick fills slots via per-slot weighted draws without
// replacement in O(|slots|·log q), for configurations whose state count is
// large relative to the batch. Counts are debited as part of sampling.
func (b *BatchSim[S]) sampleSlotsByFenwick(slots []int32) {
	b.tree.reset(b.counts)
	remaining := b.total
	for i := range slots {
		id := int32(b.tree.findAndDec(b.rng.Int64N(remaining)))
		remaining--
		b.addCount(id, -1)
		slots[i] = id
	}
}

// collisionStep resolves the interaction that ended a batch: an ordered
// pair of distinct agents conditioned on at least one of them being among
// the batch's 2ℓ participants. Participants' current states are the
// post-interaction states in slots; outsiders are drawn from the debited
// counts. It returns the updated pending-commit slice (collision
// participants replaced by their outputs).
func (b *BatchSim[S]) collisionStep(slots []int32) []int32 {
	n := int64(b.n)
	m := int64(len(slots))
	o := n - m
	// Ordered distinct pairs with >=1 participant, by membership pattern.
	bothIn := m * (m - 1)
	recIn := m * o
	r := b.rng.Int64N(bothIn + 2*recIn)
	pick := func() int32 {
		j := b.rng.IntN(len(slots))
		id := slots[j]
		slots[j] = slots[len(slots)-1]
		slots = slots[:len(slots)-1]
		return id
	}
	drawOut := func() int32 {
		id := b.drawLinear(b.rng.Int64N(o))
		b.addCount(id, -1)
		return id
	}
	var ra, rb int32
	switch {
	case r < bothIn:
		ra = pick()
		rb = pick()
	case r < bothIn+recIn:
		ra = pick()
		rb = drawOut()
	default:
		rb = pick()
		ra = drawOut()
	}
	oa, ob := b.applyPair(ra, rb)
	return append(slots, oa, ob)
}

// applyPair returns the post-interaction state ids for the ordered pair
// (receiver, sender), consulting the declared-table bypass first, then
// the deterministic-transition cache, before invoking the rule.
func (b *BatchSim[S]) applyPair(ida, idb int32) (int32, int32) {
	if t := b.tbl; t != nil {
		if toa, tob, ok := t.probe(ida, idb); ok {
			b.stats.TableHits++
			// Translate table ids back to engine ids, interning outputs
			// not yet present — receiver first, exactly the order the
			// rule path interns, so trajectories stay byte-identical.
			oa := t.engOf[toa]
			if oa < 0 {
				oa = b.intern(t.c.states[toa])
			}
			ob := t.engOf[tob]
			if ob < 0 {
				ob = b.intern(t.c.states[tob])
			}
			return oa, ob
		}
	}
	cached := ida < cacheMaxID && idb < cacheMaxID
	var key uint64
	var slot *cacheSlot
	if cached {
		key = b.cacheGen<<44 | uint64(ida)<<22 | uint64(idb)
		slot = &b.cache[(key*0x9e3779b97f4a7c15)>>(64-cacheBits)]
		if slot.key == key {
			b.stats.CacheHits++
			return int32(slot.out >> 32), int32(slot.out & math.MaxUint32)
		}
	} else {
		b.stats.UncachedPairs++
	}
	before := b.ruleRand.words
	sa, sb := b.rule(b.states[ida], b.states[idb], b.ruleRng)
	b.stats.RuleCalls++
	oa, ob := b.intern(sa), b.intern(sb)
	if cached && b.ruleRand.words == before {
		// The rule consumed no randomness, so this transition is a pure
		// function of the input pair: cache it.
		*slot = cacheSlot{key: key, out: uint64(uint32(oa))<<32 | uint64(uint32(ob))}
	}
	return oa, ob
}

// cacheSlot is one direct-mapped transition-cache entry: a
// generation-stamped (receiver, sender) id pair and its packed outputs.
type cacheSlot struct {
	key uint64 // gen<<44 | receiver<<22 | sender; 0 = empty (gen starts at 1)
	out uint64 // receiver output << 32 | sender output
}

// compact rebuilds the interning tables over the live states, ordered by
// decreasing count so hot states get small ids, and resizes the dense
// transition cache accordingly (ids are remapped, so it is cleared). Runs
// at construction and whenever dead states dominate the tables.
func (b *BatchSim[S]) compact() {
	b.stats.Compactions++
	type sc struct {
		id int32
		c  int64
	}
	liveIDs := make([]sc, 0, b.live)
	for id, c := range b.counts {
		if c > 0 {
			liveIDs = append(liveIDs, sc{int32(id), c})
		}
	}
	sort.Slice(liveIDs, func(i, j int) bool { return liveIDs[i].c > liveIDs[j].c })
	remap := make([]int32, len(b.states)) // old id → new id, -1 if dead
	for i := range remap {
		remap[i] = -1
	}
	states := make([]S, 0, len(liveIDs))
	counts := make([]int64, 0, len(liveIDs))
	pos := make(map[S]int32, 2*len(liveIDs))
	for _, e := range liveIDs {
		nid := int32(len(states))
		remap[e.id] = nid
		pos[b.states[e.id]] = nid
		states = append(states, b.states[e.id])
		counts = append(counts, e.c)
	}
	b.states, b.counts, b.pos = states, counts, pos
	if b.tbl != nil {
		b.tbl.rebuild(b.states)
	}

	// Ids were remapped: advance the cache generation so stale entries
	// can never match, then carry the still-live hot transitions over
	// under their new ids (re-deriving them would cost a rule call per
	// hot pair after every compaction). The generation field is 20 bits;
	// wrap it explicitly (clearing the table so no pre-wrap entry can
	// alias a post-wrap key) rather than silently overflowing.
	oldGen := b.cacheGen
	if b.cacheGen+1 >= 1<<20 {
		for i := range b.cache {
			b.cache[i] = cacheSlot{}
		}
		b.cacheGen = 1
		return
	}
	b.cacheGen++
	for i := range b.cache {
		s := b.cache[i]
		if s.key == 0 || s.key>>44 != oldGen {
			continue
		}
		a, c := int32(s.key>>22)&(cacheMaxID-1), int32(s.key)&(cacheMaxID-1)
		oa, ob := int32(s.out>>32), int32(s.out&math.MaxUint32)
		if int(a) >= len(remap) || int(c) >= len(remap) || int(oa) >= len(remap) || int(ob) >= len(remap) {
			continue
		}
		na, nc, noa, nob := remap[a], remap[c], remap[oa], remap[ob]
		if na < 0 || nc < 0 || noa < 0 || nob < 0 {
			continue
		}
		key := b.cacheGen<<44 | uint64(na)<<22 | uint64(nc)
		b.cache[(key*0x9e3779b97f4a7c15)>>(64-cacheBits)] = cacheSlot{
			key: key, out: uint64(uint32(noa))<<32 | uint64(uint32(nob))}
	}
}

// materialize switches to the sequential fallback: the multiset is
// expanded into an explicit agent array (order is irrelevant — agents are
// anonymous and the scheduler is exchangeable) and stepped exactly as the
// reference engine does.
func (b *BatchSim[S]) materialize() {
	if b.forceNoSeq {
		panic("pop: BatchSim fell back to sequential mode with forceNoSeq set")
	}
	if cap(b.agents) < b.n {
		b.agents = make([]S, 0, b.n)
	}
	b.agents = b.agents[:0]
	for id, c := range b.counts {
		for ; c > 0; c-- {
			b.agents = append(b.agents, b.states[id])
		}
	}
	b.seqMode = true
	b.seqRecheck = int64(seqRecheckFactor) * int64(b.n)
	b.stats.Fallbacks++
}

// seqStep is one agent-array interaction, identical in distribution to
// Sim.Step. Outputs are interned so DistinctStates stays exact and
// re-entry checks can count live states.
func (b *BatchSim[S]) seqStep() {
	i := b.rng.IntN(b.n)
	j := b.rng.IntN(b.n - 1)
	if j >= i {
		j++
	}
	sa, sb := b.rule(b.agents[i], b.agents[j], b.ruleRng)
	b.intern(sa)
	b.intern(sb)
	b.agents[i], b.agents[j] = sa, sb
	b.interacts++
	b.stats.SeqInteractions++
}

// seqRun executes up to k sequential-mode interactions, returning how many
// it ran; it periodically recounts live states and re-enters batch mode
// when the configuration re-concentrates.
func (b *BatchSim[S]) seqRun(k int64) int64 {
	run := min(k, b.seqRecheck)
	for i := int64(0); i < run; i++ {
		b.seqStep()
	}
	b.seqRecheck -= run
	if b.seqRecheck <= 0 {
		b.recountFromAgents()
		if b.live <= b.qMax/2 {
			b.seqMode = false
			b.compact()
			b.stats.Reentries++
		} else {
			b.seqRecheck = int64(seqRecheckFactor) * int64(b.n)
		}
	}
	return run
}

// recountFromAgents rebuilds the counts vector from the agent array.
func (b *BatchSim[S]) recountFromAgents() {
	for i := range b.counts {
		b.counts[i] = 0
	}
	b.total = 0
	b.live = 0
	for _, a := range b.agents {
		b.addCount(b.intern(a), 1)
	}
}
