package pop

import (
	"fmt"
	"math/rand/v2"
	"strings"
)

// Engine is the interface shared by the simulation backends. Two
// implementations exist:
//
//   - [Sim], the sequential reference engine: an explicit agent array,
//     one uniformly random ordered pair per Step. O(1) work per
//     interaction, but every interaction touches two random positions of
//     an n-sized array, so large populations are memory-bound.
//
//   - [BatchSim], the batched multiset engine: the configuration is kept
//     as state counts and interactions are simulated in collision-free
//     batches of ~√n at a time (Berenbrink et al., "Simulating Population
//     Protocols in Sub-Constant Time per Interaction", arXiv:2005.03584).
//     Its cost per interaction depends on the number of currently-live
//     distinct states rather than on n, which is exactly the regime of
//     this paper's O(log⁴ n) state bound.
//
// Both engines simulate the same process — the uniformly random pairwise
// scheduler of Section 2 — and the configuration trajectory of BatchSim is
// distributed identically to Sim's (it is not an approximation; see the
// package comment of batch.go). They do not produce bit-identical runs for
// a given seed, because they consume the random stream differently; the
// cross-backend equivalence tests compare them statistically.
//
// Predicates passed to RunUntil, and the per-state predicates given to
// Count/All/Any, must depend only on the multiset of states (not on agent
// identities), which is what the anonymous population model guarantees
// anyway.
type Engine[S comparable] interface {
	// N returns the population size.
	N() int
	// Interactions returns the number of interactions executed so far.
	Interactions() int64
	// Time returns the parallel time elapsed: interactions / n.
	Time() float64
	// Step executes one interaction.
	Step()
	// Run executes k interactions.
	Run(k int64)
	// RunTime executes t units of parallel time (t·n interactions).
	RunTime(t float64)
	// RunUntil repeatedly executes checkEvery units of parallel time and
	// then evaluates pred, stopping as soon as pred holds or maxTime units
	// of parallel time have elapsed since the call began.
	RunUntil(pred func(Engine[S]) bool, checkEvery, maxTime float64) (ok bool, at float64)
	// Counts returns the configuration vector: the multiset of states
	// present, as a map from state to count.
	Counts() map[S]int
	// Count returns the number of agents satisfying pred.
	Count(pred func(S) bool) int
	// All reports whether every agent satisfies pred. pred is evaluated
	// sequentially (at most once per distinct state on the batched
	// engine) with early exit, so stateful closures — e.g. capturing the
	// first state seen to check population-wide agreement — are valid on
	// every backend and cost no allocation.
	All(pred func(S) bool) bool
	// Any reports whether at least one agent satisfies pred.
	Any(pred func(S) bool) bool
	// DistinctStates returns the number of distinct states observed since
	// the initial configuration (the paper's space measure). The
	// sequential engine requires WithStateTracking and returns 0
	// otherwise; the batched engine tracks states as a side effect of its
	// representation and always reports them.
	DistinctStates() int
}

var (
	_ Engine[int] = (*Sim[int])(nil)
	_ Engine[int] = (*BatchSim[int])(nil)
)

// Backend selects a simulation engine implementation.
type Backend int

const (
	// Auto picks Batched for large populations and Sequential otherwise
	// (or whenever a requested feature, such as per-agent interaction
	// counts, needs the agent array).
	Auto Backend = iota
	// Sequential is the agent-array reference engine (Sim).
	Sequential
	// Batched is the multiset engine (BatchSim).
	Batched
)

// autoBatchMinN is the population size above which Auto prefers the
// batched engine; below it, batches are too short to amortize their
// per-batch setup and the agent array is already cache-resident.
const autoBatchMinN = 4096

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case Auto:
		return "auto"
	case Sequential:
		return "seq"
	case Batched:
		return "batch"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// ParseBackend parses a -backend flag value.
func ParseBackend(s string) (Backend, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "auto", "":
		return Auto, nil
	case "seq", "sequential":
		return Sequential, nil
	case "batch", "batched":
		return Batched, nil
	default:
		return Auto, fmt.Errorf("pop: unknown backend %q (want auto, seq or batch)", s)
	}
}

// NewEngine constructs a simulation engine for a population of n agents
// whose i'th agent starts in initial(i, rng), using the backend selected
// by WithBackend (default Auto). Both backends consume the seed
// identically during initialization, so they start from the same initial
// configuration.
func NewEngine[S comparable](n int, initial func(i int, r *rand.Rand) S, rule Rule[S], opts ...Option) Engine[S] {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	switch o.backend {
	case Sequential:
		return New(n, initial, rule, opts...)
	case Batched:
		return NewBatch(n, initial, rule, opts...)
	default:
		if n >= autoBatchMinN && !o.trackInteractions {
			return NewBatch(n, initial, rule, opts...)
		}
		return New(n, initial, rule, opts...)
	}
}

// NewEngineFromConfig is NewEngine for an explicit initial configuration
// (copied), mirroring NewFromConfig.
func NewEngineFromConfig[S comparable](agents []S, rule Rule[S], opts ...Option) Engine[S] {
	cp := make([]S, len(agents))
	copy(cp, agents)
	return NewEngine(len(cp), func(i int, _ *rand.Rand) S { return cp[i] }, rule, opts...)
}

// runUntil is the single RunUntil implementation shared by both engines,
// so that the check-boundary semantics (predicate evaluated only at
// checkEvery multiples, maxTime measured from the call) are identical by
// construction.
func runUntil[S comparable](e Engine[S], pred func(Engine[S]) bool, checkEvery, maxTime float64) (ok bool, at float64) {
	if checkEvery <= 0 {
		panic("pop: RunUntil requires checkEvery > 0")
	}
	start := e.Time()
	if pred(e) {
		return true, start
	}
	for e.Time()-start < maxTime {
		e.RunTime(checkEvery)
		if pred(e) {
			return true, e.Time()
		}
	}
	return false, e.Time()
}
