package pop

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strconv"
	"strings"
)

// Engine is the interface shared by the simulation backends. Three
// implementations exist:
//
//   - [Sim], the sequential reference engine: an explicit agent array,
//     one uniformly random ordered pair per Step. O(1) work per
//     interaction, but every interaction touches two random positions of
//     an n-sized array, so large populations are memory-bound.
//
//   - [BatchSim], the batched multiset engine: the configuration is kept
//     as state counts and interactions are simulated in collision-free
//     batches of ~√n at a time (Berenbrink et al., "Simulating Population
//     Protocols in Sub-Constant Time per Interaction", arXiv:2005.03584).
//     Its cost per interaction depends on the number of currently-live
//     distinct states rather than on n, which is exactly the regime of
//     this paper's O(log⁴ n) state bound.
//
//   - [DenseSim], the count-vector engine: like BatchSim it stores only
//     state counts, but it never materializes batch participants either —
//     each batch is advanced through the matrix of ordered state-pair
//     interaction counts (a multivariate hypergeometric draw), so each
//     deterministic transition is applied once per state pair with its
//     multiplicity. Per-batch work scales with the live-state count q
//     instead of the ~√n batch length, which makes n = 10⁹ and beyond
//     feasible for the paper's dense (concentrated) configurations.
//
// All engines simulate the same process — the uniformly random pairwise
// scheduler of Section 2 — and the configuration trajectories of BatchSim
// and DenseSim are distributed identically to Sim's (they are not
// approximations; see the package comments of batch.go and dense.go). They
// do not produce bit-identical runs for a given seed, because they consume
// the random stream differently; the cross-backend equivalence tests
// compare them statistically.
//
// Predicates passed to RunUntil, and the per-state predicates given to
// Count/All/Any, must depend only on the multiset of states (not on agent
// identities), which is what the anonymous population model guarantees
// anyway.
//
// Populations are dynamic: AddAgents and RemoveAgents model join/leave
// churn between (never during) interactions, the regime of the dynamic
// size-counting literature (Kaaser & Lohmann, arXiv:2405.05137). Agents
// are anonymous, so a join is fully described by the joining state and a
// leave by uniform-random selection; all three backends implement both
// natively (the multiset engines as count edits, with removal drawn as a
// multivariate hypergeometric sample of the counts vector). Parallel
// time stays meaningful across churn because Time is accumulated per
// population-size segment rather than as a single interactions/n ratio.
type Engine[S comparable] interface {
	// N returns the current population size.
	N() int
	// Interactions returns the number of interactions executed so far.
	Interactions() int64
	// Time returns the parallel time elapsed. On a fixed population this
	// is interactions / n; under churn it is the per-segment sum
	// Σ_j I_j/n_j over the maximal runs of interactions I_j executed
	// while the population size was n_j, so one unit of parallel time
	// always means "n interactions at the current n".
	Time() float64
	// AddAgents adds k agents, all in state s, to the population (a join
	// event). New agents are indistinguishable from incumbents to the
	// scheduler from the next interaction on. k must be >= 0.
	AddAgents(s S, k int)
	// RemoveAgents removes k agents chosen uniformly at random without
	// replacement (a leave event). It panics if the removal would shrink
	// the population below the 2-agent minimum the pairwise scheduler
	// needs.
	RemoveAgents(k int)
	// Step executes one interaction.
	Step()
	// Run executes k interactions.
	Run(k int64)
	// RunTime executes t units of parallel time (t·n interactions).
	RunTime(t float64)
	// RunUntil repeatedly executes checkEvery units of parallel time and
	// then evaluates pred, stopping as soon as pred holds or maxTime units
	// of parallel time have elapsed since the call began.
	RunUntil(pred func(Engine[S]) bool, checkEvery, maxTime float64) (ok bool, at float64)
	// Counts returns the configuration vector: the multiset of states
	// present, as a map from state to count.
	Counts() map[S]int
	// Count returns the number of agents satisfying pred.
	Count(pred func(S) bool) int
	// All reports whether every agent satisfies pred. pred is evaluated
	// sequentially (at most once per distinct state on the batched
	// engine) with early exit, so stateful closures — e.g. capturing the
	// first state seen to check population-wide agreement — are valid on
	// every backend and cost no allocation.
	All(pred func(S) bool) bool
	// Any reports whether at least one agent satisfies pred.
	Any(pred func(S) bool) bool
	// DistinctStates returns the number of distinct states observed since
	// the initial configuration (the paper's space measure). The
	// sequential engine requires WithStateTracking and returns 0
	// otherwise; the batched engine tracks states as a side effect of its
	// representation and always reports them.
	DistinctStates() int
	// Snapshot captures the engine's full resumable state — configuration,
	// interaction count, per-segment time accounting, rng stream, and
	// mode (delegation/fallback) — as a versioned, serializable value.
	// Restore rebuilds an engine from it such that restore-then-run is
	// byte-identical to an uninterrupted run (see snapshot.go).
	Snapshot() (*Snapshot[S], error)
}

var (
	_ Engine[int] = (*Sim[int])(nil)
	_ Engine[int] = (*BatchSim[int])(nil)
	_ Engine[int] = (*DenseSim[int])(nil)
)

// Backend selects a simulation engine implementation.
type Backend int

const (
	// Auto picks Dense for very large populations, Batched for large ones
	// and Sequential otherwise (or whenever a requested feature, such as
	// per-agent interaction counts, needs the agent array).
	Auto Backend = iota
	// Sequential is the agent-array reference engine (Sim).
	Sequential
	// Batched is the multiset engine (BatchSim).
	Batched
	// Dense is the count-vector engine (DenseSim).
	Dense
)

// autoBatchMinN is the population size above which Auto prefers the
// batched engine; below it, batches are too short to amortize their
// per-batch setup and the agent array is already cache-resident.
const autoBatchMinN = 4096

// autoDenseMinN is the population size above which Auto prefers the
// count-vector engine. Its pair-matrix batches beat slot batching once
// batches are long relative to the live-state count; live states are
// unknowable at construction, so the cutoff is sized for the protocols in
// this repository (O(log⁴ n) states, ~10² live at steady state) and
// DenseSim's own runtime heuristic delegates back to BatchSim whenever a
// configuration disperses.
const autoDenseMinN = 1 << 23

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case Auto:
		return "auto"
	case Sequential:
		return "seq"
	case Batched:
		return "batch"
	case Dense:
		return "dense"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// ParseBackend parses a -backend flag value.
func ParseBackend(s string) (Backend, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "auto", "":
		return Auto, nil
	case "seq", "sequential":
		return Sequential, nil
	case "batch", "batched":
		return Batched, nil
	case "dense":
		return Dense, nil
	default:
		return Auto, fmt.Errorf("pop: unknown backend %q (want auto, seq, batch or dense)", s)
	}
}

// NewEngine constructs a simulation engine for a population of n agents
// whose i'th agent starts in initial(i, rng), using the backend selected
// by WithBackend (default Auto). Both backends consume the seed
// identically during initialization, so they start from the same initial
// configuration.
func NewEngine[S comparable](n int, initial func(i int, r *rand.Rand) S, rule Rule[S], opts ...Option) Engine[S] {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	switch resolveBackend(o, int64(n)) {
	case Batched:
		return NewBatch(n, initial, rule, opts...)
	case Dense:
		return NewDense(n, initial, rule, opts...)
	default:
		return New(n, initial, rule, opts...)
	}
}

// resolveBackend applies the Auto heuristic: sequential while the agent
// array is cache-resident (or per-agent instrumentation is requested),
// batched for large populations, dense for very large ones.
func resolveBackend(o options, total int64) Backend {
	if o.backend != Auto {
		return o.backend
	}
	switch {
	case o.trackInteractions || total < autoBatchMinN:
		return Sequential
	case total < autoDenseMinN:
		return Batched
	default:
		return Dense
	}
}

// NewEngineFromConfig is NewEngine for an explicit initial configuration
// (copied), mirroring NewFromConfig.
func NewEngineFromConfig[S comparable](agents []S, rule Rule[S], opts ...Option) Engine[S] {
	cp := make([]S, len(agents))
	copy(cp, agents)
	return NewEngine(len(cp), func(i int, _ *rand.Rand) S { return cp[i] }, rule, opts...)
}

// NewEngineFromCounts is NewEngine for an initial configuration given as a
// state-count multiset (states[i] held by counts[i] agents; zero-count
// entries are skipped, duplicate states accumulate). The multiset
// backends never materialize the population, so this is the only engine
// constructor usable at sizes where an n-element agent array would not
// fit in memory; the sequential backend expands the multiset into its
// agent array and remains bounded by it.
func NewEngineFromCounts[S comparable](states []S, counts []int64, rule Rule[S], opts ...Option) Engine[S] {
	total := validateCounts(states, counts)
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	switch resolveBackend(o, total) {
	case Batched:
		return NewBatchFromCounts(states, counts, rule, opts...)
	case Dense:
		return NewDenseFromCounts(states, counts, rule, opts...)
	default:
		// Expand through New's initializer, which visits agents in index
		// order, so the array is built exactly once (NewFromConfig would
		// defensively copy a pre-built slice, doubling peak memory).
		i, c := 0, int64(0)
		return New(int(total), func(int, *rand.Rand) S {
			for c == counts[i] {
				i++
				c = 0
			}
			c++
			return states[i]
		}, rule, opts...)
	}
}

// validatePopSize is the single population-size check shared by every
// engine constructor: the pairwise scheduler draws two distinct agents,
// so n = 0 and n = 1 are unconstructible (and RemoveAgents refuses to
// churn a population down to them — DenseSim.Step, for one, would panic
// drawing a partner at n = 1).
func validatePopSize(n int64) {
	if n < 2 {
		panic(fmt.Sprintf(
			"pop: population size %d < 2 (the pairwise scheduler needs two distinct agents)", n))
	}
	// Guard the int64 → int narrowing explicitly: the dense backend
	// advertises n up to 10¹⁰, which silently truncates where int is 32
	// bits.
	if n > math.MaxInt {
		panic(fmt.Sprintf(
			"pop: population size %d exceeds this platform's %d-bit int; multiset populations beyond 2³¹ need a 64-bit build",
			n, strconv.IntSize))
	}
}

// checkJoin validates an AddAgents call on a population of n agents.
func checkJoin(n, k int) {
	if k < 0 {
		panic(fmt.Sprintf("pop: AddAgents called with negative count %d", k))
	}
	if int64(n)+int64(k) > math.MaxInt {
		panic(fmt.Sprintf(
			"pop: AddAgents(%d) would grow the population of %d past this platform's %d-bit int",
			k, n, strconv.IntSize))
	}
}

// checkRemoval validates a RemoveAgents call on a population of n agents:
// removal must leave the 2-agent minimum in place.
func checkRemoval(n, k int) {
	if k < 0 {
		panic(fmt.Sprintf("pop: RemoveAgents called with negative count %d", k))
	}
	if n-k < 2 {
		panic(fmt.Sprintf(
			"pop: RemoveAgents(%d) would shrink the population of %d below the 2-agent minimum", k, n))
	}
}

// validateCounts checks a state-count multiset's shape (parallel slices,
// no negative counts, population of at least 2 that fits an int) and
// returns its total, shared by the multiset engine constructors.
func validateCounts[S comparable](states []S, counts []int64) int64 {
	if len(states) != len(counts) {
		panic(fmt.Sprintf("pop: %d states with %d counts", len(states), len(counts)))
	}
	var total int64
	for i, c := range counts {
		if c < 0 {
			panic(fmt.Sprintf("pop: negative count %d for state %v", c, states[i]))
		}
		total += c
	}
	validatePopSize(total)
	return total
}

// runUntil is the single RunUntil implementation shared by both engines,
// so that the check-boundary semantics (predicate evaluated only at
// checkEvery multiples, maxTime measured from the call) are identical by
// construction.
func runUntil[S comparable](e Engine[S], pred func(Engine[S]) bool, checkEvery, maxTime float64) (ok bool, at float64) {
	if checkEvery <= 0 {
		panic("pop: RunUntil requires checkEvery > 0")
	}
	start := e.Time()
	if pred(e) {
		return true, start
	}
	for e.Time()-start < maxTime {
		e.RunTime(checkEvery)
		if pred(e) {
			return true, e.Time()
		}
	}
	return false, e.Time()
}
