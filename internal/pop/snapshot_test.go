package pop

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"
)

// mixedRule interleaves randomized and deterministic transitions over a
// five-state space: tied pairs flip a coin (these cells can never be
// cached), others take a deterministic epidemic step (these exercise the
// transition cache — and thereby the cold-cache-neutrality argument in
// snapshot.go, since a restored engine replays them as misses).
func mixedRule(a, b int, r *rand.Rand) (int, int) {
	if a == b {
		if r.IntN(2) == 0 {
			return (a + 1) % 5, b
		}
		return a, (b + 1) % 5
	}
	m := max(a, b)
	return m, m
}

// snapOp is one step of a snapshot round-trip script, applied identically
// to the original and the restored engine.
type snapOp func(e Engine[int])

func opRun(k int64) snapOp       { return func(e Engine[int]) { e.Run(k) } }
func opJoin(st, k int) snapOp    { return func(e Engine[int]) { e.AddAgents(st, k) } }
func opLeave(k int) snapOp       { return func(e Engine[int]) { e.RemoveAgents(k) } }
func opRunTime(t float64) snapOp { return func(e Engine[int]) { e.RunTime(t) } }

// roundTrip runs pre on a fresh engine, snapshots it through a full
// marshal/unmarshal cycle, then runs post on both the original and the
// restored engine and asserts their final snapshots are byte-identical.
func roundTrip(t *testing.T, mk func() Engine[int], rule Rule[int], pre, post []snapOp) {
	t.Helper()
	e1 := mk()
	for _, op := range pre {
		op(e1)
	}
	snap, err := e1.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	blob, err := snap.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	parsed, err := UnmarshalSnapshot[int](blob)
	if err != nil {
		t.Fatalf("UnmarshalSnapshot: %v", err)
	}
	e2, err := Restore(parsed, rule)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if e1.N() != e2.N() || e1.Interactions() != e2.Interactions() || e1.Time() != e2.Time() {
		t.Fatalf("restored header mismatch: n %d/%d interactions %d/%d time %g/%g",
			e1.N(), e2.N(), e1.Interactions(), e2.Interactions(), e1.Time(), e2.Time())
	}
	for _, op := range post {
		op(e1)
		op(e2)
	}
	f1, err := e1.Snapshot()
	if err != nil {
		t.Fatalf("final Snapshot (uninterrupted): %v", err)
	}
	f2, err := e2.Snapshot()
	if err != nil {
		t.Fatalf("final Snapshot (restored): %v", err)
	}
	b1, _ := f1.Marshal()
	b2, _ := f2.Marshal()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("restored run diverged from uninterrupted run:\nuninterrupted: %.200s\nrestored:      %.200s", b1, b2)
	}
}

// TestSnapshotRoundTripBackends asserts byte-identical restore-then-run
// across every backend and both parallelism classes, on a rule mixing
// cached deterministic and uncacheable randomized transitions.
func TestSnapshotRoundTripBackends(t *testing.T) {
	const n = 3000
	init := func(i int, _ *rand.Rand) int { return i % 5 }
	pre := []snapOp{opRun(4 * n), opRunTime(0.7)}
	post := []snapOp{opRun(3 * n), opRunTime(1.3), opRun(517)}
	for _, par := range []int{0, 2} {
		for _, bk := range []Backend{Sequential, Batched, Dense} {
			bk := bk
			mk := func() Engine[int] {
				return NewEngine(n, init, mixedRule,
					WithSeed(41), WithBackend(bk), WithParallelism(par))
			}
			t.Run(bk.String()+"/par="+map[int]string{0: "0", 2: "2"}[par], func(t *testing.T) {
				roundTrip(t, mk, mixedRule, pre, post)
			})
		}
	}
}

// TestSnapshotRoundTripTracking covers the sequential engine's optional
// per-run instrumentation (seen-state set, per-agent interaction counts),
// which must survive the round trip exactly.
func TestSnapshotRoundTripTracking(t *testing.T) {
	const n = 800
	mk := func() Engine[int] {
		return New(n, func(i int, _ *rand.Rand) int { return i % 5 }, mixedRule,
			WithSeed(9), WithStateTracking(), WithInteractionCounts())
	}
	roundTrip(t, mk, mixedRule, []snapOp{opRun(2 * n)}, []snapOp{opRun(3 * n)})
}

// TestSnapshotRoundTripChurn schedules joins and leaves on both sides of
// the snapshot point, exercising the per-segment time accounting and the
// churn paths of every backend.
func TestSnapshotRoundTripChurn(t *testing.T) {
	const n = 2000
	init := func(i int, _ *rand.Rand) int { return i % 5 }
	pre := []snapOp{opRun(n), opJoin(3, 400), opRun(n), opLeave(700), opRun(n / 2)}
	post := []snapOp{opJoin(1, 250), opRun(2 * n), opLeave(300), opRunTime(0.9)}
	for _, bk := range []Backend{Sequential, Batched, Dense} {
		bk := bk
		mk := func() Engine[int] {
			return NewEngine(n, init, mixedRule, WithSeed(77), WithBackend(bk), WithParallelism(2))
		}
		t.Run(bk.String(), func(t *testing.T) {
			roundTrip(t, mk, mixedRule, pre, post)
		})
	}
}

// TestSnapshotMidFallback snapshots a BatchSim while it is materialized in
// its sequential fallback (explodeRule keeps minting states past the tiny
// threshold) and asserts the restored engine resumes the fallback
// byte-identically — including the pending re-entry check countdown.
func TestSnapshotMidFallback(t *testing.T) {
	const n = 600
	mk := func() Engine[int] {
		return NewBatch(n, func(i int, _ *rand.Rand) int { return 0 }, explodeRule,
			WithSeed(5), WithBatchThreshold(16))
	}
	e := mk()
	e.Run(20 * n)
	if !e.(*BatchSim[int]).seqMode {
		t.Fatal("test setup: engine did not fall back to sequential mode")
	}
	roundTrip(t, mk, explodeRule, []snapOp{opRun(20 * n)}, []snapOp{opRun(3 * n)})
}

// TestSnapshotMidDelegation snapshots a DenseSim while it is delegated to
// its internal BatchSim and asserts the nested snapshot restores the
// delegation byte-identically — including the inner engine's own rng and
// the re-entry countdown.
func TestSnapshotMidDelegation(t *testing.T) {
	const n = 600
	mk := func() Engine[int] {
		return NewDense(n, func(i int, _ *rand.Rand) int { return 0 }, explodeRule,
			WithSeed(5), WithDenseThreshold(8))
	}
	e := mk()
	e.Run(2 * n)
	if !e.(*DenseSim[int]).Delegated() {
		t.Fatal("test setup: engine did not delegate to the batch backend")
	}
	roundTrip(t, mk, explodeRule, []snapOp{opRun(2 * n)}, []snapOp{opRun(3 * n)})
	roundTrip(t, mk, explodeRule, []snapOp{opRun(2 * n)}, []snapOp{opRun(40 * n)})
}

// TestSnapshotFile round-trips a snapshot through the file helpers.
func TestSnapshotFile(t *testing.T) {
	s := NewBatch(500, func(i int, _ *rand.Rand) int { return i % 3 }, amRule, WithSeed(3))
	s.Run(1000)
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/snap.json"
	if err := WriteSnapshotFile(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile[int](path)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := snap.Marshal()
	b2, _ := got.Marshal()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("file round trip changed the snapshot:\nwrote: %s\nread:  %s", b1, b2)
	}
}

// TestSnapshotValidation spot-checks the malformed-snapshot rejections.
func TestSnapshotValidation(t *testing.T) {
	s := NewBatch(500, func(i int, _ *rand.Rand) int { return i % 3 }, amRule, WithSeed(3))
	s.Run(1000)
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Snapshot[int])
		want   string
	}{
		{"version", func(s *Snapshot[int]) { s.Version = 99 }, "version"},
		{"backend", func(s *Snapshot[int]) { s.Backend = "quantum" }, "unknown"},
		{"counts-total", func(s *Snapshot[int]) { s.Counts[0]++ }, "total"},
		{"no-rng", func(s *Snapshot[int]) { s.RNG = nil }, "rng"},
		{"dup-state", func(s *Snapshot[int]) { s.States[1] = s.States[0] }, "repeats"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cp := *snap
			cp.States = append([]int(nil), snap.States...)
			cp.Counts = append([]int64(nil), snap.Counts...)
			tc.mutate(&cp)
			if _, err := Restore(&cp, amRule); err == nil {
				t.Fatal("Restore accepted a corrupted snapshot")
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
