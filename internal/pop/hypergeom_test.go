package pop

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/popsim/popsize/internal/stats"
)

// TestHypergeometricEdges pins the degenerate parameter combinations.
func TestHypergeometricEdges(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	cases := []struct {
		n, k, m, want int64
	}{
		{10, 0, 5, 0},
		{10, 5, 0, 0},
		{10, 10, 7, 7},
		{10, 4, 10, 4},
	}
	for _, c := range cases {
		if got := hypergeometric(r, c.n, c.k, c.m); got != c.want {
			t.Errorf("hypergeometric(%d,%d,%d) = %d, want %d", c.n, c.k, c.m, got, c.want)
		}
	}
}

// TestHypergeometricSupport verifies samples never leave the support, for
// parameters that exercise the small-K, from-zero and mode-walk paths and
// both symmetry reductions.
func TestHypergeometricSupport(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	cases := []struct{ n, k, m int64 }{
		{50, 3, 20},      // small-K loop
		{1000, 40, 100},  // from-zero walk
		{1000, 400, 500}, // mode walk
		{100, 90, 95},    // forced support lower bound > 0
		{100, 60, 70},    // both symmetry reductions
	}
	for _, c := range cases {
		lo := max(int64(0), c.m-(c.n-c.k))
		hi := min(c.m, c.k)
		for i := 0; i < 2000; i++ {
			x := hypergeometric(r, c.n, c.k, c.m)
			if x < lo || x > hi {
				t.Fatalf("hypergeometric(%d,%d,%d) = %d outside [%d,%d]",
					c.n, c.k, c.m, x, lo, hi)
			}
		}
	}
}

// TestHypergeometricMoments compares empirical mean and variance against
// the exact values E = mK/N and Var = mK/N·(1−K/N)·(N−m)/(N−1), across
// all sampler paths. With 200k samples the empirical mean is within
// ~4·σ/√k of exact unless the sampler is broken.
func TestHypergeometricMoments(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	cases := []struct{ n, k, m int64 }{
		{100, 10, 30},        // small-K
		{10000, 300, 400},    // from-zero walk (mean 12)
		{10000, 5000, 400},   // mode walk (mean 200)
		{100000, 60000, 800}, // symmetry + mode walk
		{64, 20, 32},         // tiny population
	}
	const samples = 200000
	for _, c := range cases {
		p := float64(c.k) / float64(c.n)
		mean := float64(c.m) * p
		variance := mean * (1 - p) * float64(c.n-c.m) / float64(c.n-1)
		var sum, sq float64
		for i := 0; i < samples; i++ {
			x := float64(hypergeometric(r, c.n, c.k, c.m))
			sum += x
			sq += x * x
		}
		gotMean := sum / samples
		gotVar := sq/samples - gotMean*gotMean
		seMean := 4 * math.Sqrt(variance/samples)
		if math.Abs(gotMean-mean) > seMean+1e-9 {
			t.Errorf("hypergeometric(%d,%d,%d): mean %.4f, want %.4f ± %.4f",
				c.n, c.k, c.m, gotMean, mean, seMean)
		}
		if math.Abs(gotVar-variance) > 0.1*variance+1e-9 {
			t.Errorf("hypergeometric(%d,%d,%d): var %.4f, want %.4f ± 10%%",
				c.n, c.k, c.m, gotVar, variance)
		}
	}
}

// TestHypergeometricExactPMF checks the sampled distribution cell by cell
// against the exact pmf on a small case where every path (from-zero and
// mode-walk, by forcing via parameters) can be cross-validated.
func TestHypergeometricExactPMF(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	const N, K, m = 40, 12, 15
	const samples = 400000
	counts := make([]int, m+1)
	for i := 0; i < samples; i++ {
		counts[hypergeometric(r, N, K, m)]++
	}
	choose := func(n, k int64) float64 {
		return math.Exp(lnChoose(n, k))
	}
	for x := int64(0); x <= 12; x++ {
		p := choose(K, x) * choose(N-K, m-x) / choose(N, m)
		got := float64(counts[x]) / samples
		se := 5 * math.Sqrt(p*(1-p)/samples)
		if math.Abs(got-p) > se+1e-6 {
			t.Errorf("pmf(%d): got %.5f, want %.5f ± %.5f", x, got, p, se)
		}
	}
}

// TestLnGammaStirling checks the fast Stirling branch against math.Lgamma.
func TestLnGammaStirling(t *testing.T) {
	for _, x := range []float64{64, 100, 1234.5, 1e6, 1e9} {
		want, _ := math.Lgamma(x)
		got := lnGamma(x)
		if math.Abs(got-want) > 1e-9*math.Abs(want)+1e-9 {
			t.Errorf("lnGamma(%g) = %.12g, want %.12g", x, got, want)
		}
	}
}

// TestMultivariateHypergeometricInvariants: the chained draw always
// allocates exactly m items, never exceeds a class's count, and skips
// empty classes, across parameter shapes covering forced draws and both
// univariate sampler paths.
func TestMultivariateHypergeometricInvariants(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	cases := []struct {
		counts []int64
		m      int64
	}{
		{[]int64{5, 0, 3, 2}, 4},
		{[]int64{5, 0, 3, 2}, 10}, // m == total: forced everywhere
		{[]int64{1000000, 3, 1, 500000}, 4096},
		{[]int64{7}, 7},
		{[]int64{2, 2, 2, 2, 2, 2}, 11},
	}
	for _, c := range cases {
		var total int64
		for _, v := range c.counts {
			total += v
		}
		dst := make([]int64, len(c.counts))
		for trial := 0; trial < 200; trial++ {
			multivariateHypergeometric(r, c.counts, total, c.m, dst)
			var sum int64
			for i, k := range dst {
				if k < 0 || k > c.counts[i] {
					t.Fatalf("counts=%v m=%d: class %d drew %d of %d", c.counts, c.m, i, k, c.counts[i])
				}
				sum += k
			}
			if sum != c.m {
				t.Fatalf("counts=%v m=%d: allocated %d", c.counts, c.m, sum)
			}
		}
	}
}

// TestMultivariateHypergeometricMoments checks the marginal means against
// E[X_i] = m·c_i/N — the chain must not bias classes by their position.
func TestMultivariateHypergeometricMoments(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	counts := []int64{60, 25, 10, 5}
	const total, m, trials = int64(100), int64(20), 20000
	dst := make([]int64, len(counts))
	sums := make([]float64, len(counts))
	for trial := 0; trial < trials; trial++ {
		multivariateHypergeometric(r, counts, total, m, dst)
		for i, k := range dst {
			sums[i] += float64(k)
		}
	}
	for i, c := range counts {
		want := float64(m) * float64(c) / float64(total)
		// Hypergeometric variance bound /trials gives SE ≈ 0.01–0.03 here;
		// 5 SE with slack.
		se := math.Sqrt(want * float64(total-c) / float64(total) / trials)
		if err := stats.MeanNear(sums[i]/trials, want, 5*se, 0.05); err != nil {
			t.Errorf("class %d: %v", i, err)
		}
	}
}

// TestMultivariateHypergeometricPanics pins the parameter validation.
func TestMultivariateHypergeometricPanics(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 10))
	for name, fn := range map[string]func(){
		"length mismatch": func() {
			multivariateHypergeometric(r, []int64{1, 2}, 3, 1, make([]int64, 1))
		},
		"m > total": func() {
			multivariateHypergeometric(r, []int64{1, 2}, 3, 4, make([]int64, 2))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
