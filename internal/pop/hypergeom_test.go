package pop

import (
	"math"
	"math/rand/v2"
	"testing"
)

// TestHypergeometricEdges pins the degenerate parameter combinations.
func TestHypergeometricEdges(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	cases := []struct {
		n, k, m, want int64
	}{
		{10, 0, 5, 0},
		{10, 5, 0, 0},
		{10, 10, 7, 7},
		{10, 4, 10, 4},
	}
	for _, c := range cases {
		if got := hypergeometric(r, c.n, c.k, c.m); got != c.want {
			t.Errorf("hypergeometric(%d,%d,%d) = %d, want %d", c.n, c.k, c.m, got, c.want)
		}
	}
}

// TestHypergeometricSupport verifies samples never leave the support, for
// parameters that exercise the small-K, from-zero and mode-walk paths and
// both symmetry reductions.
func TestHypergeometricSupport(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	cases := []struct{ n, k, m int64 }{
		{50, 3, 20},      // small-K loop
		{1000, 40, 100},  // from-zero walk
		{1000, 400, 500}, // mode walk
		{100, 90, 95},    // forced support lower bound > 0
		{100, 60, 70},    // both symmetry reductions
	}
	for _, c := range cases {
		lo := max(int64(0), c.m-(c.n-c.k))
		hi := min(c.m, c.k)
		for i := 0; i < 2000; i++ {
			x := hypergeometric(r, c.n, c.k, c.m)
			if x < lo || x > hi {
				t.Fatalf("hypergeometric(%d,%d,%d) = %d outside [%d,%d]",
					c.n, c.k, c.m, x, lo, hi)
			}
		}
	}
}

// TestHypergeometricMoments compares empirical mean and variance against
// the exact values E = mK/N and Var = mK/N·(1−K/N)·(N−m)/(N−1), across
// all sampler paths. With 200k samples the empirical mean is within
// ~4·σ/√k of exact unless the sampler is broken.
func TestHypergeometricMoments(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	cases := []struct{ n, k, m int64 }{
		{100, 10, 30},        // small-K
		{10000, 300, 400},    // from-zero walk (mean 12)
		{10000, 5000, 400},   // mode walk (mean 200)
		{100000, 60000, 800}, // symmetry + mode walk
		{64, 20, 32},         // tiny population
	}
	const samples = 200000
	for _, c := range cases {
		p := float64(c.k) / float64(c.n)
		mean := float64(c.m) * p
		variance := mean * (1 - p) * float64(c.n-c.m) / float64(c.n-1)
		var sum, sq float64
		for i := 0; i < samples; i++ {
			x := float64(hypergeometric(r, c.n, c.k, c.m))
			sum += x
			sq += x * x
		}
		gotMean := sum / samples
		gotVar := sq/samples - gotMean*gotMean
		seMean := 4 * math.Sqrt(variance/samples)
		if math.Abs(gotMean-mean) > seMean+1e-9 {
			t.Errorf("hypergeometric(%d,%d,%d): mean %.4f, want %.4f ± %.4f",
				c.n, c.k, c.m, gotMean, mean, seMean)
		}
		if math.Abs(gotVar-variance) > 0.1*variance+1e-9 {
			t.Errorf("hypergeometric(%d,%d,%d): var %.4f, want %.4f ± 10%%",
				c.n, c.k, c.m, gotVar, variance)
		}
	}
}

// TestHypergeometricExactPMF checks the sampled distribution cell by cell
// against the exact pmf on a small case where every path (from-zero and
// mode-walk, by forcing via parameters) can be cross-validated.
func TestHypergeometricExactPMF(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	const N, K, m = 40, 12, 15
	const samples = 400000
	counts := make([]int, m+1)
	for i := 0; i < samples; i++ {
		counts[hypergeometric(r, N, K, m)]++
	}
	choose := func(n, k int64) float64 {
		return math.Exp(lnChoose(n, k))
	}
	for x := int64(0); x <= 12; x++ {
		p := choose(K, x) * choose(N-K, m-x) / choose(N, m)
		got := float64(counts[x]) / samples
		se := 5 * math.Sqrt(p*(1-p)/samples)
		if math.Abs(got-p) > se+1e-6 {
			t.Errorf("pmf(%d): got %.5f, want %.5f ± %.5f", x, got, p, se)
		}
	}
}

// TestLnGammaStirling checks the fast Stirling branch against math.Lgamma.
func TestLnGammaStirling(t *testing.T) {
	for _, x := range []float64{64, 100, 1234.5, 1e6, 1e9} {
		want, _ := math.Lgamma(x)
		got := lnGamma(x)
		if math.Abs(got-want) > 1e-9*math.Abs(want)+1e-9 {
			t.Errorf("lnGamma(%g) = %.12g, want %.12g", x, got, want)
		}
	}
}
