package pop

// TrialSeed derives the engine seed for one trial of one experiment from a
// single base seed, mixing the experiment label and the trial index through
// a SplitMix64-style finalizer. It replaces the earlier per-site
// `base + trial·prime` scheme, under which two experiments with primes p
// and q collided whenever p·i = q·j (e.g. trial q of one experiment and
// trial p of another ran the identical random stream), silently correlating
// rows that the statistics assume independent.
//
// The derivation is a fixed pure function: the same (base, experiment,
// trial) triple always yields the same seed, so experiments stay
// reproducible from the base seed alone, while distinct labels or trial
// indices yield uncorrelated seeds (each input byte passes through the full
// 64-bit avalanche of the finalizer).
func TrialSeed(base uint64, experiment string, trial int) uint64 {
	h := splitmix64(base ^ 0x517cc1b727220a95)
	for i := 0; i < len(experiment); i++ {
		h = splitmix64(h ^ uint64(experiment[i]))
	}
	return splitmix64(h ^ uint64(trial))
}

// splitmix64 is the finalizer of Steele et al.'s SplitMix64 generator: a
// bijection on uint64 whose output bits each depend on every input bit
// (full avalanche), which is what makes TrialSeed collision-resistant
// across structured inputs like small trial indices.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
