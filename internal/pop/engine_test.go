package pop

import (
	"math/rand/v2"
	"reflect"
	"sync/atomic"
	"testing"
)

func nullInit(int, *rand.Rand) int { return 0 }

// TestNewEngineBackendSelection pins which concrete engine each Backend
// value produces, including Auto's population-size and instrumentation
// rules.
func TestNewEngineBackendSelection(t *testing.T) {
	isBatch := func(e Engine[int]) bool {
		_, ok := e.(*BatchSim[int])
		return ok
	}
	cases := []struct {
		name  string
		n     int
		opts  []Option
		batch bool
	}{
		{"sequential explicit", 100000, []Option{WithBackend(Sequential)}, false},
		{"batched explicit small n", 100, []Option{WithBackend(Batched)}, true},
		{"auto small n", 100, nil, false},
		{"auto large n", 8192, nil, true},
		{"auto large n with interaction counts", 8192, []Option{WithInteractionCounts()}, false},
	}
	for _, c := range cases {
		e := NewEngine(c.n, nullInit, amRule, c.opts...)
		if got := isBatch(e); got != c.batch {
			t.Errorf("%s: batched = %v, want %v", c.name, got, c.batch)
		}
		if e.N() != c.n {
			t.Errorf("%s: N = %d, want %d", c.name, e.N(), c.n)
		}
	}
}

// TestBackendsShareInitialConfiguration: for a fixed seed, both engines
// must start from the identical initial configuration (they consume the
// seed identically during initialization).
func TestBackendsShareInitialConfiguration(t *testing.T) {
	initial := func(i int, r *rand.Rand) int { return int(r.Int64N(40)) }
	s := NewEngine(5000, initial, amRule, WithSeed(17), WithBackend(Sequential))
	b := NewEngine(5000, initial, amRule, WithSeed(17), WithBackend(Batched))
	if !reflect.DeepEqual(s.Counts(), b.Counts()) {
		t.Error("initial configurations differ between backends")
	}
}

// TestParseBackend covers the flag syntax.
func TestParseBackend(t *testing.T) {
	for in, want := range map[string]Backend{
		"auto": Auto, "": Auto, "seq": Sequential, "Sequential": Sequential,
		"batch": Batched, "BATCHED": Batched,
	} {
		got, err := ParseBackend(in)
		if err != nil || got != want {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseBackend("gpu"); err == nil {
		t.Error("ParseBackend accepted an unknown backend")
	}
}

// TestNewEngineFromConfigCopies: the input slice must not be aliased, on
// either backend.
func TestNewEngineFromConfigCopies(t *testing.T) {
	for _, be := range []Backend{Sequential, Batched} {
		src := []int{5, 5, 5, 5}
		e := NewEngineFromConfig(src, amRule, WithBackend(be))
		src[0] = 999
		if e.Count(func(v int) bool { return v == 999 }) != 0 {
			t.Errorf("%v: engine aliased the caller's slice", be)
		}
	}
}

// TestSequentialCountsTrajectoryDeterminism: the determinism regression
// for the reference engine — same seed, same Counts() trajectory.
func TestSequentialCountsTrajectoryDeterminism(t *testing.T) {
	mk := func() *Sim[int] {
		return New(3000, func(i int, r *rand.Rand) int { return int(r.Int64N(5)) - 2 }, amRule, WithSeed(23))
	}
	a, b := mk(), mk()
	for i := 0; i < 8; i++ {
		a.RunTime(1.5)
		b.RunTime(1.5)
		if !reflect.DeepEqual(a.Counts(), b.Counts()) {
			t.Fatalf("checkpoint %d: trajectories diverged", i)
		}
	}
	if !reflect.DeepEqual(a.AgentStates(), b.AgentStates()) {
		t.Error("final agent arrays differ")
	}
}

// TestRunTrials covers ordering, the worker cap, and genericity.
func TestRunTrials(t *testing.T) {
	var inFlight, peak atomic.Int32
	out := RunTrials(64, 4, func(tr int) int {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		defer inFlight.Add(-1)
		return tr * tr
	})
	if len(out) != 64 {
		t.Fatalf("got %d results", len(out))
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	if p := peak.Load(); p > 4 {
		t.Errorf("concurrency peaked at %d, cap was 4", p)
	}
}
