package pop

import (
	"fmt"
	"math"
	"math/rand/v2"
	"reflect"
	"testing"
)

// TestDenseConservationEveryBatch asserts exact agent-count conservation
// after every single pair-matrix batch, via the test hook that fires at
// batch commit.
func TestDenseConservationEveryBatch(t *testing.T) {
	const n = 2000
	d := NewDense(n, func(i int, _ *rand.Rand) int { return i % 7 }, amRule, WithSeed(11))
	batches := 0
	d.batchEvents = func(ell int, collided bool) {
		batches++
		if got := countsSum[int](d); got != n {
			t.Fatalf("after batch %d (ell=%d, collided=%v): %d agents, want %d",
				batches, ell, collided, got, n)
		}
		if d.total != int64(n) {
			t.Fatalf("running total %d, want %d", d.total, n)
		}
	}
	d.RunTime(30)
	if batches == 0 {
		t.Fatal("no batches executed")
	}
}

// TestDenseRunExactInteractionCount verifies Run(k) executes exactly k
// interactions for awkward k, including collision steps at batch ends.
func TestDenseRunExactInteractionCount(t *testing.T) {
	d := NewDense(997, func(i int, _ *rand.Rand) int { return i % 3 }, amRule, WithSeed(5))
	total := int64(0)
	for _, k := range []int64{1, 2, 3, 17, 997, 12345, 7} {
		d.Run(k)
		total += k
		if d.Interactions() != total {
			t.Fatalf("after Run(%d): %d interactions, want %d", k, d.Interactions(), total)
		}
	}
}

// TestDenseRunLengths sanity-checks the collision-free run-length sampler
// on the dense path: the mean batch length is Θ(√n), as for BatchSim.
func TestDenseRunLengths(t *testing.T) {
	const n = 10000
	d := NewDense(n, func(int, *rand.Rand) int { return 0 }, amRule, WithSeed(2))
	var sum, count float64
	d.batchEvents = func(ell int, collided bool) {
		if collided {
			sum += float64(ell)
			count++
		}
	}
	d.RunTime(100)
	if count < 100 {
		t.Fatalf("only %v collision-terminated batches", count)
	}
	mean := sum / count
	root := math.Sqrt(n)
	if mean < 0.3*root || mean > 3*root {
		t.Errorf("mean collision-free run %.1f, want Θ(√n) ≈ %.1f", mean, root)
	}
}

// TestDenseMultiplicityAggregation: on a deterministic protocol the pair
// matrix applies transitions with multiplicity, so rule calls (and even
// cache hits, which are per cell) must be far fewer than interactions.
func TestDenseMultiplicityAggregation(t *testing.T) {
	const n = 100000
	d := NewDense(n, func(i int, _ *rand.Rand) int { return i % 3 }, amRule, WithSeed(14))
	d.RunTime(10)
	st := d.Stats()
	if st.Batches == 0 || st.BatchedInteractions == 0 {
		t.Fatalf("no dense batches ran: %+v", st)
	}
	work := st.RuleCalls + st.PairCells
	if work*10 > st.BatchedInteractions {
		t.Errorf("pair-matrix aggregation ineffective: %d rule calls + %d cells for %d interactions",
			st.RuleCalls, st.PairCells, st.BatchedInteractions)
	}
}

// TestDenseCachePolicy: transitions that consume randomness must never be
// served from the deterministic-transition cache (nor applied with
// multiplicity); deterministic ones must.
func TestDenseCachePolicy(t *testing.T) {
	rnd := NewDense(3000, func(i int, _ *rand.Rand) int { return i % 3 }, coinRule, WithSeed(4))
	rnd.RunTime(10)
	st := rnd.Stats()
	if st.CacheHits != 0 {
		t.Errorf("randomized rule served %d cached transitions", st.CacheHits)
	}
	if st.RuleCalls != st.BatchedInteractions {
		t.Errorf("randomized rule: %d rule calls for %d interactions, want one per interaction",
			st.RuleCalls, st.BatchedInteractions)
	}
	det := NewDense(3000, func(i int, _ *rand.Rand) int { return i % 3 }, amRule, WithSeed(4))
	det.RunTime(10)
	st = det.Stats()
	if st.CacheHits == 0 {
		t.Error("deterministic rule never hit the cache")
	}
	if st.CacheHits < st.RuleCalls {
		t.Errorf("expected cache hits (%d) to dominate rule calls (%d)", st.CacheHits, st.RuleCalls)
	}
}

// TestDenseDelegationTriggers: a state-exploding protocol must trip the
// live-state threshold and delegate to the internal BatchSim.
func TestDenseDelegationTriggers(t *testing.T) {
	d := NewDense(500, func(int, *rand.Rand) int { return 0 }, explodeRule,
		WithSeed(3), WithDenseThreshold(32))
	d.RunTime(40)
	st := d.Stats()
	if st.Delegations == 0 {
		t.Fatalf("no delegation despite exploding states (live=%d)", d.LiveStates())
	}
	if st.DelegatedInteractions == 0 {
		t.Error("delegated mode executed no interactions")
	}
	if !d.Delegated() {
		t.Error("expected the engine to still be delegated under state explosion")
	}
	if got := countsSum[int](d); got != 500 {
		t.Errorf("conservation after delegation: %d agents, want 500", got)
	}
}

// TestDenseDelegationReentry: a population seeded with n distinct values
// exceeds the threshold immediately, but the max-epidemic collapses it to
// one live state, after which the engine must return to dense mode.
func TestDenseDelegationReentry(t *testing.T) {
	const n = 500
	d := NewDense(n, func(i int, _ *rand.Rand) int { return i }, maxRule,
		WithSeed(7), WithDenseThreshold(64))
	d.RunTime(80)
	st := d.Stats()
	if st.Delegations == 0 {
		t.Fatal("expected an immediate delegation with n distinct initial states")
	}
	if st.Reentries == 0 {
		t.Fatalf("no re-entry after collapse (live=%d)", d.LiveStates())
	}
	if d.Delegated() {
		t.Error("still delegated after the configuration collapsed")
	}
	if !d.All(func(v int) bool { return v == n-1 }) {
		t.Error("epidemic did not converge to the maximum")
	}
	if st.Batches == 0 {
		t.Error("no dense batches ran after re-entry")
	}
	if d.Interactions() != int64(80*n) {
		t.Errorf("interaction count %d across delegation, want %d", d.Interactions(), 80*n)
	}
}

// TestDenseDeterminism: the same seed must reproduce the identical
// configuration trajectory, checkpoint by checkpoint, including across
// delegation and re-entry.
func TestDenseDeterminism(t *testing.T) {
	mk := func() *DenseSim[int] {
		return NewDense(5000, func(i int, _ *rand.Rand) int { return i % 5 }, amRule, WithSeed(9))
	}
	d1, d2 := mk(), mk()
	for i := 0; i < 10; i++ {
		d1.RunTime(2)
		d2.RunTime(2)
		if d1.Interactions() != d2.Interactions() {
			t.Fatalf("interaction counts diverged: %d vs %d", d1.Interactions(), d2.Interactions())
		}
		if !reflect.DeepEqual(d1.Counts(), d2.Counts()) {
			t.Fatalf("checkpoint %d: configurations diverged", i)
		}
	}
	// Through delegation: distinct initial states force a delegated phase.
	mkDel := func() *DenseSim[int] {
		return NewDense(600, func(i int, _ *rand.Rand) int { return i }, maxRule,
			WithSeed(13), WithDenseThreshold(48))
	}
	e1, e2 := mkDel(), mkDel()
	for i := 0; i < 10; i++ {
		e1.RunTime(8)
		e2.RunTime(8)
		if !reflect.DeepEqual(e1.Counts(), e2.Counts()) {
			t.Fatalf("delegation checkpoint %d: configurations diverged", i)
		}
	}
	if e1.Stats().Reentries == 0 {
		t.Error("determinism run never exercised re-entry")
	}
}

// TestDenseMatchesSequentialDistribution is the direct distributional
// check of the pair-matrix machinery at n=8, where collision steps
// dominate: the full end-configuration distribution of approximate
// majority must agree with the sequential engine's.
func TestDenseMatchesSequentialDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("distribution comparison is not short")
	}
	const n, T, trials = 8, 4, 12000
	initial := func(i int, _ *rand.Rand) int {
		if i < 5 {
			return 1
		}
		return -1
	}
	signature := func(e Engine[int]) string {
		c := e.Counts()
		s := ""
		for _, k := range []int{-1, 0, 1} {
			s += fmt.Sprintf("%d:%d;", k, c[k])
		}
		return s
	}
	run := func(mk func(tr int) Engine[int]) map[string]float64 {
		sigs := RunTrials(trials, 0, func(tr int) string {
			e := mk(tr)
			e.RunTime(T)
			return signature(e)
		})
		freq := make(map[string]float64)
		for _, s := range sigs {
			freq[s] += 1.0 / trials
		}
		return freq
	}
	seq := run(func(tr int) Engine[int] {
		return New(n, initial, amRule, WithSeed(uint64(tr)*2+1))
	})
	den := run(func(tr int) Engine[int] {
		return NewDense(n, initial, amRule, WithSeed(uint64(tr)*2+2))
	})
	seen := map[string]bool{}
	for k := range seq {
		seen[k] = true
	}
	for k := range den {
		seen[k] = true
	}
	for k := range seen {
		d := math.Abs(seq[k] - den[k])
		// ~5 standard errors for a Bernoulli frequency at this trial count.
		tol := 5*math.Sqrt(math.Max(seq[k], den[k])/trials) + 1e-3
		if d > tol {
			t.Errorf("signature %q: seq %.4f vs dense %.4f (tol %.4f)", k, seq[k], den[k], tol)
		}
	}
}

// TestDenseDistinctStates: on a protocol that can only shuffle its initial
// values (max-epidemic), the dense engine must report exactly the initial
// distinct-state count.
func TestDenseDistinctStates(t *testing.T) {
	const k = 37
	d := NewDense(2000, func(i int, _ *rand.Rand) int { return i % k }, maxRule, WithSeed(6))
	d.RunTime(30)
	if got := d.DistinctStates(); got != k {
		t.Errorf("dense DistinctStates = %d, want %d", got, k)
	}
}

// TestDenseCompaction: a protocol cycling through many short-lived states
// must keep the interning tables near the live count via compaction, and
// stay correct while doing so.
func TestDenseCompaction(t *testing.T) {
	// Threshold raised to the batch default so the state churn compacts in
	// dense mode instead of delegating.
	d := NewDense(4000, func(i int, _ *rand.Rand) int { return i % 2 },
		func(a, c int, _ *rand.Rand) (int, int) {
			return (a + 2) % 100000, c
		}, WithSeed(8), WithDenseThreshold(8192))
	d.RunTime(1000)
	if st := d.Stats(); st.Compactions <= 1 { // construction itself compacts once
		t.Error("no compactions despite state churn")
	}
	if got := countsSum[int](d); got != 4000 {
		t.Errorf("conservation after compactions: %d agents, want 4000", got)
	}
	if d.DistinctStates() < 1000 {
		t.Errorf("DistinctStates = %d, expected a long state cycle", d.DistinctStates())
	}
}

// TestDenseRejectsInteractionCounts pins the documented panic.
func TestDenseRejectsInteractionCounts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDense with WithInteractionCounts did not panic")
		}
	}()
	NewDense(10, func(int, *rand.Rand) int { return 0 }, amRule, WithInteractionCounts())
}

// TestDenseHugePopulation: the count-vector representation makes a 10⁹-
// agent simulation a routine test — no agent-sized allocation anywhere.
// (The agent-array backends cannot even construct this population: the
// array alone would need several gigabytes.)
func TestDenseHugePopulation(t *testing.T) {
	const n = int64(1_000_000_000)
	d := NewDenseFromCounts([]int{1, -1}, []int64{n / 2, n - n/2}, amRule, WithSeed(21))
	// A delegation here would hand 10⁹ agents to BatchSim (whose own
	// fallback is an agent array); trip the hook's panic at the moment of
	// violation rather than inferring it from stats afterwards.
	d.forceNoDelegate = true
	d.Run(2_000_000)
	if d.total != n {
		t.Fatalf("conservation at n=10⁹: %d agents", d.total)
	}
	if st := d.Stats(); st.Delegations != 0 || st.Batches == 0 {
		t.Errorf("expected pure dense batching at 10⁹, got %+v", st)
	}
	// The approximate-majority drift is tiny over 2·10⁶ interactions of a
	// balanced 10⁹ population; all three states should be live.
	if d.LiveStates() != 3 {
		t.Errorf("live states = %d, want 3", d.LiveStates())
	}
}

// TestFromCountsValidation pins the multiset constructors' contract:
// duplicate states accumulate, zero counts are skipped, and invalid
// multisets panic.
func TestFromCountsValidation(t *testing.T) {
	d := NewDenseFromCounts([]int{1, 2, 1, 3}, []int64{4, 5, 6, 0}, amRule, WithSeed(1))
	want := map[int]int{1: 10, 2: 5}
	if got := d.Counts(); !reflect.DeepEqual(got, want) {
		t.Errorf("Counts() = %v, want %v", got, want)
	}
	if d.N() != 15 {
		t.Errorf("N() = %d, want 15", d.N())
	}
	for name, fn := range map[string]func(){
		"dense mismatched lengths": func() { NewDenseFromCounts([]int{1}, []int64{1, 2}, amRule) },
		"dense negative count":     func() { NewDenseFromCounts([]int{1}, []int64{-1}, amRule) },
		"dense too small":          func() { NewDenseFromCounts([]int{1}, []int64{1}, amRule) },
		"batch mismatched lengths": func() { NewBatchFromCounts([]int{1}, []int64{1, 2}, amRule) },
		"batch negative count":     func() { NewBatchFromCounts([]int{1}, []int64{-1}, amRule) },
		"batch too small":          func() { NewBatchFromCounts([]int{1}, []int64{0}, amRule) },
		"engine negative count": func() {
			NewEngineFromCounts([]int{1}, []int64{-1}, amRule, WithBackend(Sequential))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestNewEngineFromCounts covers backend selection and the sequential
// expansion path of the multiset engine constructor.
func TestNewEngineFromCounts(t *testing.T) {
	states := []int{1, -1, 0}
	counts := []int64{40, 30, 30}
	for _, tc := range []struct {
		backend Backend
		want    string
	}{
		{Sequential, "*pop.Sim[int]"},
		{Batched, "*pop.BatchSim[int]"},
		{Dense, "*pop.DenseSim[int]"},
		{Auto, "*pop.Sim[int]"}, // 100 agents: below the batch cutoff
	} {
		e := NewEngineFromCounts(states, counts, amRule, WithSeed(3), WithBackend(tc.backend))
		if got := fmt.Sprintf("%T", e); got != tc.want {
			t.Errorf("backend %v: engine type %s, want %s", tc.backend, got, tc.want)
		}
		if got := countsSum[int](e); got != 100 {
			t.Errorf("backend %v: %d agents, want 100", tc.backend, got)
		}
		e.Run(500)
		if got := countsSum[int](e); got != 100 {
			t.Errorf("backend %v after run: %d agents, want 100", tc.backend, got)
		}
	}
	// Auto must pick a multiset backend once expansion would be large.
	big := NewEngineFromCounts([]int{0, 1}, []int64{1 << 22, 1 << 22}, amRule)
	if _, ok := big.(*Sim[int]); ok {
		t.Error("Auto expanded a multi-million-agent multiset into an agent array")
	}
}

// TestDenseStepOnlyPath: the single-interaction multiset step must agree
// with Run over many interactions (exercised via interaction parity and
// conservation rather than distribution — the n=8 suite covers that).
func TestDenseStepOnlyPath(t *testing.T) {
	d := NewDense(50, func(i int, _ *rand.Rand) int { return i % 4 }, amRule, WithSeed(17))
	for i := 0; i < 200; i++ {
		d.Step()
	}
	if d.Interactions() != 200 {
		t.Errorf("interactions = %d, want 200", d.Interactions())
	}
	if got := countsSum[int](d); got != 50 {
		t.Errorf("conservation after steps: %d agents, want 50", got)
	}
}

// oneWayEpidemic is the maximally receiver/sender-asymmetric rule: the
// receiver adopts infection from the sender, never the reverse.
func oneWayEpidemic(rec, sen int, _ *rand.Rand) (int, int) {
	if sen == 1 {
		return 1, sen
	}
	return rec, sen
}

// TestDensePairTypeExpectation pins the per-interaction ordered-pair-type
// probability on an asymmetric rule: within a collision-free batch every
// interaction is marginally a uniform ordered pair of distinct agents, so
// the per-interaction infection rate of a one-way epidemic must equal
// (S/n)·(I/(n−1)) exactly. This is the observable that catches
// receiver/sender conditioning bugs in the pair-matrix sampler — e.g. a
// row tail drawn from the full pool instead of the chain's remaining
// suffix halves it — which symmetric-rule distribution tests miss.
func TestDensePairTypeExpectation(t *testing.T) {
	if testing.Short() {
		t.Skip("pair-type expectation estimation is not short")
	}
	const n, inf, trials = 2000, 40, 20000
	initial := func(i int, _ *rand.Rand) int {
		if i < inf {
			return 1
		}
		return 0
	}
	var newInf, done float64
	for tr := 0; tr < trials; tr++ {
		d := NewDense(n, initial, oneWayEpidemic, WithSeed(uint64(tr)*13+5))
		done += float64(d.runBatch(1 << 20))
		newInf += float64(d.Count(func(s int) bool { return s == 1 }) - inf)
	}
	got := newInf / done
	want := (float64(n-inf) / n) * (float64(inf) / float64(n-1))
	// ~5 standard errors of the per-batch estimator is well under 10%
	// relative at this trial count; the historical suffix bug sat at −51%.
	if math.Abs(got-want) > 0.1*want {
		t.Errorf("infections per interaction = %.6f, want %.6f ± 10%%", got, want)
	}
}

// TestDenseForceNoDelegate pins the hook: with delegation forbidden, a
// state explosion past the threshold must panic at the moment it would
// have delegated.
func TestDenseForceNoDelegate(t *testing.T) {
	d := NewDense(500, func(int, *rand.Rand) int { return 0 }, explodeRule,
		WithSeed(3), WithDenseThreshold(32))
	d.forceNoDelegate = true
	defer func() {
		if recover() == nil {
			t.Error("no panic despite exploding states with forceNoDelegate set")
		}
	}()
	d.RunTime(40)
}

// TestDenseSamplerMatchesReferenceChain cross-checks the engine's inlined
// participant sampler (heavy/light split, suffix Fenwick tail) against
// the plain multivariateHypergeometric reference chain in hypergeom.go:
// per-class sample means must agree within standard error. This is what
// keeps the documented reference and the shipped sampler from drifting
// apart — a change to either chain's conditioning shows up here.
func TestDenseSamplerMatchesReferenceChain(t *testing.T) {
	counts := []int64{5000, 700, 80, 80, 9, 3, 1}
	var total int64
	for _, c := range counts {
		total += c
	}
	const m, trials = 120, 30000
	q := len(counts)
	r := rand.New(rand.NewPCG(31, 37))
	ref := make([]float64, q)
	dst := make([]int64, q)
	for tr := 0; tr < trials; tr++ {
		multivariateHypergeometric(r, counts, total, m, dst)
		for i, k := range dst {
			ref[i] += float64(k)
		}
	}
	// The engine sampler mutates its configuration, so rebuild per trial
	// from the same multiset (identity rule: states never change).
	idRule := func(a, b int, _ *rand.Rand) (int, int) { return a, b }
	states := make([]int, q)
	for i := range states {
		states[i] = i
	}
	got := make([]float64, q)
	for tr := 0; tr < trials/10; tr++ { // constructor cost bounds the trials
		d := NewDenseFromCounts(states, counts, idRule, WithSeed(uint64(tr)*19+7))
		d.recv = resizeZero(d.recv, len(d.counts))
		d.sampleParticipants(d.recv, m)
		for id, k := range d.recv {
			got[d.states[id]] += float64(k)
		}
	}
	for i, c := range counts {
		want := float64(m) * float64(c) / float64(total)
		refMean := ref[i] / trials
		gotMean := got[i] / (trials / 10)
		se := 5*math.Sqrt(want/(trials/10)) + 0.05
		if math.Abs(refMean-want) > se {
			t.Errorf("reference chain class %d: mean %.3f, want %.3f ± %.3f", i, refMean, want, se)
		}
		if math.Abs(gotMean-want) > se {
			t.Errorf("engine sampler class %d: mean %.3f, want %.3f ± %.3f", i, gotMean, want, se)
		}
	}
}
