// Churn (dynamic population) tests: AddAgents/RemoveAgents across all
// three backends — exact conservation, hypergeometric removal marginals,
// per-segment parallel-time accounting, churn while delegated, and the
// n >= 2 floor shared by every constructor and by RemoveAgents.
package pop

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"github.com/popsim/popsize/internal/stats"
)

// allBackends enumerates the concrete backends for churn tests.
var allBackends = []Backend{Sequential, Batched, Dense}

// churnEngine builds an engine of the requested backend from a counts
// multiset (the only construction every backend shares).
func churnEngine(be Backend, states []int, counts []int64, rule Rule[int], seed uint64) Engine[int] {
	return NewEngineFromCounts(states, counts, rule, WithSeed(seed), WithBackend(be))
}

// TestChurnConservation interleaves joins, leaves and runs on every
// backend and asserts the configuration always sums to the tracked
// population size.
func TestChurnConservation(t *testing.T) {
	for _, be := range allBackends {
		t.Run(be.String(), func(t *testing.T) {
			e := churnEngine(be, []int{0, 1, 2}, []int64{400, 350, 250}, amRule, 7)
			n := 1000
			check := func(step string) {
				t.Helper()
				if e.N() != n {
					t.Fatalf("%s: N() = %d, want %d", step, e.N(), n)
				}
				if got := countsSum[int](e); got != n {
					t.Fatalf("%s: counts sum to %d, want %d", step, got, n)
				}
			}
			ops := []struct {
				name  string
				apply func()
			}{
				{"warmup run", func() { e.Run(5000) }},
				{"join 300", func() { e.AddAgents(1, 300); n += 300 }},
				{"run after join", func() { e.Run(4000) }},
				{"leave 550", func() { e.RemoveAgents(550); n -= 550 }},
				{"run after leave", func() { e.Run(4000) }},
				{"join 0 (no-op)", func() { e.AddAgents(2, 0) }},
				{"leave 0 (no-op)", func() { e.RemoveAgents(0) }},
				{"heavy leave", func() { e.RemoveAgents(700); n -= 700 }},
				{"run small", func() { e.Run(500) }},
				{"regrow", func() { e.AddAgents(0, 2000); n += 2000 }},
				{"final run", func() { e.Run(8000) }},
			}
			for _, op := range ops {
				op.apply()
				check(op.name)
			}
		})
	}
}

// TestChurnRemovalMarginals: on every backend the per-state removal
// counts of RemoveAgents(k) must match the multivariate hypergeometric
// expectation k·c_i/N (mirroring hypergeom_test.go's moment checks, but
// through the engines' own removal paths).
func TestChurnRemovalMarginals(t *testing.T) {
	states := []int{0, 1, 2, 3}
	counts := []int64{600, 250, 100, 50}
	const total, k, trials = 1000, 200, 3000
	for _, be := range allBackends {
		t.Run(be.String(), func(t *testing.T) {
			removed := make([]float64, len(states))
			for tr := 0; tr < trials; tr++ {
				e := churnEngine(be, states, counts, amRule, uint64(tr)*31+uint64(be))
				before := e.Counts()
				e.RemoveAgents(k)
				after := e.Counts()
				for i, s := range states {
					removed[i] += float64(before[s] - after[s])
				}
			}
			for i, c := range counts {
				want := float64(k) * float64(c) / float64(total)
				// Hypergeometric SE per trial, 5 SE over the trial mean.
				se := math.Sqrt(want * float64(total-c) / total * float64(total-k) / (total - 1) / trials)
				if err := stats.MeanNear(removed[i]/trials, want, 5*se, 0.05); err != nil {
					t.Errorf("state %d: mean removed: %v", states[i], err)
				}
			}
		})
	}
}

// TestChurnSegmentedTime pins the per-segment parallel-time definition
// Σ_j I_j/n_j on every backend: churn events must freeze the accumulated
// time and switch the denominator.
func TestChurnSegmentedTime(t *testing.T) {
	for _, be := range allBackends {
		t.Run(be.String(), func(t *testing.T) {
			e := churnEngine(be, []int{0, 1}, []int64{50, 50}, amRule, 3)
			e.Run(1000) // 1000/100 = 10
			e.AddAgents(1, 100)
			if got := e.Time(); math.Abs(got-10) > 1e-9 {
				t.Fatalf("after join: Time() = %g, want 10 (join must not rescale history)", got)
			}
			e.Run(2000) // + 2000/200 = 10
			e.RemoveAgents(150)
			e.Run(500) // + 500/50 = 10
			if got, want := e.Time(), 30.0; math.Abs(got-want) > 1e-9 {
				t.Errorf("segmented time = %g, want %g", got, want)
			}
			if got := e.Interactions(); got != 3500 {
				t.Errorf("interactions = %d, want 3500", got)
			}
			// RunTime must use the current population size.
			e.RunTime(4)
			if got := e.Interactions(); got != 3500+4*50 {
				t.Errorf("RunTime after churn ran %d interactions total, want %d", got, 3500+4*50)
			}
		})
	}
}

// TestChurnMidDelegation: joins and leaves while a DenseSim is delegated
// to its internal BatchSim must round-trip — the sizes stay consistent
// through the delegated phase and across re-entry, and the protocol's
// outcome (a max-epidemic) is still correct afterwards.
func TestChurnMidDelegation(t *testing.T) {
	const n0 = 600
	d := NewDense(n0, func(i int, _ *rand.Rand) int { return i }, maxRule,
		WithSeed(13), WithDenseThreshold(48))
	d.Run(2 * n0) // n distinct initial states: delegates immediately
	if !d.Delegated() {
		t.Fatal("engine did not delegate with n distinct initial states")
	}
	n := n0
	d.AddAgents(n0+5, 200) // a fresh, larger maximum joins mid-delegation
	n += 200
	d.RemoveAgents(350)
	n -= 350
	if d.N() != n || d.inner.N() != n {
		t.Fatalf("mid-delegation sizes: outer %d, inner %d, want %d", d.N(), d.inner.N(), n)
	}
	if got := countsSum[int](d); got != n {
		t.Fatalf("mid-delegation conservation: %d agents, want %d", got, n)
	}
	d.RunTime(120) // collapse to one live state → re-entry
	if d.Delegated() {
		t.Fatal("still delegated after the configuration collapsed")
	}
	if d.Stats().Reentries == 0 {
		t.Fatal("never re-entered dense mode")
	}
	if got := countsSum[int](d); got != n {
		t.Fatalf("post-re-entry conservation: %d agents, want %d", got, n)
	}
	// The joined maximum survives removal w.h.p. (350 of 800 removed, 200
	// carriers) and must have propagated everywhere.
	if !d.All(func(v int) bool { return v == n0+5 }) {
		t.Errorf("epidemic did not converge to the joined maximum; counts = %v", d.Counts())
	}
	// Churn again after re-entry: dense-mode count edits.
	d.AddAgents(0, 100)
	n += 100
	d.RunTime(5)
	if got := countsSum[int](d); got != n {
		t.Errorf("post-re-entry churn conservation: %d agents, want %d", got, n)
	}
}

// TestChurnSeqFallbackBatch: joins and leaves while a BatchSim is in its
// materialized sequential fallback must operate on the agent array and
// survive re-entry into batch mode.
func TestChurnSeqFallbackBatch(t *testing.T) {
	const n0 = 500
	b := NewBatch(n0, func(i int, _ *rand.Rand) int { return i }, maxRule,
		WithSeed(5), WithBatchThreshold(32))
	b.Run(int64(2 * n0)) // n distinct states: falls back to the agent array
	if !b.seqMode {
		t.Fatal("engine did not fall back with n distinct initial states")
	}
	n := n0
	b.AddAgents(n0+9, 100)
	n += 100
	b.RemoveAgents(250)
	n -= 250
	if b.N() != n || len(b.agents) != n {
		t.Fatalf("mid-fallback sizes: N %d, agents %d, want %d", b.N(), len(b.agents), n)
	}
	b.RunTime(100) // collapse → re-entry recounts from the agent array
	if b.seqMode {
		t.Fatal("still in sequential fallback after collapse")
	}
	if got := countsSum[int](b); got != n {
		t.Fatalf("post-re-entry conservation: %d agents, want %d", got, n)
	}
	if !b.All(func(v int) bool { return v == n0+9 }) {
		t.Errorf("epidemic did not converge to the joined maximum; counts = %v", b.Counts())
	}
}

// TestChurnStateTracking: on the sequential engine, joins must register
// in the distinct-state set and removals must keep per-agent interaction
// counts aligned with their agents.
func TestChurnStateTracking(t *testing.T) {
	s := New(100, func(int, *rand.Rand) int { return 0 }, amRule,
		WithSeed(9), WithStateTracking(), WithInteractionCounts())
	s.Run(200)
	s.AddAgents(41, 20) // a state the run cannot produce
	if _, ok := s.seen[41]; !ok {
		t.Error("AddAgents did not register the joined state with state tracking")
	}
	if len(s.icounts) != 120 {
		t.Fatalf("icounts length %d after join, want 120", len(s.icounts))
	}
	s.RemoveAgents(50)
	if len(s.icounts) != len(s.agents) {
		t.Fatalf("icounts length %d diverged from %d agents after removal", len(s.icounts), len(s.agents))
	}
	s.Run(200)
	if s.MaxInteractionCount() == 0 {
		t.Error("interaction counting broke across churn")
	}
}

// TestRemoveAgentsFloor: every backend must refuse to shrink the
// population below 2, and reject negative churn counts.
func TestRemoveAgentsFloor(t *testing.T) {
	for _, be := range allBackends {
		for name, k := range map[string]int{"below two": 3, "negative": -1} {
			t.Run(be.String()+"/"+name, func(t *testing.T) {
				e := churnEngine(be, []int{0, 1}, []int64{2, 2}, amRule, 1)
				defer func() {
					r := recover()
					if r == nil {
						t.Fatalf("RemoveAgents(%d) on n=4 did not panic", k)
					}
					if !strings.Contains(fmt.Sprint(r), "RemoveAgents") {
						t.Errorf("panic %q does not name RemoveAgents", r)
					}
				}()
				e.RemoveAgents(k)
			})
		}
		// Shrinking exactly to the floor is allowed.
		e := churnEngine(be, []int{0, 1}, []int64{2, 2}, amRule, 1)
		e.RemoveAgents(2)
		if e.N() != 2 {
			t.Errorf("%v: N() = %d after shrinking to the floor, want 2", be, e.N())
		}
		e.Run(10) // n=2 must still step (the DenseSim n=1 panic regression)
	}
}

// TestConstructorsRejectTinyPopulations: every constructor shares the
// same n >= 2 validation and message.
func TestConstructorsRejectTinyPopulations(t *testing.T) {
	init := func(int, *rand.Rand) int { return 0 }
	cases := map[string]func(n int){
		"New":      func(n int) { New(n, init, amRule) },
		"NewBatch": func(n int) { NewBatch(n, init, amRule) },
		"NewDense": func(n int) { NewDense(n, init, amRule) },
		"NewBatchFromCounts": func(n int) {
			NewBatchFromCounts([]int{0}, []int64{int64(n)}, amRule)
		},
		"NewDenseFromCounts": func(n int) {
			NewDenseFromCounts([]int{0}, []int64{int64(n)}, amRule)
		},
		"NewEngineFromCounts": func(n int) {
			NewEngineFromCounts([]int{0}, []int64{int64(n)}, amRule)
		},
		"NewEngineFromCounts/seq": func(n int) {
			NewEngineFromCounts([]int{0}, []int64{int64(n)}, amRule, WithBackend(Sequential))
		},
	}
	for name, mk := range cases {
		for _, n := range []int{0, 1} {
			t.Run(fmt.Sprintf("%s/n=%d", name, n), func(t *testing.T) {
				defer func() {
					r := recover()
					if r == nil {
						t.Fatalf("%s with n=%d did not panic", name, n)
					}
					if !strings.Contains(fmt.Sprint(r), "pairwise scheduler needs two distinct agents") {
						t.Errorf("panic %q is not the shared population-size message", r)
					}
				}()
				mk(n)
			})
		}
	}
}

// TestChurnDeterminism: for a fixed seed, a churned run reproduces its
// configuration trajectory exactly on every backend.
func TestChurnDeterminism(t *testing.T) {
	for _, be := range allBackends {
		run := func() map[int]int {
			e := churnEngine(be, []int{0, 1, 2}, []int64{500, 300, 200}, amRule, 99)
			e.Run(3000)
			e.AddAgents(1, 250)
			e.Run(3000)
			e.RemoveAgents(400)
			e.Run(3000)
			return e.Counts()
		}
		a, b := run(), run()
		for k, v := range a {
			if b[k] != v {
				t.Errorf("%v: churned runs with the same seed diverged: %v vs %v", be, a, b)
				break
			}
		}
	}
}
