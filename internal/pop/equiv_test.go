// Cross-backend statistical equivalence suite: the batched multiset
// engine and the count-vector dense engine must be distributionally
// indistinguishable from the sequential reference engine on the
// repository's protocols. Backends consume randomness differently, so
// trajectories cannot be compared run-by-run; instead each protocol/size
// runs many seeded trials per backend and the suite compares the
// resulting metric distributions with a Welch-style tolerance (5 standard
// errors plus a small absolute slack — loose enough for fixed seeds to
// pass deterministically, tight enough to catch any systematic bias in
// the batching or pair-matrix machinery).
package pop_test

import (
	"fmt"
	"math"
	"math/rand/v2"
	"reflect"
	"testing"

	"github.com/popsim/popsize/internal/churn"
	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/epidemic"
	"github.com/popsim/popsize/internal/exactcount"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/stats"
)

// equivBackends are the engines under comparison: the sequential engine
// is the reference, every other backend's metric distribution must match
// it. Seed offsets keep the backends' trial streams disjoint. The par
// variants run the node-seeded splitter sampling path (pop.
// WithParallelism), whose draws differ from the legacy chains' and so
// need their own distributional check against the reference.
var equivBackends = []struct {
	backend pop.Backend
	par     int
	seedOff uint64
}{
	{pop.Sequential, 0, 1},
	{pop.Batched, 0, 2},
	{pop.Dense, 0, 3},
	{pop.Batched, 2, 4},
	{pop.Dense, 2, 5},
}

// label names an equivalence variant in failure messages.
func label(backend pop.Backend, par int) string {
	if par > 0 {
		return fmt.Sprintf("%v/par=%d", backend, par)
	}
	return backend.String()
}

// meansAgree applies the shared Welch-tolerance check (stats.WelchAgree,
// 5 standard errors plus the caller's absolute slack) to two samples.
func meansAgree(t *testing.T, what string, ref, got []float64, absSlack float64) {
	t.Helper()
	if err := stats.WelchAgree(ref, got, 5, absSlack); err != nil {
		t.Errorf("%s: %v", what, err)
	}
}

// equivConfig is a reduced-constant preset for the equivalence suite: the
// protocol's shape at a fraction of FastConfig's simulation cost.
func equivConfig() core.Config {
	return core.Config{ClockFactor: 8, EpochFactor: 1, GeomBonus: 2}
}

// TestEquivalenceCoreProtocol: the headline Log-Size-Estimation protocol.
// Convergence time and estimate distributions must agree across all three
// backends at every size, and every multiset-backend trial must conserve
// agents and meet the error bound.
func TestEquivalenceCoreProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence suite is not short")
	}
	p := core.MustNew(equivConfig())
	const trials = 12
	for _, n := range []int{300, 1000, 2000} {
		run := func(backend pop.Backend, par int, seedOff uint64) (times, ests []float64) {
			times = make([]float64, trials)
			ests = make([]float64, trials)
			pop.RunTrials(trials, 0, func(tr int) struct{} {
				r := p.Run(n, core.RunOptions{
					Seed:        seedOff + uint64(tr)*7717,
					Backend:     backend,
					Parallelism: par,
				})
				if !r.Converged {
					t.Errorf("n=%d backend=%v trial %d did not converge", n, backend, tr)
				}
				if r.MaxErr > 8 {
					t.Errorf("n=%d backend=%v trial %d: error %.2f implausibly large", n, backend, tr, r.MaxErr)
				}
				times[tr] = r.Time
				ests[tr] = r.Estimate
				return struct{}{}
			})
			return times, ests
		}
		seqT, seqE := run(equivBackends[0].backend, 0, equivBackends[0].seedOff)
		logN := math.Log2(float64(n))
		for _, eb := range equivBackends[1:] {
			bT, bE := run(eb.backend, eb.par, eb.seedOff)
			meansAgree(t, "core convergence time vs "+label(eb.backend, eb.par),
				seqT, bT, 0.05*stats.Summarize(seqT).Mean)
			meansAgree(t, "core estimate vs "+label(eb.backend, eb.par), seqE, bE, 0.5)
			if m := stats.Summarize(bE).Mean; math.Abs(m-logN) > 6 {
				t.Errorf("n=%d %s: mean estimate %.2f far from log2 n = %.2f", n, label(eb.backend, eb.par), m, logN)
			}
		}
		if m := stats.Summarize(seqE).Mean; math.Abs(m-logN) > 6 {
			t.Errorf("n=%d seq: mean estimate %.2f far from log2 n = %.2f", n, m, logN)
		}
	}
}

// TestEquivalenceEpidemic: one-way epidemic completion times (the
// max-propagation primitive under every stage of the main protocol).
func TestEquivalenceEpidemic(t *testing.T) {
	const trials = 24
	for _, n := range []int{500, 2000, 8000} {
		run := func(backend pop.Backend, par int, seedOff uint64) []float64 {
			return pop.RunTrials(trials, 0, func(tr int) float64 {
				s := epidemic.NewEngine(n, 1, pop.WithSeed(seedOff+uint64(tr)*271),
					pop.WithBackend(backend), pop.WithParallelism(par))
				at, ok := epidemic.CompletionTime(s, 1e5)
				if !ok {
					t.Errorf("n=%d backend=%v trial %d: epidemic timed out", n, backend, tr)
				}
				return at
			})
		}
		seq := run(equivBackends[0].backend, 0, equivBackends[0].seedOff+10)
		for _, eb := range equivBackends[1:] {
			got := run(eb.backend, eb.par, eb.seedOff+10)
			meansAgree(t, "epidemic completion time vs "+label(eb.backend, eb.par), seq, got, 0.5)
		}
	}
}

// TestEquivalenceExactCount: the leader-driven exact counting baseline —
// a protocol whose leader walks through Θ(n log n) short-lived states,
// exercising interning-table compaction (and, on the dense engine, the
// delegation heuristic). The count must be exact on every backend and
// termination-time distributions must agree.
func TestEquivalenceExactCount(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence suite is not short")
	}
	p := exactcount.New(3)
	const trials = 12
	for _, n := range []int{100, 250, 500} {
		run := func(backend pop.Backend, par int, seedOff uint64) []float64 {
			return pop.RunTrials(trials, 0, func(tr int) float64 {
				s := p.NewEngine(n, pop.WithSeed(seedOff+uint64(tr)*911),
					pop.WithBackend(backend), pop.WithParallelism(par))
				ok, at := s.RunUntil(exactcount.Terminated, 5, float64(5000*n))
				if !ok {
					t.Errorf("n=%d backend=%v trial %d: never terminated", n, backend, tr)
				}
				if got := exactcount.LeaderCount(s); got != n {
					t.Errorf("n=%d backend=%v trial %d: counted %d agents", n, backend, tr, got)
				}
				return at
			})
		}
		seq := run(equivBackends[0].backend, 0, equivBackends[0].seedOff+20)
		for _, eb := range equivBackends[1:] {
			got := run(eb.backend, eb.par, eb.seedOff+20)
			meansAgree(t, "exact-count termination time vs "+label(eb.backend, eb.par),
				seq, got, 0.1*stats.Summarize(seq).Mean)
		}
	}
}

// TestEquivalenceChurnTrajectory extends the suite to dynamic
// populations: all three backends run the identical churn schedule (a
// join wave, a heavy leave, and lockstep turnover) over a one-way
// epidemic, and the end-state infected-count distributions must agree.
// The epidemic is maximally receiver/sender-asymmetric and joiners enter
// uninfected, so a bias in any backend's removal sampling or in the
// churn-segment bookkeeping shifts the infected fraction directly.
func TestEquivalenceChurnTrajectory(t *testing.T) {
	const n0, trials = 1000, 32
	sched := churn.Merge(
		churn.Schedule{{At: 2, Join: 600}, {At: 5, Leave: 900}},
		churn.Step(n0, 2e-2, 1.5, 10),
	)
	wantN := sched.Net(n0)
	oneWay := func(rec, sen epidemic.State, _ *rand.Rand) (epidemic.State, epidemic.State) {
		if sen.Val > rec.Val {
			rec.Val = sen.Val
		}
		return rec, sen
	}
	run := func(backend pop.Backend, par int, seedOff uint64) (infected, times []float64) {
		infected = make([]float64, trials)
		times = make([]float64, trials)
		pop.RunTrials(trials, 0, func(tr int) struct{} {
			e := pop.NewEngineFromCounts(
				[]epidemic.State{{Val: 1, Member: true}, {Val: 0, Member: true}},
				[]int64{40, n0 - 40}, oneWay,
				pop.WithSeed(seedOff+uint64(tr)*613), pop.WithBackend(backend),
				pop.WithParallelism(par))
			churn.Apply(e, sched, epidemic.State{Member: true}, 10, 0, nil)
			if e.N() != wantN {
				t.Errorf("backend=%v trial %d: final n=%d, want %d", backend, tr, e.N(), wantN)
			}
			infected[tr] = float64(e.Count(func(s epidemic.State) bool { return s.Val == 1 }))
			times[tr] = e.Time()
			return struct{}{}
		})
		return infected, times
	}
	seqI, seqT := run(equivBackends[0].backend, 0, equivBackends[0].seedOff+30)
	for _, eb := range equivBackends[1:] {
		gotI, gotT := run(eb.backend, eb.par, eb.seedOff+30)
		meansAgree(t, "churned epidemic infected count vs "+label(eb.backend, eb.par),
			seqI, gotI, 0.02*float64(wantN))
		// Segmented parallel time is deterministic up to 1/n quanta: every
		// backend must land on the same horizon.
		meansAgree(t, "churned trajectory end time vs "+label(eb.backend, eb.par), seqT, gotT, 0.05)
	}
}

// TestEquivalenceChurnCoreProtocol runs the headline protocol through a
// mid-run doubling on all three backends: convergence must still happen
// and the end-state estimate distributions must agree. (The doubling
// lands early — before convergence — so the protocol's own restart
// machinery absorbs it identically on every backend.)
func TestEquivalenceChurnCoreProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence suite is not short")
	}
	p := core.MustNew(equivConfig())
	const n0, trials = 500, 12
	run := func(backend pop.Backend, par int, seedOff uint64) []float64 {
		ests := make([]float64, trials)
		pop.RunTrials(trials, 0, func(tr int) struct{} {
			e := pop.NewEngineFromCounts(
				[]core.State{core.Initial()}, []int64{n0}, p.Rule,
				pop.WithSeed(seedOff+uint64(tr)*409), pop.WithBackend(backend),
				pop.WithParallelism(par))
			churn.Apply(e, churn.Doubling(n0, 8), core.Initial(), 10, 0, nil)
			ok, _ := e.RunUntil(p.Converged, 4, p.DefaultMaxTime(2*n0))
			if !ok {
				t.Errorf("backend=%v trial %d did not converge after the doubling", backend, tr)
			}
			ests[tr] = core.Estimates(e).Mean
			return struct{}{}
		})
		return ests
	}
	seqE := run(equivBackends[0].backend, 0, equivBackends[0].seedOff+40)
	logN := math.Log2(float64(2 * n0))
	for _, eb := range equivBackends[1:] {
		gotE := run(eb.backend, eb.par, eb.seedOff+40)
		meansAgree(t, "churned core estimate vs "+label(eb.backend, eb.par), seqE, gotE, 0.5)
		if m := stats.Summarize(gotE).Mean; math.Abs(m-logN) > 6 {
			t.Errorf("%s: churned mean estimate %.2f far from log2(2n) = %.2f", label(eb.backend, eb.par), m, logN)
		}
	}
}

// TestMultisetConservationThroughCoreRun asserts exact agent-count
// conservation at every checkpoint of a batched and a dense core-protocol
// run (the engines additionally self-check after every batch and panic on
// violation).
func TestMultisetConservationThroughCoreRun(t *testing.T) {
	p := core.MustNew(equivConfig())
	const n = 5000
	for _, backend := range []pop.Backend{pop.Batched, pop.Dense} {
		e := p.NewEngine(n, pop.WithSeed(33), pop.WithBackend(backend))
		for i := 0; i < 20; i++ {
			e.RunTime(5)
			total := 0
			for _, c := range e.Counts() {
				total += c
			}
			if total != n {
				t.Fatalf("%v checkpoint %d: %d agents, want %d", backend, i, total, n)
			}
		}
	}
}

// TestBatchSelfDeterminismCoreProtocol: the batched engine is
// deterministic for a fixed seed on the real protocol, including its
// Result-level outputs.
func TestBatchSelfDeterminismCoreProtocol(t *testing.T) {
	p := core.MustNew(equivConfig())
	r1 := p.Run(1500, core.RunOptions{Seed: 77, Backend: pop.Batched})
	r2 := p.Run(1500, core.RunOptions{Seed: 77, Backend: pop.Batched})
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("batched runs with the same seed differ:\n%+v\n%+v", r1, r2)
	}
}

// TestDenseSelfDeterminismCoreProtocol: likewise for the count-vector
// engine, whose runs at this size cross the delegation threshold and back.
func TestDenseSelfDeterminismCoreProtocol(t *testing.T) {
	p := core.MustNew(equivConfig())
	r1 := p.Run(1500, core.RunOptions{Seed: 77, Backend: pop.Dense})
	r2 := p.Run(1500, core.RunOptions{Seed: 77, Backend: pop.Dense})
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("dense runs with the same seed differ:\n%+v\n%+v", r1, r2)
	}
}
