package pop

import (
	"runtime"
	"sync"
)

// RunTrials runs fn(trial) for trial = 0..trials-1 across up to workers
// goroutines (GOMAXPROCS if workers <= 0) and returns the results in trial
// order. Engines are not safe for concurrent use, so fn must construct its
// own engine per trial, seeded through TrialSeed so distinct experiments
// sharing a base seed never reuse a random stream:
//
//	times := pop.RunTrials(100, 0, func(tr int) float64 {
//	    e := p.NewEngine(n, pop.WithSeed(pop.TrialSeed(base, "convergence", tr)))
//	    _, at := e.RunUntil(pred, 1, budget)
//	    return at
//	})
func RunTrials[T any](trials, workers int, fn func(trial int) T) []T {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Register the trial-level pool so intra-trial parallelism
	// (WithParallelism) divides the core budget instead of multiplying it:
	// effectiveWorkers caps each engine at GOMAXPROCS over the number of
	// concurrently registered trial workers. Results are unaffected — the
	// splitter path is worker-count independent by construction.
	registered := int64(min(workers, trials))
	activeTrialWorkers.Add(registered)
	defer activeTrialWorkers.Add(-registered)
	out := make([]T, trials)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < trials; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = fn(i)
		}(i)
	}
	wg.Wait()
	return out
}
