package pop

// fenwick is a binary indexed tree over int64 weights, used by BatchSim to
// draw agents (states weighted by their counts) without replacement in
// O(log q) per draw. Index 0..size-1 externally; the tree is 1-based.
type fenwick struct {
	tree    []int64
	size    int
	maxStep int // largest power of two <= size
}

// reset rebuilds the tree over weights in O(len(weights)).
func (f *fenwick) reset(weights []int64) {
	f.size = len(weights)
	if cap(f.tree) < f.size+1 {
		f.tree = make([]int64, f.size+1)
	} else {
		f.tree = f.tree[:f.size+1]
		for i := range f.tree {
			f.tree[i] = 0
		}
	}
	copy(f.tree[1:], weights)
	for i := 1; i <= f.size; i++ {
		if p := i + (i & -i); p <= f.size {
			f.tree[p] += f.tree[i]
		}
	}
	f.maxStep = 1
	for f.maxStep<<1 <= f.size {
		f.maxStep <<= 1
	}
}

// add adds delta to the weight at index i.
func (f *fenwick) add(i int, delta int64) {
	for j := i + 1; j <= f.size; j += j & -j {
		f.tree[j] += delta
	}
}

// findAndDec maps u ∈ [0, total) to the index i whose weight interval
// contains u (probability weight(i)/total) and decrements that weight, in
// a single descent: the nodes not descended past are exactly the tree
// ancestors of i that a subsequent add(i, -1) would touch.
func (f *fenwick) findAndDec(u int64) int {
	i := 0
	for step := f.maxStep; step > 0; step >>= 1 {
		if next := i + step; next <= f.size {
			if f.tree[next] <= u {
				u -= f.tree[next]
				i = next
			} else {
				f.tree[next]--
			}
		}
	}
	return i // 0-based: we advanced past i elements
}
