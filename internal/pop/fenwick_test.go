package pop

import (
	"math"
	"math/rand/v2"
	"testing"
)

// TestFenwickDrainsExactly draws every unit of weight without replacement
// and verifies each index is returned exactly as often as its weight.
func TestFenwickDrainsExactly(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	weights := []int64{3, 0, 7, 1, 0, 12, 5}
	var f fenwick
	f.reset(weights)
	total := int64(0)
	for _, w := range weights {
		total += w
	}
	got := make([]int64, len(weights))
	for rem := total; rem > 0; rem-- {
		got[f.findAndDec(r.Int64N(rem))]++
	}
	for i, w := range weights {
		if got[i] != w {
			t.Errorf("index %d drawn %d times, weight %d", i, got[i], w)
		}
	}
}

// TestFenwickMatchesWeights is the weighted-sampler frequency check: with
// replacement restored between draws, empirical frequencies must match the
// weight distribution.
func TestFenwickMatchesWeights(t *testing.T) {
	r := rand.New(rand.NewPCG(2, 3))
	weights := []int64{10, 90, 0, 400, 500}
	var f fenwick
	total := int64(1000)
	const draws = 500000
	counts := make([]int64, len(weights))
	f.reset(weights)
	for i := 0; i < draws; i++ {
		idx := f.findAndDec(r.Int64N(total))
		counts[idx]++
		f.add(idx, 1) // restore: sample with replacement
	}
	for i, w := range weights {
		p := float64(w) / float64(total)
		got := float64(counts[i]) / draws
		se := 5 * math.Sqrt(p*(1-p)/draws)
		if math.Abs(got-p) > se+1e-9 {
			t.Errorf("index %d: frequency %.5f, want %.5f ± %.5f", i, got, p, se)
		}
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight index drawn %d times", counts[2])
	}
}

// TestFenwickFindBoundaries pins the find contract: u just below a
// cumulative boundary selects the earlier index, u at the boundary the
// next.
func TestFenwickFindBoundaries(t *testing.T) {
	weights := []int64{2, 3, 5}
	var f fenwick
	for u, want := range map[int64]int{0: 0, 1: 0, 2: 1, 4: 1, 5: 2, 9: 2} {
		f.reset(weights)
		if got := f.findAndDec(u); got != want {
			t.Errorf("find(%d) = %d, want %d", u, got, want)
		}
	}
}
