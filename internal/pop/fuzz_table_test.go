// Fuzz target for the transition-table DSL: arbitrary byte strings
// decode into small tables — deterministic and randomized entries mixed —
// which are compiled and then run through every backend. Each input
// asserts the structural invariants the table bypass must never violate:
// agent-count conservation, byte-identical trajectories with and without
// WithTable (serial and forced-parallel), zero rule calls for
// declared-deterministic tables, and seq×batch×dense statistical
// equivalence of the resulting configurations. Like the other fuzz
// targets, the seed corpus doubles as a unit test under plain `go test`;
// CI runs the target with -fuzztime=15s.
package pop

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"github.com/popsim/popsize/internal/stats"
)

// fuzzTable decodes raw into a transition table over the states
// 0..q-1 (q in 2..5): each 4-byte chunk [a b c d] declares the pair
// (a%q, b%q); chunks with d≡0 (mod 4) become a two-branch weighted coin,
// the rest a deterministic entry (c%q, d%q). The decoder only emits
// tables CompileRule accepts, so a compile error is a finding.
func fuzzTable(raw []byte) (Table[int], int) {
	q := 2 + int(raw[0])%4
	tbl := Table[int]{}
	for i := 1; i+3 < len(raw) && len(tbl) < 24; i += 4 {
		a, b, c, d := raw[i], raw[i+1], raw[i+2], raw[i+3]
		p := Pair[int]{Rec: int(a) % q, Sen: int(b) % q}
		if d%4 == 0 {
			tbl[p] = Choose(
				Branch[int]{W: 1 + int64(c%3), Rec: int(c) % q, Sen: int(d) % q},
				Branch[int]{W: 1 + int64(d%5), Rec: int(c+1) % q, Sen: int(d+1) % q},
			)
		} else {
			tbl[p] = To(int(c)%q, int(d)%q)
		}
	}
	if len(tbl) == 0 {
		tbl[Pair[int]{Rec: 0, Sen: 1}] = To(1, 1)
	}
	return tbl, q
}

func FuzzRandomTable(f *testing.F) {
	f.Add(uint64(1), []byte{0x00, 0x01, 0x02, 0x03, 0x04})
	f.Add(uint64(2), []byte{0x03, 0xff, 0x00, 0x02, 0x04, 0x10, 0x11, 0x12, 0x13})
	f.Add(uint64(3), []byte{0x02, 0x01, 0x01, 0x01, 0x01})
	f.Add(uint64(4), []byte{0x01, 0x00, 0x01, 0x02, 0x07, 0x01, 0x02, 0x00, 0x04})
	f.Add(uint64(5), bytes.Repeat([]byte{0x05, 0x09, 0x21, 0x08}, 8))
	f.Fuzz(func(t *testing.T, seed uint64, raw []byte) {
		if len(raw) == 0 {
			t.Skip()
		}
		tbl, q := fuzzTable(raw)
		c, err := CompileRule(tbl)
		if err != nil {
			t.Fatalf("decoder emitted a table CompileRule rejects: %v\n%v", err, tbl)
		}
		rule := c.Rule()
		const n = 256
		// Seed the population from the declared state set: outputs of
		// declared cells are themselves declared, so every reachable
		// state stays inside the table and the bypass invariant below
		// (deterministic table ⇒ zero rule calls) is exact.
		declared := c.States()
		init := func(i int, _ *rand.Rand) int { return declared[i%len(declared)] }

		// Byte-identity with/without the table, on both multiset
		// backends, serial and forced-parallel — plus conservation and,
		// for declared-deterministic tables, a rule-call-free bypass.
		type mk func(opts ...Option) Engine[int]
		for name, build := range map[string]mk{
			"batch": func(opts ...Option) Engine[int] { return NewBatch(n, init, rule, opts...) },
			"batch/par2": func(opts ...Option) Engine[int] {
				return NewBatch(n, init, rule, append(opts, WithParallelism(2))...)
			},
			"dense": func(opts ...Option) Engine[int] { return NewDense(n, init, rule, opts...) },
		} {
			plain := build(WithSeed(seed))
			plain.RunTime(3)
			tabled := build(WithSeed(seed), c.Option())
			tabled.RunTime(3)
			if plain.N() != n || tabled.N() != n {
				t.Fatalf("%s: population not conserved: %d / %d, want %d", name, plain.N(), tabled.N(), n)
			}
			for _, e := range []Engine[int]{plain, tabled} {
				total := 0
				for _, cnt := range e.Counts() {
					total += cnt
				}
				if total != n {
					t.Fatalf("%s: counts sum to %d, want %d", name, total, n)
				}
			}
			pb := mustSnapshotBytes(t, plain)
			tb := mustSnapshotBytes(t, tabled)
			if !bytes.Equal(pb, tb) {
				t.Fatalf("%s: WithTable changed the trajectory\ntable: %v\nplain:  %.300s\ntabled: %.300s",
					name, tbl, pb, tb)
			}
			if c.Deterministic() {
				if cs, ok := EngineCacheStats(tabled); ok && cs.RuleCalls != 0 {
					t.Fatalf("%s: declared-deterministic table made %d rule calls", name, cs.RuleCalls)
				}
			}
		}

		// Statistical equivalence across backends: the mean final count
		// of each state must agree (Welch tolerance) between the
		// sequential reference and both multiset engines.
		const trials = 24
		metric := func(build func(trial uint64) Engine[int]) [][]float64 {
			out := make([][]float64, q)
			for s := range out {
				out[s] = make([]float64, trials)
			}
			for tr := uint64(0); tr < trials; tr++ {
				e := build(tr)
				e.RunTime(2)
				counts := e.Counts()
				for s := 0; s < q; s++ {
					out[s][tr] = float64(counts[s])
				}
			}
			return out
		}
		ref := metric(func(tr uint64) Engine[int] { return New(n, init, rule, WithSeed(seed+1000*tr+1)) })
		for name, build := range map[string]func(tr uint64) Engine[int]{
			"batch": func(tr uint64) Engine[int] {
				return NewBatch(n, init, rule, WithSeed(seed+1000*tr+2), c.Option())
			},
			"dense": func(tr uint64) Engine[int] {
				return NewDense(n, init, rule, WithSeed(seed+1000*tr+3), c.Option())
			},
		} {
			got := metric(build)
			for s := 0; s < q; s++ {
				if err := stats.WelchAgree(ref[s], got[s], 6, 0.06*n); err != nil {
					t.Fatalf("%s: state %d count distribution diverged from sequential: %v\ntable: %v",
						name, s, err, tbl)
				}
			}
		}
	})
}
