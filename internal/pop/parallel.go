// Deterministic intra-trial parallelism: divide-and-conquer batch
// sampling.
//
// # Why a splitter
//
// RunTrials parallelism helps sweeps, but a single n = 10⁸–10⁹ trial
// still advances on one core. The batched engines' hot work — drawing a
// multivariate hypergeometric composition, arranging a sampled multiset
// into slots, distributing a sender block over receiver rows — all
// factorizes recursively: a draw of m items from a class range splits
// into left/right halves with one univariate hypergeometric per node
// (the left half's share is Hyp(total, leftTotal, m)), after which the
// two subtrees are conditionally independent and can run on different
// cores.
//
// # Node-path seeding
//
// Parallel determinism comes from *where randomness lives*, not from
// execution order: every tree node derives its own PCG stream from a
// TrialSeed-style SplitMix64 hash of (draw seed, node path) — the path
// being the node's heap index (root 1, children 2p and 2p+1) — never
// from worker identity or scheduling. A batch draws one word from the
// engine's main stream as the draw seed; everything below is a pure
// function of that word, so `-par 1` and `-par 16` produce byte-identical
// trajectories and the number of workers (or whether subtrees run inline
// or on goroutines) cannot influence a single sample.
//
// # Worker budget
//
// Fan-out is fork-join per parallel region, bounded by effectiveWorkers:
// the engine's parallelism target capped by GOMAXPROCS divided by the
// number of concurrently active RunTrials workers, so trial-level and
// intra-trial parallelism compose without oversubscription (a sweep of W
// trial workers each running a -par P engine schedules ~GOMAXPROCS
// goroutines, not W·P). Because results are worker-count independent,
// the budget can adapt at runtime without affecting reproducibility.
package pop

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
)

// parAutoMinN is the population size above which auto parallelism
// (WithParallelism(0), the default) switches the multiset engines to the
// divide-and-conquer sampling path with a GOMAXPROCS worker target.
// Below it batches are short enough that the legacy serial samplers win;
// the cutoff depends only on n, so auto-resolved runs are reproducible
// across machines with different core counts.
const parAutoMinN = 1 << 24

// resolveParallelism turns the WithParallelism option into the engine's
// sampling mode: 0 keeps the legacy serial samplers, p >= 1 selects the
// node-seeded splitter path with a worker target of p. The resolution is
// fixed at construction (churn does not re-resolve it), so a trajectory's
// sampling algorithm never changes mid-run.
func resolveParallelism(par, n int) int {
	if par > 0 {
		return par
	}
	if n >= parAutoMinN {
		return runtime.GOMAXPROCS(0)
	}
	return 0
}

// activeTrialWorkers counts RunTrials workers currently running, the
// denominator of the intra-trial worker budget.
var activeTrialWorkers atomic.Int64

// effectiveWorkers caps an engine's parallelism target so that the
// product of trial-level and intra-trial workers stays at GOMAXPROCS.
func effectiveWorkers(par int) int {
	return effectiveWorkersFor(par, runtime.GOMAXPROCS(0), int(activeTrialWorkers.Load()))
}

// effectiveWorkersFor is the pure capping rule: par bounded by
// maxprocs/trialWorkers (at least 1). Exposed as a function of its inputs
// for direct unit testing.
func effectiveWorkersFor(par, maxprocs, trialWorkers int) int {
	if par <= 1 {
		return 1
	}
	if trialWorkers < 1 {
		trialWorkers = 1
	}
	budget := maxprocs / trialWorkers
	if budget < 1 {
		budget = 1
	}
	return min(par, budget)
}

// parGroup bounds one parallel region's fan-out: at most workers-1 extra
// goroutines run concurrently (a finished fork returns its slot, so deep
// recursions stay load-balanced without unbounded goroutine counts). A
// nil *parGroup runs everything inline — the serial execution of the
// identical algorithm.
type parGroup struct {
	extra atomic.Int64
	wg    sync.WaitGroup
}

// newParGroup returns a group allowing the given total worker count, or
// nil when workers <= 1 (inline execution).
func newParGroup(workers int) *parGroup {
	if workers <= 1 {
		return nil
	}
	g := &parGroup{}
	g.extra.Store(int64(workers - 1))
	return g
}

// fork runs f on a new goroutine when a worker slot is free, inline
// otherwise. Callers must wait() before reading anything f writes.
func (g *parGroup) fork(f func()) {
	if g != nil {
		for {
			free := g.extra.Load()
			if free <= 0 {
				break
			}
			if g.extra.CompareAndSwap(free, free-1) {
				g.wg.Add(1)
				go func() {
					defer g.wg.Done()
					defer g.extra.Add(1)
					f()
				}()
				return
			}
		}
	}
	f()
}

// wait blocks until every forked goroutine of the region finished.
func (g *parGroup) wait() {
	if g != nil {
		g.wg.Wait()
	}
}

// deriveSeed gives each draw within a batch its own seed domain, so the
// receiver, sender, arrangement and pairing trees of one batch never
// share a node stream.
func deriveSeed(seed, domain uint64) uint64 {
	return splitmix64(seed ^ domain*0x9e3779b97f4a7c15)
}

// nodeRand is the splitter's only randomness source: a PCG stream seeded
// by the SplitMix64 avalanche of (draw seed, node path). Two distinct
// paths yield uncorrelated streams, and a node's stream is independent
// of which worker executes it.
func nodeRand(seed, path uint64) *rand.Rand {
	h := splitmix64(seed ^ splitmix64(path))
	return rand.New(rand.NewPCG(h, splitmix64(h)))
}

// Granularity knobs of the splitter path. They are vars so the tests can
// shrink them and exercise deep recursion and real fan-out at test-scale
// populations; production never mutates them. parMinForkItems and
// pairChunkSlots only schedule work — any value yields the identical
// trajectory — while mvhLeafClasses and seqLeafSlots decide where node
// streams are consumed, so they must be held fixed across runs being
// compared for byte-identity.
var (
	// mvhLeafClasses: composition-splitter nodes covering at most this
	// many classes draw their chain sequentially with the node's stream
	// instead of splitting further.
	mvhLeafClasses = 16
	// parMinForkItems: a subtree is forked to another worker only when
	// its sample is at least this large; smaller subtrees run inline
	// (goroutine handoff would cost more than the draw).
	parMinForkItems int64 = 1 << 11
	// seqLeafSlots: arrangement-splitter leaves of at most this many
	// slots are written and shuffled in place. Even, so batch pairs
	// (2i, 2i+1) never straddle a leaf boundary.
	seqLeafSlots int64 = 1 << 12
	// splitLeafMass: the dense row splitter stops bisecting once a node's
	// receiver mass is at most this and runs the legacy-style sequential
	// multi-row chain under the node's stream. Bisection redistributes
	// the same items at every level (O(R·depth) descents), so leaves must
	// carry enough mass that the tree stays shallow; like the other leaf
	// knobs this one decides where node streams are consumed and must be
	// held fixed across runs compared for byte-identity.
	splitLeafMass int64 = 1 << 11
	// pairChunkSlots: the batched engine's cache-hit pair pass works in
	// independent slot chunks of this size (even, pair-aligned).
	pairChunkSlots int64 = 1 << 12
)

// fenwickPool recycles the node-local Fenwick trees behind chainTail:
// splitter nodes run concurrently, so they cannot share an engine's
// scratch tree the way the legacy serial chains do.
var fenwickPool = sync.Pool{New: func() any { return new(fenwick) }}

// int64Pool recycles the splitter nodes' per-node count vectors — left-
// half compositions, sender shares, leaf-local post multisets. Nodes run
// concurrently, so they cannot share an engine-owned scratch slice the
// way the legacy serial chains do, and allocating one per node made the
// allocator a measurable per-batch cost of the dense pairing path.
// getInts returns a zeroed length-n slice along with its pool pointer;
// the pointer must go back via int64Pool.Put exactly once, after the
// slice's last use — the splitter nodes hand ownership down to whichever
// subtree consumes the buffer.
var int64Pool = sync.Pool{New: func() any { return new([]int64) }}

func getInts(n int) (*[]int64, []int64) {
	p := int64Pool.Get().(*[]int64)
	if cap(*p) < n {
		*p = make([]int64, n)
	} else {
		s := (*p)[:n]
		clear(s)
		*p = s
	}
	return p, *p
}

// chainTail finishes a composition chain the way the legacy samplers do
// (see sampleSlotsByState): once every remaining class expects only a few
// items, the remaining m draws fall back to one weighted descent each
// over the class suffix src[i0:end] (total remaining weight rem), costing
// O(suffix + m·log suffix) instead of one hypergeometric per class. add
// is invoked once per drawn item with the absolute class index; src is
// not mutated (the tree keeps its own weights), so concurrent nodes may
// share a read-only src.
func chainTail(r *rand.Rand, src []int64, i0, end int, rem, m int64, add func(i int, k int64)) {
	tree := fenwickPool.Get().(*fenwick)
	tree.reset(src[i0:end])
	for ; m > 0; m-- {
		i := i0 + tree.findAndDec(r.Int64N(rem))
		rem--
		add(i, 1)
	}
	fenwickPool.Put(tree)
}

// mvhSplitComp draws dst[lo:hi] = the per-class composition of a uniform
// without-replacement sample of size m from counts[lo:hi] (whose total is
// total), recursively: one hypergeometric per node decides the left class
// half's share, subtrees recurse independently under node-path-derived
// streams, and ranges of at most mvhLeafClasses classes run the plain
// chain. cum is the exclusive prefix-sum array of counts (cum[i] =
// Σ counts[:i]), shared read-only across workers; dst[lo:hi] must be
// zeroed. The result is distributed exactly as the sequential chain —
// multivariate hypergeometric draws factorize over any class partition —
// and is a pure function of (seed, counts), independent of worker count.
func mvhSplitComp(g *parGroup, seed, path uint64, counts, cum []int64, lo, hi int, total, m int64, dst []int64) {
	for {
		switch {
		case m == 0:
			return
		case m == total:
			// Forced: every remaining member of the range is sampled.
			for i := lo; i < hi; i++ {
				dst[i] = counts[i]
			}
			return
		case int64(hi-lo) > int64(mvhLeafClasses) && m < 2*int64(hi-lo):
			// Light node: fewer items than half the classes — per-item
			// descents beat both bisecting and a per-class chain.
			chainTail(nodeRand(seed, path), counts, lo, hi, total, m,
				func(i int, k int64) { dst[i] += k })
			return
		case hi-lo <= mvhLeafClasses:
			r := nodeRand(seed, path)
			rem := total
			for i := lo; i < hi && m > 0; i++ {
				c := counts[i]
				if c == 0 {
					continue
				}
				if lightDraw(c, m, batchHeavyMean, rem) && m < 2*int64(hi-i) {
					chainTail(r, counts, i, hi, rem, m,
						func(j int, k int64) { dst[j] += k })
					return
				}
				var k int64
				if rem == m {
					k = c
				} else {
					k = hypergeometric(r, rem, c, m)
				}
				rem -= c
				m -= k
				dst[i] = k
			}
			if m != 0 {
				panic("pop: composition splitter under-filled")
			}
			return
		}
		mid := (lo + hi) / 2
		leftTot := cum[mid] - cum[lo]
		kL := int64(0)
		if leftTot > 0 {
			kL = hypergeometric(nodeRand(seed, path), total, leftTot, m)
		}
		kR := m - kL
		lPath, rPath := 2*path, 2*path+1
		if g != nil && min(kL, kR) >= parMinForkItems {
			rTot, rHi := total-leftTot, hi
			g.fork(func() {
				mvhSplitComp(g, seed, rPath, counts, cum, mid, rHi, rTot, kR, dst)
			})
			hi, total, m, path = mid, leftTot, kL, lPath
			continue
		}
		// Tail-recurse into the larger half, recurse into the smaller.
		if kL >= kR {
			mvhSplitComp(g, seed, rPath, counts, cum, mid, hi, total-leftTot, kR, dst)
			hi, total, m, path = mid, leftTot, kL, lPath
		} else {
			mvhSplitComp(g, seed, lPath, counts, cum, lo, mid, leftTot, kL, dst)
			lo, total, m, path = mid, total-leftTot, kR, rPath
		}
	}
}

// multisetSeqSplit writes a uniformly random arrangement of the multiset
// comp (class id i appearing comp[i] times, Σ comp = len(out)) into out:
// the left half of the positions receives a multivariate hypergeometric
// share of the multiset (drawn with the node's stream), halves recurse
// independently, and leaves of at most seqLeafSlots positions are written
// as runs and Fisher–Yates shuffled in place. Splitting a uniform
// arrangement at any fixed position yields exactly this law, so the
// result is distributed identically to sampling slots one by one without
// replacement. comp is consumed. Halves are kept even so consecutive
// pair boundaries never straddle subtrees. owned, when non-nil, is
// comp's int64Pool pointer: this invocation's subtree is the buffer's
// last reader and returns it to the pool on the way out (the root comp
// is engine-owned and passes nil).
func multisetSeqSplit(g *parGroup, seed, path uint64, comp []int64, out []int32, owned *[]int64) {
	for {
		m := int64(len(out))
		if m <= seqLeafSlots {
			r := nodeRand(seed, path)
			w := 0
			for id, c := range comp {
				for ; c > 0; c-- {
					out[w] = int32(id)
					w++
				}
			}
			if int64(w) != m {
				panic("pop: arrangement splitter multiset/slot mismatch")
			}
			for i := len(out) - 1; i > 0; i-- {
				j := r.IntN(i + 1)
				out[i], out[j] = out[j], out[i]
			}
			break
		}
		mL := (m / 2) &^ 1 // even: pair-aligned boundary
		lCompP, lComp := getInts(len(comp))
		r := nodeRand(seed, path)
		rem := m
		left := mL
		for i, c := range comp {
			if left == 0 {
				break
			}
			if c == 0 {
				continue
			}
			if lightDraw(c, left, batchHeavyMean, rem) && left < 2*int64(len(comp)-i) {
				chainTail(r, comp, i, len(comp), rem, left,
					func(j int, k int64) { lComp[j] += k; comp[j] -= k })
				left = 0
				break
			}
			var k int64
			if rem == left {
				k = c
			} else {
				k = hypergeometric(r, rem, c, left)
			}
			rem -= c
			left -= k
			lComp[i] = k
			comp[i] = c - k
		}
		if left != 0 {
			panic("pop: arrangement splitter under-filled")
		}
		lPath, rPath := 2*path, 2*path+1
		lOut, rOut := out[:mL], out[mL:]
		if g != nil && min(mL, m-mL) >= parMinForkItems {
			g.fork(func() { multisetSeqSplit(g, seed, lPath, lComp, lOut, lCompP) })
			out, path = rOut, rPath
			continue
		}
		multisetSeqSplit(g, seed, lPath, lComp, lOut, lCompP)
		out, path = rOut, rPath
	}
	if owned != nil {
		int64Pool.Put(owned)
	}
}

// collisionFreeRun inverse-transform samples the collision-free run
// length ℓ shared by both batched engines: after t collision-free
// interactions the next is collision-free with probability
// (n−2t)(n−2t−1)/(n(n−1)). A cap just ends the batch early with no
// collision interaction, which composes exactly. It consumes exactly one
// Float64 from rng.
func collisionFreeRun(rng *rand.Rand, n, maxPairs int64) (ell int64, collided bool) {
	u := rng.Float64()
	surv := 1.0
	invNN := 1 / (float64(n) * float64(n-1))
	for ell < maxPairs {
		a := float64(n - 2*ell)
		next := surv * a * (a - 1) * invNN
		if next <= u {
			return ell, true
		}
		surv = next
		ell++
	}
	return ell, false
}

// removeCountsSplit is removeCountsChain's splitter form, used by the
// multiset engines whenever the node-seeded sampling path is active: the
// leavers' composition is drawn by mvhSplitComp from (seed), then debited
// through debit in id order. One seed word fully determines the removal,
// so churn is byte-identical across worker counts.
func removeCountsSplit(workers int, seed uint64, counts []int64, total, k int64, debit func(id int32, d int64), comp, cum []int64) ([]int64, []int64) {
	q := len(counts)
	comp = resizeZero(comp, q)
	cum = prefixSums(cum, counts)
	var g *parGroup
	if k >= parMinForkItems {
		g = newParGroup(workers)
	}
	mvhSplitComp(g, seed, 1, counts, cum, 0, q, total, k, comp)
	g.wait()
	for id, d := range comp {
		if d > 0 {
			debit(int32(id), -d)
		}
	}
	return comp, cum
}

// prefixSums fills dst (reusing its backing array) with the exclusive
// prefix sums of counts: dst[i] = Σ counts[:i], len(dst) = len(counts)+1.
func prefixSums(dst, counts []int64) []int64 {
	if cap(dst) < len(counts)+1 {
		dst = make([]int64, len(counts)+1)
	}
	dst = dst[:len(counts)+1]
	dst[0] = 0
	for i, c := range counts {
		dst[i+1] = dst[i] + c
	}
	return dst
}
