package pop

import (
	"fmt"
	"math/bits"
	"testing"
)

// TestTrialSeedNoCollisions: across a grid far denser than any real
// experiment suite — many experiment labels × many trials × several base
// seeds — every derived seed is distinct. The pre-TrialSeed scheme
// (base + trial·prime with a per-site prime) fails this immediately:
// trial 29 under prime 17 equals trial 17 under prime 29.
func TestTrialSeedNoCollisions(t *testing.T) {
	seen := make(map[uint64]string, 3*40*500)
	for _, base := range []uint64{0, 1, 0xdeadbeef} {
		for e := 0; e < 40; e++ {
			exp := fmt.Sprintf("E%d", e)
			for tr := 0; tr < 500; tr++ {
				s := TrialSeed(base, exp, tr)
				id := fmt.Sprintf("base=%d %s tr=%d", base, exp, tr)
				if prev, ok := seen[s]; ok {
					t.Fatalf("seed collision: %s and %s both derive %#x", prev, id, s)
				}
				seen[s] = id
			}
		}
	}
}

// TestTrialSeedOldSchemeCollides documents the bug TrialSeed fixes: the
// linear scheme collides across experiments by construction.
func TestTrialSeedOldSchemeCollides(t *testing.T) {
	const base = 1
	old := func(prime uint64, tr int) uint64 { return base + uint64(tr)*prime }
	if old(17, 29) != old(29, 17) {
		t.Fatal("expected the linear scheme to collide (test is wrong)")
	}
	if TrialSeed(base, "E-accuracy", 29) == TrialSeed(base, "E-convergence", 17) {
		t.Error("TrialSeed reproduced the cross-experiment collision")
	}
}

// TestTrialSeedDeterministic: same inputs, same seed — and a golden value
// so the derivation cannot drift silently between releases (drift would
// invalidate every recorded sweep JSONL).
func TestTrialSeedDeterministic(t *testing.T) {
	if a, b := TrialSeed(7, "F2", 3), TrialSeed(7, "F2", 3); a != b {
		t.Fatalf("TrialSeed not deterministic: %#x vs %#x", a, b)
	}
	if got := TrialSeed(0, "", 0); got != splitmix64(splitmix64(0x517cc1b727220a95)) {
		t.Fatalf("TrialSeed(0, \"\", 0) = %#x diverged from its definition", got)
	}
}

// TestTrialSeedAvalanche: flipping a single bit of the base or the trial
// index flips close to half the output bits on average (the SplitMix64
// finalizer's avalanche property). A mean Hamming distance far from 32
// would mean nearby trials get correlated streams.
func TestTrialSeedAvalanche(t *testing.T) {
	checkMean := func(name string, mean float64) {
		t.Helper()
		if mean < 28 || mean > 36 {
			t.Errorf("%s: mean Hamming distance %.2f, want ≈ 32", name, mean)
		}
	}
	const samples = 2000
	total := 0
	for i := 0; i < samples; i++ {
		base := uint64(i) * 0x9e3779b97f4a7c15
		bit := uint64(1) << (i % 64)
		total += bits.OnesCount64(TrialSeed(base, "E1", 5) ^ TrialSeed(base^bit, "E1", 5))
	}
	checkMean("base flip", float64(total)/samples)

	total = 0
	for i := 0; i < samples; i++ {
		tr := i * 7
		bit := 1 << (i % 16)
		total += bits.OnesCount64(TrialSeed(1, "E1", tr) ^ TrialSeed(1, "E1", tr^bit))
	}
	checkMean("trial flip", float64(total)/samples)

	// Adjacent trials — the most common access pattern — must also be
	// uncorrelated, not just single-bit flips.
	total = 0
	for i := 0; i < samples; i++ {
		total += bits.OnesCount64(TrialSeed(1, "E1", i) ^ TrialSeed(1, "E1", i+1))
	}
	checkMean("adjacent trials", float64(total)/samples)
}
