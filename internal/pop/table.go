// Declarative transition tables: the protocol DSL.
//
// A Table[S] is a population protocol written as data — a map from
// ordered (receiver, sender) state pairs to outputs, in the style of
// ppsim's `{(a,b): (u,u), ...}` dictionaries — with optional randomized
// entries given as weighted output distributions (Choose). CompileRule
// turns a table into an executable Rule[S] plus compile-time metadata the
// engines can exploit:
//
//   - The declared state set, in a canonical order (sorted by each
//     state's JSON encoding, the same order snapshots use), so every
//     compile of the same table yields identical ids.
//
//   - A deterministic-vs-randomized classification per pair. Pairs
//     absent from the table — including any pair touching a state the
//     table never mentions — are null transitions (both agents keep
//     their states), which is itself deterministic.
//
// Passing the compiled table to an engine via WithTable (or
// Compiled.Option) lets the multiset backends resolve declared
// deterministic transitions by direct table lookup, bypassing the
// randomness-counting cache probe entirely: a cold pair costs an array
// read instead of a counted rule invocation, and a declared-deterministic
// table never calls the rule at all. The bypass is exact — it returns
// precisely the states the compiled rule would have returned, interned in
// the same order — so trajectories (and snapshots) are byte-identical
// with and without WithTable.
//
// # Engine integration: why declared states are NOT pre-inserted
//
// The engines intern declared states lazily, exactly when a transition
// first produces them, rather than pre-seeding their counts vectors from
// the declared set. Pre-seeding would change len(counts) and therefore
// the heavy/light switch points of the hypergeometric samplers — which
// consume the engine rng — breaking byte-identity against the same rule
// run without the table. Instead the compile-time interning lives in
// Compiled (canonical table ids) and each engine carries a cheap side-car
// translation (tableView) between its own ids and the table's, rebuilt on
// compaction; the position map is merely pre-sized for the declared set.
package pop

import (
	"fmt"
	"math/rand/v2"
)

// Pair is an ordered (receiver, sender) input of a transition table
// entry.
type Pair[S comparable] struct {
	Rec, Sen S
}

// Branch is one weighted output of a randomized transition: the
// interaction results in (Rec, Sen) with probability W over the sum of
// the entry's weights.
type Branch[S comparable] struct {
	W        int64
	Rec, Sen S
}

// Outcome is the right-hand side of one table entry: a single output
// pair (To) or a weighted distribution over output pairs (Choose).
type Outcome[S comparable] struct {
	branches []Branch[S]
}

// To is the deterministic outcome: the pair maps to (rec, sen) with
// probability 1.
func To[S comparable](rec, sen S) Outcome[S] {
	return Outcome[S]{branches: []Branch[S]{{W: 1, Rec: rec, Sen: sen}}}
}

// Choose is the randomized outcome: the pair maps to one of the branches
// with probability proportional to its weight. Branches with equal
// outputs merge; a distribution that collapses to a single output
// compiles as deterministic.
func Choose[S comparable](branches ...Branch[S]) Outcome[S] {
	return Outcome[S]{branches: branches}
}

// Table is a declarative population protocol: a map from ordered
// (receiver, sender) pairs to outcomes. Pairs absent from the table are
// null transitions — both agents keep their states — so a protocol is
// written as exactly its non-trivial transitions.
type Table[S comparable] map[Pair[S]]Outcome[S]

// tableDenseMaxStates bounds the declared state count for which the
// compiled form is a flat q×q cell matrix (8·q² bytes — 8 MiB at the
// cutoff); larger tables fall back to a sparse cell map holding only
// non-identity entries.
const tableDenseMaxStates = 1024

// randSentinel marks a randomized cell in the dense matrix. It cannot
// collide with a packed output pair: packed ids are bounded by the
// declared state count.
const randSentinel = ^uint64(0)

// cbranch is one compiled randomized branch: cumulative weight and
// packed output ids.
type cbranch struct {
	cum    int64
	oa, ob int32
}

// randCell is one compiled randomized table cell.
type randCell struct {
	total    int64
	branches []cbranch
}

// Compiled is a compiled transition table: an executable rule plus the
// metadata the engines exploit (declared state set in canonical order,
// per-pair deterministic/randomized classification). Compile once and
// share freely — a Compiled is immutable after CompileRule returns and
// safe for concurrent use by independent engines.
type Compiled[S comparable] struct {
	states []S                  // declared states in canonical (JSON-sorted) order
	index  map[S]int32          // state → table id
	q      int32                // len(states)
	det    []uint64             // q×q packed cells (q <= tableDenseMaxStates); randSentinel = randomized
	cells  map[uint64]uint64    // sparse fallback: non-identity deterministic cells
	rcells map[uint64]*randCell // randomized cells (both representations)
}

// CompileRule compiles a declarative transition table into an executable
// rule plus metadata. It errors on an empty table, an entry with no
// branches, or a non-positive branch weight. Distinct declared states
// must have distinct JSON encodings (the canonical order sorts by them),
// which holds for every JSON-marshalable state type whose encoding is
// faithful.
func CompileRule[S comparable](t Table[S]) (*Compiled[S], error) {
	if len(t) == 0 {
		return nil, fmt.Errorf("pop: cannot compile an empty transition table")
	}
	set := make(map[S]struct{}, 4*len(t))
	for p, out := range t {
		set[p.Rec] = struct{}{}
		set[p.Sen] = struct{}{}
		if len(out.branches) == 0 {
			return nil, fmt.Errorf("pop: table entry (%v, %v) has no outputs (build outcomes with To or Choose)", p.Rec, p.Sen)
		}
		for _, br := range out.branches {
			if br.W <= 0 {
				return nil, fmt.Errorf("pop: table entry (%v, %v) has branch weight %d, want > 0", p.Rec, p.Sen, br.W)
			}
			set[br.Rec] = struct{}{}
			set[br.Sen] = struct{}{}
		}
	}
	states, err := sortedStates(set)
	if err != nil {
		return nil, err
	}
	c := &Compiled[S]{
		states: states,
		index:  make(map[S]int32, 2*len(states)),
		q:      int32(len(states)),
		rcells: map[uint64]*randCell{},
	}
	for id, s := range states {
		c.index[s] = int32(id)
	}
	q := int64(c.q)
	if c.q <= tableDenseMaxStates {
		c.det = make([]uint64, q*q)
		for a := int64(0); a < q; a++ {
			for b := int64(0); b < q; b++ {
				c.det[a*q+b] = packCell(int32(a), int32(b))
			}
		}
	} else {
		c.cells = make(map[uint64]uint64, len(t))
	}
	for p, out := range t {
		a, b := c.index[p.Rec], c.index[p.Sen]
		key := cellKey(a, b)
		merged := mergeBranches(c, out.branches)
		if len(merged) == 1 {
			oa, ob := merged[0].oa, merged[0].ob
			if c.det != nil {
				c.det[int64(a)*q+int64(b)] = packCell(oa, ob)
			} else if oa != a || ob != b {
				c.cells[key] = packCell(oa, ob)
			}
			continue
		}
		var total int64
		rc := &randCell{branches: make([]cbranch, 0, len(merged))}
		for _, br := range merged {
			total += br.cum // cum holds the merged weight pre-accumulation
			rc.branches = append(rc.branches, cbranch{cum: total, oa: br.oa, ob: br.ob})
		}
		rc.total = total
		c.rcells[key] = rc
		if c.det != nil {
			c.det[int64(a)*q+int64(b)] = randSentinel
		}
	}
	return c, nil
}

// MustCompile is CompileRule, panicking on error — for package-level
// protocol definitions whose tables are statically well-formed.
func MustCompile[S comparable](t Table[S]) *Compiled[S] {
	c, err := CompileRule(t)
	if err != nil {
		panic(err)
	}
	return c
}

// mergeBranches folds branches with equal outputs into one (summing
// weights), preserving first-appearance order so compilation is
// deterministic. The returned cbranches carry raw merged weights in cum.
func mergeBranches[S comparable](c *Compiled[S], branches []Branch[S]) []cbranch {
	merged := make([]cbranch, 0, len(branches))
	at := make(map[uint64]int, len(branches))
	for _, br := range branches {
		oa, ob := c.index[br.Rec], c.index[br.Sen]
		key := cellKey(oa, ob)
		if i, ok := at[key]; ok {
			merged[i].cum += br.W
			continue
		}
		at[key] = len(merged)
		merged = append(merged, cbranch{cum: br.W, oa: oa, ob: ob})
	}
	return merged
}

func packCell(oa, ob int32) uint64 { return uint64(uint32(oa))<<32 | uint64(uint32(ob)) }

func cellKey(a, b int32) uint64 { return uint64(uint32(a))<<32 | uint64(uint32(b)) }

// cell classifies the ordered table-id pair (a, b): deterministic cells
// return their packed outputs, randomized ones report rnd.
func (c *Compiled[S]) cell(a, b int32) (oa, ob int32, rnd bool) {
	if c.det != nil {
		v := c.det[int64(a)*int64(c.q)+int64(b)]
		if v == randSentinel {
			return 0, 0, true
		}
		return int32(v >> 32), int32(uint32(v)), false
	}
	key := cellKey(a, b)
	if _, ok := c.rcells[key]; ok {
		return 0, 0, true
	}
	if v, ok := c.cells[key]; ok {
		return int32(v >> 32), int32(uint32(v)), false
	}
	return a, b, false
}

// Rule returns the executable form of the table: a Rule[S] evaluating
// table entries (randomized entries draw one word from r, so the
// engines' randomness-counting cache correctly declines to cache them)
// and treating absent pairs — including pairs touching undeclared states
// — as null transitions.
func (c *Compiled[S]) Rule() Rule[S] {
	return func(rec, sen S, r *rand.Rand) (S, S) {
		a, okA := c.index[rec]
		b, okB := c.index[sen]
		if !okA || !okB {
			return rec, sen
		}
		oa, ob, rnd := c.cell(a, b)
		if !rnd {
			return c.states[oa], c.states[ob]
		}
		rc := c.rcells[cellKey(a, b)]
		u := r.Int64N(rc.total)
		for _, br := range rc.branches {
			if u < br.cum {
				return c.states[br.oa], c.states[br.ob]
			}
		}
		panic("pop: compiled table branch walk out of range")
	}
}

// Option returns the engine option attaching this compiled table
// (WithTable(c)): the multiset backends then resolve its deterministic
// transitions by direct lookup, bypassing the transition cache.
func (c *Compiled[S]) Option() Option { return WithTable(c) }

// States returns the declared state set in canonical order (a copy).
func (c *Compiled[S]) States() []S { return append([]S(nil), c.states...) }

// NumStates returns the number of declared states.
func (c *Compiled[S]) NumStates() int { return len(c.states) }

// Deterministic reports whether every table entry is deterministic — the
// class for which the engines' table bypass eliminates rule calls
// entirely.
func (c *Compiled[S]) Deterministic() bool { return len(c.rcells) == 0 }

// RandomizedPairs returns the input pairs classified as randomized, in
// canonical id order.
func (c *Compiled[S]) RandomizedPairs() []Pair[S] {
	out := make([]Pair[S], 0, len(c.rcells))
	for a := int32(0); a < c.q; a++ {
		for b := int32(0); b < c.q; b++ {
			if _, ok := c.rcells[cellKey(a, b)]; ok {
				out = append(out, Pair[S]{Rec: c.states[a], Sen: c.states[b]})
			}
		}
	}
	return out
}

// tableView is an engine's side-car translation between its own interned
// ids and a compiled table's canonical ids. The engine id space mutates
// (interning, compaction, restore); the table's never does. tblOf grows
// in lockstep with the engine's interning table and engOf is the partial
// inverse over declared states.
type tableView[S comparable] struct {
	c     *Compiled[S]
	tblOf []int32 // engine id → table id, -1 for undeclared states
	engOf []int32 // table id → engine id, -1 while not interned
}

func newTableView[S comparable](c *Compiled[S]) *tableView[S] {
	v := &tableView[S]{c: c, engOf: make([]int32, c.q)}
	for i := range v.engOf {
		v.engOf[i] = -1
	}
	return v
}

// attachTable resolves the WithTable option for an engine with state
// type S, panicking when the compiled table was built for another type.
func attachTable[S comparable](o options) *tableView[S] {
	if o.table == nil {
		return nil
	}
	c, ok := o.table.(*Compiled[S])
	if !ok {
		panic(fmt.Sprintf("pop: WithTable holds a %T, which does not match the engine's state type", o.table))
	}
	return newTableView(c)
}

// noteIntern records a freshly interned engine id (called from the
// engines' intern, which assigns ids densely).
func (v *tableView[S]) noteIntern(s S, id int32) {
	if int(id) != len(v.tblOf) {
		panic("pop: tableView out of sync with the interning table")
	}
	t := int32(-1)
	if tid, ok := v.c.index[s]; ok {
		t = tid
		v.engOf[tid] = id
	}
	v.tblOf = append(v.tblOf, t)
}

// rebuild re-derives both translations from a rebuilt interning table
// (compaction, delegation re-entry, restore).
func (v *tableView[S]) rebuild(states []S) {
	v.tblOf = v.tblOf[:0]
	for i := range v.engOf {
		v.engOf[i] = -1
	}
	for id, s := range states {
		t := int32(-1)
		if tid, ok := v.c.index[s]; ok {
			t = tid
			v.engOf[tid] = int32(id)
		}
		v.tblOf = append(v.tblOf, t)
	}
}

// probe resolves the ordered engine-id pair against the table: ok
// reports a declared deterministic transition (including declared null
// transitions) and returns its output TABLE ids — the caller translates
// back through engOf, interning outputs not yet present. Pairs touching
// undeclared states and randomized cells report ok = false (they take
// the rule path).
func (v *tableView[S]) probe(ida, idb int32) (toa, tob int32, ok bool) {
	ta, tb := v.tblOf[ida], v.tblOf[idb]
	if ta < 0 || tb < 0 {
		return 0, 0, false
	}
	oa, ob, rnd := v.c.cell(ta, tb)
	if rnd {
		return 0, 0, false
	}
	return oa, ob, true
}

// probeRO is probe restricted to transitions whose outputs are already
// interned, returning ENGINE ids. It mutates nothing, so the parallel
// read-only phases can consult it concurrently; a transition producing a
// not-yet-interned state reports ok = false and stays on the serial miss
// path (which interns in slot order, preserving byte-identity).
func (v *tableView[S]) probeRO(ida, idb int32) (oa, ob int32, ok bool) {
	toa, tob, ok := v.probe(ida, idb)
	if !ok {
		return 0, 0, false
	}
	ea, eb := v.engOf[toa], v.engOf[tob]
	if ea < 0 || eb < 0 {
		return 0, 0, false
	}
	return ea, eb, true
}

// posSizeFor sizes an engine's interning position map: generous for the
// declared state set when a table is attached, the historical default
// otherwise.
func posSizeFor[S comparable](v *tableView[S]) int {
	if v == nil {
		return 64
	}
	return max(64, 2*int(v.c.q))
}

// CacheStats is the transition-resolution accounting surfaced per run
// (cmd/popsim -stats): how many pair transitions were resolved by the
// declared-table bypass, the deterministic-transition cache, and actual
// rule invocations. For a delegated DenseSim the counters include the
// inner engine's share of the current delegation.
type CacheStats struct {
	TableHits int64
	CacheHits int64
	RuleCalls int64
}

// EngineCacheStats extracts the transition-resolution counters from a
// multiset engine; ok is false for backends without a transition cache
// (the sequential engine calls the rule every interaction).
func EngineCacheStats[S comparable](e Engine[S]) (CacheStats, bool) {
	switch v := e.(type) {
	case *BatchSim[S]:
		st := v.Stats()
		return CacheStats{TableHits: st.TableHits, CacheHits: st.CacheHits, RuleCalls: st.RuleCalls}, true
	case *DenseSim[S]:
		st := v.Stats()
		cs := CacheStats{TableHits: st.TableHits, CacheHits: st.CacheHits, RuleCalls: st.RuleCalls}
		if v.inner != nil {
			ist := v.inner.Stats()
			cs.TableHits += ist.TableHits
			cs.CacheHits += ist.CacheHits
			cs.RuleCalls += ist.RuleCalls
		}
		return cs, true
	}
	return CacheStats{}, false
}
