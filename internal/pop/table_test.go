// Tests for the declarative transition-table DSL: compile errors,
// metadata (canonical state order, deterministic/randomized
// classification, branch merging), rule semantics against the handwritten
// reference, randomized branch distributions, the declared-table bypass
// accounting, and the byte-identity guarantee — a table-compiled rule run
// with WithTable must produce the identical trajectory, snapshot bytes
// and restored continuation as the same rule without it, on every
// multiset backend and parallelism variant.
package pop

import (
	"bytes"
	"math"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"
)

// amTable is the 3-state approximate-majority protocol of batch_test.go's
// amRule, written as a table: blank receivers adopt the sender's opinion,
// opposed receivers blank out.
func amTable() Table[int] {
	return Table[int]{
		{Rec: 1, Sen: -1}: To(0, -1),
		{Rec: -1, Sen: 1}: To(0, 1),
		{Rec: 0, Sen: 1}:  To(1, 1),
		{Rec: 0, Sen: -1}: To(-1, -1),
	}
}

// coinTable mixes deterministic entries with a 3:1 randomized branch, so
// with-table runs exercise both the bypass and the rule path.
func coinTable() Table[int] {
	return Table[int]{
		{Rec: 0, Sen: 1}: Choose(
			Branch[int]{W: 3, Rec: 1, Sen: 1},
			Branch[int]{W: 1, Rec: 0, Sen: 0},
		),
		{Rec: 1, Sen: 2}: To(2, 2),
		{Rec: 2, Sen: 0}: To(0, 0),
	}
}

func TestCompileRuleErrors(t *testing.T) {
	if _, err := CompileRule(Table[int]{}); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Errorf("empty table: err = %v, want empty-table error", err)
	}
	if _, err := CompileRule(Table[int]{{Rec: 0, Sen: 1}: Choose[int]()}); err == nil || !strings.Contains(err.Error(), "no outputs") {
		t.Errorf("empty outcome: err = %v, want no-outputs error", err)
	}
	for _, w := range []int64{0, -3} {
		tbl := Table[int]{{Rec: 0, Sen: 1}: Choose(Branch[int]{W: w, Rec: 1, Sen: 1})}
		if _, err := CompileRule(tbl); err == nil || !strings.Contains(err.Error(), "weight") {
			t.Errorf("weight %d: err = %v, want weight error", w, err)
		}
	}
}

func TestCompileMetadata(t *testing.T) {
	am := MustCompile(amTable())
	if got, want := am.States(), []int{-1, 0, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("am States() = %v, want %v", got, want)
	}
	if am.NumStates() != 3 {
		t.Errorf("am NumStates() = %d, want 3", am.NumStates())
	}
	if !am.Deterministic() {
		t.Error("am Deterministic() = false, want true")
	}
	if got := am.RandomizedPairs(); len(got) != 0 {
		t.Errorf("am RandomizedPairs() = %v, want none", got)
	}

	coin := MustCompile(coinTable())
	if coin.Deterministic() {
		t.Error("coin Deterministic() = true, want false")
	}
	if got, want := coin.RandomizedPairs(), []Pair[int]{{Rec: 0, Sen: 1}}; !reflect.DeepEqual(got, want) {
		t.Errorf("coin RandomizedPairs() = %v, want %v", got, want)
	}

	// Branches with equal outputs merge; a single merged branch compiles
	// as deterministic.
	merged := MustCompile(Table[int]{
		{Rec: 0, Sen: 1}: Choose(
			Branch[int]{W: 1, Rec: 1, Sen: 1},
			Branch[int]{W: 2, Rec: 1, Sen: 1},
		),
	})
	if !merged.Deterministic() {
		t.Error("collapsed Choose: Deterministic() = false, want true")
	}
}

func TestCompiledRuleMatchesHandwritten(t *testing.T) {
	rule := MustCompile(amTable()).Rule()
	r := rand.New(rand.NewPCG(1, 1))
	for _, rec := range []int{-1, 0, 1} {
		for _, sen := range []int{-1, 0, 1} {
			wa, wb := amRule(rec, sen, r)
			ga, gb := rule(rec, sen, r)
			if ga != wa || gb != wb {
				t.Errorf("rule(%d, %d) = (%d, %d), want (%d, %d)", rec, sen, ga, gb, wa, wb)
			}
		}
	}
	// Pairs touching undeclared states are null transitions.
	if a, b := rule(7, 1, r); a != 7 || b != 1 {
		t.Errorf("rule(7, 1) = (%d, %d), want identity", a, b)
	}
}

func TestCompiledRuleRandomizedDistribution(t *testing.T) {
	rule := MustCompile(coinTable()).Rule()
	r := rand.New(rand.NewPCG(7, 9))
	const draws = 40000
	heads := 0
	for i := 0; i < draws; i++ {
		a, b := rule(0, 1, r)
		switch {
		case a == 1 && b == 1:
			heads++
		case a == 0 && b == 0:
		default:
			t.Fatalf("rule(0, 1) = (%d, %d), want (1,1) or (0,0)", a, b)
		}
	}
	if p := float64(heads) / draws; math.Abs(p-0.75) > 0.02 {
		t.Errorf("branch weight 3:1: observed p = %.4f, want 0.75 ± 0.02", p)
	}
}

// tableEngines builds the multiset-engine variants the bypass tests run
// over: batched and dense, serial and forced-parallel.
func tableEngines(n int, init func(int, *rand.Rand) int, rule Rule[int], opts ...Option) map[string]Engine[int] {
	return map[string]Engine[int]{
		"batch":      NewBatch(n, init, rule, opts...),
		"batch/par2": NewBatch(n, init, rule, append([]Option{WithParallelism(2)}, opts...)...),
		"dense":      NewDense(n, init, rule, opts...),
		"dense/par2": NewDense(n, init, rule, append([]Option{WithParallelism(2)}, opts...)...),
	}
}

func amInit(i int, _ *rand.Rand) int { return i%3 - 1 }

func TestTableBypassEliminatesRuleCalls(t *testing.T) {
	c := MustCompile(amTable())
	for name, e := range tableEngines(4096, amInit, c.Rule(), WithSeed(11), c.Option()) {
		e.RunTime(8)
		cs, ok := EngineCacheStats(e)
		if !ok {
			t.Fatalf("%s: EngineCacheStats not available", name)
		}
		if cs.RuleCalls != 0 {
			t.Errorf("%s: declared-deterministic table made %d rule calls, want 0", name, cs.RuleCalls)
		}
		if cs.TableHits == 0 {
			t.Errorf("%s: TableHits = 0, want > 0", name)
		}
	}
	// Without the table the same rule goes through the counting cache.
	e := NewBatch(4096, amInit, c.Rule(), WithSeed(11))
	e.RunTime(8)
	if cs, _ := EngineCacheStats(e); cs.RuleCalls == 0 || cs.TableHits != 0 {
		t.Errorf("no table: stats = %+v, want RuleCalls > 0 and TableHits == 0", cs)
	}
}

func TestEngineCacheStatsSequential(t *testing.T) {
	e := New(64, amInit, amRule, WithSeed(3))
	if _, ok := EngineCacheStats[int](e); ok {
		t.Error("sequential engine reported cache stats, want ok = false")
	}
}

func TestWithTableTypeMismatchPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Error("mismatched WithTable state type did not panic")
		}
	}()
	NewBatch(64, func(i int, _ *rand.Rand) string { return "x" },
		func(a, b string, _ *rand.Rand) (string, string) { return a, b },
		WithTable(MustCompile(amTable())))
}

func mustSnapshotBytes[S comparable](t *testing.T, e Engine[S]) []byte {
	t.Helper()
	s, ok := e.(interface{ Snapshot() (*Snapshot[S], error) })
	if !ok {
		t.Fatalf("engine %T has no Snapshot", e)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	raw, err := snap.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	return raw
}

// TestTableByteIdentity is the golden guarantee: for the same seed and
// initial configuration, (a) the handwritten rule, (b) the compiled rule
// without a table, and (c) the compiled rule with WithTable produce
// byte-identical snapshots on every backend. The coin variant checks the
// mixed case, where randomized pairs take the rule path while
// deterministic ones use the bypass.
func TestTableByteIdentity(t *testing.T) {
	cases := []struct {
		name string
		tbl  Table[int]
		hand Rule[int]
		init func(int, *rand.Rand) int
	}{
		{"approxmajority", amTable(), amRule, amInit},
		{"coin", coinTable(), nil, func(i int, _ *rand.Rand) int { return i % 3 }},
	}
	for _, tc := range cases {
		c := MustCompile(tc.tbl)
		rule := c.Rule()
		for _, seed := range []uint64{5, 12} {
			build := func(mk func() Engine[int]) []byte {
				e := mk()
				e.RunTime(10)
				return mustSnapshotBytes(t, e)
			}
			variants := map[string][3]func() Engine[int]{
				"seq": {
					func() Engine[int] { return New(1000, tc.init, rule, WithSeed(seed)) },
					func() Engine[int] { return New(1000, tc.init, rule, WithSeed(seed), c.Option()) },
					func() Engine[int] { return New(1000, tc.init, amRule, WithSeed(seed)) },
				},
				"batch": {
					func() Engine[int] { return NewBatch(1000, tc.init, rule, WithSeed(seed)) },
					func() Engine[int] { return NewBatch(1000, tc.init, rule, WithSeed(seed), c.Option()) },
					func() Engine[int] { return NewBatch(1000, tc.init, amRule, WithSeed(seed)) },
				},
				"batch/par2": {
					func() Engine[int] { return NewBatch(1000, tc.init, rule, WithSeed(seed), WithParallelism(2)) },
					func() Engine[int] {
						return NewBatch(1000, tc.init, rule, WithSeed(seed), WithParallelism(2), c.Option())
					},
					func() Engine[int] { return NewBatch(1000, tc.init, amRule, WithSeed(seed), WithParallelism(2)) },
				},
				"dense": {
					func() Engine[int] { return NewDense(1000, tc.init, rule, WithSeed(seed)) },
					func() Engine[int] { return NewDense(1000, tc.init, rule, WithSeed(seed), c.Option()) },
					func() Engine[int] { return NewDense(1000, tc.init, amRule, WithSeed(seed)) },
				},
				"dense/par2": {
					func() Engine[int] { return NewDense(1000, tc.init, rule, WithSeed(seed), WithParallelism(2)) },
					func() Engine[int] {
						return NewDense(1000, tc.init, rule, WithSeed(seed), WithParallelism(2), c.Option())
					},
					func() Engine[int] { return NewDense(1000, tc.init, amRule, WithSeed(seed), WithParallelism(2)) },
				},
			}
			for name, v := range variants {
				plain := build(v[0])
				tabled := build(v[1])
				if !bytes.Equal(plain, tabled) {
					t.Errorf("%s/%s seed %d: WithTable changed the snapshot bytes", tc.name, name, seed)
				}
				if tc.hand != nil {
					hand := build(v[2])
					if !bytes.Equal(plain, hand) {
						t.Errorf("%s/%s seed %d: compiled rule diverged from handwritten rule", tc.name, name, seed)
					}
				}
			}
		}
	}
}

// TestTableRestoreByteIdentity snapshots a with-table run mid-flight,
// continues the original, and checks that a restored engine — with the
// table reattached, or without it — continues byte-identically. (As
// everywhere in the snapshot suite, both engines continue from the same
// snapshot point: stopping mid-run splits a batch, so a fresh
// uninterrupted run is schedule-different by construction.)
func TestTableRestoreByteIdentity(t *testing.T) {
	c := MustCompile(coinTable())
	rule := c.Rule()
	init := func(i int, _ *rand.Rand) int { return i % 3 }
	for _, backend := range []string{"batch", "dense"} {
		for _, withTable := range []bool{true, false} {
			var orig Engine[int]
			if backend == "dense" {
				orig = NewDense(1000, init, rule, WithSeed(21), c.Option())
			} else {
				orig = NewBatch(1000, init, rule, WithSeed(21), c.Option())
			}
			orig.RunTime(6)
			mid := mustSnapshotBytes(t, orig)
			snap, err := UnmarshalSnapshot[int](mid)
			if err != nil {
				t.Fatalf("%s: unmarshal: %v", backend, err)
			}
			var opts []Option
			if withTable {
				opts = append(opts, c.Option())
			}
			resumed, err := Restore(snap, rule, opts...)
			if err != nil {
				t.Fatalf("%s: restore: %v", backend, err)
			}
			orig.RunTime(6)
			resumed.RunTime(6)
			if !bytes.Equal(mustSnapshotBytes(t, orig), mustSnapshotBytes(t, resumed)) {
				t.Errorf("%s (restore withTable=%v): restored run diverged from continued original",
					backend, withTable)
			}
		}
	}
}

// TestTableBypassSurvivesCompaction forces heavy interning churn (a
// fallback-threshold trip plus re-concentration) so compact() rebuilds
// the tableView, then checks the byte-identity still holds.
func TestTableCompactionByteIdentity(t *testing.T) {
	c := MustCompile(amTable())
	rule := c.Rule()
	mk := func(opts ...Option) Engine[int] {
		return NewBatch(1000, amInit, rule, append([]Option{WithSeed(31), WithBatchThreshold(2)}, opts...)...)
	}
	plain := mk()
	plain.RunTime(10)
	tabled := mk(c.Option())
	tabled.RunTime(10)
	if !bytes.Equal(mustSnapshotBytes(t, plain), mustSnapshotBytes(t, tabled)) {
		t.Error("fallback/compaction path: WithTable changed the snapshot bytes")
	}
}
