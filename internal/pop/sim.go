// Package pop implements the population-protocol execution model of
// Doty & Eftekhari (PODC 2019), Section 2: a population of n anonymous
// agents, a uniformly random scheduler that repeatedly selects an ordered
// pair of distinct agents (receiver, sender), and parallel time measured as
// interactions divided by n.
//
// Engines are generic over the agent state type S, which must be
// comparable so that configurations (multisets of states) and the number of
// distinct states used by an execution — the paper's space measure — can be
// tracked with maps.
//
// Two interchangeable backends implement the [Engine] interface:
//
//   - [Sim] (backend [Sequential]) — the reference engine: an explicit
//     agent array stepped one interaction at a time. Use it when per-agent
//     instrumentation is needed (WithInteractionCounts), for debugging,
//     and as the ground truth the batched engine is validated against.
//
//   - [BatchSim] (backend [Batched]) — the multiset engine: state counts
//     plus collision-free batches of ~√n interactions, per-batch
//     hypergeometric sampling, and a deterministic-transition cache (see
//     batch.go for the algorithm and its exactness argument). Its cost
//     per interaction scales with the number of live states rather than
//     with n, which for this paper's O(log⁴ n)-state protocols makes it
//     several times faster than Sim at n >= 10⁶. It falls back to exact
//     sequential stepping while the live state count exceeds
//     WithBatchThreshold.
//
// [NewEngine] selects a backend via WithBackend; the default [Auto]
// chooses Batched for populations of at least 4096 agents. Both backends
// simulate the identical stochastic process — the cross-backend
// equivalence suite in equiv_test.go validates this — but consume the
// random stream differently, so a seed reproduces a run only within one
// backend. [RunTrials] fans independent trials across goroutines.
package pop

import (
	"math/rand/v2"
)

// Rule is a randomized transition function δ ⊆ Λ⁴: given the states of the
// receiver and sender (each agent observes the other's full state) and a
// source of uniformly random bits, it returns their successor states.
//
// Deterministic protocols (such as the synthetic-coin variant of Appendix B)
// simply ignore the random source; the scheduler's receiver/sender order is
// itself uniformly random and may be used as a fair coin.
type Rule[S comparable] func(rec, sen S, r *rand.Rand) (recOut, senOut S)

// Sim executes a population protocol under the uniformly random pairwise
// scheduler. It is not safe for concurrent use; run independent trials on
// independent Sim values.
type Sim[S comparable] struct {
	pcg          *rand.PCG // rng's source, retained for snapshotting
	rng          *rand.Rand
	agents       []S
	rule         Rule[S]
	interactions int64

	// Per-segment parallel-time accounting (see Engine.Time): timeBase is
	// the parallel time accumulated over completed churn segments and
	// segStart the interaction count at the current segment's start.
	timeBase float64
	segStart int64

	seen    map[S]struct{} // non-nil iff state tracking enabled
	icounts []int64        // non-nil iff per-agent interaction counting enabled
}

// New constructs a simulator for a population of n agents whose i'th agent
// starts in initial(i, rng). For a uniform leaderless protocol, initial
// ignores i (all agents start identically); index-dependent initialization
// supports inputs (e.g. majority opinions) and initial leaders.
func New[S comparable](n int, initial func(i int, r *rand.Rand) S, rule Rule[S], opts ...Option) *Sim[S] {
	validatePopSize(int64(n))
	if rule == nil {
		panic("pop: nil rule")
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	pcg := rand.NewPCG(o.seed, o.seed^0x9e3779b97f4a7c15)
	rng := rand.New(pcg)
	agents := make([]S, n)
	for i := range agents {
		agents[i] = initial(i, rng)
	}
	s := &Sim[S]{pcg: pcg, rng: rng, agents: agents, rule: rule}
	if o.trackStates {
		s.seen = make(map[S]struct{}, 64)
		for _, a := range agents {
			s.seen[a] = struct{}{}
		}
	}
	if o.trackInteractions {
		s.icounts = make([]int64, n)
	}
	return s
}

// NewFromConfig constructs a simulator whose initial configuration is an
// explicit slice of agent states (copied). It is used by the termination
// and producibility experiments, which need α-dense or leader-containing
// initial configurations.
func NewFromConfig[S comparable](agents []S, rule Rule[S], opts ...Option) *Sim[S] {
	cp := make([]S, len(agents))
	copy(cp, agents)
	return New(len(cp), func(i int, _ *rand.Rand) S { return cp[i] }, rule, opts...)
}

// N returns the population size.
func (s *Sim[S]) N() int { return len(s.agents) }

// Interactions returns the number of interactions executed so far.
func (s *Sim[S]) Interactions() int64 { return s.interactions }

// Time returns the parallel time elapsed, accumulated per churn segment
// (see Engine.Time); on a fixed population it equals interactions / n.
func (s *Sim[S]) Time() float64 {
	return s.timeBase + float64(s.interactions-s.segStart)/float64(len(s.agents))
}

// beginSegment folds the current churn segment into timeBase before a
// population-size change, so parallel time keeps meaning "interactions
// over the n they ran against".
func (s *Sim[S]) beginSegment() {
	s.timeBase += float64(s.interactions-s.segStart) / float64(len(s.agents))
	s.segStart = s.interactions
}

// AddAgents adds k agents in state st (a join event). The appended slots
// are indistinguishable from incumbents to the uniform scheduler.
func (s *Sim[S]) AddAgents(st S, k int) {
	checkJoin(len(s.agents), k)
	if k == 0 {
		return
	}
	s.beginSegment()
	for i := 0; i < k; i++ {
		s.agents = append(s.agents, st)
	}
	if s.icounts != nil {
		s.icounts = append(s.icounts, make([]int64, k)...)
	}
	if s.seen != nil {
		s.seen[st] = struct{}{}
	}
}

// RemoveAgents removes k agents chosen uniformly at random without
// replacement (a leave event), refusing to shrink the population below 2.
func (s *Sim[S]) RemoveAgents(k int) {
	checkRemoval(len(s.agents), k)
	if k == 0 {
		return
	}
	s.beginSegment()
	// Swap-delete a uniform index each round: a uniform without-
	// replacement sample of the agent slice (per-agent interaction
	// counts, when tracked, travel with their agent).
	for ; k > 0; k-- {
		n := len(s.agents)
		j := s.rng.IntN(n)
		s.agents[j] = s.agents[n-1]
		s.agents = s.agents[:n-1]
		if s.icounts != nil {
			s.icounts[j] = s.icounts[n-1]
			s.icounts = s.icounts[:n-1]
		}
	}
}

// Agent returns the current state of agent i.
func (s *Sim[S]) Agent(i int) S { return s.agents[i] }

// AgentStates returns a copy of the current configuration as a state slice.
func (s *Sim[S]) AgentStates() []S {
	cp := make([]S, len(s.agents))
	copy(cp, s.agents)
	return cp
}

// Agents exposes the live agent slice for read-only scanning by convergence
// predicates. Callers must not mutate it; use AgentStates for a safe copy.
func (s *Sim[S]) Agents() []S { return s.agents }

// Counts returns the configuration vector: the multiset of states present,
// as a map from state to count.
func (s *Sim[S]) Counts() map[S]int {
	c := make(map[S]int, 64)
	for _, a := range s.agents {
		c[a]++
	}
	return c
}

// Count returns the number of agents satisfying pred.
func (s *Sim[S]) Count(pred func(S) bool) int {
	n := 0
	for _, a := range s.agents {
		if pred(a) {
			n++
		}
	}
	return n
}

// All reports whether every agent satisfies pred.
func (s *Sim[S]) All(pred func(S) bool) bool {
	for _, a := range s.agents {
		if !pred(a) {
			return false
		}
	}
	return true
}

// Any reports whether at least one agent satisfies pred.
func (s *Sim[S]) Any(pred func(S) bool) bool {
	for _, a := range s.agents {
		if pred(a) {
			return true
		}
	}
	return false
}

// DistinctStates returns the number of distinct states observed since the
// initial configuration. It returns 0 unless the simulator was constructed
// with WithStateTracking.
func (s *Sim[S]) DistinctStates() int { return len(s.seen) }

// InteractionCount returns how many interactions agent i has participated
// in. It returns 0 unless WithInteractionCounts was set.
func (s *Sim[S]) InteractionCount(i int) int64 {
	if s.icounts == nil {
		return 0
	}
	return s.icounts[i]
}

// MaxInteractionCount returns the maximum per-agent interaction count, or 0
// if WithInteractionCounts was not set.
func (s *Sim[S]) MaxInteractionCount() int64 {
	var m int64
	for _, c := range s.icounts {
		if c > m {
			m = c
		}
	}
	return m
}

// Rand exposes the simulator's random source (for protocol-specific
// initialization performed outside transition rules, e.g. dense-config
// shuffling in experiments).
func (s *Sim[S]) Rand() *rand.Rand { return s.rng }

// Step executes one interaction: an ordered pair (receiver, sender) of
// distinct agents is selected uniformly at random and the rule is applied.
func (s *Sim[S]) Step() {
	n := len(s.agents)
	i := s.rng.IntN(n)
	j := s.rng.IntN(n - 1)
	if j >= i {
		j++
	}
	a, b := s.rule(s.agents[i], s.agents[j], s.rng)
	s.agents[i], s.agents[j] = a, b
	s.interactions++
	if s.icounts != nil {
		s.icounts[i]++
		s.icounts[j]++
	}
	if s.seen != nil {
		s.seen[a] = struct{}{}
		s.seen[b] = struct{}{}
	}
}

// Run executes k interactions.
func (s *Sim[S]) Run(k int64) {
	for i := int64(0); i < k; i++ {
		s.Step()
	}
}

// RunTime executes t units of parallel time (t·n interactions, rounded
// down).
func (s *Sim[S]) RunTime(t float64) {
	s.Run(int64(t * float64(len(s.agents))))
}

// RunUntil repeatedly executes checkEvery units of parallel time and then
// evaluates pred, stopping as soon as pred holds or maxTime units of
// parallel time have elapsed since the call began. It returns true if pred
// held, along with the parallel time at which the final check succeeded.
// The check-boundary semantics are shared with the batched engine.
func (s *Sim[S]) RunUntil(pred func(Engine[S]) bool, checkEvery, maxTime float64) (ok bool, at float64) {
	return runUntil[S](s, pred, checkEvery, maxTime)
}
