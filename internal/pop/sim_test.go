package pop

import (
	"math"
	"math/rand/v2"
	"testing"
)

// pair is a trivial state for engine tests.
type pair struct {
	V int
	T int // interaction tally maintained by the rule itself
}

func countRule(rec, sen pair, _ *rand.Rand) (pair, pair) {
	rec.T++
	sen.T++
	return rec, sen
}

func TestNewPanics(t *testing.T) {
	tests := []struct {
		name string
		f    func()
	}{
		{"n too small", func() { New(1, func(int, *rand.Rand) pair { return pair{} }, countRule) }},
		{"nil rule", func() { New(3, func(int, *rand.Rand) pair { return pair{} }, nil) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tt.f()
		})
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []pair {
		s := New(10, func(i int, _ *rand.Rand) pair { return pair{V: i} }, countRule, WithSeed(99))
		s.Run(1000)
		return s.AgentStates()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at agent %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	run := func(seed uint64) []pair {
		s := New(10, func(i int, _ *rand.Rand) pair { return pair{V: i} }, countRule, WithSeed(seed))
		s.Run(100)
		return s.AgentStates()
	}
	a, b := run(1), run(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical executions")
	}
}

func TestTimeAccounting(t *testing.T) {
	const n = 40
	s := New(n, func(int, *rand.Rand) pair { return pair{} }, countRule)
	s.RunTime(3.5)
	if got, want := s.Interactions(), int64(3.5*n); got != want {
		t.Errorf("Interactions() = %d, want %d", got, want)
	}
	if got := s.Time(); math.Abs(got-3.5) > 1e-9 {
		t.Errorf("Time() = %v, want 3.5", got)
	}
}

// TestInteractionConservation: every interaction touches exactly two
// distinct agents, so the rule-maintained tallies sum to 2× interactions
// and match the engine's own per-agent counters.
func TestInteractionConservation(t *testing.T) {
	const n = 25
	s := New(n, func(int, *rand.Rand) pair { return pair{} }, countRule,
		WithSeed(5), WithInteractionCounts())
	s.Run(5000)
	var total int64
	for i := 0; i < n; i++ {
		total += s.InteractionCount(i)
		if got, want := int64(s.Agent(i).T), s.InteractionCount(i); got != want {
			t.Fatalf("agent %d: rule tally %d != engine count %d", i, got, want)
		}
	}
	if total != 2*s.Interactions() {
		t.Errorf("sum of per-agent counts = %d, want %d", total, 2*s.Interactions())
	}
}

// TestDistinctPartners: the scheduler never pairs an agent with itself.
// With n = 2 every interaction must involve both agents.
func TestDistinctPartners(t *testing.T) {
	s := New(2, func(int, *rand.Rand) pair { return pair{} }, countRule, WithInteractionCounts())
	s.Run(100)
	if s.InteractionCount(0) != 100 || s.InteractionCount(1) != 100 {
		t.Errorf("n=2 counts = %d,%d; want 100,100",
			s.InteractionCount(0), s.InteractionCount(1))
	}
}

// TestSchedulerUniformity: over many interactions each agent participates
// in ≈ 2/n of them (within 5 standard deviations).
func TestSchedulerUniformity(t *testing.T) {
	const n, steps = 16, 200000
	s := New(n, func(int, *rand.Rand) pair { return pair{} }, countRule,
		WithSeed(8), WithInteractionCounts())
	s.Run(steps)
	mean := 2.0 * steps / n
	sd := math.Sqrt(steps * (2.0 / n) * (1 - 2.0/n))
	for i := 0; i < n; i++ {
		if d := math.Abs(float64(s.InteractionCount(i)) - mean); d > 5*sd {
			t.Errorf("agent %d count %d deviates from mean %.0f by %.0f > 5σ=%.0f",
				i, s.InteractionCount(i), mean, d, 5*sd)
		}
	}
}

func TestStateTracking(t *testing.T) {
	s := New(4, func(i int, _ *rand.Rand) pair { return pair{V: i} }, countRule,
		WithSeed(3), WithStateTracking())
	if got := s.DistinctStates(); got != 4 {
		t.Fatalf("initial DistinctStates() = %d, want 4", got)
	}
	s.Run(50)
	if got := s.DistinctStates(); got <= 4 {
		t.Errorf("DistinctStates() = %d after 50 tally-increment steps, want > 4", got)
	}
}

func TestCountsAndPredicates(t *testing.T) {
	s := NewFromConfig([]pair{{V: 1}, {V: 1}, {V: 2}}, countRule)
	c := s.Counts()
	if c[pair{V: 1}] != 2 || c[pair{V: 2}] != 1 {
		t.Errorf("Counts() = %v", c)
	}
	if got := s.Count(func(p pair) bool { return p.V == 1 }); got != 2 {
		t.Errorf("Count(V==1) = %d, want 2", got)
	}
	if s.All(func(p pair) bool { return p.V == 1 }) {
		t.Error("All(V==1) = true, want false")
	}
	if !s.Any(func(p pair) bool { return p.V == 2 }) {
		t.Error("Any(V==2) = false, want true")
	}
}

func TestRunUntil(t *testing.T) {
	s := New(10, func(int, *rand.Rand) pair { return pair{} }, countRule, WithSeed(1))
	ok, at := s.RunUntil(func(s Engine[pair]) bool { return s.Time() >= 5 }, 1, 100)
	if !ok || at < 5 {
		t.Errorf("RunUntil = %v, %v; want true at time >= 5", ok, at)
	}
	ok, _ = s.RunUntil(func(s Engine[pair]) bool { return false }, 1, 3)
	if ok {
		t.Error("RunUntil returned true for an unsatisfiable predicate")
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	s := New(3, func(i int, _ *rand.Rand) pair { return pair{V: i} }, countRule)
	snap := s.AgentStates()
	snap[0].V = 999
	if s.Agent(0).V == 999 {
		t.Error("mutating a snapshot mutated the simulation")
	}
}

func TestNewFromConfigCopies(t *testing.T) {
	src := []pair{{V: 1}, {V: 2}}
	s := NewFromConfig(src, countRule)
	src[0].V = 999
	if s.Agent(0).V == 999 {
		t.Error("NewFromConfig aliased the caller's slice")
	}
}
