// DenseSim: the count-vector simulation backend.
//
// # Representation
//
// Like BatchSim, DenseSim stores the configuration as interned state
// counts — but it never materializes agents at any point: not at
// construction (NewDenseFromCounts accepts the multiset directly), not
// inside a batch (participants are advanced as a matrix of state-pair
// counts rather than a slot array), and not under live-state pressure
// (it delegates to a counts-constructed BatchSim instead of falling back
// to an agent array itself). Its memory footprint is O(q) for q live
// states, which is what makes n = 10⁹–10¹⁰ populations feasible for this
// paper's dense protocols: after the initial epidemic the number of
// distinct states is polylog(n), so the whole configuration is a few
// kilobytes regardless of n.
//
// # Pair-matrix batches
//
// Batches reuse BatchSim's collision-free framing (arXiv:2005.03584): the
// run length ℓ until the scheduler first reuses an agent depends only on
// n, and the 2ℓ participants are a uniform without-replacement sample of
// the population. DenseSim exploits the exchangeability one step further,
// in the spirit of the count-vector dynamics of Berenbrink, Kaaser &
// Radzik (arXiv:1905.11962): instead of materializing 2ℓ slots and
// shuffling, it draws the ℓ receiver states as a multivariate
// hypergeometric sample of the counts vector, the ℓ sender states as a
// second such sample from the remainder, and then the uniformly random
// receiver↔sender matching as one multivariate hypergeometric row per
// receiver state over the sender multiset. The result is the matrix
// C[a][b] of ordered state-pair interaction counts for the batch, drawn
// from exactly the distribution the agent-level scheduler induces — a
// deterministic transition (a,b) → (a',b') is then applied once per pair
// with multiplicity C[a][b], and only transitions that consume randomness
// degrade to per-pair rule draws. The collision interaction that ends a
// batch is resolved exactly as in BatchSim, with the slot array replaced
// by the participants' post-state multiset. Per-batch work is O(q·H) for
// the two participant samples plus O(nonzero matrix cells) ≤ O(q²) for
// the pairing — independent of ℓ for concentrated configurations — and
// the trajectory is distributed identically to the sequential engine's,
// up to float64 rounding in the inverse-transform samplers.
//
// # Delegation
//
// The pair matrix stops paying once q² work rivals the ~√n batch length —
// precisely the regime BatchSim's per-slot sampling is built for. DenseSim
// reuses the batch backend's live-state heuristic: above the dense
// threshold (default ~√n/6, see WithDenseThreshold) it hands the current
// counts to an internal BatchSim via NewBatchFromCounts and forwards to it,
// re-entering dense mode once the configuration re-concentrates below half
// the threshold. The transition cache, interning and compaction machinery
// mirror batch.go (see its package comment); the same Rule purity contract
// applies.
package pop

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
)

// DenseStats reports how a DenseSim run was executed; it is diagnostic
// only (exposed for tests, benchmarks and tuning).
type DenseStats struct {
	// Batches is the number of pair-matrix batches processed.
	Batches int64
	// BatchedInteractions counts interactions simulated through the pair
	// matrix (including their collision steps).
	BatchedInteractions int64
	// DelegatedInteractions counts interactions executed by the internal
	// BatchSim while the live-state count exceeded the dense threshold.
	DelegatedInteractions int64
	// Delegations / Reentries count dense→batch and batch→dense mode
	// switches.
	Delegations int64
	Reentries   int64
	// PairCells counts nonzero cells of the sampled pair matrices — the
	// q²-shaped part of the work.
	PairCells int64
	// CacheHits counts interactions served from the deterministic-
	// transition cache (with multiplicity); RuleCalls counts actual rule
	// invocations. TableHits counts interactions resolved by the
	// declared-table bypass (WithTable), which skips both.
	CacheHits int64
	RuleCalls int64
	TableHits int64
	// Compactions counts interning-table rebuilds.
	Compactions int64
}

const (
	// denseMaxPairs caps a single pair-matrix batch's length. Dense
	// batches have no per-slot scratch, so the cap only bounds the O(ℓ)
	// run-length inverse transform; it binds well above the natural
	// Θ(√n) collision point for every feasible n.
	denseMaxPairs = 1 << 20
	// denseCacheBits sizes DenseSim's direct-mapped transition cache.
	// Dense mode runs only below the live-state threshold, so its hot
	// pair set is much smaller than BatchSim's.
	denseCacheBits = 16
	// denseRecheckFactor: while delegated, the inner engine's live-state
	// count is rechecked every denseRecheckFactor·n interactions to
	// decide on re-entering dense mode.
	denseRecheckFactor = 2
	// denseHeavyCell: a pairing-row cell expecting at least this many
	// partners is drawn with its own hypergeometric; lighter cells are
	// cheaper as individual Fenwick descents (a light hypergeometric draw
	// costs about three tree descents).
	denseHeavyCell = 3
)

// defaultDenseThreshold sizes the live-state delegation cutoff for a
// population of n agents: dense batches cost O(q) chain draws against the
// slot backend's Θ(ℓ) per-slot work, with ℓ ≈ 0.63√n the expected
// collision-free run length, so the crossover scales with √n. The
// constant is conservative (chain draws are several times the cost of a
// slot write) and the result is clamped to BatchSim's own threshold
// regime.
func defaultDenseThreshold(n int) int {
	q := int(0.627 * math.Sqrt(float64(n)) / 4)
	return min(max(q, 64), 2048)
}

// DenseSim is the count-vector engine. See the file comment for the
// algorithm. It is not safe for concurrent use; run independent trials on
// independent values (e.g. via RunTrials).
type DenseSim[S comparable] struct {
	pcg      *rand.PCG // rng's source, retained for snapshotting
	rng      *rand.Rand
	ruleRand *countingSource
	ruleRng  *rand.Rand
	rule     Rule[S]
	n        int

	// interactsBase counts interactions executed outside the current
	// delegation; while delegated, the inner engine's own counter is
	// added on top (and folded in at re-entry).
	interactsBase int64

	// Per-segment parallel-time accounting (see Engine.Time). segStart is
	// measured on the delegation-inclusive Interactions() scale, which is
	// continuous across delegate/reenter.
	timeBase float64
	segStart int64

	// Interning, as in BatchSim.
	states   []S
	pos      map[S]int32
	counts   []int64
	total    int64
	live     int
	distinct int

	qMax           int // live-state delegation threshold
	qMaxOverride   int // WithDenseThreshold value (0 = rescale qMax with n on churn)
	batchThreshold int // forwarded to the delegated BatchSim (0 = default)
	par            int // 0 = legacy serial samplers; >= 1 = node-seeded splitter path with this worker target
	parOption      int // raw WithParallelism value, forwarded to the delegated BatchSim

	cache    []cacheSlot
	cacheGen uint64

	// Declared-table bypass (WithTable), as in BatchSim; forwarded to
	// delegated engines.
	tbl *tableView[S]

	// Delegation state. innerBaseDistinct is the inner engine's distinct
	// count at hand-off (states it started with, already counted here).
	inner             *BatchSim[S]
	innerBaseDistinct int
	innerRecheck      int64

	// Batch scratch: receiver counts and the participants' post-state
	// multiset, both indexed by state id. post can grow during a batch as
	// rule outputs intern new states. send, cum, rows and rowCum belong to
	// the splitter path (par >= 1): the pre-drawn sender composition, the
	// counts prefix sums, and the receiver-row index/prefix arrays.
	tree   fenwick
	recv   []int64
	post   []int64
	send   []int64
	cum    []int64
	rows   []int32
	rowCum []int64

	// test hooks (nil/false in production)
	forceNoDelegate bool
	batchEvents     func(ell int, collided bool)

	stats DenseStats
}

// NewDense constructs a count-vector simulator; the arguments mirror New.
// It panics if WithInteractionCounts was requested (the multiset
// representation has no agent identities).
func NewDense[S comparable](n int, initial func(i int, r *rand.Rand) S, rule Rule[S], opts ...Option) *DenseSim[S] {
	validatePopSize(int64(n))
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	d := newDenseShell[S](rule, o)
	d.n = n
	d.qMax = denseThresholdFor(o, n)
	d.par = resolveParallelism(o.parallelism, n)
	for i := 0; i < n; i++ {
		d.addCount(d.intern(initial(i, d.rng)), 1)
	}
	d.compact()
	return d
}

// NewDenseFromCounts constructs a count-vector simulator directly from a
// configuration multiset given as parallel slices: states[i] is held by
// counts[i] agents (zero-count entries are skipped, duplicate states
// accumulate). No agent-sized allocation of any kind occurs, so this is
// the constructor of choice for populations far beyond memory — a
// three-state configuration of 10¹⁰ agents costs the same as one of 10³.
func NewDenseFromCounts[S comparable](states []S, counts []int64, rule Rule[S], opts ...Option) *DenseSim[S] {
	n := int(validateCounts(states, counts))
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	d := newDenseShell[S](rule, o)
	for i, c := range counts {
		if c > 0 {
			d.addCount(d.intern(states[i]), c)
		}
	}
	d.n = n
	d.qMax = denseThresholdFor(o, n)
	d.par = resolveParallelism(o.parallelism, n)
	d.compact()
	return d
}

// newDenseShell builds a DenseSim with everything but its initial
// configuration and size-derived threshold.
func newDenseShell[S comparable](rule Rule[S], o options) *DenseSim[S] {
	if rule == nil {
		panic("pop: nil rule")
	}
	if o.trackInteractions {
		panic("pop: the dense backend cannot track per-agent interaction counts; use WithBackend(Sequential)")
	}
	pcg := rand.NewPCG(o.seed, o.seed^0x9e3779b97f4a7c15)
	cs := &countingSource{src: pcg}
	tbl := attachTable[S](o)
	d := &DenseSim[S]{
		pcg:            pcg,
		rng:            rand.New(pcg),
		ruleRand:       cs,
		ruleRng:        rand.New(cs),
		rule:           rule,
		pos:            make(map[S]int32, posSizeFor(tbl)),
		tbl:            tbl,
		qMaxOverride:   o.denseThreshold,
		batchThreshold: o.batchThreshold,
		parOption:      o.parallelism,
	}
	d.cache = make([]cacheSlot, 1<<denseCacheBits)
	d.cacheGen = 1
	return d
}

func denseThresholdFor(o options, n int) int {
	if o.denseThreshold > 0 {
		return o.denseThreshold
	}
	return defaultDenseThreshold(n)
}

// intern returns the dense id of state s, assigning one if new. As in
// BatchSim, compaction drops dead states from the table, so a state that
// dies and later reappears is counted again by DistinctStates.
func (d *DenseSim[S]) intern(s S) int32 {
	if id, ok := d.pos[s]; ok {
		return id
	}
	id := int32(len(d.states))
	d.states = append(d.states, s)
	d.counts = append(d.counts, 0)
	d.pos[s] = id
	d.distinct++
	if d.tbl != nil {
		d.tbl.noteIntern(s, id)
	}
	return id
}

// addCount adjusts counts[id] by delta, maintaining the live-state count
// and the conservation total.
func (d *DenseSim[S]) addCount(id int32, delta int64) {
	c := d.counts[id]
	nc := c + delta
	if nc < 0 {
		panic("pop: DenseSim state count went negative")
	}
	d.counts[id] = nc
	d.total += delta
	if c == 0 && nc > 0 {
		d.live++
	} else if c > 0 && nc == 0 {
		d.live--
	}
}

// N returns the population size.
func (d *DenseSim[S]) N() int { return d.n }

// Interactions returns the number of interactions executed so far.
func (d *DenseSim[S]) Interactions() int64 {
	if d.inner != nil {
		return d.interactsBase + d.inner.Interactions()
	}
	return d.interactsBase
}

// Time returns the parallel time elapsed, accumulated per churn segment
// (see Engine.Time); on a fixed population it equals interactions / n.
func (d *DenseSim[S]) Time() float64 {
	return d.timeBase + float64(d.Interactions()-d.segStart)/float64(d.n)
}

// beginSegment folds the current churn segment into timeBase before a
// population-size change. Interactions() is continuous across delegation
// and re-entry, so the segment boundary is well defined in either mode.
func (d *DenseSim[S]) beginSegment() {
	i := d.Interactions()
	d.timeBase += float64(i-d.segStart) / float64(d.n)
	d.segStart = i
}

// rescaleThreshold re-derives the √n-scaled delegation threshold after a
// population-size change (a WithDenseThreshold override stays fixed).
func (d *DenseSim[S]) rescaleThreshold() {
	if d.qMaxOverride > 0 {
		return
	}
	d.qMax = defaultDenseThreshold(d.n)
}

// AddAgents adds k agents in state st (a join event): one count edit in
// dense mode, forwarded to the inner BatchSim while delegated.
func (d *DenseSim[S]) AddAgents(st S, k int) {
	checkJoin(d.n, k)
	if k == 0 {
		return
	}
	d.beginSegment()
	if d.inner != nil {
		d.inner.AddAgents(st, k)
	} else {
		d.addCount(d.intern(st), int64(k))
	}
	d.n += k
	d.rescaleThreshold()
}

// RemoveAgents removes k agents chosen uniformly at random without
// replacement (a leave event), refusing to shrink the population below 2.
// In dense mode the removed agents' states are a multivariate
// hypergeometric sample of the counts vector; while delegated the removal
// forwards to the inner BatchSim.
func (d *DenseSim[S]) RemoveAgents(k int) {
	checkRemoval(d.n, k)
	if k == 0 {
		return
	}
	d.beginSegment()
	if d.inner != nil {
		d.inner.RemoveAgents(k)
	} else if d.par >= 1 {
		d.recv, d.cum = removeCountsSplit(effectiveWorkers(d.par), d.rng.Uint64(),
			d.counts, d.total, int64(k), d.addCount, d.recv, d.cum)
	} else {
		removeCountsChain(d.rng, &d.tree, d.counts, d.total, int64(k), d.addCount)
	}
	d.n -= k
	d.rescaleThreshold()
}

// DistinctStates returns the number of distinct states observed since the
// initial configuration, tracked intrinsically by interning (same
// re-appearance caveat as BatchSim, see intern).
func (d *DenseSim[S]) DistinctStates() int {
	if d.inner != nil {
		return d.distinct + d.inner.DistinctStates() - d.innerBaseDistinct
	}
	return d.distinct
}

// Stats returns execution diagnostics.
func (d *DenseSim[S]) Stats() DenseStats { return d.stats }

// LiveStates returns the number of distinct states currently present.
func (d *DenseSim[S]) LiveStates() int {
	if d.inner != nil {
		return d.inner.LiveStates()
	}
	return d.live
}

// Delegated reports whether the engine is currently forwarding to its
// internal BatchSim.
func (d *DenseSim[S]) Delegated() bool { return d.inner != nil }

// Counts returns the configuration vector.
func (d *DenseSim[S]) Counts() map[S]int {
	if d.inner != nil {
		return d.inner.Counts()
	}
	c := make(map[S]int, d.live)
	for id, cnt := range d.counts {
		if cnt > 0 {
			c[d.states[id]] = int(cnt)
		}
	}
	return c
}

// Count returns the number of agents satisfying pred.
func (d *DenseSim[S]) Count(pred func(S) bool) int {
	if d.inner != nil {
		return d.inner.Count(pred)
	}
	var k int64
	for id, cnt := range d.counts {
		if cnt > 0 && pred(d.states[id]) {
			k += cnt
		}
	}
	return int(k)
}

// All reports whether every agent satisfies pred.
func (d *DenseSim[S]) All(pred func(S) bool) bool {
	if d.inner != nil {
		return d.inner.All(pred)
	}
	for id, cnt := range d.counts {
		if cnt > 0 && !pred(d.states[id]) {
			return false
		}
	}
	return true
}

// Any reports whether at least one agent satisfies pred.
func (d *DenseSim[S]) Any(pred func(S) bool) bool {
	return !d.All(func(s S) bool { return !pred(s) })
}

// RunTime executes t units of parallel time (t·n interactions, rounded
// down).
func (d *DenseSim[S]) RunTime(t float64) {
	d.Run(int64(t * float64(d.n)))
}

// RunUntil has the semantics documented on Engine.RunUntil, shared with
// the other engines.
func (d *DenseSim[S]) RunUntil(pred func(Engine[S]) bool, checkEvery, maxTime float64) (ok bool, at float64) {
	return runUntil[S](d, pred, checkEvery, maxTime)
}

// Step executes one interaction: an exact single-interaction multiset
// step, as in BatchSim. It costs O(q) and exists for API completeness —
// Run amortizes far better.
func (d *DenseSim[S]) Step() {
	if d.inner != nil {
		d.inner.Step()
		return
	}
	ra := d.drawLinear(d.rng.Int64N(int64(d.n)))
	d.addCount(ra, -1)
	rb := d.drawLinear(d.rng.Int64N(int64(d.n) - 1))
	d.addCount(rb, -1)
	d.post = resizeZero(d.post, len(d.states))
	d.applyCell(ra, rb, 1)
	for id, c := range d.post {
		if c > 0 {
			d.addCount(int32(id), c)
		}
	}
	d.interactsBase++
}

// drawLinear maps u ∈ [0, Σcounts) to a state id by linear scan.
func (d *DenseSim[S]) drawLinear(u int64) int32 {
	for id, c := range d.counts {
		if u < c {
			return int32(id)
		}
		u -= c
	}
	panic("pop: DenseSim draw out of range")
}

// Run executes k interactions.
func (d *DenseSim[S]) Run(k int64) {
	for k > 0 {
		if d.inner != nil {
			run := min(k, d.innerRecheck)
			d.inner.Run(run)
			d.stats.DelegatedInteractions += run
			d.innerRecheck -= run
			k -= run
			if d.innerRecheck <= 0 {
				if d.inner.LiveStates() <= d.qMax/2 {
					d.reenter()
				} else {
					d.innerRecheck = int64(denseRecheckFactor) * int64(d.n)
				}
			}
			continue
		}
		if d.live > d.qMax {
			d.delegate()
			continue
		}
		if k < 8 || d.n < 8 {
			d.Step()
			k--
			continue
		}
		if len(d.states) >= 4*d.live && len(d.states) >= 256 {
			d.compact()
		}
		k -= d.runBatch(k)
	}
}

// delegate hands the current configuration to an internal BatchSim — the
// analogue of BatchSim's own sequential fallback, one level up and still
// agent-free.
func (d *DenseSim[S]) delegate() {
	if d.forceNoDelegate {
		panic("pop: DenseSim delegated to BatchSim with forceNoDelegate set")
	}
	opts := []Option{WithSeed(d.rng.Uint64()), WithParallelism(d.parOption)}
	if d.batchThreshold > 0 {
		opts = append(opts, WithBatchThreshold(d.batchThreshold))
	}
	if d.tbl != nil {
		opts = append(opts, WithTable(d.tbl.c))
	}
	d.inner = NewBatchFromCounts(d.states, d.counts, d.rule, opts...)
	d.innerBaseDistinct = d.inner.DistinctStates()
	d.innerRecheck = int64(denseRecheckFactor) * int64(d.n)
	d.stats.Delegations++
}

// reenter pulls the configuration back from the delegated BatchSim and
// resumes pair-matrix batching.
func (d *DenseSim[S]) reenter() {
	in := d.inner
	if in.seqMode {
		in.recountFromAgents()
	}
	d.interactsBase += in.Interactions()
	d.distinct += in.DistinctStates() - d.innerBaseDistinct
	// Rebuild the interning tables from the inner engine's live states in
	// its (deterministic) id order; ids change, so invalidate the cache.
	states := make([]S, 0, in.live)
	counts := make([]int64, 0, in.live)
	pos := make(map[S]int32, 2*in.live)
	var total int64
	for id, c := range in.counts {
		if c > 0 {
			nid := int32(len(states))
			pos[in.states[id]] = nid
			states = append(states, in.states[id])
			counts = append(counts, c)
			total += c
		}
	}
	d.states, d.counts, d.pos = states, counts, pos
	d.total = total
	d.live = len(states)
	d.inner = nil
	d.invalidateCache()
	d.compact()
	d.stats.Reentries++
}

// invalidateCache makes every existing cache entry unmatchable by
// advancing the generation (clearing the table on the rare wrap, so no
// pre-wrap entry can alias a post-wrap key).
func (d *DenseSim[S]) invalidateCache() {
	if d.cacheGen+1 >= 1<<20 {
		for i := range d.cache {
			d.cache[i] = cacheSlot{}
		}
		d.cacheGen = 1
		return
	}
	d.cacheGen++
}

// resizeZero returns s with length n and every element zero, reusing its
// backing array when possible.
func resizeZero(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// runBatch simulates one pair-matrix batch (plus its collision
// interaction, if one was sampled) of at most kmax interactions, and
// returns how many interactions it executed.
func (d *DenseSim[S]) runBatch(kmax int64) int64 {
	if d.par >= 1 {
		return d.runBatchSplit(kmax)
	}
	n := int64(d.n)
	// Collision-free run length ℓ (see collisionFreeRun); a cap just ends
	// the batch early with no collision interaction.
	maxPairs := min(int64(denseMaxPairs), kmax, n/3+1)
	ell, collided := collisionFreeRun(d.rng, n, maxPairs)
	if ell == 0 {
		// Only possible when a cap degenerated; fall back to one exact step.
		d.Step()
		return 1
	}

	// Receiver states: a multivariate hypergeometric sample of the
	// (debited) counts vector. Senders are then drawn row by row from the
	// remaining population inside pairAndApply — jointly equivalent, by
	// exchangeability, to drawing 2ℓ agents without replacement and
	// pairing them at random.
	q := len(d.counts)
	d.recv = resizeZero(d.recv, q)
	d.post = resizeZero(d.post, q)
	d.sampleParticipants(d.recv, ell)
	d.pairAndApply(ell)

	done := ell
	if collided {
		d.collisionStep(2 * ell)
		done++
	}

	// Commit participants' post states.
	for id, c := range d.post {
		if c > 0 {
			d.addCount(int32(id), c)
		}
	}
	d.interactsBase += done
	d.stats.Batches++
	d.stats.BatchedInteractions += done
	if d.total != n {
		panic(fmt.Sprintf("pop: DenseSim conservation violated: %d agents after batch, want %d", d.total, n))
	}
	if d.batchEvents != nil {
		d.batchEvents(int(ell), collided)
	}
	return done
}

// runBatchSplit is runBatch on the node-seeded splitter path (par >= 1):
// the same pair-matrix law, with every draw below the batch's one seed
// word derived from (seed, node path), so the trajectory is byte-identical
// for any worker count. Instead of drawing each row's partners from the
// shared remaining pool (a chain across rows), it pre-draws the sender
// block as a second composition sample — jointly identical by
// exchangeability, as pairAndApply's comment already exploits — and then
// distributes that multiset over the receiver rows by recursive
// hypergeometric splits of the row range, each subtree independent under
// its node stream. Cached (deterministic) cells apply concurrently;
// cells whose transition is uncached or consumes randomness defer to a
// serial pass in (row, sender) order.
func (d *DenseSim[S]) runBatchSplit(kmax int64) int64 {
	n := int64(d.n)
	maxPairs := min(int64(denseMaxPairs), kmax, n/3+1)
	ell, collided := collisionFreeRun(d.rng, n, maxPairs)
	if ell == 0 {
		// Only possible when a cap degenerated; fall back to one exact step.
		d.Step()
		return 1
	}
	batchSeed := d.rng.Uint64()
	workers := effectiveWorkers(d.par)

	q := len(d.counts)
	d.recv = resizeZero(d.recv, q)
	d.send = resizeZero(d.send, q)
	d.post = resizeZero(d.post, q)

	// Receiver composition, then sender composition from the remainder.
	for pass, dst := range [2][]int64{d.recv, d.send} {
		d.cum = prefixSums(d.cum, d.counts)
		var g *parGroup
		if workers > 1 && ell >= 2*parMinForkItems {
			g = newParGroup(workers)
		}
		mvhSplitComp(g, deriveSeed(batchSeed, uint64(pass+1)), 1, d.counts, d.cum, 0, q, d.total, ell, dst)
		g.wait()
		for id, k := range dst {
			if k > 0 {
				d.addCount(int32(id), -k)
			}
		}
	}

	// Pairing: distribute the sender multiset over the receiver rows.
	d.pairRowsSplit(workers, deriveSeed(batchSeed, 3), ell)

	done := ell
	if collided {
		d.collisionStep(2 * ell)
		done++
	}

	// Commit participants' post states.
	for id, c := range d.post {
		if c > 0 {
			d.addCount(int32(id), c)
		}
	}
	d.interactsBase += done
	d.stats.Batches++
	d.stats.BatchedInteractions += done
	if d.total != n {
		panic(fmt.Sprintf("pop: DenseSim conservation violated: %d agents after batch, want %d", d.total, n))
	}
	if d.batchEvents != nil {
		d.batchEvents(int(ell), collided)
	}
	return done
}

// denseMiss is one deferred pair-matrix cell: a transition that was not
// in the cache during the parallel pass, applied later in canonical
// (row, sender) order so rule randomness stays deterministic.
type denseMiss struct {
	row  int32 // index into the batch's row list (not a state id)
	a, b int32 // receiver and sender state ids
	mult int64
}

// pairRowsSplit realizes the receiver↔sender matching as recursive
// hypergeometric splits: a node holding a contiguous row range and its
// sender multiset S splits the range in half, draws the left half's share
// of S (one chain with the node's stream), and recurses — forked to
// another worker when both halves carry enough receivers. Once a node's
// receiver mass drops to splitLeafMass it stops splitting and runs the
// legacy-style sequential multi-row chain (heavy cells by hypergeometric,
// light tails by suffix-restricted descents) under its own stream, so the
// splitter's total per-item work stays within one shallow tree of the
// serial chain's. Cached cells accumulate into the post multiset (merged
// once per leaf under a mutex); uncached cells are deferred.
func (d *DenseSim[S]) pairRowsSplit(workers int, seed uint64, ell int64) {
	d.rows = d.rows[:0]
	d.rowCum = append(d.rowCum[:0], 0)
	sum := int64(0)
	for id, k := range d.recv {
		if k > 0 {
			d.rows = append(d.rows, int32(id))
			sum += k
			d.rowCum = append(d.rowCum, sum)
		}
	}
	if sum != ell {
		panic("pop: DenseSim receiver rows lost mass")
	}
	var (
		mu     sync.Mutex
		misses []denseMiss
	)
	var g *parGroup
	if workers > 1 && ell >= 2*parMinForkItems {
		g = newParGroup(workers)
	}
	d.pairRowsNode(g, &mu, &misses, seed, 1, 0, len(d.rows), d.send, ell, nil)
	g.wait()
	// Canonical order regardless of which worker recorded which miss,
	// then coalesce entries of the same cell (a row's random tail can
	// emit one cell in several pieces): applyCell runs exactly once per
	// distinct (row, sender) cell, so the rule stream's consumption —
	// and even the hit/call statistics — are order-independent.
	sort.Slice(misses, func(i, j int) bool {
		if misses[i].row != misses[j].row {
			return misses[i].row < misses[j].row
		}
		return misses[i].b < misses[j].b
	})
	w := 0
	for _, ms := range misses {
		if w > 0 && misses[w-1].row == ms.row && misses[w-1].b == ms.b {
			misses[w-1].mult += ms.mult
			continue
		}
		misses[w] = ms
		w++
	}
	for _, ms := range misses[:w] {
		d.stats.PairCells++
		d.applyCell(ms.a, ms.b, ms.mult)
	}
}

// pairRowsNode is one splitter node of pairRowsSplit, covering rows
// [rlo, rhi) whose receivers total R and whose sender multiset is snd
// (owned by the node; Σ snd = R). owned, when non-nil, is snd's
// int64Pool pointer: this node's subtree is the buffer's last reader and
// returns it to the pool on the way out (the root's snd is the
// engine-owned d.send, which passes nil).
func (d *DenseSim[S]) pairRowsNode(g *parGroup, mu *sync.Mutex, misses *[]denseMiss, seed, path uint64, rlo, rhi int, snd []int64, R int64, owned *[]int64) {
	for {
		if R == 0 || rhi <= rlo {
			break
		}
		if rhi-rlo == 1 || R <= splitLeafMass {
			d.pairRowsLeaf(mu, misses, nodeRand(seed, path), rlo, rhi, snd, R)
			break
		}
		rmid := (rlo + rhi) / 2
		RL := d.rowCum[rmid] - d.rowCum[rlo]
		RR := R - RL
		sndLP, sndL := getInts(len(snd))
		if RL > 0 {
			r := nodeRand(seed, path)
			rem := R
			left := RL
			for b, c := range snd {
				if left == 0 {
					break
				}
				if c == 0 {
					continue
				}
				if lightDraw(c, left, batchHeavyMean, rem) && left < 2*int64(len(snd)-b) {
					chainTail(r, snd, b, len(snd), rem, left,
						func(j int, k int64) { sndL[j] += k; snd[j] -= k })
					left = 0
					break
				}
				var k int64
				if rem == left {
					k = c
				} else {
					k = hypergeometric(r, rem, c, left)
				}
				rem -= c
				left -= k
				sndL[b] = k
				snd[b] = c - k
			}
			if left != 0 {
				panic("pop: DenseSim row splitter under-filled")
			}
		}
		lPath, rPath := 2*path, 2*path+1
		if g != nil && min(RL, RR) >= parMinForkItems {
			sndR, rR, rHi, ownedR := snd, RR, rhi, owned
			g.fork(func() { d.pairRowsNode(g, mu, misses, seed, rPath, rmid, rHi, sndR, rR, ownedR) })
			rhi, snd, R, path, owned = rmid, sndL, RL, lPath, sndLP
			continue
		}
		d.pairRowsNode(g, mu, misses, seed, lPath, rlo, rmid, sndL, RL, sndLP)
		rlo, R, path = rmid, RR, rPath
	}
	if owned != nil {
		int64Pool.Put(owned)
	}
}

// pairRowsLeaf distributes the leaf's sender multiset snd (Σ snd = R)
// over rows [rlo, rhi) sequentially, mirroring the legacy pairAndApply
// chain: per row, heavy cells draw one hypergeometric each and the light
// tail costs one Fenwick descent per partner restricted to the chain's
// remaining suffix. All randomness comes from the leaf's node stream r.
// Cached cells accumulate into a leaf-local post vector (merged once
// under mu); uncached cells join the deferred miss list.
func (d *DenseSim[S]) pairRowsLeaf(mu *sync.Mutex, misses *[]denseMiss, r *rand.Rand, rlo, rhi int, snd []int64, R int64) {
	tree := fenwickPool.Get().(*fenwick)
	tree.reset(snd)
	localPostP, localPost := getInts(len(d.post))
	var localMisses []denseMiss
	var hitCells, hits, tblHits int64
	emit := func(row int, a, b int32, k int64) {
		if t := d.tbl; t != nil {
			// Declared-table bypass, restricted to already-interned
			// outputs (read-only; see tableView.probeRO).
			if oa, ob, ok := t.probeRO(a, b); ok {
				hitCells++
				tblHits += k
				localPost[oa] += k
				localPost[ob] += k
				return
			}
		}
		if oa, ob, ok := d.cacheLookup(a, b); ok {
			hitCells++
			hits += k
			localPost[oa] += k
			localPost[ob] += k
			return
		}
		// Misses count toward PairCells when applied (pairRowsSplit's
		// serial pass). Coalesce per-item tail draws of the same cell —
		// the tail emits them one partner at a time.
		if n := len(localMisses); n > 0 {
			if last := &localMisses[n-1]; last.row == int32(row) && last.b == b {
				last.mult += k
				return
			}
		}
		localMisses = append(localMisses, denseMiss{row: int32(row), a: a, b: b, mult: k})
	}
	for ri := rlo; ri < rhi && R > 0; ri++ {
		a := d.rows[ri]
		ra := d.rowCum[ri+1] - d.rowCum[ri]
		remPop := R
		for bs := 0; bs < len(snd) && ra > 0; bs++ {
			c := snd[bs]
			if c == 0 {
				continue
			}
			if lightDraw(c, ra, denseHeavyCell, remPop) && ra < 2*int64(len(snd)-bs) {
				break
			}
			var k int64
			if remPop == ra {
				k = c
			} else {
				k = hypergeometric(r, remPop, c, ra)
			}
			remPop -= c
			ra -= k
			if k > 0 {
				snd[bs] -= k
				tree.add(bs, -k)
				R -= k
				emit(ri, a, int32(bs), k)
			}
		}
		// Suffix-restricted tail: the chain above fixed this row's
		// allocation to the states it walked, so the rest of the row
		// draws from the remaining suffix — offsetting the descent past
		// the prefix weight (R − remPop) restricts the tree to it.
		prefix := R - remPop
		for ; ra > 0; ra-- {
			bs := int32(tree.findAndDec(prefix + r.Int64N(remPop)))
			remPop--
			snd[bs]--
			R--
			emit(ri, a, bs, 1)
		}
	}
	fenwickPool.Put(tree)
	mu.Lock()
	d.stats.PairCells += hitCells
	d.stats.CacheHits += hits
	d.stats.TableHits += tblHits
	// Element writes, not addPost: interning is deferred to the serial
	// miss pass, so d.post cannot grow here, and addPost's header
	// reassignment would race with other leaves' len(d.post) reads.
	for id, c := range localPost {
		if c > 0 {
			d.post[id] += c
		}
	}
	*misses = append(*misses, localMisses...)
	mu.Unlock()
	int64Pool.Put(localPostP)
}

// cacheLookup is the read-only half of applyCell: it reports the cached
// deterministic outputs of the ordered pair, if present (cacheProbe in
// batch.go). Safe for concurrent use while no writer runs (the split
// path's parallel pass).
func (d *DenseSim[S]) cacheLookup(ida, idb int32) (oa, ob int32, ok bool) {
	return cacheProbe(d.cache, denseCacheBits, d.cacheGen, ida, idb)
}

// sampleParticipants draws a uniform without-replacement sample of m
// agents as per-state counts into dst (zeroed, len ≥ len(counts)),
// debiting the configuration. It is the multivariate hypergeometric
// chain of hypergeom.go inlined against addCount so the live-state and
// conservation bookkeeping stay exact — with BatchSim's heavy/light
// split: hypergeometric draws only while a state expects a material
// share of the sample, per-draw Fenwick descents over the suffix for
// the light tail (one cheap draw per sampled agent instead of one
// expensive draw per live state).
func (d *DenseSim[S]) sampleParticipants(dst []int64, m int64) {
	remPop := d.total
	for id := 0; id < len(d.counts) && m > 0; id++ {
		c := d.counts[id]
		if c == 0 {
			continue
		}
		// Counts are compaction-ordered descending, so once the current
		// state's expected draw is light every later one is lighter: the
		// remaining m agents cost m·log q via the suffix tree, skipping
		// the untouched tail entirely. The suffix conditions correctly —
		// slots already allocated went to earlier states, and the chain
		// factorizes in id order.
		if lightDraw(c, m, batchHeavyMean, remPop) && m < 2*int64(len(d.counts)-id) {
			d.tree.reset(d.counts[id:])
			for ; m > 0; m-- {
				sid := int32(id + d.tree.findAndDec(d.rng.Int64N(remPop)))
				remPop--
				d.addCount(sid, -1)
				dst[sid]++
			}
			break
		}
		var k int64
		if remPop == m {
			k = c // forced: every remaining agent participates
		} else {
			k = hypergeometric(d.rng, remPop, c, m)
		}
		remPop -= c
		m -= k
		if k > 0 {
			d.addCount(int32(id), -k)
			dst[id] = k
		}
	}
	if m != 0 {
		panic("pop: DenseSim participant sampling under-filled")
	}
}

// pairAndApply realizes the uniformly random receiver↔sender matching as
// the matrix of ordered state-pair counts and applies each cell with its
// multiplicity. Row a (the partners of the recv[a] receivers in state a)
// is a multivariate hypergeometric draw from the remaining population —
// drawing each row's senders directly from the undrawn pool is jointly
// identical to pre-drawing an ℓ-sender block and matching it uniformly,
// and skips that block's own sampling chain. Heavy row cells get one
// hypergeometric draw each; once cells turn light (counts are
// compaction-ordered descending, so lightness is monotone along the row)
// the remaining partners cost one Fenwick descent each over the whole
// remaining pool, the tree staying in sync with the chain's debits. For
// concentrated configurations rows exhaust within the first few sender
// states and the matrix work stays far below q².
func (d *DenseSim[S]) pairAndApply(ell int64) {
	d.tree.reset(d.counts)
	for a := 0; a < len(d.recv) && ell > 0; a++ {
		ra := d.recv[a]
		if ra == 0 {
			continue
		}
		ell -= ra
		remPop := d.total
		for bs := 0; bs < len(d.counts) && ra > 0; bs++ {
			c := d.counts[bs]
			if c == 0 {
				continue
			}
			if lightDraw(c, ra, denseHeavyCell, remPop) && ra < 2*int64(len(d.counts)-bs) {
				break
			}
			var k int64
			if remPop == ra {
				k = c // forced: every remaining agent partners this state
			} else {
				k = hypergeometric(d.rng, remPop, c, ra)
			}
			remPop -= c
			ra -= k
			if k > 0 {
				d.addCount(int32(bs), -k)
				d.tree.add(bs, -k)
				d.stats.PairCells++
				d.applyCell(int32(a), int32(bs), k)
			}
		}
		// The chain above has already fixed this row's allocation to the
		// states it walked, so the rest of the row is conditioned on the
		// remaining suffix: offsetting the descent past the prefix weight
		// (d.total − remPop, constant while the tail draws) restricts the
		// full tree to exactly that suffix.
		prefix := d.total - remPop
		for ; ra > 0; ra-- {
			bs := int32(d.tree.findAndDec(prefix + d.rng.Int64N(remPop)))
			remPop--
			d.addCount(bs, -1)
			d.stats.PairCells++
			d.applyCell(int32(a), bs, 1)
		}
	}
}

// applyCell advances mult ordered (receiver, sender) interactions of the
// state pair (ida, idb), accumulating outputs into the post multiset. A
// cached deterministic transition is applied in one shot; otherwise the
// rule runs once through the randomness-counting source, and if it
// consumed none the transition is a pure function of the pair (the Rule
// contract), so the remaining multiplicity shares its outputs — only
// genuinely randomized transitions pay one rule call per interaction.
func (d *DenseSim[S]) applyCell(ida, idb int32, mult int64) {
	if t := d.tbl; t != nil {
		if toa, tob, ok := t.probe(ida, idb); ok {
			d.stats.TableHits += mult
			// Receiver output interned first, as on the rule path, so
			// trajectories stay byte-identical (see batch.go applyPair).
			oa := t.engOf[toa]
			if oa < 0 {
				oa = d.intern(t.c.states[toa])
			}
			ob := t.engOf[tob]
			if ob < 0 {
				ob = d.intern(t.c.states[tob])
			}
			d.addPost(oa, mult)
			d.addPost(ob, mult)
			return
		}
	}
	cached := ida < cacheMaxID && idb < cacheMaxID
	var key uint64
	var slot *cacheSlot
	if cached {
		key = d.cacheGen<<44 | uint64(ida)<<22 | uint64(idb)
		slot = &d.cache[(key*0x9e3779b97f4a7c15)>>(64-denseCacheBits)]
		if slot.key == key {
			d.stats.CacheHits += mult
			d.addPost(int32(slot.out>>32), mult)
			d.addPost(int32(slot.out&math.MaxUint32), mult)
			return
		}
	}
	for mult > 0 {
		before := d.ruleRand.words
		sa, sb := d.rule(d.states[ida], d.states[idb], d.ruleRng)
		d.stats.RuleCalls++
		oa, ob := d.intern(sa), d.intern(sb)
		if d.ruleRand.words == before {
			if cached {
				*slot = cacheSlot{key: key, out: uint64(uint32(oa))<<32 | uint64(uint32(ob))}
			}
			d.addPost(oa, mult)
			d.addPost(ob, mult)
			return
		}
		d.addPost(oa, 1)
		d.addPost(ob, 1)
		mult--
	}
}

// addPost adds c to the post multiset, growing it when a rule output
// interned a new state mid-batch (growPost in batch.go).
func (d *DenseSim[S]) addPost(id int32, c int64) {
	d.post = growPost(d.post, id, c)
}

// collisionStep resolves the interaction that ended a batch — an ordered
// pair of distinct agents conditioned on at least one of them being among
// the batch's m participants — exactly as BatchSim does, with the slot
// array replaced by the post multiset: a uniform pick among slots is a
// post-count-weighted pick among states.
func (d *DenseSim[S]) collisionStep(m int64) {
	n := int64(d.n)
	o := n - m
	postLeft := m
	pickPost := func() int32 {
		u := d.rng.Int64N(postLeft)
		for id, c := range d.post {
			if u < c {
				d.post[id]--
				postLeft--
				return int32(id)
			}
			u -= c
		}
		panic("pop: DenseSim collision draw out of range")
	}
	drawOut := func() int32 {
		id := d.drawLinear(d.rng.Int64N(o))
		d.addCount(id, -1)
		return id
	}
	// Ordered distinct pairs with >=1 participant, by membership pattern.
	bothIn := m * (m - 1)
	recIn := m * o
	r := d.rng.Int64N(bothIn + 2*recIn)
	var ra, rb int32
	switch {
	case r < bothIn:
		ra = pickPost()
		rb = pickPost()
	case r < bothIn+recIn:
		ra = pickPost()
		rb = drawOut()
	default:
		rb = pickPost()
		ra = drawOut()
	}
	d.applyCell(ra, rb, 1)
}

// compact rebuilds the interning tables over the live states, ordered by
// decreasing count so hot states get small ids (and pairing rows exhaust
// early), carrying hot transition-cache entries across the id remap as in
// BatchSim.
func (d *DenseSim[S]) compact() {
	d.stats.Compactions++
	type sc struct {
		id int32
		c  int64
	}
	liveIDs := make([]sc, 0, d.live)
	for id, c := range d.counts {
		if c > 0 {
			liveIDs = append(liveIDs, sc{int32(id), c})
		}
	}
	sort.Slice(liveIDs, func(i, j int) bool { return liveIDs[i].c > liveIDs[j].c })
	remap := make([]int32, len(d.states)) // old id → new id, -1 if dead
	for i := range remap {
		remap[i] = -1
	}
	states := make([]S, 0, len(liveIDs))
	counts := make([]int64, 0, len(liveIDs))
	pos := make(map[S]int32, 2*len(liveIDs))
	for _, e := range liveIDs {
		nid := int32(len(states))
		remap[e.id] = nid
		pos[d.states[e.id]] = nid
		states = append(states, d.states[e.id])
		counts = append(counts, e.c)
	}
	d.states, d.counts, d.pos = states, counts, pos
	if d.tbl != nil {
		d.tbl.rebuild(d.states)
	}

	oldGen := d.cacheGen
	d.invalidateCache()
	if d.cacheGen == 1 {
		return // wrapped: table cleared, nothing to carry
	}
	for i := range d.cache {
		s := d.cache[i]
		if s.key == 0 || s.key>>44 != oldGen {
			continue
		}
		a, c := int32(s.key>>22)&(cacheMaxID-1), int32(s.key)&(cacheMaxID-1)
		oa, ob := int32(s.out>>32), int32(s.out&math.MaxUint32)
		if int(a) >= len(remap) || int(c) >= len(remap) || int(oa) >= len(remap) || int(ob) >= len(remap) {
			continue
		}
		na, nc, noa, nob := remap[a], remap[c], remap[oa], remap[ob]
		if na < 0 || nc < 0 || noa < 0 || nob < 0 {
			continue
		}
		key := d.cacheGen<<44 | uint64(na)<<22 | uint64(nc)
		d.cache[(key*0x9e3779b97f4a7c15)>>(64-denseCacheBits)] = cacheSlot{
			key: key, out: uint64(uint32(noa))<<32 | uint64(uint32(nob))}
	}
}
