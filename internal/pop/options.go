package pop

type options struct {
	seed              uint64
	trackStates       bool
	trackInteractions bool
	backend           Backend
	batchThreshold    int
	denseThreshold    int
	parallelism       int
	table             any // *Compiled[S]; resolved by attachTable
}

// Option configures a simulation engine at construction time.
type Option func(*options)

// Combine merges several options into one, for callers that thread a
// single configuration value through option-typed plumbing (e.g. the
// experiment harness's shared backend + parallelism selection).
func Combine(opts ...Option) Option {
	return func(o *options) {
		for _, opt := range opts {
			opt(o)
		}
	}
}

// WithSeed makes the simulation deterministic: the same seed, population
// size, initializer, rule and backend produce the identical execution.
// (Different backends consume the random stream differently and therefore
// produce different — identically distributed — executions.)
func WithSeed(seed uint64) Option {
	return func(o *options) { o.seed = seed }
}

// WithStateTracking records every distinct state that appears during the
// execution, enabling DistinctStates — the paper's state-complexity measure
// (Lemma 3.9: O(log⁴ n) states w.h.p.). For the sequential engine tracking
// costs two map insertions per interaction; leave it off for timing
// experiments. The batched engine tracks states intrinsically and ignores
// this option.
func WithStateTracking() Option {
	return func(o *options) { o.trackStates = true }
}

// WithInteractionCounts records how many interactions each agent has
// participated in, enabling InteractionCount and MaxInteractionCount
// (Lemma 3.6 / Corollary 3.7 experiments). Only the sequential engine has
// agent identities: NewBatch panics if this is set, and NewEngine with
// Auto selects the sequential backend.
func WithInteractionCounts() Option {
	return func(o *options) { o.trackInteractions = true }
}

// WithBackend selects the simulation engine implementation used by
// NewEngine / NewEngineFromConfig (default Auto). Constructors of a
// concrete engine (New, NewBatch) ignore it.
func WithBackend(b Backend) Option {
	return func(o *options) { o.backend = b }
}

// WithParallelism sets the multiset engines' intra-trial worker target.
// p = 0 (the default) is automatic: populations of at least parAutoMinN
// agents use the node-seeded divide-and-conquer sampling path with a
// GOMAXPROCS worker target, smaller ones keep the legacy serial samplers.
// p >= 1 forces the divide-and-conquer path with up to p workers at any
// size. Every p >= 1 produces the byte-identical trajectory for a given
// seed — worker count changes only the execution schedule, never a random
// draw (see parallel.go) — and the effective worker count is additionally
// capped so RunTrials-level and intra-trial parallelism never
// oversubscribe GOMAXPROCS. The sequential engine ignores the option.
// Negative values are treated as 0.
func WithParallelism(p int) Option {
	return func(o *options) { o.parallelism = max(p, 0) }
}

// WithBatchThreshold overrides the batched engine's live-state fallback
// threshold: when the number of distinct states simultaneously present
// exceeds q, BatchSim materializes an agent array and steps sequentially
// until the configuration re-concentrates. The default (8192) suits
// protocols with polylog(n) live states; tests use small values to
// exercise the fallback path. DenseSim forwards the value to the BatchSim
// it delegates to.
func WithBatchThreshold(q int) Option {
	return func(o *options) { o.batchThreshold = q }
}

// WithTable attaches a compiled transition table (CompileRule) to the
// engine, which must run that table's compiled rule. The multiset
// backends then resolve declared deterministic transitions by direct
// table lookup instead of the randomness-counting cache probe — a
// declared-deterministic table never invokes the rule — and pre-size
// their interning maps for the declared state set. Trajectories are
// byte-identical with and without the option (see table.go); it only
// changes how transitions are resolved. The sequential engine ignores
// it. Attaching a table compiled for a different state type panics at
// engine construction.
func WithTable[S comparable](c *Compiled[S]) Option {
	return func(o *options) { o.table = c }
}

// WithDenseThreshold overrides the count-vector engine's live-state
// delegation threshold: when the number of distinct states simultaneously
// present exceeds q, DenseSim's pair-matrix batches stop paying relative
// to slot batching and it delegates to an internal BatchSim until the
// configuration re-concentrates below q/2. The default scales with the
// expected collision-free batch length (~√n/6); tests use small values to
// exercise the delegation path.
func WithDenseThreshold(q int) Option {
	return func(o *options) { o.denseThreshold = q }
}
