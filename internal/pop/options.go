package pop

type options struct {
	seed              uint64
	trackStates       bool
	trackInteractions bool
}

// Option configures a Sim at construction time.
type Option func(*options)

// WithSeed makes the simulation deterministic: the same seed, population
// size, initializer and rule produce the identical execution.
func WithSeed(seed uint64) Option {
	return func(o *options) { o.seed = seed }
}

// WithStateTracking records every distinct state that appears during the
// execution, enabling DistinctStates — the paper's state-complexity measure
// (Lemma 3.9: O(log⁴ n) states w.h.p.). Tracking costs two map insertions
// per interaction; leave it off for timing experiments.
func WithStateTracking() Option {
	return func(o *options) { o.trackStates = true }
}

// WithInteractionCounts records how many interactions each agent has
// participated in, enabling InteractionCount and MaxInteractionCount
// (Lemma 3.6 / Corollary 3.7 experiments).
func WithInteractionCounts() Option {
	return func(o *options) { o.trackInteractions = true }
}
