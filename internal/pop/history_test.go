package pop

import (
	"math"
	"math/rand/v2"
	"testing"
)

// TestHistorySamplingGrid: a history-driven run must record the initial
// configuration, one sample per Δ grid point, and a final sample whose
// configuration matches the engine's own Counts().
func TestHistorySamplingGrid(t *testing.T) {
	for _, bk := range []Backend{Sequential, Batched, Dense} {
		t.Run(bk.String(), func(t *testing.T) {
			const n = 2000
			e := NewEngine(n, func(i int, _ *rand.Rand) int { return i % 5 }, mixedRule,
				WithSeed(13), WithBackend(bk))
			h := NewHistory[int](0.5)
			ok, at := h.RunUntil(e, func(Engine[int]) bool { return false }, 2, 10)
			if ok {
				t.Fatal("pred never holds but RunUntil reported success")
			}
			if at < 10 {
				t.Fatalf("run stopped at time %g, want >= 10", at)
			}
			samples := h.Samples()
			if len(samples) < 20 {
				t.Fatalf("got %d samples for Δ=0.5 over >= 10 time units, want >= 20", len(samples))
			}
			if samples[0].Time != 0 || samples[0].Interactions != 0 {
				t.Fatalf("first sample at t=%g i=%d, want the initial configuration",
					samples[0].Time, samples[0].Interactions)
			}
			// Interior samples land on the Δ grid (the engine overshoots a
			// boundary by at most one interaction = 1/n time units).
			for _, s := range samples[1:] {
				nearest := math.Round(s.Time/0.5) * 0.5
				if d := s.Time - nearest; d < -historyEps || d > 2.0/float64(s.N) {
					t.Fatalf("sample at t=%g is %g past grid point %g, want < %g",
						s.Time, d, nearest, 2.0/float64(s.N))
				}
				sum := 0
				for _, c := range s.Counts {
					sum += c
				}
				if sum != s.N {
					t.Fatalf("sample at t=%g sums to %d agents, want %d", s.Time, sum, s.N)
				}
			}
			// The last sample is the engine's current configuration.
			last := samples[len(samples)-1]
			if last.Interactions != e.Interactions() {
				t.Fatalf("last sample at interaction %d, engine at %d", last.Interactions, e.Interactions())
			}
			want := e.Counts()
			if len(want) != len(last.Counts) {
				t.Fatalf("last sample has %d states, engine %d", len(last.Counts), len(want))
			}
			for s, c := range want {
				if last.Counts[s] != c {
					t.Fatalf("last sample count of %v is %d, engine says %d", s, last.Counts[s], c)
				}
			}
			// Samples are strictly ordered.
			for i := 1; i < len(samples); i++ {
				if samples[i].Interactions <= samples[i-1].Interactions {
					t.Fatalf("samples %d and %d are not strictly ordered", i-1, i)
				}
			}
		})
	}
}

// TestHistoryPredStop: convergence must still stop the run at a check
// boundary, with a final sample recorded there.
func TestHistoryPredStop(t *testing.T) {
	const n = 1000
	e := NewEngine(n, func(i int, _ *rand.Rand) int { return i % 2 }, maxRule, WithSeed(3))
	h := NewHistory[int](0.25)
	converged := func(e Engine[int]) bool {
		return e.All(func(s int) bool { return s == 1 })
	}
	ok, at := h.RunUntil(e, converged, 1, 200)
	if !ok {
		t.Fatalf("max-epidemic did not converge by time %g", at)
	}
	samples := h.Samples()
	last := samples[len(samples)-1]
	if last.Interactions != e.Interactions() {
		t.Fatalf("last sample at interaction %d, engine stopped at %d", last.Interactions, e.Interactions())
	}
	if last.Counts[1] != n {
		t.Fatalf("final sample not converged: %v", last.Counts)
	}
}

// TestHistoryChurn: samples taken across join/leave events must carry the
// population size they were measured against, with the time axis following
// the per-segment accounting.
func TestHistoryChurn(t *testing.T) {
	const n = 1000
	e := NewEngine(n, func(i int, _ *rand.Rand) int { return i % 5 }, mixedRule, WithSeed(21))
	h := NewHistory[int](0.5)
	h.Observe(e)
	e.RunTime(1)
	h.Observe(e)
	e.AddAgents(2, 500)
	e.RunTime(1)
	h.Observe(e)
	e.RemoveAgents(800)
	e.RunTime(1)
	h.Observe(e)
	samples := h.Samples()
	if len(samples) != 4 {
		t.Fatalf("got %d samples, want 4", len(samples))
	}
	wantN := []int{1000, 1000, 1500, 700}
	for i, s := range samples {
		if s.N != wantN[i] {
			t.Fatalf("sample %d has N=%d, want %d", i, s.N, wantN[i])
		}
		sum := 0
		for _, c := range s.Counts {
			sum += c
		}
		if sum != s.N {
			t.Fatalf("sample %d sums to %d, want %d", i, sum, s.N)
		}
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Time <= samples[i-1].Time {
			t.Fatalf("sample times not increasing: %g then %g", samples[i-1].Time, samples[i].Time)
		}
	}
}

func TestHistoryBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistory(0) did not panic")
		}
	}()
	NewHistory[int](0)
}
