package clock

import (
	"math/rand/v2"

	"github.com/popsim/popsize/internal/pop"
)

// LeaderState is one agent of the leader-driven phase clock of Angluin,
// Aspnes & Eisenstat [9] (monotone-phase formulation).
type LeaderState struct {
	// Leader marks the unique clock driver.
	Leader bool
	// Phase is the agent's current phase. Followers adopt the maximum
	// phase they see; the leader advances from p to p+1 exactly when it
	// meets a follower already at p.
	Phase uint32
}

// LeaderDriven is the [9]-style phase clock. Each phase takes Θ(log n)
// parallel time w.h.p.: after the leader advances to p, the set of
// followers at p grows by epidemic and the leader advances again when its
// random partner belongs to that set.
type LeaderDriven struct{}

// Initial places a leader at index 0 and followers elsewhere.
func (LeaderDriven) Initial(i int, _ *rand.Rand) LeaderState {
	return LeaderState{Leader: i == 0}
}

// Rule implements follower max-adoption and the leader advancement rule.
// Both agents transition on the states observed *before* the interaction
// (otherwise a follower that just synchronized would trigger the leader in
// the same interaction, collapsing phases to O(1) duration).
func (LeaderDriven) Rule(rec, sen LeaderState, _ *rand.Rand) (LeaderState, LeaderState) {
	return advance(rec, sen), advance(sen, rec)
}

func advance(a, b LeaderState) LeaderState {
	switch {
	case a.Leader && !b.Leader && b.Phase == a.Phase:
		a.Phase++
	case a.Phase < b.Phase:
		a.Phase = b.Phase
	}
	return a
}

// LeaderPhase returns the phase of the leader agent (the maximum over
// leaders if several were configured).
func LeaderPhase(s pop.Engine[LeaderState]) uint32 {
	var m uint32
	for a := range s.Counts() {
		if a.Leader && a.Phase > m {
			m = a.Phase
		}
	}
	return m
}
