package clock

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/popsim/popsize/internal/pop"
)

func TestLeaderlessTick(t *testing.T) {
	c := Leaderless{Threshold: 3}
	tests := []struct {
		name string
		in   LeaderlessState
		want LeaderlessState
	}{
		{"plain increment", LeaderlessState{Count: 0, Round: 0}, LeaderlessState{Count: 1, Round: 0}},
		{"threshold bumps round", LeaderlessState{Count: 2, Round: 4}, LeaderlessState{Count: 0, Round: 5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := c.tick(tt.in); got != tt.want {
				t.Errorf("tick(%+v) = %+v, want %+v", tt.in, got, tt.want)
			}
		})
	}
}

// TestLeaderlessRoundsMonotone: under the rule, neither agent's round ever
// decreases (property-based).
func TestLeaderlessRoundsMonotone(t *testing.T) {
	c := Leaderless{Threshold: 10}
	f := func(rc, rr, sc, sr uint16) bool {
		rec := LeaderlessState{Count: uint32(rc % 10), Round: uint32(rr)}
		sen := LeaderlessState{Count: uint32(sc % 10), Round: uint32(sr)}
		gr, gs := c.Rule(rec, sen, nil)
		return gr.Round >= rec.Round && gs.Round >= sen.Round
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestLeaderlessRoundSpread runs the clock and checks that rounds advance
// and the population never spreads across more than two round values at a
// check point (the epidemic resynchronizes faster than rounds turn over
// when the threshold is Θ(log n) or larger).
func TestLeaderlessRoundSpread(t *testing.T) {
	const n = 500
	threshold := uint32(16 * math.Log2(n)) // comfortably above the epidemic window
	c := Leaderless{Threshold: threshold}
	s := pop.New(n, c.Initial, c.Rule, pop.WithSeed(3))
	for i := 0; i < 40; i++ {
		s.RunTime(float64(threshold) / 4)
		if spread := MaxRound(s) - MinRound(s); spread > 1 {
			t.Fatalf("round spread %d > 1 at time %.0f", spread, s.Time())
		}
	}
	if MaxRound(s) < 3 {
		t.Errorf("clock advanced only to round %d after %.0f time units", MaxRound(s), s.Time())
	}
}

// TestLeaderDrivenPhaseGrowth checks the Θ(log n) per-phase scaling of the
// [9] clock: time to reach a fixed phase target grows roughly like log n.
func TestLeaderDrivenPhaseGrowth(t *testing.T) {
	const phases = 30
	timeFor := func(n int) float64 {
		var ld LeaderDriven
		s := pop.New(n, ld.Initial, ld.Rule, pop.WithSeed(11))
		ok, at := s.RunUntil(func(s pop.Engine[LeaderState]) bool {
			return LeaderPhase(s) >= phases
		}, 1, 1e7)
		if !ok {
			t.Fatalf("n=%d: leader did not reach phase %d", n, phases)
		}
		return at
	}
	t256 := timeFor(256)
	t4096 := timeFor(4096)
	// log 4096 / log 256 = 1.5; allow a generous bracket around it.
	ratio := t4096 / t256
	if ratio < 1.1 || ratio > 2.6 {
		t.Errorf("phase-time ratio (n=4096 vs 256) = %.2f, want ≈ 1.5 (Θ(log n) per phase)", ratio)
	}
}

// TestLeaderDrivenSingleLeader: the rule never creates or destroys leaders.
func TestLeaderDrivenSingleLeader(t *testing.T) {
	var ld LeaderDriven
	f := func(aPhase, bPhase uint16, aLead, bLead bool) bool {
		a := LeaderState{Leader: aLead, Phase: uint32(aPhase)}
		b := LeaderState{Leader: bLead, Phase: uint32(bPhase)}
		ga, gb := ld.Rule(a, b, nil)
		return ga.Leader == aLead && gb.Leader == bLead
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
