// Package clock implements the two phase-clock substrates of the paper:
//
//   - the uniform leaderless phase clock of Section 3.1/3.2 (each agent
//     counts its own interactions against a threshold derived from the weak
//     size estimate; round numbers synchronize by max-epidemic), and
//   - the leader-driven phase clock of Angluin, Aspnes & Eisenstat [9] used
//     by Theorem 3.13.
//
// Both are exposed as standalone reusable primitives (see
// examples/phaseclock) and consumed by the composition framework.
package clock

import (
	"math/rand/v2"

	"github.com/popsim/popsize/internal/pop"
)

// LeaderlessState is one agent of the leaderless phase clock.
type LeaderlessState struct {
	// Count is the number of interactions this agent has had in the
	// current round.
	Count uint32
	// Round is the current round number. Rounds only increase.
	Round uint32
}

// Leaderless is a leaderless phase clock with a fixed per-round interaction
// threshold. The first agent whose count reaches the threshold begins the
// next round; the new round number spreads by epidemic, resetting counts.
//
// Lemma 3.6 is the reason this is a clock: in C·ln n parallel time no agent
// exceeds (2C+√(12C))·ln n interactions w.h.p., so a threshold of
// Θ(log n) guarantees rounds of duration Θ(log n).
type Leaderless struct {
	// Threshold is the per-round interaction count (Θ(log n) for the
	// paper's use; callers derive it from the weak size estimate).
	Threshold uint32
}

// Initial returns the all-zero initial clock state.
func (Leaderless) Initial(_ int, _ *rand.Rand) LeaderlessState { return LeaderlessState{} }

// Rule advances both agents' clocks: counts increment, a count reaching the
// threshold bumps the round, and the larger round wins (resetting the
// adopter's count).
func (c Leaderless) Rule(rec, sen LeaderlessState, _ *rand.Rand) (LeaderlessState, LeaderlessState) {
	rec = c.tick(rec)
	sen = c.tick(sen)
	switch {
	case rec.Round < sen.Round:
		rec.Round = sen.Round
		rec.Count = 0
	case sen.Round < rec.Round:
		sen.Round = rec.Round
		sen.Count = 0
	}
	return rec, sen
}

func (c Leaderless) tick(a LeaderlessState) LeaderlessState {
	a.Count++
	if a.Count >= c.Threshold {
		a.Round++
		a.Count = 0
	}
	return a
}

// MinRound returns the smallest round among agents.
func MinRound(s pop.Engine[LeaderlessState]) uint32 {
	m := ^uint32(0)
	for a := range s.Counts() {
		if a.Round < m {
			m = a.Round
		}
	}
	return m
}

// MaxRound returns the largest round among agents.
func MaxRound(s pop.Engine[LeaderlessState]) uint32 {
	var m uint32
	for a := range s.Counts() {
		if a.Round > m {
			m = a.Round
		}
	}
	return m
}
