package leaderelect

import "math/rand/v2"

func testRandFor() *rand.Rand {
	return rand.New(rand.NewPCG(51, 52))
}
