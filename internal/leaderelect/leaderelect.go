// Package leaderelect implements a nonuniform level-based leader-election
// protocol ([29]-style junta election): in each stage every surviving
// candidate draws a fresh geometric level, the population max-propagates
// the stage's level, and candidates below the maximum drop out. A
// coin-flip tiebreak between meeting candidates guarantees eventual
// uniqueness with probability 1 while never eliminating the last candidate.
//
// The protocol needs Θ(log n) stages — the nonuniform ingredient — so it is
// the second downstream client of internal/compose (experiment E17).
package leaderelect

import (
	"math/rand/v2"

	"github.com/popsim/popsize/internal/compose"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/prob"
)

// State is one agent of the leader-election protocol.
type State struct {
	// Candidate marks an agent still in the running.
	Candidate bool
	// Lvl is the candidate's current-stage geometric level.
	Lvl uint8
	// MaxSeen is the largest level observed this stage (relayed by
	// everyone, candidate or not).
	MaxSeen uint8
}

// Initial returns a fresh candidate with a level drawn for stage 0.
func Initial(_ int, r *rand.Rand) State {
	l := sample(r)
	return State{Candidate: true, Lvl: l, MaxSeen: l}
}

// Transition relays the stage maximum, eliminates dominated candidates,
// and breaks exact ties by coin flip (receiver drops), which can never
// eliminate the final candidate.
func Transition(rec, sen State, _, _ int, r *rand.Rand) (State, State) {
	m := max(rec.MaxSeen, sen.MaxSeen)
	rec.MaxSeen, sen.MaxSeen = m, m
	rec = eliminate(rec)
	sen = eliminate(sen)
	if rec.Candidate && sen.Candidate && rec.Lvl == sen.Lvl && r.IntN(2) == 0 {
		rec.Candidate = false
	}
	return rec, sen
}

func eliminate(a State) State {
	if a.Candidate && a.Lvl < a.MaxSeen {
		a.Candidate = false
	}
	return a
}

// OnStage begins a new stage: candidates redraw their level; everyone's
// MaxSeen resets to their own contribution.
func OnStage(a State, _, _ int, r *rand.Rand) State {
	if a.Candidate {
		a.Lvl = sample(r)
		a.MaxSeen = a.Lvl
	} else {
		a.Lvl = 0
		a.MaxSeen = 0
	}
	return a
}

// Reset restores the agent to a fresh candidate (composition restart).
func Reset(_ State, r *rand.Rand) State { return Initial(0, r) }

// Downstream packages the protocol for internal/compose with K = s stages.
func Downstream() compose.Downstream[State] {
	return compose.Downstream[State]{
		Init:       Initial,
		Transition: Transition,
		OnStage:    OnStage,
		Reset:      Reset,
		Stages:     func(sEst int) int { return sEst },
	}
}

// Candidates counts surviving candidates in a composed simulation.
func Candidates(s pop.Engine[compose.State[State]]) int {
	return s.Count(func(a compose.State[State]) bool { return a.D.Candidate })
}

func sample(r *rand.Rand) uint8 {
	g := prob.Geometric(r)
	if g > 255 {
		g = 255
	}
	return uint8(g)
}
