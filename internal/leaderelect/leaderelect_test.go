package leaderelect

import (
	"testing"

	"github.com/popsim/popsize/internal/compose"
	"github.com/popsim/popsize/internal/pop"
)

// TestAtLeastOneCandidateSurvives: elimination never removes the last
// candidate — the max-level candidate can only lose a coin-flip tiebreak,
// which requires another candidate at the same level to survive it.
func TestAtLeastOneCandidateSurvives(t *testing.T) {
	p := compose.MustNew(compose.Config{F: 16}, Downstream())
	const n = 400
	s := p.NewSim(n, pop.WithSeed(17))
	for i := 0; i < 60; i++ {
		s.RunTime(10)
		if c := Candidates(s); c < 1 {
			t.Fatalf("no candidates left at time %.0f", s.Time())
		}
	}
}

// TestElectsUniqueLeader: after the composed stages complete, exactly one
// candidate remains (w.h.p.; asserted across seeds).
func TestElectsUniqueLeader(t *testing.T) {
	if testing.Short() {
		t.Skip("full runs are not short")
	}
	const n = 400
	for seed := uint64(0); seed < 4; seed++ {
		p := compose.MustNew(compose.Config{F: 16}, Downstream())
		s := p.NewSim(n, pop.WithSeed(seed))
		ok, _ := s.RunUntil(p.Converged, 10, 2e5)
		if !ok {
			t.Fatalf("seed %d: composition did not converge", seed)
		}
		// The coin-flip tiebreak keeps running; give it a little time.
		ok, _ = s.RunUntil(func(s pop.Engine[compose.State[State]]) bool {
			return Candidates(s) == 1
		}, 10, 1e5)
		if !ok {
			t.Errorf("seed %d: %d candidates remain", seed, Candidates(s))
		}
	}
}

// TestEliminationDominance: a candidate strictly below the observed
// maximum drops out.
func TestEliminationDominance(t *testing.T) {
	r := testRandFor()
	rec := State{Candidate: true, Lvl: 2, MaxSeen: 2}
	sen := State{Candidate: false, Lvl: 0, MaxSeen: 7}
	gr, _ := Transition(rec, sen, 0, 0, r)
	if gr.Candidate {
		t.Errorf("dominated candidate survived: %+v", gr)
	}
	if gr.MaxSeen != 7 {
		t.Errorf("max not relayed: %+v", gr)
	}
}
