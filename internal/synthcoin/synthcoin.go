// Package synthcoin implements the Appendix B variant of the
// Log-Size-Estimation protocol: size estimation with no access to random
// bits. The transition function is fully deterministic (it never consumes
// random bits); all randomness comes from the scheduler's uniformly random
// choice of which interacting agent is the sender and which the receiver,
// following the synthetic-coin technique of [39].
//
// Agents partition into A (compute) and F (coin-flipper) roles. An A agent
// generates a geometric random variable by counting how many consecutive
// A–F interactions it participates in as the *sender* before it is first
// the *receiver* (Protocols 10–19). Unlike the main protocol there is no S
// role: each A agent accumulates its own sum, costing O(log⁶ n) states
// (Lemma B.5) instead of O(log⁴ n).
package synthcoin

import (
	"fmt"
	"math/rand/v2"

	"github.com/popsim/popsize/internal/pop"
)

// Role identifies an agent's sub-population.
type Role uint8

// Roles. F agents exist only to provide fair coins.
const (
	RoleX Role = iota + 1 // undecided (initial)
	RoleA                 // computes the estimate
	RoleF                 // provides coin flips
)

// Config carries the protocol's constants (see Protocol 10's use of
// 95·logSize2 and 5·logSize2).
type Config struct {
	// ClockFactor is the per-epoch interaction threshold multiplier
	// (the paper's 95).
	ClockFactor int
	// EpochFactor sets the number of epochs K = EpochFactor·logSize2
	// (the paper's 5).
	EpochFactor int
}

// PaperConfig returns Protocol 10's constants.
func PaperConfig() Config { return Config{ClockFactor: 95, EpochFactor: 5} }

// FastConfig returns reduced constants for simulation-budget-friendly runs
// (see DESIGN.md §2).
func FastConfig() Config { return Config{ClockFactor: 16, EpochFactor: 2} }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.ClockFactor < 1 || c.EpochFactor < 1 {
		return fmt.Errorf("synthcoin: factors must be >= 1, got %+v", c)
	}
	return nil
}

// State is the full per-agent memory of Protocol 10.
type State struct {
	Role Role
	// LogSize2 is the weak size estimate being generated/propagated. The
	// "+2" of Lemma 3.8 is added on generation completion, exactly as in
	// Subprotocol 12.
	LogSize2 uint8
	// LogSize2Gen marks completion of the logSize2 generation.
	LogSize2Gen bool
	// GR is the current epoch's geometric variable (grows while the agent
	// keeps being the sender against F agents).
	GR uint8
	// GRGen marks completion of the current gr generation.
	GRGen bool
	// Time counts own interactions in the current epoch.
	Time uint16
	// Epoch counts completed epochs.
	Epoch uint16
	// Sum accumulates this agent's own per-epoch gr values.
	Sum uint32
	// Done marks completion of all K epochs.
	Done bool
}

// Initial returns the uniform initial state of Protocol 10.
func Initial() State {
	return State{Role: RoleX, LogSize2: 1, GR: 1}
}

// Estimate returns sum/epoch + 1 for a Done A agent.
func (s State) Estimate() (float64, bool) {
	if !s.Done || s.Epoch == 0 {
		return 0, false
	}
	return float64(s.Sum)/float64(s.Epoch) + 1, true
}

// Protocol is the synthetic-coin size-estimation protocol.
type Protocol struct {
	cfg Config
}

// New returns a Protocol with the given configuration.
func New(cfg Config) (*Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Protocol{cfg: cfg}, nil
}

// MustNew is New, panicking on an invalid configuration.
func MustNew(cfg Config) *Protocol {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Initial returns the uniform initial state.
func (p *Protocol) Initial(_ int, _ *rand.Rand) State { return Initial() }

func (p *Protocol) threshold(logSize2 uint8) uint32 {
	return uint32(p.cfg.ClockFactor) * uint32(logSize2)
}

func (p *Protocol) epochTarget(logSize2 uint8) uint32 {
	return uint32(p.cfg.EpochFactor) * uint32(logSize2)
}

// Rule is the deterministic transition function of Protocol 10. It never
// reads the random source; receiver/sender position is the only coin.
func (p *Protocol) Rule(rec, sen State, _ *rand.Rand) (State, State) {
	rec, sen = partition(rec, sen)

	if rec.Role == RoleA {
		rec = p.tick(rec)
	}
	if sen.Role == RoleA {
		sen = p.tick(sen)
	}

	switch {
	case rec.Role == RoleA && sen.Role == RoleF:
		rec = generate(rec, false) // the A agent is the receiver: heads
	case sen.Role == RoleA && rec.Role == RoleF:
		sen = generate(sen, true) // the A agent is the sender: tails
	case rec.Role == RoleA && sen.Role == RoleA:
		rec, sen = p.pairAA(rec, sen)
	}
	return rec, sen
}

// partition implements Partition-Into-A/F (Subprotocol 11), with the same
// unordered reading as the main protocol's Subprotocol 2.
func partition(rec, sen State) (State, State) {
	switch {
	case rec.Role == RoleX && sen.Role == RoleX:
		sen.Role = RoleA
		rec.Role = RoleF
	case sen.Role == RoleX:
		if rec.Role == RoleA {
			sen.Role = RoleF
		} else {
			sen.Role = RoleA
		}
	case rec.Role == RoleX:
		if sen.Role == RoleA {
			rec.Role = RoleF
		} else {
			rec.Role = RoleA
		}
	}
	return rec, sen
}

// tick implements the Time increment plus
// Check-if-Timer-Done-and-Increment-Epoch (Subprotocol 17).
func (p *Protocol) tick(a State) State {
	if a.Done {
		return a
	}
	a.Time++
	if uint32(a.Time) >= p.threshold(a.LogSize2) {
		a.Epoch++
		a = updateSum(a)
		if uint32(a.Epoch) >= p.epochTarget(a.LogSize2) {
			a.Done = true
		}
	}
	return a
}

// updateSum implements Subprotocol 19: accumulate the agent's own gr and
// start generating the next one.
func updateSum(a State) State {
	a.Sum += uint32(a.GR)
	a.Time = 0
	a.GR = 1
	a.GRGen = false
	return a
}

// generate implements Generate-Clock (Subprotocol 12) and Generate-G.R.V
// (Subprotocol 15): while the A agent keeps being the sender the counter
// grows; its first receiver interaction completes the variable. The +2 on
// logSize2 completion is Lemma 3.8's bonus, explicit in Subprotocol 12.
func generate(a State, sender bool) State {
	switch {
	case !a.LogSize2Gen:
		if sender {
			if a.LogSize2 < 253 {
				a.LogSize2++
			}
		} else {
			a.LogSize2Gen = true
			a.LogSize2 += 2
		}
	case !a.GRGen:
		if sender {
			if a.GR < 255 {
				a.GR++
			}
		} else {
			a.GRGen = true
		}
	}
	return a
}

// pairAA implements the A–A interactions of Protocol 10:
// Propagate-Max-Clock-Value with Restart (Subprotocols 13/14, gated on both
// agents having completed logSize2 generation — see DESIGN.md),
// Propagate-Incremented-Epoch (Subprotocol 18, with Update-Sum on
// adoption), and Propagate-Max-G.R.V. (Subprotocol 16).
func (p *Protocol) pairAA(a, b State) (State, State) {
	if a.LogSize2Gen && b.LogSize2Gen {
		switch {
		case a.LogSize2 < b.LogSize2:
			a.LogSize2 = b.LogSize2
			a = restart(a)
		case b.LogSize2 < a.LogSize2:
			b.LogSize2 = a.LogSize2
			b = restart(b)
		}
	}
	if a.GRGen && b.GRGen {
		switch {
		case !a.Done && a.Epoch < b.Epoch:
			a.Epoch = b.Epoch
			a = updateSum(a)
			if uint32(a.Epoch) >= p.epochTarget(a.LogSize2) {
				a.Done = true
			}
		case !b.Done && b.Epoch < a.Epoch:
			b.Epoch = a.Epoch
			b = updateSum(b)
			if uint32(b.Epoch) >= p.epochTarget(b.LogSize2) {
				b.Done = true
			}
		}
		if !a.Done && !b.Done && a.Epoch == b.Epoch {
			if a.GR < b.GR {
				a.GR = b.GR
			} else if b.GR < a.GR {
				b.GR = a.GR
			}
		}
	}
	return a, b
}

// restart implements Subprotocol 14.
func restart(a State) State {
	a.Time = 0
	a.Sum = 0
	a.Epoch = 0
	a.GR = 1
	a.GRGen = false
	a.Done = false
	return a
}

// Converged reports that every agent has a role and every A agent is Done
// with a common logSize2 (the F agents hold no output by design; see
// Appendix B and DESIGN.md).
func (p *Protocol) Converged(s pop.Engine[State]) bool {
	var ls uint8
	ok := s.All(func(a State) bool {
		if a.Role == RoleX {
			return false
		}
		if a.Role != RoleA {
			return true
		}
		if !a.Done {
			return false
		}
		if ls == 0 {
			ls = a.LogSize2
		} else if a.LogSize2 != ls {
			return false
		}
		return true
	})
	return ok && ls != 0
}

// NewSim constructs a simulator for the protocol.
func (p *Protocol) NewSim(n int, opts ...pop.Option) *pop.Sim[State] {
	return pop.New(n, p.Initial, p.Rule, opts...)
}
