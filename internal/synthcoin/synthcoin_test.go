package synthcoin

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/popsim/popsize/internal/pop"
)

func TestConfigValidate(t *testing.T) {
	if err := PaperConfig().Validate(); err != nil {
		t.Errorf("PaperConfig invalid: %v", err)
	}
	if err := (Config{ClockFactor: 0, EpochFactor: 5}).Validate(); err == nil {
		t.Error("zero ClockFactor accepted")
	}
}

// TestRuleIsDeterministic: the transition function is a pure function of
// the two observed states (the synthetic-coin point of Appendix B).
func TestRuleIsDeterministic(t *testing.T) {
	p := MustNew(FastConfig())
	f := func(roleR, roleS uint8, lsR, lsS, grR, grS uint8, genR, genS bool) bool {
		rec := State{Role: Role(roleR%3 + 1), LogSize2: lsR%40 + 1, GR: grR%40 + 1, LogSize2Gen: genR}
		sen := State{Role: Role(roleS%3 + 1), LogSize2: lsS%40 + 1, GR: grS%40 + 1, LogSize2Gen: genS}
		r1a, r1b := p.Rule(rec, sen, nil)
		r2a, r2b := p.Rule(rec, sen, nil)
		return r1a == r2a && r1b == r2b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestGenerateGeometric: an A agent's logSize2 grows while it keeps being
// the sender against F agents and completes (with the +2 bonus) on its
// first receiver interaction.
func TestGenerateGeometric(t *testing.T) {
	a := State{Role: RoleA, LogSize2: 1, GR: 1}
	for i := 0; i < 3; i++ {
		a = generate(a, true)
	}
	if a.LogSize2 != 4 || a.LogSize2Gen {
		t.Fatalf("after 3 sender flips: %+v, want logSize2 4, not generated", a)
	}
	a = generate(a, false)
	if a.LogSize2 != 6 || !a.LogSize2Gen {
		t.Fatalf("after completion: %+v, want logSize2 6 (=4+2), generated", a)
	}
	// gr generation begins next.
	a = generate(a, true)
	a = generate(a, false)
	if a.GR != 2 || !a.GRGen {
		t.Errorf("gr generation: %+v, want gr 2, generated", a)
	}
}

func TestRestartPreservesLogSize2(t *testing.T) {
	a := State{Role: RoleA, LogSize2: 9, LogSize2Gen: true, GR: 5, GRGen: true,
		Time: 44, Epoch: 3, Sum: 17, Done: true}
	got := restart(a)
	if got.LogSize2 != 9 || !got.LogSize2Gen {
		t.Errorf("restart touched logSize2: %+v", got)
	}
	if got.Time != 0 || got.Epoch != 0 || got.Sum != 0 || got.Done || got.GRGen || got.GR != 1 {
		t.Errorf("restart did not reset downstream state: %+v", got)
	}
}

// TestPartitionBalance mirrors the main protocol's Lemma 3.2 check.
func TestPartitionBalance(t *testing.T) {
	p := MustNew(FastConfig())
	const n = 2000
	s := pop.New(n, p.Initial, p.Rule, pop.WithSeed(2))
	s.RunTime(6 * math.Log2(n))
	if x := s.Count(func(a State) bool { return a.Role == RoleX }); x != 0 {
		t.Fatalf("%d agents still undecided", x)
	}
	a := s.Count(func(a State) bool { return a.Role == RoleA })
	if a < n/3 || a > 2*n/3 {
		t.Errorf("|A| = %d outside [n/3, 2n/3]", a)
	}
}

// TestEndToEnd runs the deterministic-transition protocol to convergence
// and checks the estimate quality (Appendix B promises the same error
// bounds as the main protocol).
func TestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full protocol runs are not short")
	}
	p := MustNew(FastConfig())
	for _, n := range []int{128, 512} {
		s := p.NewSim(n, pop.WithSeed(7))
		maxT := 40.0 * float64(p.cfg.ClockFactor*p.cfg.EpochFactor) * math.Log2(float64(n)) * math.Log2(float64(n))
		ok, _ := s.RunUntil(p.Converged, math.Log2(float64(n)), maxT)
		if !ok {
			t.Fatalf("n=%d: did not converge", n)
		}
		logN := math.Log2(float64(n))
		for i, a := range s.Agents() {
			est, has := a.Estimate()
			if a.Role != RoleA {
				continue
			}
			if !has {
				t.Fatalf("n=%d: done A agent %d has no estimate", n, i)
			}
			if math.Abs(est-logN) > 6.7 {
				t.Errorf("n=%d: agent %d estimate %.2f misses log n %.2f by > 6.7", n, i, est, logN)
			}
		}
	}
}
