package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/popsim/popsize/internal/pop"
)

// Converged reports the paper's Figure-2 convergence criterion plus output
// delivery: every agent has a role, all agents agree on logSize2, every
// agent has completed all K epochs, and every agent holds an output. It is
// expressed over the configuration vector, so it costs O(live states) on
// the batched engine.
func (p *Protocol) Converged(s pop.Engine[State]) bool {
	first := true
	var ls uint8
	return s.All(func(a State) bool {
		if a.Role == RoleX || !a.HasOutput {
			return false
		}
		if first {
			ls, first = a.LogSize2, false
		} else if a.LogSize2 != ls {
			return false
		}
		return uint32(a.Epoch) >= p.cfg.EpochTarget(a.LogSize2)
	})
}

// ConvergedEpoch reports the strict Figure-2 criterion from the paper's
// caption: all agents have reached epoch = EpochFactor·logSize2 (with a
// common logSize2), without requiring output delivery.
func (p *Protocol) ConvergedEpoch(s pop.Engine[State]) bool {
	first := true
	var ls uint8
	return s.All(func(a State) bool {
		if a.Role == RoleX {
			return false
		}
		if first {
			ls, first = a.LogSize2, false
		} else if a.LogSize2 != ls {
			return false
		}
		return uint32(a.Epoch) >= p.cfg.EpochTarget(a.LogSize2)
	})
}

// EstimateStats summarizes the outputs across a population.
type EstimateStats struct {
	// HaveOutput is the number of agents holding an output.
	HaveOutput int
	// Min and Max are the extreme per-agent estimates.
	Min, Max float64
	// Mean is the average per-agent estimate.
	Mean float64
	// MaxErr is the largest |estimate − log2 n| over agents with output.
	MaxErr float64
}

// Estimates returns output statistics for the current configuration of s.
func Estimates(s pop.Engine[State]) EstimateStats {
	logN := math.Log2(float64(s.N()))
	st := EstimateStats{Min: math.Inf(1), Max: math.Inf(-1)}
	// Counts iterates in map order; accumulate the mean over a sorted
	// copy so the floating-point result is deterministic for a seed.
	type weighted struct {
		est float64
		cnt int
	}
	var ests []weighted
	for a, cnt := range s.Counts() {
		est, ok := a.Estimate()
		if !ok {
			continue
		}
		ests = append(ests, weighted{est, cnt})
		st.HaveOutput += cnt
		st.Min = math.Min(st.Min, est)
		st.Max = math.Max(st.Max, est)
		st.MaxErr = math.Max(st.MaxErr, math.Abs(est-logN))
	}
	sort.Slice(ests, func(i, j int) bool {
		if ests[i].est != ests[j].est {
			return ests[i].est < ests[j].est
		}
		return ests[i].cnt < ests[j].cnt
	})
	sum := 0.0
	for _, w := range ests {
		sum += w.est * float64(w.cnt)
	}
	if st.HaveOutput > 0 {
		st.Mean = sum / float64(st.HaveOutput)
	} else {
		st.Min, st.Max = 0, 0
	}
	return st
}

// FieldMaxima records the largest value taken by each Protocol-1 field over
// a configuration; the Lemma 3.9 state bound is the product of the live
// field ranges.
type FieldMaxima struct {
	LogSize2 uint8
	GR       uint8
	Time     uint16
	Epoch    uint16
	Sum      uint32
}

// Maxima scans the configuration and returns per-field maxima.
func Maxima(s pop.Engine[State]) FieldMaxima {
	var m FieldMaxima
	for a := range s.Counts() {
		m.LogSize2 = max(m.LogSize2, a.LogSize2)
		m.GR = max(m.GR, a.GR)
		m.Time = max(m.Time, a.Time)
		m.Epoch = max(m.Epoch, a.Epoch)
		m.Sum = max(m.Sum, a.Sum)
	}
	return m
}

// Result is the outcome of a single complete run of the protocol.
type Result struct {
	// N is the population size.
	N int
	// Converged reports whether the Converged predicate held before the
	// time limit.
	Converged bool
	// Time is the parallel time at which convergence was detected (or the
	// time limit).
	Time float64
	// Estimate is the mean per-agent estimate at the end of the run.
	Estimate float64
	// MaxErr is the largest |estimate − log2 n| over all agents.
	MaxErr float64
	// DistinctStates is the number of distinct states observed (0 on the
	// sequential backend unless state tracking was requested).
	DistinctStates int
	// CountA is the number of A-role agents at the end of the run.
	CountA int
	// LogSize2 is the common raw logSize2 value at the end of the run
	// (the maximum across agents if the run has not converged).
	LogSize2 int
}

// RunOptions configures Run.
type RunOptions struct {
	// Seed seeds the simulation (default 0, still deterministic).
	Seed uint64
	// Backend selects the simulation engine (default pop.Auto: batched
	// for large populations, sequential otherwise).
	Backend pop.Backend
	// Parallelism is the intra-trial worker target for the multiset
	// backends (pop.WithParallelism): 0 = auto, >= 1 forces the
	// deterministic divide-and-conquer sampling path, whose trajectory is
	// identical for every worker count.
	Parallelism int
	// MaxTime bounds the run in parallel time; 0 selects a generous
	// default that scales as log² n.
	MaxTime float64
	// CheckEvery is the convergence-check interval in parallel time
	// (default: max(1, log n)).
	CheckEvery float64
	// TrackStates enables distinct-state counting.
	TrackStates bool

	// History, when non-nil, records the run's sampled configuration
	// trajectory (the observer is driven by the run; read its Samples
	// afterwards).
	History *pop.History[State]
	// SnapshotSink, when non-nil, receives a versioned engine snapshot:
	// taken at the first convergence-check boundary whose time is at
	// least SnapshotAt, or at the end of the run if SnapshotAt <= 0 (or
	// the run ends first). Snapshots align with check boundaries so a
	// restored run's chunking — and therefore its byte-level trajectory —
	// matches the uninterrupted one.
	SnapshotSink func(*pop.Snapshot[State])
	// SnapshotAt is the parallel time the snapshot targets (see
	// SnapshotSink); <= 0 requests an end-of-run snapshot.
	SnapshotAt float64
	// Restore, when non-nil, resumes the run from this snapshot instead
	// of constructing a fresh engine; Seed, Backend and Parallelism are
	// ignored (they are part of the snapshot). The restored run gets a
	// fresh MaxTime budget measured from the snapshot's time.
	Restore *pop.Snapshot[State]
}

// DefaultMaxTime returns a convergence-time budget that the protocol meets
// with ample slack: c·(ClockFactor·EpochFactor)·(2·log n + bonus + 3)².
func (p *Protocol) DefaultMaxTime(n int) float64 {
	l := 2*math.Log2(float64(n)) + float64(p.cfg.GeomBonus) + 3
	return 3 * float64(p.cfg.ClockFactor*p.cfg.EpochFactor) * l * l
}

// Run executes one complete trial on n agents and returns its Result.
// With o.Restore set the trial resumes from the snapshot instead (n is
// ignored; the snapshot carries the population). A malformed snapshot or a
// snapshot that cannot be serialized panics — command-line front ends
// validate snapshot files before reaching Run, so either is a programming
// error here, not an input error.
func (p *Protocol) Run(n int, o RunOptions) Result {
	var s pop.Engine[State]
	if o.Restore != nil {
		var err error
		s, err = pop.Restore(o.Restore, p.Rule)
		if err != nil {
			panic(fmt.Sprintf("core: restoring snapshot: %v", err))
		}
		n = s.N()
	} else {
		opts := []pop.Option{pop.WithSeed(o.Seed), pop.WithBackend(o.Backend), pop.WithParallelism(o.Parallelism)}
		if o.TrackStates {
			opts = append(opts, pop.WithStateTracking())
		}
		s = p.NewEngine(n, opts...)
	}
	maxTime := o.MaxTime
	if maxTime <= 0 {
		maxTime = p.DefaultMaxTime(n)
	}
	check := o.CheckEvery
	if check <= 0 {
		check = math.Max(1, math.Log2(float64(n)))
	}
	pred := p.Converged
	taken := false
	if o.SnapshotSink != nil && o.SnapshotAt > 0 {
		// Capture at the first convergence-check boundary at or past
		// SnapshotAt, before evaluating convergence there: boundaries are
		// where the engine's chunking realigns, so a run restored from this
		// snapshot replays the rest of the trial byte-identically.
		inner := pred
		pred = func(e pop.Engine[State]) bool {
			if !taken && e.Time() >= o.SnapshotAt {
				taken = true
				o.SnapshotSink(mustSnapshot(e))
			}
			return inner(e)
		}
	}
	var ok bool
	var at float64
	if o.History != nil {
		ok, at = o.History.RunUntil(s, pred, check, maxTime)
	} else {
		ok, at = s.RunUntil(pred, check, maxTime)
	}
	if o.SnapshotSink != nil && !taken {
		// Either SnapshotAt <= 0 (end-of-run snapshot requested) or the run
		// finished before reaching SnapshotAt; deliver the final state.
		o.SnapshotSink(mustSnapshot(s))
	}
	est := Estimates(s)
	return Result{
		N:              n,
		Converged:      ok,
		Time:           at,
		Estimate:       est.Mean,
		MaxErr:         est.MaxErr,
		DistinctStates: s.DistinctStates(),
		CountA:         s.Count(func(a State) bool { return a.Role == RoleA }),
		LogSize2:       int(Maxima(s).LogSize2),
	}
}

func mustSnapshot(e pop.Engine[State]) *pop.Snapshot[State] {
	snap, err := e.Snapshot()
	if err != nil {
		panic(fmt.Sprintf("core: snapshotting engine: %v", err))
	}
	return snap
}

// NewSim constructs a ready-to-step sequential simulator for the protocol,
// for callers that need per-agent access (experiments, examples).
func (p *Protocol) NewSim(n int, opts ...pop.Option) *pop.Sim[State] {
	return pop.New(n, p.Initial, p.Rule, opts...)
}

// NewEngine constructs a simulation engine for the protocol; the backend
// is chosen with pop.WithBackend (default pop.Auto).
func (p *Protocol) NewEngine(n int, opts ...pop.Option) pop.Engine[State] {
	return pop.NewEngine(n, p.Initial, p.Rule, opts...)
}
