package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/popsim/popsize/internal/pop"
)

// TestRuleInvariantsQuick property-checks single-interaction invariants
// over randomized (mostly well-formed) state pairs:
//   - logSize2 never decreases,
//   - an assigned role never changes or reverts to X,
//   - if both agents already share logSize2 (no restart), epochs never
//     decrease.
func TestRuleInvariantsQuick(t *testing.T) {
	p := MustNew(FastConfig())
	r := testRand()
	mk := func(role, ls, gr uint8, tm, ep uint16) State {
		st := State{Role: Role(role%3 + 1), LogSize2: ls%20 + 1, GR: gr%20 + 1,
			Time: tm % 2000, Epoch: ep % 60}
		if st.Role == RoleX {
			// The only reachable undecided state is the initial one.
			st = Initial()
		}
		return st
	}
	f := func(roleR, roleS, lsR, lsS, grR, grS uint8, timeR, timeS, epR, epS uint16) bool {
		rec := mk(roleR, lsR, grR, timeR, epR)
		sen := mk(roleS, lsS, grS, timeS, epS)
		gotR, gotS := p.Rule(rec, sen, r)

		if gotR.LogSize2 < rec.LogSize2 || gotS.LogSize2 < sen.LogSize2 {
			return false
		}
		if rec.Role != RoleX && gotR.Role != rec.Role {
			return false
		}
		if sen.Role != RoleX && gotS.Role != sen.Role {
			return false
		}
		if gotR.Role == RoleX || gotS.Role == RoleX {
			return false // partition always assigns roles on first contact
		}
		// Epoch monotonicity holds when no restart can fire: both agents
		// decided (an X partner redraws logSize2 on role assignment) and
		// already sharing the same estimate.
		if rec.Role != RoleX && sen.Role != RoleX && rec.LogSize2 == sen.LogSize2 {
			if gotR.Epoch < rec.Epoch || gotS.Epoch < sen.Epoch {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestRunInvariants checks configuration-level invariants along a real
// execution:
//   - within each logSize2 group, no A agent's epoch exceeds the group's
//     maximum S epoch (A epochs advance only through S agents),
//   - S agents never exceed the epoch target, and Sum is 0 iff Epoch is 0,
//   - HasOutput implies OutK equals the agent's epoch target.
func TestRunInvariants(t *testing.T) {
	p := MustNew(FastConfig())
	const n = 400
	s := p.NewSim(n, pop.WithSeed(13))
	deadline := p.DefaultMaxTime(n)
	for s.Time() < deadline {
		s.RunTime(math.Log2(n))
		maxSEpoch := map[uint8]uint16{}
		for _, a := range s.Agents() {
			if a.Role == RoleS && a.Epoch > maxSEpoch[a.LogSize2] {
				maxSEpoch[a.LogSize2] = a.Epoch
			}
		}
		for i, a := range s.Agents() {
			switch a.Role {
			case RoleA:
				if a.Epoch > maxSEpoch[a.LogSize2] {
					t.Fatalf("t=%.0f agent %d: A epoch %d > max S epoch %d in group %d",
						s.Time(), i, a.Epoch, maxSEpoch[a.LogSize2], a.LogSize2)
				}
			case RoleS:
				k := p.cfg.EpochTarget(a.LogSize2)
				if uint32(a.Epoch) > k {
					t.Fatalf("t=%.0f agent %d: S epoch %d > target %d", s.Time(), i, a.Epoch, k)
				}
				if (a.Epoch == 0) != (a.Sum == 0) {
					t.Fatalf("t=%.0f agent %d: S epoch %d with sum %d", s.Time(), i, a.Epoch, a.Sum)
				}
			}
			if a.HasOutput {
				if uint32(a.OutK) != p.cfg.EpochTarget(a.LogSize2) {
					t.Fatalf("t=%.0f agent %d: OutK %d != target %d",
						s.Time(), i, a.OutK, p.cfg.EpochTarget(a.LogSize2))
				}
			}
		}
		if p.Converged(s) {
			return
		}
	}
	t.Fatal("run did not converge within the default budget")
}

// TestTinyPopulations: the protocol still converges for the smallest legal
// populations (n = 2, 3), where role counts are maximally skewed.
func TestTinyPopulations(t *testing.T) {
	p := MustNew(FastConfig())
	for _, n := range []int{2, 3, 4} {
		for seed := uint64(0); seed < 3; seed++ {
			res := p.Run(n, core_runOpts(seed))
			if !res.Converged {
				t.Errorf("n=%d seed=%d: did not converge", n, seed)
			}
		}
	}
}

func core_runOpts(seed uint64) RunOptions {
	return RunOptions{Seed: seed, MaxTime: 50000}
}
