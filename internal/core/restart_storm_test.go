package core

import (
	"testing"

	"github.com/popsim/popsize/internal/pop"
)

// TestRestartStorm is failure injection for the restart scheme: let the
// population converge, then plant a strictly larger logSize2 on one agent
// (as if a huge geometric sample had been delayed). The whole population
// must discard its output and reconverge with the new estimate.
func TestRestartStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("full runs are not short")
	}
	p := MustNew(FastConfig())
	const n = 300
	s := p.NewSim(n, pop.WithSeed(21))
	ok, _ := s.RunUntil(p.Converged, 5, p.DefaultMaxTime(n))
	if !ok {
		t.Fatal("initial convergence failed")
	}

	// Inject: one agent learns a larger weak estimate.
	snap := s.AgentStates()
	newLS := snap[0].LogSize2 + 3
	victim := snap[42]
	victim.LogSize2 = newLS
	victim = p.restart(victim, testRand())
	snap[42] = victim
	s2 := pop.NewFromConfig(snap, p.Rule, pop.WithSeed(22))

	// The storm must spread: soon every agent carries the new estimate
	// with its old output gone, and then reconverges under the new K.
	ok, _ = s2.RunUntil(func(s pop.Engine[State]) bool {
		return s.All(func(a State) bool { return a.LogSize2 == newLS })
	}, 5, 10000)
	if !ok {
		t.Fatal("new estimate did not reach all agents")
	}
	ok, _ = s2.RunUntil(p.Converged, 5, 4*p.DefaultMaxTime(n))
	if !ok {
		t.Fatal("population did not reconverge after restart storm")
	}
	for i, a := range s2.Agents() {
		if uint32(a.OutK) != p.cfg.EpochTarget(newLS) {
			t.Fatalf("agent %d: output K %d is not the post-storm target %d",
				i, a.OutK, p.cfg.EpochTarget(newLS))
		}
	}
}

// TestOutputDoesNotSurviveRestart: HasOutput is cleared by restart, so no
// stale estimate can outlive a weak-estimate update.
func TestOutputDoesNotSurviveRestart(t *testing.T) {
	p := MustNew(PaperConfig())
	a := State{Role: RoleS, LogSize2: 4, Epoch: 30, Sum: 300,
		HasOutput: true, OutSum: 300, OutK: 30}
	b := State{Role: RoleS, LogSize2: 11}
	gotA, _ := p.Rule(a, b, testRand())
	if gotA.HasOutput {
		t.Errorf("stale output survived restart: %+v", gotA)
	}
}
