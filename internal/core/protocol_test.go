package core

import (
	"math"
	"testing"

	"github.com/popsim/popsize/internal/pop"
)

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"paper", PaperConfig(), false},
		{"fast", FastConfig(), false},
		{"zero clock", Config{ClockFactor: 0, EpochFactor: 1}, true},
		{"zero epoch", Config{ClockFactor: 1, EpochFactor: 0}, true},
		{"negative bonus", Config{ClockFactor: 1, EpochFactor: 1, GeomBonus: -1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestThresholds(t *testing.T) {
	cfg := PaperConfig()
	if got, want := cfg.Threshold(10), uint32(95*12); got != want {
		t.Errorf("Threshold(10) = %d, want %d", got, want)
	}
	if got, want := cfg.EpochTarget(10), uint32(5*12); got != want {
		t.Errorf("EpochTarget(10) = %d, want %d", got, want)
	}
}

func TestInitialState(t *testing.T) {
	s := Initial()
	if s.Role != RoleX || s.LogSize2 != 1 || s.GR != 1 {
		t.Errorf("Initial() = %+v, want role X, logSize2 1, gr 1", s)
	}
	if _, ok := s.Estimate(); ok {
		t.Error("Initial() reports an estimate")
	}
}

func TestEstimateArithmetic(t *testing.T) {
	s := State{HasOutput: true, OutSum: 30, OutK: 4}
	got, ok := s.Estimate()
	if !ok || got != 30.0/4+1 {
		t.Errorf("Estimate() = %v, %v; want 8.5, true", got, ok)
	}
	gi, ok := s.IntEstimate()
	if !ok || gi != 8 {
		t.Errorf("IntEstimate() = %v, %v; want 8, true", gi, ok)
	}
}

// TestPartitionRoles checks that the population splits into A and S roles
// quickly and nearly evenly (Lemma 3.2 / Corollary 3.3).
func TestPartitionRoles(t *testing.T) {
	p := MustNew(FastConfig())
	const n = 2000
	s := pop.New(n, p.Initial, p.Rule, pop.WithSeed(1))
	s.RunTime(6 * math.Log2(n)) // O(log n) suffices per the paper

	if x := s.Count(func(a State) bool { return a.Role == RoleX }); x != 0 {
		t.Fatalf("%d agents still undecided after O(log n) time", x)
	}
	a := s.Count(func(a State) bool { return a.Role == RoleA })
	// Corollary 3.3: n/3 <= |A| <= 2n/3 with overwhelming probability; in
	// practice |A| is within O(sqrt(n ln n)) of n/2.
	if a < n/3 || a > 2*n/3 {
		t.Errorf("|A| = %d outside [n/3, 2n/3]", a)
	}
}

// TestConvergenceSmall runs the full protocol end to end at modest sizes
// and checks Theorem 3.1's correctness property with fast-preset slack.
func TestConvergenceSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full protocol runs are not short")
	}
	p := MustNew(FastConfig())
	for _, n := range []int{64, 256, 1024} {
		t.Run(sizeName(n), func(t *testing.T) {
			res := p.Run(n, RunOptions{Seed: 42})
			if !res.Converged {
				t.Fatalf("did not converge within %.0f time units", p.DefaultMaxTime(n))
			}
			logN := math.Log2(float64(n))
			if res.MaxErr > 6.7 {
				t.Errorf("estimate %.2f misses log n = %.2f by %.2f > 6.7",
					res.Estimate, logN, res.MaxErr)
			}
			// Convergence time should respect the O(log² n) shape with the
			// preset's constants: ClockFactor·EpochFactor·(2 log n + 5)²
			// is a loose cap.
			l := 2*logN + 5
			if cap := 2 * float64(p.cfg.ClockFactor*p.cfg.EpochFactor) * l * l; res.Time > cap {
				t.Errorf("convergence time %.0f exceeds loose O(log² n) cap %.0f", res.Time, cap)
			}
		})
	}
}

// TestRestartResets verifies Subprotocol 4: an agent that learns a larger
// logSize2 loses all downstream progress.
func TestRestartResets(t *testing.T) {
	p := MustNew(PaperConfig())
	low := State{Role: RoleA, LogSize2: 3, GR: 7, Time: 40, Epoch: 2, Done: true,
		HasOutput: true, OutSum: 9, OutK: 3}
	// The partner sits at epoch 0 so that the restarted agent does not
	// immediately catch up to a later epoch within the same interaction.
	high := State{Role: RoleS, LogSize2: 9, Epoch: 0, Sum: 0}
	gotLow, gotHigh := p.Rule(low, high, testRand())
	if gotLow.LogSize2 != 9 {
		t.Fatalf("low agent did not adopt max logSize2: %+v", gotLow)
	}
	if gotLow.Time != 0 || gotLow.Epoch != 0 || gotLow.Done || gotLow.HasOutput {
		t.Errorf("restart did not reset downstream state: %+v", gotLow)
	}
	if gotHigh.LogSize2 != 9 {
		t.Errorf("high agent's logSize2 changed: %+v", gotHigh)
	}
}

// TestNoRestartAblation verifies that DisableRestart keeps downstream
// progress on a logSize2 update (ablation A3).
func TestNoRestartAblation(t *testing.T) {
	cfg := PaperConfig()
	cfg.DisableRestart = true
	p := MustNew(cfg)
	low := State{Role: RoleA, LogSize2: 3, GR: 7, Time: 40, Epoch: 2}
	high := State{Role: RoleA, LogSize2: 9, GR: 1, Time: 1, Epoch: 2}
	gotLow, _ := p.Rule(low, high, testRand())
	if gotLow.LogSize2 != 9 {
		t.Fatalf("low agent did not adopt max logSize2: %+v", gotLow)
	}
	if gotLow.Epoch != 2 {
		t.Errorf("DisableRestart run reset epoch: %+v", gotLow)
	}
}

// TestUpdateSumContribution checks the A→S handoff: an expired A agent
// hands exactly its gr to a same-epoch S agent and both advance.
func TestUpdateSumContribution(t *testing.T) {
	p := MustNew(PaperConfig())
	th := p.cfg.Threshold(5)
	a := State{Role: RoleA, LogSize2: 5, GR: 9, Time: uint16(th), Epoch: 2}
	s := State{Role: RoleS, LogSize2: 5, Epoch: 2, Sum: 11}
	gotA, gotS := p.pairAS(a, s, testRand())
	if gotS.Sum != 20 || gotS.Epoch != 3 {
		t.Errorf("S after contribution = %+v, want sum 20, epoch 3", gotS)
	}
	if gotA.Epoch != 3 || gotA.Time != 0 {
		t.Errorf("A after contribution = %+v, want epoch 3, time 0", gotA)
	}
}

// TestCatchUp checks the no-contribution catch-up path.
func TestCatchUp(t *testing.T) {
	p := MustNew(PaperConfig())
	a := State{Role: RoleA, LogSize2: 5, GR: 9, Time: 3, Epoch: 1}
	s := State{Role: RoleS, LogSize2: 5, Epoch: 4, Sum: 30}
	gotA, gotS := p.pairAS(a, s, testRand())
	if gotS.Sum != 30 || gotS.Epoch != 4 {
		t.Errorf("S changed on catch-up: %+v", gotS)
	}
	if gotA.Epoch != 4 || gotA.Time != 0 {
		t.Errorf("A after catch-up = %+v, want epoch 4, time 0", gotA)
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1000000:
		return "n1M"
	case n >= 1000:
		return "n" + itoa(n/1000) + "k"
	default:
		return "n" + itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
