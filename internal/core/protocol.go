package core

import (
	"math/rand/v2"

	"github.com/popsim/popsize/internal/prob"
)

// Protocol is the Log-Size-Estimation protocol with a fixed configuration.
// Its Rule method is a pop.Rule[State]; a zero Protocol is not usable —
// construct with New.
type Protocol struct {
	cfg Config
}

// New returns a Protocol with the given configuration.
func New(cfg Config) (*Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Protocol{cfg: cfg}, nil
}

// MustNew is New, panicking on an invalid configuration. Intended for
// package-level defaults and tests.
func MustNew(cfg Config) *Protocol {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Config returns the protocol's configuration.
func (p *Protocol) Config() Config { return p.cfg }

// Initial returns the uniform initial state (all agents identical;
// the protocol is leaderless).
func (p *Protocol) Initial(_ int, _ *rand.Rand) State { return Initial() }

// Rule is the randomized transition function of Protocol 1. The main-body
// order follows the paper: Partition-Into-A/S; clock ticks with timer
// check; Propagate-Max-Clock-Value (with Restart); role-pair interaction
// (Propagate-Incremented-Epoch / Update-Sum / Propagate-Max-G.R.V.);
// output propagation.
func (p *Protocol) Rule(rec, sen State, r *rand.Rand) (State, State) {
	rec, sen = p.partition(rec, sen, r)

	// Leaderless phase clock: each A agent counts its own interactions.
	if rec.Role == RoleA && !rec.Done {
		rec.Time = satAdd16(rec.Time, 1)
	}
	if sen.Role == RoleA && !sen.Done {
		sen.Time = satAdd16(sen.Time, 1)
	}

	rec, sen = p.propagateMaxClockValue(rec, sen, r)

	switch {
	case rec.Role == RoleA && sen.Role == RoleA:
		rec, sen = p.pairAA(rec, sen, r)
	case rec.Role == RoleS && sen.Role == RoleS:
		rec, sen = pairSS(rec, sen)
	case rec.Role == RoleA && sen.Role == RoleS:
		rec, sen = p.pairAS(rec, sen, r)
	case rec.Role == RoleS && sen.Role == RoleA:
		sen, rec = p.pairAS(sen, rec, r)
	}

	rec = p.finalizeS(rec)
	sen = p.finalizeS(sen)
	rec, sen = propagateOutput(rec, sen)
	return rec, sen
}

// partition implements Partition-Into-A/S (Subprotocol 2): two undecided
// agents split into one A and one S; an undecided agent meeting a decided
// one takes the opposite role (A,X → A,S and S,X → S,A), which converges in
// O(log n) time at the cost of an O(√(n ln n)) deviation from n/2
// (Lemma 3.2).
func (p *Protocol) partition(rec, sen State, r *rand.Rand) (State, State) {
	switch {
	case rec.Role == RoleX && sen.Role == RoleX:
		sen = p.becomeA(sen, r)
		rec = becomeS(rec)
	case sen.Role == RoleX:
		if rec.Role == RoleA {
			sen = becomeS(sen)
		} else {
			sen = p.becomeA(sen, r)
		}
	case rec.Role == RoleX:
		if sen.Role == RoleA {
			rec = becomeS(rec)
		} else {
			rec = p.becomeA(rec, r)
		}
	}
	return rec, sen
}

func (p *Protocol) becomeA(ag State, r *rand.Rand) State {
	ag.Role = RoleA
	ag.LogSize2 = clampGeom(prob.Geometric(r)) // the agent's logSize2 sample
	ag.GR = clampGeom(prob.Geometric(r))       // epoch-0 geometric random variable
	return ag
}

func becomeS(ag State) State {
	ag.Role = RoleS
	return ag
}

// propagateMaxClockValue implements Subprotocol 3: the larger logSize2
// spreads by epidemic; an agent that learns a larger value restarts its
// entire downstream computation (Subprotocol 4).
func (p *Protocol) propagateMaxClockValue(rec, sen State, r *rand.Rand) (State, State) {
	switch {
	case rec.LogSize2 < sen.LogSize2:
		rec.LogSize2 = sen.LogSize2
		rec = p.restart(rec, r)
	case sen.LogSize2 < rec.LogSize2:
		sen.LogSize2 = rec.LogSize2
		sen = p.restart(sen, r)
	}
	return rec, sen
}

// restart implements Subprotocol 4, resetting every field downstream of
// logSize2. With cfg.DisableRestart (ablation A3) it is a no-op.
func (p *Protocol) restart(ag State, r *rand.Rand) State {
	if p.cfg.DisableRestart {
		return ag
	}
	ag.Time = 0
	ag.Sum = 0
	ag.Epoch = 0
	ag.Done = false
	ag.HasOutput = false
	ag.OutSum = 0
	ag.OutK = 0
	if ag.Role == RoleA {
		ag.GR = clampGeom(prob.Geometric(r))
	}
	return ag
}

// moveToNext implements Move-to-Next-G.R.V (Subprotocol 8): reset the epoch
// clock and draw a fresh geometric random variable for the new epoch.
func (p *Protocol) moveToNext(ag State, r *rand.Rand) State {
	ag.Time = 0
	ag.GR = clampGeom(prob.Geometric(r))
	if uint32(ag.Epoch) >= p.cfg.EpochTarget(ag.LogSize2) {
		ag.Done = true
	}
	return ag
}

// pairAA implements the A/A half of Propagate-Incremented-Epoch
// (Subprotocol 7) followed by Propagate-Max-G.R.V. (Subprotocol 5), in the
// paper's main-body order: epochs synchronize first, then same-epoch agents
// exchange the running maximum.
func (p *Protocol) pairAA(a, b State, r *rand.Rand) (State, State) {
	switch {
	case !a.Done && a.Epoch < b.Epoch:
		a.Epoch = b.Epoch
		a = p.moveToNext(a, r)
	case !b.Done && b.Epoch < a.Epoch:
		b.Epoch = a.Epoch
		b = p.moveToNext(b, r)
	}
	if !a.Done && !b.Done && a.Epoch == b.Epoch {
		if a.GR < b.GR {
			a.GR = b.GR
		} else if b.GR < a.GR {
			b.GR = a.GR
		}
	}
	return a, b
}

// pairSS implements the S/S half of Propagate-Incremented-Epoch: the agent
// with the smaller epoch adopts the (epoch, sum) pair of the larger.
func pairSS(a, b State) (State, State) {
	switch {
	case a.Epoch < b.Epoch:
		a.Epoch = b.Epoch
		a.Sum = b.Sum
	case b.Epoch < a.Epoch:
		b.Epoch = a.Epoch
		b.Sum = a.Sum
	}
	return a, b
}

// pairAS implements Update-Sum (Subprotocol 9) under the resolution of
// DESIGN.md deviation 1: an A agent whose epoch clock has expired hands its
// gr to a same-epoch S agent (advancing both), and an A agent that meets an
// S agent in a strictly later epoch catches up without contributing (its
// epoch's maximum was already accumulated by an equal-value peer, w.h.p.).
func (p *Protocol) pairAS(a, s State, r *rand.Rand) (State, State) {
	if a.Done {
		return a, s
	}
	switch {
	case a.Epoch == s.Epoch && uint32(a.Time) >= p.cfg.Threshold(a.LogSize2):
		s.Sum += uint32(a.GR)
		s.Epoch++
		a.Epoch++
		a = p.moveToNext(a, r)
	case a.Epoch < s.Epoch:
		a.Epoch = s.Epoch
		a = p.moveToNext(a, r)
	}
	return a, s
}

// finalizeS turns a storage agent that has accumulated all K epoch maxima
// into an output source.
func (p *Protocol) finalizeS(ag State) State {
	if ag.Role != RoleS || ag.HasOutput {
		return ag
	}
	if k := p.cfg.EpochTarget(ag.LogSize2); uint32(ag.Epoch) >= k {
		ag.HasOutput = true
		ag.OutSum = ag.Sum
		ag.OutK = ag.Epoch
	}
	return ag
}

// propagateOutput spreads the final (OutSum, OutK) pair by epidemic. After
// propagateMaxClockValue both agents agree on logSize2, so an output never
// crosses a restart boundary.
func propagateOutput(a, b State) (State, State) {
	switch {
	case a.HasOutput && !b.HasOutput:
		b.HasOutput = true
		b.OutSum = a.OutSum
		b.OutK = a.OutK
	case b.HasOutput && !a.HasOutput:
		a.HasOutput = true
		a.OutSum = b.OutSum
		a.OutK = b.OutK
	}
	return a, b
}
