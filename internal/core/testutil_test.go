package core

import "math/rand/v2"

// testRand returns a deterministic random source for transition-level unit
// tests.
func testRand() *rand.Rand {
	return rand.New(rand.NewPCG(7, 11))
}
