package core

import "fmt"

// Role identifies which sub-population an agent belongs to after the
// Partition-Into-A/S subprotocol. All agents start as RoleX.
type Role uint8

// Roles. A agents run the clock and generate geometric random variables;
// S agents store the running sum (the paper's space multiplexing).
const (
	RoleX Role = iota + 1 // undecided (initial)
	RoleA                 // worker: clock, epochs, geometric maxima
	RoleS                 // storage: accumulated sum of epoch maxima
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleX:
		return "X"
	case RoleA:
		return "A"
	case RoleS:
		return "S"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// State is the full per-agent memory of the Log-Size-Estimation protocol:
// exactly the fields of Protocol 1, plus the propagated output pair
// (OutSum, OutK) that realizes "output ← sum/epoch + 1" for every agent
// (DESIGN.md deviation 4).
type State struct {
	// Role is X until the Partition-Into-A/S subprotocol assigns A or S.
	Role Role
	// LogSize2 is the raw sampled maximum geometric value (the weak size
	// estimate). Thresholds use the effective value LogSize2 + GeomBonus.
	LogSize2 uint8
	// GR is the agent's current-epoch geometric random variable (running
	// maximum during the epoch). Meaningful only for role A.
	GR uint8
	// Time counts the agent's own interactions in the current epoch (the
	// leaderless phase clock). Saturates rather than wrapping.
	Time uint16
	// Epoch is, for role A, the number of completed epochs; for role S,
	// the number of epoch maxima accumulated into Sum.
	Epoch uint16
	// Sum is the accumulated sum of epoch maxima. Meaningful only for
	// role S.
	Sum uint32
	// Done marks an A agent that has completed all K epochs.
	Done bool
	// HasOutput marks an agent that holds the final (OutSum, OutK) pair,
	// originating at an S agent whose Epoch reached K and spreading by
	// epidemic.
	HasOutput bool
	// OutSum and OutK are the propagated final sum and epoch count; the
	// size estimate is OutSum/OutK + 1.
	OutSum uint32
	OutK   uint16
}

// Estimate returns the agent's size estimate OutSum/OutK + 1 (an estimate
// of log2 n) and true, or 0 and false if the agent has no output yet.
func (s State) Estimate() (float64, bool) {
	if !s.HasOutput || s.OutK == 0 {
		return 0, false
	}
	return float64(s.OutSum)/float64(s.OutK) + 1, true
}

// IntEstimate returns the integer size estimate ⌊OutSum/OutK⌋ + 1 ("stores
// in each agent an integer k", Theorem 3.1) and true, or 0 and false if the
// agent has no output yet.
func (s State) IntEstimate() (int, bool) {
	if !s.HasOutput || s.OutK == 0 {
		return 0, false
	}
	return int(s.OutSum/uint32(s.OutK)) + 1, true
}

// Initial returns the uniform initial state of Protocol 1: no role,
// logSize2 = 1, gr = 1, everything else zero.
func Initial() State {
	return State{Role: RoleX, LogSize2: 1, GR: 1}
}

func satAdd16(x uint16, d uint16) uint16 {
	if x > ^uint16(0)-d {
		return ^uint16(0)
	}
	return x + d
}

func clampGeom(g int) uint8 {
	if g > 255 {
		return 255
	}
	return uint8(g)
}
