// Package core implements the paper's primary contribution: the uniform
// leaderless Log-Size-Estimation population protocol (Doty & Eftekhari,
// PODC 2019, Section 3.2, Protocols 1–9 and Theorem 3.1).
//
// Starting from a configuration in which every agent is in the identical
// state, the protocol computes log n ± O(1) with high probability in
// O(log² n) parallel time using O(log⁴ n) states. Agents partition into
// worker (A) and storage (S) roles, generate a weak size estimate logSize2
// as the maximum of ~n/2 geometric random variables, and then run
// K = EpochFactor·L synchronized epochs (L = logSize2 + GeomBonus) of a
// leaderless phase clock; each epoch generates one fresh maximum of
// geometric random variables and accumulates it into the S agents' sum.
// The final output is sum/K + 1.
package core

import "fmt"

// Config holds the protocol's numeric constants. The paper's values come
// from union-bound-safe tail inequalities; smaller values preserve the
// protocol's asymptotic shape at far less simulation cost (see DESIGN.md
// §2 and ablations A1/A2).
type Config struct {
	// ClockFactor is the per-epoch interaction threshold multiplier: an A
	// agent ends its epoch after ClockFactor·L of its own interactions
	// (the paper's 95, Subprotocol 6).
	ClockFactor int

	// EpochFactor determines the number of epochs K = EpochFactor·L (the
	// paper's 5). Corollary D.10 requires K >= 4·log n for the 4.7
	// additive Chernoff bound, which EpochFactor >= 4 guarantees via
	// L >= log n − log ln n; smaller values trade error for speed.
	EpochFactor int

	// GeomBonus is added to the raw sampled maximum before use in any
	// threshold (the paper's "+2" from Lemma 3.8, which compensates for
	// only ~n/2 agents sampling).
	GeomBonus int

	// DisableRestart turns off the Restart subprotocol (ablation A3):
	// agents adopt larger logSize2 values without resetting downstream
	// state. The paper's correctness argument fails without restarts.
	DisableRestart bool
}

// PaperConfig returns the constants exactly as in Protocol 1: threshold
// 95·logSize2, K = 5·logSize2 epochs, +2 bonus.
func PaperConfig() Config {
	return Config{ClockFactor: 95, EpochFactor: 5, GeomBonus: 2}
}

// FastConfig returns reduced constants (16·L threshold, K = 2·L epochs)
// that keep every epoch comfortably longer than the empirical epidemic +
// interaction-concentration window while costing ~30× fewer interactions.
// Tests and default experiment runs use this preset; EXPERIMENTS.md
// reports paper-constant runs where feasible.
func FastConfig() Config {
	return Config{ClockFactor: 16, EpochFactor: 2, GeomBonus: 2}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.ClockFactor < 1 {
		return fmt.Errorf("core: ClockFactor %d < 1", c.ClockFactor)
	}
	if c.EpochFactor < 1 {
		return fmt.Errorf("core: EpochFactor %d < 1", c.EpochFactor)
	}
	if c.GeomBonus < 0 {
		return fmt.Errorf("core: GeomBonus %d < 0", c.GeomBonus)
	}
	return nil
}

// effL returns the effective logSize2 value L = raw + GeomBonus used in all
// thresholds.
func (c Config) effL(raw uint8) uint32 {
	return uint32(raw) + uint32(c.GeomBonus)
}

// Threshold returns the per-epoch interaction-count threshold
// ClockFactor·L for an agent whose raw logSize2 field is raw.
func (c Config) Threshold(raw uint8) uint32 {
	return uint32(c.ClockFactor) * c.effL(raw)
}

// EpochTarget returns the total number of epochs K = EpochFactor·L for an
// agent whose raw logSize2 field is raw.
func (c Config) EpochTarget(raw uint8) uint32 {
	return uint32(c.EpochFactor) * c.effL(raw)
}
