package churn

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"

	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/pop"
)

// trackConfig is a reduced-constant preset: the protocol's shape at a
// fraction of FastConfig's simulation cost (mirrors the equivalence
// suite's preset).
func trackConfig() core.Config {
	return core.Config{ClockFactor: 8, EpochFactor: 1, GeomBonus: 2}
}

// TestStepScheduleRates: the generator must hit the requested long-run
// turnover even when a single period's quota rounds to zero, and keep the
// population size constant.
func TestStepScheduleRates(t *testing.T) {
	cases := []struct {
		n0           int
		rate, period float64
		until        float64
		wantTurnover int
	}{
		{1000, 1e-3, 10, 1000, 990}, // 10 agents per event, 99 events
		{1000, 1e-5, 10, 10000, 99}, // 0.1 agents per event: carry accumulates
		{100, 0, 5, 1000, 0},        // zero rate: empty schedule
		{500, 2e-4, 7.5, 5000, 499}, // awkward period: 0.75/event over 666 events
	}
	for _, c := range cases {
		s := Step(c.n0, c.rate, c.period, c.until)
		if err := s.Validate(); err != nil {
			t.Fatalf("Step(%v): invalid schedule: %v", c, err)
		}
		if got := s.Turnover(); got != c.wantTurnover {
			t.Errorf("Step(n0=%d rate=%g period=%g until=%g): turnover %d, want %d",
				c.n0, c.rate, c.period, c.until, got, c.wantTurnover)
		}
		if got := s.Net(c.n0); got != c.n0 {
			t.Errorf("Step: net population %d, want %d (size-preserving)", got, c.n0)
		}
		for _, ev := range s {
			if ev.Join != ev.Leave {
				t.Fatalf("Step event %+v not size-preserving", ev)
			}
		}
	}
}

// TestPoissonSchedule: deterministic for a seed, event count close to the
// process mean, strictly sorted times within the horizon.
func TestPoissonSchedule(t *testing.T) {
	const n0, rate, until = 500, 1e-3, 2000.0
	a := Poisson(42, n0, rate, until)
	b := Poisson(42, n0, rate, until)
	if len(a) != len(b) {
		t.Fatalf("same seed gave %d vs %d events", len(a), len(b))
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("invalid Poisson schedule: %v", err)
	}
	mean := rate * n0 * until // 1000 expected arrivals
	if got := float64(len(a)); math.Abs(got-mean) > 5*math.Sqrt(mean) {
		t.Errorf("Poisson arrivals %v, want ≈ %v ± %v", got, mean, 5*math.Sqrt(mean))
	}
	for _, ev := range a {
		if ev.At >= until {
			t.Fatalf("event at %g beyond horizon %g", ev.At, until)
		}
	}
	if Poisson(1, n0, 0, until) != nil {
		t.Error("zero-rate Poisson schedule not empty")
	}
}

// TestShapedSchedules pins Doubling/Halving/Burst/Merge shapes.
func TestShapedSchedules(t *testing.T) {
	if got := Doubling(100, 5).Net(100); got != 200 {
		t.Errorf("Doubling net = %d, want 200", got)
	}
	if got := Halving(100, 5).Net(100); got != 50 {
		t.Errorf("Halving net = %d, want 50", got)
	}
	b := Burst(1000, 10, 0.4, 30)
	if b.Net(1000) != 1000 || b[0].Leave != 400 || b[1].Join != 400 {
		t.Errorf("Burst schedule wrong: %+v", b)
	}
	m := Merge(Doubling(10, 7), Halving(10, 3))
	if len(m) != 2 || m[0].At != 3 || m[1].At != 7 {
		t.Errorf("Merge did not sort: %+v", m)
	}
	bad := Schedule{{At: 5}, {At: 3}}
	if bad.Validate() == nil {
		t.Error("unsorted schedule validated")
	}
}

// TestApplyDrivesEngine: events fire at their marks (population size
// tracks the schedule), ticks arrive at the cadence, and the engine ends
// at the requested horizon.
func TestApplyDrivesEngine(t *testing.T) {
	rule := func(a, b int, _ *rand.Rand) (int, int) { return a, b }
	e := pop.NewEngineFromCounts([]int{0}, []int64{1000}, rule,
		pop.WithSeed(3), pop.WithBackend(pop.Batched))
	sched := Schedule{
		{At: 5, Join: 500},
		{At: 10, Leave: 700},
		{At: 15, Join: 200, Leave: 100},
	}
	var ticks []float64
	var sizes []int
	Apply(e, sched, 1, 20, 2.5, func(now float64) {
		ticks = append(ticks, now)
		sizes = append(sizes, e.N())
	})
	if got := e.N(); got != sched.Net(1000) {
		t.Errorf("final population %d, want %d", got, sched.Net(1000))
	}
	if got := e.Time(); math.Abs(got-20) > 0.01 {
		t.Errorf("final time %g, want 20", got)
	}
	if len(ticks) != 8 {
		t.Fatalf("got %d ticks (%v), want 8", len(ticks), ticks)
	}
	// The tick at t=7.5 sits between the join at 5 and the leave at 10.
	if sizes[2] != 1500 {
		t.Errorf("size at tick %g = %d, want 1500 (join applied, leave not)", ticks[2], sizes[2])
	}
	if sizes[4] != 800 {
		t.Errorf("size at tick %g = %d, want 800", ticks[4], sizes[4])
	}
	// Joined agents must be present as state 1.
	if got := e.Count(func(s int) bool { return s == 1 }); got == 0 {
		t.Error("no joined-state agents present after Apply")
	}
}

// TestTrackStatic: with no churn the tracker is just the protocol — it
// converges once, holds a small-error estimate, and never restarts.
func TestTrackStatic(t *testing.T) {
	const n = 300
	p := core.MustNew(trackConfig())
	until := p.DefaultMaxTime(n)
	res := Track(TrackerConfig{Protocol: trackConfig()}, n, nil, 11, until)
	if res.Restarts != 0 {
		t.Errorf("static population triggered %d restarts", res.Restarts)
	}
	if res.FinalN != n {
		t.Errorf("FinalN = %d, want %d", res.FinalN, n)
	}
	if math.IsNaN(res.MeanAbsErr) {
		t.Fatal("tracker never held an estimate on a static population")
	}
	if res.MaxAbsErr > 8 {
		t.Errorf("static tracking error %.2f implausibly large", res.MaxAbsErr)
	}
	last := res.Samples[len(res.Samples)-1]
	if math.IsNaN(last.Estimate) || math.Abs(last.Estimate-math.Log2(n)) > 8 {
		t.Errorf("final estimate %v far from log2 %d = %.2f", last.Estimate, n, math.Log2(n))
	}
}

// TestTrackDoublingDetectsAndSettles: a doubling must trigger the
// undecided-fraction detector shortly after the event, and the tracker
// must reconverge to an estimate near log2(2n).
func TestTrackDoublingDetectsAndSettles(t *testing.T) {
	if testing.Short() {
		t.Skip("tracked doubling is not short")
	}
	const n = 300
	p := core.MustNew(trackConfig())
	t0 := p.DefaultMaxTime(n) // doubling lands after convergence w.h.p.
	until := t0 + p.DefaultMaxTime(2*n)
	res := Track(TrackerConfig{Protocol: trackConfig()}, n, Doubling(n, t0), 17, until)
	if res.FinalN != 2*n {
		t.Fatalf("FinalN = %d, want %d", res.FinalN, 2*n)
	}
	detect, settle := res.DetectionLatency(t0, 4)
	if math.IsNaN(detect) {
		t.Fatalf("doubling never detected (restarts=%d)", res.Restarts)
	}
	if detect > 8*math.Log2(2*n) {
		t.Errorf("detection latency %.1f, want within the warmup+tick window", detect)
	}
	if math.IsNaN(settle) {
		t.Errorf("tracker never settled within tolerance after the doubling (restarts=%d)", res.Restarts)
	}
}

// TestTrackRefreshHandlesHalving: leaves produce no undecided agents, so
// only the refresh fallback can shrink a stale estimate; with it enabled
// the post-halving error must come back down.
func TestTrackRefreshHandlesHalving(t *testing.T) {
	if testing.Short() {
		t.Skip("tracked halving is not short")
	}
	const n = 400
	p := core.MustNew(trackConfig())
	t0 := p.DefaultMaxTime(n)
	refresh := p.DefaultMaxTime(n) / 2
	until := t0 + 2.5*p.DefaultMaxTime(n)
	res := Track(TrackerConfig{Protocol: trackConfig(), RefreshEvery: refresh},
		n, Halving(n, t0), 23, until)
	if res.FinalN != n/2 {
		t.Fatalf("FinalN = %d, want %d", res.FinalN, n/2)
	}
	if res.Restarts == 0 {
		t.Fatal("refresh never fired")
	}
	// The estimate after the last refresh-and-reconverge must track the
	// halved population: compare the final sample against log2(n/2).
	last := res.Samples[len(res.Samples)-1]
	if math.IsNaN(last.Err) {
		t.Fatal("no estimate at the end of the halved run")
	}
	if last.Err > 8 {
		t.Errorf("post-halving error %.2f did not recover", last.Err)
	}
}

// TestTrackDeterminism: a Track call is a pure function of its seed — the
// resumability contract every sweep trial must meet.
func TestTrackDeterminism(t *testing.T) {
	const n = 200
	sched := Merge(Step(n, 5e-4, 5, 600), Doubling(n, 300))
	run := func() Result {
		return Track(TrackerConfig{Protocol: trackConfig()}, n, sched, 31, 600)
	}
	a, b := run(), run()
	if len(a.Samples) != len(b.Samples) || a.Restarts != b.Restarts || a.FinalN != b.FinalN {
		t.Fatalf("tracked runs with the same seed diverged: %d/%d/%d vs %d/%d/%d",
			len(a.Samples), a.Restarts, a.FinalN, len(b.Samples), b.Restarts, b.FinalN)
	}
	for i := range a.Samples {
		x, y := a.Samples[i], b.Samples[i]
		same := x.At == y.At && x.N == y.N && x.Restarts == y.Restarts &&
			(x.Estimate == y.Estimate || (math.IsNaN(x.Estimate) && math.IsNaN(y.Estimate)))
		if !same {
			t.Fatalf("sample %d diverged: %+v vs %+v", i, x, y)
		}
	}
}

// sameF64 compares float64s treating NaN as equal to NaN (bitwise intent:
// checkpointed values must survive the JSON round trip exactly).
func sameF64(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b) ||
		(math.IsNaN(a) && math.IsNaN(b))
}

// TestTrackCheckpointResume: a tracked run checkpointed mid-flight and
// resumed (through the full serialize/parse round trip) must reproduce the
// uninterrupted run's post-checkpoint samples exactly — the churn-level
// extension of the engines' restore-then-run byte-identity.
func TestTrackCheckpointResume(t *testing.T) {
	const n = 200
	const until = 600.0
	const ckAt = 250.0
	sched := Merge(Step(n, 5e-4, 5, until), Doubling(n, 150), Halving(2*n, 400))
	for _, be := range []pop.Backend{pop.Sequential, pop.Batched} {
		cfg := TrackerConfig{Protocol: trackConfig(), Backend: be, RefreshEvery: 120}
		var ck *TrackCheckpoint
		ckCfg := cfg
		ckCfg.CheckpointAt = ckAt
		ckCfg.CheckpointSink = func(c *TrackCheckpoint) { ck = c }
		full := Track(ckCfg, n, sched, 31, until)
		if ck == nil {
			t.Fatalf("backend %v: checkpoint sink never called", be)
		}
		if ck.At < ckAt {
			t.Fatalf("backend %v: checkpoint at %g, want >= %g", be, ck.At, ckAt)
		}
		blob, err := ck.Marshal()
		if err != nil {
			t.Fatalf("backend %v: marshal: %v", be, err)
		}
		parsed, err := UnmarshalTrackCheckpoint(blob)
		if err != nil {
			t.Fatalf("backend %v: unmarshal: %v", be, err)
		}
		resumed, err := ResumeTrack(cfg, parsed, sched, until)
		if err != nil {
			t.Fatalf("backend %v: resume: %v", be, err)
		}
		var tail []Sample
		for _, s := range full.Samples {
			if s.At > ck.At+timeEps {
				tail = append(tail, s)
			}
		}
		if len(tail) == 0 {
			t.Fatalf("backend %v: no post-checkpoint samples to compare", be)
		}
		if len(resumed.Samples) != len(tail) {
			t.Fatalf("backend %v: resumed %d samples, uninterrupted tail has %d",
				be, len(resumed.Samples), len(tail))
		}
		for i := range tail {
			x, y := tail[i], resumed.Samples[i]
			same := x.At == y.At && x.N == y.N && x.Restarts == y.Restarts &&
				sameF64(x.Estimate, y.Estimate) && sameF64(x.Err, y.Err) &&
				sameF64(x.AdoptedAt, y.AdoptedAt)
			if !same {
				t.Fatalf("backend %v: post-checkpoint sample %d diverged:\n full:   %+v\n resumed:%+v",
					be, i, x, y)
			}
		}
		if resumed.FinalN != full.FinalN || resumed.Restarts != full.Restarts {
			t.Errorf("backend %v: resumed FinalN/Restarts %d/%d, want %d/%d",
				be, resumed.FinalN, resumed.Restarts, full.FinalN, full.Restarts)
		}
		// A stale checkpoint version must be rejected, not misread.
		parsed.Version = 99
		if _, err := ResumeTrack(cfg, parsed, sched, until); err == nil {
			t.Errorf("backend %v: version-99 checkpoint accepted", be)
		}
	}
}

// TestTrackContextCancel: canceling the driver's context stops the tracked
// run at the next advance boundary, and the samples taken up to that point
// are exactly the uninterrupted run's prefix (the trajectory depends only
// on the seed). The checkpoint sink doubles as a deterministic mid-run
// cancellation hook: it fires at the first tick at or after CheckpointAt.
func TestTrackContextCancel(t *testing.T) {
	const (
		n     = 300
		seed  = 11
		until = 20.0
	)
	full := Track(TrackerConfig{Protocol: trackConfig()}, n, nil, seed, until)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	partial := TrackContext(ctx, TrackerConfig{
		Protocol:     trackConfig(),
		CheckpointAt: 5,
		CheckpointSink: func(*TrackCheckpoint) {
			cancel()
		},
	}, n, nil, seed, until)

	if len(partial.Samples) == 0 || len(partial.Samples) >= len(full.Samples) {
		t.Fatalf("canceled run took %d samples (uninterrupted: %d), want a strict nonempty prefix",
			len(partial.Samples), len(full.Samples))
	}
	eqNaN := func(a, b float64) bool {
		return a == b || (math.IsNaN(a) && math.IsNaN(b))
	}
	for i, s := range partial.Samples {
		f := full.Samples[i]
		if s.At != f.At || s.N != f.N || s.Restarts != f.Restarts ||
			!eqNaN(s.Estimate, f.Estimate) || !eqNaN(s.Err, f.Err) || !eqNaN(s.AdoptedAt, f.AdoptedAt) {
			t.Fatalf("canceled run diverges at sample %d: %+v vs %+v", i, s, f)
		}
	}
}
