package churn

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"

	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/pop"
)

// TrackCheckpointVersion is the current tracker-checkpoint format version;
// it bumps independently of pop.SnapshotVersion (the nested engine
// snapshot carries its own).
const TrackCheckpointVersion = 1

// TrackCheckpoint is the serializable mid-run state of a tracked
// population: the tracker's own loop state (global clock offset, restart
// bookkeeping, the held estimate) plus a versioned snapshot of the engine
// it was driving. Captured by TrackerConfig.CheckpointSink at the end of a
// tick; ResumeTrack continues from it with the same schedule and config
// such that the resumed samples equal the uninterrupted run's samples
// after At.
type TrackCheckpoint struct {
	Version int `json:"version"`
	// At is the global parallel time of the capturing tick.
	At float64 `json:"at"`
	// Offset is the global time already elapsed on pre-restart engines
	// (tracker time = Offset + engine time).
	Offset float64 `json:"offset"`
	// LastRestart and Restarts are the restart bookkeeping; Seed is the
	// Track seed, kept here because per-restart engine seeds derive from
	// (Seed, restart ordinal).
	LastRestart float64 `json:"last_restart"`
	Restarts    int     `json:"restarts"`
	Seed        uint64  `json:"seed"`
	// Held and AdoptedAt carry the tracker's output state; both are NaN
	// before the first adoption, which JSON numbers cannot encode — hence
	// the string-fallback jsonFloat wrapper.
	Held      jsonFloat `json:"held"`
	AdoptedAt jsonFloat `json:"adopted_at"`
	// Engine is the driven engine's own versioned snapshot.
	Engine *pop.Snapshot[core.State] `json:"engine"`
}

// checkpoint captures the tracker's state at the end of the tick at global
// time t. Engine snapshots fail only if the state type does not marshal,
// which core.State always does, so a failure here is a programming error.
func (tr *tracker) checkpoint(t float64) *TrackCheckpoint {
	snap, err := tr.e.Snapshot()
	if err != nil {
		panic(fmt.Sprintf("churn: snapshotting tracked engine: %v", err))
	}
	return &TrackCheckpoint{
		Version:     TrackCheckpointVersion,
		At:          t,
		Offset:      tr.offset,
		LastRestart: tr.lastRestart,
		Restarts:    tr.restarts,
		Seed:        tr.seed,
		Held:        jsonFloat(tr.held),
		AdoptedAt:   jsonFloat(tr.adoptedAt),
		Engine:      snap,
	}
}

// Marshal renders the checkpoint as deterministic JSON.
func (c *TrackCheckpoint) Marshal() ([]byte, error) { return json.Marshal(c) }

// UnmarshalTrackCheckpoint parses a checkpoint and validates its version.
func UnmarshalTrackCheckpoint(data []byte) (*TrackCheckpoint, error) {
	var c TrackCheckpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("churn: parsing checkpoint: %w", err)
	}
	if c.Version != TrackCheckpointVersion {
		return nil, fmt.Errorf("churn: checkpoint version %d (this build reads %d)",
			c.Version, TrackCheckpointVersion)
	}
	return &c, nil
}

// WriteTrackCheckpointFile writes the checkpoint to path as one JSON line.
func WriteTrackCheckpointFile(path string, c *TrackCheckpoint) error {
	data, err := c.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadTrackCheckpointFile reads a checkpoint written by
// WriteTrackCheckpointFile.
func ReadTrackCheckpointFile(path string) (*TrackCheckpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalTrackCheckpoint(data)
}

// jsonFloat is a float64 whose JSON form falls back to the strings "NaN",
// "+Inf" and "-Inf" for the values encoding/json rejects as numbers — the
// same convention sweep.Values uses for its record streams (not imported
// here to keep churn's dependency surface at core+pop).
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

func (f *jsonFloat) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("churn: non-finite float marker %q: %w", s, err)
		}
		*f = jsonFloat(v)
		return nil
	}
	var v float64
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*f = jsonFloat(v)
	return nil
}
