package churn

import (
	"context"
	"fmt"
	"math"

	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/pop"
)

// DefaultXFrac is the default undecided-fraction detection threshold: a
// tick observing more than this fraction of agents still in the initial
// undecided role signals a join wave. Freshly joined agents are absorbed
// by the partition subprotocol within O(log n) time, so the signal is
// transient — which is why the tracker's poll cadence defaults to 1 time
// unit (see TrackerConfig.TickEvery).
const DefaultXFrac = 0.05

// warmupFactor·log2(n) is how long after a restart the undecided-fraction
// detector stays quiet: a restart re-initializes every agent to the
// undecided role, and the partition needs O(log n) time to absorb them.
const warmupFactor = 4

// TrackerConfig configures the detect-and-restart tracker.
type TrackerConfig struct {
	// Protocol holds the Log-Size-Estimation constants (zero value:
	// core.FastConfig()).
	Protocol core.Config
	// Backend selects the simulation engine (default pop.Auto).
	Backend pop.Backend
	// Parallelism is the intra-trial worker target forwarded to the
	// engines (pop.WithParallelism semantics; 0 = auto).
	Parallelism int
	// TickEvery is the poll cadence in parallel time: detection checks
	// and samples happen at every tick. It must stay below the O(log n)
	// partition timescale or join waves are absorbed unseen; the default
	// of 1 does.
	TickEvery float64
	// XFrac is the undecided-fraction restart threshold (default
	// DefaultXFrac; negative disables join detection).
	XFrac float64
	// RefreshEvery forces a restart whenever the current protocol run is
	// older than this many units of parallel time. It is the shrink
	// fallback: leaves produce no undecided agents, so without protocol-
	// level size-change detection (arXiv:2405.05137's counting machinery,
	// not reproduced here) a stale over-estimate is only corrected by
	// re-running. 0 disables refreshes.
	RefreshEvery float64
	// CheckpointSink, when non-nil, receives one TrackCheckpoint captured
	// at the end of the first tick at or after global time CheckpointAt —
	// the tracker's own state plus a versioned snapshot of the current
	// engine. ResumeTrack continues a tracked run from it such that the
	// resumed samples match the uninterrupted run's post-checkpoint
	// samples exactly.
	CheckpointSink func(*TrackCheckpoint)
	CheckpointAt   float64
}

// Sample is one tick's observation of the tracked population.
type Sample struct {
	// At is the global parallel time of the observation (continuous
	// across restarts).
	At float64
	// N is the population size at the observation.
	N int
	// Estimate is the tracker's held output: the mean per-agent estimate
	// of log2 n from the most recent run whose output reached every
	// agent. NaN before the first full convergence.
	Estimate float64
	// Err is |Estimate − log2 N| against the population size at the
	// observation; NaN while Estimate is.
	Err float64
	// AdoptedAt is the global time at which the held estimate was last
	// adopted (NaN before the first adoption) — what distinguishes a
	// fresh post-restart estimate from a stale held one.
	AdoptedAt float64
	// Restarts counts tracker restarts up to and including this tick.
	Restarts int
}

// Result summarizes a tracked run.
type Result struct {
	Samples  []Sample
	Restarts int
	FinalN   int
	// MeanAbsErr and MaxAbsErr aggregate Err over the samples holding an
	// estimate; NaN if no sample ever did.
	MeanAbsErr, MaxAbsErr float64
}

// ErrStats aggregates |err| over the samples at or after fromTime that
// hold an estimate, returning their mean, max and count (NaN, NaN, 0 when
// none do).
func (r Result) ErrStats(fromTime float64) (mean, maxv float64, n int) {
	sum := 0.0
	maxv = math.NaN()
	for _, s := range r.Samples {
		if s.At < fromTime-timeEps || math.IsNaN(s.Err) {
			continue
		}
		sum += s.Err
		if n == 0 || s.Err > maxv {
			maxv = s.Err
		}
		n++
	}
	if n == 0 {
		return math.NaN(), math.NaN(), 0
	}
	return sum / float64(n), maxv, n
}

// DetectionLatency scans a tracked run for the response to a churn event
// at global time eventAt: detect is the delay until the first restart at
// or after the event, and settle the delay until the tracker holds an
// estimate *adopted after that restart* whose error is within errTol —
// i.e. until the re-count has actually re-converged, not merely until the
// stale held estimate happens to sit inside the tolerance (a doubling
// moves log2 n by only 1, so any sensible tolerance contains the stale
// value). Either is NaN if it never happened.
func (r Result) DetectionLatency(eventAt, errTol float64) (detect, settle float64) {
	detect, settle = math.NaN(), math.NaN()
	base := 0
	detectAt := math.NaN()
	for _, s := range r.Samples {
		if s.At < eventAt-timeEps {
			base = s.Restarts
			continue
		}
		if math.IsNaN(detect) {
			if s.Restarts > base {
				detect = s.At - eventAt
				detectAt = s.At
			}
			continue
		}
		if s.AdoptedAt > detectAt+timeEps && s.Err <= errTol { // false while NaN
			settle = s.At - eventAt
			return detect, settle
		}
	}
	return detect, settle
}

// Track runs the Log-Size-Estimation protocol on a population that starts
// at n0 agents and churns per sched (marks relative to the start),
// restarting the protocol on detection, until `until` units of global
// parallel time have passed. Everything — engine seeds per restart and
// the tick/detection cadence — derives deterministically from seed, so a
// Track call is a valid sweep trial.
//
// A restart rebuilds the engine from an all-initial configuration of the
// current population size (agents are anonymous, so this is exactly a
// protocol-level global restart) with a fresh seed derived from the
// restart ordinal; global time continues across the rebuild.
func Track(cfg TrackerConfig, n0 int, sched Schedule, seed uint64, until float64) Result {
	return TrackContext(context.Background(), cfg, n0, sched, seed, until)
}

// TrackContext is Track under external cancellation: canceling ctx stops
// the driver loop at the next advance boundary, and the Result covers the
// samples taken so far. A canceled tracked run is still deterministic up
// to its stopping point — the engine trajectory depends only on the seed,
// so the samples it did take match an uninterrupted run's prefix.
func TrackContext(ctx context.Context, cfg TrackerConfig, n0 int, sched Schedule, seed uint64, until float64) Result {
	tr := newTracker(cfg, seed)
	tr.spawn(n0)
	drive(ctx, sched, until, tr.tickEvery, tr.now, tr.run, tr.step, tr.event, tr.tick)
	return tr.finish()
}

// ResumeTrack continues a tracked run from a checkpoint captured by a
// CheckpointSink: the caller supplies the same TrackerConfig, schedule,
// seed (carried in the checkpoint) and horizon as the original Track call,
// and receives a Result whose samples are exactly the uninterrupted run's
// samples after the checkpoint time. Aggregates (MeanAbsErr, MaxAbsErr)
// likewise cover only the resumed window.
func ResumeTrack(cfg TrackerConfig, ck *TrackCheckpoint, sched Schedule, until float64) (Result, error) {
	if ck.Version != TrackCheckpointVersion {
		return Result{}, fmt.Errorf("churn: checkpoint version %d (this build reads %d)",
			ck.Version, TrackCheckpointVersion)
	}
	if ck.Engine == nil {
		return Result{}, fmt.Errorf("churn: checkpoint has no engine snapshot")
	}
	tr := newTracker(cfg, ck.Seed)
	e, err := pop.Restore(ck.Engine, tr.p.Rule)
	if err != nil {
		return Result{}, fmt.Errorf("churn: restoring checkpointed engine: %w", err)
	}
	tr.e = e
	tr.offset = ck.Offset
	tr.lastRestart = ck.LastRestart
	tr.restarts = ck.Restarts
	tr.held = float64(ck.Held)
	tr.adoptedAt = float64(ck.AdoptedAt)
	tr.ckDone = true // never re-checkpoint a resumed run
	driveFrom(context.Background(), sched, ck.At, until, tr.tickEvery, tr.now, tr.run, tr.step, tr.event, tr.tick)
	return tr.finish(), nil
}

// tracker is the mutable state behind Track/ResumeTrack: the engine plus
// everything the detect-and-restart loop carries across ticks — exactly
// the fields a TrackCheckpoint serializes.
type tracker struct {
	cfg              TrackerConfig
	p                *core.Protocol
	tickEvery, xfrac float64
	seed             uint64

	e           pop.Engine[core.State]
	offset      float64 // global time already elapsed on previous engines
	lastRestart float64
	restarts    int
	held        float64
	adoptedAt   float64

	res    Result
	errSum float64
	errN   int
	ckDone bool
}

func newTracker(cfg TrackerConfig, seed uint64) *tracker {
	pcfg := cfg.Protocol
	if pcfg == (core.Config{}) {
		pcfg = core.FastConfig()
	}
	tickEvery := cfg.TickEvery
	if tickEvery <= 0 {
		tickEvery = 1
	}
	xfrac := cfg.XFrac
	if xfrac == 0 {
		xfrac = DefaultXFrac
	}
	return &tracker{
		cfg: cfg, p: core.MustNew(pcfg), tickEvery: tickEvery, xfrac: xfrac,
		seed: seed, held: math.NaN(), adoptedAt: math.NaN(),
		res:    Result{MeanAbsErr: math.NaN(), MaxAbsErr: math.NaN()},
		ckDone: cfg.CheckpointSink == nil,
	}
}

func (tr *tracker) spawn(size int) {
	tr.e = pop.NewEngineFromCounts(
		[]core.State{core.Initial()}, []int64{int64(size)}, tr.p.Rule,
		pop.WithSeed(pop.TrialSeed(tr.seed, "churn/restart", tr.restarts)),
		pop.WithBackend(tr.cfg.Backend), pop.WithParallelism(tr.cfg.Parallelism))
}

// doRestart replaces the engine with a fresh all-initial one of the
// current size, keeping the global clock continuous.
func (tr *tracker) doRestart(at float64) {
	size := tr.e.N()
	tr.offset = at
	tr.restarts++
	tr.lastRestart = at
	tr.spawn(size)
}

func (tr *tracker) now() float64   { return tr.offset + tr.e.Time() }
func (tr *tracker) run(dt float64) { tr.e.RunTime(dt) }
func (tr *tracker) step()          { tr.e.Step() }
func (tr *tracker) event(ev Event) {
	if ev.Join > 0 {
		tr.e.AddAgents(core.Initial(), ev.Join)
	}
	if ev.Leave > 0 {
		tr.e.RemoveAgents(ev.Leave)
	}
}

func (tr *tracker) tick(t float64) {
	n := tr.e.N()
	// Observe: adopt a new estimate only when the latest run's output has
	// reached every agent, else keep holding.
	st := core.Estimates(tr.e)
	if st.HaveOutput == n {
		tr.held = st.Mean
		tr.adoptedAt = t
	}
	errv := math.NaN()
	if !math.IsNaN(tr.held) {
		errv = math.Abs(tr.held - math.Log2(float64(n)))
		tr.errSum += errv
		tr.errN++
		if math.IsNaN(tr.res.MaxAbsErr) || errv > tr.res.MaxAbsErr {
			tr.res.MaxAbsErr = errv
		}
	}
	// Detect. The undecided-fraction signal is suppressed during the
	// post-restart warmup, while the restart's own undecided agents are
	// still being partitioned.
	switch {
	case tr.xfrac >= 0 && t-tr.lastRestart > warmupFactor*math.Log2(float64(n)) &&
		float64(tr.e.Count(undecided)) > tr.xfrac*float64(n):
		tr.doRestart(t)
	case tr.cfg.RefreshEvery > 0 && t-tr.lastRestart >= tr.cfg.RefreshEvery-timeEps:
		tr.doRestart(t)
	}
	tr.res.Samples = append(tr.res.Samples, Sample{
		At: t, N: n, Estimate: tr.held, Err: errv,
		AdoptedAt: tr.adoptedAt, Restarts: tr.restarts})
	// Checkpoint last, after any restart this tick performed, so the
	// captured engine is the one the next tick will actually drive.
	if !tr.ckDone && t >= tr.cfg.CheckpointAt-timeEps {
		tr.ckDone = true
		tr.cfg.CheckpointSink(tr.checkpoint(t))
	}
}

func (tr *tracker) finish() Result {
	tr.res.Restarts = tr.restarts
	tr.res.FinalN = tr.e.N()
	if tr.errN > 0 {
		tr.res.MeanAbsErr = tr.errSum / float64(tr.errN)
	}
	return tr.res
}

// undecided reports the initial pre-partition role — the tracker's join
// signal.
func undecided(a core.State) bool { return a.Role == core.RoleX }
