// Package churn adds dynamic populations — join/leave events at parallel-
// time marks — on top of the fixed-n simulation engines, and a detect-and-
// restart size tracker in the spirit of Kaaser & Lohmann, "Dynamic Size
// Counting in the Population Protocol Model" (arXiv:2405.05137).
//
// A [Schedule] is a declarative, time-sorted list of [Event]s; generators
// cover the standard workloads (lockstep step churn, Poisson-arrival
// turnover, a doubling/halving, an adversarial burst). [Apply] drives any
// pop.Engine through a schedule: joins enter in a caller-chosen state,
// leaves are removed uniformly at random by the engine (a multivariate
// hypergeometric sample of the configuration on the multiset backends),
// and parallel time stays meaningful throughout because the engines
// account it per population-size segment.
//
// [Track] layers the paper's Log-Size-Estimation protocol (internal/core)
// on a churning population. The protocol itself already absorbs joins
// gradually — joiners enter undecided and are partitioned, and a joiner
// whose fresh geometric sample exceeds the standing logSize2 maximum
// triggers the protocol's own restart — but it has no mechanism to
// *shrink* its estimate or to re-count after heavy churn. The tracker
// adds the detect-and-restart loop: it polls the configuration (the
// simulation-level stand-in for the agents' continuous self-detection in
// arXiv:2405.05137), and when the undecided fraction jumps (a join wave)
// or the current run exceeds a refresh age (the shrink fallback) it
// restarts the protocol from scratch on the current population, holding
// the previously converged estimate as its output until a new one is
// ready.
package churn

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"github.com/popsim/popsize/internal/pop"
)

// timeEps absorbs float64 rounding when comparing parallel-time marks:
// engines advance in 1/n quanta, so any epsilon well below the smallest
// quantum of interest is safe.
const timeEps = 1e-9

// Event is one churn point: at parallel-time mark At, Join agents enter
// (in the join state the driver was given) and Leave agents are removed
// uniformly at random. Joins are applied before leaves, so an event may
// turn over more agents than the pre-event population holds.
type Event struct {
	At    float64
	Join  int
	Leave int
}

// Schedule is a time-sorted list of churn events. Marks are relative to
// the driving call's start time.
type Schedule []Event

// Validate checks that the schedule is time-sorted with nonnegative marks
// and deltas.
func (s Schedule) Validate() error {
	prev := 0.0
	for i, ev := range s {
		if ev.At < 0 || math.IsNaN(ev.At) {
			return fmt.Errorf("churn: event %d has invalid time %v", i, ev.At)
		}
		if ev.At < prev {
			return fmt.Errorf("churn: event %d at t=%g precedes event %d at t=%g",
				i, ev.At, i-1, prev)
		}
		if ev.Join < 0 || ev.Leave < 0 {
			return fmt.Errorf("churn: event %d has negative deltas (join %d, leave %d)",
				i, ev.Join, ev.Leave)
		}
		prev = ev.At
	}
	return nil
}

// Net returns the population size after the whole schedule has been
// applied to a starting population of n0.
func (s Schedule) Net(n0 int) int {
	for _, ev := range s {
		n0 += ev.Join - ev.Leave
	}
	return n0
}

// Turnover returns the total number of joins the schedule performs — with
// Step/Poisson's join-one-leave-one events, the number of membership
// replacements.
func (s Schedule) Turnover() int {
	t := 0
	for _, ev := range s {
		t += ev.Join
	}
	return t
}

// Step returns a constant-size lockstep-turnover schedule: every period
// time units up to (exclusive) until, rate·period·n0 agents leave and the
// same number join. Fractional per-event quotas are carried forward, so
// the long-run turnover rate is rate·n0 agents per unit of parallel time
// even when a single period's quota rounds to zero.
func Step(n0 int, rate, period, until float64) Schedule {
	if period <= 0 || rate < 0 {
		panic(fmt.Sprintf("churn: Step needs period > 0 and rate >= 0 (got %g, %g)", period, rate))
	}
	var s Schedule
	carry := 0.0
	for at := period; at < until-timeEps; at += period {
		carry += rate * period * float64(n0)
		k := int(carry)
		carry -= float64(k)
		if k > 0 {
			s = append(s, Event{At: at, Join: k, Leave: k})
		}
	}
	return s
}

// Poisson returns a memoryless-turnover schedule: join-one-leave-one
// events arrive as a Poisson process of intensity rate·n0 per unit of
// parallel time (exponential inter-arrival gaps, derived
// deterministically from seed) — the continuous-time analogue of Step's
// lockstep churn.
func Poisson(seed uint64, n0 int, rate, until float64) Schedule {
	if rate < 0 {
		panic(fmt.Sprintf("churn: Poisson needs rate >= 0 (got %g)", rate))
	}
	lambda := rate * float64(n0)
	if lambda == 0 {
		return nil
	}
	r := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	var s Schedule
	at := 0.0
	for {
		at += r.ExpFloat64() / lambda
		if at >= until-timeEps {
			return s
		}
		s = append(s, Event{At: at, Join: 1, Leave: 1})
	}
}

// Doubling returns the single join event that doubles a population of n0
// at time at.
func Doubling(n0 int, at float64) Schedule {
	return Schedule{{At: at, Join: n0}}
}

// Halving returns the single leave event that halves a population of n0
// at time at.
func Halving(n0 int, at float64) Schedule {
	return Schedule{{At: at, Leave: n0 / 2}}
}

// Burst returns an adversarial burst: at time at, frac·n0 agents leave at
// once, and at rejoinAt the same number join back — a step change in both
// directions, the worst case for a tracker.
func Burst(n0 int, at, frac, rejoinAt float64) Schedule {
	if frac < 0 || frac >= 1 {
		panic(fmt.Sprintf("churn: Burst needs 0 <= frac < 1 (got %g)", frac))
	}
	k := int(frac * float64(n0))
	return Schedule{{At: at, Leave: k}, {At: rejoinAt, Join: k}}
}

// Merge combines schedules into one time-sorted schedule (events at equal
// marks keep their relative order).
func Merge(scheds ...Schedule) Schedule {
	var out Schedule
	for _, s := range scheds {
		out = append(out, s...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Apply drives e through sched on the engine's own clock: event marks are
// relative to e.Time() at the call. Between events the engine advances
// with RunTime; at each event, Join agents in state join enter and Leave
// agents are removed uniformly at random. tick, when non-nil, is called
// every tickEvery units of parallel time (relative to the call) with the
// current relative time; tickEvery <= 0 disables ticks. Apply returns at
// relative time until, with every event before until applied.
func Apply[S comparable](e pop.Engine[S], sched Schedule, join S, until, tickEvery float64, tick func(now float64)) {
	base := e.Time()
	drive(context.Background(), sched, until, tickEvery,
		func() float64 { return e.Time() - base },
		func(dt float64) { e.RunTime(dt) },
		e.Step,
		func(ev Event) {
			if ev.Join > 0 {
				e.AddAgents(join, ev.Join)
			}
			if ev.Leave > 0 {
				e.RemoveAgents(ev.Leave)
			}
		},
		tick)
}

// drive is the single schedule loop behind Apply and Track: it advances
// toward min(next event, next tick, horizon), forces one Step when a
// requested advance rounds below one interaction (delta·n < 1) so the
// loop always makes progress, fires due events (those at or past the
// horizon do not fire), and calls tick at its cadence. The engine is
// reached only through the callbacks, so Track can swap engines inside a
// tick (a restart) without the loop noticing. Canceling ctx stops the
// loop at the next advance boundary — the same granularity a tick has —
// leaving the driven state consistent (no event half-applied).
func drive(ctx context.Context, sched Schedule, until, tickEvery float64,
	now func() float64, run func(dt float64), step func(),
	event func(Event), tick func(t float64)) {
	driveFrom(ctx, sched, math.Inf(-1), until, tickEvery, now, run, step, event, tick)
}

// driveFrom is drive resuming mid-schedule: events at or before `from`
// are treated as already fired, and the tick grid — always the multiples
// of tickEvery, rebuilt by repeated addition exactly as the live loop
// advances it — restarts at the first point past `from`. ResumeTrack uses
// it with from = the checkpoint time; drive passes -Inf (nothing skipped).
// now() must already report a time of at least `from` when called.
func driveFrom(ctx context.Context, sched Schedule, from, until, tickEvery float64,
	now func() float64, run func(dt float64), step func(),
	event func(Event), tick func(t float64)) {
	if err := sched.Validate(); err != nil {
		panic(err)
	}
	nextTick := math.Inf(1)
	if tick != nil && tickEvery > 0 {
		nextTick = tickEvery
		for nextTick <= from+timeEps {
			nextTick += tickEvery
		}
	}
	i := 0
	for i < len(sched) && sched[i].At <= from+timeEps {
		i++
	}
	for t := now(); t < until-timeEps && ctx.Err() == nil; t = now() {
		next := until
		if i < len(sched) && sched[i].At < next {
			next = math.Max(sched[i].At, t)
		}
		if nextTick < next {
			next = nextTick
		}
		if next > t {
			run(next - t)
			if now() <= t+timeEps {
				step()
			}
			t = now()
		}
		for i < len(sched) && sched[i].At <= t+timeEps {
			ev := sched[i]
			i++
			if ev.At >= until-timeEps {
				continue
			}
			event(ev)
		}
		if t >= nextTick-timeEps {
			tick(t)
			for nextTick <= t+timeEps {
				nextTick += tickEvery
			}
		}
	}
}
