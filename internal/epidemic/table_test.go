// Golden byte-identity for the table-compiled epidemic: on every backend
// (sequential, batched, dense — serial and forced-parallel) the compiled
// table's rule must reproduce the handwritten Rule's trajectory byte for
// byte under the same seed, with and without the declared-table bypass.
package epidemic

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"github.com/popsim/popsize/internal/pop"
)

func snapBytes(t *testing.T, e pop.Engine[State]) []byte {
	t.Helper()
	s, ok := e.(interface {
		Snapshot() (*pop.Snapshot[State], error)
	})
	if !ok {
		t.Fatalf("engine %T has no Snapshot", e)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	raw, err := snap.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	return raw
}

func TestTableMatchesRuleByteIdentical(t *testing.T) {
	c := Compiled()
	crule := c.Rule()
	const n = 1200
	init := func(i int, _ *rand.Rand) State {
		return State{Val: boolToInt(i < 5), Member: i < n-200}
	}
	type build func(rule pop.Rule[State], opts ...pop.Option) pop.Engine[State]
	backends := map[string]build{
		"seq": func(rule pop.Rule[State], opts ...pop.Option) pop.Engine[State] {
			return pop.New(n, init, rule, opts...)
		},
		"batch": func(rule pop.Rule[State], opts ...pop.Option) pop.Engine[State] {
			return pop.NewBatch(n, init, rule, opts...)
		},
		"batch/par2": func(rule pop.Rule[State], opts ...pop.Option) pop.Engine[State] {
			return pop.NewBatch(n, init, rule, append(opts, pop.WithParallelism(2))...)
		},
		"dense": func(rule pop.Rule[State], opts ...pop.Option) pop.Engine[State] {
			return pop.NewDense(n, init, rule, opts...)
		},
		"dense/par2": func(rule pop.Rule[State], opts ...pop.Option) pop.Engine[State] {
			return pop.NewDense(n, init, rule, append(opts, pop.WithParallelism(2))...)
		},
	}
	for name, mk := range backends {
		for _, seed := range []uint64{9, 41} {
			run := func(rule pop.Rule[State], opts ...pop.Option) []byte {
				e := mk(rule, append(opts, pop.WithSeed(seed))...)
				e.RunTime(12)
				return snapBytes(t, e)
			}
			hand := run(Rule)
			compiled := run(crule)
			tabled := run(crule, c.Option())
			if !bytes.Equal(hand, compiled) {
				t.Errorf("%s seed %d: compiled table rule diverged from handwritten Rule", name, seed)
			}
			if !bytes.Equal(hand, tabled) {
				t.Errorf("%s seed %d: WithTable run diverged from handwritten Rule", name, seed)
			}
		}
	}
}

func TestTableBypassCoversBinaryDomain(t *testing.T) {
	c := Compiled()
	e := pop.NewBatch(2048, func(i int, _ *rand.Rand) State {
		return State{Val: boolToInt(i < 8), Member: i < 1500}
	}, c.Rule(), pop.WithSeed(3), c.Option())
	e.RunTime(10)
	cs, ok := pop.EngineCacheStats(e)
	if !ok {
		t.Fatal("EngineCacheStats unavailable on BatchSim")
	}
	if cs.RuleCalls != 0 {
		t.Errorf("binary-domain epidemic with table made %d rule calls, want 0", cs.RuleCalls)
	}
	if cs.TableHits == 0 {
		t.Error("TableHits = 0, want > 0")
	}
	if !Done(e) {
		t.Error("epidemic did not complete in 10 time units at n=2048")
	}
}
