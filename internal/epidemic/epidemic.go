// Package epidemic implements one-way epidemics — the max-propagation
// primitive underlying every stage of the size-estimation protocol — and
// the timing analysis of Lemma A.1 (full population) and Corollaries
// 3.4/3.5 (subpopulation).
//
// An epidemic is the transition i, j → max(i, j), max(i, j) restricted to
// one direction: the receiver adopts the sender's value when larger. In
// O(log n) parallel time the maximum reaches every agent w.h.p.
package epidemic

import (
	"math/rand/v2"

	"github.com/popsim/popsize/internal/pop"
)

// State is an epidemic agent: a value being max-propagated and a
// subpopulation membership flag (for Corollary 3.4 experiments, only
// members exchange values; non-members are inert spectators that still
// consume scheduler picks).
type State struct {
	Val    int
	Member bool
}

// Rule propagates the maximum value between two member agents. It ignores
// its random source: epidemics are deterministic.
func Rule(rec, sen State, _ *rand.Rand) (State, State) {
	if rec.Member && sen.Member {
		switch {
		case rec.Val < sen.Val:
			rec.Val = sen.Val
		case sen.Val < rec.Val:
			sen.Val = rec.Val
		}
	}
	return rec, sen
}

// Table is the binary-valued epidemic written as a declarative
// transition table — the domain New and NewSubpop construct, where
// values are 0 (susceptible) and 1 (infected). Member pairs holding
// different values adopt the maximum; every other pair, including the
// spectator self-transitions declared explicitly so the non-member
// states join the table's state set, is a null transition. Compiling
// this table yields a rule byte-identical in effect to Rule on that
// domain (table_test.go pins this on all three backends).
func Table() pop.Table[State] {
	m0, m1 := State{Val: 0, Member: true}, State{Val: 1, Member: true}
	s0, s1 := State{Val: 0, Member: false}, State{Val: 1, Member: false}
	return pop.Table[State]{
		{Rec: m0, Sen: m1}: pop.To(m1, m1),
		{Rec: m1, Sen: m0}: pop.To(m1, m1),
		{Rec: s0, Sen: s0}: pop.To(s0, s0),
		{Rec: s1, Sen: s1}: pop.To(s1, s1),
	}
}

// Compiled returns the compiled form of Table, shared across callers —
// pass Compiled().Option() to an engine running Compiled().Rule() to
// enable the declared-table bypass.
func Compiled() *pop.Compiled[State] { return compiled }

var compiled = pop.MustCompile(Table())

// New constructs a population of n agents of which the first infected hold
// value 1 and the rest 0, all members.
func New(n, infected int, opts ...pop.Option) *pop.Sim[State] {
	return pop.New(n, func(i int, _ *rand.Rand) State {
		return State{Val: boolToInt(i < infected), Member: true}
	}, Rule, opts...)
}

// NewSubpop constructs a population of n agents of which only the first
// members belong to the epidemic subpopulation; the first infected of those
// hold value 1. It models Corollary 3.4's epidemic among a = n/c agents.
func NewSubpop(n, members, infected int, opts ...pop.Option) *pop.Sim[State] {
	if infected > members || members > n {
		panic("epidemic: need infected <= members <= n")
	}
	return pop.New(n, func(i int, _ *rand.Rand) State {
		return State{Val: boolToInt(i < infected), Member: i < members}
	}, Rule, opts...)
}

// NewEngine is New with a backend selectable via pop.WithBackend.
func NewEngine(n, infected int, opts ...pop.Option) pop.Engine[State] {
	return pop.NewEngine(n, func(i int, _ *rand.Rand) State {
		return State{Val: boolToInt(i < infected), Member: true}
	}, Rule, opts...)
}

// NewSubpopEngine is NewSubpop with a backend selectable via
// pop.WithBackend.
func NewSubpopEngine(n, members, infected int, opts ...pop.Option) pop.Engine[State] {
	if infected > members || members > n {
		panic("epidemic: need infected <= members <= n")
	}
	return pop.NewEngine(n, func(i int, _ *rand.Rand) State {
		return State{Val: boolToInt(i < infected), Member: i < members}
	}, Rule, opts...)
}

// Done reports whether every member agent holds the maximum (value 1 for
// populations built by New/NewSubpop).
func Done(s pop.Engine[State]) bool {
	return s.All(func(a State) bool { return !a.Member || a.Val == 1 })
}

// CompletionTime runs the epidemic to completion and returns the parallel
// time it took. maxTime bounds the run; ok is false on timeout.
func CompletionTime(s pop.Engine[State], maxTime float64) (t float64, ok bool) {
	done, at := s.RunUntil(Done, 0.25, maxTime)
	return at, done
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
