package epidemic

import (
	"math"
	"testing"

	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/prob"
)

func TestRulePropagatesMax(t *testing.T) {
	tests := []struct {
		name     string
		rec, sen State
		wantRec  int
		wantSen  int
	}{
		{"rec adopts", State{Val: 0, Member: true}, State{Val: 5, Member: true}, 5, 5},
		{"sen adopts", State{Val: 7, Member: true}, State{Val: 2, Member: true}, 7, 7},
		{"equal", State{Val: 3, Member: true}, State{Val: 3, Member: true}, 3, 3},
		{"non-member rec", State{Val: 0}, State{Val: 5, Member: true}, 0, 5},
		{"non-member sen", State{Val: 0, Member: true}, State{Val: 5}, 0, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			gr, gs := Rule(tt.rec, tt.sen, nil)
			if gr.Val != tt.wantRec || gs.Val != tt.wantSen {
				t.Errorf("Rule() = %d,%d; want %d,%d", gr.Val, gs.Val, tt.wantRec, tt.wantSen)
			}
		})
	}
}

// TestCompletionNearHarmonic compares the average epidemic completion time
// with Lemma A.1's E[T] = (n−1)/n · H_{n−1}.
func TestCompletionNearHarmonic(t *testing.T) {
	const n, trials = 1000, 20
	want := prob.ExpectedEpidemicTime(n)
	sum := 0.0
	for seed := uint64(0); seed < trials; seed++ {
		s := New(n, 1, pop.WithSeed(seed))
		at, ok := CompletionTime(s, 100*want)
		if !ok {
			t.Fatalf("seed %d: epidemic did not complete", seed)
		}
		sum += at
	}
	got := sum / trials
	if got < 0.5*want || got > 1.6*want {
		t.Errorf("mean completion time %.2f not within [0.5, 1.6]×E[T]=%.2f", got, want)
	}
}

// TestUpperTailBound checks Corollary 3.5: an epidemic among n/3 agents
// exceeds 24 ln n time with probability < 27 n⁻³ — i.e. never, at these
// trial counts.
func TestUpperTailBound(t *testing.T) {
	const n, trials = 600, 25
	bound := 24 * math.Log(float64(n))
	for seed := uint64(0); seed < trials; seed++ {
		s := NewSubpop(n, n/3, 1, pop.WithSeed(seed))
		at, ok := CompletionTime(s, 4*bound)
		if !ok {
			t.Fatalf("seed %d: subpopulation epidemic did not complete", seed)
		}
		if at > bound {
			t.Errorf("seed %d: subpopulation epidemic took %.1f > 24 ln n = %.1f", seed, at, bound)
		}
	}
}

// TestSubpopulationSlowdown measures the slowdown from confining an
// epidemic to a = n/c of the population. Dimensional analysis (and this
// measurement) give expected parallel time (n−1)·H_{a−1}/a ≈ c·ln a — a
// slowdown factor of ≈ c·(ln a/ln n), NOT the c² that a literal reading of
// Corollary 3.4's E[T] formula suggests (the corollary multiplies a
// parallel time by an interaction-count ratio; its w.h.p. conclusion that
// 24·ln n suffices for c = 3 is conservative and still holds — see
// TestUpperTailBound).
func TestSubpopulationSlowdown(t *testing.T) {
	const n, trials = 900, 15
	var full, sub float64
	for seed := uint64(0); seed < trials; seed++ {
		f := New(n, 1, pop.WithSeed(seed))
		at, ok := CompletionTime(f, 1e6)
		if !ok {
			t.Fatal("full epidemic did not complete")
		}
		full += at

		sb := NewSubpop(n, n/3, 1, pop.WithSeed(seed+1000))
		at, ok = CompletionTime(sb, 1e6)
		if !ok {
			t.Fatal("subpopulation epidemic did not complete")
		}
		sub += at
	}
	ratio := sub / full
	lnA, lnN := math.Log(float64(n)/3), math.Log(float64(n))
	want := 3 * lnA / lnN
	if ratio < 0.6*want || ratio > 1.7*want {
		t.Errorf("subpopulation slowdown ratio = %.2f, want ≈ c·ln a/ln n = %.2f", ratio, want)
	}
}
