package sweep

import (
	"fmt"
	"strings"
)

// UnknownName is the shared selection error for name-keyed lookups — the
// protocol registry behind cmd/popsim's -protocol and cmd/experiments'
// -only both route through it, so every "no such thing" message names the
// things that do exist.
func UnknownName(kind, got string, available []string) error {
	return fmt.Errorf("unknown %s %q (available: %s)", kind, got, strings.Join(available, ", "))
}
