package sweep

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/popsim/popsize/internal/pop"
)

// Flags bundles the command-line surface shared by the sweep-driven
// commands (cmd/experiments, cmd/fig2, cmd/popsim): backend selection,
// worker-pool size, base seed, and the JSONL checkpoint/stream. Register
// attaches them to a FlagSet so the three commands stay flag-compatible by
// construction instead of by three hand-maintained copies.
type Flags struct {
	Backend string
	Workers int
	Par     int
	Seed    uint64
	JSONL   string
	Resume  bool

	// Trajectory flags (single-run instrumentation; see expt.ConfigureTrajectory):
	// History streams a sampled configuration trajectory (one HistoryRecord
	// JSONL line every HistoryEvery time units) to a file; Snapshot writes a
	// versioned engine snapshot at time SnapshotAt (or at run end when <= 0);
	// Restore resumes a run from a snapshot file instead of a fresh engine.
	History      string
	HistoryEvery float64
	Snapshot     string
	SnapshotAt   float64
	Restore      string
}

// Register declares the shared flags on fs (use flag.CommandLine for a
// command's top level). defaultJSONL may be empty to disable the record
// stream unless the user asks for it.
func Register(fs *flag.FlagSet, defaultJSONL string) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Backend, "backend", "auto", "simulation backend: auto|seq|batch|dense")
	fs.IntVar(&f.Workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	fs.IntVar(&f.Par, "par", 0, "intra-trial worker target for the multiset backends (0 = auto: GOMAXPROCS above ~1.7e7 agents; any value >= 1 forces the deterministic splitter path, whose results are identical for every worker count)")
	fs.Uint64Var(&f.Seed, "seed", 1, "base random seed (per-trial seeds derive from it)")
	fs.StringVar(&f.JSONL, "jsonl", defaultJSONL, "sweep record stream / checkpoint file (empty = none)")
	fs.BoolVar(&f.Resume, "resume", false, "skip trials already recorded in -jsonl and append the rest")
	fs.StringVar(&f.History, "history", "", "stream a sampled configuration trajectory to this JSONL file (empty = none)")
	fs.Float64Var(&f.HistoryEvery, "history-dt", 1, "trajectory sampling interval Δ in parallel-time units (with -history)")
	fs.StringVar(&f.Snapshot, "snapshot", "", "write a versioned engine snapshot to this file (empty = none)")
	fs.Float64Var(&f.SnapshotAt, "snapshot-at", 0, "parallel time at which to take the -snapshot (<= 0: at run end)")
	fs.StringVar(&f.Restore, "restore", "", "resume the run from this engine snapshot file instead of a fresh engine")
	return f
}

// ParseBackend parses the -backend flag value.
func (f *Flags) ParseBackend() (pop.Backend, error) { return pop.ParseBackend(f.Backend) }

// Execute runs points under the flags: it parses the backend, loads the
// JSONL checkpoint when -resume is set (truncating the file otherwise),
// streams new records, and returns the merged results. onRecord (optional)
// observes every record, resumed and fresh.
func (f *Flags) Execute(points []Point, onRecord func(Record)) (*Results, error) {
	be, err := f.ParseBackend()
	if err != nil {
		return nil, err
	}
	if f.Resume && f.JSONL == "" {
		return nil, fmt.Errorf("-resume requires -jsonl (there is no checkpoint file to resume from)")
	}
	spec := Spec{Points: points, BaseSeed: f.Seed, Backend: be, Workers: f.Workers, Par: f.Par}
	opt := Options{OnRecord: onRecord}
	if f.JSONL != "" {
		if f.Resume {
			done, validLen, err := loadCheckpointTrim(f.JSONL)
			if err != nil {
				return nil, fmt.Errorf("loading checkpoint %s: %w", f.JSONL, err)
			}
			opt.Done = done
			out, err := os.OpenFile(f.JSONL, os.O_CREATE|os.O_WRONLY, 0o644)
			if err != nil {
				return nil, err
			}
			// Drop any torn tail so a rerun record cannot coexist with
			// its half-written predecessor, then append.
			if err := out.Truncate(validLen); err != nil {
				out.Close()
				return nil, err
			}
			if _, err := out.Seek(validLen, io.SeekStart); err != nil {
				out.Close()
				return nil, err
			}
			defer out.Close()
			opt.Out = out
		} else {
			out, err := os.OpenFile(f.JSONL, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
			if err != nil {
				return nil, err
			}
			defer out.Close()
			opt.Out = out
		}
	}
	return Run(spec, opt)
}
