package sweep

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
)

// Flags bundles the command-line surface shared by the sweep-driven
// commands (cmd/experiments, cmd/fig2, cmd/popsim). The serializable knobs
// — backend, workers, par, seed, and the experiment/grid selection the
// commands bind to their own flags — live in the embedded SpecRequest, so
// the CLI and the popsimd daemon's job submissions share one source of
// truth for defaults and validation. JSONL/Resume (the local checkpoint
// file) and the trajectory instrumentation are invocation-local and stay
// here.
type Flags struct {
	SpecRequest

	JSONL  string
	Resume bool

	// Trajectory flags (single-run instrumentation; see expt.ConfigureTrajectory):
	// History streams a sampled configuration trajectory (one HistoryRecord
	// JSONL line every HistoryEvery time units) to a file; Snapshot writes a
	// versioned engine snapshot at time SnapshotAt (or at run end when <= 0);
	// Restore resumes a run from a snapshot file instead of a fresh engine.
	History      string
	HistoryEvery float64
	Snapshot     string
	SnapshotAt   float64
	Restore      string
}

// Register declares the shared flags on fs (use flag.CommandLine for a
// command's top level). defaultJSONL may be empty to disable the record
// stream unless the user asks for it.
func Register(fs *flag.FlagSet, defaultJSONL string) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Backend, "backend", "auto", "simulation backend: auto|seq|batch|dense")
	fs.IntVar(&f.Workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	fs.IntVar(&f.Par, "par", 0, "intra-trial worker target for the multiset backends (0 = auto: GOMAXPROCS above ~1.7e7 agents; any value >= 1 forces the deterministic splitter path, whose results are identical for every worker count)")
	fs.Uint64Var(&f.Seed, "seed", 1, "base random seed (per-trial seeds derive from it)")
	fs.StringVar(&f.JSONL, "jsonl", defaultJSONL, "sweep record stream / checkpoint file (empty = none)")
	fs.BoolVar(&f.Resume, "resume", false, "skip trials already recorded in -jsonl and append the rest")
	fs.StringVar(&f.History, "history", "", "stream a sampled configuration trajectory to this JSONL file (empty = none)")
	fs.Float64Var(&f.HistoryEvery, "history-dt", 1, "trajectory sampling interval Δ in parallel-time units (with -history)")
	fs.StringVar(&f.Snapshot, "snapshot", "", "write a versioned engine snapshot to this file (empty = none)")
	fs.Float64Var(&f.SnapshotAt, "snapshot-at", 0, "parallel time at which to take the -snapshot (<= 0: at run end)")
	fs.StringVar(&f.Restore, "restore", "", "resume the run from this engine snapshot file instead of a fresh engine")
	return f
}

// OpenCheckpoint prepares the record stream at path — the one definition
// of "open a sweep checkpoint for writing", shared by the CLI commands
// (Flags.Execute) and the daemon's per-job runner. With resume set it
// loads the existing records into a Done map and opens the file for
// append, truncating any torn tail first so a rerun record cannot coexist
// with its half-written predecessor; otherwise it truncates the whole
// file. An empty path returns (nil, nil, nil): no stream, no checkpoint.
// The caller owns closing out.
func OpenCheckpoint(path string, resume bool) (done map[Key]Record, out *os.File, err error) {
	if path == "" {
		return nil, nil, nil
	}
	if resume {
		done, validLen, err := loadCheckpointTrim(path)
		if err != nil {
			return nil, nil, fmt.Errorf("loading checkpoint %s: %w", path, err)
		}
		out, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, nil, err
		}
		if err := out.Truncate(validLen); err != nil {
			out.Close()
			return nil, nil, err
		}
		if _, err := out.Seek(validLen, io.SeekStart); err != nil {
			out.Close()
			return nil, nil, err
		}
		return done, out, nil
	}
	out, err = os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return nil, out, nil
}

// Execute runs points under the flags with no external cancellation; it is
// ExecuteContext(context.Background(), points, onRecord).
func (f *Flags) Execute(points []Point, onRecord func(Record)) (*Results, error) {
	return f.ExecuteContext(context.Background(), points, onRecord)
}

// ExecuteContext runs points under the flags: it binds the embedded
// request to the points, loads the JSONL checkpoint when -resume is set
// (truncating the file otherwise), streams new records, and returns the
// merged results. Canceling ctx stops the sweep between units — completed
// trials stay checkpointed, and ctx's error is returned so the command can
// tell an interrupt from a failure. onRecord (optional) observes every
// record, resumed and fresh.
func (f *Flags) ExecuteContext(ctx context.Context, points []Point, onRecord func(Record)) (*Results, error) {
	if f.Resume && f.JSONL == "" {
		return nil, fmt.Errorf("-resume requires -jsonl (there is no checkpoint file to resume from)")
	}
	spec, err := f.SpecRequest.Spec(points)
	if err != nil {
		return nil, err
	}
	opt := Options{OnRecord: onRecord}
	done, out, err := OpenCheckpoint(f.JSONL, f.Resume)
	if err != nil {
		return nil, err
	}
	if out != nil {
		defer out.Close()
		opt.Out = out
	}
	opt.Done = done
	return RunContext(ctx, spec, opt)
}
