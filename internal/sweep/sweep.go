// Package sweep is the experiment-orchestration subsystem: it turns a
// declarative sweep spec — grid points over experiment × n × trials — into
// a single global work queue executed by a bounded worker pool, streaming
// one JSONL record per completed trial to an output file that doubles as a
// checkpoint.
//
// Trials from different points interleave in the queue, so the pool stays
// saturated even when one point dominates the total cost (the paper's
// n·log²n-interaction trials at the largest n). Each trial's engine seed is
// derived centrally via pop.TrialSeed from the base seed, the point's
// experiment label and n, and the trial index — no two units of a sweep
// share a random stream, and the whole sweep is reproducible from the base
// seed alone.
//
// Restarting an interrupted sweep with the same spec and base seed skips
// every (experiment, n, trial) key already present in the output file and
// appends only the missing records; the merged file is equivalent to an
// uninterrupted run's (byte-identical after canonicalization — see
// CanonicalJSONL).
package sweep

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/popsim/popsize/internal/pop"
)

// Bool encodes a per-trial boolean outcome as a Values field (1 = true),
// the convention every renderer and aggregator assumes.
func Bool(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// TrialFunc runs one trial and returns its named result fields. It is
// called from worker goroutines, so it must not share mutable state with
// other trials, and it must be deterministic given (trial, seed) — the
// resume guarantee depends on a rerun producing the identical Values.
type TrialFunc func(trial int, seed uint64) Values

// Point is one cell of the sweep grid: an experiment label, a population
// size, and a number of independent trials of Run.
type Point struct {
	// Experiment identifies the experiment (and any sub-configuration,
	// e.g. "E17/majority/m=0.2"); it is the first component of the
	// record key and of the seed derivation.
	Experiment string
	// N is the population size, recorded per trial and mixed into the
	// seed derivation so equal trial indices at different sizes still
	// draw distinct streams.
	N int
	// Trials is the number of independent trials at this point.
	Trials int
	// Run executes one trial.
	Run TrialFunc
}

// Spec is a declarative sweep: the full grid plus the knobs shared by every
// unit of work.
type Spec struct {
	Points   []Point
	BaseSeed uint64
	// Backend is recorded in every emitted record (the engines themselves
	// are configured by the trial functions).
	Backend pop.Backend
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// Par is the intra-trial parallelism target (the -par flag), recorded
	// per record: like Backend it changes the engines' random-stream
	// consumption (legacy samplers at 0 vs the splitter path at >= 1), so
	// a checkpoint from the other class must not be silently resumed.
	// Within the splitter class the trajectory is worker-count
	// independent, so any two nonzero values are compatible.
	Par int
}

// Unit is one schedulable trial: a key plus its derived seed.
type Unit struct {
	Key
	Seed uint64
	run  TrialFunc
}

// seedLabel is the experiment string handed to pop.TrialSeed: it folds the
// population size into the label so that (experiment, n, trial) — the full
// record key — determines the seed.
func seedLabel(p Point) string { return fmt.Sprintf("%s#n=%d", p.Experiment, p.N) }

// Units expands the spec into its work queue, round-robin across points
// (trial 0 of every point, then trial 1, ...): long points do not form a
// convoy at the tail, and early records cover the whole grid.
func (s Spec) Units() []Unit {
	var units []Unit
	for tr := 0; ; tr++ {
		added := false
		for _, p := range s.Points {
			if tr >= p.Trials {
				continue
			}
			added = true
			units = append(units, Unit{
				Key:  Key{Experiment: p.Experiment, N: p.N, Trial: tr},
				Seed: pop.TrialSeed(s.BaseSeed, seedLabel(p), tr),
				run:  p.Run,
			})
		}
		if !added {
			return units
		}
	}
}

// Options configures one Run invocation (as opposed to the Spec, which
// describes the sweep itself).
type Options struct {
	// Out receives one JSONL record line per newly completed trial, in
	// completion order; nil discards the stream. Writes are serialized.
	Out io.Writer
	// Done is the resume checkpoint (from LoadCheckpoint): units whose key
	// is present are not rerun, and their records are folded into the
	// results without being rewritten to Out.
	Done map[Key]Record
	// OnRecord, if set, observes every record — reused and new — as it
	// enters the results (serialized; keep it cheap).
	OnRecord func(Record)
	// Limit stops the sweep after that many newly executed units when
	// > 0, leaving the remainder un-run (a deterministic stand-in for a
	// mid-run kill; used by the resume tests).
	Limit int
	// Acquire, when non-nil, gates every unit execution: a worker calls it
	// before running a unit and invokes the returned release afterwards.
	// It blocks until a slot is available or ctx is canceled (returning
	// ctx's error). Multi-job schedulers (the popsimd daemon) use it to
	// share one bounded slot pool fairly across concurrent RunContext
	// calls; nil means units run as soon as a worker goroutine is free.
	Acquire func(ctx context.Context) (release func(), err error)
}

// Results indexes a sweep's records by key.
type Results struct {
	byKey map[Key]Record
}

// NewResults returns an empty result set; Add folds records in.
func NewResults() *Results { return &Results{byKey: map[Key]Record{}} }

// Add inserts or replaces a record.
func (r *Results) Add(rec Record) { r.byKey[rec.Key] = rec }

// Len returns the number of records held.
func (r *Results) Len() int { return len(r.byKey) }

// Get returns the record for one trial.
func (r *Results) Get(experiment string, n, trial int) (Record, bool) {
	rec, ok := r.byKey[Key{Experiment: experiment, N: n, Trial: trial}]
	return rec, ok
}

// Sorted returns all records in canonical key order.
func (r *Results) Sorted() []Record {
	recs := make([]Record, 0, len(r.byKey))
	for _, rec := range r.byKey {
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key.Less(recs[j].Key) })
	return recs
}

// Values returns field across the trials recorded for (experiment, n), in
// trial order — the shape every table renderer consumes. Trials whose
// record lacks the field contribute NaN (renderers already treat NaN as
// "did not converge").
func (r *Results) Values(experiment string, n int, field string) []float64 {
	type tv struct {
		trial int
		v     float64
	}
	var tvs []tv
	for k, rec := range r.byKey {
		if k.Experiment != experiment || k.N != n {
			continue
		}
		v, ok := rec.Values[field]
		if !ok {
			v = math.NaN()
		}
		tvs = append(tvs, tv{k.Trial, v})
	}
	sort.Slice(tvs, func(i, j int) bool { return tvs[i].trial < tvs[j].trial })
	out := make([]float64, len(tvs))
	for i, t := range tvs {
		out[i] = t.v
	}
	return out
}

// Run executes the spec with no external cancellation; it is
// RunContext(context.Background(), spec, opt).
func Run(spec Spec, opt Options) (*Results, error) {
	return RunContext(context.Background(), spec, opt)
}

// RunContext executes the spec's work queue on a bounded worker pool,
// streaming each newly completed record to opt.Out, and returns the full
// result set (checkpointed records included). A unit present in opt.Done
// is reused only if its recorded seed and backend match the spec's; a
// mismatch means the checkpoint was produced under a different base seed,
// grid, or simulation backend and is reported as an error rather than
// silently mixing streams.
//
// Cancellation is observed between units: canceling ctx stops new units
// from starting, waits for the in-flight ones to finish (each is recorded
// and checkpointed as usual), and returns the partial results together
// with ctx's error — the output file stays a loadable checkpoint, so the
// same spec can be resumed later via Options.Done. A failed opt.Out write
// cancels the remaining queue the same way: no compute is burned on
// trials whose records can no longer be persisted.
func RunContext(ctx context.Context, spec Spec, opt Options) (*Results, error) {
	units := spec.Units()
	res := NewResults()
	var todo []Unit
	for _, u := range units {
		if rec, ok := opt.Done[u.Key]; ok {
			if rec.Seed != u.Seed {
				return nil, fmt.Errorf(
					"sweep: checkpoint record %+v has seed %#x but the spec derives %#x (different base seed or spec?)",
					u.Key, rec.Seed, u.Seed)
			}
			if rec.Backend != spec.Backend.String() {
				return nil, fmt.Errorf(
					"sweep: checkpoint record %+v was produced on backend %q but the sweep runs %q — resume with the matching -backend or start fresh",
					u.Key, rec.Backend, spec.Backend)
			}
			if (rec.Par == 0) != (spec.Par == 0) {
				return nil, fmt.Errorf(
					"sweep: checkpoint record %+v was produced with -par %d but the sweep runs -par %d — the legacy and splitter sampling paths take different trajectories; resume with a matching -par class or start fresh",
					u.Key, rec.Par, spec.Par)
			}
			res.Add(rec)
			if opt.OnRecord != nil {
				opt.OnRecord(rec)
			}
			continue
		}
		todo = append(todo, u)
	}
	if opt.Limit > 0 && len(todo) > opt.Limit {
		todo = todo[:opt.Limit]
	}

	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(todo) {
		workers = len(todo)
	}

	// run covers both cancellation sources with one signal: the caller's
	// ctx and an internal abort on checkpoint-write failure.
	run, abort := context.WithCancel(ctx)
	defer abort()
	var (
		mu       sync.Mutex // guards res, opt.Out, writeErr
		writeErr error
		queue    = make(chan Unit)
		wg       sync.WaitGroup
	)
	backend := spec.Backend.String()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range queue {
				// The queue is unbuffered, but a unit handed over in the
				// same instant the run was canceled must not start.
				if run.Err() != nil {
					return
				}
				release := func() {}
				if opt.Acquire != nil {
					rel, err := opt.Acquire(run)
					if err != nil {
						return
					}
					release = rel
				}
				start := time.Now()
				vals := u.run(u.Trial, u.Seed)
				rec := Record{
					Key:     u.Key,
					Seed:    u.Seed,
					Backend: backend,
					Par:     spec.Par,
					Values:  vals,
					WallMS:  float64(time.Since(start).Microseconds()) / 1000,
				}
				mu.Lock()
				res.Add(rec)
				if opt.Out != nil && writeErr == nil {
					line, err := rec.appendLine(nil)
					if err == nil {
						_, err = opt.Out.Write(line)
					}
					if err != nil {
						// A failed checkpoint write would silently lose
						// every further record; cancel the remaining queue
						// instead of burning the rest of the sweep's
						// compute on trials that cannot be persisted.
						writeErr = err
						abort()
					}
				}
				if opt.OnRecord != nil {
					opt.OnRecord(rec)
				}
				mu.Unlock()
				release()
			}
		}()
	}
feed:
	for _, u := range todo {
		select {
		case queue <- u:
		case <-run.Done():
			break feed
		}
	}
	close(queue)
	wg.Wait()
	if writeErr != nil {
		return res, writeErr
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}
