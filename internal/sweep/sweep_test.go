package sweep

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/popsim/popsize/internal/pop"
)

// testSpec builds a small two-experiment grid whose trial function is a
// pure function of (n, trial, seed) — deterministic, like every real
// experiment trial, but cheap.
func testSpec(baseSeed uint64) Spec {
	run := func(n int) TrialFunc {
		return func(tr int, seed uint64) Values {
			r := rand.New(rand.NewPCG(seed, 17))
			v := Values{
				"x":    r.Float64() * float64(n),
				"step": float64(tr),
			}
			if tr%5 == 4 { // a sprinkling of "did not converge" trials
				v["x"] = math.NaN()
			}
			return v
		}
	}
	var points []Point
	for _, n := range []int{64, 256} {
		points = append(points,
			Point{Experiment: "EA", N: n, Trials: 7, Run: run(n)},
			Point{Experiment: "EB", N: n, Trials: 3, Run: run(n)})
	}
	return Spec{Points: points, BaseSeed: baseSeed, Workers: 4}
}

func TestUnitsInterleaveAndSeedsDistinct(t *testing.T) {
	spec := testSpec(1)
	units := spec.Units()
	if want := 2 * (7 + 3); len(units) != want {
		t.Fatalf("units = %d, want %d", len(units), want)
	}
	// Round-robin: the first four units are trial 0 of each point.
	for i := 0; i < 4; i++ {
		if units[i].Trial != 0 {
			t.Errorf("unit %d is trial %d, want 0 (round-robin)", i, units[i].Trial)
		}
	}
	seen := map[uint64]Key{}
	for _, u := range units {
		if prev, ok := seen[u.Seed]; ok {
			t.Errorf("units %+v and %+v share seed %#x", prev, u.Key, u.Seed)
		}
		seen[u.Seed] = u.Key
		if u.Seed != pop.TrialSeed(1, fmt.Sprintf("%s#n=%d", u.Experiment, u.N), u.Trial) {
			t.Errorf("unit %+v seed not derived via pop.TrialSeed", u.Key)
		}
	}
}

func TestRunCollectsAllRecords(t *testing.T) {
	spec := testSpec(3)
	var buf bytes.Buffer
	var streamed atomic.Int64
	var mu sync.Mutex
	res, err := Run(spec, Options{Out: &syncWriter{w: &buf, mu: &mu}, OnRecord: func(Record) { streamed.Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 20 || streamed.Load() != 20 {
		t.Fatalf("records = %d, streamed = %d, want 20", res.Len(), streamed.Load())
	}
	recs, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20 {
		t.Fatalf("JSONL lines = %d, want 20", len(recs))
	}
	// Round-trip fidelity, including the NaN encoding.
	for _, rec := range recs {
		got, ok := res.Get(rec.Experiment, rec.N, rec.Trial)
		if !ok {
			t.Fatalf("record %+v missing from results", rec.Key)
		}
		for k, v := range got.Values {
			if r := rec.Values[k]; r != v && !(math.IsNaN(r) && math.IsNaN(v)) {
				t.Errorf("%+v field %q: file %v, memory %v", rec.Key, k, r, v)
			}
		}
	}
	// Values() returns trial-ordered fields.
	xs := res.Values("EA", 64, "step")
	if len(xs) != 7 {
		t.Fatalf("Values len = %d, want 7", len(xs))
	}
	for i, x := range xs {
		if x != float64(i) {
			t.Errorf("Values[%d] = %v, want %d (trial order)", i, x, i)
		}
	}
}

type syncWriter struct {
	w  *bytes.Buffer
	mu *sync.Mutex
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestResumeDeterminism is the subsystem's acceptance test: a sweep killed
// mid-run (Options.Limit) and resumed with the same spec and base seed
// yields a merged JSONL whose canonical form (key-sorted, wall time masked
// — the one nondeterministic field) is byte-identical to an uninterrupted
// run's.
func TestResumeDeterminism(t *testing.T) {
	dir := t.TempDir()
	unbroken := filepath.Join(dir, "unbroken.jsonl")
	broken := filepath.Join(dir, "broken.jsonl")

	runFlags := func(path string, resume bool, limit int) {
		t.Helper()
		spec := testSpec(9)
		opt := Options{Limit: limit}
		if resume {
			done, validLen, err := loadCheckpointTrim(path)
			if err != nil {
				t.Fatal(err)
			}
			opt.Done = done
			f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if err := f.Truncate(validLen); err != nil {
				t.Fatal(err)
			}
			if _, err := f.Seek(validLen, 0); err != nil {
				t.Fatal(err)
			}
			opt.Out = f
		} else {
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			opt.Out = f
		}
		if _, err := Run(spec, opt); err != nil {
			t.Fatal(err)
		}
	}

	runFlags(unbroken, false, 0)
	runFlags(broken, false, 7) // "killed" after 7 trials
	// Simulate a torn final line from the kill.
	data, err := os.ReadFile(broken)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(broken, append(data, []byte(`{"experiment":"EA","n":64,`)...), 0o644); err != nil {
		t.Fatal(err)
	}
	runFlags(broken, true, 0) // resume to completion

	canon := func(path string) []byte {
		t.Helper()
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		recs, err := ReadRecords(f)
		if err != nil {
			t.Fatal(err)
		}
		c, err := CanonicalJSONL(recs)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := canon(unbroken), canon(broken)
	if !bytes.Equal(a, b) {
		t.Errorf("resumed sweep diverged from uninterrupted run:\n--- uninterrupted ---\n%s--- resumed ---\n%s", a, b)
	}
	if len(bytes.Split(bytes.TrimSpace(a), []byte("\n"))) != 20 {
		t.Errorf("canonical stream has wrong record count:\n%s", a)
	}
}

// TestResumeRejectsForeignCheckpoint: resuming under a different base seed
// must fail loudly instead of mixing random streams.
func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	if _, err := Run(testSpec(1), Options{Out: &syncWriter{w: &buf, mu: &mu}}); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	done := map[Key]Record{}
	for _, r := range recs {
		done[r.Key] = r
	}
	if _, err := Run(testSpec(2), Options{Done: done}); err == nil {
		t.Error("checkpoint from base seed 1 accepted by a base-seed-2 sweep")
	}
	// Same base seed but a different simulation backend must also be
	// rejected: the records would describe a different engine's runs.
	other := testSpec(1)
	other.Backend = pop.Batched
	if _, err := Run(other, Options{Done: done}); err == nil {
		t.Error("auto-backend checkpoint accepted by a batch-backend sweep")
	}
	// A -par 0 checkpoint resumed by a -par >= 1 sweep (or vice versa)
	// must be rejected: the legacy and splitter sampling paths take
	// different trajectories for the same seed.
	parred := testSpec(1)
	parred.Par = 4
	if _, err := Run(parred, Options{Done: done}); err == nil {
		t.Error("-par 0 checkpoint accepted by a -par 4 sweep")
	}
	// Within the splitter class the trajectory is worker-count
	// independent, so two nonzero -par values are compatible.
	src := testSpec(1)
	src.Par = 2
	res, err := Run(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	done2 := map[Key]Record{}
	for _, r := range res.Sorted() {
		done2[r.Key] = r
	}
	if _, err := Run(parred, Options{Done: done2}); err != nil {
		t.Errorf("-par 2 checkpoint rejected by a -par 4 sweep: %v", err)
	}
}

func TestLoadCheckpointTolerance(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cp.jsonl")

	if done, err := LoadCheckpoint(filepath.Join(dir, "missing.jsonl")); err != nil || len(done) != 0 {
		t.Errorf("missing file: done=%v err=%v, want empty, nil", done, err)
	}

	content := `{"experiment":"E1","n":10,"trial":0,"seed":5,"backend":"auto","values":{"x":1.5,"y":"NaN"},"wall_ms":1}` + "\n" +
		"\n" +
		`{"experiment":"E1","n":10,"trial":1,"seed":6,"backend":"auto","values":{"x":2},"wall_ms":1}` + "\n" +
		`{"experiment":"E1","n":10,"tr` // torn tail
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	done, validLen, err := loadCheckpointTrim(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 {
		t.Fatalf("done = %d records, want 2 (torn tail dropped)", len(done))
	}
	if !math.IsNaN(done[Key{"E1", 10, 0}].Values["y"]) {
		t.Error("NaN value did not round-trip through the checkpoint")
	}
	if want := int64(len(content) - len(`{"experiment":"E1","n":10,"tr`)); validLen != want {
		t.Errorf("validLen = %d, want %d", validLen, want)
	}
}

// TestTornTailReaderCheckpointAgreement is the regression test for the
// reader/checkpoint divergence: a file whose final line is complete JSON
// but lacks its newline (the writer died between the record and the '\n').
// ReadRecords used to accept that line as a record while LoadCheckpoint
// classified it as torn and scheduled a rerun — so an analysis pass and a
// resume disagreed about which trials exist. Both must now drop it, and
// ReadRecords must say why (ErrTornTail).
func TestTornTailReaderCheckpointAgreement(t *testing.T) {
	line0 := `{"experiment":"E1","n":10,"trial":0,"seed":5,"backend":"auto","values":{"x":1},"wall_ms":1}`
	line1 := `{"experiment":"E1","n":10,"trial":1,"seed":6,"backend":"auto","values":{"x":2},"wall_ms":1}`
	content := line0 + "\n" + line1 // valid JSON, no trailing newline

	recs, err := ReadRecords(strings.NewReader(content))
	if !errors.Is(err, ErrTornTail) {
		t.Fatalf("ReadRecords err = %v, want ErrTornTail", err)
	}
	if len(recs) != 1 || recs[0].Trial != 0 {
		t.Fatalf("ReadRecords = %d records (first trial %d), want only the terminated line",
			len(recs), recs[0].Trial)
	}

	path := filepath.Join(t.TempDir(), "cp.jsonl")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	done, validLen, err := loadCheckpointTrim(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != len(recs) {
		t.Fatalf("checkpoint has %d records, reader %d — the divergence is back", len(done), len(recs))
	}
	if _, ok := done[Key{"E1", 10, 1}]; ok {
		t.Error("checkpoint kept the unterminated trial")
	}
	if want := int64(len(line0) + 1); validLen != want {
		t.Errorf("validLen = %d, want %d", validLen, want)
	}

	// A properly terminated file reads cleanly and completely.
	recs, err = ReadRecords(strings.NewReader(content + "\n"))
	if err != nil || len(recs) != 2 {
		t.Fatalf("terminated file: %d records, err %v, want 2, nil", len(recs), err)
	}
}

func TestAggregate(t *testing.T) {
	recs := []Record{
		{Key: Key{"E1", 100, 0}, Values: Values{"err": 1}},
		{Key: Key{"E1", 100, 1}, Values: Values{"err": 3}},
		{Key: Key{"E1", 100, 2}, Values: Values{"err": math.NaN()}},
		{Key: Key{"E2", 100, 0}, Values: Values{"t": 7}},
	}
	aggs := Aggregate(recs, 200, 1)
	a := aggs[Group{"E1", 100, "err"}]
	if a.Trials != 2 || a.Dropped != 1 {
		t.Errorf("E1 agg trials=%d dropped=%d, want 2, 1", a.Trials, a.Dropped)
	}
	if a.Mean != 2 || math.Abs(a.Std-math.Sqrt2) > 1e-12 {
		t.Errorf("E1 agg mean=%v std=%v, want 2, sqrt(2)", a.Mean, a.Std)
	}
	if a.CILo < 1 || a.CIHi > 3 || a.CILo > a.CIHi {
		t.Errorf("bootstrap CI [%v, %v] outside sample range [1, 3]", a.CILo, a.CIHi)
	}
	// Deterministic given the same seed.
	if b := Aggregate(recs, 200, 1)[Group{"E1", 100, "err"}]; b != a {
		t.Errorf("Aggregate not deterministic: %+v vs %+v", a, b)
	}
	tbl := SummaryTable(recs, 200, 1)
	if len(tbl.Rows) != 2 {
		t.Errorf("summary rows = %d, want 2", len(tbl.Rows))
	}
	if !strings.Contains(tbl.Markdown(), "E1") {
		t.Error("summary markdown missing experiment id")
	}
}

// TestAggregateDropsInf is the regression test for the Inf-poisoning bug:
// Aggregate documented Trials as "finite contributions" but dropped only
// NaN, so one +Inf (e.g. a ratio field with a zero denominator) poisoned
// Mean/Std and both bootstrap CI bounds for the whole group. ±Inf must be
// dropped alongside NaN.
func TestAggregateDropsInf(t *testing.T) {
	recs := []Record{
		{Key: Key{"E1", 100, 0}, Values: Values{"ratio": 1}},
		{Key: Key{"E1", 100, 1}, Values: Values{"ratio": 2}},
		{Key: Key{"E1", 100, 2}, Values: Values{"ratio": math.Inf(1)}},
		{Key: Key{"E2", 100, 0}, Values: Values{"ratio": math.Inf(-1)}},
	}
	a := Aggregate(recs, 200, 1)[Group{"E1", 100, "ratio"}]
	if a.Trials != 2 || a.Dropped != 1 {
		t.Errorf("trials=%d dropped=%d, want 2, 1", a.Trials, a.Dropped)
	}
	if a.Mean != 1.5 {
		t.Errorf("mean = %v, want 1.5 (+Inf must not poison the group)", a.Mean)
	}
	if math.IsInf(a.Std, 0) || math.IsNaN(a.Std) {
		t.Errorf("std = %v, want finite", a.Std)
	}
	if math.IsInf(a.CILo, 0) || math.IsInf(a.CIHi, 0) ||
		a.CILo < 1 || a.CIHi > 2 || a.CILo > a.CIHi {
		t.Errorf("bootstrap CI [%v, %v], want finite within [1, 2]", a.CILo, a.CIHi)
	}
	// A group with only non-finite values aggregates to NaN moments, not Inf.
	b := Aggregate(recs, 200, 1)[Group{"E2", 100, "ratio"}]
	if b.Trials != 0 || b.Dropped != 1 || !math.IsNaN(b.Mean) {
		t.Errorf("all-Inf group: %+v, want 0 trials, 1 dropped, NaN mean", b)
	}
}

// TestAggregateSingleTrialCI is the regression test for the degenerate
// bootstrap interval: with exactly one finite contribution every resample
// is that one point, so the old code reported CILo == CIHi == Mean — a
// zero-width "95% interval" that reads as perfect certainty from a single
// trial. Both bounds must be NaN below two finite trials, while the mean
// itself (one point does determine a mean) stays real.
func TestAggregateSingleTrialCI(t *testing.T) {
	recs := []Record{
		{Key: Key{"E1", 100, 0}, Values: Values{"t": 7}},
		{Key: Key{"E1", 100, 1}, Values: Values{"t": math.NaN()}},
	}
	a := Aggregate(recs, 200, 1)[Group{"E1", 100, "t"}]
	if a.Trials != 1 || a.Dropped != 1 {
		t.Fatalf("trials=%d dropped=%d, want 1, 1", a.Trials, a.Dropped)
	}
	if a.Mean != 7 || a.Std != 0 {
		t.Errorf("mean=%v std=%v, want 7, 0", a.Mean, a.Std)
	}
	if !math.IsNaN(a.CILo) || !math.IsNaN(a.CIHi) {
		t.Errorf("CI = [%v, %v], want NaN bounds (one trial has no resampling spread)", a.CILo, a.CIHi)
	}
	// Two finite trials are the minimum for a real interval.
	recs = append(recs, Record{Key: Key{"E1", 100, 2}, Values: Values{"t": 9}})
	a = Aggregate(recs, 200, 1)[Group{"E1", 100, "t"}]
	if math.IsNaN(a.CILo) || math.IsNaN(a.CIHi) || a.CILo > a.CIHi {
		t.Errorf("two-trial CI = [%v, %v], want finite ordered bounds", a.CILo, a.CIHi)
	}
}
