package sweep

import (
	"bytes"
	"errors"
	"testing"

	"github.com/popsim/popsize/internal/pop"
)

// TestHistoryRoundTrip: WriteHistory/ReadHistory preserve a sampled
// trajectory exactly, the encoding is deterministic, and a torn tail is
// reported without losing the intact prefix — the same reader contract as
// the sweep record stream.
func TestHistoryRoundTrip(t *testing.T) {
	samples := []pop.HistorySample[int]{
		{Time: 0, N: 100, Interactions: 0, Counts: map[int]int{0: 100}},
		{Time: 1.5, N: 100, Interactions: 150, Counts: map[int]int{0: 40, 7: 60}},
		{Time: 2.25, N: 130, Interactions: 280, Counts: map[int]int{7: 130}},
	}
	recs := HistoryRecords(samples)
	if len(recs) != len(samples) {
		t.Fatalf("HistoryRecords: %d records from %d samples", len(recs), len(samples))
	}
	if got := recs[1].Config["7"]; got != 60 {
		t.Errorf("state 7 count = %v, want 60", got)
	}
	var buf bytes.Buffer
	if err := WriteHistory(&buf, recs); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := WriteHistory(&buf2, recs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("WriteHistory is not deterministic")
	}
	back, err := ReadHistory(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadHistory: %v", err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip lost records: %d -> %d", len(recs), len(back))
	}
	for i := range recs {
		a, b := recs[i], back[i]
		if a.Time != b.Time || a.N != b.N || a.Interactions != b.Interactions ||
			len(a.Config) != len(b.Config) {
			t.Fatalf("record %d diverged: %+v vs %+v", i, a, b)
		}
		for k, v := range a.Config {
			if b.Config[k] != v {
				t.Fatalf("record %d state %q: %v vs %v", i, k, v, b.Config[k])
			}
		}
	}
	states, counts := back[1].SortedConfig()
	if len(states) != 2 || states[0] != "0" || states[1] != "7" || counts[1] != 60 {
		t.Errorf("SortedConfig = %v/%v, want sorted [0 7]/[40 60]", states, counts)
	}
	// A torn tail keeps the intact prefix and reports ErrTornTail.
	torn := buf.Bytes()[:buf.Len()-1]
	back, err = ReadHistory(bytes.NewReader(torn))
	if !errors.Is(err, ErrTornTail) {
		t.Fatalf("torn history: err = %v, want ErrTornTail", err)
	}
	if len(back) != len(recs)-1 {
		t.Fatalf("torn history kept %d records, want %d", len(back), len(recs)-1)
	}
}
