package sweep

import (
	"math"
	"math/rand/v2"
	"sort"

	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/stats"
)

// Group identifies one aggregated cell of a sweep: every trial of one
// experiment at one population size contributes its value of one field.
type Group struct {
	Experiment string
	N          int
	Field      string
}

// Agg summarizes one group: trial counts, the first two moments, and a
// bootstrap percentile confidence interval for the mean.
type Agg struct {
	// Trials is the number of finite contributions; non-finite values —
	// NaN (trials that did not converge) and ±Inf (e.g. a ratio field
	// with a zero denominator) — are counted in Dropped instead, so a
	// single degenerate trial cannot poison a group's moments and CI.
	Trials  int
	Dropped int
	Mean    float64
	Std     float64
	// CILo and CIHi bound the mean's 95% bootstrap percentile interval
	// (resampled means, 2.5th–97.5th percentile). With fewer than two
	// finite contributions a resampled mean has no spread — every
	// resample of one point is that point — so the "interval" would
	// degenerate to CILo == CIHi == Mean, a zero-width bound that reads
	// as spurious certainty; both are NaN instead.
	CILo, CIHi float64
}

// BootstrapResamples is the default resample count for Aggregate's
// confidence intervals.
const BootstrapResamples = 1000

// Aggregate reduces a record stream to per-(experiment, n, field) summary
// statistics. The bootstrap is seeded deterministically per group from
// seed, so the summary of a JSONL file is itself reproducible.
func Aggregate(recs []Record, resamples int, seed uint64) map[Group]Agg {
	if resamples <= 0 {
		resamples = BootstrapResamples
	}
	samples := map[Group][]float64{}
	for _, rec := range recs {
		for field, v := range rec.Values {
			g := Group{Experiment: rec.Experiment, N: rec.N, Field: field}
			samples[g] = append(samples[g], v)
		}
	}
	out := make(map[Group]Agg, len(samples))
	for g, xs := range samples {
		finite := xs[:0:0]
		dropped := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				dropped++
				continue
			}
			finite = append(finite, x)
		}
		a := Agg{Trials: len(finite), Dropped: dropped}
		if len(finite) > 0 {
			s := stats.Summarize(finite)
			a.Mean, a.Std = s.Mean, s.Std
			if len(finite) >= 2 {
				a.CILo, a.CIHi = bootstrapCI(finite, resamples,
					pop.TrialSeed(seed, "bootstrap/"+g.Experiment+"/"+g.Field, g.N))
			} else {
				a.CILo, a.CIHi = math.NaN(), math.NaN()
			}
		} else {
			a.Mean, a.Std = math.NaN(), math.NaN()
			a.CILo, a.CIHi = math.NaN(), math.NaN()
		}
		out[g] = a
	}
	return out
}

// bootstrapCI returns the 95% percentile interval of the resampled mean.
func bootstrapCI(xs []float64, resamples int, seed uint64) (lo, hi float64) {
	r := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	means := make([]float64, resamples)
	for i := range means {
		sum := 0.0
		for j := 0; j < len(xs); j++ {
			sum += xs[r.IntN(len(xs))]
		}
		means[i] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	return stats.Quantile(means, 0.025), stats.Quantile(means, 0.975)
}

// SummaryTable renders Aggregate's output as a table with one row per
// (experiment, n, field), in canonical order — the machine-readable JSONL's
// human-readable digest.
func SummaryTable(recs []Record, resamples int, seed uint64) stats.Table {
	aggs := Aggregate(recs, resamples, seed)
	groups := make([]Group, 0, len(aggs))
	for g := range aggs {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool {
		a, b := groups[i], groups[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.N != b.N {
			return a.N < b.N
		}
		return a.Field < b.Field
	})
	t := stats.Table{
		Title:   "Sweep summary",
		Note:    "Per (experiment, n, field): mean ± stddev over finite trials with a 95% bootstrap CI; dropped = non-finite (NaN/±Inf) trials; CI is NaN below 2 finite trials (a single point has no resampling spread).",
		Columns: []string{"experiment", "n", "field", "trials", "dropped", "mean", "stddev", "ci lo", "ci hi"},
	}
	for _, g := range groups {
		a := aggs[g]
		t.AddRow(g.Experiment, stats.I(g.N), g.Field, stats.I(a.Trials), stats.I(a.Dropped),
			stats.F(a.Mean), stats.F(a.Std), stats.F(a.CILo), stats.F(a.CIHi))
	}
	return t
}
