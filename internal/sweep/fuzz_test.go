package sweep

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// FuzzValuesRoundTrip: Values survives marshal → unmarshal exactly for
// arbitrary field names and float64 values, including the non-finite
// encodings (NaN/±Inf as strings — encoding/json rejects them as numbers)
// that carry "trial did not converge" markers through sweep JSONL files.
func FuzzValuesRoundTrip(f *testing.F) {
	f.Add("err", 1.5, "t", math.Inf(1))
	f.Add("x", math.NaN(), "", math.Inf(-1))
	f.Add("a", 0.0, "a", -0.0)
	f.Add("big", math.MaxFloat64, "tiny", math.SmallestNonzeroFloat64)
	f.Fuzz(func(t *testing.T, k1 string, v1 float64, k2 string, v2 float64) {
		// encoding/json rewrites invalid UTF-8 in strings to U+FFFD; real
		// field names are ASCII identifiers, so normalize rather than
		// report that stdlib behavior as a round-trip failure.
		k1, k2 = strings.ToValidUTF8(k1, "?"), strings.ToValidUTF8(k2, "?")
		in := Values{k1: v1, k2: v2}
		blob, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("marshal %v: %v", in, err)
		}
		var out Values
		if err := json.Unmarshal(blob, &out); err != nil {
			t.Fatalf("unmarshal %s: %v", blob, err)
		}
		if len(out) != len(in) {
			t.Fatalf("round trip changed field count: %v -> %v", in, out)
		}
		for k, v := range in {
			got, ok := out[k]
			if !ok {
				t.Fatalf("field %q lost in round trip: %s", k, blob)
			}
			if math.IsNaN(v) {
				if !math.IsNaN(got) {
					t.Fatalf("field %q: NaN became %v", k, got)
				}
				continue
			}
			// Exact float64 identity, including -0 vs +0 and ±Inf.
			if math.Float64bits(got) != math.Float64bits(v) {
				t.Fatalf("field %q: %v (bits %#x) became %v (bits %#x)",
					k, v, math.Float64bits(v), got, math.Float64bits(got))
			}
		}
		// Marshaling is canonical: a second round trip is byte-identical.
		blob2, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		if string(blob) != string(blob2) {
			t.Fatalf("marshal not canonical: %s then %s", blob, blob2)
		}
	})
}
