package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestSpecRequestRoundTrip checks the JSON round trip the flag surface and
// the daemon share: encode → decode reproduces the request exactly, and
// decoding applies the documented defaults.
func TestSpecRequestRoundTrip(t *testing.T) {
	req := SpecRequest{
		Experiments: []string{"F2", "E17/majority/m=0.2"},
		Ns:          []int{100, 1000},
		Trials:      7,
		Quick:       true,
		Backend:     "dense",
		Workers:     3,
		Par:         2,
		Seed:        42,
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSpecRequest(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", req) {
		t.Fatalf("round trip changed the request:\n%+v\nvs\n%+v", got, req)
	}

	// Defaults: an empty body is a valid whole-suite submission with
	// backend auto and seed 1 — the flag defaults exactly.
	got, err = DecodeSpecRequest(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.Backend != "auto" || got.Seed != 1 {
		t.Fatalf("decoded defaults %+v, want backend auto and seed 1", got)
	}
}

// TestSpecRequestValidate exercises every rejection the request can make
// without a resolver.
func TestSpecRequestValidate(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{"unknown field", `{"trails": 3}`, "unknown field"},
		{"two documents", `{} {}`, "more than one JSON document"},
		{"bad backend", `{"backend":"gpu"}`, "backend"},
		{"negative trials", `{"trials":-1}`, "trials >= 0"},
		{"negative workers", `{"workers":-2}`, "workers >= 0"},
		{"negative par", `{"par":-1}`, "par >= 0"},
		{"tiny n", `{"ns":[1]}`, "at least 2 agents"},
		{"duplicate n", `{"ns":[4,4]}`, "repeats"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeSpecRequest(strings.NewReader(tc.body))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("DecodeSpecRequest(%s) = %v, want error mentioning %q", tc.body, err, tc.want)
			}
		})
	}
}

// TestKeyIDRoundTrip checks the wire id codec, including experiment labels
// carrying the separator character.
func TestKeyIDRoundTrip(t *testing.T) {
	keys := []Key{
		{Experiment: "F2", N: 100, Trial: 0},
		{Experiment: "E17/majority/m=0.2", N: 1000000, Trial: 17},
		{Experiment: "weird|label", N: 2, Trial: 3},
	}
	for _, k := range keys {
		got, err := ParseKeyID(k.ID())
		if err != nil {
			t.Fatalf("ParseKeyID(%q): %v", k.ID(), err)
		}
		if got != k {
			t.Fatalf("ParseKeyID(%q) = %+v, want %+v", k.ID(), got, k)
		}
	}
	for _, bad := range []string{"", "noseparators", "a|b|c", "a|1|x", "a|1"} {
		if _, err := ParseKeyID(bad); err == nil {
			t.Fatalf("ParseKeyID(%q) accepted a malformed id", bad)
		}
	}
}

// gateSpec builds a small spec used by the cancellation tests, so
// cancellation tests can control exactly how far the sweep gets.
func gateSpec(trials int, run TrialFunc) Spec {
	return Spec{
		Points:   []Point{{Experiment: "T", N: 4, Trials: trials, Run: run}},
		BaseSeed: 1,
		Workers:  2,
	}
}

// TestRunContextCancel checks the cancellation contract: canceling mid-run
// stops new units promptly, returns ctx's error with the partial results,
// and leaves the output a loadable checkpoint that a second RunContext
// completes.
func TestRunContextCancel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	out, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	res, err := RunContext(ctx, gateSpec(50, func(trial int, seed uint64) Values {
		if started.Add(1) >= 4 {
			cancel()
		}
		time.Sleep(2 * time.Millisecond)
		return Values{"x": float64(trial)}
	}), Options{Out: out})
	out.Close()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run returned %v, want context.Canceled", err)
	}
	if res.Len() == 0 || res.Len() >= 50 {
		t.Fatalf("canceled run recorded %d units, want a strict partial", res.Len())
	}

	done, lerr := LoadCheckpoint(path)
	if lerr != nil {
		t.Fatalf("checkpoint after cancel not loadable: %v", lerr)
	}
	if len(done) != res.Len() {
		t.Fatalf("checkpoint holds %d records, results hold %d", len(done), res.Len())
	}
	out, err = os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := RunContext(context.Background(), gateSpec(50, func(trial int, seed uint64) Values {
		return Values{"x": float64(trial)}
	}), Options{Out: out, Done: done})
	out.Close()
	if err != nil || res2.Len() != 50 {
		t.Fatalf("resume after cancel: %d records, err %v", res2.Len(), err)
	}
}

// failingWriter accepts a few writes, then fails forever.
type failingWriter struct {
	n atomic.Int32
}

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.n.Add(1) > 2 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

// TestRunWriteFailureAborts checks that a failed checkpoint write cancels
// the remaining queue instead of burning compute on unpersistable trials.
func TestRunWriteFailureAborts(t *testing.T) {
	var ran atomic.Int32
	_, err := Run(gateSpec(200, func(trial int, seed uint64) Values {
		ran.Add(1)
		time.Sleep(time.Millisecond)
		return Values{"x": 1}
	}), Options{Out: &failingWriter{}})
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("write failure surfaced as %v", err)
	}
	if n := ran.Load(); n >= 200 {
		t.Fatalf("all %d units ran despite the dead writer — the queue was not canceled", n)
	}
}

// TestAcquireGatesUnits checks the Options.Acquire hook: every executed
// unit holds a slot between acquire and release, and an acquire error
// stops the worker.
func TestAcquireGatesUnits(t *testing.T) {
	var held, maxHeld, acquires atomic.Int32
	res, err := Run(gateSpec(20, func(trial int, seed uint64) Values {
		if h := held.Load(); h > maxHeld.Load() {
			maxHeld.Store(h)
		}
		return Values{"x": 1}
	}), Options{
		Acquire: func(ctx context.Context) (func(), error) {
			acquires.Add(1)
			held.Add(1)
			return func() { held.Add(-1) }, nil
		},
	})
	if err != nil || res.Len() != 20 {
		t.Fatalf("gated run: %d records, err %v", res.Len(), err)
	}
	if acquires.Load() != 20 {
		t.Fatalf("%d acquires for 20 units", acquires.Load())
	}
	if held.Load() != 0 {
		t.Fatalf("%d slots still held after the run", held.Load())
	}
}
