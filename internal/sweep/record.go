package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Key identifies one trial of one experiment grid point: the resume unit.
// A sweep checkpoint is keyed by (experiment, n, trial); restarting a sweep
// skips every key already present in the output file.
type Key struct {
	Experiment string `json:"experiment"`
	N          int    `json:"n"`
	Trial      int    `json:"trial"`
}

// Less orders keys by (experiment, n, trial) — the canonical order used
// when comparing a resumed sweep against an uninterrupted one.
func (k Key) Less(o Key) bool {
	if k.Experiment != o.Experiment {
		return k.Experiment < o.Experiment
	}
	if k.N != o.N {
		return k.N < o.N
	}
	return k.Trial < o.Trial
}

// ID renders the key as its wire identifier, "experiment|n|trial" — the
// event id of a record in the service's stream, which a client hands back
// (Last-Event-ID header or ?after= query) to resume from where it left
// off. Experiment labels use '/', '=', ',' and '.' freely; ParseKeyID
// splits on the *last* two '|' so even a '|' inside a label would survive.
func (k Key) ID() string {
	return fmt.Sprintf("%s|%d|%d", k.Experiment, k.N, k.Trial)
}

// ParseKeyID is the inverse of Key.ID.
func ParseKeyID(s string) (Key, error) {
	last := strings.LastIndexByte(s, '|')
	if last < 0 {
		return Key{}, fmt.Errorf("sweep: record id %q is not experiment|n|trial", s)
	}
	mid := strings.LastIndexByte(s[:last], '|')
	if mid < 0 {
		return Key{}, fmt.Errorf("sweep: record id %q is not experiment|n|trial", s)
	}
	var k Key
	var err error
	k.Experiment = s[:mid]
	if k.N, err = strconv.Atoi(s[mid+1 : last]); err != nil {
		return Key{}, fmt.Errorf("sweep: record id %q has non-numeric n: %w", s, err)
	}
	if k.Trial, err = strconv.Atoi(s[last+1:]); err != nil {
		return Key{}, fmt.Errorf("sweep: record id %q has non-numeric trial: %w", s, err)
	}
	return k, nil
}

// Record is one completed trial: one line of the sweep's JSONL output.
// Every field except WallMS is a pure function of the spec and the base
// seed, so a key-sorted record stream is reproducible byte-for-byte across
// interrupted and uninterrupted runs once wall time is masked (see
// CanonicalJSONL).
type Record struct {
	Key
	Seed    uint64 `json:"seed"`
	Backend string `json:"backend"`
	// Par is the sweep's -par flag value. 0 (omitted) means the engines'
	// legacy serial samplers below the auto threshold; any value >= 1
	// selects the node-seeded splitter path, whose trajectory is identical
	// for every worker count — so resume compatibility is by class (zero
	// vs nonzero), not by exact value.
	Par    int     `json:"par,omitempty"`
	Values Values  `json:"values"`
	WallMS float64 `json:"wall_ms"`
}

// Values carries a trial's named result fields. Non-finite values survive
// the JSONL round trip (encoding/json rejects them as numbers): NaN marks
// "trial did not converge" throughout the experiment suite, so it is
// encoded as the string "NaN" and restored on load.
type Values map[string]float64

// MarshalJSON encodes values with sorted keys (for stable output) and
// non-finite floats as strings.
func (v Values) MarshalJSON() ([]byte, error) {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		b.Write(kb)
		b.WriteByte(':')
		x := v[k]
		switch {
		case math.IsNaN(x):
			b.WriteString(`"NaN"`)
		case math.IsInf(x, 1):
			b.WriteString(`"+Inf"`)
		case math.IsInf(x, -1):
			b.WriteString(`"-Inf"`)
		default:
			xb, err := json.Marshal(x)
			if err != nil {
				return nil, err
			}
			b.Write(xb)
		}
	}
	b.WriteByte('}')
	return []byte(b.String()), nil
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (v *Values) UnmarshalJSON(data []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	out := make(Values, len(raw))
	for k, r := range raw {
		var x float64
		if err := json.Unmarshal(r, &x); err == nil {
			out[k] = x
			continue
		}
		var s string
		if err := json.Unmarshal(r, &s); err != nil {
			return fmt.Errorf("sweep: value %q is neither number nor string: %s", k, r)
		}
		switch s {
		case "NaN":
			out[k] = math.NaN()
		case "+Inf":
			out[k] = math.Inf(1)
		case "-Inf":
			out[k] = math.Inf(-1)
		default:
			return fmt.Errorf("sweep: value %q has unknown string form %q", k, s)
		}
	}
	*v = out
	return nil
}

// appendLine marshals r as one JSONL line (including the trailing newline).
func (r Record) appendLine(b []byte) ([]byte, error) {
	line, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	return append(append(b, line...), '\n'), nil
}

// JSONL renders the record as its one checkpoint/stream line, trailing
// newline included — the exact bytes Run writes to Options.Out, which is
// also the service's wire format (GET /v1/jobs/{id}/records streams these
// lines verbatim).
func (r Record) JSONL() ([]byte, error) { return r.appendLine(nil) }

// ErrTornTail reports that a JSONL stream ends mid-line: the writer was
// killed between writing a record and its newline. The records before the
// tail are valid; the tail itself is not a record — even when it happens
// to parse as JSON — because the resume logic (LoadCheckpoint) will rerun
// and rewrite that trial.
var ErrTornTail = errors.New("sweep: torn final line (missing trailing newline)")

// terminatedLines walks the newline-terminated prefix of a JSONL buffer —
// the single definition of "which bytes are records" shared by every
// reader. It calls fn once per non-blank line; on an fn error the walk
// stops with valid still at the offset just past the previous good line,
// so that line reruns along with everything after it. torn reports an
// unterminated non-blank tail.
//
// ReadRecords and LoadCheckpoint previously disagreed here: the reader
// accepted a valid-JSON unterminated final line while the checkpoint
// classified it as torn, so an analysis pass could count a trial that a
// subsequent resume would rerun — and, with a fresh wall time or a
// re-randomized field, duplicate. Both now consume exactly the
// newline-terminated prefix.
func terminatedLines(data []byte, fn func(line []byte) error) (valid int64, torn bool, err error) {
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			torn = len(bytes.TrimSpace(data[off:])) != 0
			break
		}
		line := bytes.TrimSpace(data[off : off+nl])
		off += nl + 1
		if len(line) != 0 {
			if err := fn(line); err != nil {
				return valid, false, err
			}
		}
		valid = int64(off)
	}
	return valid, torn, nil
}

// ReadRecords parses a JSONL record stream, tolerating blank lines. Only
// newline-terminated lines count as records; a truncated (interrupted
// mid-write) final line is reported as ErrTornTail — with the valid
// records still returned — so callers can decide whether to proceed.
func ReadRecords(r io.Reader) ([]Record, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var recs []Record
	_, torn, err := terminatedLines(data, func(line []byte) error {
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("sweep: corrupt record %q: %w", line, err)
		}
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		return recs, err
	}
	if torn {
		return recs, ErrTornTail
	}
	return recs, nil
}

// LoadCheckpoint reads an existing sweep JSONL file into a resume map; a
// missing file is an empty checkpoint. A torn tail (the run was killed
// mid-write) is dropped: its key stays un-recorded and the trial simply
// reruns.
func LoadCheckpoint(path string) (map[Key]Record, error) {
	done, _, err := loadCheckpointTrim(path)
	return done, err
}

// loadCheckpointTrim is LoadCheckpoint plus the byte length of the valid
// newline-terminated record prefix: a resuming writer truncates the file to
// that length before appending, so a torn tail cannot shadow its rerun.
func loadCheckpointTrim(path string) (map[Key]Record, int64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[Key]Record{}, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	done := map[Key]Record{}
	errStop := errors.New("stop")
	valid, _, err := terminatedLines(data, func(line []byte) error {
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			// Corrupt line: everything from here on reruns.
			return errStop
		}
		done[rec.Key] = rec
		return nil
	})
	if err != nil && err != errStop {
		return nil, 0, err
	}
	return done, valid, nil
}

// CanonicalJSONL renders records in canonical form: key-sorted, wall time
// zeroed. Wall time is the single nondeterministic record field, so the
// canonical form of a resumed sweep's merged file is byte-identical to the
// canonical form of an uninterrupted run with the same spec and base seed
// (the resume-determinism guarantee, asserted by TestResumeDeterminism).
func CanonicalJSONL(recs []Record) ([]byte, error) {
	sorted := make([]Record, len(recs))
	copy(sorted, recs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key.Less(sorted[j].Key) })
	var b []byte
	for _, r := range sorted {
		r.WallMS = 0
		var err error
		if b, err = r.appendLine(b); err != nil {
			return nil, err
		}
	}
	return b, nil
}
