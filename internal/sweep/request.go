package sweep

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/popsim/popsize/internal/pop"
)

// SpecRequest is the serializable form of a sweep submission: everything a
// caller chooses about a run — which experiments, the size grid, trial
// counts, engine backend, worker budget, intra-trial parallelism, and the
// base seed — in one JSON-codable struct. It is the single source of truth
// for those knobs' defaults and validation messages: the command-line
// surface (Flags embeds it, binding -backend/-workers/-par/-seed straight
// onto its fields) and the popsimd daemon's POST /v1/jobs body are the
// same struct, so a job submitted over HTTP and a sweep launched from a
// shell are the same request by construction.
//
// A request does not name concrete work: a resolver (internal/expt's
// Resolve for the reproduction suite) turns the experiment selection into
// sweep points, and Spec then binds those points to the request's knobs.
type SpecRequest struct {
	// Experiments selects experiment ids (expt.DefaultDefs' F2/E1–E18/A1–A3
	// plus the zoo's E-* defs); empty means the whole suite. Unknown names
	// fail resolution with the shared UnknownName error listing what does
	// exist.
	Experiments []string `json:"experiments,omitempty"`
	// Ns overrides the suite's primary population-size grid (each entry
	// needs at least 2 agents); empty keeps the sizing preset.
	Ns []int `json:"ns,omitempty"`
	// Trials overrides the per-point trial count; 0 keeps the preset.
	Trials int `json:"trials,omitempty"`
	// Quick selects the -quick smoke sizing preset.
	Quick bool `json:"quick,omitempty"`
	// Backend selects the simulation engine: auto|seq|batch|dense
	// (default auto).
	Backend string `json:"backend,omitempty"`
	// Workers bounds the sweep's worker pool; 0 means GOMAXPROCS (or, in
	// the daemon, the shared pool size).
	Workers int `json:"workers,omitempty"`
	// Par is the intra-trial parallelism target (the -par semantics:
	// 0 = auto, any value >= 1 forces the deterministic splitter path).
	Par int `json:"par,omitempty"`
	// Seed is the base random seed; per-trial seeds derive from it
	// (default 1, matching the -seed flag).
	Seed uint64 `json:"seed,omitempty"`
}

// SetDefaults fills the zero-valued knobs whose documented default is not
// the zero value, mirroring the flag defaults exactly.
func (r *SpecRequest) SetDefaults() {
	if r.Backend == "" {
		r.Backend = "auto"
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
}

// ParseBackend parses the request's backend selection.
func (r *SpecRequest) ParseBackend() (pop.Backend, error) {
	if r.Backend == "" {
		return pop.ParseBackend("auto")
	}
	return pop.ParseBackend(r.Backend)
}

// Validate checks every knob that can be checked without a resolver (the
// experiment selection is validated against the catalog at resolve time).
func (r *SpecRequest) Validate() error {
	if _, err := r.ParseBackend(); err != nil {
		return err
	}
	if r.Trials < 0 {
		return fmt.Errorf("sweep: request needs trials >= 0 (got %d)", r.Trials)
	}
	if r.Workers < 0 {
		return fmt.Errorf("sweep: request needs workers >= 0 (got %d)", r.Workers)
	}
	if r.Par < 0 {
		return fmt.Errorf("sweep: request needs par >= 0 (got %d)", r.Par)
	}
	seen := map[int]bool{}
	for _, n := range r.Ns {
		if n < 2 {
			return fmt.Errorf("sweep: request ns entry %d: population sizes need at least 2 agents", n)
		}
		if seen[n] {
			return fmt.Errorf("sweep: request ns entry %d repeats — duplicate sizes would double-run every trial under identical record keys", n)
		}
		seen[n] = true
	}
	return nil
}

// Spec binds resolved points to the request's knobs, producing the
// runnable sweep spec.
func (r SpecRequest) Spec(points []Point) (Spec, error) {
	if err := r.Validate(); err != nil {
		return Spec{}, err
	}
	be, err := r.ParseBackend()
	if err != nil {
		return Spec{}, err
	}
	seed := r.Seed
	if seed == 0 {
		seed = 1
	}
	return Spec{
		Points:   points,
		BaseSeed: seed,
		Backend:  be,
		Workers:  r.Workers,
		Par:      r.Par,
	}, nil
}

// DecodeSpecRequest reads one JSON-encoded request, rejecting unknown
// fields (a typoed knob in a job submission must fail loudly, not silently
// run the default suite), then applies defaults and validates. This is the
// daemon's POST body decoder.
func DecodeSpecRequest(rd io.Reader) (SpecRequest, error) {
	var req SpecRequest
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return SpecRequest{}, fmt.Errorf("sweep: decoding spec request: %w", err)
	}
	// A second document in the body is almost certainly a client bug.
	if dec.More() {
		return SpecRequest{}, fmt.Errorf("sweep: spec request body holds more than one JSON document")
	}
	req.SetDefaults()
	if err := req.Validate(); err != nil {
		return SpecRequest{}, err
	}
	return req, nil
}
