package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/popsim/popsize/internal/pop"
)

// HistoryRecord is one sampled trajectory point as a JSONL line: the
// engine's parallel time, population size and interaction count, plus the
// full configuration as a state→count map. Config reuses Values, so state
// counts share the record stream's NaN-safe encoding and sorted-key
// determinism (counts are integral, but the uniform float encoding keeps
// one decoder for both streams).
type HistoryRecord struct {
	Time         float64 `json:"t"`
	N            int     `json:"n"`
	Interactions int64   `json:"interactions"`
	Config       Values  `json:"config"`
}

// HistoryRecords converts an engine-level sampled trajectory into the
// serializable record form, rendering each state with %v (protocol states
// print compactly and unambiguously — the map key must be a string).
func HistoryRecords[S comparable](samples []pop.HistorySample[S]) []HistoryRecord {
	out := make([]HistoryRecord, len(samples))
	for i, s := range samples {
		cfg := make(Values, len(s.Counts))
		for st, c := range s.Counts {
			cfg[fmt.Sprintf("%v", st)] += float64(c)
		}
		out[i] = HistoryRecord{
			Time:         s.Time,
			N:            s.N,
			Interactions: s.Interactions,
			Config:       cfg,
		}
	}
	return out
}

// WriteHistory streams records as JSONL. The encoding is deterministic
// (struct field order plus Values' sorted keys), so equal trajectories
// produce byte-identical files.
func WriteHistory(w io.Writer, recs []HistoryRecord) error {
	var buf []byte
	for _, r := range recs {
		line, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("sweep: marshaling history record at t=%g: %w", r.Time, err)
		}
		buf = append(append(buf, line...), '\n')
	}
	_, err := w.Write(buf)
	return err
}

// ReadHistory parses a JSONL trajectory stream written by WriteHistory.
// Like ReadRecords it consumes only the newline-terminated prefix and
// reports an unterminated tail as ErrTornTail alongside the valid records.
func ReadHistory(r io.Reader) ([]HistoryRecord, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var recs []HistoryRecord
	_, torn, err := terminatedLines(data, func(line []byte) error {
		var rec HistoryRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("sweep: corrupt history record %q: %w", line, err)
		}
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		return recs, err
	}
	if torn {
		return recs, ErrTornTail
	}
	return recs, nil
}

// SortedConfig returns a history record's configuration as (state, count)
// pairs in sorted state order — the deterministic iteration order reports
// are built from.
func (r HistoryRecord) SortedConfig() (states []string, counts []float64) {
	states = make([]string, 0, len(r.Config))
	for s := range r.Config {
		states = append(states, s)
	}
	sort.Strings(states)
	counts = make([]float64, len(states))
	for i, s := range states {
		counts[i] = r.Config[s]
	}
	return states, counts
}
