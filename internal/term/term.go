// Package term implements the κ-t-termination framework of Section 4: a
// protocol is κ-t-terminating if from every valid initial configuration it
// reaches, with probability >= κ, a configuration in which some agent has
// raised a terminated flag, taking time >= t(n) to do so. Theorem 4.1: for
// uniform i.o.-dense protocols, t(n) = O(1) — the termination signal
// cannot be delayed beyond constant time.
//
// The package provides the canonical uniform dense terminating protocol
// (an interaction counter with a constant threshold), measurement helpers
// for first-termination times, and the dense/leader contrast used by
// experiment E12.
package term

import (
	"math/rand/v2"

	"github.com/popsim/popsize/internal/pop"
)

// CounterState is one agent of the counter-terminator: it counts its own
// interactions and terminates at a constant threshold. The protocol is
// uniform (the threshold does not depend on n) and its initial
// configuration is 1-dense (all agents identical), so Theorem 4.1 applies:
// first termination happens at time ≈ threshold/2, independent of n.
type CounterState struct {
	C          uint32
	Terminated bool
}

// CounterTerminator is the counter-terminator protocol.
type CounterTerminator struct {
	// Threshold is the constant interaction count at which an agent
	// terminates.
	Threshold uint32
}

// Initial returns the uniform initial state.
func (CounterTerminator) Initial(_ int, _ *rand.Rand) CounterState { return CounterState{} }

// Rule counts interactions and spreads the terminated flag.
func (c CounterTerminator) Rule(rec, sen CounterState, _ *rand.Rand) (CounterState, CounterState) {
	rec = c.tick(rec)
	sen = c.tick(sen)
	if rec.Terminated != sen.Terminated {
		rec.Terminated = true
		sen.Terminated = true
	}
	return rec, sen
}

func (c CounterTerminator) tick(a CounterState) CounterState {
	if a.Terminated {
		return a
	}
	a.C++
	if a.C >= c.Threshold {
		a.Terminated = true
	}
	return a
}

// Terminated reports whether any agent has terminated.
func Terminated(s pop.Engine[CounterState]) bool {
	return s.Any(func(a CounterState) bool { return a.Terminated })
}

// FirstTermination runs sim until pred first holds (checking every
// checkEvery time units) and returns the detection time; ok is false if the
// budget maxTime is exhausted first.
func FirstTermination[S comparable](sim pop.Engine[S], pred func(pop.Engine[S]) bool, checkEvery, maxTime float64) (t float64, ok bool) {
	done, at := sim.RunUntil(pred, checkEvery, maxTime)
	return at, done
}
