package term

import (
	"testing"

	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/leaderterm"
	"github.com/popsim/popsize/internal/pop"
)

// TestCounterTerminatesFlat is the empirical face of Theorem 4.1: the
// uniform dense counter-terminator's first-termination time is flat in n
// (≈ threshold/2, since each agent has 2 interactions per time unit).
func TestCounterTerminatesFlat(t *testing.T) {
	c := CounterTerminator{Threshold: 40}
	times := make(map[int]float64)
	for _, n := range []int{100, 1000, 10000} {
		s := pop.New(n, c.Initial, c.Rule, pop.WithSeed(5))
		at, ok := FirstTermination(s, Terminated, 0.5, 1000)
		if !ok {
			t.Fatalf("n=%d: never terminated", n)
		}
		times[n] = at
		// Expected ≈ 20 with early-deviation slack: the first of n agents
		// to collect 40 interactions runs ahead of the mean.
		if at < 5 || at > 25 {
			t.Errorf("n=%d: first termination at %.1f, want ≈ threshold/2 = 20 (bracket [5,25])", n, at)
		}
	}
	// Flatness: two orders of magnitude in n change the time by < 2×.
	if r := times[10000] / times[100]; r > 2 || r < 0.5 {
		t.Errorf("first-termination ratio across n = %.2f, want ≈ 1 (flat)", r)
	}
}

// TestLeaderDelaysTermination is the contrast: the leader-driven protocol
// of Theorem 3.13 (allowed because its initial configuration is NOT dense)
// delays termination by Θ(log² n), growing with n.
func TestLeaderDelaysTermination(t *testing.T) {
	if testing.Short() {
		t.Skip("full runs are not short")
	}
	p := leaderterm.MustNew(core.FastConfig(), 0)
	timeFor := func(n int) float64 {
		s := p.NewSim(n, pop.WithSeed(3))
		at, ok := FirstTermination(s, leaderterm.Terminated, 5, 50*p.Main().DefaultMaxTime(n))
		if !ok {
			t.Fatalf("n=%d: never terminated", n)
		}
		return at
	}
	t128, t4096 := timeFor(128), timeFor(4096)
	if t4096 <= t128 {
		t.Errorf("leader-driven termination not growing: t(4096)=%.0f <= t(128)=%.0f", t4096, t128)
	}
}

// TestTerminationSpreads: once one agent terminates, the flag reaches all
// agents by epidemic.
func TestTerminationSpreads(t *testing.T) {
	c := CounterTerminator{Threshold: 10}
	s := pop.New(500, c.Initial, c.Rule, pop.WithSeed(2))
	_, ok := FirstTermination(s, Terminated, 0.5, 1000)
	if !ok {
		t.Fatal("never terminated")
	}
	ok, _ = s.RunUntil(func(s pop.Engine[CounterState]) bool {
		return s.All(func(a CounterState) bool { return a.Terminated })
	}, 1, 200)
	if !ok {
		t.Error("terminated flag did not reach all agents")
	}
}
