package arith

import (
	"testing"

	"github.com/popsim/popsize/internal/pop"
)

func TestDoubleComputes2x(t *testing.T) {
	for _, tc := range []struct{ n, x int }{{100, 10}, {1000, 500}, {64, 1}} {
		s := NewDouble(tc.n, tc.x, pop.WithSeed(1))
		at, ok := CompletionTime(s, false, 1e6)
		if !ok {
			t.Fatalf("n=%d x=%d: doubling did not complete (t=%.0f)", tc.n, tc.x, at)
		}
		if y := Count(s, Y); y != 2*tc.x {
			t.Errorf("n=%d x=%d: produced %d Y, want %d", tc.n, tc.x, y, 2*tc.x)
		}
	}
}

func TestHalveComputesHalf(t *testing.T) {
	for _, tc := range []struct{ n, x int }{{100, 10}, {200, 51}} {
		odd := tc.x%2 == 1
		s := NewHalve(tc.n, tc.x, pop.WithSeed(2))
		_, ok := CompletionTime(s, odd, 1e7)
		if !ok {
			t.Fatalf("n=%d x=%d: halving did not complete", tc.n, tc.x)
		}
		if y := Count(s, Y); y != tc.x/2 {
			t.Errorf("n=%d x=%d: produced %d Y, want %d", tc.n, tc.x, y, tc.x/2)
		}
	}
}

func TestInputValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("over-full doubling did not panic")
		}
	}()
	NewDouble(10, 6)
}

// TestTimeShapes reproduces the introduction's separation: doubling
// completes in O(log n) while halving needs Ω(n) — at n = 4096 the gap is
// already two orders of magnitude.
func TestTimeShapes(t *testing.T) {
	const n = 4096
	var dsum, hsum float64
	const trials = 5
	for seed := uint64(0); seed < trials; seed++ {
		d := NewDouble(n, n/4, pop.WithSeed(seed))
		at, ok := CompletionTime(d, false, 1e6)
		if !ok {
			t.Fatal("doubling did not complete")
		}
		dsum += at

		h := NewHalve(n, n/4, pop.WithSeed(seed))
		at, ok = CompletionTime(h, false, 1e7)
		if !ok {
			t.Fatal("halving did not complete")
		}
		hsum += at
	}
	if ratio := hsum / dsum; ratio < 20 {
		t.Errorf("halving/doubling time ratio = %.1f, want >= 20 (O(n) vs O(log n))", ratio)
	}
}
