// Package arith implements the introduction's motivating example of
// efficient vs inefficient population computation (Section 1):
//
//	x, q → y, y   computes f(x) = 2x in expected O(log n) time, while
//	x, x → y, q   computes f(x) = ⌊x/2⌋ exponentially slower, in O(n) time.
//
// Doubling is fast because unconverted x's always find fuel q's in Θ(n)
// count; halving is slow because the last two x's must find *each other* —
// an Θ(n)-expected-time event. Experiment E18 and TestTimeShapes reproduce
// the separation, which is the reason "efficient" means polylog(n) in this
// literature.
package arith

import (
	"math/rand/v2"

	"github.com/popsim/popsize/internal/pop"
)

// Species is the state of one agent in either protocol.
type Species uint8

// Species values: X is input, Q is fuel/waste, Y is output.
const (
	X Species = iota + 1
	Q
	Y
)

// DoubleRule is x, q → y, y (order-insensitive).
func DoubleRule(rec, sen Species, _ *rand.Rand) (Species, Species) {
	if rec == X && sen == Q || rec == Q && sen == X {
		return Y, Y
	}
	return rec, sen
}

// HalveRule is x, x → y, q.
func HalveRule(rec, sen Species, _ *rand.Rand) (Species, Species) {
	if rec == X && sen == X {
		return Y, Q
	}
	return rec, sen
}

// NewDouble builds a population with x X-agents and n−x Q-agents running
// the doubling protocol (requires x <= n/2 so the fuel cannot run out).
func NewDouble(n, x int, opts ...pop.Option) *pop.Sim[Species] {
	if 2*x > n {
		panic("arith: doubling requires x <= n/2")
	}
	return pop.New(n, func(i int, _ *rand.Rand) Species {
		return pick(i < x)
	}, DoubleRule, opts...)
}

// NewHalve builds a population with x X-agents and n−x Q-agents running
// the halving protocol.
func NewHalve(n, x int, opts ...pop.Option) *pop.Sim[Species] {
	if x > n {
		panic("arith: x > n")
	}
	return pop.New(n, func(i int, _ *rand.Rand) Species {
		return pick(i < x)
	}, HalveRule, opts...)
}

func pick(isX bool) Species {
	if isX {
		return X
	}
	return Q
}

// NewDoubleEngine is NewDouble with a backend selectable via
// pop.WithBackend.
func NewDoubleEngine(n, x int, opts ...pop.Option) pop.Engine[Species] {
	if 2*x > n {
		panic("arith: doubling requires x <= n/2")
	}
	return pop.NewEngine(n, func(i int, _ *rand.Rand) Species {
		return pick(i < x)
	}, DoubleRule, opts...)
}

// NewHalveEngine is NewHalve with a backend selectable via pop.WithBackend.
func NewHalveEngine(n, x int, opts ...pop.Option) pop.Engine[Species] {
	if x > n {
		panic("arith: x > n")
	}
	return pop.NewEngine(n, func(i int, _ *rand.Rand) Species {
		return pick(i < x)
	}, HalveRule, opts...)
}

// Count returns the number of agents of the given species.
func Count(s pop.Engine[Species], sp Species) int {
	return s.Count(func(a Species) bool { return a == sp })
}

// Converged reports whether no X agents remain — for doubling, the output
// count of Y equals 2x; for halving on even x, Y equals x/2 + (x/2 became
// Q)… precisely: halving leaves ⌈x/2⌉ Y if x even, and one X stuck if x is
// odd (the classic parity remainder), in which case convergence means one
// X left.
func Converged(s pop.Engine[Species], odd bool) bool {
	x := Count(s, X)
	if odd {
		return x == 1
	}
	return x == 0
}

// CompletionTime runs until Converged and returns the parallel time taken.
func CompletionTime(s pop.Engine[Species], odd bool, maxTime float64) (float64, bool) {
	return completion(s, odd, maxTime)
}

func completion(s pop.Engine[Species], odd bool, maxTime float64) (float64, bool) {
	done, at := s.RunUntil(func(s pop.Engine[Species]) bool { return Converged(s, odd) }, 0.5, maxTime)
	return at, done
}
