package producible

// ApproxMajority returns the classic 3-state approximate-majority protocol
// (states X, Y, B) as an explicit Protocol, used as a density testbed:
// from any dense {X, Y} configuration all three states are 1-1-producible
// and reach Θ(n) counts in O(1) time.
//
//	X, Y → X, B    Y, X → Y, B    X, B → X, X    Y, B → Y, Y
func ApproxMajority() *Protocol {
	const (
		x = iota
		y
		b
	)
	return &Protocol{
		Names: []string{"X", "Y", "B"},
		Transitions: map[[2]int][]Outcome{
			{x, y}: {{C: x, D: b, Rho: 1}},
			{y, x}: {{C: y, D: b, Rho: 1}},
			{b, x}: {{C: x, D: x, Rho: 1}},
			{b, y}: {{C: y, D: y, Rho: 1}},
		},
	}
}

// CounterChain returns the explicit protocol in which every agent counts
// its own interactions: state c_i moves to c_{i+1} on any interaction, and
// c_m is the terminated state T (absorbing). It is the canonical uniform
// dense terminating protocol of Theorem 4.1's discussion: T is
// m-1-producible from {c_0}, so termination happens in O(1) time from dense
// configurations no matter n.
func CounterChain(m int) *Protocol {
	names := make([]string, m+1)
	for i := 0; i < m; i++ {
		names[i] = "c" + itoa(i)
	}
	names[m] = "T"
	tr := make(map[[2]int][]Outcome, m*m)
	inc := func(i int) int {
		if i < m {
			return i + 1
		}
		return m
	}
	for i := 0; i <= m; i++ {
		for j := 0; j <= m; j++ {
			if i == m && j == m {
				continue
			}
			tr[[2]int{i, j}] = []Outcome{{C: inc(i), D: inc(j), Rho: 1}}
		}
	}
	return &Protocol{Names: names, Transitions: tr}
}

// CoinDoubler returns a randomized protocol used to exercise rate-constant
// filtering in the closure: state 0 pairs promote to state 1 with rate ½
// and to state 2 with rate ¼ (the remaining ¼ is a null outcome).
func CoinDoubler() *Protocol {
	return &Protocol{
		Names: []string{"a", "b", "c"},
		Transitions: map[[2]int][]Outcome{
			{0, 0}: {
				{C: 1, D: 1, Rho: 0.5},
				{C: 2, D: 2, Rho: 0.25},
			},
		},
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
