package producible

import (
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       *Protocol
		wantErr bool
	}{
		{"approx majority", ApproxMajority(), false},
		{"counter chain", CounterChain(5), false},
		{"coin doubler", CoinDoubler(), false},
		{"bad state index", &Protocol{
			Names:       []string{"a"},
			Transitions: map[[2]int][]Outcome{{0, 3}: {{C: 0, D: 0, Rho: 1}}},
		}, true},
		{"mass over one", &Protocol{
			Names:       []string{"a"},
			Transitions: map[[2]int][]Outcome{{0, 0}: {{C: 0, D: 0, Rho: 0.7}, {C: 0, D: 0, Rho: 0.7}}},
		}, true},
		{"zero rate", &Protocol{
			Names:       []string{"a"},
			Transitions: map[[2]int][]Outcome{{0, 0}: {{C: 0, D: 0, Rho: 0}}},
		}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestClosureCounterChain(t *testing.T) {
	const m = 6
	p := CounterChain(m)
	chain := p.Closure(1, []int{0}, m)
	for i, lam := range chain {
		// Λ^i = {c0..ci}: counting up one level per transition round.
		if len(lam) != i+1 {
			t.Errorf("Λ^%d has %d states, want %d", i, len(lam), i+1)
		}
	}
	if !chain[m][m] {
		t.Errorf("terminated state T=c%d not in Λ^%d", m, m)
	}
}

func TestClosureDepthSaturates(t *testing.T) {
	p := ApproxMajority()
	depth, lam := p.ClosureDepth(1, []int{0, 1})
	if depth != 1 || len(lam) != 3 {
		t.Errorf("ClosureDepth = %d with %d states; want depth 1, 3 states", depth, len(lam))
	}
}

func TestClosureRateFiltering(t *testing.T) {
	p := CoinDoubler()
	// With ρ = 0.3 only the rate-0.5 outcome counts: state 2 unreachable.
	_, lam := p.ClosureDepth(0.3, []int{0})
	if lam[2] {
		t.Error("rate-¼ outcome included at ρ = 0.3")
	}
	if !lam[1] {
		t.Error("rate-½ outcome excluded at ρ = 0.3")
	}
	// With ρ = 0.2 both appear.
	_, lam = p.ClosureDepth(0.2, []int{0})
	if !lam[2] {
		t.Error("rate-¼ outcome excluded at ρ = 0.2")
	}
}

// TestClosureMonotoneIdempotent: Λ^i ⊆ Λ^(i+1), and recomputing the closure
// from a saturated set is a fixed point (property-based over random m).
func TestClosureMonotoneIdempotent(t *testing.T) {
	p := CounterChain(8)
	f := func(m8 uint8) bool {
		m := int(m8 % 10)
		chain := p.Closure(1, []int{0}, m)
		for i := 1; i < len(chain); i++ {
			for s := range chain[i-1] {
				if !chain[i][s] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDenseConfig(t *testing.T) {
	cfg := DenseConfig([]int{0, 1}, 0.4, 100)
	if len(cfg) != 100 {
		t.Fatalf("len = %d, want 100", len(cfg))
	}
	c0, c1 := 0, 0
	for _, s := range cfg {
		switch s {
		case 0:
			c0++
		case 1:
			c1++
		}
	}
	if c0 != 60 || c1 != 40 {
		t.Errorf("counts = %d,%d; want 60,40", c0, c1)
	}
	defer func() {
		if recover() == nil {
			t.Error("over-dense request did not panic")
		}
	}()
	DenseConfig([]int{0, 1, 2}, 0.5, 10)
}

// TestLemma42ApproxMajority: from a ½/½-dense {X,Y} configuration, all
// states of the 3-state approximate-majority protocol reach a constant
// fraction of n by time 1, for n across two orders of magnitude.
func TestLemma42ApproxMajority(t *testing.T) {
	p := ApproxMajority()
	for _, n := range []int{500, 5000, 50000} {
		cfg := DenseConfig([]int{0, 1}, 0.5, n)
		rep := p.CheckLemma42(cfg, 1, 1, 7)
		if rep.MinFraction < 0.02 {
			t.Errorf("n=%d: min density %.4f < 0.02 at time 1", n, rep.MinFraction)
		}
	}
}

// TestLemma42CounterChain: the terminated state of a constant-threshold
// counter protocol reaches Θ(n) count by constant time from the all-c0
// dense configuration — the concrete engine behind Theorem 4.1.
func TestLemma42CounterChain(t *testing.T) {
	const m = 4 // T is 4-producible; agents need 4 interactions each
	p := CounterChain(m)
	for _, n := range []int{1000, 10000} {
		cfg := DenseConfig([]int{0}, 1, n)
		rep := p.CheckLemma42(cfg, 1, m, 3)
		if rep.Counts[m] == 0 {
			t.Errorf("n=%d: no terminated agents at time 1", n)
		}
		if rep.MinFraction < 0.005 {
			t.Errorf("n=%d: min density over Λ^m = %.4f < 0.005", n, rep.MinFraction)
		}
	}
}
