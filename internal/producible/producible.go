// Package producible implements the m-ρ-producibility machinery of
// Section 4: explicit finite protocol descriptions with randomized
// transition relations, the PROD_ρ operator, the Λ^m_ρ closure, and an
// empirical check of the timer/density Lemma 4.2 (all states producible
// via m transitions of rate >= ρ reach count δn within one unit of
// parallel time, starting from any sufficiently large α-dense
// configuration).
//
// This machinery is what makes Theorem 4.1 bite: if a uniform protocol can
// terminate at all from a dense configuration, its terminated states are
// m-ρ-producible for constants m, ρ, so termination happens in O(1) time —
// no protocol needing ω(1) time can signal completion.
package producible

import (
	"fmt"
	"math/rand/v2"

	"github.com/popsim/popsize/internal/pop"
)

// Outcome is one randomized result of a pair interaction: with probability
// Rho the receiver moves to state C and the sender to state D.
type Outcome struct {
	C, D int
	Rho  float64
}

// Protocol is an explicit finite population protocol: states are indices
// into Names, and Transitions maps an ordered (receiver, sender) state pair
// to its possible outcomes. Pairs without an entry are null transitions.
// The outcome probabilities for a pair must sum to at most 1; residual
// probability means "no change".
type Protocol struct {
	Names       []string
	Transitions map[[2]int][]Outcome
}

// Validate checks state indices and probability mass.
func (p *Protocol) Validate() error {
	n := len(p.Names)
	for pair, outs := range p.Transitions {
		if pair[0] < 0 || pair[0] >= n || pair[1] < 0 || pair[1] >= n {
			return fmt.Errorf("producible: transition pair %v out of range", pair)
		}
		mass := 0.0
		for _, o := range outs {
			if o.C < 0 || o.C >= n || o.D < 0 || o.D >= n {
				return fmt.Errorf("producible: outcome %+v of pair %v out of range", o, pair)
			}
			if o.Rho <= 0 || o.Rho > 1 {
				return fmt.Errorf("producible: outcome %+v of pair %v has rate outside (0,1]", o, pair)
			}
			mass += o.Rho
		}
		if mass > 1+1e-9 {
			return fmt.Errorf("producible: pair %v has probability mass %v > 1", pair, mass)
		}
	}
	return nil
}

// Prod returns PROD_ρ(Γ): the set of states producible by a single
// transition with rate >= rho, assuming only states in gamma are present.
func (p *Protocol) Prod(rho float64, gamma map[int]bool) map[int]bool {
	out := make(map[int]bool)
	for pair, outs := range p.Transitions {
		if !gamma[pair[0]] || !gamma[pair[1]] {
			continue
		}
		for _, o := range outs {
			if o.Rho >= rho {
				out[o.C] = true
				out[o.D] = true
			}
		}
	}
	return out
}

// Closure returns the chain Λ⁰_ρ ⊆ Λ¹_ρ ⊆ ... ⊆ Λ^m_ρ of m-ρ-producible
// state sets starting from the states present in initial. The result has
// m+1 entries; entry i is Λ^i_ρ as a sorted-iteration-friendly set.
func (p *Protocol) Closure(rho float64, initial []int, m int) []map[int]bool {
	cur := make(map[int]bool, len(initial))
	for _, s := range initial {
		cur[s] = true
	}
	chain := make([]map[int]bool, 0, m+1)
	chain = append(chain, copySet(cur))
	for i := 0; i < m; i++ {
		next := copySet(cur)
		for s := range p.Prod(rho, cur) {
			next[s] = true
		}
		chain = append(chain, copySet(next))
		cur = next
	}
	return chain
}

// ClosureDepth returns the smallest m with Λ^m_ρ = Λ^(m+1)_ρ (the closure
// saturates; for finite protocols it always does) along with the final set.
func (p *Protocol) ClosureDepth(rho float64, initial []int) (int, map[int]bool) {
	cur := make(map[int]bool, len(initial))
	for _, s := range initial {
		cur[s] = true
	}
	for m := 0; ; m++ {
		next := copySet(cur)
		for s := range p.Prod(rho, cur) {
			next[s] = true
		}
		if len(next) == len(cur) {
			return m, cur
		}
		cur = next
	}
}

// Rule returns a pop.Rule executing the protocol's randomized transition
// relation.
func (p *Protocol) Rule() pop.Rule[int] {
	return func(rec, sen int, r *rand.Rand) (int, int) {
		outs := p.Transitions[[2]int{rec, sen}]
		if len(outs) == 0 {
			return rec, sen
		}
		u := r.Float64()
		for _, o := range outs {
			if u < o.Rho {
				return o.C, o.D
			}
			u -= o.Rho
		}
		return rec, sen
	}
}

// DenseConfig builds an n-agent configuration in which every state listed
// appears with count >= ⌊αn⌋ (the first state absorbs the remainder); it
// panics if α·len(states) > 1.
func DenseConfig(states []int, alpha float64, n int) []int {
	per := int(alpha * float64(n))
	if per*len(states) > n {
		panic("producible: alpha too large for state count")
	}
	cfg := make([]int, 0, n)
	for _, s := range states {
		for i := 0; i < per; i++ {
			cfg = append(cfg, s)
		}
	}
	for len(cfg) < n {
		cfg = append(cfg, states[0])
	}
	return cfg
}

// MinCountReport is the outcome of one Lemma 4.2 empirical check.
type MinCountReport struct {
	// MinFraction is min over s ∈ Λ^m_ρ of count(s)/n at time 1.
	MinFraction float64
	// Counts maps each state in Λ^m_ρ to its count at time 1.
	Counts map[int]int
}

// CheckLemma42 runs the protocol from the given α-dense configuration for
// one unit of parallel time and reports the minimum density over all states
// in Λ^m_ρ. Lemma 4.2 asserts this is >= δ for some constant δ > 0 w.h.p.,
// independent of n.
func (p *Protocol) CheckLemma42(cfg []int, rho float64, m int, seed uint64) MinCountReport {
	initialSet := make(map[int]bool)
	for _, s := range cfg {
		initialSet[s] = true
	}
	initial := make([]int, 0, len(initialSet))
	for s := range initialSet {
		initial = append(initial, s)
	}
	chain := p.Closure(rho, initial, m)
	lam := chain[len(chain)-1]

	sim := pop.NewFromConfig(cfg, p.Rule(), pop.WithSeed(seed))
	sim.RunTime(1)

	counts := sim.Counts()
	rep := MinCountReport{MinFraction: 1, Counts: make(map[int]int, len(lam))}
	n := float64(sim.N())
	for s := range lam {
		c := counts[s]
		rep.Counts[s] = c
		if f := float64(c) / n; f < rep.MinFraction {
			rep.MinFraction = f
		}
	}
	return rep
}

func copySet(s map[int]bool) map[int]bool {
	c := make(map[int]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}
