// Package reach implements the Section 2.1 correctness notions for
// explicit finite protocols by exhaustive configuration-space search:
// reachability, *stable correctness* (every reachable configuration is
// correct), and *silence* (no transition can change any agent's state —
// the stronger notion the paper contrasts with termination, citing [13]).
//
// Population protocols' configuration spaces are multisets, so for the
// small populations where exhaustion is feasible (the paper's proofs reason
// about exactly such finite witnesses, e.g. the execution E in Theorem
// 4.1's proof) configurations are count vectors and the search is BFS over
// them. The package complements internal/producible: producibility
// over-approximates what can appear; reachability decides it exactly for
// small n.
package reach

import (
	"fmt"
	"strings"

	"github.com/popsim/popsize/internal/producible"
)

// Config is a configuration vector: Config[s] is the count of agents in
// state s (indices into the protocol's state list).
type Config []int

// N returns the population size of the configuration.
func (c Config) N() int {
	n := 0
	for _, k := range c {
		n += k
	}
	return n
}

// Key returns a map key for the configuration.
func (c Config) Key() string {
	var b strings.Builder
	for i, k := range c {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", k)
	}
	return b.String()
}

// clone copies the configuration.
func (c Config) clone() Config {
	d := make(Config, len(c))
	copy(d, c)
	return d
}

// Successors returns every configuration reachable from c by one
// transition (any outcome with positive probability of any applicable
// ordered pair). The receiver/sender order matters for asymmetric
// transition relations.
func Successors(p *producible.Protocol, c Config) []Config {
	var out []Config
	seen := map[string]bool{}
	for pair, outcomes := range p.Transitions {
		rec, sen := pair[0], pair[1]
		if !applicable(c, rec, sen) {
			continue
		}
		for _, o := range outcomes {
			d := c.clone()
			d[rec]--
			d[sen]--
			d[o.C]++
			d[o.D]++
			if k := d.Key(); !seen[k] {
				seen[k] = true
				out = append(out, d)
			}
		}
	}
	return out
}

func applicable(c Config, rec, sen int) bool {
	if rec == sen {
		return c[rec] >= 2
	}
	return c[rec] >= 1 && c[sen] >= 1
}

// Reachable returns the set of configurations reachable from c (including
// c), keyed by Config.Key, stopping once limit configurations have been
// discovered. truncated reports whether the limit was hit.
func Reachable(p *producible.Protocol, c Config, limit int) (set map[string]Config, truncated bool) {
	set = map[string]Config{c.Key(): c}
	queue := []Config{c}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nxt := range Successors(p, cur) {
			k := nxt.Key()
			if _, ok := set[k]; ok {
				continue
			}
			if len(set) >= limit {
				return set, true
			}
			set[k] = nxt
			queue = append(queue, nxt)
		}
	}
	return set, false
}

// Silent reports whether the configuration is silent: no transition can
// change any agent's state (Section 4's explicit contrast with
// "terminated").
func Silent(p *producible.Protocol, c Config) bool {
	for pair, outcomes := range p.Transitions {
		if !applicable(c, pair[0], pair[1]) {
			continue
		}
		for _, o := range outcomes {
			if o.C != pair[0] || o.D != pair[1] {
				return false // a state-changing transition applies
			}
		}
	}
	return true
}

// StablyCorrect reports whether c is stably correct with respect to the
// given correctness predicate: c and every configuration reachable from it
// are correct (Section 2.1). truncated reports an inconclusive search (the
// reachable set exceeded limit); in that case the boolean is the verdict
// over the explored prefix.
func StablyCorrect(p *producible.Protocol, c Config, correct func(Config) bool, limit int) (stable, truncated bool) {
	set, trunc := Reachable(p, c, limit)
	for _, cfg := range set {
		if !correct(cfg) {
			return false, trunc
		}
	}
	return true, trunc
}

// CanReach reports whether some configuration satisfying pred is reachable
// from c (within limit explored configurations).
func CanReach(p *producible.Protocol, c Config, pred func(Config) bool, limit int) (found, truncated bool) {
	set, trunc := Reachable(p, c, limit)
	for _, cfg := range set {
		if pred(cfg) {
			return true, trunc
		}
	}
	return false, trunc
}
