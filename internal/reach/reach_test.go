package reach

import (
	"testing"

	"github.com/popsim/popsize/internal/producible"
)

// approx-majority state indices (see producible.ApproxMajority).
const (
	amX = 0
	amY = 1
	amB = 2
)

func TestSuccessorsApproxMajority(t *testing.T) {
	p := producible.ApproxMajority()
	// (1 X, 1 Y, 0 B): the only transitions are X,Y → X,B and Y,X → Y,B.
	succ := Successors(p, Config{1, 1, 0})
	if len(succ) != 2 {
		t.Fatalf("successors = %v, want 2", succ)
	}
	want := map[string]bool{"1,0,1": true, "0,1,1": true}
	for _, s := range succ {
		if !want[s.Key()] {
			t.Errorf("unexpected successor %v", s)
		}
	}
}

func TestReachableApproxMajorityTiny(t *testing.T) {
	p := producible.ApproxMajority()
	set, trunc := Reachable(p, Config{2, 1, 0}, 1000)
	if trunc {
		t.Fatal("tiny configuration space truncated")
	}
	// From (2,1,0): reachable are (2,1,0), (2,0,1), (1,1,1), (3,0,0),
	// (1,0,2), (0,1,2), (2,0,1)→…; enumerate and check key members.
	for _, k := range []string{"2,1,0", "2,0,1", "1,1,1", "3,0,0"} {
		if _, ok := set[k]; !ok {
			t.Errorf("expected %s reachable, set = %v", k, keys(set))
		}
	}
	// The *wrong* verdict all-Y is also reachable from (2,1,0): Y,X → Y,B
	// blanks an X, and blanks adopt Y. Approximate majority is correct
	// only with high probability — the minority verdict stays reachable,
	// which is exactly what stable correctness distinguishes.
	if _, ok := set["0,3,0"]; !ok {
		t.Error("all-Y verdict should be reachable from (2,1,0)")
	}
}

func TestSilent(t *testing.T) {
	p := producible.ApproxMajority()
	tests := []struct {
		name string
		cfg  Config
		want bool
	}{
		{"all X", Config{3, 0, 0}, true},
		{"X and blank", Config{2, 0, 1}, false}, // B,X → X,X applies
		{"X vs Y", Config{1, 1, 0}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Silent(p, tt.cfg); got != tt.want {
				t.Errorf("Silent(%v) = %v, want %v", tt.cfg, got, tt.want)
			}
		})
	}
}

// TestStablyCorrectMajority: from a pure-X configuration the "output is X"
// predicate is stable; from a mixed configuration it is not (approximate
// majority can be wrong — it is only w.h.p. correct, which is exactly what
// stable correctness distinguishes).
func TestStablyCorrectMajority(t *testing.T) {
	p := producible.ApproxMajority()
	xWins := func(c Config) bool { return c[amY] == 0 && c[amB] == 0 }

	stable, trunc := StablyCorrect(p, Config{4, 0, 0}, xWins, 10000)
	if !stable || trunc {
		t.Errorf("pure-X not stably correct: stable=%v trunc=%v", stable, trunc)
	}
	stable, _ = StablyCorrect(p, Config{3, 1, 0}, xWins, 10000)
	if stable {
		t.Error("mixed configuration reported stably correct")
	}
	// But X=3,Y=1 CAN reach the all-X verdict.
	found, _ := CanReach(p, Config{3, 1, 0}, xWins, 10000)
	if !found {
		t.Error("majority-X verdict unreachable from (3,1,0)")
	}
}

// TestCounterChainTermination: with n = 2 the counter chain is fully
// synchronous — the reachable set is exactly the diagonal chain and the
// terminated configuration is silent.
func TestCounterChainTermination(t *testing.T) {
	const m = 3
	p := producible.CounterChain(m)
	start := make(Config, m+1)
	start[0] = 2
	set, trunc := Reachable(p, start, 100)
	if trunc || len(set) != m+1 {
		t.Fatalf("reachable = %v (trunc=%v), want the %d-element diagonal chain", keys(set), trunc, m+1)
	}
	terminal := make(Config, m+1)
	terminal[m] = 2
	if !Silent(p, terminal) {
		t.Error("terminated configuration not silent")
	}
	found, _ := CanReach(p, start, func(c Config) bool { return c[m] > 0 }, 100)
	if !found {
		t.Error("terminated state unreachable")
	}
}

// TestReachabilityRefinesProducibility: everything reachable is built from
// producible states (the closure over-approximates; BFS decides exactly).
func TestReachabilityRefinesProducibility(t *testing.T) {
	p := producible.ApproxMajority()
	start := Config{2, 2, 0}
	_, lam := p.ClosureDepth(1, []int{amX, amY})
	set, _ := Reachable(p, start, 10000)
	for _, cfg := range set {
		for s, count := range cfg {
			if count > 0 && !lam[s] {
				t.Fatalf("reachable config %v contains non-producible state %d", cfg, s)
			}
		}
	}
}

func TestTruncation(t *testing.T) {
	p := producible.ApproxMajority()
	// A larger population has a bigger space; a limit of 3 must truncate.
	start := Config{5, 5, 0}
	_, trunc := Reachable(p, start, 3)
	if !trunc {
		t.Error("limit 3 did not truncate")
	}
}

func keys(m map[string]Config) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
