package jobs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/popsim/popsize/internal/expt"
	"github.com/popsim/popsize/internal/sweep"
)

// testResolver resolves the synthetic experiments "fast" and "slow" into
// deterministic points: each trial's value is a pure function of (trial,
// seed), so interrupted and uninterrupted runs are byte-comparable after
// canonicalization. delay stretches each trial for cancellation and
// fairness tests.
func testResolver(delay time.Duration) Resolver {
	known := []string{"fast", "slow"}
	return func(req sweep.SpecRequest) ([]sweep.Point, error) {
		exps := req.Experiments
		if len(exps) == 0 {
			exps = []string{"fast"}
		}
		ns := req.Ns
		if len(ns) == 0 {
			ns = []int{4}
		}
		trials := req.Trials
		if trials == 0 {
			trials = 2
		}
		var pts []sweep.Point
		for _, e := range exps {
			if e != "fast" && e != "slow" {
				return nil, sweep.UnknownName("experiment", e, known)
			}
			for _, n := range ns {
				pts = append(pts, sweep.Point{
					Experiment: e, N: n, Trials: trials,
					Run: func(trial int, seed uint64) sweep.Values {
						if delay > 0 {
							time.Sleep(delay)
						}
						return sweep.Values{"x": float64(trial) + float64(seed%97)/100}
					},
				})
			}
		}
		return pts, nil
	}
}

func newTestManager(t *testing.T, dir string, slots int, delay time.Duration) *Manager {
	t.Helper()
	m, err := NewManager(Config{Dir: dir, Slots: slots, Resolve: testResolver(delay)})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func postJob(t *testing.T, ts *httptest.Server, body string) Status {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/jobs: %d %s", resp.StatusCode, data)
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("status decode: %v (%s)", err, data)
	}
	return st
}

// streamRecords reads the job's record stream (following until the job is
// terminal) and returns the parsed records.
func streamRecords(t *testing.T, ts *httptest.Server, id, after string) []sweep.Record {
	t.Helper()
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+id+"/records", nil)
	if after != "" {
		req.Header.Set("Last-Event-ID", after)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET records: %d %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("records content type %q", ct)
	}
	var recs []sweep.Record
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var rec sweep.Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("stream line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return recs
}

func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestAPILifecycle walks a job through submit → stream → summary → cancel
// (a no-op on a finished job), plus the 404/400 error paths.
func TestAPILifecycle(t *testing.T) {
	m := newTestManager(t, t.TempDir(), 2, 0)
	defer m.Close()
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	st := postJob(t, ts, `{"experiments":["fast"],"ns":[4,8],"trials":3,"seed":7}`)
	if st.ID == "" || st.Units != 6 {
		t.Fatalf("submitted status %+v, want 6 units", st)
	}

	recs := streamRecords(t, ts, st.ID, "")
	if len(recs) != 6 {
		t.Fatalf("streamed %d records, want 6", len(recs))
	}
	seen := map[sweep.Key]bool{}
	for _, r := range recs {
		if seen[r.Key] {
			t.Fatalf("duplicate record key %+v in stream", r.Key)
		}
		seen[r.Key] = true
		if r.Seed == 0 || r.Values["x"] == 0 {
			t.Fatalf("record %+v looks unpopulated", r)
		}
	}

	if st := getStatus(t, ts, st.ID); st.State != StateDone || st.Records != 6 {
		t.Fatalf("final status %+v, want done with 6 records", st)
	}

	// Summary: 2 groups (one field × two ns), 3 trials each.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/summary")
	if err != nil {
		t.Fatal(err)
	}
	var sum struct {
		State   State `json:"state"`
		Records int   `json:"records"`
		Groups  []struct {
			Experiment string  `json:"experiment"`
			N          int     `json:"n"`
			Field      string  `json:"field"`
			Trials     int     `json:"trials"`
			Mean       float64 `json:"mean"`
		} `json:"groups"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sum.Records != 6 || len(sum.Groups) != 2 {
		t.Fatalf("summary %+v, want 6 records in 2 groups", sum)
	}
	for _, g := range sum.Groups {
		if g.Trials != 3 || g.Field != "x" {
			t.Fatalf("summary group %+v, want 3 trials of field x", g)
		}
	}

	// CSV rendering of the same summary.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/summary?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	csv, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("Content-Type") != "text/csv" || !strings.Contains(string(csv), "experiment") {
		t.Fatalf("csv summary: ct=%q body=%q", resp.Header.Get("Content-Type"), csv)
	}

	// Cancel after completion: idempotent no-op.
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var after Status
	if err := json.NewDecoder(resp.Body).Decode(&after); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if after.State != StateDone {
		t.Fatalf("cancel of a done job moved it to %q", after.State)
	}

	// Error paths: unknown job, malformed body, unknown field.
	if resp, _ := http.Get(ts.URL + "/v1/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job returned %d, want 404", resp.StatusCode)
	}
	resp, _ = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"trails":3}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("typoed field returned %d, want 400", resp.StatusCode)
	}
}

// TestAPIUnknownExperiment asserts the 400 carries the shared UnknownName
// shape — the message lists what does exist — through both the synthetic
// resolver and the real expt catalog the daemon wires.
func TestAPIUnknownExperiment(t *testing.T) {
	m := newTestManager(t, t.TempDir(), 1, 0)
	defer m.Close()
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiments":["nope"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown experiment returned %d, want 400", resp.StatusCode)
	}
	var apiErr struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(apiErr.Error, `unknown experiment "nope"`) || !strings.Contains(apiErr.Error, "fast, slow") {
		t.Fatalf("error %q does not carry the UnknownName listing", apiErr.Error)
	}

	// Same path against the real reproduction catalog.
	m2, err := NewManager(Config{Dir: t.TempDir(), Slots: 1, Resolve: expt.ResolvePoints})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	ts2 := httptest.NewServer(NewServer(m2))
	defer ts2.Close()
	resp, err = http.Post(ts2.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiments":["nope"],"quick":true}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest ||
		!strings.Contains(apiErr.Error, `unknown experiment "nope"`) ||
		!strings.Contains(apiErr.Error, "F2") {
		t.Fatalf("catalog resolver: %d %q, want 400 listing the suite ids", resp.StatusCode, apiErr.Error)
	}
}

// TestAPIStreamResume checks Last-Event-ID / ?after= resume semantics: the
// stream replays only records past the named key, and an unknown id
// replays from the start.
func TestAPIStreamResume(t *testing.T) {
	m := newTestManager(t, t.TempDir(), 2, 0)
	defer m.Close()
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	st := postJob(t, ts, `{"experiments":["fast"],"ns":[4],"trials":5}`)
	all := streamRecords(t, ts, st.ID, "")
	if len(all) != 5 {
		t.Fatalf("streamed %d records, want 5", len(all))
	}
	tail := streamRecords(t, ts, st.ID, all[1].Key.ID())
	if len(tail) != 3 {
		t.Fatalf("resume after record 2 streamed %d records, want 3", len(tail))
	}
	for i, r := range tail {
		if r.Key != all[2+i].Key {
			t.Fatalf("resumed stream out of order: %+v at %d", r.Key, i)
		}
	}
	// ?after= is the query-side spelling of the same id.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/records?after=" + "missing%7C1%7C2")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := len(bytes.Split(bytes.TrimSpace(data), []byte("\n"))); got != 5 {
		t.Fatalf("unknown resume id replayed %d records, want full 5", got)
	}
	// A malformed id is a client error.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/records?after=garbage")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed resume id returned %d, want 400", resp.StatusCode)
	}
}

// TestAPICancelRunning cancels a mid-flight job: DELETE must return within
// about one unit's runtime, the job ends canceled, and its checkpoint
// remains loadable.
func TestAPICancelRunning(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, dir, 1, 20*time.Millisecond)
	defer m.Close()
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	st := postJob(t, ts, `{"experiments":["slow"],"ns":[4],"trials":200}`)
	j, _ := m.Get(st.ID)
	// Wait for some progress so the cancel is genuinely mid-run.
	deadline := time.Now().Add(10 * time.Second)
	for len(j.Records()) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("job never progressed")
		}
		time.Sleep(time.Millisecond)
	}

	begin := time.Now()
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var after Status
	if err := json.NewDecoder(resp.Body).Decode(&after); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if after.State != StateCanceled {
		t.Fatalf("canceled job reports %q", after.State)
	}
	if wait := time.Since(begin); wait > 5*time.Second {
		t.Fatalf("cancel took %v — not within a unit's runtime", wait)
	}
	if after.Records >= 200 {
		t.Fatalf("cancel left %d records — nothing was actually canceled", after.Records)
	}
	done, err := sweep.LoadCheckpoint(m.RecordsPath(st.ID))
	if err != nil {
		t.Fatalf("checkpoint after cancel not loadable: %v", err)
	}
	if len(done) != after.Records {
		t.Fatalf("checkpoint holds %d records, status says %d", len(done), after.Records)
	}
}

// TestAPIRestartResume is the crash-recovery contract end to end: kill the
// daemon mid-job (leaving a torn checkpoint tail), restart on the same
// state directory, let the job finish, and require the final record set to
// be canonically byte-identical to an uninterrupted run of the same
// request — and the record stream to resume across the restart via
// Last-Event-ID without duplicating keys.
func TestAPIRestartResume(t *testing.T) {
	dir := t.TempDir()
	body := `{"experiments":["slow"],"ns":[4],"trials":10,"seed":3}`

	m1 := newTestManager(t, dir, 1, 15*time.Millisecond)
	ts1 := httptest.NewServer(NewServer(m1))
	st := postJob(t, ts1, body)
	j1, _ := m1.Get(st.ID)
	deadline := time.Now().Add(10 * time.Second)
	for len(j1.Records()) < 3 {
		if time.Now().After(deadline) {
			t.Fatal("job never progressed")
		}
		time.Sleep(time.Millisecond)
	}
	firstSeen := j1.Records()
	ts1.Close()
	m1.Close() // daemon dies between units; manifest stays non-terminal

	// Simulate a kill mid-write: a torn (newline-less) tail on the
	// checkpoint, which resume must drop and rerun.
	fh, err := os.OpenFile(m1.RecordsPath(st.ID), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.WriteString(`{"experiment":"slow","n":4,"tri`); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	m2 := newTestManager(t, dir, 1, 15*time.Millisecond)
	defer m2.Close()
	ts2 := httptest.NewServer(NewServer(m2))
	defer ts2.Close()

	// Resume the stream across the restart from the last record the first
	// daemon life delivered.
	tail := streamRecords(t, ts2, st.ID, firstSeen[len(firstSeen)-1].Key.ID())
	got := map[sweep.Key]bool{}
	for _, r := range firstSeen {
		got[r.Key] = true
	}
	for _, r := range tail {
		if got[r.Key] {
			t.Fatalf("record %+v delivered twice across the restart", r.Key)
		}
		got[r.Key] = true
	}
	if len(got) != 10 {
		t.Fatalf("stitched stream holds %d records, want 10", len(got))
	}
	if st := getStatus(t, ts2, st.ID); st.State != StateDone {
		t.Fatalf("resumed job ended %q", st.State)
	}

	// Byte-identity: the interrupted-and-resumed checkpoint canonicalizes
	// to exactly an uninterrupted run's bytes.
	canon := func(path string) []byte {
		fh, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer fh.Close()
		recs, err := sweep.ReadRecords(fh)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		b, err := sweep.CanonicalJSONL(recs)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	resumed := canon(m2.RecordsPath(st.ID))

	dir3 := t.TempDir()
	m3 := newTestManager(t, dir3, 1, 0)
	defer m3.Close()
	ts3 := httptest.NewServer(NewServer(m3))
	defer ts3.Close()
	st3 := postJob(t, ts3, body)
	streamRecords(t, ts3, st3.ID, "") // follow to completion
	uninterrupted := canon(m3.RecordsPath(st3.ID))
	if !bytes.Equal(resumed, uninterrupted) {
		t.Fatalf("resumed record set diverges from uninterrupted run:\n%s\nvs\n%s", resumed, uninterrupted)
	}
}

// TestTwoJobFairness is the starvation smoke test: with one shared slot, a
// small job submitted behind a big one must finish while the big one is
// still running — round-robin interleaves them instead of letting the big
// job's queue monopolize the pool.
func TestTwoJobFairness(t *testing.T) {
	m := newTestManager(t, t.TempDir(), 1, 15*time.Millisecond)
	defer m.Close()
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	big := postJob(t, ts, `{"experiments":["slow"],"ns":[4],"trials":40}`)
	jb, _ := m.Get(big.ID)
	deadline := time.Now().Add(10 * time.Second)
	for len(jb.Records()) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("big job never progressed")
		}
		time.Sleep(time.Millisecond)
	}
	small := postJob(t, ts, `{"experiments":["fast"],"ns":[4],"trials":2}`)
	js, _ := m.Get(small.ID)
	select {
	case <-js.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("small job starved behind the big one")
	}
	if js.State() != StateDone {
		t.Fatalf("small job ended %q", js.State())
	}
	if n := len(jb.Records()); n >= 40 {
		t.Fatalf("big job already finished (%d records) — fairness unobservable", n)
	}
	if _, err := m.Cancel(context.Background(), big.ID); err != nil {
		t.Fatal(err)
	}
}

// TestHeterogeneousJobsOverlap asserts the admission contract after the
// env-generation barrier's removal: jobs with different engine
// environments are admitted immediately and run concurrently. Both jobs
// must be observably running at the same moment, their Status timestamps
// must overlap, and each Status must surface its resolved env.
func TestHeterogeneousJobsOverlap(t *testing.T) {
	m := newTestManager(t, t.TempDir(), 2, 10*time.Millisecond)
	defer m.Close()

	a, err := m.Submit(sweep.SpecRequest{Experiments: []string{"slow"}, Ns: []int{4}, Trials: 40, Backend: "seq"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Submit(sweep.SpecRequest{Experiments: []string{"slow"}, Ns: []int{4}, Trials: 40, Backend: "dense", Par: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Direct proof the barrier is gone: both jobs report running at the
	// same poll, which strict env-generation FIFO could never allow.
	deadline := time.Now().Add(10 * time.Second)
	for a.State() != StateRunning || b.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("jobs never ran concurrently: states %q/%q", a.State(), b.State())
		}
		time.Sleep(time.Millisecond)
	}
	<-a.Done()
	<-b.Done()
	sa, sb := a.Status(), b.Status()
	if sa.State != StateDone || sb.State != StateDone {
		t.Fatalf("jobs ended %q/%q", sa.State, sb.State)
	}
	// Timestamp overlap: each job started before the other finished.
	if !sa.Started.Before(*sb.Finished) || !sb.Started.Before(*sa.Finished) {
		t.Fatalf("status timestamps do not overlap: a=[%v,%v] b=[%v,%v]",
			sa.Started, sa.Finished, sb.Started, sb.Finished)
	}
	if sa.Backend != "seq" || sa.Par != 0 {
		t.Fatalf("seq job surfaces env %s/%d, want seq/0", sa.Backend, sa.Par)
	}
	if sb.Backend != "dense" || sb.Par != 2 {
		t.Fatalf("dense job surfaces env %s/%d, want dense/2", sb.Backend, sb.Par)
	}
}

// TestHeterogeneousFairness is TestTwoJobFairness across an env boundary —
// the scenario the old admission barrier outright forbade: with one shared
// slot, a small dense-backend job submitted behind a big seq-backend job
// must finish while the big job is still running, via round-robin slot
// rotation alone.
func TestHeterogeneousFairness(t *testing.T) {
	m := newTestManager(t, t.TempDir(), 1, 15*time.Millisecond)
	defer m.Close()
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	big := postJob(t, ts, `{"experiments":["slow"],"ns":[4],"trials":40,"backend":"seq"}`)
	jb, _ := m.Get(big.ID)
	deadline := time.Now().Add(10 * time.Second)
	for len(jb.Records()) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("big job never progressed")
		}
		time.Sleep(time.Millisecond)
	}
	small := postJob(t, ts, `{"experiments":["fast"],"ns":[4],"trials":2,"backend":"dense"}`)
	js, _ := m.Get(small.ID)
	select {
	case <-js.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("small dense job starved behind the big seq one")
	}
	if js.State() != StateDone {
		t.Fatalf("small job ended %q", js.State())
	}
	if n := len(jb.Records()); n >= 40 {
		t.Fatalf("big job already finished (%d records) — fairness unobservable", n)
	}
	if st := getStatus(t, ts, small.ID); st.Backend != "dense" {
		t.Fatalf("small job surfaces backend %q, want dense", st.Backend)
	}
	if _, err := m.Cancel(context.Background(), big.ID); err != nil {
		t.Fatal(err)
	}
}
