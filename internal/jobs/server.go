package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"

	"github.com/popsim/popsize/internal/sweep"
)

// Server exposes the Manager over HTTP/JSON — the popsimd wire API:
//
//	POST   /v1/jobs               submit a sweep.SpecRequest; 201 + status
//	GET    /v1/jobs               list job statuses, newest first
//	GET    /v1/jobs/{id}          one job's status
//	GET    /v1/jobs/{id}/records  stream JSONL records (x-ndjson); resumes
//	                              from Last-Event-ID / ?after=<key id>;
//	                              ?follow=0 returns the current snapshot
//	GET    /v1/jobs/{id}/summary  bootstrap-CI aggregation (json or ?format=csv)
//	DELETE /v1/jobs/{id}          cancel; returns the final status
//	GET    /healthz               liveness
//
// Record lines on the wire are exactly the sweep checkpoint lines
// (Record.JSONL), so a client can pipe the stream straight back into any
// tool that reads sweep JSONL.
type Server struct {
	m   *Manager
	mux *http.ServeMux
}

// NewServer wires the routes.
func NewServer(m *Manager) *Server {
	s := &Server{m: m, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.health)
	s.mux.HandleFunc("POST /v1/jobs", s.submit)
	s.mux.HandleFunc("GET /v1/jobs", s.list)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	s.mux.HandleFunc("GET /v1/jobs/{id}/records", s.records)
	s.mux.HandleFunc("GET /v1/jobs/{id}/summary", s.summary)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON writes v as a JSON response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes the service's error shape, {"error": "..."}.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) health(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	req, err := sweep.DecodeSpecRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.m.Submit(req)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrInternal) {
			code = http.StatusInternalServerError
		}
		writeError(w, code, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID())
	writeJSON(w, http.StatusCreated, j.Status())
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	jobs := s.m.List()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// lookup resolves {id}, writing the 404 itself when absent.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.m.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("jobs: no job %s", id))
	}
	return j, ok
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookup(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

// records streams the job's record lines as application/x-ndjson. The
// stream resumes after the record named by the Last-Event-ID header or the
// ?after= query parameter (a Key.ID, "experiment|n|trial"); an unknown id
// replays from the start and the client dedups by key. By default the
// stream follows the job until it reaches a terminal state; ?follow=0
// returns only the records completed so far.
func (s *Server) records(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	after := r.Header.Get("Last-Event-ID")
	if q := r.URL.Query().Get("after"); q != "" {
		after = q
	}
	idx := 0
	if after != "" {
		k, err := sweep.ParseKeyID(after)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		idx = j.IndexAfter(k)
	}
	follow := true
	if q := r.URL.Query().Get("follow"); q == "0" || q == "false" {
		follow = false
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	for {
		recs, updated, st := j.RecordsFrom(idx)
		for _, rec := range recs {
			line, err := rec.JSONL()
			if err != nil {
				return
			}
			if _, err := w.Write(line); err != nil {
				return
			}
		}
		idx += len(recs)
		if fl != nil {
			fl.Flush()
		}
		if !follow || st.Terminal() {
			return
		}
		select {
		case <-updated:
		case <-r.Context().Done():
			return
		}
	}
}

// jsonFloat marshals like sweep.Values: non-finite values become the
// strings "NaN"/"+Inf"/"-Inf" instead of breaking the whole response.
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	x := float64(f)
	switch {
	case math.IsNaN(x):
		return []byte(`"NaN"`), nil
	case math.IsInf(x, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(x, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(x)
}

// summaryRow is one aggregated (experiment, n, field) cell on the wire.
type summaryRow struct {
	Experiment string    `json:"experiment"`
	N          int       `json:"n"`
	Field      string    `json:"field"`
	Trials     int       `json:"trials"`
	Dropped    int       `json:"dropped"`
	Mean       jsonFloat `json:"mean"`
	Std        jsonFloat `json:"std"`
	CILo       jsonFloat `json:"ci_lo"`
	CIHi       jsonFloat `json:"ci_hi"`
}

// summary aggregates the records completed so far: per-(experiment, n,
// field) mean/stddev with a 95% bootstrap CI, seeded from the job's base
// seed so the same record set always yields the same summary. ?format=csv
// renders the human-readable table instead; ?resamples= overrides the
// bootstrap resample count.
func (s *Server) summary(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	resamples := sweep.BootstrapResamples
	if q := r.URL.Query().Get("resamples"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("jobs: bad resamples %q", q))
			return
		}
		resamples = v
	}
	recs := j.Records()
	seed := j.Request().Seed
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		aggs := sweep.Aggregate(recs, resamples, seed)
		groups := make([]sweep.Group, 0, len(aggs))
		for g := range aggs {
			groups = append(groups, g)
		}
		sort.Slice(groups, func(i, k int) bool {
			a, b := groups[i], groups[k]
			if a.Experiment != b.Experiment {
				return a.Experiment < b.Experiment
			}
			if a.N != b.N {
				return a.N < b.N
			}
			return a.Field < b.Field
		})
		rows := make([]summaryRow, len(groups))
		for i, g := range groups {
			a := aggs[g]
			rows[i] = summaryRow{
				Experiment: g.Experiment, N: g.N, Field: g.Field,
				Trials: a.Trials, Dropped: a.Dropped,
				Mean: jsonFloat(a.Mean), Std: jsonFloat(a.Std),
				CILo: jsonFloat(a.CILo), CIHi: jsonFloat(a.CIHi),
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"id":        j.ID(),
			"state":     j.State(),
			"records":   len(recs),
			"resamples": resamples,
			"groups":    rows,
		})
	case "csv":
		t := sweep.SummaryTable(recs, resamples, seed)
		w.Header().Set("Content-Type", "text/csv")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, t.CSV())
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("jobs: unknown format %q (json or csv)", format))
	}
}

// cancel stops the job (pending: withdrawn; running: stops between units,
// which completes within about one unit's runtime) and returns the final
// status. Canceling a terminal job is a no-op returning its status.
func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	j2, err := s.m.Cancel(r.Context(), j.ID())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, j2.Status())
}
