package jobs

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Pool is a bounded set of worker slots shared by every running job, with
// round-robin fairness across clients: when slots are contended, a freed
// slot goes to the *next client* in rotation, not to whichever waiter
// queued first. A big job that keeps a thousand units queued therefore
// cannot starve a small job — the small job's waiters are interleaved one
// grant per rotation, the same spirit as pop's effectiveWorkers budgeting
// (every concurrent consumer gets its share of the core budget, rather
// than first-come-takes-all).
//
// Within one client, waiters are served FIFO.
type Pool struct {
	mu   sync.Mutex
	free int
	// ring holds the clients with at least one pending waiter, in grant
	// rotation order: grantLocked serves ring[0] and moves it to the back
	// if it still has waiters.
	ring []*PoolClient
}

// NewPool returns a pool of `slots` worker slots (<= 0: GOMAXPROCS).
func NewPool(slots int) *Pool {
	if slots <= 0 {
		slots = runtime.GOMAXPROCS(0)
	}
	return &Pool{free: slots}
}

// PoolClient is one job's handle on the pool; all of a job's Acquire calls
// go through its own client, which is what the round-robin rotation is
// keyed on.
type PoolClient struct {
	p       *Pool
	waiters []chan struct{}
	closed  bool
}

// Client registers a new client.
func (p *Pool) Client() *PoolClient { return &PoolClient{p: p} }

// Acquire blocks until a slot is granted or ctx is canceled (returning
// ctx's error). Every successful Acquire must be paired with one Release.
func (c *PoolClient) Acquire(ctx context.Context) error {
	p := c.p
	p.mu.Lock()
	if c.closed {
		p.mu.Unlock()
		return fmt.Errorf("jobs: acquire on a closed pool client")
	}
	// Take a free slot only when nobody is queued: jumping past the ring
	// would let a greedy client bypass the rotation.
	if p.free > 0 && len(p.ring) == 0 {
		p.free--
		p.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	if len(c.waiters) == 0 {
		p.ring = append(p.ring, c)
	}
	c.waiters = append(c.waiters, ch)
	p.mu.Unlock()

	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		p.mu.Lock()
		select {
		case <-ch:
			// The grant raced the cancellation: the slot is ours, so pass
			// it on rather than leaking it.
			p.grantLocked()
		default:
			c.removeWaiterLocked(ch)
		}
		p.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns a slot to the pool, handing it straight to the next
// waiter in rotation when there is one.
func (c *PoolClient) Release() {
	c.p.mu.Lock()
	c.p.grantLocked()
	c.p.mu.Unlock()
}

// Close withdraws the client from the rotation. The job runner cancels
// its workers' ctx before closing, so by the time a client closes its
// waiters have drained through Acquire's cancellation path; withdrawn
// waiters that somehow remain finish via that same path, never a grant.
func (c *PoolClient) Close() {
	c.p.mu.Lock()
	c.closed = true
	c.waiters = nil
	for i, rc := range c.p.ring {
		if rc == c {
			c.p.ring = append(c.p.ring[:i], c.p.ring[i+1:]...)
			break
		}
	}
	c.p.mu.Unlock()
}

// grantLocked hands one slot to the next client in rotation, or banks it
// as free when nobody waits.
func (p *Pool) grantLocked() {
	for len(p.ring) > 0 {
		c := p.ring[0]
		p.ring = p.ring[1:]
		if len(c.waiters) == 0 {
			continue
		}
		ch := c.waiters[0]
		c.waiters = c.waiters[1:]
		if len(c.waiters) > 0 {
			p.ring = append(p.ring, c)
		}
		close(ch)
		return
	}
	p.free++
}

// removeWaiterLocked drops one canceled waiter, fixing the client's ring
// membership.
func (c *PoolClient) removeWaiterLocked(ch chan struct{}) {
	for i, w := range c.waiters {
		if w == ch {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			break
		}
	}
	if len(c.waiters) == 0 {
		for i, rc := range c.p.ring {
			if rc == c {
				c.p.ring = append(c.p.ring[:i], c.p.ring[i+1:]...)
				break
			}
		}
	}
}
