package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/popsim/popsize/internal/sweep"
)

// ErrInternal marks Submit failures that are the daemon's fault (id
// generation, state-directory writes) rather than the client's; the HTTP
// layer maps it to 500 where every other Submit error is a 400.
var ErrInternal = errors.New("jobs: internal error")

// Resolver turns a validated request into its sweep points. Any error it
// returns is a client error (unknown experiment id, bad grid) and is
// reported as such by the HTTP layer. The daemon wires expt.ResolvePoints.
type Resolver func(req sweep.SpecRequest) ([]sweep.Point, error)

// Config assembles a Manager.
type Config struct {
	// Dir is the state directory: one <id>.json manifest and one
	// <id>.jsonl record checkpoint per job. Created if missing.
	Dir string
	// Slots bounds the shared worker pool (<= 0: GOMAXPROCS).
	Slots int
	// Resolve maps requests to sweep points. The resolver binds each
	// request's engine environment (backend, par) into the returned trial
	// closures, so jobs with different environments run concurrently —
	// the Manager imposes no admission ordering beyond slot fairness.
	Resolve Resolver
}

// Manager owns the job registry, the shared slot pool, and the state
// directory. It is safe for concurrent use by the HTTP handlers.
type Manager struct {
	cfg  Config
	pool *Pool
	// slots is the pool size (resolved from cfg.Slots), which is also the
	// per-job worker-goroutine bound.
	slots int

	baseCtx context.Context
	stopAll context.CancelFunc

	mu    sync.Mutex
	jobs  map[string]*Job
	queue []*Job // pending, admitted FIFO
}

// NewManager opens (or creates) the state directory, reloads every job
// recorded there — terminal jobs become queryable history, unfinished ones
// are requeued and resume through their checkpoints — and starts the
// admission loop.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Resolve == nil {
		return nil, fmt.Errorf("jobs: Config.Resolve is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	slots := cfg.Slots
	if slots <= 0 {
		slots = runtime.GOMAXPROCS(0)
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:     cfg,
		pool:    NewPool(slots),
		slots:   slots,
		baseCtx: ctx,
		stopAll: cancel,
		jobs:    map[string]*Job{},
	}
	if err := m.reload(); err != nil {
		cancel()
		return nil, err
	}
	m.mu.Lock()
	m.admitLocked()
	m.mu.Unlock()
	return m, nil
}

// manifest is the persisted job descriptor (<id>.json). The record stream
// lives next to it in <id>.jsonl — the sweep checkpoint format verbatim.
type manifest struct {
	ID       string            `json:"id"`
	Request  sweep.SpecRequest `json:"request"`
	State    State             `json:"state"`
	Error    string            `json:"error,omitempty"`
	Created  time.Time         `json:"created"`
	Started  time.Time         `json:"started"`
	Finished time.Time         `json:"finished"`
}

func (m *Manager) manifestPath(id string) string {
	return filepath.Join(m.cfg.Dir, id+".json")
}

// RecordsPath returns the job's JSONL checkpoint path.
func (m *Manager) RecordsPath(id string) string {
	return filepath.Join(m.cfg.Dir, id+".jsonl")
}

// persist writes the job's manifest atomically (tmp + rename), so a kill
// mid-write can never corrupt a manifest into an unparseable state.
func (m *Manager) persist(j *Job) error {
	j.mu.Lock()
	man := manifest{
		ID: j.id, Request: j.req, State: j.state, Error: j.errMsg,
		Created: j.created, Started: j.started, Finished: j.finished,
	}
	j.mu.Unlock()
	// A running job's manifest persists as pending: if the daemon dies
	// before the next write, the restarted daemon must requeue it, and
	// "running" would be a lie until admission.
	if man.State == StateRunning {
		man.State = StatePending
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	tmp := m.manifestPath(j.id) + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, m.manifestPath(j.id))
}

// reload scans the state directory, rebuilding the registry: records are
// replayed from each job's checkpoint (file order = original completion
// order, so Last-Event-ID positions survive the restart), and non-terminal
// jobs are requeued in creation order.
func (m *Manager) reload() error {
	entries, err := os.ReadDir(m.cfg.Dir)
	if err != nil {
		return err
	}
	var requeue []*Job
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".tmp") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(m.cfg.Dir, name))
		if err != nil {
			return err
		}
		var man manifest
		if err := json.Unmarshal(data, &man); err != nil {
			return fmt.Errorf("jobs: manifest %s: %w", name, err)
		}
		j, err := newJob(man.ID, man.Request, man.Created)
		if err != nil {
			return fmt.Errorf("jobs: manifest %s: %w", name, err)
		}
		j.state = man.State
		j.errMsg = man.Error
		j.started = man.Started
		j.finished = man.Finished
		// Replay the checkpointed records. A torn tail (daemon killed
		// mid-write) is dropped here exactly as the resume path drops it:
		// that trial reruns.
		if fh, err := os.Open(m.RecordsPath(man.ID)); err == nil {
			recs, rerr := sweep.ReadRecords(fh)
			fh.Close()
			if rerr != nil && rerr != sweep.ErrTornTail {
				return fmt.Errorf("jobs: records %s: %w", m.RecordsPath(man.ID), rerr)
			}
			for _, rec := range recs {
				if !j.have[rec.Key] {
					j.have[rec.Key] = true
					j.records = append(j.records, rec)
				}
			}
		} else if !os.IsNotExist(err) {
			return err
		}
		j.units = len(j.records) // refined when the spec resolves
		m.jobs[j.id] = j
		if !j.state.Terminal() {
			j.state = StatePending
			requeue = append(requeue, j)
		}
	}
	sort.Slice(requeue, func(i, k int) bool { return requeue[i].created.Before(requeue[k].created) })
	m.queue = append(m.queue, requeue...)
	return nil
}

// newID returns a fresh job identifier ("j-" + 8 random hex chars).
func newID() (string, error) {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return "j-" + hex.EncodeToString(b[:]), nil
}

// Submit validates and enqueues a request, resolving it immediately so a
// bad submission (unknown experiment, invalid grid) fails the POST rather
// than a job. The returned job is pending (or already running, if the
// pool admitted it synchronously).
func (m *Manager) Submit(req sweep.SpecRequest) (*Job, error) {
	req.SetDefaults()
	if err := req.Validate(); err != nil {
		return nil, err
	}
	points, err := m.cfg.Resolve(req)
	if err != nil {
		return nil, err
	}
	id, err := newID()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInternal, err)
	}
	j, err := newJob(id, req, time.Now())
	if err != nil {
		return nil, err
	}
	for _, p := range points {
		j.units += p.Trials
	}
	if err := m.persist(j); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInternal, err)
	}
	m.mu.Lock()
	m.jobs[id] = j
	m.queue = append(m.queue, j)
	m.admitLocked()
	m.mu.Unlock()
	return j, nil
}

// Get returns a job by id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns every job, newest first.
func (m *Manager) List() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].created.Equal(out[k].created) {
			return out[i].created.After(out[k].created)
		}
		return out[i].id < out[k].id
	})
	return out
}

// admitLocked starts every queued job immediately, in FIFO order. There
// is no admission gate: each job's engine environment lives in its own
// resolved trial closures, so heterogeneous jobs coexist, and the shared
// slot pool is what bounds concurrency and keeps it fair.
func (m *Manager) admitLocked() {
	for len(m.queue) > 0 {
		j := m.queue[0]
		m.queue = m.queue[1:]
		if j.State() != StatePending {
			// Canceled while queued.
			continue
		}
		ctx, cancel := context.WithCancel(m.baseCtx)
		j.mu.Lock()
		j.cancel = cancel
		j.mu.Unlock()
		go m.run(ctx, j)
	}
}

// run executes one admitted job to a terminal state (or to daemon
// shutdown, which leaves it resumable).
func (m *Manager) run(ctx context.Context, j *Job) {
	defer close(j.done)
	j.setState(StateRunning, "")
	// The running state is persisted as pending (see persist) purely so a
	// killed daemon requeues it; failures to persist are not fatal to the
	// run itself.
	_ = m.persist(j)

	fail := func(msg string) {
		j.setState(StateFailed, msg)
		_ = m.persist(j)
	}
	points, err := m.cfg.Resolve(j.req)
	if err != nil {
		fail(err.Error())
		return
	}
	// Stamp the spec from the env resolved at job construction — the same
	// values the resolver bound into the trial closures — rather than
	// re-parsing the request's backend string.
	seed := j.req.Seed
	if seed == 0 {
		seed = 1
	}
	spec := sweep.Spec{
		Points:   points,
		BaseSeed: seed,
		Backend:  j.env.backend,
		Workers:  j.req.Workers,
		Par:      j.env.par,
	}
	// Every job may spawn up to the whole pool's worth of worker
	// goroutines; actual concurrency is governed by slot acquisition, so
	// a lone job uses the full pool and concurrent jobs share it fairly.
	if spec.Workers <= 0 || spec.Workers > m.slots {
		spec.Workers = m.slots
	}
	done, out, err := sweep.OpenCheckpoint(m.RecordsPath(j.id), true)
	if err != nil {
		fail(err.Error())
		return
	}
	client := m.pool.Client()
	opt := sweep.Options{
		Out:      out,
		Done:     done,
		OnRecord: j.append,
		Acquire: func(ctx context.Context) (func(), error) {
			if err := client.Acquire(ctx); err != nil {
				return nil, err
			}
			return client.Release, nil
		},
	}
	_, runErr := sweep.RunContext(ctx, spec, opt)
	client.Close()
	cerr := out.Close()

	j.mu.Lock()
	apiCancel := j.canceledV
	j.mu.Unlock()
	switch {
	case apiCancel:
		j.setState(StateCanceled, "")
		_ = m.persist(j)
	case m.baseCtx.Err() != nil:
		// Daemon shutdown: not a terminal state — the persisted manifest
		// still says pending, so the next daemon life resumes the job.
		j.setState(StatePending, "")
	case runErr != nil:
		fail(runErr.Error())
	case cerr != nil:
		fail(cerr.Error())
	default:
		j.setState(StateDone, "")
		_ = m.persist(j)
	}
}

// Cancel stops a job: pending jobs are withdrawn immediately; running
// jobs stop between units (sweep cancellation), which takes at most about
// one unit's runtime — Cancel waits for that, bounded by ctx. Terminal
// jobs are left as they are (idempotent). The job's checkpoint always
// remains loadable.
func (m *Manager) Cancel(ctx context.Context, id string) (*Job, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("jobs: no job %s", id)
	}
	j.mu.Lock()
	st := j.state
	j.canceledV = st == StatePending || st == StateRunning
	cancel := j.cancel
	j.mu.Unlock()
	if st == StatePending {
		// Withdraw under m.mu, so admission cannot race the decision.
		for i, q := range m.queue {
			if q == j {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				break
			}
		}
	}
	m.mu.Unlock()
	switch st {
	case StatePending:
		j.setState(StateCanceled, "")
		if err := m.persist(j); err != nil {
			return j, err
		}
		return j, nil
	case StateRunning:
		cancel()
		select {
		case <-j.done:
			return j, nil
		case <-ctx.Done():
			return j, ctx.Err()
		}
	default:
		return j, nil
	}
}

// Close stops every running job (their manifests stay pending, so a new
// Manager on the same directory resumes them) and waits for the runners
// to exit.
func (m *Manager) Close() {
	m.stopAll()
	m.mu.Lock()
	var running []*Job
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.cancel != nil && !j.state.Terminal() {
			running = append(running, j)
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	for _, j := range running {
		<-j.done
	}
}
