package jobs

import (
	"context"
	"testing"
	"time"
)

// waitWaiters blocks until the pool holds exactly want queued waiters.
func waitWaiters(t *testing.T, p *Pool, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		p.mu.Lock()
		n := 0
		for _, c := range p.ring {
			n += len(c.waiters)
		}
		p.mu.Unlock()
		if n == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never reached %d waiters (have %d)", want, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPoolRoundRobin distinguishes the pool's rotation from a global FIFO:
// with client a queueing two waiters before client b queues one, FIFO
// would grant a, a, b — the rotation must grant a, b, a.
func TestPoolRoundRobin(t *testing.T) {
	p := NewPool(1)
	a, b := p.Client(), p.Client()
	holder := p.Client()
	if err := holder.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	grants := make(chan string, 3)
	spawn := func(c *PoolClient, label string) {
		go func() {
			if err := c.Acquire(context.Background()); err != nil {
				t.Errorf("%s: %v", label, err)
				grants <- "error"
				return
			}
			grants <- label
			c.Release()
		}()
	}
	spawn(a, "a1")
	waitWaiters(t, p, 1)
	spawn(a, "a2")
	waitWaiters(t, p, 2)
	spawn(b, "b1")
	waitWaiters(t, p, 3)

	holder.Release()
	got := []string{<-grants, <-grants, <-grants}
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order %v, want %v (round-robin across clients)", got, want)
		}
	}
}

// TestPoolAcquireCancel checks that a canceled waiter neither blocks nor
// leaks: after the cancellation, a release banks the slot as free again.
func TestPoolAcquireCancel(t *testing.T) {
	p := NewPool(1)
	holder := p.Client()
	if err := holder.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	c := p.Client()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- c.Acquire(ctx) }()
	waitWaiters(t, p, 1)
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("canceled acquire returned %v, want context.Canceled", err)
	}
	holder.Release()
	p.mu.Lock()
	free, ring := p.free, len(p.ring)
	p.mu.Unlock()
	if free != 1 || ring != 0 {
		t.Fatalf("after cancel+release: free=%d ring=%d, want 1 free and empty ring", free, ring)
	}
	// The slot must still be grantable.
	if err := c.Acquire(context.Background()); err != nil {
		t.Fatalf("reacquire after cancel: %v", err)
	}
	c.Release()
}
