// Package jobs turns the sweep subsystem into a multi-tenant service
// substrate: a Manager owns a directory of per-job JSONL checkpoints, a
// bounded worker-slot Pool shared fairly across concurrent jobs, and a
// registry of Jobs — submitted sweep requests progressing through a small
// state machine (pending → running → done/failed/canceled). Each job's
// record stream is exactly the sweep's JSONL wire format; because every
// record is checkpointed as it completes and sweep resume is canonical
// (byte-identical merged streams), a daemon kill at any point is
// recoverable: on restart the Manager reloads every manifest and resumes
// unfinished jobs through the same LoadCheckpoint path an interrupted CLI
// sweep uses.
package jobs

import (
	"context"
	"sync"
	"time"

	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/sweep"
)

// State is a job's lifecycle stage.
type State string

const (
	// StatePending: accepted and queued, waiting for admission. Admission
	// is immediate for any number of jobs — each job's engine environment
	// is bound into its own resolved trial closures, so heterogeneous
	// jobs coexist — and the shared slot pool governs actual concurrency.
	StatePending State = "pending"
	// StateRunning: units are executing (or resuming after a restart).
	StateRunning State = "running"
	// StateDone: every unit completed and is checkpointed.
	StateDone State = "done"
	// StateFailed: the run stopped on an error (resolution failure or a
	// checkpoint write failure); Error carries the message.
	StateFailed State = "failed"
	// StateCanceled: stopped by DELETE /v1/jobs/{id}. Completed units
	// remain checkpointed, so the job's records stay readable.
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// env is the job's resolved engine environment — the request's backend
// string parsed once at job construction, plus its intra-trial
// parallelism target. It is per-job data: the resolver binds the same
// values into the trial closures, the spec stamp reuses it (no re-parse),
// and Status surfaces it; nothing about it is process-wide.
type env struct {
	backend pop.Backend
	par     int
}

// Job is one submitted sweep request and its progress. All mutable state
// is guarded by mu; readers get consistent snapshots via Status and
// RecordsFrom.
type Job struct {
	id  string
	req sweep.SpecRequest
	env env

	mu       sync.Mutex
	state    State
	errMsg   string
	units    int // total trials in the resolved spec (0 until resolved)
	records  []sweep.Record
	have     map[sweep.Key]bool // dedup: resume replays reused records
	updated  chan struct{}      // closed+replaced on every append/state change
	created  time.Time
	started  time.Time
	finished time.Time

	cancel    context.CancelFunc // non-nil while running
	canceledV bool               // canceled via API (vs daemon shutdown)
	done      chan struct{}      // closed when the runner goroutine exits
}

// newJob builds a job, resolving its engine environment from the request
// — the one ParseBackend site on the job path; Submit and manifest reload
// both store the result here.
func newJob(id string, req sweep.SpecRequest, created time.Time) (*Job, error) {
	be, err := req.ParseBackend()
	if err != nil {
		return nil, err
	}
	return &Job{
		id: id, req: req, env: env{backend: be, par: max(req.Par, 0)},
		state:   StatePending,
		have:    map[sweep.Key]bool{},
		updated: make(chan struct{}),
		created: created,
		done:    make(chan struct{}),
	}, nil
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Request returns the submitted request.
func (j *Job) Request() sweep.SpecRequest { return j.req }

// State returns the current lifecycle stage.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Status is the wire representation of a job's progress (the service's
// job-status JSON).
type Status struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Units is the total number of trials the resolved spec holds;
	// Records of them are completed (checkpointed), reused ones included.
	Units   int               `json:"units"`
	Records int               `json:"records"`
	Error   string            `json:"error,omitempty"`
	Request sweep.SpecRequest `json:"request"`
	// Backend and Par echo the job's resolved engine environment: the
	// request's backend string parsed to its canonical name, and the
	// intra-trial parallelism target (0 = auto).
	Backend string `json:"backend"`
	Par     int    `json:"par"`

	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.id, State: j.state,
		Units: j.units, Records: len(j.records),
		Error: j.errMsg, Request: j.req, Created: j.created,
		Backend: j.env.backend.String(), Par: j.env.par,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// notifyLocked wakes every subscriber blocked on the previous updated
// channel. Callers hold mu.
func (j *Job) notifyLocked() {
	close(j.updated)
	j.updated = make(chan struct{})
}

// append folds one completed (or replayed) record into the stream,
// deduplicating by key: a resumed sweep re-observes its checkpointed
// records in unit order, and a subscriber that already saw the key must
// not receive it twice.
func (j *Job) append(rec sweep.Record) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.have[rec.Key] {
		return
	}
	j.have[rec.Key] = true
	j.records = append(j.records, rec)
	j.notifyLocked()
}

// setState moves the job through its lifecycle, stamping the transition
// times.
func (j *Job) setState(s State, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = s
	if errMsg != "" {
		j.errMsg = errMsg
	}
	now := time.Now()
	switch {
	case s == StateRunning && j.started.IsZero():
		j.started = now
	case s.Terminal():
		j.finished = now
	}
	j.notifyLocked()
}

// Records returns a snapshot of the completed records, in completion
// (stream) order.
func (j *Job) Records() []sweep.Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]sweep.Record, len(j.records))
	copy(out, j.records)
	return out
}

// RecordsFrom returns the records at stream positions >= idx, the channel
// that will be closed on the next append or state change, and the current
// state — everything a streaming subscriber needs for one iteration of
// emit-then-wait.
func (j *Job) RecordsFrom(idx int) (recs []sweep.Record, updated <-chan struct{}, st State) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if idx < len(j.records) {
		recs = make([]sweep.Record, len(j.records)-idx)
		copy(recs, j.records[idx:])
	}
	return recs, j.updated, j.state
}

// IndexAfter returns the stream position just past the record with the
// given key, or 0 when the key is absent — the Last-Event-ID resume rule:
// an unknown id (e.g. a torn-tail record whose rerun was re-keyed by a
// daemon restart) replays from the start, and the client dedups by key.
func (j *Job) IndexAfter(k sweep.Key) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i, r := range j.records {
		if r.Key == k {
			return i + 1
		}
	}
	return 0
}

// Done returns the channel closed when the job's runner goroutine exits
// (never closed for jobs that finished in a previous daemon life and were
// reloaded terminal — their state already reports it).
func (j *Job) Done() <-chan struct{} { return j.done }
