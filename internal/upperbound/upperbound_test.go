package upperbound

import (
	"math"
	"math/bits"
	"testing"

	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/pop"
)

// TestMassInvariant: Σ 2^Lvl over live ℓ-agents equals n in every reachable
// configuration (checked along a real execution).
func TestMassInvariant(t *testing.T) {
	p := MustNew(core.FastConfig())
	const n = 300
	s := p.NewSim(n, pop.WithSeed(4))
	for i := 0; i < 50; i++ {
		s.RunTime(5)
		if m := Mass(s); m != n {
			t.Fatalf("tournament mass = %d at time %.0f, want %d", m, s.Time(), n)
		}
	}
}

// TestKexExact: once the tournament finishes, kex = ⌊log2 n⌋ + 1 exactly —
// the probability-1 guarantee 2^(kex−1) <= n <= 2^kex.
func TestKexExact(t *testing.T) {
	p := MustNew(core.FastConfig())
	for _, n := range []int{2, 3, 7, 8, 33, 100, 128} {
		for seed := uint64(0); seed < 3; seed++ {
			s := p.NewSim(n, pop.WithSeed(seed))
			ok, _ := s.RunUntil(TournamentDone, 5, float64(200*n))
			if !ok {
				t.Fatalf("n=%d seed=%d: tournament did not finish", n, seed)
			}
			// Let kex propagate to everyone.
			s.RunTime(40 * math.Log2(float64(n)+2))
			want := uint8(bits.Len(uint(n))) // ⌊log2 n⌋ + 1
			for i, a := range s.Agents() {
				if a.Kex != want {
					t.Fatalf("n=%d seed=%d agent %d: kex = %d, want %d", n, seed, i, a.Kex, want)
				}
			}
		}
	}
}

// TestUpperBoundHolds: after stabilization, every agent's report is an
// upper bound on log2 n (the probability-1 correctness of Section 3.3).
func TestUpperBoundHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("full runs are not short")
	}
	p := MustNew(core.FastConfig())
	const n = 200
	logN := math.Log2(n)
	for seed := uint64(0); seed < 5; seed++ {
		s := p.NewSim(n, pop.WithSeed(seed))
		ok, _ := s.RunUntil(TournamentDone, 10, float64(500*n))
		if !ok {
			t.Fatalf("seed %d: tournament did not finish", seed)
		}
		s.RunTime(60 * math.Log2(n))
		for i, a := range s.Agents() {
			v, _ := Report(a)
			if v < logN {
				t.Errorf("seed %d agent %d: report %.2f < log n = %.2f", seed, i, v, logN)
			}
		}
	}
}

// TestReportPrefersLargest verifies the max(k+3.7, kex) arithmetic.
func TestReportPrefersLargest(t *testing.T) {
	mainOut := core.State{HasOutput: true, OutSum: 36, OutK: 4} // estimate 10
	tests := []struct {
		name string
		st   State
		want float64
	}{
		{"main wins", State{Main: mainOut, Kex: 5}, 10 + SlackBonus},
		{"kex wins", State{Main: mainOut, Kex: 20}, 20},
		{"no main output", State{Main: core.State{}, Kex: 7}, 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got, _ := Report(tt.st); got != tt.want {
				t.Errorf("Report() = %v, want %v", got, tt.want)
			}
		})
	}
}

// TestMergeRule: equal-level ℓ agents merge into ℓ(i+1) and f(i+1).
func TestMergeRule(t *testing.T) {
	p := MustNew(core.FastConfig())
	a := p.Initial(0, nil)
	b := p.Initial(1, nil)
	a.Lvl, b.Lvl = 3, 3
	ga, gb := p.Rule(a, b, testRand())
	if !ga.IsL || ga.Lvl != 4 {
		t.Errorf("winner = %+v, want live ℓ4", ga)
	}
	if gb.IsL || gb.Lvl != 4 {
		t.Errorf("loser = %+v, want dead f4", gb)
	}
	if ga.Kex != 5 || gb.Kex != 5 {
		t.Errorf("kex = %d,%d; want 5,5", ga.Kex, gb.Kex)
	}
}
