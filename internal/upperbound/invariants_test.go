package upperbound

import (
	"testing"
	"testing/quick"

	"github.com/popsim/popsize/internal/core"
)

// TestRuleMassPreservation: a single Rule application preserves the
// tournament mass 2^lvlA + 2^lvlB of two live ℓ-agents (merge turns two
// 2^i into one 2^(i+1)) and never resurrects a dead agent.
func TestRuleMassPreservation(t *testing.T) {
	p := MustNew(core.FastConfig())
	r := testRand()
	f := func(lvlA, lvlB uint8, aliveA, aliveB bool) bool {
		a := State{Main: core.Initial(), IsL: aliveA, Lvl: lvlA % 20, Kex: 1}
		b := State{Main: core.Initial(), IsL: aliveB, Lvl: lvlB % 20, Kex: 1}
		mass := func(s ...State) uint64 {
			var m uint64
			for _, x := range s {
				if x.IsL {
					m += 1 << x.Lvl
				}
			}
			return m
		}
		before := mass(a, b)
		ga, gb := p.Rule(a, b, r)
		if mass(ga, gb) != before {
			return false
		}
		if !aliveA && ga.IsL || !aliveB && gb.IsL {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestKexMonotone: kex never decreases at either agent.
func TestKexMonotone(t *testing.T) {
	p := MustNew(core.FastConfig())
	r := testRand()
	f := func(kexA, kexB, lvlA, lvlB uint8) bool {
		a := State{Main: core.Initial(), IsL: true, Lvl: lvlA % 20, Kex: kexA%20 + 1}
		b := State{Main: core.Initial(), IsL: true, Lvl: lvlB % 20, Kex: kexB%20 + 1}
		ga, gb := p.Rule(a, b, r)
		return ga.Kex >= a.Kex && gb.Kex >= b.Kex
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
