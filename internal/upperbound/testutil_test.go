package upperbound

import "math/rand/v2"

func testRand() *rand.Rand {
	return rand.New(rand.NewPCG(21, 22))
}
