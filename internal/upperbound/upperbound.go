// Package upperbound implements Section 3.3: probability-1 estimation of an
// upper bound on log n. It runs the main Log-Size-Estimation protocol
// alongside a slow, exact backup tournament:
//
//	ℓi, ℓi → ℓi+1, fi+1        fi, fj → fi, fi  (j < i)
//
// Two ℓ-agents at the same level merge; an ℓ-agent at level i represents 2^i
// original agents, so when no equal-level pair remains the live levels are
// exactly the binary representation of n and the maximum level is ⌊log2 n⌋.
// Each agent propagates kex = maxLevel + 1 by epidemic, which therefore
// stabilizes to ⌊log2 n⌋ + 1 >= log2 n with probability 1 (the paper's
// invariant 2^(kex−1) <= n <= 2^kex, see DESIGN.md deviation 5).
//
// The reported value is max(k + 3.7, kex), where k is the main protocol's
// estimate; it converges to a value >= log2 n with probability 1 while
// remaining <= log n + 9.4 w.h.p. (Section 3.3).
package upperbound

import (
	"math/rand/v2"

	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/pop"
)

// SlackBonus is the +3.7 from Section 3.3 added to the main estimate so
// that k >= log n w.h.p., making the overall bound 5.7 + 3.7 = 9.4.
const SlackBonus = 3.7

// State combines the main-protocol state with the backup tournament.
type State struct {
	// Main is the embedded Log-Size-Estimation state.
	Main core.State
	// IsL marks an agent still alive in the merge tournament.
	IsL bool
	// Lvl is the agent's tournament level (represents 2^Lvl agents).
	Lvl uint8
	// Kex is the propagated maximum level + 1; stabilizes to ⌊log2 n⌋+1.
	Kex uint8
}

// Protocol runs the main protocol and the backup tournament side by side.
type Protocol struct {
	main *core.Protocol
}

// New returns the combined protocol over the given main-protocol config.
func New(cfg core.Config) (*Protocol, error) {
	m, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Protocol{main: m}, nil
}

// MustNew is New, panicking on an invalid configuration.
func MustNew(cfg core.Config) *Protocol {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Initial returns the uniform initial state: main initial, tournament level
// 0 (every agent starts as ℓ0), kex = 1.
func (p *Protocol) Initial(_ int, _ *rand.Rand) State {
	return State{Main: core.Initial(), IsL: true, Lvl: 0, Kex: 1}
}

// Rule runs the main transition and then the backup tournament plus the
// kex epidemic.
func (p *Protocol) Rule(rec, sen State, r *rand.Rand) (State, State) {
	rec.Main, sen.Main = p.main.Rule(rec.Main, sen.Main, r)

	if rec.IsL && sen.IsL && rec.Lvl == sen.Lvl {
		rec.Lvl++
		sen.IsL = false
		sen.Lvl = rec.Lvl // the fi+1 agent carries the new level's index
	}
	rec.Kex = maxKex(rec)
	sen.Kex = maxKex(sen)
	if rec.Kex < sen.Kex {
		rec.Kex = sen.Kex
	} else if sen.Kex < rec.Kex {
		sen.Kex = rec.Kex
	}
	return rec, sen
}

func maxKex(a State) uint8 {
	if k := a.Lvl + 1; k > a.Kex {
		return k
	}
	return a.Kex
}

// Report returns the agent's current upper-bound estimate
// max(k + 3.7, kex). The boolean reports whether the main protocol has
// produced k yet (before that, the value is kex alone).
func Report(s State) (float64, bool) {
	est, ok := s.Main.Estimate()
	if !ok {
		return float64(s.Kex), false
	}
	if v := est + SlackBonus; v > float64(s.Kex) {
		return v, true
	}
	return float64(s.Kex), true
}

// TournamentDone reports whether no further merge is possible (all live
// ℓ-levels distinct), at which point kex has its exact final value
// ⌊log2 n⌋ + 1.
func TournamentDone(s pop.Engine[State]) bool {
	var lvls [256]int
	for a, cnt := range s.Counts() {
		if a.IsL {
			lvls[a.Lvl] += cnt
			if lvls[a.Lvl] > 1 {
				return false
			}
		}
	}
	return true
}

// Mass returns the tournament invariant Σ 2^Lvl over live ℓ-agents, which
// equals n in every reachable configuration.
func Mass(s pop.Engine[State]) uint64 {
	var m uint64
	for a, cnt := range s.Counts() {
		if a.IsL {
			m += uint64(cnt) << a.Lvl
		}
	}
	return m
}

// NewSim constructs a simulator for the protocol.
func (p *Protocol) NewSim(n int, opts ...pop.Option) *pop.Sim[State] {
	return pop.New(n, p.Initial, p.Rule, opts...)
}

// Main exposes the embedded main protocol (for convergence predicates).
func (p *Protocol) Main() *core.Protocol { return p.main }
