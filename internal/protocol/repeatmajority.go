package protocol

import (
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/sweep"
)

// Repeated majority with an undecided "?" state (SNIPPETS §3): a decided
// receiver meeting the opposite opinion becomes undecided, and an
// undecided receiver adopts the sender's opinion. Unlike approximate
// majority there is no third opinion-destroying interaction — "?" is a
// pure relay — so the dynamics are the undecided-state majority building
// block that repeated-majority constructions iterate.
const rmUndecided = 2 // states: 0, 1 (opinions), 2 ("?")

func rmTable() pop.Table[int] {
	return pop.Table[int]{
		{Rec: 0, Sen: 1}:           pop.To(rmUndecided, 1),
		{Rec: 1, Sen: 0}:           pop.To(rmUndecided, 0),
		{Rec: rmUndecided, Sen: 0}: pop.To(0, 0),
		{Rec: rmUndecided, Sen: 1}: pop.To(1, 1),
	}
}

var rmCompiled = pop.MustCompile(rmTable())

func init() {
	RegisterTable(TableSpec[int]{
		Name:    "repeatmajority",
		Desc:    "undecided-state (\"?\") majority from a 52/48 split, opinion 1 majority (table-compiled)",
		Compile: func(int) (*pop.Compiled[int], error) { return rmCompiled, nil },
		Init: func(n int, _ *rand.Rand) ([]int, []int64) {
			ones := (int64(n)*13 + 12) / 25
			return []int{1, 0}, []int64{ones, int64(n) - ones}
		},
		Converged: func(e pop.Engine[int]) bool {
			first := true
			opinion := 0
			return e.All(func(s int) bool {
				if first {
					first, opinion = false, s
				}
				return s != rmUndecided && s == opinion
			})
		},
		CheckEvery: 0.5,
		MaxTime:    func(n int) float64 { return 48*math.Log2(float64(n)) + 96 },
		Values: func(e pop.Engine[int], ok bool, at float64) sweep.Values {
			winner := -1.0
			if e.Count(func(s int) bool { return s == 1 }) == e.N() {
				winner = 1
			} else if e.Count(func(s int) bool { return s == 0 }) == e.N() {
				winner = 0
			}
			return sweep.Values{
				"converged": sweep.Bool(ok), "time": at, "winner": winner,
				"correct": sweep.Bool(winner == 1),
			}
		},
		Format: func(n int, v sweep.Values) string {
			return fmt.Sprintf("converged=%v winner=%d correct=%v time=%.2f",
				v["converged"] == 1, int(v["winner"]), v["correct"] == 1, v["time"])
		},
	})
}
