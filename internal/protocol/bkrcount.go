package protocol

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"

	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/sweep"
)

// Approximate population counting after Berenbrink, Kaaser and Radzik
// (arXiv:1905.11962): every agent draws a geometric level Own (P[Own = k]
// = 2^−k) and the population two-way max-propagates the highest level,
// whose expectation is ≈ log2 n. Alongside the maximum the agents carry a
// duplicate flag: it is raised when two agents whose OWN draws both equal
// the current maximum meet, and travels with the maximum from then on — a
// duplicated maximum indicates the max underestimates log2 n slightly, so
// the estimate is Max + Dup.
//
// This is the simplified first-phase variant: the full paper refines the
// ±O(1) estimate to (1 ± ε) log n with a second aggregation phase, which
// is out of scope here (see DESIGN.md). Rather than tracking Own
// verbatim — which would square the state space — the table keeps only
// the comparison the dynamics ever make: whether the agent's own draw
// equals its current maximum (OwnMax), cleared when the agent adopts a
// larger maximum.
type BKRState struct {
	Max    int
	OwnMax bool
	Dup    bool
}

// bkrMaxLevel caps the geometric draws; levels beyond 30 occur with
// probability < n·2^−30, negligible at any population this repo runs.
const bkrMaxLevel = 30

// bkrNext is the two-way transition.
func bkrNext(rec, sen BKRState) (BKRState, BKRState) {
	switch {
	case rec.Max == sen.Max:
		dup := rec.Dup || sen.Dup || (rec.OwnMax && sen.OwnMax)
		rec.Dup, sen.Dup = dup, dup
	case rec.Max < sen.Max:
		rec = BKRState{Max: sen.Max, OwnMax: false, Dup: sen.Dup}
	default:
		sen = BKRState{Max: rec.Max, OwnMax: false, Dup: rec.Dup}
	}
	return rec, sen
}

var bkrCompiled = sync.OnceValue(func() *pop.Compiled[BKRState] {
	var states []BKRState
	for m := 1; m <= bkrMaxLevel; m++ {
		for _, own := range []bool{false, true} {
			for _, dup := range []bool{false, true} {
				states = append(states, BKRState{Max: m, OwnMax: own, Dup: dup})
			}
		}
	}
	tbl := pop.Table[BKRState]{}
	for _, rec := range states {
		for _, sen := range states {
			if oa, ob := bkrNext(rec, sen); oa != rec || ob != sen {
				tbl[pop.Pair[BKRState]{Rec: rec, Sen: sen}] = pop.To(oa, ob)
			}
		}
	}
	return pop.MustCompile(tbl)
})

func init() {
	RegisterTable(TableSpec[BKRState]{
		Name:    "bkrcount",
		Desc:    "Berenbrink–Kaaser–Radzik counting: max of geometric levels + duplicate flag (table-compiled)",
		Compile: func(int) (*pop.Compiled[BKRState], error) { return bkrCompiled(), nil },
		Init: func(n int, r *rand.Rand) ([]BKRState, []int64) {
			counts := make([]int64, bkrMaxLevel+1)
			for i := 0; i < n; i++ {
				l := 1
				for l < bkrMaxLevel && r.Uint64()&1 == 1 {
					l++
				}
				counts[l]++
			}
			var states []BKRState
			var sc []int64
			for l := 1; l <= bkrMaxLevel; l++ {
				if counts[l] > 0 {
					states = append(states, BKRState{Max: l, OwnMax: true})
					sc = append(sc, counts[l])
				}
			}
			return states, sc
		},
		Converged: func(e pop.Engine[BKRState]) bool {
			first := true
			agreed := BKRState{}
			return e.All(func(s BKRState) bool {
				if first {
					first = false
					agreed = BKRState{Max: s.Max, Dup: s.Dup}
				}
				return s.Max == agreed.Max && s.Dup == agreed.Dup
			})
		},
		CheckEvery: 0.5,
		MaxTime:    func(n int) float64 { return 24*math.Log2(float64(n)) + 64 },
		Values: func(e pop.Engine[BKRState], ok bool, at float64) sweep.Values {
			maxLevel, dup := 0, 0.0
			for s := range e.Counts() {
				if s.Max > maxLevel {
					maxLevel, dup = s.Max, 0
				}
				if s.Max == maxLevel && s.Dup {
					dup = 1
				}
			}
			return sweep.Values{
				"converged": sweep.Bool(ok), "time": at,
				"estimate": float64(maxLevel) + dup,
			}
		},
		Format: func(n int, v sweep.Values) string {
			logN := math.Log2(float64(n))
			return fmt.Sprintf("converged=%v estimate=%.0f log2(n)=%.2f err=%.2f time=%.2f",
				v["converged"] == 1, v["estimate"], logN, math.Abs(v["estimate"]-logN), v["time"])
		},
	})
}
