package protocol

import (
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/popsim/popsize/internal/epidemic"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/sweep"
)

// The one-way epidemic — the max-propagation primitive under every stage
// of the size-estimation protocol — as a table-compiled zoo entry: one
// infected agent, completion when the whole population holds the maximum
// (Lemma A.1: O(log n) parallel time w.h.p.).
func init() {
	RegisterTable(TableSpec[epidemic.State]{
		Name:    "epidemic",
		Desc:    "one-way epidemic from a single infected agent (table-compiled; Lemma A.1 timing)",
		Compile: func(int) (*pop.Compiled[epidemic.State], error) { return epidemic.Compiled(), nil },
		Init: func(n int, _ *rand.Rand) ([]epidemic.State, []int64) {
			return []epidemic.State{{Val: 1, Member: true}, {Val: 0, Member: true}},
				[]int64{1, int64(n) - 1}
		},
		Converged:  epidemic.Done,
		CheckEvery: 0.25,
		MaxTime:    func(n int) float64 { return 24*math.Log2(float64(n)) + 64 },
		Values: func(e pop.Engine[epidemic.State], ok bool, at float64) sweep.Values {
			infected := e.Count(func(s epidemic.State) bool { return s.Val == 1 })
			return sweep.Values{"converged": sweep.Bool(ok), "time": at, "infected": float64(infected)}
		},
		Format: func(n int, v sweep.Values) string {
			return fmt.Sprintf("converged=%v time=%.2f time/log2(n)=%.3f infected=%d",
				v["converged"] == 1, v["time"], v["time"]/math.Log2(float64(n)), int(v["infected"]))
		},
	})
}
