package protocol

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"

	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/sweep"
)

// Junta election in the phase-clock style (SNIPPETS §1): every agent
// draws a geometric level (count fair-coin heads, capped at juntaLevels(n))
// and then walks a door-gated counter. Even counters 2i are "working in
// round i" and always advance; odd counters 2i+1 are "at door i" and
// advance only on evidence the protocol is still climbing — the sender is
// eager (its round is below its own level) or the sender's counter is
// ahead. When no eager agent remains the doors freeze and the whole
// population settles at one door; the junta is the set of agents at the
// maximum level, which has size O(polylog n) w.h.p. and is what the
// phase-clock constructions hand their clock to.
//
// This is a compact single-counter variant of the interval-based original:
// round membership G_i collapses to the single counter value 2i, and the
// door-opening witness is the sender's eagerness or counter lead rather
// than interval containment. The deterministic transition table is
// enumerated programmatically over the (level, counter) grid — the DSL is
// data, so a protocol with a few hundred states is built by a loop, not
// by hand.
type JuntaState struct {
	Level   int
	Counter int
}

// juntaLevels caps the geometric levels: one above the expected maximum
// log2 n, bounded so the (level, counter) grid stays a few hundred states.
func juntaLevels(n int) int {
	return min(int(math.Ceil(math.Log2(float64(n))))+2, 16)
}

// juntaNext is the receiver update; senders never change.
func juntaNext(rec, sen JuntaState, maxCounter int) JuntaState {
	if rec.Counter >= maxCounter {
		return rec // terminal cap
	}
	if rec.Counter%2 == 0 {
		rec.Counter++ // working: advance to this round's door
		return rec
	}
	senEager := sen.Counter/2 < sen.Level
	if senEager || sen.Counter > rec.Counter {
		rec.Counter++ // door opens: enter the next round
	}
	return rec
}

var (
	juntaMu       sync.Mutex
	juntaCompiled = map[int]*pop.Compiled[JuntaState]{}
)

// juntaCompile enumerates and compiles the table for the level cap L,
// cached per L (only a handful of caps exist across all n).
func juntaCompile(n int) (*pop.Compiled[JuntaState], error) {
	L := juntaLevels(n)
	juntaMu.Lock()
	defer juntaMu.Unlock()
	if c, ok := juntaCompiled[L]; ok {
		return c, nil
	}
	maxCounter := 2*L + 1
	states := make([]JuntaState, 0, (L+1)*(maxCounter+1))
	for l := 0; l <= L; l++ {
		for cnt := 0; cnt <= maxCounter; cnt++ {
			states = append(states, JuntaState{Level: l, Counter: cnt})
		}
	}
	tbl := pop.Table[JuntaState]{}
	for _, rec := range states {
		for _, sen := range states {
			if out := juntaNext(rec, sen, maxCounter); out != rec {
				tbl[pop.Pair[JuntaState]{Rec: rec, Sen: sen}] = pop.To(out, sen)
			}
		}
	}
	c, err := pop.CompileRule(tbl)
	if err != nil {
		return nil, err
	}
	juntaCompiled[L] = c
	return c, nil
}

func init() {
	Register(Info{
		Name:       "junta",
		Desc:       "phase-clock junta election via geometric levels and door-gated counters (table-compiled)",
		Trajectory: true,
		New: func(cfg Config) (*Runner, error) {
			return newTableRunner(TableSpec[JuntaState]{
				Name:    "junta",
				Compile: juntaCompile,
				Init: func(n int, r *rand.Rand) ([]JuntaState, []int64) {
					L := juntaLevels(n)
					counts := make([]int64, L+1)
					for i := 0; i < n; i++ {
						l := 0
						for l < L && r.Uint64()&1 == 1 {
							l++
						}
						counts[l]++
					}
					states := make([]JuntaState, L+1)
					for l := range states {
						states[l] = JuntaState{Level: l}
					}
					return states, counts
				},
				Converged: func(e pop.Engine[JuntaState]) bool {
					first := true
					door := 0
					return e.All(func(s JuntaState) bool {
						if first {
							first, door = false, s.Counter
						}
						return s.Counter%2 == 1 && s.Counter == door
					})
				},
				CheckEvery: 1,
				MaxTime: func(n int) float64 {
					l := math.Log2(float64(n))
					return 24*l*l + 256
				},
				Values: func(e pop.Engine[JuntaState], ok bool, at float64) sweep.Values {
					maxLevel, door := 0, 0
					for s := range e.Counts() {
						maxLevel = max(maxLevel, s.Level)
						door = max(door, s.Counter)
					}
					junta := e.Count(func(s JuntaState) bool { return s.Level == maxLevel })
					return sweep.Values{
						"converged": sweep.Bool(ok), "time": at, "junta": float64(junta),
						"maxlevel": float64(maxLevel), "door": float64(door),
					}
				},
				Format: func(n int, v sweep.Values) string {
					return fmt.Sprintf("converged=%v junta=%d maxlevel=%d (log2(n)=%.1f) door=%d time=%.1f",
						v["converged"] == 1, int(v["junta"]), int(v["maxlevel"]),
						math.Log2(float64(n)), int(v["door"]), v["time"])
				},
			}, cfg)
		},
	})
}
