package protocol

import (
	"fmt"
	"math/rand/v2"
	"os"
	"sync"

	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/sweep"
)

// initSeedMix derives the initial-configuration rng stream from a trial
// seed. It differs from the engines' own stream constant
// (seed^0x9e3779b97f4a7c15, see pop's constructors), so a protocol that
// randomizes its initial configuration never replays the scheduler's
// draws.
const initSeedMix = 0xd1342543de82ef95

// initRand returns the rng a table protocol's Init draws from for one
// trial.
func initRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^initSeedMix))
}

// TableSpec declares one table-compiled protocol for the registry: the
// compiled transition table (possibly population-size-dependent), the
// initial configuration, the convergence predicate, and the metric
// extraction. RegisterTable wraps it in the generic harness, which
// uniformly provides engine construction honoring the backend selection,
// the declared-table bypass (pop.WithTable), history streams,
// snapshot/restore instrumentation and -stats counters.
type TableSpec[S comparable] struct {
	Name string
	Desc string
	// Compile returns the compiled table for population size n. Protocols
	// whose state space is size-independent return a shared Compiled.
	Compile func(n int) (*pop.Compiled[S], error)
	// Init builds the initial configuration as a state-count multiset; r
	// is a per-trial stream disjoint from the engine's (protocols with
	// deterministic initial configurations ignore it).
	Init func(n int, r *rand.Rand) (states []S, counts []int64)
	// Converged stops the run; CheckEvery (default 1) is the predicate's
	// evaluation interval in parallel time and MaxTime(n) bounds the run.
	Converged  func(e pop.Engine[S]) bool
	CheckEvery float64
	MaxTime    func(n int) float64
	// Values extracts the recorded per-trial metrics; Format renders them
	// as the per-trial output line.
	Values func(e pop.Engine[S], converged bool, at float64) sweep.Values
	Format func(n int, v sweep.Values) string
}

// RegisterTable registers a table-compiled protocol. Every such protocol
// supports trajectory instrumentation.
func RegisterTable[S comparable](sp TableSpec[S]) {
	Register(Info{
		Name:       sp.Name,
		Desc:       sp.Desc,
		Trajectory: true,
		New:        func(cfg Config) (*Runner, error) { return newTableRunner(sp, cfg) },
	})
}

func newTableRunner[S comparable](sp TableSpec[S], cfg Config) (*Runner, error) {
	n := cfg.N
	var restore *pop.Snapshot[S]
	note := ""
	if cfg.Traj != nil && cfg.Traj.RestorePath != "" {
		snap, err := pop.ReadSnapshotFile[S](cfg.Traj.RestorePath)
		if err != nil {
			return nil, fmt.Errorf("-restore: %w", err)
		}
		restore = snap
		n = snap.N
		note = fmt.Sprintf("restoring from %s: backend=%s n=%d", cfg.Traj.RestorePath, snap.Backend, snap.N)
	}
	c, err := sp.Compile(n)
	if err != nil {
		return nil, fmt.Errorf("compiling %s table: %w", sp.Name, err)
	}
	rule := c.Rule()
	checkEvery := sp.CheckEvery
	if checkEvery <= 0 {
		checkEvery = 1
	}

	var statsMu sync.Mutex
	statsLines := make(map[int]string, cfg.Trials)

	run := func(tr int, seed uint64) sweep.Values {
		tag := ""
		if cfg.Trials > 1 {
			tag = fmt.Sprintf("t%d", tr)
		}
		var e pop.Engine[S]
		if restore != nil {
			var err error
			e, err = pop.Restore(restore, rule, c.Option())
			if err != nil {
				cfg.Fail(fmt.Errorf("trial %d: restoring %s: %w", tr, cfg.Traj.RestorePath, err))
				return sweep.Values{}
			}
		} else {
			states, counts := sp.Init(n, initRand(seed))
			e = pop.NewEngineFromCounts(states, counts, rule,
				append(cfg.engineOpts(seed), c.Option())...)
		}

		pred := sp.Converged
		var snapErr error
		snapDone := false
		takeSnapshot := func() {
			s, ok := e.(interface {
				Snapshot() (*pop.Snapshot[S], error)
			})
			if !ok {
				snapErr = fmt.Errorf("backend %T does not snapshot", e)
				return
			}
			snap, err := s.Snapshot()
			if err == nil {
				err = pop.WriteSnapshotFile(TagPath(cfg.Traj.SnapshotPath, tag), snap)
			}
			if err != nil && snapErr == nil {
				snapErr = err
			}
			snapDone = true
		}
		if cfg.Traj != nil && cfg.Traj.SnapshotPath != "" && cfg.Traj.SnapshotAt > 0 {
			at := cfg.Traj.SnapshotAt
			inner := pred
			pred = func(e pop.Engine[S]) bool {
				if !snapDone && e.Time() >= at {
					takeSnapshot()
				}
				return inner(e)
			}
		}

		var hist *pop.History[S]
		var ok bool
		var at float64
		if cfg.Traj != nil && cfg.Traj.HistoryPath != "" {
			hist = pop.NewHistory[S](cfg.Traj.HistoryEvery)
			ok, at = hist.RunUntil(e, pred, checkEvery, sp.MaxTime(n))
		} else {
			ok, at = e.RunUntil(pred, checkEvery, sp.MaxTime(n))
		}
		if cfg.Traj != nil && cfg.Traj.SnapshotPath != "" && !snapDone {
			takeSnapshot()
		}
		if snapErr != nil {
			cfg.Fail(fmt.Errorf("trial %d: writing snapshot: %w", tr, snapErr))
		}
		if hist != nil {
			if err := writeHistoryFile(TagPath(cfg.Traj.HistoryPath, tag), hist); err != nil {
				cfg.Fail(fmt.Errorf("trial %d: %w", tr, err))
			}
		}
		if cfg.CollectStats {
			line := "no transition-resolution stats (sequential backend calls the rule directly)"
			if cs, have := pop.EngineCacheStats(e); have {
				line = fmt.Sprintf("table=%d cache=%d rule=%d", cs.TableHits, cs.CacheHits, cs.RuleCalls)
			}
			statsMu.Lock()
			statsLines[tr] = line
			statsMu.Unlock()
		}
		return sp.Values(e, ok, at)
	}

	return &Runner{
		N:    n,
		Note: note,
		Run:  run,
		Format: func(v sweep.Values) string {
			return sp.Format(n, v)
		},
		StatsLines: func() []string {
			statsMu.Lock()
			defer statsMu.Unlock()
			lines := make([]string, 0, len(statsLines))
			for tr := 0; tr < cfg.Trials; tr++ {
				if line, have := statsLines[tr]; have {
					lines = append(lines, fmt.Sprintf("trial %d: %s", tr, line))
				}
			}
			return lines
		},
	}, nil
}

// writeHistoryFile streams a run's sampled trajectory as HistoryRecord
// JSONL (the same format expt.RunCore writes for the main protocol).
func writeHistoryFile[S comparable](path string, hist *pop.History[S]) error {
	fh, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating history stream: %w", err)
	}
	werr := sweep.WriteHistory(fh, sweep.HistoryRecords(hist.Samples()))
	if cerr := fh.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("writing history %s: %w", path, werr)
	}
	return nil
}
