package protocol

import (
	"github.com/popsim/popsize/internal/pop"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestLookupUnknownListsNames(t *testing.T) {
	_, err := Lookup("no-such-protocol")
	if err == nil {
		t.Fatal("Lookup of unknown name succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"no-such-protocol"`) {
		t.Errorf("error %q does not quote the bad name", msg)
	}
	for _, name := range []string{"epidemic", "approxmajority", "junta", "bkrcount", "repeatmajority"} {
		if !strings.Contains(msg, name) {
			t.Errorf("error %q does not list registered protocol %s", msg, name)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	for _, bad := range []Info{
		{Name: "", New: func(Config) (*Runner, error) { return nil, nil }},
		{Name: "x", New: nil},
		{Name: "epidemic", New: func(Config) (*Runner, error) { return nil, nil }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%+v) did not panic", bad)
				}
			}()
			Register(bad)
		}()
	}
}

func TestTrajectoryNamesSubsetOfNames(t *testing.T) {
	all := map[string]bool{}
	for _, n := range Names() {
		all[n] = true
	}
	traj := TrajectoryNames()
	if len(traj) == 0 {
		t.Fatal("no trajectory-capable protocols registered")
	}
	for _, n := range traj {
		if !all[n] {
			t.Errorf("trajectory name %s missing from Names()", n)
		}
	}
}

func TestTagPath(t *testing.T) {
	for _, tc := range []struct{ path, tag, want string }{
		{"hist.jsonl", "t2", "hist.t2.jsonl"},
		{"out/hist.jsonl", "t0", "out/hist.t0.jsonl"},
		{"out.d/hist", "t1", "out.d/hist.t1"},
		{"hist", "t3", "hist.t3"},
		{"hist.jsonl", "", "hist.jsonl"},
	} {
		if got := TagPath(tc.path, tc.tag); got != tc.want {
			t.Errorf("TagPath(%q, %q) = %q, want %q", tc.path, tc.tag, got, tc.want)
		}
	}
}

// TestZooProtocolsConverge runs every table-compiled zoo protocol
// end-to-end through its registered factory at a small population and
// checks it converges with the table bypass fully covering the dynamics
// (rule calls would mean the declared table missed reachable pairs).
func TestZooProtocolsConverge(t *testing.T) {
	for _, name := range []string{"epidemic", "approxmajority", "repeatmajority", "junta", "bkrcount"} {
		t.Run(name, func(t *testing.T) {
			info, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			if !info.Trajectory {
				t.Errorf("%s is table-compiled but not trajectory-capable", name)
			}
			var trialErr error
			r, err := info.New(Config{
				N: 600, Trials: 2, CollectStats: true, Backend: pop.Batched,
				OnError: func(e error) { trialErr = e },
			})
			if err != nil {
				t.Fatal(err)
			}
			for tr := 0; tr < 2; tr++ {
				v := r.Run(tr, uint64(100+tr))
				if trialErr != nil {
					t.Fatal(trialErr)
				}
				if v["converged"] != 1 {
					t.Errorf("trial %d did not converge: %v", tr, v)
				}
				if line := r.Format(v); line == "" {
					t.Errorf("trial %d: empty Format line", tr)
				}
			}
			lines := r.StatsLines()
			if len(lines) != 2 {
				t.Fatalf("StatsLines = %v, want 2 entries", lines)
			}
			for _, line := range lines {
				if !strings.Contains(line, "rule=0") {
					t.Errorf("table bypass incomplete: %s", line)
				}
			}
		})
	}
}

// TestTableRunnerSeedDeterminism: the same seed reproduces identical trial
// values, and distinct seeds drive distinct initial-configuration streams
// (junta's geometric levels are seed-dependent).
func TestTableRunnerSeedDeterminism(t *testing.T) {
	info, err := Lookup("junta")
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed uint64) map[string]float64 {
		r, err := info.New(Config{N: 400, Trials: 1})
		if err != nil {
			t.Fatal(err)
		}
		return r.Run(0, seed)
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
	distinct := false
	for seed := uint64(8); seed < 16; seed++ {
		if !reflect.DeepEqual(a, run(seed)) {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Error("eight distinct seeds all reproduced seed 7's values — init rng ignored?")
	}
}

// TestTableRunnerSnapshotRestore: a mid-run snapshot taken by the harness
// restores into a run that finishes exactly like the original (the
// snapshot is taken at a predicate boundary without perturbing the
// schedule, so the restored continuation replays the original's remaining
// draws), and two restores from the same snapshot are byte-identical.
func TestTableRunnerSnapshotRestore(t *testing.T) {
	dir := t.TempDir()
	mid := filepath.Join(dir, "mid.json")
	info, err := Lookup("approxmajority")
	if err != nil {
		t.Fatal(err)
	}
	var trialErr error
	fail := func(e error) {
		if trialErr == nil {
			trialErr = e
		}
	}
	const n, seed = 1500, 21
	rA, err := info.New(Config{
		N: n, Trials: 1, Backend: pop.Batched,
		Traj:    &Instrumentation{SnapshotPath: mid, SnapshotAt: 3},
		OnError: fail,
	})
	if err != nil {
		t.Fatal(err)
	}
	vA := rA.Run(0, seed)
	if trialErr != nil {
		t.Fatal(trialErr)
	}
	if vA["converged"] != 1 || !(vA["time"] > 3) {
		t.Fatalf("original run: %v", vA)
	}

	finals := [2]string{filepath.Join(dir, "fb.json"), filepath.Join(dir, "fc.json")}
	for i, final := range finals {
		r, err := info.New(Config{
			Trials: 1, Backend: pop.Batched,
			Traj:    &Instrumentation{RestorePath: mid, SnapshotPath: final},
			OnError: fail,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.N != n {
			t.Fatalf("restored runner N = %d, want %d from snapshot", r.N, n)
		}
		if !strings.Contains(r.Note, "restoring from") {
			t.Errorf("restore note missing: %q", r.Note)
		}
		v := r.Run(0, seed)
		if trialErr != nil {
			t.Fatal(trialErr)
		}
		if v["winner"] != vA["winner"] || math.Abs(v["time"]-vA["time"]) > 1e-9 {
			t.Errorf("restore %d diverged from original: %v vs %v", i, v, vA)
		}
	}
	b0, err := os.ReadFile(finals[0])
	if err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(finals[1])
	if err != nil {
		t.Fatal(err)
	}
	if string(b0) != string(b1) {
		t.Error("two restores from the same snapshot wrote different final snapshots")
	}
}
