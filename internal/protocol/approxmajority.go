package protocol

import (
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/sweep"
)

// The 3-state approximate-majority protocol on opinions {−1: B, 0: blank,
// 1: A}: opposed receivers blank out, blank receivers adopt the sender's
// opinion. With an initial gap it converges to the initial majority's
// consensus in O(log n) parallel time w.h.p. — the classic
// Angluin–Aspnes–Eisenstat dynamics, here written as a 4-line table.
func amTable() pop.Table[int] {
	return pop.Table[int]{
		{Rec: 1, Sen: -1}: pop.To(0, -1),
		{Rec: -1, Sen: 1}: pop.To(0, 1),
		{Rec: 0, Sen: 1}:  pop.To(1, 1),
		{Rec: 0, Sen: -1}: pop.To(-1, -1),
	}
}

// AMCompiled returns the shared compiled approximate-majority table (the
// examples walkthrough reuses it).
func AMCompiled() *pop.Compiled[int] { return amCompiled }

var amCompiled = pop.MustCompile(amTable())

// amSplit is the initial configuration: a 54/46 split, A majority.
func amSplit(n int) (a, b int64) {
	a = (int64(n)*27 + 49) / 50
	return a, int64(n) - a
}

func init() {
	RegisterTable(TableSpec[int]{
		Name:    "approxmajority",
		Desc:    "3-state approximate majority from a 54/46 split (table-compiled)",
		Compile: func(int) (*pop.Compiled[int], error) { return amCompiled, nil },
		Init: func(n int, _ *rand.Rand) ([]int, []int64) {
			a, b := amSplit(n)
			return []int{1, -1}, []int64{a, b}
		},
		Converged: func(e pop.Engine[int]) bool {
			first := true
			opinion := 0
			return e.All(func(s int) bool {
				if first {
					first, opinion = false, s
				}
				return s != 0 && s == opinion
			})
		},
		CheckEvery: 0.5,
		MaxTime:    func(n int) float64 { return 32*math.Log2(float64(n)) + 64 },
		Values: func(e pop.Engine[int], ok bool, at float64) sweep.Values {
			winner := 0.0
			if a := e.Count(func(s int) bool { return s == 1 }); a == e.N() {
				winner = 1
			} else if b := e.Count(func(s int) bool { return s == -1 }); b == e.N() {
				winner = -1
			}
			return sweep.Values{"converged": sweep.Bool(ok), "time": at, "winner": winner}
		},
		Format: func(n int, v sweep.Values) string {
			return fmt.Sprintf("converged=%v winner=%+d correct=%v time=%.2f",
				v["converged"] == 1, int(v["winner"]), v["winner"] == 1, v["time"])
		},
	})
}
