// Package protocol is the registry the CLI dispatches on: every runnable
// protocol — the paper's estimation pipeline and its baselines as well as
// the table-compiled zoo — registers an Info mapping its name to a
// factory that builds a sweep-compatible runner. cmd/popsim resolves
// -protocol through Lookup, the experiment defs build their trial
// functions from the same factories, and an unknown name fails with the
// full list of registered names (sweep.UnknownName).
//
// The zoo protocols in this package are written as declarative
// pop.Table transition tables (see internal/pop/table.go) and run through
// the generic table harness in table.go, which supplies engine
// construction, convergence-predicate driving, per-trial history streams,
// snapshot/restore instrumentation and transition-resolution statistics
// uniformly. Protocols needing machinery beyond a table (the main
// estimation protocol, the baselines) register from cmd/popsim, where the
// higher-level packages they depend on are in scope.
package protocol

import (
	"sort"
	"strings"
	"sync"

	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/sweep"
)

// Instrumentation carries single-run trajectory instrumentation requested
// on the command line: a sampled-configuration history stream, a
// versioned engine snapshot, and/or a snapshot to resume from. Paths are
// tag-suffixed per trial (TagPath) so concurrent trials never share a
// file.
type Instrumentation struct {
	HistoryPath  string
	HistoryEvery float64
	SnapshotPath string
	SnapshotAt   float64
	RestorePath  string
}

// Active reports whether any instrumentation was requested.
func (i *Instrumentation) Active() bool {
	return i != nil && (i.HistoryPath != "" || i.SnapshotPath != "" || i.RestorePath != "")
}

// Config is everything a protocol factory needs to build a runner for
// one (n, trials) point: sizing, the paper-vs-fast preset switch, the
// engine backend selection, optional instrumentation, and the error sink
// trial functions report through (sweep treats trial values as opaque, so
// a live failure must escape sideways to abort the command).
type Config struct {
	N       int
	Trials  int
	Paper   bool
	Backend pop.Backend
	Par     int
	// CollectStats makes the runner record per-trial transition-resolution
	// counters (pop.CacheStats) for StatsLines (cmd/popsim -stats).
	CollectStats bool
	Traj         *Instrumentation
	OnError      func(error)
}

// engineOpts assembles the common engine options for one trial.
func (c Config) engineOpts(seed uint64) []pop.Option {
	return []pop.Option{pop.WithSeed(seed), pop.WithBackend(c.Backend), pop.WithParallelism(c.Par)}
}

// Fail reports a trial failure to the configured sink, if any. Trial
// functions call it instead of returning an error — the sweep layer
// treats trial values as opaque, so failures escape sideways.
func (c Config) Fail(err error) {
	if c.OnError != nil && err != nil {
		c.OnError(err)
	}
}

// Runner is a protocol instantiated at one (n, trials) point: a sweep
// trial function plus the rendering hooks the CLI uses around it.
type Runner struct {
	// N is the effective population size — Config.N, unless a restore
	// snapshot carries its own population, which wins.
	N int
	// Note, when non-empty, is printed once before the trials run (e.g.
	// the restore banner).
	Note string
	// Run executes one trial.
	Run sweep.TrialFunc
	// Format renders one recorded trial's values as the per-trial output
	// line.
	Format func(v sweep.Values) string
	// StatsLines, when non-nil, returns the per-trial transition-
	// resolution summaries collected under Config.CollectStats, in trial
	// order.
	StatsLines func() []string
}

// Info is one registry entry.
type Info struct {
	// Name is the -protocol selector.
	Name string
	// Desc is the one-line description shown in the CLI usage text.
	Desc string
	// Trajectory reports whether the protocol honors Config.Traj —
	// -history/-snapshot/-restore are rejected for protocols that would
	// silently ignore them.
	Trajectory bool
	// New builds a runner for one configuration.
	New func(cfg Config) (*Runner, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Info{}
)

// Register adds a protocol to the registry. It panics on an empty name, a
// nil factory, or a duplicate registration — all programming errors in
// package init.
func Register(info Info) {
	if info.Name == "" || info.New == nil {
		panic("protocol: Register needs a name and a factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[info.Name]; dup {
		panic("protocol: duplicate registration of " + info.Name)
	}
	registry[info.Name] = info
}

// Names returns the registered protocol names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// TrajectoryNames returns the names of the protocols honoring trajectory
// instrumentation, sorted.
func TrajectoryNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	var names []string
	for name, info := range registry {
		if info.Trajectory {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Lookup resolves a protocol name; an unknown name errors with the full
// registered list.
func Lookup(name string) (Info, error) {
	regMu.RLock()
	info, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return Info{}, sweep.UnknownName("protocol", name, Names())
	}
	return info, nil
}

// TagPath inserts tag before the path's extension ("hist.jsonl", "t2" →
// "hist.t2.jsonl"), or appends it when the final path element has none,
// so concurrent trials never write through the same file name. (The same
// convention expt's Env.RunCore applies to the main protocol's artifacts.)
func TagPath(path, tag string) string {
	if tag == "" {
		return path
	}
	if i := strings.LastIndexByte(path, '.'); i > strings.LastIndexByte(path, '/') {
		return path[:i] + "." + tag + path[i:]
	}
	return path + "." + tag
}
