// Package majority implements a nonuniform phased cancel/split exact
// majority protocol in the style the paper's introduction motivates
// ([2, 15]-style: such protocols hard-code ⌊log n⌋, and uniformizing them
// is the reason size estimation matters). Composed with the weak size
// estimate via internal/compose, it becomes a uniform majority protocol
// (experiment E17, examples/uniformmajority).
//
// Agents carry a signed token of weight 2^−Level (or a blank). At equal
// levels opposite tokens cancel to blanks — preserving the signed weight
// sum. In stage j, tokens at levels below min(j, cap) split using a blank
// into two tokens one level down — also weight-preserving. The level cap
// is the size estimate s (so minimum token weight <= 1/n and the initial
// margin cannot vanish); after K = s stages the surviving sign is, w.h.p.
// for clear margins, the exact majority, and blanks learn it through the
// Output field.
package majority

import (
	"math/rand/v2"

	"github.com/popsim/popsize/internal/compose"
	"github.com/popsim/popsize/internal/pop"
)

// State is one agent of the (nonuniform) majority protocol.
type State struct {
	// Input is the agent's immutable opinion: +1 or −1.
	Input int8
	// Sign is the current token sign: +1, −1, or 0 (blank).
	Sign int8
	// Level is the token's level: weight 2^−Level.
	Level uint8
	// Output is the agent's current belief about the majority sign.
	Output int8
}

// Initial returns the state for an agent with the given opinion.
func Initial(opinion int8) State {
	return State{Input: opinion, Sign: opinion, Output: opinion}
}

// Transition runs one majority interaction with the given stage and size
// estimate (the two nonuniform inputs).
func Transition(rec, sen State, stage, sEst int, _ *rand.Rand) (State, State) {
	capLevel := levelCap(stage, sEst)

	switch {
	// Cancellation: equal level, opposite signs.
	case rec.Sign != 0 && sen.Sign == -rec.Sign && rec.Level == sen.Level:
		rec.Sign, sen.Sign = 0, 0
	// Split: a token below the allowed level uses a blank.
	case rec.Sign != 0 && sen.Sign == 0 && int(rec.Level) < capLevel:
		rec.Level++
		sen.Sign = rec.Sign
		sen.Level = rec.Level
	case sen.Sign != 0 && rec.Sign == 0 && int(sen.Level) < capLevel:
		sen.Level++
		rec.Sign = sen.Sign
		rec.Level = sen.Level
	}

	rec, sen = updateOutputs(rec, sen)
	return rec, sen
}

// levelCap bounds token levels: they may rise one level per stage, up to
// the size estimate (weight >= 2^−s, so the worst-case margin of one token
// remains representable).
func levelCap(stage, sEst int) int {
	if stage < sEst {
		return stage
	}
	return sEst
}

func updateOutputs(a, b State) (State, State) {
	if a.Sign != 0 {
		a.Output = a.Sign
	}
	if b.Sign != 0 {
		b.Output = b.Sign
	}
	// Blanks adopt the belief of token-holders; between two blanks the
	// receiver adopts, keeping beliefs flowing.
	switch {
	case a.Sign == 0 && b.Sign != 0:
		a.Output = b.Sign
	case b.Sign == 0 && a.Sign != 0:
		b.Output = a.Sign
	case a.Sign == 0 && b.Sign == 0 && b.Output != 0:
		a.Output = b.Output
	}
	return a, b
}

// Reset restores the agent to its initial opinion (the composition
// framework's full-restart hook).
func Reset(s State, _ *rand.Rand) State { return Initial(s.Input) }

// Downstream packages the protocol for internal/compose. Stage count is
// K = s + 2: levels unlock one per stage up to the cap s, plus slack for
// the final cancellations and output spread.
func Downstream(opinions []int8) compose.Downstream[State] {
	return compose.Downstream[State]{
		Init: func(i int, _ *rand.Rand) State {
			return Initial(opinions[i%len(opinions)])
		},
		Transition: Transition,
		OnStage:    func(d State, _, _ int, _ *rand.Rand) State { return d },
		Reset:      Reset,
		Stages:     func(sEst int) int { return sEst + 2 },
	}
}

// SignedWeightNumerator returns the conserved quantity Σ Sign·2^(cap−Level)
// over the configuration, scaled to integers with the given cap (Level
// must never exceed cap). Cancellation and splitting preserve it exactly;
// tests rely on this invariant.
func SignedWeightNumerator(agents []State, cap uint8) int64 {
	var sum int64
	for _, a := range agents {
		if a.Sign == 0 {
			continue
		}
		sum += int64(a.Sign) * (int64(1) << (cap - a.Level))
	}
	return sum
}

// Outputs tallies the current Output beliefs.
func Outputs(s pop.Engine[compose.State[State]]) (plus, minus, undecided int) {
	for a, cnt := range s.Counts() {
		switch a.D.Output {
		case 1:
			plus += cnt
		case -1:
			minus += cnt
		default:
			undecided += cnt
		}
	}
	return plus, minus, undecided
}
