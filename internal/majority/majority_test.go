package majority

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/popsim/popsize/internal/compose"
	"github.com/popsim/popsize/internal/pop"
)

func testRand() *rand.Rand { return rand.New(rand.NewPCG(41, 42)) }

func TestCancellation(t *testing.T) {
	a := State{Input: 1, Sign: 1, Level: 2, Output: 1}
	b := State{Input: -1, Sign: -1, Level: 2, Output: -1}
	ga, gb := Transition(a, b, 3, 10, testRand())
	if ga.Sign != 0 || gb.Sign != 0 {
		t.Errorf("equal-level opposites did not cancel: %+v %+v", ga, gb)
	}
}

func TestNoCancelAcrossLevels(t *testing.T) {
	a := State{Input: 1, Sign: 1, Level: 1}
	b := State{Input: -1, Sign: -1, Level: 2}
	ga, gb := Transition(a, b, 3, 10, testRand())
	if ga.Sign == 0 || gb.Sign == 0 {
		t.Errorf("different-level opposites cancelled: %+v %+v", ga, gb)
	}
}

func TestSplitRespectsStageCap(t *testing.T) {
	token := State{Input: 1, Sign: 1, Level: 0}
	blank := State{Input: -1, Sign: 0}
	// Stage 0: cap 0, no split allowed.
	ga, gb := Transition(token, blank, 0, 10, testRand())
	if gb.Sign != 0 {
		t.Fatalf("split happened at stage 0: %+v %+v", ga, gb)
	}
	// Stage 2: cap 2, split allowed.
	ga, gb = Transition(token, blank, 2, 10, testRand())
	if ga.Level != 1 || gb.Sign != 1 || gb.Level != 1 {
		t.Errorf("split wrong: %+v %+v", ga, gb)
	}
	// Estimate caps the level even at later stages.
	deep := State{Input: 1, Sign: 1, Level: 3}
	ga, gb = Transition(deep, blank, 9, 3, testRand())
	if ga.Level != 3 || gb.Sign != 0 {
		t.Errorf("split beyond estimate cap: %+v %+v", ga, gb)
	}
}

// TestWeightConservation: cancellation and splitting preserve the signed
// weight sum exactly (property-based over random small configurations).
func TestWeightConservation(t *testing.T) {
	const cap = 10
	r := testRand()
	f := func(signs [6]int8, levels [6]uint8, stage uint8) bool {
		agents := make([]State, len(signs))
		for i := range agents {
			s := signs[i] % 2 // -1, 0, +1
			agents[i] = State{Input: 1, Sign: s, Level: levels[i] % 5}
		}
		before := SignedWeightNumerator(agents, cap)
		// Apply a few random pairwise transitions.
		for k := 0; k < 10; k++ {
			i, j := r.IntN(len(agents)), r.IntN(len(agents)-1)
			if j >= i {
				j++
			}
			agents[i], agents[j] = Transition(agents[i], agents[j], int(stage%12), cap, r)
		}
		return SignedWeightNumerator(agents, cap) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestUniformMajorityEndToEnd: composed with the weak size estimate, the
// protocol computes majority for clear margins without knowing n.
func TestUniformMajorityEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full runs are not short")
	}
	const n = 600
	tests := []struct {
		name   string
		plus   int
		expect int8
	}{
		{"60/40 plus", 360, 1},
		{"40/60 minus", 240, -1},
		{"55/45 plus", 330, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			opinions := make([]int8, n)
			for i := range opinions {
				if i < tt.plus {
					opinions[i] = 1
				} else {
					opinions[i] = -1
				}
			}
			p := compose.MustNew(compose.Config{F: 16}, Downstream(opinions))
			s := p.NewSim(n, pop.WithSeed(11))
			ok, _ := s.RunUntil(p.Converged, 10, 2e5)
			if !ok {
				t.Fatal("composition did not converge")
			}
			// Let outputs circulate briefly after the last stage.
			s.RunTime(20 * math.Log2(n))
			plus, minus, und := Outputs(s)
			correct := plus
			if tt.expect == -1 {
				correct = minus
			}
			if und > 0 || correct < n*95/100 {
				t.Errorf("outputs +%d/−%d/?%d, want >=95%% for sign %+d", plus, minus, und, tt.expect)
			}
		})
	}
}
