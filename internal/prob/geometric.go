// Package prob implements the probability substrate of Doty & Eftekhari
// (PODC 2019): geometric random variables, maxima of geometric random
// variables (Appendix D), the sub-exponential Chernoff machinery used to
// bound sums of such maxima, and the balls-in-bins depletion bounds of
// Appendix E. Every exported bound function mirrors a numbered lemma or
// corollary of the paper and is referenced from tests and experiments.
package prob

import (
	"math"
	"math/bits"
	"math/rand/v2"
)

// Geometric returns a 1/2-geometric random variable: the number of fair-coin
// flips up to and including the first head. Its support is {1, 2, ...} and
// Pr[G >= t] = 2^-(t-1).
//
// The implementation consumes one 64-bit word per call and counts trailing
// zero bits; the event that a whole word is tails (probability 2^-64) falls
// through to another word, so the distribution is exact.
func Geometric(r *rand.Rand) int {
	g := 1
	for {
		w := r.Uint64()
		tz := bits.TrailingZeros64(w)
		if tz < 64 {
			return g + tz
		}
		g += 64
	}
}

// GeometricP returns a p-geometric random variable (number of flips of a
// Pr[heads]=p coin up to and including the first head) by CDF inversion.
// It panics if p is outside (0, 1].
func GeometricP(r *rand.Rand, p float64) int {
	if p <= 0 || p > 1 {
		panic("prob: GeometricP requires p in (0, 1]")
	}
	if p == 1 {
		return 1
	}
	// Invert Pr[G > t] = (1-p)^t: G = ceil(log(1-u) / log(1-p)).
	u := r.Float64()
	g := int(math.Ceil(math.Log1p(-u) / math.Log1p(-p)))
	if g < 1 {
		g = 1
	}
	return g
}

// MaxGeometric returns the maximum of n independent 1/2-geometric random
// variables, sampled in O(log n) expected time by CDF inversion:
// Pr[M <= t] = (1 - 2^-t)^n.
func MaxGeometric(r *rand.Rand, n int) int {
	if n <= 0 {
		panic("prob: MaxGeometric requires n >= 1")
	}
	u := r.Float64()
	// Find the smallest t >= 1 with (1 - 2^-t)^n >= u, i.e.
	// n * log1p(-2^-t) >= log(u).
	logU := math.Log(u)
	t := 1
	for n*1 > 0 { // loop bounded below by the t += 1 walk; exits via return
		if float64(n)*math.Log1p(-math.Exp2(-float64(t))) >= logU {
			return t
		}
		t++
		if t > 64*1024 { // unreachable in practice; guards u == 0 pathologies
			return t
		}
	}
	return t
}

// MaxGeometricNaive returns the maximum of n independent 1/2-geometric
// random variables by direct sampling. It is used by tests to cross-check
// MaxGeometric's inversion sampler.
func MaxGeometricNaive(r *rand.Rand, n int) int {
	m := 0
	for i := 0; i < n; i++ {
		if g := Geometric(r); g > m {
			m = g
		}
	}
	return m
}

// SumOfMaxima returns the sum of k independent copies of the maximum of n
// independent 1/2-geometric random variables (the random variable S of
// Lemma D.8 and Corollary D.10).
func SumOfMaxima(r *rand.Rand, k, n int) int {
	s := 0
	for i := 0; i < k; i++ {
		s += MaxGeometric(r, n)
	}
	return s
}
