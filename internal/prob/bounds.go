package prob

import "math"

// EulerGamma is the Euler–Mascheroni constant γ used throughout Appendix D.
const EulerGamma = 0.5772156649015329

// Epsilon1 and Epsilon2 are the constants ε₁ = 0.01 and ε₂ = 0.0006 of
// Lemma D.4 (valid for N >= 50).
const (
	Epsilon1 = 0.01
	Epsilon2 = 0.0006
)

// Log2 returns the base-2 logarithm of x, the paper's "log".
func Log2(x float64) float64 { return math.Log2(x) }

// Harmonic returns the n'th harmonic number H_n = sum_{k=1}^{n} 1/k.
func Harmonic(n int) float64 {
	if n < 0 {
		panic("prob: Harmonic requires n >= 0")
	}
	// Exact summation for small n; asymptotic expansion beyond, accurate to
	// well under 1e-12 for n >= 256.
	if n < 256 {
		h := 0.0
		for k := 1; k <= n; k++ {
			h += 1 / float64(k)
		}
		return h
	}
	x := float64(n)
	return math.Log(x) + EulerGamma + 1/(2*x) - 1/(12*x*x) + 1/(120*x*x*x*x)
}

// ExpectedEpidemicTime returns E[T] = (n-1)/n · H_{n-1}, the expected parallel
// time for a one-way epidemic to infect a population of n agents (Lemma A.1,
// from Angluin, Aspnes, Eisenstat 2008).
func ExpectedEpidemicTime(n int) float64 {
	if n < 2 {
		return 0
	}
	return float64(n-1) / float64(n) * Harmonic(n-1)
}

// EpidemicUpperTail returns the Lemma A.1 bound
// Pr[T > αu · ln n] < 4 · n^(−αu/4+1) for a full-population epidemic.
func EpidemicUpperTail(alphaU float64, n int) float64 {
	return 4 * math.Pow(float64(n), -alphaU/4+1)
}

// EpidemicSubpopUpperTail returns the Corollary 3.4 bound for an epidemic
// confined to a subpopulation of a = n/c agents:
// Pr[T > αu · ln a] < a^(−(αu−4c)²/(12c)).
func EpidemicSubpopUpperTail(alphaU, c float64, a int) float64 {
	return math.Pow(float64(a), -(alphaU-4*c)*(alphaU-4*c)/(12*c))
}

// PartitionTail returns the Lemma 3.2 bound: the probability that the number
// of A-role agents deviates from n/2 by at least a is at most 2·e^(−2a²/n)
// (one-sided bound e^(−2a²/n); the factor 2 is the union over both tails).
func PartitionTail(a float64, n int) float64 {
	return 2 * math.Exp(-2*a*a/float64(n))
}

// InteractionCountD returns D = 2C + sqrt(12C) from Lemma 3.6: in C·ln n
// parallel time, with probability >= 1 − 1/n, every agent has at most
// D·ln n interactions (requires C >= 3).
func InteractionCountD(c float64) float64 {
	return 2*c + math.Sqrt(12*c)
}

// MaxGeomUpperTail returns the Lemma D.7 bound Pr[M >= 2·log N] < 1/N for
// the maximum M of N 1/2-geometric random variables.
func MaxGeomUpperTail(n int) float64 { return 1 / float64(n) }

// MaxGeomLowerTail returns the Lemma D.7 bound
// Pr[M <= log N − log ln N] < 1/N.
func MaxGeomLowerTail(n int) float64 { return 1 / float64(n) }

// SubExpTail returns the Corollary D.6 sub-exponential tail bound for the
// maximum M of N >= 50 1/2-geometric random variables:
// Pr[|M − E[M]| >= λ] < 3.31 · e^(−λ/2).
func SubExpTail(lambda float64) float64 {
	return 3.31 * math.Exp(-lambda/2)
}

// SumOfMaximaTail returns the Lemma D.8 bound for S, the sum of K maxima of
// N 1/2-geometric random variables: Pr[|S − E[S]| >= t] <= 2 · e^(K − t/4).
func SumOfMaximaTail(k int, t float64) float64 {
	return 2 * math.Exp(float64(k)-t/4)
}

// CorD10Bound returns the Corollary D.10 bound: with K >= 4·log N,
// Pr[|S/K − log N| >= 4.7] <= 2/N.
func CorD10Bound(n int) float64 { return 2 / float64(n) }

// CorD10MinK returns the minimum number of repetitions K = 4·log2 N required
// by Corollary D.10 (rounded up).
func CorD10MinK(n int) int {
	return int(math.Ceil(4 * math.Log2(float64(n))))
}

// LogSize2Interval returns the Lemma 3.8 high-probability interval
// [log n − log ln n, 2·log n + 1] for the effective logSize2 value
// (raw maximum + 2) in a population of n agents.
func LogSize2Interval(n int) (lo, hi float64) {
	ln := math.Log(float64(n))
	return Log2(float64(n)) - Log2(ln), 2*Log2(float64(n)) + 1
}

// GRInterval returns the Corollary A.2 high-probability interval
// [log n − log ln n − 2, 2·log n − 1] for the raw per-epoch maxima gr.
func GRInterval(n int) (lo, hi float64) {
	ln := math.Log(float64(n))
	return Log2(float64(n)) - Log2(ln) - 2, 2*Log2(float64(n)) - 1
}

// MainErrorBound is the Theorem 3.1 additive error bound on |k − log n|.
const MainErrorBound = 5.7

// MainErrorFailureProb returns the Theorem 3.1 bound 9/n on the probability
// that the output misses log n by more than MainErrorBound.
func MainErrorFailureProb(n int) float64 { return 9 / float64(n) }
