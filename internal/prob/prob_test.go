package prob

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func testRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xdeadbeef))
}

func TestGeometricSupport(t *testing.T) {
	r := testRand(1)
	for i := 0; i < 10000; i++ {
		if g := Geometric(r); g < 1 {
			t.Fatalf("Geometric() = %d < 1", g)
		}
	}
}

// TestGeometricMean: E[G] = 2 for p = 1/2.
func TestGeometricMean(t *testing.T) {
	r := testRand(2)
	const n = 200000
	sum := 0
	for i := 0; i < n; i++ {
		sum += Geometric(r)
	}
	mean := float64(sum) / n
	if math.Abs(mean-2) > 0.02 {
		t.Errorf("mean of %d geometrics = %.4f, want 2 ± 0.02", n, mean)
	}
}

// TestGeometricTail: Pr[G >= t] = 2^-(t-1), checked at a few t.
func TestGeometricTail(t *testing.T) {
	r := testRand(3)
	const n = 400000
	counts := make([]int, 20)
	for i := 0; i < n; i++ {
		g := Geometric(r)
		for t := 1; t <= g && t < len(counts); t++ {
			counts[t]++
		}
	}
	for _, tv := range []int{2, 4, 7, 10} {
		got := float64(counts[tv]) / n
		want := math.Exp2(-float64(tv - 1))
		if math.Abs(got-want) > 5*math.Sqrt(want*(1-want)/n)+1e-6 {
			t.Errorf("Pr[G >= %d] = %.5f, want %.5f", tv, got, want)
		}
	}
}

func TestGeometricPEdge(t *testing.T) {
	r := testRand(4)
	if g := GeometricP(r, 1); g != 1 {
		t.Errorf("GeometricP(1) = %d, want 1", g)
	}
	for _, p := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GeometricP(%v) did not panic", p)
				}
			}()
			GeometricP(r, p)
		}()
	}
}

// TestGeometricPMean: E[G] = 1/p.
func TestGeometricPMean(t *testing.T) {
	r := testRand(5)
	for _, p := range []float64{0.25, 0.5, 0.9} {
		const n = 100000
		sum := 0
		for i := 0; i < n; i++ {
			sum += GeometricP(r, p)
		}
		mean := float64(sum) / n
		if math.Abs(mean-1/p) > 0.05/p {
			t.Errorf("p=%v: mean = %.4f, want %.4f", p, mean, 1/p)
		}
	}
}

// TestMaxGeometricMatchesNaive: the CDF-inversion sampler and the direct
// sampler agree in distribution (compared via means over many samples).
func TestMaxGeometricMatchesNaive(t *testing.T) {
	const n, trials = 200, 4000
	r1, r2 := testRand(6), testRand(7)
	var s1, s2 float64
	for i := 0; i < trials; i++ {
		s1 += float64(MaxGeometric(r1, n))
		s2 += float64(MaxGeometricNaive(r2, n))
	}
	m1, m2 := s1/trials, s2/trials
	if math.Abs(m1-m2) > 0.15 {
		t.Errorf("inversion mean %.3f vs naive mean %.3f differ by > 0.15", m1, m2)
	}
}

// TestMaxGeomExpectation checks Lemma D.4's bracket
// log N + 1 < E[M] < log N + 3/2 empirically and for the closed form.
func TestMaxGeomExpectation(t *testing.T) {
	for _, n := range []int{64, 1024, 65536} {
		lo, hi := MaxGeomExpectationBounds(n)
		if e := ExpectedMaxGeometric(n); e <= lo || e >= hi {
			t.Errorf("n=%d: closed-form E[M]=%.4f outside (%.4f, %.4f)", n, e, lo, hi)
		}
		r := testRand(uint64(n))
		const trials = 30000
		sum := 0.0
		for i := 0; i < trials; i++ {
			sum += float64(MaxGeometric(r, n))
		}
		mean := sum / trials
		if mean < lo-0.05 || mean > hi+0.05 {
			t.Errorf("n=%d: empirical E[M]=%.4f outside (%.4f, %.4f)±0.05", n, mean, lo, hi)
		}
	}
}

// TestMaxGeomTails checks Lemma D.7: Pr[M >= 2 log N] < 1/N and
// Pr[M <= log N − log ln N] < 1/N.
func TestMaxGeomTails(t *testing.T) {
	const n, trials = 1024, 20000
	r := testRand(9)
	logN := math.Log2(float64(n))
	upper, lower := 0, 0
	for i := 0; i < trials; i++ {
		m := float64(MaxGeometric(r, n))
		if m >= 2*logN {
			upper++
		}
		if m <= logN-math.Log2(math.Log(float64(n))) {
			lower++
		}
	}
	// Allow 4× slack over the 1/N bound at this sample size.
	bound := 4 * float64(trials) / float64(n)
	if float64(upper) > bound {
		t.Errorf("upper tail count %d exceeds 4×(trials/N) = %.0f", upper, bound)
	}
	if float64(lower) > bound {
		t.Errorf("lower tail count %d exceeds 4×(trials/N) = %.0f", lower, bound)
	}
}

// TestSubExpTailDominates: Corollary D.6's bound dominates the empirical
// deviation frequencies of M from E[M].
func TestSubExpTailDominates(t *testing.T) {
	const n, trials = 512, 40000
	r := testRand(10)
	e := ExpectedMaxGeometric(n)
	for _, lambda := range []float64{3, 5, 8} {
		exceed := 0
		for i := 0; i < trials; i++ {
			if math.Abs(float64(MaxGeometric(r, n))-e) >= lambda {
				exceed++
			}
		}
		got := float64(exceed) / trials
		if bound := SubExpTail(lambda); got > bound {
			t.Errorf("λ=%v: empirical tail %.5f > bound %.5f", lambda, got, bound)
		}
	}
}

// TestCorD10: with K = 4 log N repetitions, |S/K − log N| < 4.7 except with
// probability ≤ 2/N.
func TestCorD10(t *testing.T) {
	const n, trials = 256, 3000
	k := CorD10MinK(n)
	r := testRand(11)
	logN := math.Log2(float64(n))
	bad := 0
	for i := 0; i < trials; i++ {
		s := SumOfMaxima(r, k, n)
		if math.Abs(float64(s)/float64(k)-logN) >= 4.7 {
			bad++
		}
	}
	if limit := 4 * float64(trials) * CorD10Bound(n); float64(bad) > limit {
		t.Errorf("Cor D.10 failures %d exceed 4× bound %.1f", bad, limit)
	}
}

func TestHarmonic(t *testing.T) {
	tests := []struct {
		n    int
		want float64
	}{
		{0, 0}, {1, 1}, {2, 1.5}, {4, 25.0 / 12},
	}
	for _, tt := range tests {
		if got := Harmonic(tt.n); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Harmonic(%d) = %v, want %v", tt.n, got, tt.want)
		}
	}
	// Asymptotic branch continuity: compare against direct summation.
	direct := 0.0
	for k := 1; k <= 300; k++ {
		direct += 1 / float64(k)
	}
	if got := Harmonic(300); math.Abs(got-direct) > 1e-9 {
		t.Errorf("Harmonic(300) = %.12f, want %.12f", got, direct)
	}
}

func TestExpectedEpidemicTime(t *testing.T) {
	if got := ExpectedEpidemicTime(1); got != 0 {
		t.Errorf("ExpectedEpidemicTime(1) = %v, want 0", got)
	}
	got := ExpectedEpidemicTime(1000)
	ln := math.Log(1000.0)
	if got < ln-1 || got > ln+2 {
		t.Errorf("ExpectedEpidemicTime(1000) = %.3f, want ≈ ln n + γ ≈ %.3f", got, ln+EulerGamma)
	}
}

// TestThrowBallsDepletion checks Lemma E.1: the probability that ≤ δk bins
// stay empty is below the bound (empirically, with the bound ≪ 1).
func TestThrowBallsDepletion(t *testing.T) {
	const n, k, trials = 1000, 500, 800
	m := 2 * n // two units of "time" worth of balls
	// The bound is meaningful only for δ < e^(−m/n)/2 ≈ 0.068 here.
	delta := 0.04
	bound := DepletionBound(delta, k, m, n)
	if bound > 0.01 {
		t.Fatalf("test setup: bound %.4f too weak to be meaningful", bound)
	}
	r := testRand(12)
	bad := 0
	for i := 0; i < trials; i++ {
		if empty := ThrowBalls(r, n, k, m); float64(empty) <= delta*float64(k) {
			bad++
		}
	}
	if bad > 0 {
		t.Errorf("depletion events %d > 0 despite bound %.2g", bad, bound)
	}
}

func TestBoundFormulas(t *testing.T) {
	if got := CorE3Bound(81); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CorE3Bound(81) = %v, want 0.5", got)
	}
	if got := InteractionCountD(24); math.Abs(got-(48+math.Sqrt(288))) > 1e-12 {
		t.Errorf("InteractionCountD(24) = %v", got)
	}
	if lo, hi := LogSize2Interval(1024); lo >= hi || hi != 21 {
		t.Errorf("LogSize2Interval(1024) = %v, %v; want hi = 21", lo, hi)
	}
	if got := SumOfMaximaTail(10, 100); got >= 2*math.Exp(-10)+1e-15 || got <= 0 {
		t.Errorf("SumOfMaximaTail(10,100) = %v, want 2e^{-15}", got)
	}
}

// TestDepletionBoundMonotone: the Lemma E.1 bound decreases in k and
// increases in m (property-based).
func TestDepletionBoundMonotone(t *testing.T) {
	f := func(k8, m8 uint8) bool {
		k := int(k8)%200 + 100
		m := int(m8)%500 + 1
		n := 1000
		b1 := DepletionBound(0.2, k, m, n)
		b2 := DepletionBound(0.2, k+50, m, n)
		b3 := DepletionBound(0.2, k, m+400, n)
		return b2 <= b1+1e-15 && b3 >= b1-1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
