package prob

import "math"

// ExpectedMaxGeometric returns Eisenberg's approximation to the expectation
// of the maximum of n independent 1/2-geometric random variables:
//
//	E[M] ≈ (ln n + γ)/ln 2 + 1/2,
//
// which Lemma D.4 brackets as log n + 1 < E[M] < log n + 3/2 for n >= 50.
func ExpectedMaxGeometric(n int) float64 {
	return (math.Log(float64(n))+EulerGamma)/math.Ln2 + 0.5
}

// MaxGeomExpectationBounds returns the Lemma D.4 bracket
// (log n + 1, log n + 3/2) on E[M] for n >= 50 and p = 1/2.
func MaxGeomExpectationBounds(n int) (lo, hi float64) {
	l := Log2(float64(n))
	return l + 1, l + 1.5
}

// Delta0 is δ₀ = 1/2 + γ/ln 2 − ε₂ from Corollary D.9, the centering offset
// between E[M] and log N.
func Delta0() float64 {
	return 0.5 + EulerGamma/math.Ln2 - Epsilon2
}
