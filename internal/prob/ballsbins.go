package prob

import (
	"math"
	"math/rand/v2"
)

// DepletionBound returns the Lemma E.1 bound: with n bins of which k start
// empty, after throwing m balls uniformly at random,
//
//	Pr[<= δk bins remain empty] < (2δ·e^(m/n))^(δk),
//
// for 0 < δ <= 1/2.
func DepletionBound(delta float64, k, m, n int) float64 {
	if delta <= 0 || delta > 0.5 {
		panic("prob: DepletionBound requires 0 < delta <= 1/2")
	}
	base := 2 * delta * math.Exp(float64(m)/float64(n))
	return math.Pow(base, delta*float64(k))
}

// StateDepletionBound returns the Lemma E.2 bound: a state with initial
// count k, interacting for T units of parallel time, has
//
//	Pr[∃ t ∈ [0,T] : count_t <= δk] <= (2δ·e^(3T))^(δk).
//
// The factor e^(3T) comes from the three-balls-per-interaction coupling in
// the paper's proof.
func StateDepletionBound(delta, t float64, k int) float64 {
	if delta <= 0 || delta > 0.5 {
		panic("prob: StateDepletionBound requires 0 < delta <= 1/2")
	}
	base := 2 * delta * math.Exp(3*t)
	return math.Pow(base, delta*float64(k))
}

// CorE3Bound returns the Corollary E.3 bound 2^(−k/81): within one unit of
// parallel time, the count of a state starting at k drops below k/81 with
// probability at most 2^(−k/81) (using δ = 1/81, T = 1, 2e³ < 40.2).
func CorE3Bound(k int) float64 {
	return math.Exp2(-float64(k) / 81)
}

// ThrowBalls simulates throwing m balls uniformly into n bins of which the
// first k start empty, returning how many of those k bins remain empty.
// It is the exact process analyzed in Lemma E.1.
func ThrowBalls(r *rand.Rand, n, k, m int) int {
	if k > n {
		panic("prob: ThrowBalls requires k <= n")
	}
	hit := make([]bool, k)
	empty := k
	for i := 0; i < m; i++ {
		b := r.IntN(n)
		if b < k && !hit[b] {
			hit[b] = true
			empty--
		}
	}
	return empty
}
