package stats

import (
	"math/rand/v2"
	"strings"
	"testing"
)

// sample draws n values of mean·(1 + small noise) from a seeded PRNG so
// the pass/fail cases are deterministic.
func sample(seed uint64, n int, mean, spread float64) []float64 {
	r := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = mean + spread*(2*r.Float64()-1)
	}
	return xs
}

func TestWelchAgreeSameDistribution(t *testing.T) {
	a := sample(1, 200, 10, 2)
	b := sample(2, 200, 10, 2)
	if err := WelchAgree(a, b, 5, 0); err != nil {
		t.Errorf("same-distribution samples rejected: %v", err)
	}
}

func TestWelchAgreeDetectsShift(t *testing.T) {
	a := sample(3, 200, 10, 2)
	b := sample(4, 200, 11, 2) // shift of ~6 standard errors of the mean
	err := WelchAgree(a, b, 5, 0)
	if err == nil {
		t.Fatal("shifted means accepted")
	}
	if !strings.Contains(err.Error(), "means differ") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestWelchAgreeAbsSlackRescuesSmallShift(t *testing.T) {
	a := sample(5, 200, 10, 2)
	b := sample(6, 200, 10.5, 2)
	if err := WelchAgree(a, b, 5, 0); err == nil {
		t.Fatal("shift within slack but beyond SE tolerance should fail without slack")
	}
	if err := WelchAgree(a, b, 5, 1); err != nil {
		t.Errorf("absolute slack of 1 should absorb a 0.5 shift: %v", err)
	}
}

func TestWelchAgreeUnequalVariances(t *testing.T) {
	// Welch's SE must widen with the noisier sample: a wide-spread sample
	// with the same mean agrees, while the same shift that a tight pair
	// rejects is absorbed by the wide pair's SE.
	tightA, tightB := sample(7, 100, 10, 0.5), sample(8, 100, 10.4, 0.5)
	wideA, wideB := sample(9, 100, 10, 8), sample(10, 100, 10.4, 8)
	if err := WelchAgree(tightA, tightB, 5, 0); err == nil {
		t.Error("tight samples with a 0.4 shift should disagree")
	}
	if err := WelchAgree(wideA, wideB, 5, 0); err != nil {
		t.Errorf("wide samples with a 0.4 shift should agree: %v", err)
	}
}

func TestWelchAgreeEmptySample(t *testing.T) {
	if err := WelchAgree(nil, []float64{1}, 5, 100); err == nil {
		t.Error("empty ref accepted")
	}
	if err := WelchAgree([]float64{1}, nil, 5, 100); err == nil {
		t.Error("empty got accepted")
	}
}

func TestMeanNear(t *testing.T) {
	if err := MeanNear(10.2, 10, 0.3, 0); err != nil {
		t.Errorf("within tolerance rejected: %v", err)
	}
	if err := MeanNear(10.2, 10, 0.1, 0.05); err == nil {
		t.Error("outside tolerance accepted")
	}
	if err := MeanNear(10.2, 10, 0.1, 0.15); err != nil {
		t.Errorf("absolute slack not applied: %v", err)
	}
}
