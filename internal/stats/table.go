package stats

import (
	"fmt"
	"strings"
)

// Table is a simple named grid of cells for experiment reports.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n\n", t.Note)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// F formats a float compactly for table cells.
func F(x float64) string {
	switch {
	case x == 0:
		return "0"
	case x >= 1000 || x <= -1000:
		return fmt.Sprintf("%.0f", x)
	case x >= 10 || x <= -10:
		return fmt.Sprintf("%.1f", x)
	default:
		return fmt.Sprintf("%.3f", x)
	}
}

// I formats an int for table cells.
func I(x int) string { return fmt.Sprintf("%d", x) }
