package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want Summary
	}{
		{"empty", nil, Summary{}},
		{"single", []float64{4}, Summary{N: 1, Mean: 4, Min: 4, Max: 4, Median: 4, Q10: 4, Q90: 4}},
		{"pair", []float64{2, 4}, Summary{N: 2, Mean: 3, Std: math.Sqrt2, Min: 2, Max: 4, Median: 3, Q10: 2.2, Q90: 3.8}},
		{"triple", []float64{1, 2, 3}, Summary{N: 3, Mean: 2, Std: 1, Min: 1, Max: 3, Median: 2, Q10: 1.2, Q90: 2.8}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Summarize(tt.in)
			if got.N != tt.want.N || !close(got.Mean, tt.want.Mean) || !close(got.Std, tt.want.Std) ||
				!close(got.Median, tt.want.Median) || !close(got.Q10, tt.want.Q10) || !close(got.Q90, tt.want.Q90) {
				t.Errorf("Summarize(%v) = %+v, want %+v", tt.in, got, tt.want)
			}
		})
	}
}

// TestSummarizeLargeMean is the regression test for the catastrophic-
// cancellation bug: the one-pass Σx²/n − mean² formula computes variance
// as the difference of two ~1e30 quantities, which collapses to 0 for a
// sample like 1e15+{0,1,2} whose true sample variance is exactly 1. The
// two-pass formula must recover it.
func TestSummarizeLargeMean(t *testing.T) {
	const base = 1e15
	got := Summarize([]float64{base, base + 1, base + 2})
	if !close(got.Std, 1) {
		t.Errorf("Std of 1e15+{0,1,2} = %v, want 1 (one-pass variance cancels to 0)", got.Std)
	}
	if got.Mean != base+1 {
		t.Errorf("Mean = %v, want %v", got.Mean, base+1)
	}
}

// TestSummarizeSingleStd: one observation has no spread estimate; Std must
// be 0 (the n−1 denominator is degenerate), not NaN.
func TestSummarizeSingleStd(t *testing.T) {
	if got := Summarize([]float64{42}); got.Std != 0 || got.N != 1 {
		t.Errorf("Summarize([42]) = %+v, want Std 0", got)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q    float64
		want float64
	}{
		// Interior interpolation, exact index hits, and out-of-range q
		// clamping to the extremes.
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
		{-0.5, 1}, {1.5, 5}, {0.125, 1.5},
	}
	for _, tt := range tests {
		if got := Quantile(sorted, tt.q); !close(got, tt.want) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) did not return NaN")
	}
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := Quantile([]float64{7}, q); got != 7 {
			t.Errorf("Quantile([7], %v) = %v, want 7", q, got)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "T", Columns: []string{"a", "b"}}
	tb.AddRow("1", "x,y")
	md := tb.Markdown()
	if !strings.Contains(md, "### T") || !strings.Contains(md, "| 1 | x,y |") {
		t.Errorf("markdown wrong:\n%s", md)
	}
	csv := tb.CSV()
	if !strings.Contains(csv, `1,"x,y"`) {
		t.Errorf("CSV quoting wrong:\n%s", csv)
	}
}

func TestFormatters(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{0, "0"}, {1234, "1234"}, {12.34, "12.3"}, {1.2345, "1.234"},
	}
	for _, tt := range tests {
		if got := F(tt.in); got != tt.want {
			t.Errorf("F(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
	if got := I(42); got != "42" {
		t.Errorf("I(42) = %q", got)
	}
}

func TestASCIIPlotLogX(t *testing.T) {
	pts := []Point{{X: 100, Y: 10}, {X: 10000, Y: 100}}
	out := ASCIIPlotLogX("churn", pts, 20, 5)
	marks := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "|") {
			marks += strings.Count(line, "o")
		}
	}
	if !strings.Contains(out, "churn") || marks != 2 {
		t.Errorf("plot wrong (marks=%d):\n%s", marks, out)
	}
	if got := ASCIIPlotLogX("empty", nil, 20, 5); !strings.Contains(got, "(no data)") {
		t.Errorf("empty plot = %q", got)
	}
}

func close(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
