package stats

import (
	"fmt"
	"math"
)

// The Welch-tolerance comparison shared by the statistical test suites
// (cross-backend equivalence, churn removal marginals, hypergeometric
// moment checks, splitter distribution checks). The engines consume
// randomness differently per backend, so trajectories cannot be compared
// run-by-run; instead the suites run many seeded trials per variant and
// require the metric means to agree within a few standard errors plus a
// small absolute slack — loose enough for fixed seeds to pass
// deterministically, tight enough to catch systematic bias. This package
// deliberately depends on nothing in the repository so that pop's own
// in-package tests can use it without an import cycle.

// WelchAgree compares two samples' means with the Welch-style tolerance
// nSE·SE + absSlack, where SE = √(s_a²/n_a + s_b²/n_b) is the unpooled
// (Welch) standard error of the mean difference. It returns nil when the
// means agree and a descriptive error otherwise (or when either sample is
// empty, which no tolerance can excuse).
func WelchAgree(ref, got []float64, nSE, absSlack float64) error {
	if len(ref) == 0 || len(got) == 0 {
		return fmt.Errorf("welch: empty sample (ref %d values, got %d)", len(ref), len(got))
	}
	sa, sb := Summarize(ref), Summarize(got)
	se := math.Sqrt(sa.Std*sa.Std/float64(sa.N) + sb.Std*sb.Std/float64(sb.N))
	tol := nSE*se + absSlack
	if d := math.Abs(sa.Mean - sb.Mean); d > tol || math.IsNaN(d) {
		return fmt.Errorf("means differ: %.4f vs %.4f (|Δ|=%.4f > tol %.4f)",
			sa.Mean, sb.Mean, d, tol)
	}
	return nil
}

// MeanNear is the one-sample counterpart for estimators with a known
// expectation: it returns nil when |got − want| ≤ tol + absSlack and a
// descriptive error otherwise. Callers pass tol = nSE·SE with their
// analytically derived standard error.
func MeanNear(got, want, tol, absSlack float64) error {
	d := math.Abs(got - want)
	if d > tol+absSlack || math.IsNaN(d) {
		return fmt.Errorf("mean %.4f, want %.4f ± %.4f (|Δ|=%.4f)", got, want, tol+absSlack, d)
	}
	return nil
}
