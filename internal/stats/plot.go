package stats

import (
	"fmt"
	"math"
	"strings"
)

// Point is one scatter-plot sample.
type Point struct {
	X, Y float64
}

// ASCIIPlotLogX renders points as a terminal scatter plot with a log10 x
// axis — the format of the paper's Figure 2 ("exactly O(c·log10 n) time
// complexity would correspond to a straight line with slope c").
func ASCIIPlotLogX(title string, pts []Point, width, height int) string {
	if len(pts) == 0 {
		return title + ": (no data)\n"
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1)
	for _, p := range pts {
		lx := math.Log10(p.X)
		minX = math.Min(minX, lx)
		maxX = math.Max(maxX, lx)
		maxY = math.Max(maxY, p.Y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range pts {
		cx := int((math.Log10(p.X) - minX) / (maxX - minX) * float64(width-1))
		cy := height - 1 - int((p.Y-minY)/(maxY-minY)*float64(height-1))
		grid[cy][cx] = 'o'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "y: [%.0f, %.0f] parallel time; x: log10(n) in [%.1f, %.1f]\n", minY, maxY, minX, maxX)
	for _, row := range grid {
		b.WriteString("|" + string(row) + "\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	return b.String()
}
