// Package stats provides the small statistics and reporting toolkit used
// by the experiment harness: summaries, quantiles, markdown/CSV tables,
// an ASCII log-x scatter plot for the Figure 2 reproduction, and a
// bounded-parallelism trial runner.
package stats

import (
	"math"
	"sort"
)

// Summary describes a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Max         float64
	Median, Q10, Q90 float64
}

// Summarize computes a Summary of xs (which it copies and sorts). Std is
// the sample standard deviation (Bessel-corrected, n−1 denominator; 0 for
// fewer than two values), computed two-pass as Σ(x−mean)² — the textbook
// one-pass Σx²/n − mean² cancels catastrophically when the mean dwarfs
// the spread (e.g. convergence times near 1e15 with unit variance collapse
// to exactly 0) and that shortcut is deliberately avoided here.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	sum := 0.0
	for _, x := range s {
		sum += x
	}
	n := float64(len(s))
	mean := sum / n
	variance := 0.0
	if len(s) > 1 {
		sq := 0.0
		for _, x := range s {
			d := x - mean
			sq += d * d
		}
		variance = sq / (n - 1)
	}
	return Summary{
		N:      len(s),
		Mean:   mean,
		Std:    math.Sqrt(variance),
		Min:    s[0],
		Max:    s[len(s)-1],
		Median: Quantile(s, 0.5),
		Q10:    Quantile(s, 0.1),
		Q90:    Quantile(s, 0.9),
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of the sorted sample by
// linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
