package stats

import "sort"

// TrajPoint is one row of a per-run trajectory report: the digest of a
// sampled configuration that the human-readable rendering keeps (the full
// state→count map lives in the JSONL stream).
type TrajPoint struct {
	// Time and Interactions locate the sample on the run's axis; N is the
	// population size it was measured against (they differ under churn).
	Time         float64
	N            int
	Interactions int64
	// Live is the number of distinct states present; TopShare the fraction
	// of the population in the most common one — together a one-line view
	// of how concentrated the configuration is.
	Live     int
	TopShare float64
}

// TrajDigest reduces a configuration (state label → count) to its report
// digest for a population of n agents.
func TrajDigest(config map[string]float64, n int) (live int, topShare float64) {
	var top float64
	for _, c := range config {
		if c > 0 {
			live++
			if c > top {
				top = c
			}
		}
	}
	if n > 0 {
		topShare = top / float64(n)
	}
	return live, topShare
}

// TrajectoryTable renders trajectory points as a per-run report table,
// sorted by interaction count (the unambiguous axis — parallel time can
// repeat a value across churn segments only if samples coincide, but
// interactions strictly increase).
func TrajectoryTable(title string, pts []TrajPoint) Table {
	sorted := make([]TrajPoint, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Interactions < sorted[j].Interactions })
	t := Table{
		Title:   title,
		Note:    "Sampled configuration trajectory: live = distinct states present, top share = fraction of agents in the most common state.",
		Columns: []string{"time", "n", "interactions", "live", "top share"},
	}
	for _, p := range sorted {
		t.AddRow(F(p.Time), I(p.N), I(int(p.Interactions)), I(p.Live), F(p.TopShare))
	}
	return t
}
