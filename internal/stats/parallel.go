package stats

import (
	"runtime"
	"sync"
)

// ParallelTrials runs fn(trial) for trial = 0..trials-1 on up to
// GOMAXPROCS workers and returns the results in trial order. fn must be
// safe for concurrent use across distinct trial indices (each trial should
// build its own simulator).
func ParallelTrials(trials int, fn func(trial int) float64) []float64 {
	out := make([]float64, trials)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < trials; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = fn(i)
		}(i)
	}
	wg.Wait()
	return out
}
