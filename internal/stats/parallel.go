package stats

import "github.com/popsim/popsize/internal/pop"

// ParallelTrials runs fn(trial) for trial = 0..trials-1 on up to
// GOMAXPROCS workers and returns the results in trial order. fn must be
// safe for concurrent use across distinct trial indices (each trial should
// build its own simulator). It is a float64-specialized convenience over
// pop.RunTrials.
func ParallelTrials(trials int, fn func(trial int) float64) []float64 {
	return pop.RunTrials(trials, 0, fn)
}
