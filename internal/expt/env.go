package expt

import (
	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/sweep"
)

// Env is the engine environment a resolved suite binds at construction
// time: the simulation backend its trials build engines on, the
// intra-trial parallelism target (pop.WithParallelism semantics; 0 =
// auto), and the per-run trajectory instrumentation, if any. It is plain
// data captured by the Def generator closures — there is no process-wide
// engine configuration — so suites bound to different Envs can run
// concurrently in one process without coordinating. Generators that
// inherently need per-agent data (e.g. InteractionConcentration) stay on
// the sequential engine regardless of Env.Backend.
//
// The zero Env (auto backend, auto parallelism, no instrumentation) is
// the default the commands start from; EnvFor derives one from a request.
type Env struct {
	Backend pop.Backend
	Par     int
	// Traj is the single-run instrumentation (history stream, snapshot,
	// restore) applied by Env.RunCore; nil or inactive leaves trials
	// uninstrumented.
	Traj *TrajectoryConfig
}

// EnvFor resolves the engine environment a sweep request selects. The
// backend string is parsed here once; everything env-bound downstream —
// generator closures and the sweep.Spec Backend/Par stamp — flows from
// the returned value.
func EnvFor(req sweep.SpecRequest) (Env, error) {
	be, err := req.ParseBackend()
	if err != nil {
		return Env{}, err
	}
	return Env{Backend: be, Par: max(req.Par, 0)}, nil
}

// engineOpt returns the pop option encoding the env's backend and
// intra-trial parallelism.
func (e Env) engineOpt() pop.Option {
	return pop.Combine(pop.WithBackend(e.Backend), pop.WithParallelism(e.Par))
}

// runOptions is the core.RunOptions base an env-bound trial starts from.
func (e Env) runOptions(seed uint64) core.RunOptions {
	return core.RunOptions{Seed: seed, Backend: e.Backend, Parallelism: e.Par}
}
