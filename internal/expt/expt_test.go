package expt

import (
	"strings"
	"testing"

	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/synthcoin"
)

// The experiment generators are exercised end-to-end at tiny scale: every
// table must render, carry one row per requested configuration, and agree
// between its markdown and CSV forms.

func checkTable(t *testing.T, tb interface {
	Markdown() string
	CSV() string
}, wantRows int) {
	t.Helper()
	md := tb.Markdown()
	if !strings.Contains(md, "|") {
		t.Fatalf("markdown missing table: %q", md)
	}
	csv := tb.CSV()
	gotRows := strings.Count(csv, "\n") - 1 // minus header
	if gotRows != wantRows {
		t.Errorf("CSV has %d data rows, want %d\n%s", gotRows, wantRows, csv)
	}
}

func TestFig2Tiny(t *testing.T) {
	res := Fig2(core.FastConfig(), []int{64, 128}, 2, 1)
	checkTable(t, &res.Table, 2)
	if len(res.Points) != 4 {
		t.Errorf("points = %d, want 4", len(res.Points))
	}
}

func TestProtocolExperimentsTiny(t *testing.T) {
	cfg := core.FastConfig()
	checkTable(t, ptr(ErrorDistribution(cfg, []int{64}, 2, 1)), 1)
	checkTable(t, ptr(StateCount(cfg, []int{64}, 2, 1)), 1)
	checkTable(t, ptr(Partition(cfg, []int{64, 128}, 2, 1)), 2)
	checkTable(t, ptr(LogSize2Range(cfg, []int{64}, 2, 1)), 1)
	checkTable(t, ptr(InteractionConcentration([]int{128}, 2, 1)), 1)
}

func TestSubstrateExperimentsTiny(t *testing.T) {
	checkTable(t, ptr(Epidemic([]int{99}, 2, 1)), 1)
	checkTable(t, ptr(MaxGeometric([]int{128}, 200, 1)), 1)
	checkTable(t, ptr(SumOfMaxima([]int{128}, 50, 1)), 1)
	checkTable(t, ptr(Depletion([]int{128}, 2, 1)), 1)
}

func TestTerminationExperimentsTiny(t *testing.T) {
	cfg := core.FastConfig()
	checkTable(t, ptr(Producibility([]int{256}, 2, 1)), 2) // two protocols × one n
	checkTable(t, ptr(TerminationDense(cfg, []int{64}, 2, 1)), 1)
	checkTable(t, ptr(LeaderTermination(cfg, []int{64}, 2, 1)), 1)
}

func TestVariantExperimentsTiny(t *testing.T) {
	cfg := core.FastConfig()
	checkTable(t, ptr(UpperBound(cfg, []int{32}, 2, 1)), 1)
	checkTable(t, ptr(SyntheticCoin(cfg, synthcoin.FastConfig(), []int{64}, 2, 1)), 1)
}

func TestBaselineAndCompositionTiny(t *testing.T) {
	cfg := core.FastConfig()
	checkTable(t, ptr(Baselines(cfg, []int{64}, 2, 1)), 1)
	checkTable(t, ptr(Composition(128, []float64{0.5}, 2, 1)), 2) // majority row + leader row
}

func TestAblationsTiny(t *testing.T) {
	checkTable(t, ptr(AblationClockFactor(64, []int{8, 16}, 2, 1)), 2)
	checkTable(t, ptr(AblationEpochFactor(64, []int{1, 2}, 2, 1)), 2)
	checkTable(t, ptr(AblationNoRestart(64, 2, 1)), 2)
}

func TestChurnExperimentsTiny(t *testing.T) {
	// Reduced constants keep the tracked runs (a full convergence budget
	// per trial) cheap at test scale.
	cfg := core.Config{ClockFactor: 8, EpochFactor: 1, GeomBonus: 2}
	checkTable(t, ptr(ChurnTrackingDef(Env{}, cfg, []int{80}, []float64{1e-4, 1e-3}, 2).Table(1)), 2)
	checkTable(t, ptr(ChurnDetectionDef(Env{}, cfg, []int{80}, 2).Table(1)), 1)
}

func ptr[T any](t T) *T { return &t }
