// Package expt defines the experiment generators behind DESIGN.md's
// per-experiment index (F2, E1–E18, A1–A3). Each experiment is a Def:
// declarative sweep points (one trial function per grid cell) plus a
// renderer from the recorded trials to a stats.Table. Point construction
// binds an explicit engine Env (backend, intra-trial parallelism,
// trajectory instrumentation) into the trial closures — the package keeps
// no process-wide engine state — so suites bound to different Envs run
// concurrently in one process. cmd/experiments submits every selected Def
// into one sweep queue, streams JSONL records, and renders the tables;
// the root benchmarks re-run the generators at reduced scale.
package expt

import (
	"fmt"
	"math"

	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/stats"
	"github.com/popsim/popsize/internal/sweep"
)

// Fig2Result carries the Figure 2 reproduction data: per-trial convergence
// times plus the rendered table and scatter points.
type Fig2Result struct {
	Table  stats.Table
	Points []stats.Point
}

// Fig2Def is F2: convergence time of Log-Size-Estimation vs population
// size, `trials` runs per size. Convergence follows the paper's caption
// (all agents reach epoch = K) plus output delivery, and the per-trial
// estimate error is recorded alongside (the caption's "in practice the
// estimate is always within 2").
func Fig2Def(env Env, cfg core.Config, ns []int, trials int) Def {
	p := core.MustNew(cfg)
	const id = "F2"
	var points []sweep.Point
	for _, n := range ns {
		points = append(points, sweep.Point{
			Experiment: id, N: n, Trials: trials,
			Run: func(tr int, seed uint64) sweep.Values {
				r, err := env.RunCore(p, n, fmt.Sprintf("F2-n%d-t%d", n, tr), env.runOptions(seed))
				if err != nil {
					// Artifact-file I/O only (the Result itself is valid);
					// a worker goroutine has nowhere to return it.
					panic(fmt.Sprintf("expt: F2 trajectory artifact: %v", err))
				}
				t := r.Time
				if !r.Converged {
					t = math.NaN()
				}
				return sweep.Values{"time": t, "err": r.MaxErr}
			},
		})
	}
	render := func(res *sweep.Results) stats.Table {
		t := stats.Table{
			Title: "F2: Figure 2 — convergence time vs population size",
			Note: "Convergence = all agents reach epoch = K with a common logSize2 and hold " +
				"an output. Parallel time units (interactions/n).",
			Columns: []string{"n", "log2 n", "trials", "time mean", "time min", "time max",
				"time/log² n", "max |err|", "errs > 2"},
		}
		for _, n := range ns {
			times := res.Values(id, n, "time")
			over2 := 0
			maxErr := 0.0
			for _, e := range res.Values(id, n, "err") {
				if e > 2 {
					over2++
				}
				maxErr = math.Max(maxErr, e)
			}
			sum := stats.Summarize(times)
			logN := math.Log2(float64(n))
			t.AddRow(stats.I(n), stats.F(logN), stats.I(trials),
				stats.F(sum.Mean), stats.F(sum.Min), stats.F(sum.Max),
				stats.F(sum.Mean/(logN*logN)), stats.F(maxErr), stats.I(over2))
		}
		return t
	}
	return Def{ID: id, Env: env, Points: points, Render: render}
}

// Fig2Points extracts the Figure 2 scatter (per-trial convergence time vs
// n) from a sweep's results.
func Fig2Points(res *sweep.Results, ns []int) []stats.Point {
	var pts []stats.Point
	for _, n := range ns {
		for _, t := range res.Values("F2", n, "time") {
			pts = append(pts, stats.Point{X: float64(n), Y: t})
		}
	}
	return pts
}

// Fig2 runs the Figure 2 reproduction via a local sweep (legacy form).
func Fig2(cfg core.Config, ns []int, trials int, seedBase uint64) Fig2Result {
	d := Fig2Def(Env{}, cfg, ns, trials)
	res := runLocal(d.Env, d.Points, seedBase)
	return Fig2Result{Table: d.Render(res), Points: Fig2Points(res, ns)}
}
