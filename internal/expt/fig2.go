// Package expt defines the experiment generators behind DESIGN.md's
// per-experiment index (F2, E1–E17, A1–A3). Each generator returns a
// stats.Table; cmd/experiments renders them to markdown/CSV and the root
// benchmarks re-run them at reduced scale.
package expt

import (
	"math"

	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/stats"
)

// Fig2Result carries the Figure 2 reproduction data: per-trial convergence
// times plus the rendered table and scatter points.
type Fig2Result struct {
	Table  stats.Table
	Points []stats.Point
}

// Fig2 reproduces Figure 2: convergence time of Log-Size-Estimation vs
// population size, `trials` runs per size. Convergence follows the paper's
// caption (all agents reach epoch = K) plus output delivery, and the
// per-trial estimate error is recorded alongside (the caption's "in
// practice the estimate is always within 2").
func Fig2(cfg core.Config, ns []int, trials int, seedBase uint64) Fig2Result {
	p := core.MustNew(cfg)
	res := Fig2Result{
		Table: stats.Table{
			Title: "F2: Figure 2 — convergence time vs population size",
			Note: "Convergence = all agents reach epoch = K with a common logSize2 and hold " +
				"an output. Parallel time units (interactions/n).",
			Columns: []string{"n", "log2 n", "trials", "time mean", "time min", "time max",
				"time/log² n", "max |err|", "errs > 2"},
		},
	}
	for _, n := range ns {
		times := make([]float64, trials)
		errs := make([]float64, trials)
		rts := stats.ParallelTrials(trials, func(t int) float64 {
			r := p.Run(n, core.RunOptions{Seed: seedBase + uint64(t)*1001, Backend: Backend()})
			errs[t] = r.MaxErr
			if !r.Converged {
				return math.NaN()
			}
			return r.Time
		})
		copy(times, rts)
		over2 := 0
		maxErr := 0.0
		for _, e := range errs {
			if e > 2 {
				over2++
			}
			maxErr = math.Max(maxErr, e)
		}
		sum := stats.Summarize(times)
		logN := math.Log2(float64(n))
		res.Table.AddRow(stats.I(n), stats.F(logN), stats.I(trials),
			stats.F(sum.Mean), stats.F(sum.Min), stats.F(sum.Max),
			stats.F(sum.Mean/(logN*logN)), stats.F(maxErr), stats.I(over2))
		for _, t := range times {
			res.Points = append(res.Points, stats.Point{X: float64(n), Y: t})
		}
	}
	return res
}
