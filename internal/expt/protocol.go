package expt

import (
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/prob"
	"github.com/popsim/popsize/internal/stats"
)

// ErrorDistribution is E1: the additive-error distribution of the main
// protocol vs Theorem 3.1's |k − log n| <= 5.7 with failure probability
// 9/n.
func ErrorDistribution(cfg core.Config, ns []int, trials int, seedBase uint64) stats.Table {
	p := core.MustNew(cfg)
	t := stats.Table{
		Title: "E1: additive error |k − log n| (Theorem 3.1: <= 5.7 w.p. >= 1 − 9/n)",
		Columns: []string{"n", "trials", "err mean", "err q90", "err max",
			"> 5.7", "bound 9/n × trials"},
	}
	for _, n := range ns {
		errs := stats.ParallelTrials(trials, func(tr int) float64 {
			r := p.Run(n, core.RunOptions{Seed: seedBase + uint64(tr)*7919, Backend: Backend()})
			return r.MaxErr
		})
		over := 0
		for _, e := range errs {
			if e > prob.MainErrorBound {
				over++
			}
		}
		s := stats.Summarize(errs)
		t.AddRow(stats.I(n), stats.I(trials), stats.F(s.Mean), stats.F(s.Q90),
			stats.F(s.Max), stats.I(over),
			stats.F(prob.MainErrorFailureProb(n)*float64(trials)))
	}
	return t
}

// StateCount is E3: distinct states used per execution vs Lemma 3.9's
// O(log⁴ n), plus per-field maxima vs the lemma's table.
func StateCount(cfg core.Config, ns []int, trials int, seedBase uint64) stats.Table {
	p := core.MustNew(cfg)
	t := stats.Table{
		Title: "E3: state complexity (Lemma 3.9: O(log⁴ n) states w.h.p.)",
		Note: "states/log⁴n should stay bounded as n grows. Field maxima " +
			"correspond to Lemma 3.9's per-field ranges (constants scale with the preset).",
		Columns: []string{"n", "distinct states (mean)", "states/log⁴ n",
			"max logSize2", "max gr", "max time", "max epoch", "max sum"},
	}
	for _, n := range ns {
		maxima := make([]core.FieldMaxima, trials)
		counts := stats.ParallelTrials(trials, func(tr int) float64 {
			s := p.NewEngine(n, pop.WithSeed(seedBase+uint64(tr)*53), pop.WithStateTracking(), engineOpt())
			// Sample field maxima along the run (a converged snapshot has
			// all clocks reset, which would under-report the time field).
			var fm core.FieldMaxima
			ok := false
			deadline := p.DefaultMaxTime(n)
			for s.Time() < deadline {
				s.RunTime(math.Log2(float64(n)))
				m := core.Maxima(s)
				fm.LogSize2 = max(fm.LogSize2, m.LogSize2)
				fm.GR = max(fm.GR, m.GR)
				fm.Time = max(fm.Time, m.Time)
				fm.Epoch = max(fm.Epoch, m.Epoch)
				fm.Sum = max(fm.Sum, m.Sum)
				if p.Converged(s) {
					ok = true
					break
				}
			}
			maxima[tr] = fm
			if !ok {
				return math.NaN()
			}
			return float64(s.DistinctStates())
		})
		var fm core.FieldMaxima
		for _, m := range maxima {
			fm.LogSize2 = max(fm.LogSize2, m.LogSize2)
			fm.GR = max(fm.GR, m.GR)
			fm.Time = max(fm.Time, m.Time)
			fm.Epoch = max(fm.Epoch, m.Epoch)
			fm.Sum = max(fm.Sum, m.Sum)
		}
		s := stats.Summarize(counts)
		l4 := math.Pow(math.Log2(float64(n)), 4)
		t.AddRow(stats.I(n), stats.F(s.Mean), stats.F(s.Mean/l4),
			stats.I(int(fm.LogSize2)), stats.I(int(fm.GR)), stats.I(int(fm.Time)),
			stats.I(int(fm.Epoch)), stats.I(int(fm.Sum)))
	}
	return t
}

// Partition is E4: the |A| ≈ n/2 concentration of Lemma 3.2/Corollary 3.3.
func Partition(cfg core.Config, ns []int, trials int, seedBase uint64) stats.Table {
	p := core.MustNew(cfg)
	t := stats.Table{
		Title:   "E4: partition balance (Lemma 3.2: |#A − n/2| <= a w.p. >= 1 − 2e^(−2a²/n))",
		Columns: []string{"n", "trials", "mean |dev|", "max |dev|", "√(n ln n)", "beyond √(n ln n)"},
	}
	for _, n := range ns {
		devs := stats.ParallelTrials(trials, func(tr int) float64 {
			s := p.NewEngine(n, pop.WithSeed(seedBase+uint64(tr)*131), engineOpt())
			s.RunTime(8 * math.Log2(float64(n)))
			a := s.Count(func(st core.State) bool { return st.Role == core.RoleA })
			return math.Abs(float64(a) - float64(n)/2)
		})
		bound := math.Sqrt(float64(n) * math.Log(float64(n)))
		over := 0
		for _, d := range devs {
			if d > bound {
				over++
			}
		}
		s := stats.Summarize(devs)
		t.AddRow(stats.I(n), stats.I(trials), stats.F(s.Mean), stats.F(s.Max),
			stats.F(bound), stats.I(over))
	}
	return t
}

// LogSize2Range is E5: the weak estimate's Lemma 3.8 interval
// [log n − log ln n, 2 log n + 1], plus Corollary A.2's gr interval.
func LogSize2Range(cfg core.Config, ns []int, trials int, seedBase uint64) stats.Table {
	p := core.MustNew(cfg)
	t := stats.Table{
		Title:   "E5: logSize2 range (Lemma 3.8) — effective value = raw + bonus",
		Columns: []string{"n", "lo bound", "hi bound", "min seen", "max seen", "outside"},
	}
	for _, n := range ns {
		lo, hi := prob.LogSize2Interval(n)
		vals := stats.ParallelTrials(trials, func(tr int) float64 {
			s := p.NewEngine(n, pop.WithSeed(seedBase+uint64(tr)*977), engineOpt())
			s.RunTime(10 * math.Log2(float64(n)))
			// By this time the maximum has propagated to all agents.
			return float64(core.Maxima(s).LogSize2 + uint8(cfg.GeomBonus))
		})
		outside := 0
		for _, v := range vals {
			if v < lo || v > hi {
				outside++
			}
		}
		s := stats.Summarize(vals)
		t.AddRow(stats.I(n), stats.F(lo), stats.F(hi), stats.F(s.Min), stats.F(s.Max),
			stats.I(outside))
	}
	return t
}

// InteractionConcentration is E7: Lemma 3.6 — in C·ln n time no agent has
// more than D·ln n = (2C+√12C)·ln n interactions, w.p. >= 1 − 1/n. It
// needs per-agent interaction counts, which only the sequential engine
// provides, so it ignores the package backend setting.
func InteractionConcentration(ns []int, trials int, seedBase uint64) stats.Table {
	const c = 3.0
	d := prob.InteractionCountD(c)
	t := stats.Table{
		Title:   fmt.Sprintf("E7: interaction concentration (Lemma 3.6, C = %.0f, D = %.2f)", c, d),
		Columns: []string{"n", "trials", "window C·ln n", "max count seen", "bound D·ln n", "violations"},
	}
	for _, n := range ns {
		window := c * math.Log(float64(n))
		bound := d * math.Log(float64(n))
		maxes := stats.ParallelTrials(trials, func(tr int) float64 {
			s := pop.New(n, func(int, *rand.Rand) struct{} { return struct{}{} },
				func(a, b struct{}, _ *rand.Rand) (struct{}, struct{}) { return a, b },
				pop.WithSeed(seedBase+uint64(tr)*389), pop.WithInteractionCounts())
			s.RunTime(window)
			return float64(s.MaxInteractionCount())
		})
		viol := 0
		for _, m := range maxes {
			if m > bound {
				viol++
			}
		}
		s := stats.Summarize(maxes)
		t.AddRow(stats.I(n), stats.I(trials), stats.F(window), stats.F(s.Max),
			stats.F(bound), stats.I(viol))
	}
	return t
}

// AblationClockFactor is A1: sweep the per-epoch threshold multiplier.
func AblationClockFactor(n int, factors []int, trials int, seedBase uint64) stats.Table {
	t := stats.Table{
		Title: fmt.Sprintf("A1: clock-factor ablation at n = %d (paper: 95)", n),
		Note: "Small factors end epochs before the max-gr epidemic completes, " +
			"inflating error; large factors only cost time.",
		Columns: []string{"clock factor", "err mean", "err max", "time mean"},
	}
	for _, f := range factors {
		cfg := core.FastConfig()
		cfg.ClockFactor = f
		p := core.MustNew(cfg)
		errs := make([]float64, trials)
		times := stats.ParallelTrials(trials, func(tr int) float64 {
			r := p.Run(n, core.RunOptions{Seed: seedBase + uint64(tr)*17, Backend: Backend()})
			errs[tr] = r.MaxErr
			return r.Time
		})
		es, ts := stats.Summarize(errs), stats.Summarize(times)
		t.AddRow(stats.I(f), stats.F(es.Mean), stats.F(es.Max), stats.F(ts.Mean))
	}
	return t
}

// AblationEpochFactor is A2: sweep K = factor·L against Corollary D.10's
// K >= 4·log n requirement.
func AblationEpochFactor(n int, factors []int, trials int, seedBase uint64) stats.Table {
	t := stats.Table{
		Title: fmt.Sprintf("A2: epoch-factor ablation at n = %d (paper: 5; Cor D.10 needs K >= 4 log n)", n),
		Note: "Fewer epochs mean fewer samples in the average: error variance grows " +
			"as the factor shrinks.",
		Columns: []string{"epoch factor", "K (typ.)", "err mean", "err std", "time mean"},
	}
	for _, f := range factors {
		cfg := core.FastConfig()
		cfg.EpochFactor = f
		p := core.MustNew(cfg)
		errs := make([]float64, trials)
		ks := make([]float64, trials)
		times := stats.ParallelTrials(trials, func(tr int) float64 {
			r := p.Run(n, core.RunOptions{Seed: seedBase + uint64(tr)*29, Backend: Backend()})
			errs[tr] = r.MaxErr
			ks[tr] = float64(cfg.EpochTarget(uint8(r.LogSize2)))
			return r.Time
		})
		es, ts, kss := stats.Summarize(errs), stats.Summarize(times), stats.Summarize(ks)
		t.AddRow(stats.I(f), stats.F(kss.Mean), stats.F(es.Mean), stats.F(es.Std), stats.F(ts.Mean))
	}
	return t
}

// AblationNoRestart is A3: disable the restart scheme and show the error
// blow-up (agents keep progress made under stale, too-small estimates).
func AblationNoRestart(n int, trials int, seedBase uint64) stats.Table {
	t := stats.Table{
		Title:   fmt.Sprintf("A3: restart-scheme ablation at n = %d", n),
		Columns: []string{"restart", "err mean", "err max", "converged"},
	}
	for _, disable := range []bool{false, true} {
		cfg := core.FastConfig()
		cfg.DisableRestart = disable
		p := core.MustNew(cfg)
		converged := make([]bool, trials)
		errs := stats.ParallelTrials(trials, func(tr int) float64 {
			r := p.Run(n, core.RunOptions{Seed: seedBase + uint64(tr)*43, Backend: Backend()})
			converged[tr] = r.Converged
			return r.MaxErr
		})
		conv := 0
		for _, c := range converged {
			if c {
				conv++
			}
		}
		s := stats.Summarize(errs)
		label := "on"
		if disable {
			label = "off"
		}
		t.AddRow(label, stats.F(s.Mean), stats.F(s.Max), fmt.Sprintf("%d/%d", conv, trials))
	}
	return t
}
