package expt

import (
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/prob"
	"github.com/popsim/popsize/internal/stats"
	"github.com/popsim/popsize/internal/sweep"
)

// ErrorDistributionDef is E1: the additive-error distribution of the main
// protocol vs Theorem 3.1's |k − log n| <= 5.7 with failure probability
// 9/n.
func ErrorDistributionDef(env Env, cfg core.Config, ns []int, trials int) Def {
	p := core.MustNew(cfg)
	const id = "E1"
	var points []sweep.Point
	for _, n := range ns {
		points = append(points, sweep.Point{
			Experiment: id, N: n, Trials: trials,
			Run: func(tr int, seed uint64) sweep.Values {
				r := p.Run(n, env.runOptions(seed))
				return sweep.Values{"err": r.MaxErr}
			},
		})
	}
	render := func(res *sweep.Results) stats.Table {
		t := stats.Table{
			Title: "E1: additive error |k − log n| (Theorem 3.1: <= 5.7 w.p. >= 1 − 9/n)",
			Columns: []string{"n", "trials", "err mean", "err q90", "err max",
				"> 5.7", "bound 9/n × trials"},
		}
		for _, n := range ns {
			errs := res.Values(id, n, "err")
			over := 0
			for _, e := range errs {
				if e > prob.MainErrorBound {
					over++
				}
			}
			s := stats.Summarize(errs)
			t.AddRow(stats.I(n), stats.I(trials), stats.F(s.Mean), stats.F(s.Q90),
				stats.F(s.Max), stats.I(over),
				stats.F(prob.MainErrorFailureProb(n)*float64(trials)))
		}
		return t
	}
	return Def{ID: id, Env: env, Points: points, Render: render}
}

// ErrorDistribution renders E1 via a local sweep (legacy form).
func ErrorDistribution(cfg core.Config, ns []int, trials int, seedBase uint64) stats.Table {
	return ErrorDistributionDef(Env{}, cfg, ns, trials).Table(seedBase)
}

// StateCountDef is E3: distinct states used per execution vs Lemma 3.9's
// O(log⁴ n), plus per-field maxima vs the lemma's table.
func StateCountDef(env Env, cfg core.Config, ns []int, trials int) Def {
	p := core.MustNew(cfg)
	const id = "E3"
	var points []sweep.Point
	for _, n := range ns {
		points = append(points, sweep.Point{
			Experiment: id, N: n, Trials: trials,
			Run: func(tr int, seed uint64) sweep.Values {
				s := p.NewEngine(n, pop.WithSeed(seed), pop.WithStateTracking(), env.engineOpt())
				// Sample field maxima along the run (a converged snapshot has
				// all clocks reset, which would under-report the time field).
				var fm core.FieldMaxima
				ok := false
				deadline := p.DefaultMaxTime(n)
				for s.Time() < deadline {
					s.RunTime(math.Log2(float64(n)))
					m := core.Maxima(s)
					fm.LogSize2 = max(fm.LogSize2, m.LogSize2)
					fm.GR = max(fm.GR, m.GR)
					fm.Time = max(fm.Time, m.Time)
					fm.Epoch = max(fm.Epoch, m.Epoch)
					fm.Sum = max(fm.Sum, m.Sum)
					if p.Converged(s) {
						ok = true
						break
					}
				}
				states := math.NaN()
				if ok {
					states = float64(s.DistinctStates())
				}
				return sweep.Values{
					"states":       states,
					"max_logsize2": float64(fm.LogSize2),
					"max_gr":       float64(fm.GR),
					"max_time":     float64(fm.Time),
					"max_epoch":    float64(fm.Epoch),
					"max_sum":      float64(fm.Sum),
				}
			},
		})
	}
	render := func(res *sweep.Results) stats.Table {
		t := stats.Table{
			Title: "E3: state complexity (Lemma 3.9: O(log⁴ n) states w.h.p.)",
			Note: "states/log⁴n should stay bounded as n grows. Field maxima " +
				"correspond to Lemma 3.9's per-field ranges (constants scale with the preset).",
			Columns: []string{"n", "distinct states (mean)", "states/log⁴ n",
				"max logSize2", "max gr", "max time", "max epoch", "max sum"},
		}
		maxOf := func(n int, field string) int {
			m := 0.0
			for _, v := range res.Values(id, n, field) {
				m = math.Max(m, v)
			}
			return int(m)
		}
		for _, n := range ns {
			s := stats.Summarize(res.Values(id, n, "states"))
			l4 := math.Pow(math.Log2(float64(n)), 4)
			t.AddRow(stats.I(n), stats.F(s.Mean), stats.F(s.Mean/l4),
				stats.I(maxOf(n, "max_logsize2")), stats.I(maxOf(n, "max_gr")),
				stats.I(maxOf(n, "max_time")), stats.I(maxOf(n, "max_epoch")),
				stats.I(maxOf(n, "max_sum")))
		}
		return t
	}
	return Def{ID: id, Env: env, Points: points, Render: render}
}

// StateCount renders E3 via a local sweep (legacy form).
func StateCount(cfg core.Config, ns []int, trials int, seedBase uint64) stats.Table {
	return StateCountDef(Env{}, cfg, ns, trials).Table(seedBase)
}

// PartitionDef is E4: the |A| ≈ n/2 concentration of Lemma 3.2/Cor 3.3.
func PartitionDef(env Env, cfg core.Config, ns []int, trials int) Def {
	p := core.MustNew(cfg)
	const id = "E4"
	var points []sweep.Point
	for _, n := range ns {
		points = append(points, sweep.Point{
			Experiment: id, N: n, Trials: trials,
			Run: func(tr int, seed uint64) sweep.Values {
				s := p.NewEngine(n, pop.WithSeed(seed), env.engineOpt())
				s.RunTime(8 * math.Log2(float64(n)))
				a := s.Count(func(st core.State) bool { return st.Role == core.RoleA })
				return sweep.Values{"dev": math.Abs(float64(a) - float64(n)/2)}
			},
		})
	}
	render := func(res *sweep.Results) stats.Table {
		t := stats.Table{
			Title:   "E4: partition balance (Lemma 3.2: |#A − n/2| <= a w.p. >= 1 − 2e^(−2a²/n))",
			Columns: []string{"n", "trials", "mean |dev|", "max |dev|", "√(n ln n)", "beyond √(n ln n)"},
		}
		for _, n := range ns {
			devs := res.Values(id, n, "dev")
			bound := math.Sqrt(float64(n) * math.Log(float64(n)))
			over := 0
			for _, d := range devs {
				if d > bound {
					over++
				}
			}
			s := stats.Summarize(devs)
			t.AddRow(stats.I(n), stats.I(trials), stats.F(s.Mean), stats.F(s.Max),
				stats.F(bound), stats.I(over))
		}
		return t
	}
	return Def{ID: id, Env: env, Points: points, Render: render}
}

// Partition renders E4 via a local sweep (legacy form).
func Partition(cfg core.Config, ns []int, trials int, seedBase uint64) stats.Table {
	return PartitionDef(Env{}, cfg, ns, trials).Table(seedBase)
}

// LogSize2RangeDef is E5: the weak estimate's Lemma 3.8 interval
// [log n − log ln n, 2 log n + 1], plus Corollary A.2's gr interval.
func LogSize2RangeDef(env Env, cfg core.Config, ns []int, trials int) Def {
	p := core.MustNew(cfg)
	const id = "E5"
	var points []sweep.Point
	for _, n := range ns {
		points = append(points, sweep.Point{
			Experiment: id, N: n, Trials: trials,
			Run: func(tr int, seed uint64) sweep.Values {
				s := p.NewEngine(n, pop.WithSeed(seed), env.engineOpt())
				s.RunTime(10 * math.Log2(float64(n)))
				// By this time the maximum has propagated to all agents.
				return sweep.Values{"val": float64(core.Maxima(s).LogSize2 + uint8(cfg.GeomBonus))}
			},
		})
	}
	render := func(res *sweep.Results) stats.Table {
		t := stats.Table{
			Title:   "E5: logSize2 range (Lemma 3.8) — effective value = raw + bonus",
			Columns: []string{"n", "lo bound", "hi bound", "min seen", "max seen", "outside"},
		}
		for _, n := range ns {
			lo, hi := prob.LogSize2Interval(n)
			vals := res.Values(id, n, "val")
			outside := 0
			for _, v := range vals {
				if v < lo || v > hi {
					outside++
				}
			}
			s := stats.Summarize(vals)
			t.AddRow(stats.I(n), stats.F(lo), stats.F(hi), stats.F(s.Min), stats.F(s.Max),
				stats.I(outside))
		}
		return t
	}
	return Def{ID: id, Env: env, Points: points, Render: render}
}

// LogSize2Range renders E5 via a local sweep (legacy form).
func LogSize2Range(cfg core.Config, ns []int, trials int, seedBase uint64) stats.Table {
	return LogSize2RangeDef(Env{}, cfg, ns, trials).Table(seedBase)
}

// InteractionConcentrationDef is E7: Lemma 3.6 — in C·ln n time no agent
// has more than D·ln n = (2C+√12C)·ln n interactions, w.p. >= 1 − 1/n. It
// needs per-agent interaction counts, which only the sequential engine
// provides, so its trials ignore the env's backend selection.
func InteractionConcentrationDef(env Env, ns []int, trials int) Def {
	const c = 3.0
	d := prob.InteractionCountD(c)
	const id = "E7"
	var points []sweep.Point
	for _, n := range ns {
		points = append(points, sweep.Point{
			Experiment: id, N: n, Trials: trials,
			Run: func(tr int, seed uint64) sweep.Values {
				s := pop.New(n, func(int, *rand.Rand) struct{} { return struct{}{} },
					func(a, b struct{}, _ *rand.Rand) (struct{}, struct{}) { return a, b },
					pop.WithSeed(seed), pop.WithInteractionCounts())
				s.RunTime(c * math.Log(float64(n)))
				return sweep.Values{"maxcount": float64(s.MaxInteractionCount())}
			},
		})
	}
	render := func(res *sweep.Results) stats.Table {
		t := stats.Table{
			Title:   fmt.Sprintf("E7: interaction concentration (Lemma 3.6, C = %.0f, D = %.2f)", c, d),
			Columns: []string{"n", "trials", "window C·ln n", "max count seen", "bound D·ln n", "violations"},
		}
		for _, n := range ns {
			window := c * math.Log(float64(n))
			bound := d * math.Log(float64(n))
			maxes := res.Values(id, n, "maxcount")
			viol := 0
			for _, m := range maxes {
				if m > bound {
					viol++
				}
			}
			s := stats.Summarize(maxes)
			t.AddRow(stats.I(n), stats.I(trials), stats.F(window), stats.F(s.Max),
				stats.F(bound), stats.I(viol))
		}
		return t
	}
	return Def{ID: id, Env: env, Points: points, Render: render}
}

// InteractionConcentration renders E7 via a local sweep (legacy form).
func InteractionConcentration(ns []int, trials int, seedBase uint64) stats.Table {
	return InteractionConcentrationDef(Env{}, ns, trials).Table(seedBase)
}

// AblationClockFactorDef is A1: sweep the per-epoch threshold multiplier.
func AblationClockFactorDef(env Env, n int, factors []int, trials int) Def {
	const id = "A1"
	var points []sweep.Point
	for _, f := range factors {
		cfg := core.FastConfig()
		cfg.ClockFactor = f
		p := core.MustNew(cfg)
		points = append(points, sweep.Point{
			Experiment: fmt.Sprintf("%s/cf=%d", id, f), N: n, Trials: trials,
			Run: func(tr int, seed uint64) sweep.Values {
				r := p.Run(n, env.runOptions(seed))
				return sweep.Values{"err": r.MaxErr, "time": r.Time}
			},
		})
	}
	render := func(res *sweep.Results) stats.Table {
		t := stats.Table{
			Title: fmt.Sprintf("A1: clock-factor ablation at n = %d (paper: 95)", n),
			Note: "Small factors end epochs before the max-gr epidemic completes, " +
				"inflating error; large factors only cost time.",
			Columns: []string{"clock factor", "err mean", "err max", "time mean"},
		}
		for _, f := range factors {
			exp := fmt.Sprintf("%s/cf=%d", id, f)
			es := stats.Summarize(res.Values(exp, n, "err"))
			ts := stats.Summarize(res.Values(exp, n, "time"))
			t.AddRow(stats.I(f), stats.F(es.Mean), stats.F(es.Max), stats.F(ts.Mean))
		}
		return t
	}
	return Def{ID: id, Env: env, Points: points, Render: render}
}

// AblationClockFactor renders A1 via a local sweep (legacy form).
func AblationClockFactor(n int, factors []int, trials int, seedBase uint64) stats.Table {
	return AblationClockFactorDef(Env{}, n, factors, trials).Table(seedBase)
}

// AblationEpochFactorDef is A2: sweep K = factor·L against Corollary
// D.10's K >= 4·log n requirement.
func AblationEpochFactorDef(env Env, n int, factors []int, trials int) Def {
	const id = "A2"
	var points []sweep.Point
	for _, f := range factors {
		cfg := core.FastConfig()
		cfg.EpochFactor = f
		p := core.MustNew(cfg)
		points = append(points, sweep.Point{
			Experiment: fmt.Sprintf("%s/ef=%d", id, f), N: n, Trials: trials,
			Run: func(tr int, seed uint64) sweep.Values {
				r := p.Run(n, env.runOptions(seed))
				return sweep.Values{
					"err":  r.MaxErr,
					"k":    float64(cfg.EpochTarget(uint8(r.LogSize2))),
					"time": r.Time,
				}
			},
		})
	}
	render := func(res *sweep.Results) stats.Table {
		t := stats.Table{
			Title: fmt.Sprintf("A2: epoch-factor ablation at n = %d (paper: 5; Cor D.10 needs K >= 4 log n)", n),
			Note: "Fewer epochs mean fewer samples in the average: error variance grows " +
				"as the factor shrinks.",
			Columns: []string{"epoch factor", "K (typ.)", "err mean", "err std", "time mean"},
		}
		for _, f := range factors {
			exp := fmt.Sprintf("%s/ef=%d", id, f)
			es := stats.Summarize(res.Values(exp, n, "err"))
			ts := stats.Summarize(res.Values(exp, n, "time"))
			ks := stats.Summarize(res.Values(exp, n, "k"))
			t.AddRow(stats.I(f), stats.F(ks.Mean), stats.F(es.Mean), stats.F(es.Std), stats.F(ts.Mean))
		}
		return t
	}
	return Def{ID: id, Env: env, Points: points, Render: render}
}

// AblationEpochFactor renders A2 via a local sweep (legacy form).
func AblationEpochFactor(n int, factors []int, trials int, seedBase uint64) stats.Table {
	return AblationEpochFactorDef(Env{}, n, factors, trials).Table(seedBase)
}

// AblationNoRestartDef is A3: disable the restart scheme and show the
// error blow-up (agents keep progress made under stale, too-small
// estimates).
func AblationNoRestartDef(env Env, n int, trials int) Def {
	const id = "A3"
	labels := map[bool]string{false: "on", true: "off"}
	var points []sweep.Point
	for _, disable := range []bool{false, true} {
		cfg := core.FastConfig()
		cfg.DisableRestart = disable
		p := core.MustNew(cfg)
		points = append(points, sweep.Point{
			Experiment: fmt.Sprintf("%s/restart=%s", id, labels[disable]), N: n, Trials: trials,
			Run: func(tr int, seed uint64) sweep.Values {
				r := p.Run(n, env.runOptions(seed))
				return sweep.Values{"err": r.MaxErr, "converged": sweep.Bool(r.Converged)}
			},
		})
	}
	render := func(res *sweep.Results) stats.Table {
		t := stats.Table{
			Title:   fmt.Sprintf("A3: restart-scheme ablation at n = %d", n),
			Columns: []string{"restart", "err mean", "err max", "converged"},
		}
		for _, disable := range []bool{false, true} {
			exp := fmt.Sprintf("%s/restart=%s", id, labels[disable])
			conv := 0
			for _, c := range res.Values(exp, n, "converged") {
				if c == 1 {
					conv++
				}
			}
			s := stats.Summarize(res.Values(exp, n, "err"))
			t.AddRow(labels[disable], stats.F(s.Mean), stats.F(s.Max),
				fmt.Sprintf("%d/%d", conv, trials))
		}
		return t
	}
	return Def{ID: id, Env: env, Points: points, Render: render}
}

// AblationNoRestart renders A3 via a local sweep (legacy form).
func AblationNoRestart(n int, trials int, seedBase uint64) stats.Table {
	return AblationNoRestartDef(Env{}, n, trials).Table(seedBase)
}
