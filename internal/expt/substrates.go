package expt

import (
	"math"
	"math/rand/v2"

	"github.com/popsim/popsize/internal/epidemic"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/prob"
	"github.com/popsim/popsize/internal/stats"
	"github.com/popsim/popsize/internal/sweep"
)

// EpidemicDef is E6: completion times of full-population and
// n/3-subpopulation epidemics vs Lemma A.1 / Corollary 3.5. The two
// sub-experiments are separate sweep points ("E6/full", "E6/sub"), so
// their trials parallelize independently and draw independent seeds.
func EpidemicDef(env Env, ns []int, trials int) Def {
	const id = "E6"
	var points []sweep.Point
	for _, n := range ns {
		points = append(points,
			sweep.Point{
				Experiment: id + "/full", N: n, Trials: trials,
				Run: func(tr int, seed uint64) sweep.Values {
					s := epidemic.NewEngine(n, 1, pop.WithSeed(seed), env.engineOpt())
					at, ok := epidemic.CompletionTime(s, 1e6)
					if !ok {
						at = math.NaN()
					}
					return sweep.Values{"time": at}
				},
			},
			sweep.Point{
				Experiment: id + "/sub", N: n, Trials: trials,
				Run: func(tr int, seed uint64) sweep.Values {
					s := epidemic.NewSubpopEngine(n, n/3, 1, pop.WithSeed(seed), env.engineOpt())
					at, ok := epidemic.CompletionTime(s, 1e7)
					if !ok {
						at = math.NaN()
					}
					return sweep.Values{"time": at}
				},
			})
	}
	render := func(res *sweep.Results) stats.Table {
		t := stats.Table{
			Title: "E6: epidemic completion time (Lemma A.1; Cor 3.5 subpopulation bound 24 ln n)",
			Columns: []string{"n", "E[T] = H(n−1)", "full mean", "full max",
				"sub(n/3) mean", "sub max", "24 ln n", "sub > bound"},
		}
		for _, n := range ns {
			full := res.Values(id+"/full", n, "time")
			sub := res.Values(id+"/sub", n, "time")
			bound := 24 * math.Log(float64(n))
			over := 0
			for _, v := range sub {
				if v > bound {
					over++
				}
			}
			fs, ss := stats.Summarize(full), stats.Summarize(sub)
			t.AddRow(stats.I(n), stats.F(prob.ExpectedEpidemicTime(n)),
				stats.F(fs.Mean), stats.F(fs.Max), stats.F(ss.Mean), stats.F(ss.Max),
				stats.F(bound), stats.I(over))
		}
		return t
	}
	return Def{ID: id, Env: env, Points: points, Render: render}
}

// Epidemic renders E6 via a local sweep (legacy form).
func Epidemic(ns []int, trials int, seedBase uint64) stats.Table {
	return EpidemicDef(Env{}, ns, trials).Table(seedBase)
}

// MaxGeometricDef is E8: expectation and tails of the maximum of N
// geometric random variables vs Lemma D.4 / Lemma D.7 / Corollary D.6.
// Each population size is one single-trial point whose trial draws all
// `samples` IID maxima from its derived seed.
func MaxGeometricDef(env Env, ns []int, samples int) Def {
	const id = "E8"
	var points []sweep.Point
	for _, n := range ns {
		points = append(points, sweep.Point{
			Experiment: id, N: n, Trials: 1,
			Run: func(tr int, seed uint64) sweep.Values {
				r := rand.New(rand.NewPCG(seed, 99))
				sum := 0.0
				upper, lower := 0, 0
				logN := math.Log2(float64(n))
				loThr := logN - math.Log2(math.Log(float64(n)))
				for i := 0; i < samples; i++ {
					m := float64(prob.MaxGeometric(r, n))
					sum += m
					if m >= 2*logN {
						upper++
					}
					if m <= loThr {
						lower++
					}
				}
				return sweep.Values{
					"mean":  sum / float64(samples),
					"upper": float64(upper),
					"lower": float64(lower),
				}
			},
		})
	}
	render := func(res *sweep.Results) stats.Table {
		t := stats.Table{
			Title: "E8: max of N geometric RVs (Lemma D.4: log N + 1 < E[M] < log N + 3/2; Lemma D.7 tails)",
			Note: "Lemma D.7 states 1/N bounds under the convention Pr[G >= t] = 2^(−t); " +
				"with the flips-including-the-head convention used here (Pr[G >= t] = " +
				"2^(−t+1)) the exact upper tail is 2/N, which is what the measurements track.",
			Columns: []string{"N", "E[M] lo", "mean", "E[M] hi",
				"Pr[M >= 2 log N]", "bound 2/N", "Pr[M <= log N − log ln N]", "bound 1/N"},
		}
		for _, n := range ns {
			rec, _ := res.Get(id, n, 0)
			lo, hi := prob.MaxGeomExpectationBounds(n)
			t.AddRow(stats.I(n), stats.F(lo), stats.F(rec.Values["mean"]), stats.F(hi),
				stats.F(rec.Values["upper"]/float64(samples)), stats.F(2/float64(n)),
				stats.F(rec.Values["lower"]/float64(samples)), stats.F(1/float64(n)))
		}
		return t
	}
	return Def{ID: id, Env: env, Points: points, Render: render}
}

// MaxGeometric renders E8 via a local sweep (legacy form).
func MaxGeometric(ns []int, samples int, seedBase uint64) stats.Table {
	return MaxGeometricDef(Env{}, ns, samples).Table(seedBase)
}

// SumOfMaximaDef is E9: Corollary D.10 — the average of K = 4 log N maxima
// is within 4.7 of log N except with probability <= 2/N.
func SumOfMaximaDef(env Env, ns []int, samples int) Def {
	const id = "E9"
	var points []sweep.Point
	for _, n := range ns {
		points = append(points, sweep.Point{
			Experiment: id, N: n, Trials: 1,
			Run: func(tr int, seed uint64) sweep.Values {
				k := prob.CorD10MinK(n)
				r := rand.New(rand.NewPCG(seed, 7))
				logN := math.Log2(float64(n))
				devSum, devMax := 0.0, 0.0
				viol := 0
				for i := 0; i < samples; i++ {
					s := prob.SumOfMaxima(r, k, n)
					dev := math.Abs(float64(s)/float64(k) - logN)
					devSum += dev
					devMax = math.Max(devMax, dev)
					if dev >= 4.7 {
						viol++
					}
				}
				return sweep.Values{
					"meandev": devSum / float64(samples),
					"maxdev":  devMax,
					"viol":    float64(viol),
				}
			},
		})
	}
	render := func(res *sweep.Results) stats.Table {
		t := stats.Table{
			Title:   "E9: sums of maxima Chernoff (Cor D.10: |S/K − log N| < 4.7 w.p. >= 1 − 2/N)",
			Columns: []string{"N", "K", "mean |S/K − log N|", "max", "violations", "bound 2/N × samples"},
		}
		for _, n := range ns {
			rec, _ := res.Get(id, n, 0)
			t.AddRow(stats.I(n), stats.I(prob.CorD10MinK(n)), stats.F(rec.Values["meandev"]),
				stats.F(rec.Values["maxdev"]), stats.I(int(rec.Values["viol"])),
				stats.F(prob.CorD10Bound(n)*float64(samples)))
		}
		return t
	}
	return Def{ID: id, Env: env, Points: points, Render: render}
}

// SumOfMaxima renders E9 via a local sweep (legacy form).
func SumOfMaxima(ns []int, samples int, seedBase uint64) stats.Table {
	return SumOfMaximaDef(Env{}, ns, samples).Table(seedBase)
}

// DepletionDef is E10: Lemma E.2 / Corollary E.3 — a state starting at
// count k cannot fall below k/81 within one time unit (empirically, its
// minimum over the window vs the paper's bound).
func DepletionDef(env Env, ns []int, trials int) Def {
	const id = "E10"
	// consume flips tracked agents to the dead state on every interaction:
	// the harshest consumption rate the lemma's coupling allows.
	consume := func(rec, sen bool, _ *rand.Rand) (bool, bool) { return false, false }
	var points []sweep.Point
	for _, n := range ns {
		points = append(points, sweep.Point{
			Experiment: id, N: n, Trials: trials,
			Run: func(tr int, seed uint64) sweep.Values {
				k := n / 2
				s := pop.NewEngine(n, func(i int, _ *rand.Rand) bool { return i < k }, consume,
					pop.WithSeed(seed), env.engineOpt())
				minFrac := 1.0
				for step := 0; step < 20; step++ {
					s.RunTime(0.05)
					f := float64(s.Count(func(b bool) bool { return b })) / float64(k)
					minFrac = math.Min(minFrac, f)
				}
				return sweep.Values{"minfrac": minFrac}
			},
		})
	}
	render := func(res *sweep.Results) stats.Table {
		t := stats.Table{
			Title: "E10: state depletion (Cor E.3: count stays > k/81 for 1 time unit w.p. >= 1 − 2^(−k/81))",
			Note: "Worst-case consumer: every interaction converts both participants. " +
				"k = n/2 agents start in the tracked state.",
			Columns: []string{"n", "k", "min fraction seen", "k/81 fraction", "violations"},
		}
		for _, n := range ns {
			mins := res.Values(id, n, "minfrac")
			viol := 0
			for _, m := range mins {
				if m <= 1.0/81 {
					viol++
				}
			}
			s := stats.Summarize(mins)
			t.AddRow(stats.I(n), stats.I(n/2), stats.F(s.Min), stats.F(1.0/81), stats.I(viol))
		}
		return t
	}
	return Def{ID: id, Env: env, Points: points, Render: render}
}

// Depletion renders E10 via a local sweep (legacy form).
func Depletion(ns []int, trials int, seedBase uint64) stats.Table {
	return DepletionDef(Env{}, ns, trials).Table(seedBase)
}
