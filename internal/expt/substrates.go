package expt

import (
	"math"
	"math/rand/v2"

	"github.com/popsim/popsize/internal/epidemic"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/prob"
	"github.com/popsim/popsize/internal/stats"
)

// Epidemic is E6: completion times of full-population and n/3-subpopulation
// epidemics vs Lemma A.1 / Corollary 3.5.
func Epidemic(ns []int, trials int, seedBase uint64) stats.Table {
	t := stats.Table{
		Title: "E6: epidemic completion time (Lemma A.1; Cor 3.5 subpopulation bound 24 ln n)",
		Columns: []string{"n", "E[T] = H(n−1)", "full mean", "full max",
			"sub(n/3) mean", "sub max", "24 ln n", "sub > bound"},
	}
	for _, n := range ns {
		full := stats.ParallelTrials(trials, func(tr int) float64 {
			s := epidemic.NewEngine(n, 1, pop.WithSeed(seedBase+uint64(tr)*7), engineOpt())
			at, ok := epidemic.CompletionTime(s, 1e6)
			if !ok {
				return math.NaN()
			}
			return at
		})
		sub := stats.ParallelTrials(trials, func(tr int) float64 {
			s := epidemic.NewSubpopEngine(n, n/3, 1, pop.WithSeed(seedBase+uint64(tr)*13), engineOpt())
			at, ok := epidemic.CompletionTime(s, 1e7)
			if !ok {
				return math.NaN()
			}
			return at
		})
		bound := 24 * math.Log(float64(n))
		over := 0
		for _, v := range sub {
			if v > bound {
				over++
			}
		}
		fs, ss := stats.Summarize(full), stats.Summarize(sub)
		t.AddRow(stats.I(n), stats.F(prob.ExpectedEpidemicTime(n)),
			stats.F(fs.Mean), stats.F(fs.Max), stats.F(ss.Mean), stats.F(ss.Max),
			stats.F(bound), stats.I(over))
	}
	return t
}

// MaxGeometric is E8: expectation and tails of the maximum of N geometric
// random variables vs Lemma D.4 / Lemma D.7 / Corollary D.6.
func MaxGeometric(ns []int, samples int, seedBase uint64) stats.Table {
	t := stats.Table{
		Title: "E8: max of N geometric RVs (Lemma D.4: log N + 1 < E[M] < log N + 3/2; Lemma D.7 tails)",
		Note: "Lemma D.7 states 1/N bounds under the convention Pr[G >= t] = 2^(−t); " +
			"with the flips-including-the-head convention used here (Pr[G >= t] = " +
			"2^(−t+1)) the exact upper tail is 2/N, which is what the measurements track.",
		Columns: []string{"N", "E[M] lo", "mean", "E[M] hi",
			"Pr[M >= 2 log N]", "bound 2/N", "Pr[M <= log N − log ln N]", "bound 1/N"},
	}
	for _, n := range ns {
		r := rand.New(rand.NewPCG(seedBase+uint64(n), 99))
		sum := 0.0
		upper, lower := 0, 0
		logN := math.Log2(float64(n))
		loThr := logN - math.Log2(math.Log(float64(n)))
		for i := 0; i < samples; i++ {
			m := float64(prob.MaxGeometric(r, n))
			sum += m
			if m >= 2*logN {
				upper++
			}
			if m <= loThr {
				lower++
			}
		}
		lo, hi := prob.MaxGeomExpectationBounds(n)
		t.AddRow(stats.I(n), stats.F(lo), stats.F(sum/float64(samples)), stats.F(hi),
			stats.F(float64(upper)/float64(samples)), stats.F(2/float64(n)),
			stats.F(float64(lower)/float64(samples)), stats.F(1/float64(n)))
	}
	return t
}

// SumOfMaxima is E9: Corollary D.10 — the average of K = 4 log N maxima is
// within 4.7 of log N except with probability <= 2/N.
func SumOfMaxima(ns []int, samples int, seedBase uint64) stats.Table {
	t := stats.Table{
		Title:   "E9: sums of maxima Chernoff (Cor D.10: |S/K − log N| < 4.7 w.p. >= 1 − 2/N)",
		Columns: []string{"N", "K", "mean |S/K − log N|", "max", "violations", "bound 2/N × samples"},
	}
	for _, n := range ns {
		k := prob.CorD10MinK(n)
		r := rand.New(rand.NewPCG(seedBase+uint64(n)*3, 7))
		logN := math.Log2(float64(n))
		devs := make([]float64, samples)
		viol := 0
		for i := 0; i < samples; i++ {
			s := prob.SumOfMaxima(r, k, n)
			devs[i] = math.Abs(float64(s)/float64(k) - logN)
			if devs[i] >= 4.7 {
				viol++
			}
		}
		s := stats.Summarize(devs)
		t.AddRow(stats.I(n), stats.I(k), stats.F(s.Mean), stats.F(s.Max),
			stats.I(viol), stats.F(prob.CorD10Bound(n)*float64(samples)))
	}
	return t
}

// Depletion is E10: Lemma E.2 / Corollary E.3 — a state starting at count
// k cannot fall below k/81 within one time unit (empirically, its minimum
// over the window vs the paper's bound).
func Depletion(ns []int, trials int, seedBase uint64) stats.Table {
	t := stats.Table{
		Title: "E10: state depletion (Cor E.3: count stays > k/81 for 1 time unit w.p. >= 1 − 2^(−k/81))",
		Note: "Worst-case consumer: every interaction converts both participants. " +
			"k = n/2 agents start in the tracked state.",
		Columns: []string{"n", "k", "min fraction seen", "k/81 fraction", "violations"},
	}
	// consume flips tracked agents to the dead state on every interaction:
	// the harshest consumption rate the lemma's coupling allows.
	consume := func(rec, sen bool, _ *rand.Rand) (bool, bool) { return false, false }
	for _, n := range ns {
		k := n / 2
		mins := stats.ParallelTrials(trials, func(tr int) float64 {
			s := pop.NewEngine(n, func(i int, _ *rand.Rand) bool { return i < k }, consume,
				pop.WithSeed(seedBase+uint64(tr)*19), engineOpt())
			minFrac := 1.0
			for step := 0; step < 20; step++ {
				s.RunTime(0.05)
				f := float64(s.Count(func(b bool) bool { return b })) / float64(k)
				minFrac = math.Min(minFrac, f)
			}
			return minFrac
		})
		viol := 0
		for _, m := range mins {
			if m <= 1.0/81 {
				viol++
			}
		}
		s := stats.Summarize(mins)
		t.AddRow(stats.I(n), stats.I(k), stats.F(s.Min), stats.F(1.0/81), stats.I(viol))
	}
	return t
}
