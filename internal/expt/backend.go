package expt

import (
	"sync/atomic"

	"github.com/popsim/popsize/internal/pop"
)

// backend holds the simulation backend used by every generator in this
// package (default pop.Auto). cmd/experiments and cmd/fig2 set it from
// their -backend flag (auto|seq|batch|dense) before running; generators
// that inherently need per-agent data (e.g. InteractionConcentration)
// stay on the sequential engine regardless. parallelism likewise mirrors
// the -par flag (intra-trial worker target; 0 = auto).
var (
	backend     atomic.Int32
	parallelism atomic.Int32
)

// SetBackend selects the simulation backend for subsequent generator runs.
func SetBackend(b pop.Backend) { backend.Store(int32(b)) }

// Backend returns the currently selected simulation backend.
func Backend() pop.Backend { return pop.Backend(backend.Load()) }

// SetParallelism selects the intra-trial worker target for subsequent
// generator runs (pop.WithParallelism semantics).
func SetParallelism(p int) { parallelism.Store(int32(max(p, 0))) }

// Parallelism returns the currently selected intra-trial worker target.
func Parallelism() int { return int(parallelism.Load()) }

// engineOpt returns the pop option encoding the selected backend and
// intra-trial parallelism.
func engineOpt() pop.Option {
	return pop.Combine(pop.WithBackend(Backend()), pop.WithParallelism(Parallelism()))
}
