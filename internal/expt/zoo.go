package expt

import (
	"fmt"
	"math"
	"sync"

	"github.com/popsim/popsize/internal/protocol"
	"github.com/popsim/popsize/internal/stats"
	"github.com/popsim/popsize/internal/sweep"
)

// zooRun adapts a registry protocol into a sweep trial function, bound to
// the def's env like every other trial closure. The runner is still built
// lazily on first trial — table compilation is pure setup cost a def that
// never runs (resolved but filtered, or resumed from a checkpoint)
// shouldn't pay. Registry protocols report failures through Config.OnError
// only for instrumented runs, which the defs never request, so a lookup
// or compile failure here is a programming error and panics like
// runLocal's impossible errors do.
func zooRun(env Env, name string, n, trials int) sweep.TrialFunc {
	runner := sync.OnceValues(func() (*protocol.Runner, error) {
		info, err := protocol.Lookup(name)
		if err != nil {
			return nil, err
		}
		return info.New(protocol.Config{
			N: n, Trials: trials,
			Backend: env.Backend, Par: env.Par,
		})
	})
	return func(tr int, seed uint64) sweep.Values {
		r, err := runner()
		if err != nil {
			panic(fmt.Sprintf("expt: zoo protocol %s: %v", name, err))
		}
		return r.Run(tr, seed)
	}
}

// ZooJuntaDef is E-junta: the phase-clock junta election from the protocol
// zoo — junta size (agents at the maximum geometric level) and settling
// door vs n. The junta is what phase-clock constructions hand their clock
// to; its size should stay polylogarithmic while maxlevel tracks log2 n.
func ZooJuntaDef(env Env, ns []int, trials int) Def {
	const id = "E-junta"
	var points []sweep.Point
	for _, n := range ns {
		points = append(points, sweep.Point{
			Experiment: id, N: n, Trials: trials, Run: zooRun(env, "junta", n, trials),
		})
	}
	render := func(res *sweep.Results) stats.Table {
		t := stats.Table{
			Title: "E-junta: junta election via geometric levels and door-gated counters (table-compiled zoo)",
			Note: "junta = agents at the maximum level once every counter settles at one door; " +
				"expected size is O(polylog n) with maxlevel ≈ log2 n.",
			Columns: []string{"n", "converged", "junta mean", "junta max", "maxlevel mean", "log2(n)", "door mean", "time mean"},
		}
		for _, n := range ns {
			conv := stats.Summarize(res.Values(id, n, "converged"))
			junta := stats.Summarize(res.Values(id, n, "junta"))
			lvl := stats.Summarize(res.Values(id, n, "maxlevel"))
			door := stats.Summarize(res.Values(id, n, "door"))
			tm := stats.Summarize(res.Values(id, n, "time"))
			t.AddRow(stats.I(n),
				fmt.Sprintf("%.0f/%d", conv.Mean*float64(trials), trials),
				stats.F(junta.Mean), stats.I(int(junta.Max)),
				stats.F(lvl.Mean), stats.F(math.Log2(float64(n))),
				stats.F(door.Mean), stats.F(tm.Mean))
		}
		return t
	}
	return Def{ID: id, Env: env, Points: points, Render: render}
}

// ZooRepeatMajorityDef is E-repmaj: the undecided-state ("?") majority
// building block from a 52/48 split — does the true majority win, and in
// what parallel time?
func ZooRepeatMajorityDef(env Env, ns []int, trials int) Def {
	const id = "E-repmaj"
	var points []sweep.Point
	for _, n := range ns {
		points = append(points, sweep.Point{
			Experiment: id, N: n, Trials: trials, Run: zooRun(env, "repeatmajority", n, trials),
		})
	}
	render := func(res *sweep.Results) stats.Table {
		t := stats.Table{
			Title: "E-repmaj: undecided-state majority from a 52/48 split (table-compiled zoo)",
			Note: "correct = the initial 52% opinion took the whole population; \"?\" relays opinions " +
				"but never destroys them, so close splits converge slower than approximate majority.",
			Columns: []string{"n", "converged", "correct", "time mean", "time std"},
		}
		for _, n := range ns {
			conv := stats.Summarize(res.Values(id, n, "converged"))
			correct := stats.Summarize(res.Values(id, n, "correct"))
			tm := stats.Summarize(res.Values(id, n, "time"))
			t.AddRow(stats.I(n),
				fmt.Sprintf("%.0f/%d", conv.Mean*float64(trials), trials),
				fmt.Sprintf("%.0f/%d", correct.Mean*float64(trials), trials),
				stats.F(tm.Mean), stats.F(tm.Std))
		}
		return t
	}
	return Def{ID: id, Env: env, Points: points, Render: render}
}

// ZooBKRCountDef is E-bkr: Berenbrink–Kaaser–Radzik approximate counting —
// max-propagated geometric levels plus a duplicate flag — whose estimate
// should land within O(1) of log2 n.
func ZooBKRCountDef(env Env, ns []int, trials int) Def {
	const id = "E-bkr"
	var points []sweep.Point
	for _, n := range ns {
		points = append(points, sweep.Point{
			Experiment: id, N: n, Trials: trials, Run: zooRun(env, "bkrcount", n, trials),
		})
	}
	render := func(res *sweep.Results) stats.Table {
		t := stats.Table{
			Title:   "E-bkr: Berenbrink–Kaaser–Radzik counting via max geometric level + duplicate flag (table-compiled zoo)",
			Note:    "estimate = agreed maximum level + duplicate bit; the first-phase bound is |estimate − log2 n| = O(1) w.h.p.",
			Columns: []string{"n", "converged", "estimate mean", "estimate std", "log2(n)", "abs err mean", "time mean"},
		}
		for _, n := range ns {
			logN := math.Log2(float64(n))
			conv := stats.Summarize(res.Values(id, n, "converged"))
			ests := res.Values(id, n, "estimate")
			errs := make([]float64, len(ests))
			for i, e := range ests {
				errs[i] = math.Abs(e - logN)
			}
			es := stats.Summarize(ests)
			tm := stats.Summarize(res.Values(id, n, "time"))
			t.AddRow(stats.I(n),
				fmt.Sprintf("%.0f/%d", conv.Mean*float64(trials), trials),
				stats.F(es.Mean), stats.F(es.Std), stats.F(logN),
				stats.F(stats.Summarize(errs).Mean), stats.F(tm.Mean))
		}
		return t
	}
	return Def{ID: id, Env: env, Points: points, Render: render}
}
