package expt

import (
	"math"

	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/stats"
	"github.com/popsim/popsize/internal/synthcoin"
	"github.com/popsim/popsize/internal/upperbound"
)

// UpperBound is E14: the Section 3.3 probability-1 upper-bound protocol —
// after stabilization every agent's report is >= log2 n, and kex equals
// ⌊log2 n⌋ + 1 exactly.
func UpperBound(cfg core.Config, ns []int, trials int, seedBase uint64) stats.Table {
	t := stats.Table{
		Title:   "E14: probability-1 upper bound (§3.3): report >= log2 n always",
		Columns: []string{"n", "log2 n", "kex (exact)", "report min", "report max", "below log n"},
	}
	p := upperbound.MustNew(cfg)
	for _, n := range ns {
		reports := make([][2]float64, trials) // min, max per trial
		kexs := stats.ParallelTrials(trials, func(tr int) float64 {
			s := p.NewSim(n, pop.WithSeed(seedBase+uint64(tr)*37))
			ok, _ := s.RunUntil(upperbound.TournamentDone, 10, float64(500*n))
			if !ok {
				return math.NaN()
			}
			s.RunTime(60 * math.Log2(float64(n)))
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, a := range s.Agents() {
				v, _ := upperbound.Report(a)
				lo, hi = math.Min(lo, v), math.Max(hi, v)
			}
			reports[tr] = [2]float64{lo, hi}
			return float64(s.Agent(0).Kex)
		})
		logN := math.Log2(float64(n))
		below := 0
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range reports {
			if r[0] < logN {
				below++
			}
			lo, hi = math.Min(lo, r[0]), math.Max(hi, r[1])
		}
		ks := stats.Summarize(kexs)
		t.AddRow(stats.I(n), stats.F(logN), stats.F(ks.Mean), stats.F(lo), stats.F(hi),
			stats.I(below))
	}
	return t
}

// SyntheticCoin is E15: the Appendix B deterministic-transition variant —
// error and convergence-time parity with the main protocol.
func SyntheticCoin(mainCfg core.Config, scCfg synthcoin.Config, ns []int, trials int, seedBase uint64) stats.Table {
	t := stats.Table{
		Title: "E15: synthetic-coin variant (App. B) vs main protocol",
		Columns: []string{"n", "main err mean", "synth err mean", "main time mean",
			"synth time mean"},
	}
	mp := core.MustNew(mainCfg)
	sp := synthcoin.MustNew(scCfg)
	for _, n := range ns {
		logN := math.Log2(float64(n))
		mainErrs := make([]float64, trials)
		mainTimes := stats.ParallelTrials(trials, func(tr int) float64 {
			r := mp.Run(n, core.RunOptions{Seed: seedBase + uint64(tr)*41})
			mainErrs[tr] = r.MaxErr
			return r.Time
		})
		scErrs := make([]float64, trials)
		scTimes := stats.ParallelTrials(trials, func(tr int) float64 {
			s := sp.NewSim(n, pop.WithSeed(seedBase+uint64(tr)*47))
			budget := 40.0 * float64(scCfg.ClockFactor*scCfg.EpochFactor) * logN * logN
			ok, at := s.RunUntil(sp.Converged, logN, budget)
			maxErr := 0.0
			for _, a := range s.Agents() {
				if est, has := a.Estimate(); has {
					maxErr = math.Max(maxErr, math.Abs(est-logN))
				}
			}
			scErrs[tr] = maxErr
			if !ok {
				return math.NaN()
			}
			return at
		})
		me, se := stats.Summarize(mainErrs), stats.Summarize(scErrs)
		mt, st := stats.Summarize(mainTimes), stats.Summarize(scTimes)
		t.AddRow(stats.I(n), stats.F(me.Mean), stats.F(se.Mean), stats.F(mt.Mean), stats.F(st.Mean))
	}
	return t
}
