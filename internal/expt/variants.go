package expt

import (
	"math"

	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/stats"
	"github.com/popsim/popsize/internal/sweep"
	"github.com/popsim/popsize/internal/synthcoin"
	"github.com/popsim/popsize/internal/upperbound"
)

// UpperBoundDef is E14: the Section 3.3 probability-1 upper-bound protocol
// — after stabilization every agent's report is >= log2 n, and kex equals
// ⌊log2 n⌋ + 1 exactly.
func UpperBoundDef(env Env, cfg core.Config, ns []int, trials int) Def {
	const id = "E14"
	p := upperbound.MustNew(cfg)
	var points []sweep.Point
	for _, n := range ns {
		points = append(points, sweep.Point{
			Experiment: id, N: n, Trials: trials,
			Run: func(tr int, seed uint64) sweep.Values {
				s := p.NewSim(n, pop.WithSeed(seed))
				ok, _ := s.RunUntil(upperbound.TournamentDone, 10, float64(500*n))
				if !ok {
					// Historical defaults for a timed-out trial: no kex,
					// zero report extremes.
					return sweep.Values{"kex": math.NaN(), "lo": 0, "hi": 0}
				}
				s.RunTime(60 * math.Log2(float64(n)))
				lo, hi := math.Inf(1), math.Inf(-1)
				for _, a := range s.Agents() {
					v, _ := upperbound.Report(a)
					lo, hi = math.Min(lo, v), math.Max(hi, v)
				}
				return sweep.Values{"kex": float64(s.Agent(0).Kex), "lo": lo, "hi": hi}
			},
		})
	}
	render := func(res *sweep.Results) stats.Table {
		t := stats.Table{
			Title:   "E14: probability-1 upper bound (§3.3): report >= log2 n always",
			Columns: []string{"n", "log2 n", "kex (exact)", "report min", "report max", "below log n"},
		}
		for _, n := range ns {
			logN := math.Log2(float64(n))
			los := res.Values(id, n, "lo")
			his := res.Values(id, n, "hi")
			below := 0
			lo, hi := math.Inf(1), math.Inf(-1)
			for i := range los {
				if los[i] < logN {
					below++
				}
				lo, hi = math.Min(lo, los[i]), math.Max(hi, his[i])
			}
			ks := stats.Summarize(res.Values(id, n, "kex"))
			t.AddRow(stats.I(n), stats.F(logN), stats.F(ks.Mean), stats.F(lo), stats.F(hi),
				stats.I(below))
		}
		return t
	}
	return Def{ID: id, Env: env, Points: points, Render: render}
}

// UpperBound renders E14 via a local sweep (legacy form).
func UpperBound(cfg core.Config, ns []int, trials int, seedBase uint64) stats.Table {
	return UpperBoundDef(Env{}, cfg, ns, trials).Table(seedBase)
}

// SyntheticCoinDef is E15: the Appendix B deterministic-transition variant
// — error and convergence-time parity with the main protocol. Main and
// synthetic runs are separate points ("E15/main", "E15/synth") drawing
// independent seeds.
func SyntheticCoinDef(env Env, mainCfg core.Config, scCfg synthcoin.Config, ns []int, trials int) Def {
	const id = "E15"
	mp := core.MustNew(mainCfg)
	sp := synthcoin.MustNew(scCfg)
	var points []sweep.Point
	for _, n := range ns {
		points = append(points,
			sweep.Point{
				Experiment: id + "/main", N: n, Trials: trials,
				Run: func(tr int, seed uint64) sweep.Values {
					r := mp.Run(n, core.RunOptions{Seed: seed})
					return sweep.Values{"err": r.MaxErr, "time": r.Time}
				},
			},
			sweep.Point{
				Experiment: id + "/synth", N: n, Trials: trials,
				Run: func(tr int, seed uint64) sweep.Values {
					logN := math.Log2(float64(n))
					s := sp.NewSim(n, pop.WithSeed(seed))
					budget := 40.0 * float64(scCfg.ClockFactor*scCfg.EpochFactor) * logN * logN
					ok, at := s.RunUntil(sp.Converged, logN, budget)
					maxErr := 0.0
					for _, a := range s.Agents() {
						if est, has := a.Estimate(); has {
							maxErr = math.Max(maxErr, math.Abs(est-logN))
						}
					}
					if !ok {
						at = math.NaN()
					}
					return sweep.Values{"err": maxErr, "time": at}
				},
			})
	}
	render := func(res *sweep.Results) stats.Table {
		t := stats.Table{
			Title: "E15: synthetic-coin variant (App. B) vs main protocol",
			Columns: []string{"n", "main err mean", "synth err mean", "main time mean",
				"synth time mean"},
		}
		for _, n := range ns {
			me := stats.Summarize(res.Values(id+"/main", n, "err"))
			se := stats.Summarize(res.Values(id+"/synth", n, "err"))
			mt := stats.Summarize(res.Values(id+"/main", n, "time"))
			st := stats.Summarize(res.Values(id+"/synth", n, "time"))
			t.AddRow(stats.I(n), stats.F(me.Mean), stats.F(se.Mean), stats.F(mt.Mean), stats.F(st.Mean))
		}
		return t
	}
	return Def{ID: id, Env: env, Points: points, Render: render}
}

// SyntheticCoin renders E15 via a local sweep (legacy form).
func SyntheticCoin(mainCfg core.Config, scCfg synthcoin.Config, ns []int, trials int, seedBase uint64) stats.Table {
	return SyntheticCoinDef(Env{}, mainCfg, scCfg, ns, trials).Table(seedBase)
}
