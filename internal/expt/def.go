package expt

import (
	"fmt"

	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/stats"
	"github.com/popsim/popsize/internal/sweep"
	"github.com/popsim/popsize/internal/synthcoin"
)

// Def couples one experiment's sweep points with the renderer that turns
// the recorded trials back into the experiment's table. Generators no
// longer run their own trial loops: they declare points, the sweep
// subsystem executes them (one global queue when a command submits several
// experiments at once), and Render reads the per-trial values back out of
// the results — whether those came from a live run or from a resumed JSONL
// checkpoint.
type Def struct {
	// ID is the experiment's index entry (F2, E1–E18, A1–A3). Points may
	// refine it with sub-configuration labels ("E17/majority/m=0.2").
	ID string
	// Env is the engine environment the Points were bound to at
	// construction: the trial closures captured it, and Table stamps the
	// local sweep.Spec from it so the records match what the trials ran.
	Env    Env
	Points []sweep.Point
	Render func(*sweep.Results) stats.Table
}

// Table runs the Def's points through a local sweep (no JSONL stream) and
// renders its table — the single-experiment path used by the legacy
// generator wrappers and the tests. Commands that run many experiments
// submit all their Points into one shared queue instead, so trials from
// different experiments interleave across the worker pool.
func (d Def) Table(seedBase uint64) stats.Table {
	return d.Render(runLocal(d.Env, d.Points, seedBase))
}

// runLocal executes points with no output stream or checkpoint, stamping
// the spec from the env the points were bound to.
func runLocal(env Env, points []sweep.Point, seedBase uint64) *sweep.Results {
	res, err := sweep.Run(
		sweep.Spec{Points: points, BaseSeed: seedBase, Backend: env.Backend, Par: env.Par},
		sweep.Options{})
	if err != nil {
		// Run errs only on checkpoint mismatches and stream writes,
		// neither of which a local run has.
		panic(fmt.Sprintf("expt: local sweep failed: %v", err))
	}
	return res
}

// Params sizes the default reproduction suite (see EXPERIMENTS.md):
// population-size grids, per-point trial counts, IID sample counts for the
// distributional experiments (E8/E9), and the composition population.
type Params struct {
	Ns       []int
	BigNs    []int
	Trials   int
	Samples  int
	ComposeN int
	// ChurnRates are the membership-turnover rates (agents replaced per
	// unit of parallel time, as a fraction of n) swept by E-churn; the
	// churn experiments run on Ns minus its largest entry (tracked runs
	// cost a full convergence budget per trial).
	ChurnRates []float64
}

// DefaultParams is the full EXPERIMENTS.md sizing.
func DefaultParams() Params {
	return Params{
		Ns:         []int{100, 1000, 10000},
		BigNs:      []int{1000, 10000, 100000},
		Trials:     10,
		Samples:    20000,
		ComposeN:   1000,
		ChurnRates: []float64{1e-5, 1e-4, 1e-3},
	}
}

// QuickParams is the -quick smoke sizing.
func QuickParams() Params {
	return Params{
		Ns:         []int{100, 500},
		BigNs:      []int{500, 5000},
		Trials:     4,
		Samples:    4000,
		ComposeN:   400,
		ChurnRates: []float64{1e-4, 1e-3},
	}
}

// DefaultDefs assembles the whole reproduction suite — DESIGN.md's
// experiment index in order — sized by p, with every def's trial closures
// bound to env. It is the single source of truth for which trials the
// suite runs, which is what lets the seed-derivation regression test
// assert pairwise-distinct engine seeds over the exact default grid.
func DefaultDefs(env Env, cfg core.Config, scCfg synthcoin.Config, p Params) []Def {
	last := p.Ns[len(p.Ns)-1]
	return []Def{
		Fig2Def(env, cfg, p.Ns, p.Trials),
		ErrorDistributionDef(env, cfg, p.Ns, p.Trials*3),
		StateCountDef(env, cfg, p.Ns, p.Trials),
		PartitionDef(env, cfg, p.Ns, p.Trials*3),
		LogSize2RangeDef(env, cfg, p.Ns, p.Trials*3),
		EpidemicDef(env, p.Ns, p.Trials),
		InteractionConcentrationDef(env, p.BigNs, p.Trials),
		MaxGeometricDef(env, p.BigNs, p.Samples),
		SumOfMaximaDef(env, p.BigNs, p.Samples/4),
		DepletionDef(env, p.Ns, p.Trials),
		ProducibilityDef(env, p.BigNs, p.Trials),
		TerminationDenseDef(env, cfg, p.Ns, p.Trials),
		LeaderTerminationDef(env, cfg, p.Ns[:len(p.Ns)-1], p.Trials),
		UpperBoundDef(env, cfg, []int{64, 128, 256}, p.Trials),
		SyntheticCoinDef(env, cfg, scCfg, p.Ns[:len(p.Ns)-1], p.Trials),
		BaselinesDef(env, cfg, []int{100, 400, 1600}, p.Trials),
		CompositionDef(env, p.ComposeN, []float64{0.5, 0.2, 0.05}, p.Trials),
		ArithmeticDef(env, p.Ns, p.Trials),
		AblationClockFactorDef(env, last, []int{4, 8, 16, 32, 95}, p.Trials),
		AblationEpochFactorDef(env, last, []int{1, 2, 3, 5}, p.Trials),
		AblationNoRestartDef(env, last, p.Trials*2),
		ChurnTrackingDef(env, cfg, p.Ns[:len(p.Ns)-1], p.ChurnRates, p.Trials),
		ChurnDetectionDef(env, cfg, p.Ns[:len(p.Ns)-1], p.Trials),
		ZooJuntaDef(env, p.Ns, p.Trials),
		ZooRepeatMajorityDef(env, p.Ns, p.Trials),
		ZooBKRCountDef(env, p.Ns, p.Trials),
	}
}
