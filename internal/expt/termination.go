package expt

import (
	"math"

	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/leaderterm"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/producible"
	"github.com/popsim/popsize/internal/stats"
	"github.com/popsim/popsize/internal/term"
)

// Producibility is E11: the timer/density Lemma 4.2 — every state in Λ^m_ρ
// reaches a constant fraction of n by time 1 from α-dense configurations,
// with the fraction independent of n.
func Producibility(ns []int, trials int, seedBase uint64) stats.Table {
	t := stats.Table{
		Title: "E11: timer/density Lemma 4.2 — min density over Λ^m_ρ at time 1",
		Note: "3-state approximate majority from ½X/½Y (m=1) and the constant-threshold " +
			"counter terminator from all-c0 (m=4, T = terminated state). " +
			"Densities must not vanish as n grows.",
		Columns: []string{"protocol", "n", "min density (mean)", "min density (min)", "terminated count (mean)"},
	}
	am := producible.ApproxMajority()
	const m = 4
	cc := producible.CounterChain(m)
	for _, n := range ns {
		amMins := stats.ParallelTrials(trials, func(tr int) float64 {
			cfg := producible.DenseConfig([]int{0, 1}, 0.5, n)
			return am.CheckLemma42(cfg, 1, 1, seedBase+uint64(tr)*3).MinFraction
		})
		s := stats.Summarize(amMins)
		t.AddRow("approx-majority", stats.I(n), stats.F(s.Mean), stats.F(s.Min), "—")

		termCounts := make([]float64, trials)
		ccMins := stats.ParallelTrials(trials, func(tr int) float64 {
			cfg := producible.DenseConfig([]int{0}, 1, n)
			rep := cc.CheckLemma42(cfg, 1, m, seedBase+uint64(tr)*5)
			termCounts[tr] = float64(rep.Counts[m])
			return rep.MinFraction
		})
		s = stats.Summarize(ccMins)
		tc := stats.Summarize(termCounts)
		t.AddRow("counter-chain(4)", stats.I(n), stats.F(s.Mean), stats.F(s.Min), stats.F(tc.Mean))
	}
	return t
}

// TerminationDense is E12, the empirical face of Theorem 4.1: the uniform
// dense counter-terminator's first-termination time is flat in n, while the
// leader-driven protocol (non-dense initial configuration — the theorem's
// escape hatch) grows as Θ(log² n).
func TerminationDense(cfg core.Config, ns []int, trials int, seedBase uint64) stats.Table {
	t := stats.Table{
		Title: "E12: Theorem 4.1 — first-termination time vs n",
		Note: "counter(40) is uniform with a 1-dense initial configuration: its signal " +
			"cannot wait for n. The leader timer (Theorem 3.13) may: its initial " +
			"configuration has a count-1 state.",
		Columns: []string{"n", "dense counter(40) mean", "leader timer mean", "leader/dense ratio"},
	}
	ct := term.CounterTerminator{Threshold: 40}
	lp := leaderterm.MustNew(cfg, 0)
	for _, n := range ns {
		dense := stats.ParallelTrials(trials, func(tr int) float64 {
			s := pop.NewEngine(n, ct.Initial, ct.Rule, pop.WithSeed(seedBase+uint64(tr)*11), engineOpt())
			at, ok := term.FirstTermination(s, term.Terminated, 0.5, 1e5)
			if !ok {
				return math.NaN()
			}
			return at
		})
		leader := stats.ParallelTrials(trials, func(tr int) float64 {
			s := lp.NewEngine(n, pop.WithSeed(seedBase+uint64(tr)*23), engineOpt())
			at, ok := term.FirstTermination(s, leaderterm.Terminated, 5, 100*lp.Main().DefaultMaxTime(n))
			if !ok {
				return math.NaN()
			}
			return at
		})
		ds, ls := stats.Summarize(dense), stats.Summarize(leader)
		t.AddRow(stats.I(n), stats.F(ds.Mean), stats.F(ls.Mean), stats.F(ls.Mean/ds.Mean))
	}
	return t
}

// LeaderTermination is E13: Theorem 3.13 — with an initial leader,
// termination fires after the main protocol has converged (w.h.p.), at
// Θ(log² n) parallel time, and the resulting estimate meets the error
// bound.
func LeaderTermination(cfg core.Config, ns []int, trials int, seedBase uint64) stats.Table {
	t := stats.Table{
		Title:   "E13: terminating size estimation with a leader (Theorem 3.13)",
		Columns: []string{"n", "term time mean", "time/log² n", "terminated before convergence", "err max at termination"},
	}
	p := leaderterm.MustNew(cfg, 0)
	for _, n := range ns {
		early := make([]bool, trials)
		errs := make([]float64, trials)
		times := stats.ParallelTrials(trials, func(tr int) float64 {
			s := p.NewEngine(n, pop.WithSeed(seedBase+uint64(tr)*31), engineOpt())
			at, ok := term.FirstTermination(s, leaderterm.Terminated, 2, 100*p.Main().DefaultMaxTime(n))
			if !ok {
				return math.NaN()
			}
			early[tr] = !p.MainConverged(s)
			logN := math.Log2(float64(n))
			maxErr := 0.0
			for a := range s.Counts() {
				if est, has := a.Main.Estimate(); has {
					maxErr = math.Max(maxErr, math.Abs(est-logN))
				}
			}
			errs[tr] = maxErr
			return at
		})
		nEarly := 0
		for _, e := range early {
			if e {
				nEarly++
			}
		}
		ts, es := stats.Summarize(times), stats.Summarize(errs)
		logN := math.Log2(float64(n))
		t.AddRow(stats.I(n), stats.F(ts.Mean), stats.F(ts.Mean/(logN*logN)),
			stats.I(nEarly), stats.F(es.Max))
	}
	return t
}
