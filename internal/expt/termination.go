package expt

import (
	"math"

	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/leaderterm"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/producible"
	"github.com/popsim/popsize/internal/stats"
	"github.com/popsim/popsize/internal/sweep"
	"github.com/popsim/popsize/internal/term"
)

// ProducibilityDef is E11: the timer/density Lemma 4.2 — every state in
// Λ^m_ρ reaches a constant fraction of n by time 1 from α-dense
// configurations, with the fraction independent of n.
func ProducibilityDef(env Env, ns []int, trials int) Def {
	const id = "E11"
	am := producible.ApproxMajority()
	const m = 4
	cc := producible.CounterChain(m)
	var points []sweep.Point
	for _, n := range ns {
		points = append(points,
			sweep.Point{
				Experiment: id + "/approx-majority", N: n, Trials: trials,
				Run: func(tr int, seed uint64) sweep.Values {
					cfg := producible.DenseConfig([]int{0, 1}, 0.5, n)
					return sweep.Values{"minfrac": am.CheckLemma42(cfg, 1, 1, seed).MinFraction}
				},
			},
			sweep.Point{
				Experiment: id + "/counter-chain", N: n, Trials: trials,
				Run: func(tr int, seed uint64) sweep.Values {
					cfg := producible.DenseConfig([]int{0}, 1, n)
					rep := cc.CheckLemma42(cfg, 1, m, seed)
					return sweep.Values{
						"minfrac":    rep.MinFraction,
						"terminated": float64(rep.Counts[m]),
					}
				},
			})
	}
	render := func(res *sweep.Results) stats.Table {
		t := stats.Table{
			Title: "E11: timer/density Lemma 4.2 — min density over Λ^m_ρ at time 1",
			Note: "3-state approximate majority from ½X/½Y (m=1) and the constant-threshold " +
				"counter terminator from all-c0 (m=4, T = terminated state). " +
				"Densities must not vanish as n grows.",
			Columns: []string{"protocol", "n", "min density (mean)", "min density (min)", "terminated count (mean)"},
		}
		for _, n := range ns {
			s := stats.Summarize(res.Values(id+"/approx-majority", n, "minfrac"))
			t.AddRow("approx-majority", stats.I(n), stats.F(s.Mean), stats.F(s.Min), "—")

			s = stats.Summarize(res.Values(id+"/counter-chain", n, "minfrac"))
			tc := stats.Summarize(res.Values(id+"/counter-chain", n, "terminated"))
			t.AddRow("counter-chain(4)", stats.I(n), stats.F(s.Mean), stats.F(s.Min), stats.F(tc.Mean))
		}
		return t
	}
	return Def{ID: id, Env: env, Points: points, Render: render}
}

// Producibility renders E11 via a local sweep (legacy form).
func Producibility(ns []int, trials int, seedBase uint64) stats.Table {
	return ProducibilityDef(Env{}, ns, trials).Table(seedBase)
}

// TerminationDenseDef is E12, the empirical face of Theorem 4.1: the
// uniform dense counter-terminator's first-termination time is flat in n,
// while the leader-driven protocol (non-dense initial configuration — the
// theorem's escape hatch) grows as Θ(log² n).
func TerminationDenseDef(env Env, cfg core.Config, ns []int, trials int) Def {
	const id = "E12"
	ct := term.CounterTerminator{Threshold: 40}
	lp := leaderterm.MustNew(cfg, 0)
	var points []sweep.Point
	for _, n := range ns {
		points = append(points,
			sweep.Point{
				Experiment: id + "/dense", N: n, Trials: trials,
				Run: func(tr int, seed uint64) sweep.Values {
					s := pop.NewEngine(n, ct.Initial, ct.Rule, pop.WithSeed(seed), env.engineOpt())
					at, ok := term.FirstTermination(s, term.Terminated, 0.5, 1e5)
					if !ok {
						at = math.NaN()
					}
					return sweep.Values{"time": at}
				},
			},
			sweep.Point{
				Experiment: id + "/leader", N: n, Trials: trials,
				Run: func(tr int, seed uint64) sweep.Values {
					s := lp.NewEngine(n, pop.WithSeed(seed), env.engineOpt())
					at, ok := term.FirstTermination(s, leaderterm.Terminated, 5, 100*lp.Main().DefaultMaxTime(n))
					if !ok {
						at = math.NaN()
					}
					return sweep.Values{"time": at}
				},
			})
	}
	render := func(res *sweep.Results) stats.Table {
		t := stats.Table{
			Title: "E12: Theorem 4.1 — first-termination time vs n",
			Note: "counter(40) is uniform with a 1-dense initial configuration: its signal " +
				"cannot wait for n. The leader timer (Theorem 3.13) may: its initial " +
				"configuration has a count-1 state.",
			Columns: []string{"n", "dense counter(40) mean", "leader timer mean", "leader/dense ratio"},
		}
		for _, n := range ns {
			ds := stats.Summarize(res.Values(id+"/dense", n, "time"))
			ls := stats.Summarize(res.Values(id+"/leader", n, "time"))
			t.AddRow(stats.I(n), stats.F(ds.Mean), stats.F(ls.Mean), stats.F(ls.Mean/ds.Mean))
		}
		return t
	}
	return Def{ID: id, Env: env, Points: points, Render: render}
}

// TerminationDense renders E12 via a local sweep (legacy form).
func TerminationDense(cfg core.Config, ns []int, trials int, seedBase uint64) stats.Table {
	return TerminationDenseDef(Env{}, cfg, ns, trials).Table(seedBase)
}

// LeaderTerminationDef is E13: Theorem 3.13 — with an initial leader,
// termination fires after the main protocol has converged (w.h.p.), at
// Θ(log² n) parallel time, and the resulting estimate meets the error
// bound.
func LeaderTerminationDef(env Env, cfg core.Config, ns []int, trials int) Def {
	const id = "E13"
	p := leaderterm.MustNew(cfg, 0)
	var points []sweep.Point
	for _, n := range ns {
		points = append(points, sweep.Point{
			Experiment: id, N: n, Trials: trials,
			Run: func(tr int, seed uint64) sweep.Values {
				s := p.NewEngine(n, pop.WithSeed(seed), env.engineOpt())
				at, ok := term.FirstTermination(s, leaderterm.Terminated, 2, 100*p.Main().DefaultMaxTime(n))
				if !ok {
					// Match the historical per-trial defaults: a timed-out
					// trial contributes NaN time but zero error/earliness.
					return sweep.Values{"time": math.NaN(), "early": 0, "err": 0}
				}
				early := sweep.Bool(!p.MainConverged(s))
				logN := math.Log2(float64(n))
				maxErr := 0.0
				for a := range s.Counts() {
					if est, has := a.Main.Estimate(); has {
						maxErr = math.Max(maxErr, math.Abs(est-logN))
					}
				}
				return sweep.Values{"time": at, "early": early, "err": maxErr}
			},
		})
	}
	render := func(res *sweep.Results) stats.Table {
		t := stats.Table{
			Title:   "E13: terminating size estimation with a leader (Theorem 3.13)",
			Columns: []string{"n", "term time mean", "time/log² n", "terminated before convergence", "err max at termination"},
		}
		for _, n := range ns {
			nEarly := 0
			for _, e := range res.Values(id, n, "early") {
				if e == 1 {
					nEarly++
				}
			}
			ts := stats.Summarize(res.Values(id, n, "time"))
			es := stats.Summarize(res.Values(id, n, "err"))
			logN := math.Log2(float64(n))
			t.AddRow(stats.I(n), stats.F(ts.Mean), stats.F(ts.Mean/(logN*logN)),
				stats.I(nEarly), stats.F(es.Max))
		}
		return t
	}
	return Def{ID: id, Env: env, Points: points, Render: render}
}

// LeaderTermination renders E13 via a local sweep (legacy form).
func LeaderTermination(cfg core.Config, ns []int, trials int, seedBase uint64) stats.Table {
	return LeaderTerminationDef(Env{}, cfg, ns, trials).Table(seedBase)
}
