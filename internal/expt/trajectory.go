package expt

import (
	"fmt"
	"math"
	"os"
	"strings"

	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/sweep"
)

// TrajectoryConfig carries the single-run instrumentation requested on the
// command line: a sampled-configuration history stream, a versioned engine
// snapshot, and/or a snapshot to resume from. It lives on the Env a suite
// is bound to (Env.Traj) — per run, not process-wide — and is treated as
// immutable once trials start, so worker goroutines read it without
// coordination.
type TrajectoryConfig struct {
	// HistoryPath, when non-empty, streams each instrumented run's sampled
	// trajectory (one sweep.HistoryRecord JSONL line every HistoryEvery
	// parallel-time units) to this file, tag-suffixed per trial.
	HistoryPath  string
	HistoryEvery float64
	// SnapshotPath, when non-empty, writes a versioned engine snapshot at
	// parallel time SnapshotAt (<= 0: at run end), tag-suffixed per trial.
	SnapshotPath string
	SnapshotAt   float64
	// Restore, when non-nil, resumes each instrumented run from this
	// snapshot (parsed eagerly from RestorePath by ConfigureTrajectory).
	RestorePath string
	Restore     *pop.Snapshot[core.State]
}

// Active reports whether any instrumentation was requested.
func (c *TrajectoryConfig) Active() bool {
	return c != nil && (c.HistoryPath != "" || c.SnapshotPath != "" || c.Restore != nil)
}

// HistoryFile returns the tag-suffixed history path for one trial, or ""
// when no history stream was requested.
func (c *TrajectoryConfig) HistoryFile(tag string) string {
	if c == nil || c.HistoryPath == "" {
		return ""
	}
	return tagPath(c.HistoryPath, tag)
}

// ConfigureTrajectory validates the shared trajectory flags and returns
// the resulting config, for the caller to bind into its Env. The -restore
// snapshot file is parsed (and format-checked) eagerly, so a malformed
// file fails the command before any trial runs rather than panicking
// inside a worker.
func ConfigureTrajectory(f *sweep.Flags) (*TrajectoryConfig, error) {
	c := &TrajectoryConfig{
		HistoryPath:  f.History,
		HistoryEvery: f.HistoryEvery,
		SnapshotPath: f.Snapshot,
		SnapshotAt:   f.SnapshotAt,
		RestorePath:  f.Restore,
	}
	if c.HistoryPath != "" && (!(c.HistoryEvery > 0) || math.IsInf(c.HistoryEvery, 0)) {
		return nil, fmt.Errorf("-history-dt must be a positive finite interval (got %v)", c.HistoryEvery)
	}
	if f.Restore != "" {
		snap, err := pop.ReadSnapshotFile[core.State](f.Restore)
		if err != nil {
			return nil, fmt.Errorf("-restore: %w", err)
		}
		c.Restore = snap
	}
	return c, nil
}

// tagPath inserts tag before the path's extension ("hist.jsonl", "t2" →
// "hist.t2.jsonl"), or appends it when the final path element has none, so
// concurrent trials never write through the same file name.
func tagPath(path, tag string) string {
	if tag == "" {
		return path
	}
	if i := strings.LastIndexByte(path, '.'); i > strings.LastIndexByte(path, '/') {
		return path[:i] + "." + tag + path[i:]
	}
	return path + "." + tag
}

// RunCore runs one trial of p through core.Run with the env's trajectory
// instrumentation applied: it attaches a history observer, points the
// snapshot sink at the configured file, and swaps in the restore snapshot.
// tag distinguishes concurrent trials' artifact files (empty = none). With
// no instrumentation configured it is exactly p.Run. The returned error is
// always an artifact-file I/O failure; the Result is valid either way.
func (e Env) RunCore(p *core.Protocol, n int, tag string, o core.RunOptions) (core.Result, error) {
	c := e.Traj
	if !c.Active() {
		return p.Run(n, o), nil
	}
	var hist *pop.History[core.State]
	if c.HistoryPath != "" {
		hist = pop.NewHistory[core.State](c.HistoryEvery)
		o.History = hist
	}
	var snapErr error
	if c.SnapshotPath != "" {
		path := tagPath(c.SnapshotPath, tag)
		o.SnapshotAt = c.SnapshotAt
		o.SnapshotSink = func(s *pop.Snapshot[core.State]) {
			if err := pop.WriteSnapshotFile(path, s); err != nil && snapErr == nil {
				snapErr = fmt.Errorf("writing snapshot %s: %w", path, err)
			}
		}
	}
	o.Restore = c.Restore
	r := p.Run(n, o)
	if snapErr != nil {
		return r, snapErr
	}
	if hist != nil {
		path := tagPath(c.HistoryPath, tag)
		fh, err := os.Create(path)
		if err != nil {
			return r, fmt.Errorf("creating history stream: %w", err)
		}
		werr := sweep.WriteHistory(fh, sweep.HistoryRecords(hist.Samples()))
		if cerr := fh.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return r, fmt.Errorf("writing history %s: %w", path, werr)
		}
	}
	return r, nil
}
