package expt

import (
	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/sweep"
	"github.com/popsim/popsize/internal/synthcoin"
)

// Suite is a resolved sweep request: the selected experiment defs in index
// order, their combined points (the work queue a command or the daemon
// submits), the engine environment every def's trial closures were bound
// to, and the sizing parameters the defs were built with (renderers like
// Fig2Points need them back).
type Suite struct {
	Defs   []Def
	Points []sweep.Point
	Env    Env
	Params Params
}

// Resolve turns a serializable sweep request into the sized experiment
// suite it selects: the sizing preset comes from req.Quick, req.Ns
// overrides the primary population-size grid (Params.Ns; the BigNs grid
// and the fixed-size ablation/bound experiments keep their preset sizes),
// req.Trials overrides the per-point trial count, and req.Experiments
// picks the defs (empty = all). An unknown experiment id fails with the
// shared sweep.UnknownName error naming every id that does exist — the
// same message shape whether the request came from cmd/experiments' -only
// flag or the daemon's POST /v1/jobs body.
//
// Resolve is the one id-to-points catalog: cmd/experiments and cmd/popsimd
// both route through it, so a job submitted over HTTP runs exactly the
// trials the CLI would. The request's engine environment (backend, par) is
// resolved here once and bound into every trial closure — two suites
// resolved from requests with different environments run concurrently in
// one process without interfering.
func Resolve(req sweep.SpecRequest) (Suite, error) {
	return ResolveEnv(req, nil)
}

// ResolveEnv is Resolve with trajectory instrumentation attached to the
// suite's env — the CLI path, where the -history/-snapshot/-restore flags
// exist (the serializable request cannot carry them).
func ResolveEnv(req sweep.SpecRequest, traj *TrajectoryConfig) (Suite, error) {
	if err := req.Validate(); err != nil {
		return Suite{}, err
	}
	env, err := EnvFor(req)
	if err != nil {
		return Suite{}, err
	}
	env.Traj = traj
	p := DefaultParams()
	if req.Quick {
		p = QuickParams()
	}
	if len(req.Ns) > 0 {
		p.Ns = req.Ns
	}
	if req.Trials > 0 {
		p.Trials = req.Trials
	}
	defs := DefaultDefs(env, core.FastConfig(), synthcoin.FastConfig(), p)

	ids := make([]string, 0, len(defs))
	byID := make(map[string]Def, len(defs))
	for _, d := range defs {
		ids = append(ids, d.ID)
		byID[d.ID] = d
	}
	suite := Suite{Env: env, Params: p}
	if len(req.Experiments) == 0 {
		suite.Defs = defs
	} else {
		selected := map[string]bool{}
		for _, id := range req.Experiments {
			if _, ok := byID[id]; !ok {
				return Suite{}, sweep.UnknownName("experiment", id, ids)
			}
			selected[id] = true
		}
		// Keep index order regardless of the request's order, so reports
		// and record streams stay canonical.
		for _, d := range defs {
			if selected[d.ID] {
				suite.Defs = append(suite.Defs, d)
			}
		}
	}
	for _, d := range suite.Defs {
		suite.Points = append(suite.Points, d.Points...)
	}
	return suite, nil
}

// ResolvePoints adapts Resolve to the point-resolver shape the jobs
// subsystem consumes (it has no use for the defs or params).
func ResolvePoints(req sweep.SpecRequest) ([]sweep.Point, error) {
	suite, err := Resolve(req)
	if err != nil {
		return nil, err
	}
	return suite.Points, nil
}
