package expt

import (
	"fmt"
	"math"

	"github.com/popsim/popsize/internal/churn"
	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/stats"
	"github.com/popsim/popsize/internal/sweep"
)

// settleErrTol is the |estimate − log2 n| tolerance that counts as
// "settled" after a detected size change — comfortably inside the
// protocol's own error bound, comfortably outside the 1-bit gap a
// doubling opens.
const settleErrTol = 4.0

// ChurnTrackingDef is E-churn: tracking error of the detect-and-restart
// dynamic estimator (internal/churn) under lockstep membership turnover,
// swept over churn rate × n. Each trial runs churn.Track on a Step
// schedule (rate·n agents replaced per unit of parallel time, population
// size constant) and reports the tracking error over the settled window —
// the second half of the run, after the initial convergence has had twice
// its expected time. Trials whose tracker never held an estimate in the
// window report NaN and are counted as dropped by the aggregation.
func ChurnTrackingDef(env Env, cfg core.Config, ns []int, rates []float64, trials int) Def {
	p := core.MustNew(cfg)
	const id = "E-churn"
	var points []sweep.Point
	for _, rate := range rates {
		for _, n := range ns {
			warm := p.DefaultMaxTime(n) / 3
			until := 1.5 * warm
			period := math.Max(1, math.Log2(float64(n)))
			points = append(points, sweep.Point{
				Experiment: churnLabel(id, rate), N: n, Trials: trials,
				Run: func(tr int, seed uint64) sweep.Values {
					sched := churn.Step(n, rate, period, until)
					res := churn.Track(
						churn.TrackerConfig{Protocol: cfg, Backend: env.Backend, Parallelism: env.Par},
						n, sched, seed, until)
					mean, maxv, _ := res.ErrStats(warm)
					return sweep.Values{
						"err":      mean,
						"maxerr":   maxv,
						"restarts": float64(res.Restarts),
					}
				},
			})
		}
	}
	render := func(res *sweep.Results) stats.Table {
		t := stats.Table{
			Title: "E-churn: dynamic-estimator tracking error vs membership turnover rate (arXiv:2405.05137 regime)",
			Note: "Step churn replaces rate·n agents per unit of parallel time at constant n; " +
				"err aggregates |estimate − log2 n| over the settled window; dropped trials never held an estimate.",
			Columns: []string{"rate", "n", "tracked", "err mean", "err std", "err max", "restarts mean"},
		}
		for _, rate := range rates {
			for _, n := range ns {
				exp := churnLabel(id, rate)
				errs := finite(res.Values(exp, n, "err"))
				maxes := finite(res.Values(exp, n, "maxerr"))
				rs := stats.Summarize(res.Values(exp, n, "restarts"))
				es := stats.Summarize(errs)
				t.AddRow(fmt.Sprintf("%g", rate), stats.I(n),
					fmt.Sprintf("%d/%d", len(errs), trials),
					stats.F(es.Mean), stats.F(es.Std), stats.F(stats.Summarize(maxes).Max),
					stats.F(rs.Mean))
			}
		}
		return t
	}
	return Def{ID: id, Env: env, Points: points, Render: render}
}

// ChurnDetectionDef is E-churn-detect: latency of the dynamic estimator's
// detect-and-restart loop after a population doubling. The doubling lands
// once the initial run has converged w.h.p.; "detect" is the parallel
// time from the doubling to the first tracker restart (the join wave
// tripping the undecided-fraction signal), "settle" the further time
// until the estimate is back within tolerance of log2(2n).
func ChurnDetectionDef(env Env, cfg core.Config, ns []int, trials int) Def {
	p := core.MustNew(cfg)
	const id = "E-churn-detect"
	var points []sweep.Point
	for _, n := range ns {
		t0 := p.DefaultMaxTime(n) / 2
		until := t0 + p.DefaultMaxTime(2*n)/2
		points = append(points, sweep.Point{
			Experiment: id, N: n, Trials: trials,
			Run: func(tr int, seed uint64) sweep.Values {
				res := churn.Track(
					churn.TrackerConfig{Protocol: cfg, Backend: env.Backend, Parallelism: env.Par},
					n, churn.Doubling(n, t0), seed, until)
				detect, settle := res.DetectionLatency(t0, settleErrTol)
				return sweep.Values{
					"detect":   detect,
					"settle":   settle,
					"restarts": float64(res.Restarts),
				}
			},
		})
	}
	render := func(res *sweep.Results) stats.Table {
		t := stats.Table{
			Title: "E-churn-detect: detection and re-convergence latency after a population doubling",
			Note: "detect = doubling → first restart (undecided-fraction signal); settle = doubling → " +
				fmt.Sprintf("a post-restart estimate adopted within %.1f of log2(2n); both in parallel time.", settleErrTol),
			Columns: []string{"n", "detected", "settled", "detect mean", "settle mean", "log2 n"},
		}
		for _, n := range ns {
			dets := finite(res.Values(id, n, "detect"))
			sets := finite(res.Values(id, n, "settle"))
			t.AddRow(stats.I(n),
				fmt.Sprintf("%d/%d", len(dets), trials),
				fmt.Sprintf("%d/%d", len(sets), trials),
				stats.F(stats.Summarize(dets).Mean),
				stats.F(stats.Summarize(sets).Mean),
				stats.F(math.Log2(float64(n))))
		}
		return t
	}
	return Def{ID: id, Env: env, Points: points, Render: render}
}

// churnLabel names one churn-rate sub-configuration of E-churn; the rate
// folds into the experiment label so the sweep's per-(experiment, n)
// aggregation yields per-(rate, n) summary rows.
func churnLabel(id string, rate float64) string {
	return fmt.Sprintf("%s/rate=%g", id, rate)
}

// finite filters NaN (and ±Inf) out of a value slice, for renderers that
// summarize only the trials that produced a measurement.
func finite(xs []float64) []float64 {
	out := xs[:0:0]
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			out = append(out, x)
		}
	}
	return out
}
