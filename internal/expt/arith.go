package expt

import (
	"math"

	"github.com/popsim/popsize/internal/arith"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/stats"
	"github.com/popsim/popsize/internal/sweep"
)

// ArithmeticDef is E18: the introduction's efficient-vs-inefficient
// example — x,q → y,y doubles in O(log n) while x,x → y,q halves in Θ(n).
// The two protocols are separate points ("E18/double", "E18/halve").
func ArithmeticDef(env Env, ns []int, trials int) Def {
	const id = "E18"
	var points []sweep.Point
	for _, n := range ns {
		points = append(points,
			sweep.Point{
				Experiment: id + "/double", N: n, Trials: trials,
				Run: func(tr int, seed uint64) sweep.Values {
					s := arith.NewDoubleEngine(n, n/4, pop.WithSeed(seed), env.engineOpt())
					at, ok := arith.CompletionTime(s, false, 1e6)
					if !ok {
						at = math.NaN()
					}
					return sweep.Values{"time": at}
				},
			},
			sweep.Point{
				Experiment: id + "/halve", N: n, Trials: trials,
				Run: func(tr int, seed uint64) sweep.Values {
					s := arith.NewHalveEngine(n, n/4, pop.WithSeed(seed), env.engineOpt())
					at, ok := arith.CompletionTime(s, (n/4)%2 == 1, 1e8)
					if !ok {
						at = math.NaN()
					}
					return sweep.Values{"time": at}
				},
			})
	}
	render := func(res *sweep.Results) stats.Table {
		t := stats.Table{
			Title: "E18: intro example — 2x in O(log n) vs ⌊x/2⌋ in Θ(n) (Section 1)",
			Note:  "x = n/4 input agents in both protocols.",
			Columns: []string{"n", "double mean time", "double/ln n", "halve mean time",
				"halve/n", "ratio"},
		}
		for _, n := range ns {
			ds := stats.Summarize(res.Values(id+"/double", n, "time"))
			hs := stats.Summarize(res.Values(id+"/halve", n, "time"))
			t.AddRow(stats.I(n), stats.F(ds.Mean), stats.F(ds.Mean/math.Log(float64(n))),
				stats.F(hs.Mean), stats.F(hs.Mean/float64(n)), stats.F(hs.Mean/ds.Mean))
		}
		return t
	}
	return Def{ID: id, Env: env, Points: points, Render: render}
}

// Arithmetic renders E18 via a local sweep (legacy form).
func Arithmetic(ns []int, trials int, seedBase uint64) stats.Table {
	return ArithmeticDef(Env{}, ns, trials).Table(seedBase)
}
