package expt

import (
	"math"

	"github.com/popsim/popsize/internal/arith"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/stats"
)

// Arithmetic is E18: the introduction's efficient-vs-inefficient example —
// x,q → y,y doubles in O(log n) while x,x → y,q halves in Θ(n).
func Arithmetic(ns []int, trials int, seedBase uint64) stats.Table {
	t := stats.Table{
		Title: "E18: intro example — 2x in O(log n) vs ⌊x/2⌋ in Θ(n) (Section 1)",
		Note:  "x = n/4 input agents in both protocols.",
		Columns: []string{"n", "double mean time", "double/ln n", "halve mean time",
			"halve/n", "ratio"},
	}
	for _, n := range ns {
		dts := stats.ParallelTrials(trials, func(tr int) float64 {
			s := arith.NewDoubleEngine(n, n/4, pop.WithSeed(seedBase+uint64(tr)*83), engineOpt())
			at, ok := arith.CompletionTime(s, false, 1e6)
			if !ok {
				return math.NaN()
			}
			return at
		})
		hts := stats.ParallelTrials(trials, func(tr int) float64 {
			s := arith.NewHalveEngine(n, n/4, pop.WithSeed(seedBase+uint64(tr)*89), engineOpt())
			at, ok := arith.CompletionTime(s, (n/4)%2 == 1, 1e8)
			if !ok {
				return math.NaN()
			}
			return at
		})
		ds, hs := stats.Summarize(dts), stats.Summarize(hts)
		t.AddRow(stats.I(n), stats.F(ds.Mean), stats.F(ds.Mean/math.Log(float64(n))),
			stats.F(hs.Mean), stats.F(hs.Mean/float64(n)), stats.F(hs.Mean/ds.Mean))
	}
	return t
}
