package expt

import (
	"math"

	"github.com/popsim/popsize/internal/approxsize"
	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/exactcount"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/stats"
	"github.com/popsim/popsize/internal/sweep"
)

// BaselinesDef is E16: the accuracy/time trade among the [2]-style one-shot
// maximum (O(log n) time, multiplicative error), the paper's protocol
// (O(log² n) time, additive error), and [32]-style exact counting with a
// leader (O(n log n) time, exact). The shape to reproduce: each step up in
// accuracy costs roughly a multiplicative log n → n/log n factor in time.
// The three protocols are separate sweep points ("E16/weak", "E16/main",
// "E16/exact").
func BaselinesDef(env Env, cfg core.Config, ns []int, trials int) Def {
	const id = "E16"
	mp := core.MustNew(cfg)
	ep := exactcount.New(0)
	var points []sweep.Point
	for _, n := range ns {
		logN := math.Log2(float64(n))
		points = append(points,
			sweep.Point{
				Experiment: id + "/weak", N: n, Trials: trials,
				Run: func(tr int, seed uint64) sweep.Values {
					s := approxsize.NewEngine(n, pop.WithSeed(seed), env.engineOpt())
					ok, at := s.RunUntil(approxsize.Converged, 1, 100*logN)
					ratio := 0.0
					if k, has := approxsize.CommonK(s); has {
						ratio = float64(k) / logN
					}
					if !ok {
						at = math.NaN()
					}
					return sweep.Values{"time": at, "ratio": ratio}
				},
			},
			sweep.Point{
				Experiment: id + "/main", N: n, Trials: trials,
				Run: func(tr int, seed uint64) sweep.Values {
					r := mp.Run(n, env.runOptions(seed))
					return sweep.Values{"time": r.Time, "err": r.MaxErr}
				},
			},
			sweep.Point{
				Experiment: id + "/exact", N: n, Trials: trials,
				Run: func(tr int, seed uint64) sweep.Values {
					s := ep.NewEngine(n, pop.WithSeed(seed), env.engineOpt())
					ok, at := s.RunUntil(exactcount.Terminated, 5, float64(5000*n))
					correct := sweep.Bool(exactcount.LeaderCount(s) == n)
					if !ok {
						at = math.NaN()
					}
					return sweep.Values{"time": at, "correct": correct}
				},
			})
	}
	render := func(res *sweep.Results) stats.Table {
		t := stats.Table{
			Title: "E16: baselines — time vs accuracy",
			Note: "[2]: k within [log n − log ln n, 2 log n] (multiplicative in log n). " +
				"Main: |k − log n| <= 5.7 (additive). Exact count: k = log n exactly.",
			Columns: []string{"n", "[2] time", "[2] k/log n", "main time", "main |err|",
				"exact time", "exact correct"},
		}
		for _, n := range ns {
			nCorrect := 0
			for _, c := range res.Values(id+"/exact", n, "correct") {
				if c == 1 {
					nCorrect++
				}
			}
			at := stats.Summarize(res.Values(id+"/weak", n, "time"))
			rt := stats.Summarize(res.Values(id+"/weak", n, "ratio"))
			mt := stats.Summarize(res.Values(id+"/main", n, "time"))
			me := stats.Summarize(res.Values(id+"/main", n, "err"))
			et := stats.Summarize(res.Values(id+"/exact", n, "time"))
			t.AddRow(stats.I(n), stats.F(at.Mean), stats.F(rt.Mean), stats.F(mt.Mean),
				stats.F(me.Mean), stats.F(et.Mean),
				stats.I(nCorrect)+"/"+stats.I(trials))
		}
		return t
	}
	return Def{ID: id, Env: env, Points: points, Render: render}
}

// Baselines renders E16 via a local sweep (legacy form).
func Baselines(cfg core.Config, ns []int, trials int, seedBase uint64) stats.Table {
	return BaselinesDef(Env{}, cfg, ns, trials).Table(seedBase)
}
