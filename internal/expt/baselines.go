package expt

import (
	"math"

	"github.com/popsim/popsize/internal/approxsize"
	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/exactcount"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/stats"
)

// Baselines is E16: the accuracy/time trade among the [2]-style one-shot
// maximum (O(log n) time, multiplicative error), the paper's protocol
// (O(log² n) time, additive error), and [32]-style exact counting with a
// leader (O(n log n) time, exact). The shape to reproduce: each step up in
// accuracy costs roughly a multiplicative log n → n/log n factor in time.
func Baselines(cfg core.Config, ns []int, trials int, seedBase uint64) stats.Table {
	t := stats.Table{
		Title: "E16: baselines — time vs accuracy",
		Note: "[2]: k within [log n − log ln n, 2 log n] (multiplicative in log n). " +
			"Main: |k − log n| <= 5.7 (additive). Exact count: k = log n exactly.",
		Columns: []string{"n", "[2] time", "[2] k/log n", "main time", "main |err|",
			"exact time", "exact correct"},
	}
	mp := core.MustNew(cfg)
	ep := exactcount.New(0)
	for _, n := range ns {
		logN := math.Log2(float64(n))

		ratios := make([]float64, trials)
		apxTimes := stats.ParallelTrials(trials, func(tr int) float64 {
			s := approxsize.NewEngine(n, pop.WithSeed(seedBase+uint64(tr)*61), engineOpt())
			ok, at := s.RunUntil(approxsize.Converged, 1, 100*logN)
			if k, has := approxsize.CommonK(s); has {
				ratios[tr] = float64(k) / logN
			}
			if !ok {
				return math.NaN()
			}
			return at
		})

		mainErrs := make([]float64, trials)
		mainTimes := stats.ParallelTrials(trials, func(tr int) float64 {
			r := mp.Run(n, core.RunOptions{Seed: seedBase + uint64(tr)*67, Backend: Backend()})
			mainErrs[tr] = r.MaxErr
			return r.Time
		})

		correct := make([]bool, trials)
		exactTimes := stats.ParallelTrials(trials, func(tr int) float64 {
			s := ep.NewEngine(n, pop.WithSeed(seedBase+uint64(tr)*71), engineOpt())
			ok, at := s.RunUntil(exactcount.Terminated, 5, float64(5000*n))
			correct[tr] = exactcount.LeaderCount(s) == n
			if !ok {
				return math.NaN()
			}
			return at
		})
		nCorrect := 0
		for _, c := range correct {
			if c {
				nCorrect++
			}
		}
		at, rt := stats.Summarize(apxTimes), stats.Summarize(ratios)
		mt, me := stats.Summarize(mainTimes), stats.Summarize(mainErrs)
		et := stats.Summarize(exactTimes)
		t.AddRow(stats.I(n), stats.F(at.Mean), stats.F(rt.Mean), stats.F(mt.Mean),
			stats.F(me.Mean), stats.F(et.Mean),
			stats.I(nCorrect)+"/"+stats.I(trials))
	}
	return t
}
