package expt

import (
	"fmt"
	"math"

	"github.com/popsim/popsize/internal/compose"
	"github.com/popsim/popsize/internal/leaderelect"
	"github.com/popsim/popsize/internal/majority"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/stats"
	"github.com/popsim/popsize/internal/sweep"
)

// CompositionDef is E17: the restart-based composition of Section 1.1
// turning the nonuniform majority and leader-election protocols uniform.
// Majority is swept over margins (one point per margin,
// "E17/majority/m=<margin>"); leader election reports unique-leader rates
// ("E17/leader").
func CompositionDef(env Env, n int, margins []float64, trials int) Def {
	const id = "E17"
	marginExp := func(m float64) string { return fmt.Sprintf("%s/majority/m=%g", id, m) }
	var points []sweep.Point
	for _, margin := range margins {
		plus := n/2 + int(margin*float64(n)/2)
		opinions := make([]int8, n)
		for i := range opinions {
			if i < plus {
				opinions[i] = 1
			} else {
				opinions[i] = -1
			}
		}
		points = append(points, sweep.Point{
			Experiment: marginExp(margin), N: n, Trials: trials,
			Run: func(tr int, seed uint64) sweep.Values {
				p := compose.MustNew(compose.Config{F: 16}, majority.Downstream(opinions))
				s := p.NewSim(n, pop.WithSeed(seed))
				ok, at := s.RunUntil(p.Converged, 10, 5e5)
				if ok {
					s.RunTime(20 * math.Log2(float64(n)))
				}
				pl, mi, und := majority.Outputs(s)
				succ := sweep.Bool(ok && und == 0 && pl > 0 && mi == 0)
				if !ok {
					at = math.NaN()
				}
				return sweep.Values{"time": at, "success": succ}
			},
		})
	}
	points = append(points, sweep.Point{
		Experiment: id + "/leader", N: n, Trials: trials,
		Run: func(tr int, seed uint64) sweep.Values {
			p := compose.MustNew(compose.Config{F: 16}, leaderelect.Downstream())
			s := p.NewSim(n, pop.WithSeed(seed))
			ok, at := s.RunUntil(p.Converged, 10, 5e5)
			if ok {
				// The coin-flip tiebreak continues after the staged rounds.
				s.RunUntil(func(s pop.Engine[compose.State[leaderelect.State]]) bool {
					return leaderelect.Candidates(s) == 1
				}, 10, 1e5)
			}
			unique := sweep.Bool(leaderelect.Candidates(s) == 1)
			if !ok {
				at = math.NaN()
			}
			return sweep.Values{"time": at, "unique": unique}
		},
	})
	render := func(res *sweep.Results) stats.Table {
		t := stats.Table{
			Title: "E17: uniformized downstream protocols via the §1.1 composition",
			Note: "Majority margins are fractions of n (0.01 = 51/49 split). " +
				"Success = every agent outputs the true majority sign.",
			Columns: []string{"protocol", "n", "margin", "success", "mean time"},
		}
		for _, margin := range margins {
			exp := marginExp(margin)
			nSucc := 0
			for _, s := range res.Values(exp, n, "success") {
				if s == 1 {
					nSucc++
				}
			}
			ts := stats.Summarize(res.Values(exp, n, "time"))
			t.AddRow("majority", stats.I(n), stats.F(margin),
				stats.I(nSucc)+"/"+stats.I(trials), stats.F(ts.Mean))
		}
		nUnique := 0
		for _, u := range res.Values(id+"/leader", n, "unique") {
			if u == 1 {
				nUnique++
			}
		}
		ts := stats.Summarize(res.Values(id+"/leader", n, "time"))
		t.AddRow("leader election", stats.I(n), "—",
			stats.I(nUnique)+"/"+stats.I(trials), stats.F(ts.Mean))
		return t
	}
	return Def{ID: id, Env: env, Points: points, Render: render}
}

// Composition renders E17 via a local sweep (legacy form).
func Composition(n int, margins []float64, trials int, seedBase uint64) stats.Table {
	return CompositionDef(Env{}, n, margins, trials).Table(seedBase)
}
