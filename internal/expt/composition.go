package expt

import (
	"math"

	"github.com/popsim/popsize/internal/compose"
	"github.com/popsim/popsize/internal/leaderelect"
	"github.com/popsim/popsize/internal/majority"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/stats"
)

// Composition is E17: the restart-based composition of Section 1.1 turning
// the nonuniform majority and leader-election protocols uniform. Majority
// is swept over margins; leader election reports unique-leader rates.
func Composition(n int, margins []float64, trials int, seedBase uint64) stats.Table {
	t := stats.Table{
		Title: "E17: uniformized downstream protocols via the §1.1 composition",
		Note: "Majority margins are fractions of n (0.01 = 51/49 split). " +
			"Success = every agent outputs the true majority sign.",
		Columns: []string{"protocol", "n", "margin", "success", "mean time"},
	}
	for _, margin := range margins {
		plus := n/2 + int(margin*float64(n)/2)
		opinions := make([]int8, n)
		for i := range opinions {
			if i < plus {
				opinions[i] = 1
			} else {
				opinions[i] = -1
			}
		}
		succ := make([]bool, trials)
		times := stats.ParallelTrials(trials, func(tr int) float64 {
			p := compose.MustNew(compose.Config{F: 16}, majority.Downstream(opinions))
			s := p.NewSim(n, pop.WithSeed(seedBase+uint64(tr)*73))
			ok, at := s.RunUntil(p.Converged, 10, 5e5)
			if ok {
				s.RunTime(20 * math.Log2(float64(n)))
			}
			pl, mi, und := majority.Outputs(s)
			succ[tr] = ok && und == 0 && pl > 0 && mi == 0
			if !ok {
				return math.NaN()
			}
			return at
		})
		nSucc := 0
		for _, s := range succ {
			if s {
				nSucc++
			}
		}
		ts := stats.Summarize(times)
		t.AddRow("majority", stats.I(n), stats.F(margin),
			stats.I(nSucc)+"/"+stats.I(trials), stats.F(ts.Mean))
	}

	unique := make([]bool, trials)
	leTimes := stats.ParallelTrials(trials, func(tr int) float64 {
		p := compose.MustNew(compose.Config{F: 16}, leaderelect.Downstream())
		s := p.NewSim(n, pop.WithSeed(seedBase+uint64(tr)*79))
		ok, at := s.RunUntil(p.Converged, 10, 5e5)
		if ok {
			// The coin-flip tiebreak continues after the staged rounds.
			s.RunUntil(func(s pop.Engine[compose.State[leaderelect.State]]) bool {
				return leaderelect.Candidates(s) == 1
			}, 10, 1e5)
		}
		unique[tr] = leaderelect.Candidates(s) == 1
		if !ok {
			return math.NaN()
		}
		return at
	})
	nUnique := 0
	for _, u := range unique {
		if u {
			nUnique++
		}
	}
	ts := stats.Summarize(leTimes)
	t.AddRow("leader election", stats.I(n), "—",
		stats.I(nUnique)+"/"+stats.I(trials), stats.F(ts.Mean))
	return t
}
