package expt

import (
	"testing"

	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/sweep"
	"github.com/popsim/popsize/internal/synthcoin"
)

// TestDefaultSuiteSeedsDistinct is the regression test for the
// cross-experiment seed-collision bug: expanding the full default
// experiment suite into its sweep units must derive pairwise-distinct
// engine seeds across every (experiment, n, trial) triple. Under the old
// per-site `seedBase + trial*prime` scheme this fails — e.g. trial 29 of
// the prime-17 experiment and trial 17 of the prime-29 experiment ran the
// identical random stream.
func TestDefaultSuiteSeedsDistinct(t *testing.T) {
	for _, baseSeed := range []uint64{1, 42} {
		var points []sweep.Point
		for _, d := range DefaultDefs(Env{}, core.FastConfig(), synthcoin.FastConfig(), DefaultParams()) {
			points = append(points, d.Points...)
		}
		units := sweep.Spec{Points: points, BaseSeed: baseSeed}.Units()
		if len(units) < 500 {
			t.Fatalf("default suite expands to only %d units — registry lost experiments?", len(units))
		}
		seen := make(map[uint64]sweep.Key, len(units))
		for _, u := range units {
			if prev, ok := seen[u.Seed]; ok {
				t.Fatalf("base seed %d: units %+v and %+v share engine seed %#x",
					baseSeed, prev, u.Key, u.Seed)
			}
			seen[u.Seed] = u.Key
		}
	}
}

// TestDefaultSuiteCoversIndex: the registry carries the full DESIGN.md
// experiment index, in order.
func TestDefaultSuiteCoversIndex(t *testing.T) {
	defs := DefaultDefs(Env{}, core.FastConfig(), synthcoin.FastConfig(), QuickParams())
	want := []string{"F2", "E1", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
		"E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "A1", "A2", "A3",
		"E-churn", "E-churn-detect", "E-junta", "E-repmaj", "E-bkr"}
	if len(defs) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(defs), len(want))
	}
	for i, d := range defs {
		if d.ID != want[i] {
			t.Errorf("defs[%d].ID = %s, want %s", i, d.ID, want[i])
		}
		if len(d.Points) == 0 {
			t.Errorf("%s has no sweep points", d.ID)
		}
	}
}
