package expt

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/sweep"
)

// runEnvSweep executes a def's points through sweep.RunContext with the
// spec stamped from the def's env — the same stamping the daemon applies —
// and returns the canonical record bytes.
func runEnvSweep(d Def, seed uint64) ([]byte, error) {
	var out bytes.Buffer
	res, err := sweep.RunContext(context.Background(),
		sweep.Spec{Points: d.Points, BaseSeed: seed, Backend: d.Env.Backend, Par: d.Env.Par},
		sweep.Options{Out: &out})
	if err != nil {
		return nil, err
	}
	return sweep.CanonicalJSONL(res.Sorted())
}

// TestConcurrentHeterogeneousEnvs is the tentpole's determinism contract:
// with engine configuration carried by each suite's Env instead of
// process-wide atomics, two sweeps with different (backend, par) can run
// concurrently in one process and each still produces canonical record
// bytes identical to its solo run. Run under -race this also proves no
// shared engine-config state remains.
func TestConcurrentHeterogeneousEnvs(t *testing.T) {
	cfg := core.FastConfig()
	defA := Fig2Def(Env{Backend: pop.Sequential}, cfg, []int{32, 64}, 2)
	defB := EpidemicDef(Env{Backend: pop.Dense, Par: 2}, []int{64, 128}, 2)

	solo := func(d Def, seed uint64) []byte {
		b, err := runEnvSweep(d, seed)
		if err != nil {
			t.Fatalf("solo sweep %s: %v", d.ID, err)
		}
		return b
	}
	soloA, soloB := solo(defA, 11), solo(defB, 23)

	var wg sync.WaitGroup
	var concA, concB []byte
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); concA, errA = runEnvSweep(defA, 11) }()
	go func() { defer wg.Done(); concB, errB = runEnvSweep(defB, 23) }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("concurrent sweeps: %v / %v", errA, errB)
	}

	if !bytes.Equal(soloA, concA) {
		t.Errorf("seq suite diverged when run beside a dense suite:\nsolo:\n%s\nconcurrent:\n%s", soloA, concA)
	}
	if !bytes.Equal(soloB, concB) {
		t.Errorf("dense/par=2 suite diverged when run beside a seq suite:\nsolo:\n%s\nconcurrent:\n%s", soloB, concB)
	}
}
