// Package leaderterm implements Section 3.4 / Theorem 3.13: terminating
// size estimation with an initial leader. Theorem 4.1 shows a leaderless
// uniform dense protocol cannot signal termination; with one leader it can.
//
// The leader runs the main Log-Size-Estimation protocol like everyone else
// and, in parallel, counts its own interactions against the threshold
// TermFactor · ClockFactor · EpochFactor · L², where L is the effective
// logSize2 estimate. A leader's interaction count is Chernoff-concentrated
// at 2× parallel time, so the threshold fires at Θ(log² n) parallel time,
// a constant factor after the main protocol has converged w.h.p. The
// counter resets whenever logSize2 grows (the restart scheme), exactly as
// the estimate-driven timer of Theorem 3.13 requires. The paper drives this
// timer with the [9] leader phase clock; the interaction counter provides
// the same Θ(log² n) guarantee with one fewer moving part (DESIGN.md
// deviation 6; the [9] clock itself lives in internal/clock).
package leaderterm

import (
	"math/rand/v2"

	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/pop"
)

// DefaultTermFactor multiplies the main protocol's expected convergence
// budget ClockFactor·EpochFactor·L² to place termination safely after
// convergence.
const DefaultTermFactor = 3

// State combines the main-protocol state with the leader timer.
type State struct {
	// Main is the embedded Log-Size-Estimation state.
	Main core.State
	// Leader marks the unique initial leader.
	Leader bool
	// Timer counts the leader's own interactions since the last logSize2
	// update.
	Timer uint32
	// Terminated is the termination signal (spread by epidemic once the
	// leader's timer fires).
	Terminated bool
}

// Protocol is the terminating-with-a-leader protocol.
type Protocol struct {
	main       *core.Protocol
	termFactor int
}

// New returns the protocol over the given main-protocol configuration.
// termFactor <= 0 selects DefaultTermFactor.
func New(cfg core.Config, termFactor int) (*Protocol, error) {
	m, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if termFactor <= 0 {
		termFactor = DefaultTermFactor
	}
	return &Protocol{main: m, termFactor: termFactor}, nil
}

// MustNew is New, panicking on an invalid configuration.
func MustNew(cfg core.Config, termFactor int) *Protocol {
	p, err := New(cfg, termFactor)
	if err != nil {
		panic(err)
	}
	return p
}

// Initial places the leader at index 0; the protocol is otherwise uniform.
func (p *Protocol) Initial(i int, _ *rand.Rand) State {
	return State{Main: core.Initial(), Leader: i == 0}
}

// threshold is the leader's interaction-count target: a leader has ≈ 2
// interactions per time unit, so this fires at ≈ termFactor/2 × the main
// protocol's full K·T interaction budget in parallel time.
func (p *Protocol) threshold(raw uint8) uint32 {
	cfg := p.main.Config()
	l := uint32(raw) + uint32(cfg.GeomBonus)
	return uint32(p.termFactor) * uint32(cfg.ClockFactor) * uint32(cfg.EpochFactor) * l * l
}

// Rule runs the main transition, ticks the leader timer (resetting it when
// the weak estimate grows), and spreads the termination signal. An agent
// whose weak estimate grew treats a previously received signal as stale and
// drops it — the same restart semantics as every other downstream field —
// so a too-early signal cannot outlive the estimate it was based on.
func (p *Protocol) Rule(rec, sen State, r *rand.Rand) (State, State) {
	recLS, senLS := rec.Main.LogSize2, sen.Main.LogSize2
	rec.Main, sen.Main = p.main.Rule(rec.Main, sen.Main, r)
	rec = p.tick(rec, recLS)
	sen = p.tick(sen, senLS)

	if rec.Terminated != sen.Terminated {
		rec.Terminated = true
		sen.Terminated = true
	}
	return rec, sen
}

func (p *Protocol) tick(a State, prevLogSize2 uint8) State {
	if a.Main.LogSize2 != prevLogSize2 {
		a.Timer = 0 // restart: the estimate grew, the old deadline is void
		a.Terminated = false
	}
	if !a.Leader {
		return a
	}
	a.Timer++
	if a.Timer >= p.threshold(a.Main.LogSize2) {
		a.Terminated = true
	}
	return a
}

// Terminated reports whether any agent has raised the termination signal.
func Terminated(s pop.Engine[State]) bool {
	return s.Any(func(a State) bool { return a.Terminated })
}

// AllTerminated reports whether the signal has reached every agent.
func AllTerminated(s pop.Engine[State]) bool {
	return s.All(func(a State) bool { return a.Terminated })
}

// MainConverged reports whether the embedded main protocol satisfies its
// convergence predicate.
func (p *Protocol) MainConverged(s pop.Engine[State]) bool {
	first := true
	var ls uint8
	return s.All(func(a State) bool {
		m := a.Main
		if m.Role == core.RoleX || !m.HasOutput {
			return false
		}
		if first {
			ls, first = m.LogSize2, false
		} else if m.LogSize2 != ls {
			return false
		}
		return uint32(m.Epoch) >= p.main.Config().EpochTarget(m.LogSize2)
	})
}

// NewSim constructs a simulator for the protocol.
func (p *Protocol) NewSim(n int, opts ...pop.Option) *pop.Sim[State] {
	return pop.New(n, p.Initial, p.Rule, opts...)
}

// NewEngine constructs a simulation engine for the protocol; the backend
// is chosen with pop.WithBackend.
func (p *Protocol) NewEngine(n int, opts ...pop.Option) pop.Engine[State] {
	return pop.NewEngine(n, p.Initial, p.Rule, opts...)
}

// Main exposes the embedded main protocol.
func (p *Protocol) Main() *core.Protocol { return p.main }
