package leaderterm

import "math/rand/v2"

func testRand() *rand.Rand {
	return rand.New(rand.NewPCG(31, 32))
}
