package leaderterm

import (
	"math"
	"testing"

	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/pop"
)

// TestTerminationAfterConvergence is the point of Theorem 3.13: with an
// initial leader the termination signal fires only after the embedded main
// protocol has converged (w.h.p.; we demand it across all seeds tried).
func TestTerminationAfterConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("full runs are not short")
	}
	p := MustNew(core.FastConfig(), 0)
	for _, n := range []int{128, 512} {
		for seed := uint64(0); seed < 4; seed++ {
			s := p.NewSim(n, pop.WithSeed(seed))
			budget := 20 * p.Main().DefaultMaxTime(n)
			convergedFirst := false
			ok, at := s.RunUntil(func(s pop.Engine[State]) bool {
				if Terminated(s) {
					return true
				}
				if !convergedFirst && p.MainConverged(s) {
					convergedFirst = true
				}
				return false
			}, 1, budget)
			if !ok {
				t.Fatalf("n=%d seed=%d: never terminated within %.0f", n, seed, budget)
			}
			if !convergedFirst && !p.MainConverged(s) {
				t.Errorf("n=%d seed=%d: terminated at %.0f before main convergence", n, seed, at)
			}
		}
	}
}

// TestSignalSpreads: after the leader terminates, the signal reaches the
// whole population in O(log n) time.
func TestSignalSpreads(t *testing.T) {
	if testing.Short() {
		t.Skip("full runs are not short")
	}
	p := MustNew(core.FastConfig(), 0)
	const n = 256
	s := p.NewSim(n, pop.WithSeed(9))
	ok, _ := s.RunUntil(Terminated, 1, 20*p.Main().DefaultMaxTime(n))
	if !ok {
		t.Fatal("never terminated")
	}
	ok, _ = s.RunUntil(AllTerminated, 1, 50*math.Log2(n))
	if !ok {
		t.Error("termination signal did not reach all agents in O(log n) time")
	}
}

// TestTimerResetOnEstimateGrowth: a leader that learns a larger logSize2
// loses its timer progress (the restart scheme).
func TestTimerResetOnEstimateGrowth(t *testing.T) {
	p := MustNew(core.FastConfig(), 0)
	leader := State{Main: core.State{Role: core.RoleA, LogSize2: 3, GR: 1}, Leader: true, Timer: 500}
	other := State{Main: core.State{Role: core.RoleS, LogSize2: 12}}
	got, _ := p.Rule(leader, other, testRand())
	if got.Main.LogSize2 != 12 {
		t.Fatalf("leader did not adopt larger logSize2: %+v", got)
	}
	if got.Timer != 1 {
		t.Errorf("leader timer = %d after estimate growth, want 1 (reset + this tick)", got.Timer)
	}
}

// TestOnlyLeaderTicks: follower timers never advance.
func TestOnlyLeaderTicks(t *testing.T) {
	p := MustNew(core.FastConfig(), 0)
	a := State{Main: core.Initial()}
	b := State{Main: core.Initial()}
	ga, gb := p.Rule(a, b, testRand())
	if ga.Timer != 0 || gb.Timer != 0 {
		t.Errorf("follower timers advanced: %d, %d", ga.Timer, gb.Timer)
	}
}
