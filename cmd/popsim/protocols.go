// Registry entries for the estimation pipeline and its baselines. These
// protocols need the top-level popsize API, the core engine and the expt
// trajectory plumbing, so they register here in package main rather than
// in internal/protocol (which the experiment defs import and which
// therefore must stay below expt in the import graph). The table-compiled
// zoo registers itself from internal/protocol's own init functions.
package main

import (
	"fmt"
	"math"

	"github.com/popsim/popsize"
	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/expt"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/protocol"
	"github.com/popsim/popsize/internal/sweep"
)

func init() {
	protocol.Register(protocol.Info{
		Name:       "main",
		Desc:       "Log-Size-Estimation, the paper's full pipeline",
		Trajectory: true,
		New:        newMainRunner,
	})
	protocol.Register(protocol.Info{
		Name: "synthcoin",
		Desc: "Appendix B deterministic-transition variant (synthetic coin)",
		New: func(cfg protocol.Config) (*protocol.Runner, error) {
			logN := math.Log2(float64(cfg.N))
			return &protocol.Runner{
				N: cfg.N,
				Run: func(tr int, seed uint64) sweep.Values {
					est, _, err := popsize.EstimateDeterministic(cfg.N, seed)
					if err != nil {
						cfg.Fail(fmt.Errorf("trial %d: %w", tr, err))
						est = math.NaN()
					}
					return sweep.Values{"estimate": est}
				},
				Format: func(v sweep.Values) string {
					return fmt.Sprintf("estimate=%.3f err=%.3f", v["estimate"], math.Abs(v["estimate"]-logN))
				},
			}, nil
		},
	})
	protocol.Register(protocol.Info{
		Name: "upperbound",
		Desc: "§3.3 probability-1 upper bound",
		New: func(cfg protocol.Config) (*protocol.Runner, error) {
			logN := math.Log2(float64(cfg.N))
			return &protocol.Runner{
				N: cfg.N,
				Run: func(tr int, seed uint64) sweep.Values {
					bound, _, err := popsize.EstimateUpperBound(cfg.N, seed)
					if err != nil {
						cfg.Fail(fmt.Errorf("trial %d: %w", tr, err))
						bound = math.NaN()
					}
					return sweep.Values{"bound": bound}
				},
				Format: func(v sweep.Values) string {
					return fmt.Sprintf("bound=%.3f log2(n)=%.3f holds=%v", v["bound"], logN, v["bound"] >= logN)
				},
			}, nil
		},
	})
	protocol.Register(protocol.Info{
		Name: "leaderterm",
		Desc: "§3.4 terminating variant with a leader",
		New: func(cfg protocol.Config) (*protocol.Runner, error) {
			return &protocol.Runner{
				N: cfg.N,
				Run: func(tr int, seed uint64) sweep.Values {
					r, err := popsize.EstimateTerminating(cfg.N, seed)
					if err != nil {
						cfg.Fail(fmt.Errorf("trial %d: %w", tr, err))
						return sweep.Values{"terminated_at": math.NaN(), "converged_first": 0, "estimate": math.NaN()}
					}
					return sweep.Values{
						"terminated_at": r.TerminatedAt, "converged_first": sweep.Bool(r.ConvergedFirst),
						"estimate": r.Estimate,
					}
				},
				Format: func(v sweep.Values) string {
					return fmt.Sprintf("terminated_at=%.1f converged_first=%v estimate=%.3f",
						v["terminated_at"], v["converged_first"] == 1, v["estimate"])
				},
			}, nil
		},
	})
	protocol.Register(protocol.Info{
		Name: "weak",
		Desc: "[2]-style weak baseline (k = max interactions until repeat)",
		New: func(cfg protocol.Config) (*protocol.Runner, error) {
			logN := math.Log2(float64(cfg.N))
			return &protocol.Runner{
				N: cfg.N,
				Run: func(tr int, seed uint64) sweep.Values {
					k, err := popsize.WeakEstimateBackend(cfg.N, seed, cfg.Backend, pop.WithParallelism(cfg.Par))
					if err != nil {
						cfg.Fail(fmt.Errorf("trial %d: %w", tr, err))
						return sweep.Values{"k": math.NaN()}
					}
					return sweep.Values{"k": float64(k)}
				},
				Format: func(v sweep.Values) string {
					return fmt.Sprintf("k=%d k/log2(n)=%.3f", int(v["k"]), v["k"]/logN)
				},
			}, nil
		},
	})
	protocol.Register(protocol.Info{
		Name: "exactcount",
		Desc: "[32]-style exact-counting baseline",
		New:  newExactCountRunner,
	})
}

// newMainRunner adapts the full estimation pipeline: it resolves the
// paper-vs-fast preset, binds the trajectory instrumentation into a local
// expt.Env (the same env-scoped RunCore cmd/experiments' instrumented
// generators use), and parses a restore snapshot eagerly so a malformed
// file fails the command before any trial runs.
func newMainRunner(cfg protocol.Config) (*protocol.Runner, error) {
	pcfg := popsize.FastConfig()
	if cfg.Paper {
		pcfg = popsize.PaperConfig()
	}
	p, err := core.New(pcfg)
	if err != nil {
		return nil, err
	}
	n := cfg.N
	note := ""
	tc := &expt.TrajectoryConfig{}
	if t := cfg.Traj; t != nil {
		tc.HistoryPath, tc.HistoryEvery = t.HistoryPath, t.HistoryEvery
		tc.SnapshotPath, tc.SnapshotAt = t.SnapshotPath, t.SnapshotAt
		tc.RestorePath = t.RestorePath
		if t.RestorePath != "" {
			snap, err := pop.ReadSnapshotFile[core.State](t.RestorePath)
			if err != nil {
				return nil, fmt.Errorf("-restore: %w", err)
			}
			tc.Restore = snap
			n = snap.N
			note = fmt.Sprintf("restoring from %s: backend=%s n=%d", t.RestorePath, snap.Backend, snap.N)
		}
	}
	env := expt.Env{Backend: cfg.Backend, Par: cfg.Par, Traj: tc}
	logN := math.Log2(float64(n))
	trials := cfg.Trials
	return &protocol.Runner{
		N:    n,
		Note: note,
		Run: func(tr int, seed uint64) sweep.Values {
			tag := ""
			if trials > 1 {
				tag = fmt.Sprintf("t%d", tr)
			}
			r, err := env.RunCore(p, n, tag, core.RunOptions{Seed: seed, Backend: cfg.Backend, Parallelism: cfg.Par})
			if err != nil {
				cfg.Fail(fmt.Errorf("trial %d: %w", tr, err))
			}
			return sweep.Values{
				"converged": sweep.Bool(r.Converged), "time": r.Time,
				"estimate": r.Estimate, "countA": float64(r.CountA),
			}
		},
		Format: func(v sweep.Values) string {
			return fmt.Sprintf("converged=%v time=%.1f estimate=%.3f err=%.3f states(A)=%d",
				v["converged"] == 1, v["time"], v["estimate"],
				math.Abs(v["estimate"]-logN), int(v["countA"]))
		},
	}, nil
}
