// Command popsim runs one of the repository's population protocols on a
// chosen population size and reports per-trial results.
//
// Usage:
//
//	popsim -protocol main -n 10000 -trials 5 -seed 1 [-paper]
//
// Protocols: main (Log-Size-Estimation), synthcoin (App. B deterministic),
// upperbound (§3.3 probability-1), leaderterm (§3.4 terminating with a
// leader), weak ([2]-style baseline), exactcount ([32]-style baseline).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"github.com/popsim/popsize"
	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/pop"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "popsim:", err)
		os.Exit(1)
	}
}

func run() error {
	protocol := flag.String("protocol", "main", "main|synthcoin|upperbound|leaderterm|weak|exactcount")
	n := flag.Int("n", 1000, "population size")
	trials := flag.Int("trials", 3, "number of independent runs")
	seed := flag.Uint64("seed", 1, "base random seed")
	paper := flag.Bool("paper", false, "use the paper's constants (95/5) instead of the fast preset")
	backendFlag := flag.String("backend", "auto", "simulation backend for main/weak/exactcount: auto|seq|batch")
	flag.Parse()

	backend, err := pop.ParseBackend(*backendFlag)
	if err != nil {
		return err
	}

	logN := math.Log2(float64(*n))
	fmt.Printf("protocol=%s n=%d log2(n)=%.3f trials=%d\n", *protocol, *n, logN, *trials)

	cfg := popsize.FastConfig()
	if *paper {
		cfg = popsize.PaperConfig()
	}

	for t := 0; t < *trials; t++ {
		s := *seed + uint64(t)*1009
		switch *protocol {
		case "main":
			est, err := popsize.New(cfg)
			if err != nil {
				return err
			}
			r := est.Run(*n, popsize.RunOptions{Seed: s, Backend: backend})
			fmt.Printf("trial %d: converged=%v time=%.1f estimate=%.3f err=%.3f states(A)=%d\n",
				t, r.Converged, r.Time, r.Estimate, math.Abs(r.Estimate-logN), r.CountA)
		case "synthcoin":
			est, truth, err := popsize.EstimateDeterministic(*n, s)
			if err != nil {
				return err
			}
			fmt.Printf("trial %d: estimate=%.3f err=%.3f\n", t, est, math.Abs(est-truth))
		case "upperbound":
			bound, truth, err := popsize.EstimateUpperBound(*n, s)
			if err != nil {
				return err
			}
			fmt.Printf("trial %d: bound=%.3f log2(n)=%.3f holds=%v\n", t, bound, truth, bound >= truth)
		case "leaderterm":
			r, err := popsize.EstimateTerminating(*n, s)
			if err != nil {
				return err
			}
			fmt.Printf("trial %d: terminated_at=%.1f converged_first=%v estimate=%.3f\n",
				t, r.TerminatedAt, r.ConvergedFirst, r.Estimate)
		case "weak":
			k, err := popsize.WeakEstimateBackend(*n, s, backend)
			if err != nil {
				return err
			}
			fmt.Printf("trial %d: k=%d k/log2(n)=%.3f\n", t, k, float64(k)/logN)
		case "exactcount":
			if err := runExactCount(*n, s, t, backend); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown protocol %q", *protocol)
		}
	}
	_ = core.Initial // documents that popsim sits atop the same core package
	return nil
}
