// Command popsim runs one of the repository's population protocols on a
// chosen population size and reports per-trial results. Trials execute
// through the sweep subsystem: they parallelize across -workers, derive
// per-trial seeds via pop.TrialSeed (so different protocols sharing a base
// seed never reuse a random stream), and can be recorded to -jsonl and
// resumed with -resume.
//
// Usage:
//
//	popsim -protocol main -n 10000 -trials 5 -seed 1 [-paper] [-backend auto|seq|batch|dense] [-par N]
//
// The dense backend makes very large populations practical (its state is
// the count vector, never an agent array): -protocol weak -n 1000000000
// runs in ordinary memory. -par additionally parallelizes each trial's
// batch sampling across cores (deterministically: any -par >= 1 yields
// the identical trajectory for a given seed).
//
// Protocols: main (Log-Size-Estimation), synthcoin (App. B deterministic),
// upperbound (§3.3 probability-1), leaderterm (§3.4 terminating with a
// leader), weak ([2]-style baseline), exactcount ([32]-style baseline).
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sync"

	"github.com/popsim/popsize"
	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/expt"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/stats"
	"github.com/popsim/popsize/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "popsim:", err)
		os.Exit(1)
	}
}

// protocolRunner adapts one protocol to a sweep trial function plus a
// per-trial output line rendered from the recorded values.
type protocolRunner struct {
	run    sweep.TrialFunc
	format func(v sweep.Values) string
}

// errBox collects the first trial error across worker goroutines, so a
// failing protocol run still aborts the command with a nonzero exit (the
// sweep layer itself treats trial values as opaque).
type errBox struct {
	mu  sync.Mutex
	err error
}

func (b *errBox) set(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err == nil {
		b.err = err
	}
}

func (b *errBox) get() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// run is the command body, parameterized on its argument list and output
// stream so the CLI tests can exercise flag parsing, backend/parallelism
// selection and end-to-end trial output without spawning a process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("popsim", flag.ContinueOnError)
	fs.SetOutput(stdout)
	protocol := fs.String("protocol", "main", "main|synthcoin|upperbound|leaderterm|weak|exactcount")
	n := fs.Int("n", 1000, "population size")
	trials := fs.Int("trials", 3, "number of independent runs")
	paper := fs.Bool("paper", false, "use the paper's constants (95/5) instead of the fast preset")
	sf := sweep.Register(fs, "")
	if err := fs.Parse(args); err != nil {
		return err
	}

	backend, err := sf.ParseBackend()
	if err != nil {
		return err
	}
	if traj := sf.History != "" || sf.Snapshot != "" || sf.Restore != ""; traj && *protocol != "main" {
		return fmt.Errorf("-history/-snapshot/-restore instrument the main protocol only (got -protocol %s)", *protocol)
	}
	if sf.Restore != "" && *trials != 1 {
		return fmt.Errorf("-restore resumes one specific run; use -trials 1 (got %d)", *trials)
	}
	if err := expt.ConfigureTrajectory(sf); err != nil {
		return err
	}
	if tc := expt.Trajectory(); tc != nil && tc.Restore != nil {
		// The snapshot carries the population; the -n flag is ignored.
		*n = tc.Restore.N
		fmt.Fprintf(stdout, "restoring from %s: backend=%s n=%d\n", sf.Restore, tc.Restore.Backend, tc.Restore.N)
	}

	logN := math.Log2(float64(*n))
	fmt.Fprintf(stdout, "protocol=%s n=%d log2(n)=%.3f trials=%d\n", *protocol, *n, logN, *trials)

	cfg := popsize.FastConfig()
	if *paper {
		cfg = popsize.PaperConfig()
	}

	var box errBox
	r, err := runner(*protocol, cfg, *n, *trials, backend, sf.Par, &box)
	if err != nil {
		return err
	}
	res, err := sf.Execute([]sweep.Point{{
		Experiment: *protocol, N: *n, Trials: *trials, Run: r.run,
	}}, nil)
	if err != nil {
		return err
	}
	if err := box.get(); err != nil {
		return err
	}
	for t := 0; t < *trials; t++ {
		rec, ok := res.Get(*protocol, *n, t)
		if !ok {
			return fmt.Errorf("trial %d missing from sweep results", t)
		}
		// Failed trials are recorded with NaN values; a live failure is
		// caught by the errBox above, but a NaN replayed from a -resume
		// checkpoint must not print as garbage and exit 0.
		for field, v := range rec.Values {
			if math.IsNaN(v) {
				return fmt.Errorf("trial %d: recorded %q is NaN — the trial failed when it was checkpointed; rerun it by deleting %s or dropping -resume", t, field, sf.JSONL)
			}
		}
		fmt.Fprintf(stdout, "trial %d: %s\n", t, r.format(rec.Values))
	}
	if tc := expt.Trajectory(); tc != nil && tc.HistoryPath != "" && *trials == 1 {
		if err := printTrajectory(stdout, tc.HistoryFile("")); err != nil {
			return err
		}
	}
	_ = core.Initial // documents that popsim sits atop the same core package
	return nil
}

// printTrajectory reads a just-written history JSONL stream back and
// renders its per-sample digest table (reading through sweep.ReadHistory
// keeps the CLI on the same decoder any downstream tooling would use).
func printTrajectory(stdout io.Writer, path string) error {
	fh, err := os.Open(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	recs, err := sweep.ReadHistory(fh)
	if err != nil {
		return fmt.Errorf("reading back history %s: %w", path, err)
	}
	pts := make([]stats.TrajPoint, len(recs))
	for i, rec := range recs {
		live, top := stats.TrajDigest(rec.Config, rec.N)
		pts[i] = stats.TrajPoint{
			Time: rec.Time, N: rec.N, Interactions: rec.Interactions,
			Live: live, TopShare: top,
		}
	}
	fmt.Fprintln(stdout)
	table := stats.TrajectoryTable("Trajectory ("+path+")", pts)
	fmt.Fprint(stdout, table.Markdown())
	return nil
}

func runner(protocol string, cfg popsize.Config, n, trials int, backend pop.Backend, par int, box *errBox) (protocolRunner, error) {
	logN := math.Log2(float64(n))
	switch protocol {
	case "main":
		p, err := core.New(cfg)
		if err != nil {
			return protocolRunner{}, err
		}
		return protocolRunner{
			run: func(tr int, seed uint64) sweep.Values {
				tag := ""
				if trials > 1 {
					tag = fmt.Sprintf("t%d", tr)
				}
				r, err := expt.RunCore(p, n, tag, core.RunOptions{Seed: seed, Backend: backend, Parallelism: par})
				if err != nil {
					box.set(fmt.Errorf("trial %d: %w", tr, err))
				}
				return sweep.Values{
					"converged": sweep.Bool(r.Converged), "time": r.Time,
					"estimate": r.Estimate, "countA": float64(r.CountA),
				}
			},
			format: func(v sweep.Values) string {
				return fmt.Sprintf("converged=%v time=%.1f estimate=%.3f err=%.3f states(A)=%d",
					v["converged"] == 1, v["time"], v["estimate"],
					math.Abs(v["estimate"]-logN), int(v["countA"]))
			},
		}, nil
	case "synthcoin":
		return protocolRunner{
			run: func(tr int, seed uint64) sweep.Values {
				est, _, err := popsize.EstimateDeterministic(n, seed)
				if err != nil {
					box.set(fmt.Errorf("trial %d: %w", tr, err))
					est = math.NaN()
				}
				return sweep.Values{"estimate": est}
			},
			format: func(v sweep.Values) string {
				return fmt.Sprintf("estimate=%.3f err=%.3f", v["estimate"], math.Abs(v["estimate"]-logN))
			},
		}, nil
	case "upperbound":
		return protocolRunner{
			run: func(tr int, seed uint64) sweep.Values {
				bound, _, err := popsize.EstimateUpperBound(n, seed)
				if err != nil {
					box.set(fmt.Errorf("trial %d: %w", tr, err))
					bound = math.NaN()
				}
				return sweep.Values{"bound": bound}
			},
			format: func(v sweep.Values) string {
				return fmt.Sprintf("bound=%.3f log2(n)=%.3f holds=%v", v["bound"], logN, v["bound"] >= logN)
			},
		}, nil
	case "leaderterm":
		return protocolRunner{
			run: func(tr int, seed uint64) sweep.Values {
				r, err := popsize.EstimateTerminating(n, seed)
				if err != nil {
					box.set(fmt.Errorf("trial %d: %w", tr, err))
					return sweep.Values{"terminated_at": math.NaN(), "converged_first": 0, "estimate": math.NaN()}
				}
				return sweep.Values{
					"terminated_at": r.TerminatedAt, "converged_first": sweep.Bool(r.ConvergedFirst),
					"estimate": r.Estimate,
				}
			},
			format: func(v sweep.Values) string {
				return fmt.Sprintf("terminated_at=%.1f converged_first=%v estimate=%.3f",
					v["terminated_at"], v["converged_first"] == 1, v["estimate"])
			},
		}, nil
	case "weak":
		return protocolRunner{
			run: func(tr int, seed uint64) sweep.Values {
				k, err := popsize.WeakEstimateBackend(n, seed, backend, pop.WithParallelism(par))
				if err != nil {
					box.set(fmt.Errorf("trial %d: %w", tr, err))
					return sweep.Values{"k": math.NaN()}
				}
				return sweep.Values{"k": float64(k)}
			},
			format: func(v sweep.Values) string {
				return fmt.Sprintf("k=%d k/log2(n)=%.3f", int(v["k"]), v["k"]/logN)
			},
		}, nil
	case "exactcount":
		return exactCountRunner(n, backend, par, box), nil
	default:
		return protocolRunner{}, fmt.Errorf("unknown protocol %q", protocol)
	}
}
