// Command popsim runs one of the repository's population protocols on a
// chosen population size and reports per-trial results. Protocols are
// resolved through the internal/protocol registry — the paper's
// estimation pipeline and its baselines plus the table-compiled zoo
// (epidemic, approxmajority, repeatmajority, junta, bkrcount) — and an
// unknown -protocol fails with the full registered list. Trials execute
// through the sweep subsystem: they parallelize across -workers, derive
// per-trial seeds via pop.TrialSeed (so different protocols sharing a base
// seed never reuse a random stream), and can be recorded to -jsonl and
// resumed with -resume.
//
// Usage:
//
//	popsim -protocol main -n 10000 -trials 5 -seed 1 [-paper] [-backend auto|seq|batch|dense] [-par N]
//
// The dense backend makes very large populations practical (its state is
// the count vector, never an agent array): -protocol weak -n 1000000000
// runs in ordinary memory. -par additionally parallelizes each trial's
// batch sampling across cores (deterministically: any -par >= 1 yields
// the identical trajectory for a given seed). -stats prints each trial's
// transition-resolution counters — how many pair transitions the
// declared-table bypass, the deterministic-transition cache and actual
// rule invocations resolved.
//
// -history/-snapshot/-restore instrument trajectory-capable protocols
// (the main pipeline and every table-compiled zoo protocol).
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"sync"

	"github.com/popsim/popsize/internal/protocol"
	"github.com/popsim/popsize/internal/stats"
	"github.com/popsim/popsize/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "popsim:", err)
		os.Exit(1)
	}
}

// errBox collects the first trial error across worker goroutines, so a
// failing protocol run still aborts the command with a nonzero exit (the
// sweep layer itself treats trial values as opaque).
type errBox struct {
	mu  sync.Mutex
	err error
}

func (b *errBox) set(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err == nil {
		b.err = err
	}
}

func (b *errBox) get() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// run is the command body, parameterized on its argument list and output
// stream so the CLI tests can exercise flag parsing, backend/parallelism
// selection and end-to-end trial output without spawning a process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("popsim", flag.ContinueOnError)
	fs.SetOutput(stdout)
	name := fs.String("protocol", "main", "protocol name: "+strings.Join(protocol.Names(), "|"))
	n := fs.Int("n", 1000, "population size")
	trials := fs.Int("trials", 3, "number of independent runs")
	paper := fs.Bool("paper", false, "use the paper's constants (95/5) instead of the fast preset")
	showStats := fs.Bool("stats", false, "print per-trial transition-resolution counters (table/cache/rule)")
	sf := sweep.Register(fs, "")
	if err := fs.Parse(args); err != nil {
		return err
	}

	backend, err := sf.ParseBackend()
	if err != nil {
		return err
	}
	info, err := protocol.Lookup(*name)
	if err != nil {
		return err
	}
	inst := &protocol.Instrumentation{
		HistoryPath:  sf.History,
		HistoryEvery: sf.HistoryEvery,
		SnapshotPath: sf.Snapshot,
		SnapshotAt:   sf.SnapshotAt,
		RestorePath:  sf.Restore,
	}
	if inst.Active() {
		if !info.Trajectory {
			return fmt.Errorf("-history/-snapshot/-restore instrument trajectory-capable protocols only (%s; got -protocol %s)",
				strings.Join(protocol.TrajectoryNames(), ", "), info.Name)
		}
		if inst.HistoryPath != "" && (!(inst.HistoryEvery > 0) || math.IsInf(inst.HistoryEvery, 0)) {
			return fmt.Errorf("-history-dt must be a positive finite interval (got %v)", inst.HistoryEvery)
		}
		if inst.RestorePath != "" && *trials != 1 {
			return fmt.Errorf("-restore resumes one specific run; use -trials 1 (got %d)", *trials)
		}
	} else {
		inst = nil
	}

	var box errBox
	r, err := info.New(protocol.Config{
		N: *n, Trials: *trials, Paper: *paper,
		Backend: backend, Par: sf.Par,
		CollectStats: *showStats, Traj: inst, OnError: box.set,
	})
	if err != nil {
		return err
	}
	*n = r.N // a restore snapshot carries the population; -n is ignored
	if r.Note != "" {
		fmt.Fprintln(stdout, r.Note)
	}
	logN := math.Log2(float64(*n))
	fmt.Fprintf(stdout, "protocol=%s n=%d log2(n)=%.3f trials=%d\n", info.Name, *n, logN, *trials)

	res, err := sf.Execute([]sweep.Point{{
		Experiment: info.Name, N: *n, Trials: *trials, Run: r.Run,
	}}, nil)
	if err != nil {
		return err
	}
	if err := box.get(); err != nil {
		return err
	}
	for t := 0; t < *trials; t++ {
		rec, ok := res.Get(info.Name, *n, t)
		if !ok {
			return fmt.Errorf("trial %d missing from sweep results", t)
		}
		// Failed trials are recorded with NaN values; a live failure is
		// caught by the errBox above, but a NaN replayed from a -resume
		// checkpoint must not print as garbage and exit 0.
		for field, v := range rec.Values {
			if math.IsNaN(v) {
				return fmt.Errorf("trial %d: recorded %q is NaN — the trial failed when it was checkpointed; rerun it by deleting %s or dropping -resume", t, field, sf.JSONL)
			}
		}
		fmt.Fprintf(stdout, "trial %d: %s\n", t, r.Format(rec.Values))
	}
	if *showStats {
		lines := []string{"(not collected for this protocol)"}
		if r.StatsLines != nil {
			if got := r.StatsLines(); len(got) > 0 {
				lines = got
			}
		}
		fmt.Fprintln(stdout, "transition resolution (table bypass / cache / rule calls):")
		for _, line := range lines {
			fmt.Fprintf(stdout, "  %s\n", line)
		}
	}
	if inst != nil && inst.HistoryPath != "" && *trials == 1 {
		if err := printTrajectory(stdout, inst.HistoryPath); err != nil {
			return err
		}
	}
	return nil
}

// printTrajectory reads a just-written history JSONL stream back and
// renders its per-sample digest table (reading through sweep.ReadHistory
// keeps the CLI on the same decoder any downstream tooling would use).
func printTrajectory(stdout io.Writer, path string) error {
	fh, err := os.Open(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	recs, err := sweep.ReadHistory(fh)
	if err != nil {
		return fmt.Errorf("reading back history %s: %w", path, err)
	}
	pts := make([]stats.TrajPoint, len(recs))
	for i, rec := range recs {
		live, top := stats.TrajDigest(rec.Config, rec.N)
		pts[i] = stats.TrajPoint{
			Time: rec.Time, N: rec.N, Interactions: rec.Interactions,
			Live: live, TopShare: top,
		}
	}
	fmt.Fprintln(stdout)
	table := stats.TrajectoryTable("Trajectory ("+path+")", pts)
	fmt.Fprint(stdout, table.Markdown())
	return nil
}
