// CLI-level tests for cmd/popsim: flag parsing, backend/parallelism
// selection, and tiny-n end-to-end smoke runs — run() is parameterized on
// (args, stdout) precisely so these can execute in-process.
package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/popsim/popsize/internal/sweep"
)

func TestRunRejectsUnknownProtocol(t *testing.T) {
	err := run([]string{"-protocol", "nope", "-n", "64", "-trials", "1"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown protocol") {
		t.Fatalf("err = %v, want unknown-protocol error", err)
	}
}

func TestRunRejectsUnknownBackend(t *testing.T) {
	err := run([]string{"-backend", "quantum", "-n", "64", "-trials", "1"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("err = %v, want unknown-backend error", err)
	}
}

func TestRunRejectsUnknownFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if !strings.Contains(buf.String(), "Usage") && !strings.Contains(buf.String(), "-protocol") {
		t.Errorf("usage not printed to the provided writer:\n%s", buf.String())
	}
}

func TestRunRejectsResumeWithoutJSONL(t *testing.T) {
	err := run([]string{"-protocol", "weak", "-n", "64", "-trials", "1", "-resume"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-resume requires -jsonl") {
		t.Fatalf("err = %v, want resume-requires-jsonl error", err)
	}
}

func TestRunMainProtocolSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-protocol", "main", "-n", "300", "-trials", "2", "-seed", "7"}, &buf); err != nil {
		t.Fatalf("smoke run failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "protocol=main n=300") {
		t.Errorf("header missing:\n%s", out)
	}
	for _, want := range []string{"trial 0: converged=", "trial 1: converged=", "estimate="} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

func TestRunWeakProtocolBackendsAndJSONL(t *testing.T) {
	jsonl := filepath.Join(t.TempDir(), "weak.jsonl")
	var buf bytes.Buffer
	args := []string{"-protocol", "weak", "-n", "5000", "-trials", "1", "-seed", "3",
		"-backend", "batch", "-jsonl", jsonl}
	if err := run(args, &buf); err != nil {
		t.Fatalf("weak smoke run failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "trial 0: k=") {
		t.Errorf("weak output lacks trial line:\n%s", buf.String())
	}
	// The JSONL stream doubles as a checkpoint: -resume replays it.
	var buf2 bytes.Buffer
	if err := run(append(args, "-resume"), &buf2); err != nil {
		t.Fatalf("resume replay failed: %v\n%s", err, buf2.String())
	}
	if buf.String() != buf2.String() {
		t.Errorf("resumed output differs:\n%s\nvs\n%s", buf.String(), buf2.String())
	}
}

// TestRunParDeterminism is the CLI-level worker-count invariance check:
// -par 1 and -par 3 must print byte-identical per-trial results for the
// same seed on a multiset backend.
func TestRunParDeterminism(t *testing.T) {
	outs := map[string]string{}
	for _, par := range []string{"1", "3"} {
		var buf bytes.Buffer
		err := run([]string{"-protocol", "main", "-n", "400", "-trials", "2", "-seed", "11",
			"-backend", "batch", "-par", par}, &buf)
		if err != nil {
			t.Fatalf("-par %s run failed: %v\n%s", par, err, buf.String())
		}
		outs[par] = buf.String()
	}
	if outs["1"] != outs["3"] {
		t.Errorf("-par 1 and -par 3 disagree:\n%s\nvs\n%s", outs["1"], outs["3"])
	}
}

// TestRunTrajectoryFlagValidation: the single-run instrumentation flags
// are rejected for protocols that would ignore them (the error names the
// trajectory-capable set), and -restore pins -trials 1.
func TestRunTrajectoryFlagValidation(t *testing.T) {
	err := run([]string{"-protocol", "weak", "-n", "64", "-trials", "1",
		"-history", filepath.Join(t.TempDir(), "h.jsonl")}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "trajectory-capable") ||
		!strings.Contains(err.Error(), "main") {
		t.Fatalf("err = %v, want trajectory-capable-protocols error listing the capable set", err)
	}
	err = run([]string{"-protocol", "main", "-n", "64", "-trials", "2",
		"-restore", "nope.json"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-trials 1") {
		t.Fatalf("err = %v, want trials-1 error", err)
	}
	err = run([]string{"-protocol", "main", "-n", "64", "-trials", "1",
		"-restore", filepath.Join(t.TempDir(), "missing.json")}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-restore") {
		t.Fatalf("err = %v, want restore-read error", err)
	}
	err = run([]string{"-protocol", "main", "-n", "64", "-trials", "1",
		"-history", filepath.Join(t.TempDir(), "h.jsonl"), "-history-dt", "-1"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-history-dt") {
		t.Fatalf("err = %v, want history-dt error", err)
	}
}

// TestRunHistoryAndSnapshotRestore is the CLI-level acceptance check: a
// -history run emits valid JSONL on the requested Δ grid whose final
// configuration covers the whole population, and a run restored from a
// mid-run -snapshot finishes byte-identical to the uninterrupted run.
func TestRunHistoryAndSnapshotRestore(t *testing.T) {
	dir := t.TempDir()
	hist := filepath.Join(dir, "hist.jsonl")
	mid := filepath.Join(dir, "mid.json")
	finalA := filepath.Join(dir, "final_a.json")
	finalB := filepath.Join(dir, "final_b.json")
	const n = 400
	base := []string{"-protocol", "main", "-n", "400", "-trials", "1", "-seed", "7", "-backend", "batch"}

	// Uninterrupted run, snapshot at the end.
	var bufA bytes.Buffer
	if err := run(append(base, "-snapshot", finalA), &bufA); err != nil {
		t.Fatalf("full run failed: %v\n%s", err, bufA.String())
	}
	// Same run with a history stream and a mid-run snapshot. The history
	// changes the run's chunking (statistically identical, not
	// byte-identical), so the restore comparison uses its own mid snapshot
	// from a history-free run below.
	var bufH bytes.Buffer
	if err := run(append(base, "-history", hist, "-history-dt", "2.5"), &bufH); err != nil {
		t.Fatalf("history run failed: %v\n%s", err, bufH.String())
	}
	if !strings.Contains(bufH.String(), "Trajectory (") {
		t.Errorf("single-trial history run did not render the trajectory table:\n%s", bufH.String())
	}
	fh, err := os.Open(hist)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := sweep.ReadHistory(fh)
	fh.Close()
	if err != nil {
		t.Fatalf("history stream unreadable: %v", err)
	}
	if len(recs) < 3 {
		t.Fatalf("history has %d records, want several", len(recs))
	}
	if recs[0].Time != 0 || recs[0].Interactions != 0 {
		t.Errorf("first history sample %+v not at the run start", recs[0])
	}
	for i, r := range recs {
		total := 0.0
		for _, c := range r.Config {
			total += c
		}
		if total != float64(n) {
			t.Fatalf("history record %d: configuration sums to %v, want %d", i, total, n)
		}
		// Interior samples sit on the Δ grid (the engine overshoots by at
		// most a couple of interactions = 2/n time units).
		if i > 0 && i < len(recs)-1 {
			d := r.Time - float64(i)*2.5
			if d < 0 || d > 2.0/float64(n)+1e-9 {
				t.Fatalf("history record %d at t=%v, want on the Δ=2.5 grid", i, r.Time)
			}
		}
	}

	// Mid-run snapshot from a history-free run, then restore and finish.
	var bufM bytes.Buffer
	if err := run(append(base, "-snapshot", mid, "-snapshot-at", "20"), &bufM); err != nil {
		t.Fatalf("mid-snapshot run failed: %v\n%s", err, bufM.String())
	}
	var bufR bytes.Buffer
	if err := run([]string{"-protocol", "main", "-trials", "1",
		"-restore", mid, "-snapshot", finalB}, &bufR); err != nil {
		t.Fatalf("restored run failed: %v\n%s", err, bufR.String())
	}
	if !strings.Contains(bufR.String(), "restoring from") {
		t.Errorf("restored run did not announce the snapshot:\n%s", bufR.String())
	}
	a, err := os.ReadFile(finalA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(finalB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("restore-then-run final snapshot differs from the uninterrupted run's")
	}
}
