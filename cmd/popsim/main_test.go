// CLI-level tests for cmd/popsim: flag parsing, backend/parallelism
// selection, and tiny-n end-to-end smoke runs — run() is parameterized on
// (args, stdout) precisely so these can execute in-process.
package main

import (
	"bytes"
	"io"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsUnknownProtocol(t *testing.T) {
	err := run([]string{"-protocol", "nope", "-n", "64", "-trials", "1"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown protocol") {
		t.Fatalf("err = %v, want unknown-protocol error", err)
	}
}

func TestRunRejectsUnknownBackend(t *testing.T) {
	err := run([]string{"-backend", "quantum", "-n", "64", "-trials", "1"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("err = %v, want unknown-backend error", err)
	}
}

func TestRunRejectsUnknownFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if !strings.Contains(buf.String(), "Usage") && !strings.Contains(buf.String(), "-protocol") {
		t.Errorf("usage not printed to the provided writer:\n%s", buf.String())
	}
}

func TestRunRejectsResumeWithoutJSONL(t *testing.T) {
	err := run([]string{"-protocol", "weak", "-n", "64", "-trials", "1", "-resume"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-resume requires -jsonl") {
		t.Fatalf("err = %v, want resume-requires-jsonl error", err)
	}
}

func TestRunMainProtocolSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-protocol", "main", "-n", "300", "-trials", "2", "-seed", "7"}, &buf); err != nil {
		t.Fatalf("smoke run failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "protocol=main n=300") {
		t.Errorf("header missing:\n%s", out)
	}
	for _, want := range []string{"trial 0: converged=", "trial 1: converged=", "estimate="} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

func TestRunWeakProtocolBackendsAndJSONL(t *testing.T) {
	jsonl := filepath.Join(t.TempDir(), "weak.jsonl")
	var buf bytes.Buffer
	args := []string{"-protocol", "weak", "-n", "5000", "-trials", "1", "-seed", "3",
		"-backend", "batch", "-jsonl", jsonl}
	if err := run(args, &buf); err != nil {
		t.Fatalf("weak smoke run failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "trial 0: k=") {
		t.Errorf("weak output lacks trial line:\n%s", buf.String())
	}
	// The JSONL stream doubles as a checkpoint: -resume replays it.
	var buf2 bytes.Buffer
	if err := run(append(args, "-resume"), &buf2); err != nil {
		t.Fatalf("resume replay failed: %v\n%s", err, buf2.String())
	}
	if buf.String() != buf2.String() {
		t.Errorf("resumed output differs:\n%s\nvs\n%s", buf.String(), buf2.String())
	}
}

// TestRunParDeterminism is the CLI-level worker-count invariance check:
// -par 1 and -par 3 must print byte-identical per-trial results for the
// same seed on a multiset backend.
func TestRunParDeterminism(t *testing.T) {
	outs := map[string]string{}
	for _, par := range []string{"1", "3"} {
		var buf bytes.Buffer
		err := run([]string{"-protocol", "main", "-n", "400", "-trials", "2", "-seed", "11",
			"-backend", "batch", "-par", par}, &buf)
		if err != nil {
			t.Fatalf("-par %s run failed: %v\n%s", par, err, buf.String())
		}
		outs[par] = buf.String()
	}
	if outs["1"] != outs["3"] {
		t.Errorf("-par 1 and -par 3 disagree:\n%s\nvs\n%s", outs["1"], outs["3"])
	}
}
