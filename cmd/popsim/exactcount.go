package main

import (
	"fmt"
	"math"
	"sync"

	"github.com/popsim/popsize/internal/exactcount"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/protocol"
	"github.com/popsim/popsize/internal/sweep"
)

func newExactCountRunner(cfg protocol.Config) (*protocol.Runner, error) {
	p := exactcount.New(0)
	var statsMu sync.Mutex
	statsLines := make(map[int]string, cfg.Trials)
	return &protocol.Runner{
		N: cfg.N,
		Run: func(tr int, seed uint64) sweep.Values {
			s := p.NewEngine(cfg.N, pop.WithSeed(seed), pop.WithBackend(cfg.Backend), pop.WithParallelism(cfg.Par))
			ok, at := s.RunUntil(exactcount.Terminated, 5, float64(5000*cfg.N))
			if !ok {
				cfg.Fail(fmt.Errorf("trial %d: exact count never terminated on n=%d", tr, cfg.N))
				at = math.NaN()
			}
			if cfg.CollectStats {
				line := "no transition-resolution stats (sequential backend calls the rule directly)"
				if cs, have := pop.EngineCacheStats(s); have {
					line = fmt.Sprintf("table=%d cache=%d rule=%d", cs.TableHits, cs.CacheHits, cs.RuleCalls)
				}
				statsMu.Lock()
				statsLines[tr] = line
				statsMu.Unlock()
			}
			return sweep.Values{"count": float64(exactcount.LeaderCount(s)), "time": at}
		},
		Format: func(v sweep.Values) string {
			return fmt.Sprintf("count=%d exact=%v time=%.0f",
				int(v["count"]), int(v["count"]) == cfg.N, v["time"])
		},
		StatsLines: func() []string {
			statsMu.Lock()
			defer statsMu.Unlock()
			lines := make([]string, 0, len(statsLines))
			for tr := 0; tr < cfg.Trials; tr++ {
				if line, have := statsLines[tr]; have {
					lines = append(lines, fmt.Sprintf("trial %d: %s", tr, line))
				}
			}
			return lines
		},
	}, nil
}
