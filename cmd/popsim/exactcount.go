package main

import (
	"fmt"
	"math"

	"github.com/popsim/popsize/internal/exactcount"
	"github.com/popsim/popsize/internal/pop"
	"github.com/popsim/popsize/internal/sweep"
)

func exactCountRunner(n int, backend pop.Backend, par int, box *errBox) protocolRunner {
	p := exactcount.New(0)
	return protocolRunner{
		run: func(tr int, seed uint64) sweep.Values {
			s := p.NewEngine(n, pop.WithSeed(seed), pop.WithBackend(backend), pop.WithParallelism(par))
			ok, at := s.RunUntil(exactcount.Terminated, 5, float64(5000*n))
			if !ok {
				box.set(fmt.Errorf("trial %d: exact count never terminated on n=%d", tr, n))
				at = math.NaN()
			}
			return sweep.Values{"count": float64(exactcount.LeaderCount(s)), "time": at}
		},
		format: func(v sweep.Values) string {
			return fmt.Sprintf("count=%d exact=%v time=%.0f",
				int(v["count"]), int(v["count"]) == n, v["time"])
		},
	}
}
