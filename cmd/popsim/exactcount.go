package main

import (
	"fmt"

	"github.com/popsim/popsize/internal/exactcount"
	"github.com/popsim/popsize/internal/pop"
)

func runExactCount(n int, seed uint64, trial int, backend pop.Backend) error {
	p := exactcount.New(0)
	s := p.NewEngine(n, pop.WithSeed(seed), pop.WithBackend(backend))
	ok, at := s.RunUntil(exactcount.Terminated, 5, float64(5000*n))
	if !ok {
		return fmt.Errorf("exact count never terminated on n=%d", n)
	}
	fmt.Printf("trial %d: count=%d exact=%v time=%.0f\n", trial, exactcount.LeaderCount(s),
		exactcount.LeaderCount(s) == n, at)
	return nil
}
