// Command popsimd is the simulation-as-a-service daemon: a long-running
// HTTP/JSON front end over the sweep subsystem. Clients POST serialized
// experiment requests (the same sweep.SpecRequest the CLI flags parse
// into), stream per-trial JSONL records as they complete, pull
// bootstrap-CI summaries, and cancel jobs; every job checkpoints each
// record to a per-job JSONL file in -dir, so a killed daemon restarted on
// the same directory resumes every unfinished job through the sweep's
// checkpoint-resume path and the merged record set stays canonically
// byte-identical to an uninterrupted run.
//
// Usage:
//
//	popsimd -addr localhost:8080 -dir popsimd-state [-slots N]
//
// API (see README.md "Service" and DESIGN.md §1.5):
//
//	POST   /v1/jobs               submit {"experiments":[...],"ns":[...],"trials":T,...}
//	GET    /v1/jobs               list jobs
//	GET    /v1/jobs/{id}          job status
//	GET    /v1/jobs/{id}/records  stream records (x-ndjson; Last-Event-ID / ?after= resume)
//	GET    /v1/jobs/{id}/summary  aggregation (json, ?format=csv)
//	DELETE /v1/jobs/{id}          cancel
//	GET    /healthz               liveness
//
// -canon FILE is an offline helper (no server): it reads a sweep/service
// JSONL record file and prints its canonical form — key-sorted, wall time
// zeroed — so two record sets can be compared byte-for-byte; the service
// smoke test uses it to assert kill/restart determinism.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/popsim/popsize/internal/expt"
	"github.com/popsim/popsize/internal/jobs"
	"github.com/popsim/popsize/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "popsimd:", err)
		os.Exit(1)
	}
}

func run(argv []string) error {
	fs := flag.NewFlagSet("popsimd", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8080", "listen address")
	dir := fs.String("dir", "popsimd-state", "state directory (job manifests + JSONL record checkpoints)")
	slots := fs.Int("slots", 0, "worker slots shared across jobs (0: GOMAXPROCS)")
	canon := fs.String("canon", "", "offline: print the canonical form of a JSONL record file and exit")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *canon != "" {
		return canonicalize(*canon)
	}

	m, err := jobs.NewManager(jobs.Config{
		Dir:     *dir,
		Slots:   *slots,
		Resolve: expt.ResolvePoints,
	})
	if err != nil {
		return err
	}

	srv := &http.Server{Addr: *addr, Handler: jobs.NewServer(m)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "popsimd: serving on http://%s (state: %s)\n", *addr, *dir)

	select {
	case err := <-errc:
		m.Close()
		return err
	case <-ctx.Done():
	}
	// Graceful stop: close record streams, stop the runners between units
	// (manifests stay pending, so the next daemon life resumes them).
	fmt.Fprintln(os.Stderr, "popsimd: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	serr := srv.Shutdown(sctx)
	if errors.Is(serr, context.DeadlineExceeded) {
		serr = srv.Close()
	}
	m.Close()
	<-errc // ListenAndServe has returned ErrServerClosed
	if serr != nil {
		return serr
	}
	return nil
}

// canonicalize prints the canonical JSONL (key-sorted, wall time zeroed)
// of one record file. A torn tail is dropped, matching resume semantics.
func canonicalize(path string) error {
	fh, err := os.Open(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	recs, err := sweep.ReadRecords(fh)
	if err != nil && !errors.Is(err, sweep.ErrTornTail) {
		return err
	}
	b, err := sweep.CanonicalJSONL(recs)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(b)
	return err
}
