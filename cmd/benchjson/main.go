// Command benchjson converts `go test -bench` output on stdin into a JSON
// perf-trajectory artifact: one entry per benchmark line, with the
// backend and population size parsed out of sub-benchmark names of the
// form Benchmark.../<backend>/n=<n>-<procs>. CI pipes
// BenchmarkEngineInteractions through it to emit BENCH_engine.json
// (ns/interaction per backend × n), so successive commits accumulate a
// machine-readable history of the engines' throughput.
//
// With -compare it instead acts as the CI perf-regression gate: it diffs
// a fresh artifact against a committed baseline and exits nonzero when
// any backend×n ns/interaction regressed beyond -tolerance (or when the
// baseline lost coverage). Rows present only in the fresh artifact are
// reported but do not fail the gate — commit a refreshed baseline to
// start gating them.
//
// Because the baseline and the fresh artifact generally come from
// different machines (CI runners are heterogeneous; absolute ns/op is
// only comparable within one invocation), -normalize divides every gated
// row by its artifact's geometric mean over the rows common to both
// artifacts before comparing. A uniformly faster or slower machine then
// cancels out exactly, and the gate fires only when one backend×n row
// moves relative to the others — which is precisely the regression class
// a backend×n grid exists to catch. The trade-off: a slowdown uniform
// across every row (e.g. in the shared protocol rule) is invisible to a
// normalized gate; run without -normalize on a pinned machine to gate
// absolute throughput.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkEngineInteractions -benchtime 2000000x . | benchjson -out BENCH_engine.json
//	benchjson -compare BENCH_baseline.json [-normalize] [-tolerance 0.30] BENCH_engine.json
//
// (Flags must precede the positional artifact — Go's flag parsing stops
// at the first non-flag argument.)
//
// To refresh the committed baseline after an intentional perf change (or
// a CI runner change), download BENCH_engine.json from the latest CI run
// of main — or regenerate it locally with the first command above — and
// commit it as BENCH_baseline.json.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark measurement. Par is the sub-benchmark's
// intra-trial parallelism target (0 when the row has no /par segment —
// the backend's default configuration).
type Entry struct {
	Benchmark string  `json:"benchmark"`
	Backend   string  `json:"backend,omitempty"`
	N         int     `json:"n,omitempty"`
	Par       int     `json:"par,omitempty"`
	Iters     int64   `json:"iters"`
	NsPerOp   float64 `json:"ns_per_op"`
}

// benchLine matches e.g.
// "BenchmarkEngineInteractions/seq/n=1000000-8  20000000  118.3 ns/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op`)

// subName extracts backend, n and the optional parallelism target from a
// sub-benchmark path like "BenchmarkEngineInteractions/seq/n=1000000-8"
// or "BenchmarkEngineInteractions/batch/n=100000000/par=8-8".
var subName = regexp.MustCompile(`^[^/]+/([^/]+)/n=(\d+)(?:/par=(\d+))?(?:-\d+)?$`)

func parse(r io.Reader) ([]Entry, error) {
	sc := bufio.NewScanner(r)
	var entries []Entry
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %w", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %w", sc.Text(), err)
		}
		e := Entry{Benchmark: m[1], Iters: iters, NsPerOp: ns}
		if sm := subName.FindStringSubmatch(m[1]); sm != nil {
			e.Backend = sm[1]
			e.N, _ = strconv.Atoi(sm[2])
			if sm[3] != "" {
				e.Par, _ = strconv.Atoi(sm[3])
			}
		}
		entries = append(entries, e)
	}
	return entries, sc.Err()
}

// gateKey identifies a backend×n×par grid row independent of the -procs
// suffix (which varies across machines): "EngineInteractions/batch/n=1e6"
// on a 4-core and an 8-core runner are the same row, and a /par=8 row is
// distinct from the bare default-configuration row. Entries without a
// parsed backend are not gated.
func gateKey(e Entry) (string, bool) {
	if e.Backend == "" {
		return "", false
	}
	base, _, _ := strings.Cut(e.Benchmark, "/")
	key := fmt.Sprintf("%s/%s/n=%d", base, e.Backend, e.N)
	if e.Par > 0 {
		key += fmt.Sprintf("/par=%d", e.Par)
	}
	return key, true
}

// compareEntries diffs fresh against baseline at the given relative
// tolerance. It returns one report line per gated row plus the number of
// regressions and an error for structural problems (a baseline row
// missing from fresh means the gate lost coverage and is an error).
func compareEntries(baseline, fresh []Entry, tolerance float64) (report []string, regressions int, err error) {
	freshByKey := map[string]Entry{}
	for _, e := range fresh {
		if k, ok := gateKey(e); ok {
			freshByKey[k] = e
		}
	}
	baseKeys := map[string]bool{}
	var missing []string
	for _, be := range baseline {
		k, ok := gateKey(be)
		if !ok {
			continue
		}
		baseKeys[k] = true
		fe, ok := freshByKey[k]
		if !ok {
			missing = append(missing, k)
			continue
		}
		ratio := fe.NsPerOp / be.NsPerOp
		status := "ok"
		if ratio > 1+tolerance {
			status = fmt.Sprintf("REGRESSION (>%+.0f%%)", tolerance*100)
			regressions++
		}
		report = append(report, fmt.Sprintf("%-50s %10.2f → %10.2f ns/op  %+6.1f%%  %s",
			k, be.NsPerOp, fe.NsPerOp, (ratio-1)*100, status))
	}
	for _, e := range fresh {
		if k, ok := gateKey(e); ok && !baseKeys[k] {
			report = append(report, fmt.Sprintf("%-50s %10s → %10.2f ns/op  (new row, not gated — refresh the baseline)",
				k, "—", e.NsPerOp))
		}
	}
	sort.Strings(report)
	if len(missing) > 0 {
		sort.Strings(missing)
		return report, regressions, fmt.Errorf("benchjson: baseline rows missing from the fresh artifact (gate lost coverage): %s",
			strings.Join(missing, ", "))
	}
	if len(baseKeys) == 0 {
		return report, regressions, fmt.Errorf("benchjson: baseline contains no backend×n rows to gate on")
	}
	return report, regressions, nil
}

// normalizeEntries rescales both artifacts' gated rows by their own
// geometric mean over the keys present in both, so that comparing them
// measures relative movement between rows rather than absolute machine
// speed. Entries whose key is missing from the other artifact keep their
// raw value (they are reported, not gated). Returns rescaled copies.
func normalizeEntries(baseline, fresh []Entry) (nb, nf []Entry) {
	keys := func(es []Entry) map[string]bool {
		m := map[string]bool{}
		for _, e := range es {
			if k, ok := gateKey(e); ok {
				m[k] = true
			}
		}
		return m
	}
	bk, fk := keys(baseline), keys(fresh)
	geomean := func(es []Entry, common map[string]bool) float64 {
		var logSum float64
		var n int
		for _, e := range es {
			if k, ok := gateKey(e); ok && common[k] && e.NsPerOp > 0 {
				logSum += math.Log(e.NsPerOp)
				n++
			}
		}
		if n == 0 {
			return 1
		}
		return math.Exp(logSum / float64(n))
	}
	scale := func(es []Entry, common map[string]bool, div float64) []Entry {
		out := make([]Entry, len(es))
		for i, e := range es {
			if k, ok := gateKey(e); ok && common[k] {
				e.NsPerOp /= div
			}
			out[i] = e
		}
		return out
	}
	return scale(baseline, fk, geomean(baseline, fk)), scale(fresh, bk, geomean(fresh, bk))
}

// readEntriesFile loads a JSON artifact previously written by this
// command.
func readEntriesFile(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("benchjson: malformed artifact %s: %w", path, err)
	}
	return entries, nil
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	compare := flag.String("compare", "", "baseline JSON artifact: diff the fresh artifact (positional arg) against it and exit nonzero on regression")
	tolerance := flag.Float64("tolerance", 0.30, "relative ns/op slowdown tolerated by -compare before failing")
	normalized := flag.Bool("normalize", false, "compare rows relative to each artifact's geometric mean (machine-speed independent; blind to uniform slowdowns)")
	flag.Parse()

	if *compare != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly one positional argument (the fresh JSON artifact)")
			os.Exit(1)
		}
		baseline, err := readEntriesFile(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fresh, err := readEntriesFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *normalized {
			fmt.Println("rows normalized by each artifact's geometric mean (relative comparison)")
			baseline, fresh = normalizeEntries(baseline, fresh)
		}
		report, regressions, err := compareEntries(baseline, fresh, *tolerance)
		for _, line := range report {
			fmt.Println(line)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d backend×n row(s) regressed more than %.0f%%\n", regressions, *tolerance*100)
			os.Exit(1)
		}
		fmt.Printf("benchjson: no backend×n regression beyond %.0f%% of baseline\n", *tolerance*100)
		return
	}

	entries, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
