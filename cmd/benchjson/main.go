// Command benchjson converts `go test -bench` output on stdin into a JSON
// perf-trajectory artifact: one entry per benchmark line, with the
// backend and population size parsed out of sub-benchmark names of the
// form Benchmark.../<backend>/n=<n>-<procs>. CI pipes
// BenchmarkEngineInteractions through it to emit BENCH_engine.json
// (ns/interaction per backend × n), so successive commits accumulate a
// machine-readable history of the engines' throughput.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkEngineInteractions -benchtime 200000x . | benchjson -out BENCH_engine.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one benchmark measurement.
type Entry struct {
	Benchmark string  `json:"benchmark"`
	Backend   string  `json:"backend,omitempty"`
	N         int     `json:"n,omitempty"`
	Iters     int64   `json:"iters"`
	NsPerOp   float64 `json:"ns_per_op"`
}

// benchLine matches e.g.
// "BenchmarkEngineInteractions/seq/n=1000000-8  20000000  118.3 ns/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op`)

// subName extracts backend and n from a sub-benchmark path like
// "BenchmarkEngineInteractions/seq/n=1000000-8".
var subName = regexp.MustCompile(`^[^/]+/([^/]+)/n=(\d+)(?:-\d+)?$`)

func parse(r io.Reader) ([]Entry, error) {
	sc := bufio.NewScanner(r)
	var entries []Entry
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %w", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %w", sc.Text(), err)
		}
		e := Entry{Benchmark: m[1], Iters: iters, NsPerOp: ns}
		if sm := subName.FindStringSubmatch(m[1]); sm != nil {
			e.Backend = sm[1]
			e.N, _ = strconv.Atoi(sm[2])
		}
		entries = append(entries, e)
	}
	return entries, sc.Err()
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()
	entries, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
