package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	in := `goos: linux
goarch: amd64
BenchmarkEngineInteractions/seq/n=100000-8      20000000        155.2 ns/op
BenchmarkEngineInteractions/batch/n=100000-8    20000000        137.0 ns/op
BenchmarkEngineInteractions/batch/n=1000000-8   20000000        118 ns/op
BenchmarkEngineInteractions/batch/n=100000000/par=8-8   20000000   14.2 ns/op
BenchmarkFig2Convergence-8   12   90000000 ns/op   1371 paralleltime
PASS
`
	entries, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("parsed %d entries, want 5", len(entries))
	}
	e := entries[2]
	if e.Backend != "batch" || e.N != 1000000 || e.NsPerOp != 118 || e.Iters != 20000000 {
		t.Errorf("entry = %+v, want batch/n=1000000 118 ns/op", e)
	}
	if e.Par != 0 {
		t.Errorf("bare row parsed par %d, want 0", e.Par)
	}
	if p := entries[3]; p.Backend != "batch" || p.N != 100000000 || p.Par != 8 || p.NsPerOp != 14.2 {
		t.Errorf("par row = %+v, want batch/n=100000000/par=8 14.2 ns/op", p)
	}
	if last := entries[4]; last.Backend != "" || last.N != 0 {
		t.Errorf("non-grid benchmark should have empty backend/n, got %+v", last)
	}
}

// TestGateKeyParDimension: /par rows gate separately from the bare
// default-configuration row, and the -procs suffix still cancels.
func TestGateKeyParDimension(t *testing.T) {
	bare := grid("batch", 100000, 80, "-8")
	par1 := gridPar("batch", 100000, 1, 90, "-8")
	par8 := gridPar("batch", 100000, 8, 30, "-4")
	k0, _ := gateKey(bare)
	k1, _ := gateKey(par1)
	k8a, _ := gateKey(par8)
	k8b, _ := gateKey(gridPar("batch", 100000, 8, 31, "-16"))
	if k0 == k1 || k1 == k8a || k0 == k8a {
		t.Errorf("par rows share a gate key: %q %q %q", k0, k1, k8a)
	}
	if k8a != k8b {
		t.Errorf("-procs suffix split the gate key: %q vs %q", k8a, k8b)
	}
	if !strings.HasSuffix(k1, "/par=1") {
		t.Errorf("par gate key = %q, want /par=1 suffix", k1)
	}
	// And a mixed compare gates each dimension independently.
	baseline := []Entry{bare, par1, par8}
	fresh := []Entry{bare, par1, gridPar("batch", 100000, 8, 45, "-8")} // par=8 row regressed 50%
	report, regressions, err := compareEntries(baseline, fresh, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 1 {
		t.Errorf("regressions = %d, want 1 (the par=8 row):\n%s", regressions, strings.Join(report, "\n"))
	}
}

func TestParseRejectsNothing(t *testing.T) {
	entries, err := parse(strings.NewReader("no benchmarks here\n"))
	if err != nil || len(entries) != 0 {
		t.Errorf("parse = %v, %v; want empty, nil", entries, err)
	}
}

// grid builds a gated entry the way CI artifacts contain them, with a
// -procs suffix that must not affect the gate key.
func grid(backend string, n int, ns float64, procs string) Entry {
	return Entry{
		Benchmark: fmt.Sprintf("BenchmarkEngineInteractions/%s/n=%d%s", backend, n, procs),
		Backend:   backend,
		N:         n,
		Iters:     1000,
		NsPerOp:   ns,
	}
}

// gridPar is grid with a /par segment.
func gridPar(backend string, n, par int, ns float64, procs string) Entry {
	return Entry{
		Benchmark: fmt.Sprintf("BenchmarkEngineInteractions/%s/n=%d/par=%d%s", backend, n, par, procs),
		Backend:   backend,
		N:         n,
		Par:       par,
		Iters:     1000,
		NsPerOp:   ns,
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	baseline := []Entry{grid("seq", 100000, 100, "-8"), grid("batch", 100000, 80, "-8")}
	fresh := []Entry{grid("seq", 100000, 125, "-4"), grid("batch", 100000, 70, "-4")}
	report, regressions, err := compareEntries(baseline, fresh, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 0 {
		t.Errorf("%d regressions within tolerance:\n%s", regressions, strings.Join(report, "\n"))
	}
	if len(report) != 2 {
		t.Errorf("report has %d lines, want 2:\n%s", len(report), strings.Join(report, "\n"))
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	baseline := []Entry{grid("seq", 100000, 100, "-8"), grid("dense", 1000000, 10, "-8")}
	fresh := []Entry{grid("seq", 100000, 101, "-8"), grid("dense", 1000000, 13.1, "-8")}
	report, regressions, err := compareEntries(baseline, fresh, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (the 31%% dense slowdown):\n%s",
			regressions, strings.Join(report, "\n"))
	}
	found := false
	for _, line := range report {
		if strings.Contains(line, "dense/n=1000000") && strings.Contains(line, "REGRESSION") {
			found = true
		}
	}
	if !found {
		t.Errorf("no REGRESSION line for the dense row:\n%s", strings.Join(report, "\n"))
	}
}

// TestCompareNewFreshRow: a row present only in the fresh artifact (a
// newly added benchmark size) is reported but does not fail the gate.
func TestCompareNewFreshRow(t *testing.T) {
	baseline := []Entry{grid("seq", 100000, 100, "-8")}
	fresh := []Entry{grid("seq", 100000, 100, "-8"), grid("dense", 1000000000, 2, "-8")}
	report, regressions, err := compareEntries(baseline, fresh, 0.30)
	if err != nil || regressions != 0 {
		t.Fatalf("err=%v regressions=%d, want clean pass", err, regressions)
	}
	found := false
	for _, line := range report {
		if strings.Contains(line, "dense/n=1000000000") && strings.Contains(line, "new row") {
			found = true
		}
	}
	if !found {
		t.Errorf("new fresh row not reported:\n%s", strings.Join(report, "\n"))
	}
}

// TestCompareMissingFreshRow: a baseline row absent from the fresh
// artifact means the gate lost coverage — that is an error, not a pass.
func TestCompareMissingFreshRow(t *testing.T) {
	baseline := []Entry{grid("seq", 100000, 100, "-8"), grid("batch", 100000, 80, "-8")}
	fresh := []Entry{grid("seq", 100000, 100, "-8")}
	_, _, err := compareEntries(baseline, fresh, 0.30)
	if err == nil || !strings.Contains(err.Error(), "batch/n=100000") {
		t.Errorf("err = %v, want missing-row error naming batch/n=100000", err)
	}
}

// TestCompareEmptyBaseline: a baseline with no gated rows cannot vouch
// for anything and must error rather than silently pass.
func TestCompareEmptyBaseline(t *testing.T) {
	baseline := []Entry{{Benchmark: "BenchmarkFig2Convergence-8", Iters: 12, NsPerOp: 9e7}}
	fresh := []Entry{grid("seq", 100000, 100, "-8")}
	_, _, err := compareEntries(baseline, fresh, 0.30)
	if err == nil {
		t.Error("empty baseline accepted")
	}
}

func TestReadEntriesFileMalformed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"not": "a list"`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readEntriesFile(path); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Errorf("err = %v, want malformed-artifact error", err)
	}
	if _, err := readEntriesFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestCompareNormalized: with -normalize, a uniformly slower machine is
// not a regression, while one row moving against the others still is.
func TestCompareNormalized(t *testing.T) {
	baseline := []Entry{
		grid("seq", 100000, 100, "-8"),
		grid("batch", 100000, 80, "-8"),
		grid("dense", 100000, 60, "-8"),
	}
	uniform := []Entry{
		grid("seq", 100000, 200, "-4"),
		grid("batch", 100000, 160, "-4"),
		grid("dense", 100000, 120, "-4"),
	}
	nb, nf := normalizeEntries(baseline, uniform)
	_, regressions, err := compareEntries(nb, nf, 0.30)
	if err != nil || regressions != 0 {
		t.Errorf("uniform 2× slowdown flagged under -normalize: err=%v regressions=%d", err, regressions)
	}
	skewed := []Entry{
		grid("seq", 100000, 200, "-4"),
		grid("batch", 100000, 160, "-4"),
		grid("dense", 100000, 240, "-4"), // dense alone 4× slower
	}
	nb, nf = normalizeEntries(baseline, skewed)
	report, regressions, err := compareEntries(nb, nf, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 1 {
		t.Errorf("relative dense regression not flagged: regressions=%d\n%s",
			regressions, strings.Join(report, "\n"))
	}
	for _, line := range report {
		if strings.Contains(line, "REGRESSION") && !strings.Contains(line, "dense") {
			t.Errorf("wrong row flagged: %s", line)
		}
	}
}
