package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	in := `goos: linux
goarch: amd64
BenchmarkEngineInteractions/seq/n=100000-8      20000000        155.2 ns/op
BenchmarkEngineInteractions/batch/n=100000-8    20000000        137.0 ns/op
BenchmarkEngineInteractions/batch/n=1000000-8   20000000        118 ns/op
BenchmarkFig2Convergence-8   12   90000000 ns/op   1371 paralleltime
PASS
`
	entries, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("parsed %d entries, want 4", len(entries))
	}
	e := entries[2]
	if e.Backend != "batch" || e.N != 1000000 || e.NsPerOp != 118 || e.Iters != 20000000 {
		t.Errorf("entry = %+v, want batch/n=1000000 118 ns/op", e)
	}
	if last := entries[3]; last.Backend != "" || last.N != 0 {
		t.Errorf("non-grid benchmark should have empty backend/n, got %+v", last)
	}
}

func TestParseRejectsNothing(t *testing.T) {
	entries, err := parse(strings.NewReader("no benchmarks here\n"))
	if err != nil || len(entries) != 0 {
		t.Errorf("parse = %v, %v; want empty, nil", entries, err)
	}
}
