// CLI-level tests for cmd/fig2: -ns grid parsing, flag errors, and a
// smoke-sized end-to-end sweep with table and CSV output.
package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseNs(t *testing.T) {
	good := map[string][]int{
		"100,1000":    {100, 1000},
		" 64 , 128 ":  {64, 128},
		"2":           {2},
		"500,100,300": {500, 100, 300}, // order preserved
		"100,100,200": {100, 200},      // duplicates dropped: repeated sizes would double-run trials
	}
	for in, want := range good {
		got, err := parseNs(in)
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Errorf("parseNs(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", ",", "abc", "100,x", "1", "0", "-5"} {
		if got, err := parseNs(bad); err == nil {
			t.Errorf("parseNs(%q) = %v, want error", bad, got)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-ns", "abc"}, io.Discard); err == nil || !strings.Contains(err.Error(), "bad -ns entry") {
		t.Errorf("bad -ns: err = %v", err)
	}
	if err := run([]string{"-backend", "quantum"}, io.Discard); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Errorf("bad -backend: err = %v", err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-not-a-flag"}, &buf); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunSmoke(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := run([]string{"-ns", "64,128", "-trials", "1", "-seed", "3", "-out", dir}, &buf)
	if err != nil {
		t.Fatalf("smoke run failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"| n |", "Figure 2", "fig2.csv"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
	csv, err := os.ReadFile(filepath.Join(dir, "fig2.csv"))
	if err != nil {
		t.Fatalf("fig2.csv not written: %v", err)
	}
	if !strings.Contains(string(csv), "64") || !strings.Contains(string(csv), "128") {
		t.Errorf("fig2.csv lacks the -ns sizes:\n%s", csv)
	}
}

// TestRunParDeterminism: the -par flag must not change the rendered
// figure for a fixed seed (worker-count invariance at the CLI level).
func TestRunParDeterminism(t *testing.T) {
	outs := map[string]string{}
	for _, par := range []string{"1", "4"} {
		var buf bytes.Buffer
		err := run([]string{"-ns", "64,128", "-trials", "1", "-seed", "5",
			"-backend", "batch", "-par", par, "-out", ""}, &buf)
		if err != nil {
			t.Fatalf("-par %s run failed: %v\n%s", par, err, buf.String())
		}
		outs[par] = buf.String()
	}
	if outs["1"] != outs["4"] {
		t.Errorf("-par 1 and -par 4 render different figures:\n%s\nvs\n%s", outs["1"], outs["4"])
	}
}
