// Command fig2 regenerates the paper's Figure 2: simulated convergence
// time of the Log-Size-Estimation protocol vs population size, 10 trials
// per size, rendered as a table, a CSV, and an ASCII scatter plot with a
// logarithmic x axis (the paper's format). Trials run through the sweep
// subsystem, so -jsonl records every trial and -resume continues an
// interrupted run.
//
// By default it uses the fast constant preset and n ∈ {100, 1000, 10000};
// -ns overrides the size grid (comma-separated), -full adds n = 100000
// and -paper switches to the 95/5 constants of Protocol 1 (≈30× more
// interactions; budget accordingly). -backend selects the simulation
// engine (auto|seq|batch|dense) and -par the deterministic intra-trial
// worker target.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"

	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/expt"
	"github.com/popsim/popsize/internal/stats"
	"github.com/popsim/popsize/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fig2:", err)
		os.Exit(1)
	}
}

// parseNs parses the -ns grid: comma-separated population sizes, each at
// least 2, in any order (kept as given — the plot sorts on its log axis).
// Duplicates are dropped: a repeated size would expand into sweep points
// with identical (experiment, n, trial) keys, double-running every trial
// and writing duplicate checkpoint records.
func parseNs(s string) ([]int, error) {
	var ns []int
	seen := map[int]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad -ns entry %q: %w", part, err)
		}
		if n < 2 {
			return nil, fmt.Errorf("bad -ns entry %d: population sizes need at least 2 agents", n)
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		ns = append(ns, n)
	}
	if len(ns) == 0 {
		return nil, fmt.Errorf("-ns %q contains no population sizes", s)
	}
	return ns, nil
}

// run is the command body, parameterized on its argument list and output
// stream so the CLI tests can exercise flag parsing and a smoke-sized
// end-to-end sweep without spawning a process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fig2", flag.ContinueOnError)
	fs.SetOutput(stdout)
	full := fs.Bool("full", false, "add n = 100000")
	paper := fs.Bool("paper", false, "use the paper's constants (95/5)")
	trials := fs.Int("trials", 10, "trials per population size (paper: 10)")
	nsFlag := fs.String("ns", "100,1000,10000", "comma-separated population sizes")
	outDir := fs.String("out", "results", "directory for fig2.csv (empty = skip)")
	sf := sweep.Register(fs, "")
	if err := fs.Parse(args); err != nil {
		return err
	}

	env, err := expt.EnvFor(sf.SpecRequest)
	if err != nil {
		return err
	}
	// Trajectory instrumentation (-history/-snapshot/-restore) applies to
	// every F2 trial, with artifact paths tag-suffixed per (n, trial).
	env.Traj, err = expt.ConfigureTrajectory(sf)
	if err != nil {
		return err
	}

	cfg := core.FastConfig()
	if *paper {
		cfg = core.PaperConfig()
	}
	ns, err := parseNs(*nsFlag)
	if err != nil {
		return err
	}
	if *full && !slices.Contains(ns, 100000) {
		ns = append(ns, 100000)
	}

	d := expt.Fig2Def(env, cfg, ns, *trials)
	res, err := sf.Execute(d.Points, nil)
	if err != nil {
		return err
	}
	table := d.Render(res)
	fmt.Fprintln(stdout, table.Markdown())
	fmt.Fprintln(stdout, stats.ASCIIPlotLogX("Figure 2: convergence time vs population size (log10 x)",
		expt.Fig2Points(res, ns), 64, 18))

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(*outDir, "fig2.csv")
		if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", path)
	}
	return nil
}
