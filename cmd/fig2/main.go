// Command fig2 regenerates the paper's Figure 2: simulated convergence
// time of the Log-Size-Estimation protocol vs population size, 10 trials
// per size, rendered as a table, a CSV, and an ASCII scatter plot with a
// logarithmic x axis (the paper's format). Trials run through the sweep
// subsystem, so -jsonl records every trial and -resume continues an
// interrupted run.
//
// By default it uses the fast constant preset and n ∈ {100, 1000, 10000};
// -full adds n = 100000 and -paper switches to the 95/5 constants of
// Protocol 1 (≈30× more interactions; budget accordingly). -backend
// selects the simulation engine (auto|seq|batch|dense).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/popsim/popsize/internal/core"
	"github.com/popsim/popsize/internal/expt"
	"github.com/popsim/popsize/internal/stats"
	"github.com/popsim/popsize/internal/sweep"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fig2:", err)
		os.Exit(1)
	}
}

func run() error {
	full := flag.Bool("full", false, "add n = 100000")
	paper := flag.Bool("paper", false, "use the paper's constants (95/5)")
	trials := flag.Int("trials", 10, "trials per population size (paper: 10)")
	outDir := flag.String("out", "results", "directory for fig2.csv (empty = skip)")
	sf := sweep.Register(flag.CommandLine, "")
	flag.Parse()

	be, err := sf.ParseBackend()
	if err != nil {
		return err
	}
	expt.SetBackend(be)

	cfg := core.FastConfig()
	if *paper {
		cfg = core.PaperConfig()
	}
	ns := []int{100, 1000, 10000}
	if *full {
		ns = append(ns, 100000)
	}

	d := expt.Fig2Def(cfg, ns, *trials)
	res, err := sf.Execute(d.Points, nil)
	if err != nil {
		return err
	}
	table := d.Render(res)
	fmt.Println(table.Markdown())
	fmt.Println(stats.ASCIIPlotLogX("Figure 2: convergence time vs population size (log10 x)",
		expt.Fig2Points(res, ns), 64, 18))

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(*outDir, "fig2.csv")
		if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}
