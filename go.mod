module github.com/popsim/popsize

go 1.23
