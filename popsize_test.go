package popsize

import (
	"math"
	"testing"

	"github.com/popsim/popsize/internal/pop"
)

// TestGoldenSequentialRun pins the exact Result of a seeded sequential run
// — a determinism regression for the reference engine and everything
// upstream of it (state layout, rule logic, scheduler randomness order).
// These values were produced by the pre-refactor engine; if this test
// fails, the sequential engine's randomness stream changed and every
// seeded experiment in EXPERIMENTS.md is silently invalidated.
func TestGoldenSequentialRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full runs are not short")
	}
	est, err := New(FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		n         int
		time      float64
		estimate  float64
		maxErr    float64
		countA    int
		logSize2  int
		converged bool
	}{
		{500, 1344.6, 11.600000000000062, 2.6342157153379127, 247, 8, true},
		{2000, 3048.409, 12.56666666666659, 1.6008823820045794, 1002, 13, true},
	}
	for _, c := range cases {
		r := est.Run(c.n, RunOptions{Seed: 42, Backend: pop.Sequential})
		// Time, CountA and LogSize2 are exact functions of the randomness
		// stream and are pinned bit-for-bit; the two means are pinned to
		// within float-summation reordering noise.
		if r.Converged != c.converged || r.Time != c.time ||
			r.CountA != c.countA || r.LogSize2 != c.logSize2 ||
			math.Abs(r.Estimate-c.estimate) > 1e-9 || math.Abs(r.MaxErr-c.maxErr) > 1e-9 {
			t.Errorf("golden run n=%d diverged:\n got %+v\nwant %+v", c.n, r, c)
		}
	}
}

// TestGoldenBatchedRunStable pins the batched engine's own seeded output
// (self-determinism across releases; the value may legitimately change if
// the batching algorithm's randomness order changes, in which case update
// it alongside a fresh cross-backend equivalence run).
func TestGoldenBatchedRunStable(t *testing.T) {
	if testing.Short() {
		t.Skip("full runs are not short")
	}
	est, err := New(FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	r1 := est.Run(1000, RunOptions{Seed: 42, Backend: pop.Batched})
	r2 := est.Run(1000, RunOptions{Seed: 42, Backend: pop.Batched})
	if r1 != r2 {
		t.Errorf("batched runs with identical seeds differ: %+v vs %+v", r1, r2)
	}
	if !r1.Converged {
		t.Error("batched golden run did not converge")
	}
	if math.Abs(r1.Estimate-math.Log2(1000)) > ErrorBound+1 {
		t.Errorf("batched golden run estimate %.2f outside bound around %.2f",
			r1.Estimate, math.Log2(1000))
	}
}

func TestEstimateEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full runs are not short")
	}
	est, truth, err := Estimate(2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-truth) > ErrorBound+1 {
		t.Errorf("Estimate = %.2f, truth %.2f: error beyond bound+slack", est, truth)
	}
}

// TestEstimatePartialResult: on non-convergence Estimate must return the
// best-effort estimate from the final configuration alongside the error —
// not discard it — so callers can tell "didn't fully converge" from "no
// data". The truncated run is deterministic (sequential backend at this
// size), so the partial estimate is pinned against a direct Run with the
// same options.
func TestEstimatePartialResult(t *testing.T) {
	const n, seed, maxTime = 500, 42, 900 // golden run converges at t≈1345, so 900 truncates
	est, truth, err := estimateWith(n, RunOptions{Seed: seed, MaxTime: maxTime})
	if err == nil {
		t.Fatal("expected a non-convergence error from the truncated run")
	}
	if truth != math.Log2(n) {
		t.Errorf("truth = %v, want log2(%d)", truth, n)
	}
	e, nerr := New(FastConfig())
	if nerr != nil {
		t.Fatal(nerr)
	}
	r := e.Run(n, RunOptions{Seed: seed, MaxTime: maxTime})
	if r.Converged {
		t.Fatal("reference run converged; shrink maxTime")
	}
	if est != r.Estimate {
		t.Errorf("partial estimate = %v, want the run's best effort %v", est, r.Estimate)
	}
}

func TestWeakEstimate(t *testing.T) {
	k, err := WeakEstimate(4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	logN := math.Log2(4096)
	if float64(k) < logN-math.Log2(math.Log(4096))-1 || float64(k) > 2*logN+1 {
		t.Errorf("WeakEstimate = %d outside the [2]-style interval around %.1f", k, logN)
	}
}

func TestEstimateDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full runs are not short")
	}
	est, truth, err := EstimateDeterministic(512, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-truth) > ErrorBound+1 {
		t.Errorf("EstimateDeterministic = %.2f, truth %.2f", est, truth)
	}
}

func TestEstimateUpperBound(t *testing.T) {
	if testing.Short() {
		t.Skip("full runs are not short")
	}
	bound, truth, err := EstimateUpperBound(150, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bound < truth {
		t.Errorf("EstimateUpperBound = %.2f < log n = %.2f (probability-1 guarantee broken)", bound, truth)
	}
}

func TestEstimateTerminating(t *testing.T) {
	if testing.Short() {
		t.Skip("full runs are not short")
	}
	res, err := EstimateTerminating(512, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConvergedFirst {
		t.Error("termination fired before convergence")
	}
	logN := math.Log2(512)
	if math.Abs(res.Estimate-logN) > ErrorBound+1 {
		t.Errorf("estimate at termination = %.2f, truth %.2f", res.Estimate, logN)
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestFailureProbability(t *testing.T) {
	if got := FailureProbability(900); got != 0.01 {
		t.Errorf("FailureProbability(900) = %v, want 0.01", got)
	}
}
