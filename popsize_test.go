package popsize

import (
	"math"
	"testing"
)

func TestEstimateEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full runs are not short")
	}
	est, truth, err := Estimate(2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-truth) > ErrorBound+1 {
		t.Errorf("Estimate = %.2f, truth %.2f: error beyond bound+slack", est, truth)
	}
}

func TestWeakEstimate(t *testing.T) {
	k, err := WeakEstimate(4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	logN := math.Log2(4096)
	if float64(k) < logN-math.Log2(math.Log(4096))-1 || float64(k) > 2*logN+1 {
		t.Errorf("WeakEstimate = %d outside the [2]-style interval around %.1f", k, logN)
	}
}

func TestEstimateDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full runs are not short")
	}
	est, truth, err := EstimateDeterministic(512, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-truth) > ErrorBound+1 {
		t.Errorf("EstimateDeterministic = %.2f, truth %.2f", est, truth)
	}
}

func TestEstimateUpperBound(t *testing.T) {
	if testing.Short() {
		t.Skip("full runs are not short")
	}
	bound, truth, err := EstimateUpperBound(150, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bound < truth {
		t.Errorf("EstimateUpperBound = %.2f < log n = %.2f (probability-1 guarantee broken)", bound, truth)
	}
}

func TestEstimateTerminating(t *testing.T) {
	if testing.Short() {
		t.Skip("full runs are not short")
	}
	res, err := EstimateTerminating(512, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConvergedFirst {
		t.Error("termination fired before convergence")
	}
	logN := math.Log2(512)
	if math.Abs(res.Estimate-logN) > ErrorBound+1 {
		t.Errorf("estimate at termination = %.2f, truth %.2f", res.Estimate, logN)
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestFailureProbability(t *testing.T) {
	if got := FailureProbability(900); got != 0.01 {
		t.Errorf("FailureProbability(900) = %v, want 0.01", got)
	}
}
